module tusim

go 1.22
