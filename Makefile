GO ?= go

.PHONY: all build vet test short race race-harness check smoke chaos litmus figs figures-par fuzz cover bench bench-diff pgo ref-identity trace-smoke resume-smoke serve server-smoke loadtest soak bench-gate clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# short: quick signal; the chaos fuzz matrix and bench soak skip
# themselves under -short.
short:
	$(GO) test -short ./...

# race: the protocol-heavy packages under the race detector.
race:
	$(GO) test -short -race ./internal/system/ ./internal/litmus/

# race-harness: the parallel experiment harness (worker pool, result
# cache, stats merging, supervision layer) and the tusd service layer
# (job pool, coalescing, SSE fan-out) under the race detector,
# including the serial-vs-parallel byte-identity tests. The zero-alloc
# pins (SB enqueue->commit->drain, L1-hit load/store, WCB coalesce,
# event queue) run alongside in their packages — allocation regressions
# on the hot paths fail here, not in a profiler three PRs later.
race-harness:
	$(GO) test -race ./internal/harness/... ./internal/stats/... ./internal/supervise/... ./internal/server/...
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/cpu/ ./internal/memsys/ ./internal/wcb/ ./internal/event/ ./internal/lmap/ ./internal/harness/

# check: model-check the simulator against the operational x86-TSO
# oracle — every litmus program × {base, CSB, TUS}, bounded-exhaustive
# schedule exploration. On a violation it writes mc-crash.json; replay
# with
#   $(GO) run ./cmd/tusim -repro mc-crash.json
check: build
	$(GO) run ./cmd/tuscheck

# smoke: the same matrix under small CI budgets.
smoke: build
	$(GO) run ./cmd/tuscheck -smoke

# chaos: the seeded chaos-fuzz sweep (litmus fault matrix + bench
# soak). On failure it writes tus-crash.json; replay it with
#   $(GO) run ./cmd/tusim -repro tus-crash.json
CHAOS_SEED ?= 7
chaos:
	$(GO) run ./cmd/tusim -chaos-seed $(CHAOS_SEED)

litmus:
	$(GO) run ./cmd/tusim -litmus -mech TUS

figs:
	$(GO) run ./cmd/tusbench -quick

# figures-par: regenerate all figures with the parallel harness (one
# worker per CPU), a persistent result cache, and the per-figure
# timing record. Re-running is nearly free: every unchanged cell loads
# from .tuscache by content hash.
figures-par:
	$(GO) run ./cmd/tusbench -quick -j 0 -cache .tuscache -bench-out BENCH_harness.json

# fuzz: both native fuzz targets on a short budget (the committed seed
# corpora under testdata/fuzz replay as plain tests in `make test`).
# FuzzOracleVsChecker drives random small TSO programs through the
# operational oracle and replays every allowed interleaving through the
# online checker; FuzzWorkloadTrace shakes the workload generators.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/tso/ -run '^$$' -fuzz FuzzOracleVsChecker -fuzztime $(FUZZTIME)
	$(GO) test ./internal/workload/ -run '^$$' -fuzz FuzzWorkloadTrace -fuzztime $(FUZZTIME)

# cover: enforce the coverage floor over the layers that carry the
# repo's behavioural contracts — the tracer and histogram code (golden/
# identity guarantees), the tusd service layer (coalescing, SSE,
# exactly-once accounting), the supervision/journal layer (crash
# consistency), the simulator hot core (event queue, CPU core, memory
# system, line-map containers) whose pooled fast paths the differential
# rig and these tests keep honest, and the workload generators +
# prefetchers whose fingerprints the figures depend on.
cover:
	$(GO) test -coverprofile=cover.out ./internal/trace/ ./internal/stats/ ./internal/server/ ./internal/supervise/ ./internal/event/ ./internal/cpu/ ./internal/memsys/ ./internal/lmap/ ./internal/workload/ ./internal/prefetch/
	$(GO) tool cover -func=cover.out | awk '/^total:/ { sub("%","",$$3); if ($$3+0 < 85) { printf "coverage %.1f%% below 85%% floor\n", $$3; exit 1 } else printf "coverage %.1f%% (floor 85%%)\n", $$3 }'

# trace-smoke: the acceptance path — a smoke workload emitting a
# Perfetto-loadable Chrome trace JSON with the full store lifecycle.
trace-smoke:
	$(GO) run ./cmd/tusim -bench 502.gcc5 -mech TUS -ops 20000 -trace -trace-out trace.json

# resume-smoke: SIGKILL a journaled figure run mid-matrix, resume it
# from the .tusjournal run journal + result cache, and require the
# resumed output to be byte-identical to an uninterrupted run.
resume-smoke:
	bash scripts/resume_smoke.sh

# serve: run the tusd evaluation daemon on :8344 with the shared
# content-addressed cache. Figures come out byte-identical to tusbench:
#   curl localhost:8344/v1/figures/9
serve:
	$(GO) run ./cmd/tusd -quick -cache .tuscache

# server-smoke: the tusd acceptance path through real binaries — cold
# and warm GET /v1/figures/9 diffed byte-for-byte against the CLI,
# /v1/figures vs -list, required /metrics series, graceful SIGTERM
# drain, and the perf trajectory record on exit.
server-smoke:
	bash scripts/server_smoke.sh

# loadtest: spawn a real tusd binary and drive the deterministic mixed
# load suite against it — byte-identity, warm-phase cells_run 0,
# exactly-once cell accounting, /metrics monotonicity — then write the
# per-endpoint latency report.
loadtest:
	$(GO) build -o bin/tusd ./cmd/tusd
	$(GO) run ./cmd/tusload -tusd bin/tusd -smoke -report tusload_report.json

# soak: SIGKILL the daemon mid-load and prove the serving layer
# survives: in-flight requests error (never hang), a restart on the
# same cache dir serves every figure byte-identically, and the fresh
# process simulates zero cells.
soak:
	$(GO) build -o bin/tusd ./cmd/tusd
	$(GO) run ./cmd/tusload -tusd bin/tusd -soak -ops 2500 -parallel-ops 300 -requests 600 -duration 15s

# bench: the tiered microbenchmark suite, cheapest first — container
# ops (lmap), event queue, SB drain, WCB coalesce, L1 hit/miss +
# directory probe, then whole-cell simulation throughput. Run with
# -benchmem semantics baked in where it matters; compare against a
# baseline with benchstat if available.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s ./internal/lmap/ ./internal/event/ ./internal/cpu/ ./internal/wcb/ ./internal/memsys/
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkWholeCellCyclesPerSec' -benchtime 2s .

# bench-diff: benchstat-style comparison of a fresh `make bench` run
# against the committed BENCH_micro.txt baseline. Informational —
# microbenchmark numbers are machine-dependent, so the ratchet that
# FAILS on regression is bench-gate; this table makes per-benchmark
# drift reviewable (CI uploads it as an artifact). Refresh the baseline
# with: make bench > BENCH_micro.txt
bench-diff:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s ./internal/lmap/ ./internal/event/ ./internal/cpu/ ./internal/wcb/ ./internal/memsys/ > bench_fresh.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkWholeCellCyclesPerSec' -benchtime 2s . >> bench_fresh.txt
	$(GO) run ./cmd/benchdiff -old BENCH_micro.txt -new bench_fresh.txt

# pgo: regenerate the committed profile-guided-optimization profile.
# Runs the representative workload — a serial fresh-cache -quick figure
# sweep, the same shape the bench-gate ratchet measures — under the CPU
# profiler and installs the result as cmd/tusbench/default.pgo, which
# the Go toolchain applies automatically to every `go build`/`go run`
# of ./cmd/tusbench. The profile is an input to the build, not an
# output: regenerate deliberately, check the throughput delta with
# bench-gate, and commit the refreshed file. The CI pgo job proves the
# optimized build stays byte-identical on every figure.
pgo:
	$(GO) run ./cmd/tusbench -quick -j 1 -cpuprofile tusbench.pgo.tmp > /dev/null
	mv tusbench.pgo.tmp cmd/tusbench/default.pgo

# ref-identity: the mechanical observational-equivalence proof for the
# open-addressed/pooled containers AND the time-wheel scheduler — the
# entire test suite (golden figures, chaos, model check included)
# replayed on the reference containers and reference binary-heap
# scheduler via the tus_ref build tag, plus the in-process differential
# rigs that compare both modes side by side (container state identity,
# wheel-vs-heap pop-order identity under seeded + chaos traffic).
ref-identity:
	$(GO) test -tags tus_ref ./...
	$(GO) test -run 'TestDifferential|TestRefContainers|TestWheel' -count=1 ./internal/memsys/ ./internal/system/ ./internal/event/

# bench-gate: the perf-regression ratchet — regenerate the figures with
# a fresh cache, then fail if any figure (or total wall-clock) got more
# than 2x slower than the committed BENCH_harness.json baseline.
bench-gate:
	bash scripts/bench_gate.sh

# clean: drop run-local state — the content-addressed result cache,
# stale run journals, and scratch artifacts. Never touches committed
# records (BENCH_harness.json, golden files).
clean:
	rm -rf .tuscache .tusjournal bin
	rm -f cover.out trace.json tus-crash.json mc-crash.json tusload_report.json
