// Sweep: the paper's headline trade-off in miniature — can a small
// 32-entry store buffer with TUS beat a 114-entry baseline? Sweeps SB
// size for the baseline and TUS over an SB-bound workload and prints
// speedups plus the CAM energy/area savings of the smaller SB.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tusim/internal/config"
	"tusim/internal/energy"
	"tusim/internal/system"
	"tusim/internal/workload"
)

func main() {
	bench, ok := workload.ByName("502.gcc2")
	if !ok {
		log.Fatal("proxy missing")
	}
	const ops = 120_000

	run := func(m config.Mechanism, sb int) uint64 {
		cfg := config.Default().WithMechanism(m).WithSB(sb)
		sys, err := system.New(cfg, bench.Streams(1, ops))
		if err != nil {
			log.Fatal(err)
		}
		sys.WarmupOps = ops / 3
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		return sys.Cycles
	}

	base114 := run(config.Baseline, 114)
	fmt.Printf("SB size sweep on %s (baseline@114 = %d cycles):\n\n", bench.Name, base114)
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SB\tFWD LAT\tbase\tTUS\tSB ENERGY/SEARCH\tSB AREA")
	for _, sb := range []int{32, 64, 114} {
		cfg := config.Default().WithSB(sb)
		fmt.Fprintf(w, "%d\t%dc\t%+.1f%%\t%+.1f%%\t%.2fx\t%.2fx\n",
			sb, cfg.ForwardLatency(),
			100*(float64(base114)/float64(run(config.Baseline, sb))-1),
			100*(float64(base114)/float64(run(config.TUS, sb))-1),
			energy.SBCAM.SearchEnergy(sb)/energy.SBCAM.SearchEnergy(114),
			energy.SBCAM.Area(sb)/energy.SBCAM.Area(114))
	}
	w.Flush()
	fmt.Println("\n(speedups vs the 114-entry baseline; energy/area vs the 114-entry SB)")
	fmt.Println("TUS with a 32-entry SB keeps its speedup while the CAM costs halve —")
	fmt.Println("the paper's \"reduce SB size while maintaining performance\" result.")
}
