// Storeburst: the paper's motivating scenario. A gcc-like store-phase
// workload runs under every store-handling mechanism; the example
// prints cycles, SB-induced stalls, and L1D write traffic, reproducing
// in miniature the Figure 10 comparison.
//
//	go run ./examples/storeburst
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"tusim/internal/config"
	"tusim/internal/system"
	"tusim/internal/workload"
)

func main() {
	bench, ok := workload.ByName("502.gcc5")
	if !ok {
		log.Fatal("502.gcc5 proxy missing")
	}
	const ops = 120_000

	fmt.Println("store-burst workload (502.gcc5 proxy) under each mechanism:")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "MECH\tCYCLES\tSPEEDUP\tSB-STALL\tL1D WRITES\tLINES/WRITE")

	var base uint64
	for _, m := range config.Mechanisms {
		cfg := config.Default().WithMechanism(m)
		sys, err := system.New(cfg, bench.Streams(1, ops))
		if err != nil {
			log.Fatal(err)
		}
		sys.WarmupOps = ops / 3
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		if m == config.Baseline {
			base = sys.Cycles
		}
		st := sys.StatsSum()
		coalesce := float64(st.Get("stores_drained")) / float64(st.Get("l1d_writes")+1)
		fmt.Fprintf(w, "%s\t%d\t%+.1f%%\t%.1f%%\t%d\t%.1fx\n",
			m, sys.Cycles, 100*(float64(base)/float64(sys.Cycles)-1),
			100*float64(st.Get("stall_sb"))/float64(sys.Cycles),
			st.Get("l1d_writes"), coalesce)
	}
	w.Flush()
	fmt.Println("\nTUS coalesces stores in the WCBs and writes the L1D without")
	fmt.Println("waiting for permissions, so the burst never backs up into the SB.")
}
