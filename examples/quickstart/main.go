// Quickstart: build a one-core machine with the TUS store mechanism,
// run a small hand-written micro-op trace, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tusim/internal/config"
	"tusim/internal/isa"
	"tusim/internal/memsys"
	"tusim/internal/system"
)

func main() {
	// A tiny program: write a few cache lines (including a store cycle
	// A, B, A that forms an atomic group), read one value back, and
	// fence to force everything visible.
	trace := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x1000, Size: 8}, // line A
		{Kind: isa.Store, Addr: 0x2000, Size: 8}, // line B
		{Kind: isa.Store, Addr: 0x1008, Size: 8}, // line A again: cycle!
		{Kind: isa.IntAdd},
		{Kind: isa.Load, Addr: 0x1000, Size: 8}, // forwarded from the SB
		{Kind: isa.Fence},                       // drain SB + WOQ
		{Kind: isa.Store, Addr: 0x3000, Size: 8},
	}
	if err := isa.Validate(trace); err != nil {
		log.Fatal(err)
	}

	cfg := config.Default().WithMechanism(config.TUS)
	sys, err := system.New(cfg, []isa.Stream{isa.NewSliceStream(trace)})
	if err != nil {
		log.Fatal(err)
	}

	// Watch stores become globally visible (x86-TSO order).
	var visible []string
	sys.Privs[0].OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		visible = append(visible, fmt.Sprintf("line %#x (mask %#x) at cycle %d", line, uint64(mask), sys.Q.Now()))
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	st := sys.StatsSum()
	fmt.Println("tusim quickstart")
	fmt.Printf("  committed        %d micro-ops in %d cycles\n", sys.TotalCommitted(), sys.Cycles)
	fmt.Printf("  lines published  %d (in %d atomic groups)\n",
		st.Get("tus_lines_made_visible"), st.Get("tus_visible_groups"))
	fmt.Printf("  store cycles     %d atomic-group merges\n", st.Get("tus_cycle_merges"))
	fmt.Printf("  SB forwarding    %d hits\n", st.Get("sb_forward_hits"))
	fmt.Printf("  fence stalls     %d cycles (waiting for the WOQ to drain)\n",
		st.Get("fence_stall_cycles"))
	fmt.Println("  visibility order:")
	for _, v := range visible {
		fmt.Println("   ", v)
	}
	fmt.Println("\nthe three stores to lines A and B were coalesced and made visible")
	fmt.Println("atomically; the load never touched memory (store-to-load forwarding).")
}
