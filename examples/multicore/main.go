// Multicore: four TUS cores contend for shared cache lines while also
// writing private data. The example runs with the TSO checker attached
// and prints how the authorization unit resolved the conflicts —
// lex-order delays and relinquishes — proving that unauthorized stores
// never become visible out of order even under contention.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"tusim/internal/config"
	"tusim/internal/isa"
	"tusim/internal/system"
	"tusim/internal/tso"
)

func main() {
	const cores = 4
	cfg := config.Default().WithMechanism(config.TUS).WithCores(cores)

	// Each core interleaves cold private stores (slow permissions) with
	// stores to a handful of shared lines. The private misses hold each
	// core's WOQ head back, so the shared lines sit
	// "ready-but-not-visible" — exactly the state external requests
	// must negotiate through the authorization unit.
	streams := make([]isa.Stream, cores)
	for c := 0; c < cores; c++ {
		var ops []isa.MicroOp
		for i := 0; i < 2000; i++ {
			private := uint64(1)<<32 + uint64(c)<<28 + uint64(i)*64
			shared := uint64(1)<<33 + uint64(i%4)*64
			ops = append(ops,
				isa.MicroOp{Kind: isa.Store, Addr: private, Size: 8},
				isa.MicroOp{Kind: isa.Store, Addr: shared + uint64(c)*8, Size: 8},
				isa.MicroOp{Kind: isa.Load, Addr: shared, Size: 8},
				isa.MicroOp{Kind: isa.IntAdd},
			)
		}
		streams[c] = isa.NewSliceStream(ops)
	}

	sys, err := system.New(cfg, streams)
	if err != nil {
		log.Fatal(err)
	}
	ck := tso.NewChecker(cores)
	sys.SetObserver(ck)
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	ck.Finish()

	fmt.Printf("4-core TUS contention run: %d cycles, %d micro-ops\n",
		sys.Cycles, sys.TotalCommitted())
	st := sys.StatsSum()
	fmt.Printf("  unauthorized lines published: %d\n", st.Get("tus_lines_made_visible"))
	fmt.Printf("  authorization unit: %d delays, %d relinquishes\n",
		st.Get("tus_lex_delays"), st.Get("tus_lex_relinquishes"))
	fmt.Printf("  coherence probes: %d (%d NACKed)\n",
		st.Get("llc_probes"), st.Get("probe_nacks"))
	if err := ck.Err(); err != nil {
		log.Fatalf("TSO VIOLATED: %v", err)
	}
	fmt.Printf("  TSO checker: OK — %d store publications and %d load values verified\n",
		ck.Published, ck.LoadsSeen)
	fmt.Println("\nevery store became visible in program order (atomic groups")
	fmt.Println("included), and every load read a TSO-legal value.")
}
