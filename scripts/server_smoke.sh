#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke test for the tusd daemon.
#
# Builds the real binaries, starts tusd against a cold shared cache,
# polls /healthz, then proves the service contract through the network:
#
#   1. GET /v1/figures/9 (cold) is byte-identical to `tusbench -fig 9`;
#   2. the same GET warm is byte-identical again and reports
#      X-Tusd-Cells-Run: 0 (everything served from the shared cache);
#   3. GET /v1/figures matches `tusbench -list`;
#   4. /metrics carries every required series;
#   5. SIGTERM drains gracefully (listener first), exits 0, and writes
#      the perf trajectory record (BENCH_OUT, kept for CI artifacts).
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
BENCH_OUT=${BENCH_OUT:-$dir/BENCH_tusd.json}
tusd_pid=""
cleanup() {
    [ -n "$tusd_pid" ] && kill -9 "$tusd_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/tusbench" ./cmd/tusbench
go build -o "$dir/tusd" ./cmd/tusd

scale=(-quick -ops 20000 -parallel-ops 500)

# CLI reference bytes, rendered with no cache so both sides are cold.
"$dir/tusbench" "${scale[@]}" -fig 9 > "$dir/cli_fig9.txt"
"$dir/tusbench" "${scale[@]}" -list > "$dir/cli_list.json"

"$dir/tusd" "${scale[@]}" -addr 127.0.0.1:0 -cache "$dir/cache" \
    -bench-out "$BENCH_OUT" 2> "$dir/tusd.err" &
tusd_pid=$!

# The daemon prints its resolved address ("serving on http://...") once
# the listener is up; wait for it, then for /healthz.
base=""
for _ in $(seq 1 200); do
    base=$(sed -n 's/.*serving on \(http:\/\/[^ ]*\).*/\1/p' "$dir/tusd.err" | head -1)
    [ -n "$base" ] && break
    kill -0 "$tusd_pid" 2>/dev/null || { cat "$dir/tusd.err"; exit 1; }
    sleep 0.05
done
[ -n "$base" ] || { echo "server-smoke: tusd never announced its address"; cat "$dir/tusd.err"; exit 1; }
for _ in $(seq 1 200); do
    curl -fsS "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.05
done
curl -fsS "$base/healthz" | grep -qx ok
echo "server-smoke: tusd healthy at $base"

# Cold fetch: byte-identical to the CLI, every cell freshly simulated.
curl -fsS -D "$dir/cold.hdr" "$base/v1/figures/9" > "$dir/cold.txt"
diff "$dir/cli_fig9.txt" "$dir/cold.txt"
cold_run=$(tr -d '\r' < "$dir/cold.hdr" | awk -F': ' 'tolower($1)=="x-tusd-cells-run"{print $2}')
[ "$cold_run" -gt 0 ] || { echo "server-smoke: cold fetch ran $cold_run cells, expected > 0"; exit 1; }
echo "server-smoke: cold figure 9 byte-identical to CLI ($cold_run cells simulated)"

# Warm fetch: byte-identical again, zero cells simulated.
curl -fsS -D "$dir/warm.hdr" "$base/v1/figures/9" > "$dir/warm.txt"
diff "$dir/cli_fig9.txt" "$dir/warm.txt"
warm_run=$(tr -d '\r' < "$dir/warm.hdr" | awk -F': ' 'tolower($1)=="x-tusd-cells-run"{print $2}')
[ "$warm_run" = "0" ] || { echo "server-smoke: warm fetch reran $warm_run cells, expected 0"; exit 1; }
echo "server-smoke: warm figure 9 byte-identical, cells_run: 0"

# Inventory: one registry behind both the CLI flag and the endpoint.
curl -fsS "$base/v1/figures" > "$dir/srv_list.json"
diff "$dir/cli_list.json" "$dir/srv_list.json"
echo "server-smoke: /v1/figures matches tusbench -list"

# Metrics: every required series is present.
curl -fsS "$base/metrics" > "$dir/metrics.txt"
for series in \
    'tusd_info{harness_version=' \
    tusd_jobs_inflight \
    'tusd_jobs_completed_total{kind="figure",status="done"}' \
    tusd_coalesced_total \
    tusd_cells_run_total \
    tusd_cells_cached_total \
    tusd_cache_corrupt_total \
    tusd_cell_seconds_bucket \
    tusd_cell_seconds_count; do
    grep -qF "$series" "$dir/metrics.txt" \
        || { echo "server-smoke: /metrics missing $series"; cat "$dir/metrics.txt"; exit 1; }
done
echo "server-smoke: /metrics carries all required series"

# Graceful drain: SIGTERM closes the listener first and exits cleanly.
kill -TERM "$tusd_pid"
wait "$tusd_pid"
tusd_pid=""
grep -q "drained, bye" "$dir/tusd.err"
[ -s "$BENCH_OUT" ] || { echo "server-smoke: no bench record at $BENCH_OUT"; exit 1; }
grep -q '"fig9"' "$BENCH_OUT"
echo "server-smoke: drained cleanly, perf trajectory at $BENCH_OUT"
