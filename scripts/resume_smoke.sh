#!/usr/bin/env bash
# resume_smoke.sh — kill-and-resume smoke test for the tusbench journal.
#
# Starts a journaled Fig. 9 run, SIGKILLs it mid-matrix, resumes it with
# `tusbench -resume`, and requires the resumed output to be
# byte-identical to an uninterrupted run. Exercises the same recovery
# path as TestKillAndResumeByteIdentical but through the real binary
# and real process death.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/tusbench" ./cmd/tusbench

scale=(-quick -ops 20000 -parallel-ops 500 -fig 9 -j 4)
jdir="$dir/journal"

# Uninterrupted baseline against its own cache.
"$dir/tusbench" "${scale[@]}" -cache "$dir/cache-baseline" > "$dir/baseline.txt"

# Journaled run, to be killed mid-matrix.
"$dir/tusbench" "${scale[@]}" -cache "$dir/cache" \
    -journal -journal-dir "$jdir" > "$dir/killed.txt" 2> "$dir/killed.err" &
pid=$!

# Wait until the journal shows real progress, then SIGKILL — no chance
# to flush or tidy.
for _ in $(seq 1 1200); do
    n=$(cat "$jdir"/*.jsonl 2>/dev/null | grep -c '"cell_finish"' || true)
    [ "$n" -ge 8 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
done
if kill -0 "$pid" 2>/dev/null; then
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null || true
    echo "resume-smoke: SIGKILLed run mid-matrix after $n journaled cells"
else
    wait "$pid" 2>/dev/null || true
    echo "resume-smoke: run finished before the kill; still validating resume replay"
fi

run_id=$(basename "$jdir"/*.jsonl .jsonl)

"$dir/tusbench" -resume "$run_id" -journal-dir "$jdir" > "$dir/resumed.txt" 2> "$dir/resumed.err"
sed 's/^/  resume: /' "$dir/resumed.err"

diff "$dir/baseline.txt" "$dir/resumed.txt"
echo "resume-smoke: resumed output is byte-identical to the uninterrupted run"
