#!/usr/bin/env bash
# bench_gate.sh — the perf-regression ratchet.
#
# Regenerates every figure with a fresh (empty) result cache, recording
# the per-figure wall-clock trajectory, then compares it against the
# committed BENCH_harness.json baseline via `tusload -gate`: any figure
# (or the total wall-clock) more than MAX_RATIO x slower fails the
# build. Getting faster never fails — tightening the baseline is a
# deliberate commit, not an accident.
#
# Environment:
#   BASELINE      committed bench baseline (default BENCH_harness.json)
#   FRESH         pre-generated fresh record; skip regeneration if set
#   MAX_RATIO     allowed fresh/baseline multiple (default 2.0)
#   LAT_BASELINE  optional committed tusload latency report
#   LAT_FRESH     optional fresh tusload latency report (compared on
#                 per-endpoint p99 when both LAT_* are set)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_harness.json}
FRESH=${FRESH:-}
MAX_RATIO=${MAX_RATIO:-2.0}
LAT_BASELINE=${LAT_BASELINE:-}
LAT_FRESH=${LAT_FRESH:-}

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_gate: baseline $BASELINE missing" >&2
    exit 1
fi

if [[ -z "$FRESH" ]]; then
    workdir=$(mktemp -d)
    trap 'rm -rf "$workdir"' EXIT
    FRESH=$workdir/BENCH_fresh.json
    echo "bench_gate: regenerating figures with a fresh cache (this is the timed run)" >&2
    go run ./cmd/tusbench -quick -j 0 -cache "$workdir/cache" -bench-out "$FRESH" >/dev/null
fi

args=(-gate -bench-baseline "$BASELINE" -bench-fresh "$FRESH" -max-ratio "$MAX_RATIO")
if [[ -n "$LAT_BASELINE" && -n "$LAT_FRESH" ]]; then
    args+=(-lat-baseline "$LAT_BASELINE" -lat-fresh "$LAT_FRESH")
fi
go run ./cmd/tusload "${args[@]}"
