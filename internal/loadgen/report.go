package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"tusim/internal/stats"
)

// EndpointStats is one logical endpoint's latency/error summary. The
// quantiles are stats.Histogram power-of-two upper bounds in
// microseconds — conservative SLO readings, directly comparable across
// runs because bucket bounds are fixed.
type EndpointStats struct {
	Endpoint  string             `json:"endpoint"`
	Errors    int64              `json:"errors"`
	LatencyUS stats.QuantSummary `json:"latency_us"`
}

// Report is tusload's run record: offered-load parameters, invariant
// outcomes, and per-endpoint latency summaries. It is the latency half
// of the perf-regression ratchet (the harness half is
// BENCH_harness.json).
type Report struct {
	HarnessVersion string  `json:"harness_version"`
	Seed           uint64  `json:"seed"`
	Mode           string  `json:"mode"` // "closed" or "open"
	Concurrency    int     `json:"concurrency"`
	RatePerSec     float64 `json:"rate_per_sec,omitempty"`
	Figs           []int   `json:"figs"`
	// ExpectedCells is the registry cell union the exactly-once check
	// gated on (-1 when disabled).
	ExpectedCells  int             `json:"expected_cells"`
	Seconds        float64         `json:"seconds"`
	Requests       int64           `json:"requests"`
	Errors         int64           `json:"errors"`
	MetricsScrapes int             `json:"metrics_scrapes"`
	Violations     []string        `json:"violations,omitempty"`
	Endpoints      []EndpointStats `json:"endpoints"`
}

// WriteFile emits the report as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return r, nil
}

// WriteSummary prints the human-readable run summary.
func (r Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "tusload %s: mode=%s concurrency=%d", r.HarnessVersion, r.Mode, r.Concurrency)
	if r.RatePerSec > 0 {
		fmt.Fprintf(w, " rate=%.1f/s", r.RatePerSec)
	}
	fmt.Fprintf(w, " figs=%v seed=%d\n", r.Figs, r.Seed)
	fmt.Fprintf(w, "  %d requests in %.2fs, %d errors, %d metrics scrapes, expected cells %d\n",
		r.Requests, r.Seconds, r.Errors, r.MetricsScrapes, r.ExpectedCells)
	eps := append([]EndpointStats(nil), r.Endpoints...)
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })
	for _, e := range eps {
		l := e.LatencyUS
		fmt.Fprintf(w, "  %-12s n=%-5d err=%-3d p50<=%-8s p95<=%-8s p99<=%-8s max=%s\n",
			e.Endpoint, l.Count, e.Errors, us(l.P50), us(l.P95), us(l.P99), us(l.Max))
	}
	if len(r.Violations) > 0 {
		fmt.Fprintf(w, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(w, "    - %s\n", v)
		}
	} else {
		fmt.Fprintf(w, "  zero invariant violations\n")
	}
}

// us renders a microsecond figure compactly.
func us(v uint64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fs", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	}
	return fmt.Sprintf("%dus", v)
}
