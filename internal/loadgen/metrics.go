package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseProm parses the Prometheus text exposition format (the subset
// tusd emits: comments, `name value`, and `name{labels} value` lines)
// into a flat map keyed by the full series identity — name plus label
// set — e.g.
//
//	tusd_jobs_completed_total{kind="figure",status="done"} -> 3
//
// Timestamps are not supported (tusd never emits them); a line that
// does not split into series + float is an error, because a scrape the
// monotonicity checker cannot read is itself a finding.
func ParseProm(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space outside braces —
		// label values may themselves contain spaces.
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("metrics line %d: no value separator: %q", ln+1, line)
		}
		series, valStr := strings.TrimSpace(line[:i]), line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: bad value %q: %v", ln+1, valStr, err)
		}
		out[series] = v
	}
	return out, nil
}

// counterSeries reports whether the series is counter-typed by naming
// convention: Prometheus counters and cumulative-histogram components
// must never decrease within one process lifetime.
func counterSeries(series string) bool {
	name := series
	if i := strings.IndexByte(series, '{'); i >= 0 {
		name = series[:i]
	}
	for _, suffix := range []string{"_total", "_count", "_sum", "_bucket"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// MonotonicViolations diffs two scrapes of the same process and returns
// one message per counter-typed series that went backwards or vanished.
// Gauges may move freely; new series appearing is normal (a counter
// starts existing when first incremented).
func MonotonicViolations(prev, cur map[string]float64) []string {
	var out []string
	keys := make([]string, 0, len(prev))
	for k := range prev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !counterSeries(k) {
			continue
		}
		c, ok := cur[k]
		if !ok {
			out = append(out, fmt.Sprintf("counter series %s vanished (was %v)", k, prev[k]))
			continue
		}
		if c < prev[k] {
			out = append(out, fmt.Sprintf("counter series %s went backwards: %v -> %v", k, prev[k], c))
		}
	}
	return out
}
