package loadgen_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tusim/internal/harness"
	"tusim/internal/loadgen"
	"tusim/internal/server"
	"tusim/internal/stats"
)

// testOps matches the server test scale: tiny traces, because these
// tests exercise load-generation and invariant plumbing, not simulation
// fidelity.
const (
	testOps  = 2500
	testPOps = 300
)

func testRunner(t *testing.T, cacheDir string) *harness.Runner {
	t.Helper()
	r := harness.NewQuickRunner()
	r.Ops = testOps
	r.ParallelOps = testPOps
	r.Workers = 2
	if cacheDir != "" {
		c, err := harness.NewDiskCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = c
	}
	r.Supervisor = harness.NewSupervisor(0)
	return r
}

// startDaemon serves a real server.Server over httptest and returns its
// base URL plus the matching byte-identity references.
func startDaemon(t *testing.T, cacheDir string) (string, map[int][]byte) {
	t.Helper()
	s := server.New(server.Options{Runner: testRunner(t, cacheDir), MaxJobs: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	refs, err := loadgen.RenderReferences(testRunner(t, ""), []int{9})
	if err != nil {
		t.Fatal(err)
	}
	return ts.URL, refs
}

// TestClosedLoopRun is the acceptance scenario: a closed-loop run at
// concurrency 8 over the full default mix against a live daemon, ending
// with zero invariant violations and the exactly-once cell total.
func TestClosedLoopRun(t *testing.T) {
	base, refs := startDaemon(t, t.TempDir())
	l, err := loadgen.New(loadgen.Options{
		BaseURL:      base,
		Seed:         42,
		Concurrency:  8,
		Requests:     40,
		Figs:         []int{9},
		References:   refs,
		MetricsEvery: 50 * time.Millisecond,
		JobDeadline:  time.Minute,
		Warnf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(context.Background()); err != nil {
		t.Fatalf("run: %v\nall violations: %v", err, l.Violations())
	}

	rep := l.Report()
	if rep.Requests < 40 {
		t.Fatalf("report counts %d requests, want >= 40", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("report counts %d errors, want 0", rep.Errors)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.ExpectedCells != len(harness.FigureCellUnion(9)) {
		t.Fatalf("expected cells %d, want %d", rep.ExpectedCells, len(harness.FigureCellUnion(9)))
	}
	if rep.MetricsScrapes == 0 {
		t.Fatal("metrics watcher never scraped")
	}
	if len(rep.Endpoints) == 0 {
		t.Fatal("no endpoint stats recorded")
	}
	var sawColdFigure bool
	for _, e := range rep.Endpoints {
		if e.Endpoint == "figure-cold" && e.LatencyUS.Count > 0 {
			sawColdFigure = true
		}
	}
	if !sawColdFigure {
		t.Fatalf("no figure-cold endpoint in %+v", rep.Endpoints)
	}

	// The report must round-trip through disk for the gate.
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := loadgen.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Requests != rep.Requests || len(back.Endpoints) != len(rep.Endpoints) {
		t.Fatalf("report round-trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestOpenLoop drives a short fixed-rate phase: ops launch on schedule
// and the run still ends violation-free.
func TestOpenLoop(t *testing.T) {
	base, refs := startDaemon(t, t.TempDir())
	l, err := loadgen.New(loadgen.Options{
		BaseURL:      base,
		Seed:         7,
		Rate:         50,
		Requests:     16,
		Figs:         []int{9},
		Mix:          loadgen.Mix{Figure: 3, Storm: 1},
		References:   refs,
		MetricsEvery: 50 * time.Millisecond,
		JobDeadline:  time.Minute,
		Warnf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep := l.Report(); rep.Mode != "open" || rep.Errors != 0 {
		t.Fatalf("mode %s errors %d, want open/0", rep.Mode, rep.Errors)
	}
}

// TestCorruptReferenceDetected proves the byte-identity oracle has
// teeth: a loader armed with wrong reference bytes must flag every
// figure response as a violation.
func TestCorruptReferenceDetected(t *testing.T) {
	base, _ := startDaemon(t, t.TempDir())
	l, err := loadgen.New(loadgen.Options{
		BaseURL:    base,
		Figs:       []int{9},
		References: map[int][]byte{9: []byte("not the figure\n")},
		Warnf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = l.ColdSweep(context.Background())
	if err == nil {
		t.Fatal("cold sweep accepted a response that differs from the reference")
	}
	if !strings.Contains(err.Error(), "differs from canonical") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	refs := map[int][]byte{9: []byte("x")}
	if _, err := loadgen.New(loadgen.Options{}); err == nil {
		t.Fatal("New accepted empty BaseURL")
	}
	if _, err := loadgen.New(loadgen.Options{BaseURL: "http://x", Figs: []int{9}}); err == nil {
		t.Fatal("New accepted missing references")
	}
	if _, err := loadgen.New(loadgen.Options{
		BaseURL: "http://x", Figs: []int{15},
		References: map[int][]byte{15: []byte("x")},
		Mix:        loadgen.Mix{Cells: 1},
	}); err == nil {
		t.Fatal("New accepted cells ops without figure 9 in the sweep")
	}
	l, err := loadgen.New(loadgen.Options{BaseURL: "http://x/", Figs: []int{9}, References: refs})
	if err != nil {
		t.Fatal(err)
	}
	if l.Base() != "http://x" {
		t.Fatalf("base %q, want trailing slash trimmed", l.Base())
	}
	if got := l.Report().ExpectedCells; got != len(harness.FigureCellUnion(9)) {
		t.Fatalf("default ExpectedCells %d", got)
	}
}

func TestParseProm(t *testing.T) {
	text := `# HELP tusd_jobs_inflight gauge
# TYPE tusd_jobs_inflight gauge
tusd_jobs_inflight 2
tusd_cells_run_total 55
tusd_jobs_completed_total{kind="figure",status="done"} 3
tusd_job_seconds_sum{kind="figure"} 1.25

`
	m, err := loadgen.ParseProm(text)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"tusd_jobs_inflight":   2,
		"tusd_cells_run_total": 55,
		`tusd_jobs_completed_total{kind="figure",status="done"}`: 3,
		`tusd_job_seconds_sum{kind="figure"}`:                    1.25,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d series, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("%s = %v, want %v", k, m[k], v)
		}
	}
	if _, err := loadgen.ParseProm("tusd_bogus_line"); err == nil {
		t.Fatal("ParseProm accepted a line with no value")
	}
	if _, err := loadgen.ParseProm("tusd_x not-a-number"); err == nil {
		t.Fatal("ParseProm accepted a non-numeric value")
	}
}

func TestMonotonicViolations(t *testing.T) {
	prev := map[string]float64{
		"tusd_cells_run_total":            55,
		"tusd_jobs_inflight":              4,
		`tusd_job_seconds_bucket{le="1"}`: 7,
		"tusd_vanishes_total":             1,
	}
	cur := map[string]float64{
		"tusd_cells_run_total":            54, // backwards: violation
		"tusd_jobs_inflight":              0,  // gauge may fall freely
		`tusd_job_seconds_bucket{le="1"}`: 9,  // grew: fine
		"tusd_new_total":                  1,  // new series: fine
	}
	v := loadgen.MonotonicViolations(prev, cur)
	if len(v) != 2 {
		t.Fatalf("got %d violations, want 2 (backwards + vanished): %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "went backwards") || !strings.Contains(joined, "vanished") {
		t.Fatalf("violations: %v", v)
	}
	if v := loadgen.MonotonicViolations(cur, cur); len(v) != 0 {
		t.Fatalf("identical scrapes produced violations: %v", v)
	}
}

func benchRecord(fig8, wall float64) harness.BenchReport {
	return harness.BenchReport{
		HarnessVersion: harness.Version,
		Figures: []harness.FigTiming{
			{Name: "fig8", Seconds: fig8},
			{Name: "fig9", Seconds: 0.0003},
		},
		WallSeconds: wall,
	}
}

// TestGateBench pins the ratchet semantics, including the acceptance
// negative test: a synthetic 3x-slower record must fail the gate.
func TestGateBench(t *testing.T) {
	baseline := benchRecord(10.0, 13.0)

	if v := loadgen.GateBench(baseline, baseline, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("identical records failed the gate: %v", v)
	}
	// 1.5x slower: within the 2x budget.
	if v := loadgen.GateBench(baseline, benchRecord(15.0, 19.5), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("1.5x failed the gate: %v", v)
	}
	// Faster never fails — the ratchet only guards the slow direction.
	if v := loadgen.GateBench(baseline, benchRecord(3.0, 4.0), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("faster run failed the gate: %v", v)
	}
	// The negative test: 3x slower must trip both the figure and the
	// wall-clock wire.
	v := loadgen.GateBench(baseline, benchRecord(30.0, 39.0), loadgen.GateOpts{})
	if len(v) != 2 {
		t.Fatalf("3x-slower record produced %d violations, want 2: %v", len(v), v)
	}
	if !strings.Contains(v[0], "fig8") || !strings.Contains(v[1], "wall_seconds") {
		t.Fatalf("violations: %v", v)
	}

	// Sub-floor figures are noise-exempt: fig9 ballooning from 0.3ms to
	// 0.9ms (3x!) is scheduler jitter, not a regression.
	fresh := benchRecord(10.0, 13.0)
	fresh.Figures[1].Seconds = 0.0009
	if v := loadgen.GateBench(baseline, fresh, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("sub-floor jitter failed the gate: %v", v)
	}

	// A figure vanishing from the fresh run is itself a violation.
	missing := harness.BenchReport{Figures: []harness.FigTiming{{Name: "fig9", Seconds: 0.0003}}, WallSeconds: 13.0}
	v = loadgen.GateBench(baseline, missing, loadgen.GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing figure: %v", v)
	}

	// MaxRatio is configurable: at 4.0 the 3x record passes.
	if v := loadgen.GateBench(baseline, benchRecord(30.0, 39.0), loadgen.GateOpts{MaxRatio: 4.0}); len(v) != 0 {
		t.Fatalf("3x failed a 4x gate: %v", v)
	}
}

func throughputRecord(cyclesPerSec, cellSeconds float64) harness.BenchReport {
	rep := benchRecord(10.0, 13.0)
	rep.SimCyclesPerSec = cyclesPerSec
	rep.CellSeconds = cellSeconds
	return rep
}

// TestGateBenchThroughput pins the sim_cycles_per_sec wire: a
// throughput COLLAPSE fails (lower is worse, opposite polarity from
// the timing wires), cache-hot zero readings and sub-floor simulation
// time are exempt, and faster never fails.
func TestGateBenchThroughput(t *testing.T) {
	baseline := throughputRecord(2.0e6, 12.0)

	if v := loadgen.GateBench(baseline, baseline, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("identical throughput failed the gate: %v", v)
	}
	// 1.5x slower: within the 2x budget.
	if v := loadgen.GateBench(baseline, throughputRecord(1.4e6, 12.0), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("1.5x throughput drop failed the gate: %v", v)
	}
	// Higher throughput never fails.
	if v := loadgen.GateBench(baseline, throughputRecord(6.0e6, 12.0), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("faster simulator failed the gate: %v", v)
	}
	// A >2x collapse trips the wire.
	v := loadgen.GateBench(baseline, throughputRecord(0.6e6, 12.0), loadgen.GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0], "sim_cycles_per_sec") {
		t.Fatalf("3.3x throughput collapse: got %v, want one sim_cycles_per_sec violation", v)
	}
	// A fully cache-hot fresh run reports zero throughput — that is
	// absence of evidence, not a regression.
	if v := loadgen.GateBench(baseline, throughputRecord(0, 0), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("cache-hot fresh run failed the gate: %v", v)
	}
	// Likewise a baseline with no measurement gates nothing.
	if v := loadgen.GateBench(throughputRecord(0, 0), throughputRecord(0.6e6, 12.0), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("unmeasured baseline failed the gate: %v", v)
	}
	// Sub-floor simulation time on either side is scheduler noise.
	if v := loadgen.GateBench(baseline, throughputRecord(0.6e6, 0.01), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("sub-floor cell_seconds failed the gate: %v", v)
	}
	// MaxRatio applies: at 4.0 the 3.3x collapse passes.
	if v := loadgen.GateBench(baseline, throughputRecord(0.6e6, 12.0), loadgen.GateOpts{MaxRatio: 4.0}); len(v) != 0 {
		t.Fatalf("3.3x collapse failed a 4x gate: %v", v)
	}
}

// TestGateBenchWorkerMismatch pins the worker-invariance rule: when
// baseline and fresh disagree on workers or num_cpu, wall-clock wires
// (per-figure, wall_seconds) are suppressed in favor of the
// worker-invariant cell_seconds, while sim_cycles_per_sec keeps
// ratcheting regardless of shape.
func TestGateBenchWorkerMismatch(t *testing.T) {
	shaped := func(workers, cpus int, fig8, wall, cell float64, cyclesPerSec float64) harness.BenchReport {
		rep := benchRecord(fig8, wall)
		rep.Workers = workers
		rep.NumCPU = cpus
		rep.CellSeconds = cell
		rep.CellsRun = 300
		rep.SimCyclesPerSec = cyclesPerSec
		return rep
	}
	baseline := shaped(16, 16, 2.0, 3.0, 40.0, 2.0e6)

	// 16-way baseline vs serial CI runner: wall time legitimately 10x
	// worse, but cell_seconds and throughput match — must pass.
	serial := shaped(1, 1, 30.0, 41.0, 41.0, 2.0e6)
	if v := loadgen.GateBench(baseline, serial, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("shape-mismatched wall regression failed the gate: %v", v)
	}
	// A real regression shows up in the worker-invariant aggregate.
	slow := shaped(1, 1, 90.0, 121.0, 120.0, 2.0e6)
	v := loadgen.GateBench(baseline, slow, loadgen.GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0], "cell_seconds") {
		t.Fatalf("3x cell_seconds regression across shapes: got %v, want one cell_seconds violation", v)
	}
	// Throughput collapse still gates across shapes.
	collapsed := shaped(1, 1, 30.0, 41.0, 41.0, 0.5e6)
	v = loadgen.GateBench(baseline, collapsed, loadgen.GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0], "sim_cycles_per_sec") {
		t.Fatalf("throughput collapse across shapes: got %v, want one sim_cycles_per_sec violation", v)
	}
	// Same shape on both sides keeps the wall-clock wires armed.
	sameSlow := shaped(16, 16, 9.0, 10.0, 40.0, 2.0e6)
	v = loadgen.GateBench(baseline, sameSlow, loadgen.GateOpts{})
	if len(v) != 2 {
		t.Fatalf("same-shape 3x wall regression: got %v, want fig8 + wall_seconds", v)
	}
	// A cache-hot fresh run across shapes has no cell evidence: pass.
	hot := shaped(1, 1, 0.1, 0.2, 0.0, 0)
	hot.CellsRun = 0
	if v := loadgen.GateBench(baseline, hot, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("cache-hot shape-mismatched run failed the gate: %v", v)
	}
}

func latReport(p99 uint64) loadgen.Report {
	return loadgen.Report{
		Endpoints: []loadgen.EndpointStats{
			{Endpoint: "figure", LatencyUS: stats.QuantSummary{Count: 100, P99: p99}},
			{Endpoint: "metrics", LatencyUS: stats.QuantSummary{Count: 100, P99: 512}},
		},
	}
}

func TestGateLatency(t *testing.T) {
	baseline := latReport(4096)

	if v := loadgen.GateLatency(baseline, baseline, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("identical reports failed: %v", v)
	}
	// One power-of-two bucket shift is exactly 2x: the strict > passes it.
	if v := loadgen.GateLatency(baseline, latReport(8192), loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("single bucket shift failed: %v", v)
	}
	// Two bucket shifts (4x) fail.
	v := loadgen.GateLatency(baseline, latReport(16384), loadgen.GateOpts{})
	if len(v) != 1 || !strings.Contains(v[0], "figure p99") {
		t.Fatalf("4x p99: %v", v)
	}
	// Both-under-floor endpoints are skipped (metrics stays at 512 <
	// 1000us in both, so even a big ratio there would be exempt).
	sub := latReport(4096)
	sub.Endpoints[1].LatencyUS.P99 = 64
	fresh := latReport(4096)
	fresh.Endpoints[1].LatencyUS.P99 = 512
	if v := loadgen.GateLatency(sub, fresh, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("sub-floor endpoint failed: %v", v)
	}
	// Endpoints absent from the fresh run are skipped, not violations:
	// mixes differ across runs.
	if v := loadgen.GateLatency(baseline, loadgen.Report{}, loadgen.GateOpts{}); len(v) != 0 {
		t.Fatalf("missing endpoints should be skipped: %v", v)
	}
}
