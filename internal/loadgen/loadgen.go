// Package loadgen is a deterministic open- and closed-loop HTTP load
// generator for the tusd daemon, with live invariant checking — the
// serving-layer analogue of the model checker's differential testing:
// instead of trusting that the service stays correct under concurrency,
// it drives mixed job traffic (figure fetches, SSE subscribers, cell
// matrices, litmus checks, cancels, duplicate-submit storms) and
// asserts, while the system is saturated, that
//
//   - every figure response is byte-identical to the canonical
//     `tusbench -fig <n>` output for the same scale,
//   - the warm phase simulates nothing (cells_run stays frozen and every
//     figure response reports X-Tusd-Cells-Run: 0),
//   - the Runner's exactly-once contract holds: after quiescing, the
//     daemon's tusd_cells_run_total equals the registry's expected cell
//     total for the driven figures (harness.FigureCellUnion), and
//   - every counter series in /metrics is monotone across scrapes.
//
// Decision-making is deterministic: all workload choices come from
// seeded splitmix64 streams behind the faults.DecisionSource interface
// (the same idiom the chaos injector and model checker use), so a load
// profile replays from its seed. The HTTP interleaving itself is of
// course up to the network and scheduler — determinism here means the
// *offered* load, not the observed schedule.
//
// Per-endpoint latency lands in stats.Histogram (power-of-two buckets);
// the Report exports p50/p95/p99 upper bounds via stats.QuantSummary,
// which scripts/bench_gate.sh turns into an enforced perf contract.
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tusim/internal/faults"
	"tusim/internal/harness"
	"tusim/internal/stats"
)

// Mix weights the mixed-phase operation kinds. Zero weights disable an
// op; the all-zero Mix is replaced by DefaultMix.
type Mix struct {
	// Figure is a synchronous GET /v1/figures/{n} with byte-identity
	// checking (and warm-phase cells_run: 0 checking).
	Figure int
	// SSE submits a figure job and follows its event stream to the
	// terminal event with per-read deadlines.
	SSE int
	// Cells submits a small cell-matrix job drawn from Fig. 9's matrix
	// (so it can never grow the exactly-once cell total).
	Cells int
	// Hist submits a histogram job at SB 114 (again Fig. 9's matrix).
	Hist int
	// Litmus submits a single-program smoke model-check job.
	Litmus int
	// Cancel submits a cells job and immediately cancels it, then
	// requires the job to reach a terminal state instead of hanging.
	Cancel int
	// Storm fires several identical figure submissions concurrently and
	// requires them all to resolve to the same coalesce key.
	Storm int
}

// DefaultMix skews toward the figure path (the byte-identity oracle)
// while keeping every op kind in play.
func DefaultMix() Mix {
	return Mix{Figure: 8, SSE: 3, Cells: 3, Hist: 1, Litmus: 1, Cancel: 2, Storm: 2}
}

func (m Mix) total() int {
	return m.Figure + m.SSE + m.Cells + m.Hist + m.Litmus + m.Cancel + m.Storm
}

// ops expands the weights into a pick table for DecisionSource.Index.
func (m Mix) ops() []string {
	var out []string
	add := func(name string, w int) {
		for i := 0; i < w; i++ {
			out = append(out, name)
		}
	}
	add("figure", m.Figure)
	add("sse", m.SSE)
	add("cells", m.Cells)
	add("hist", m.Hist)
	add("litmus", m.Litmus)
	add("cancel", m.Cancel)
	add("storm", m.Storm)
	return out
}

// Options configures a Loader.
type Options struct {
	// BaseURL is the daemon's base URL ("http://127.0.0.1:port").
	BaseURL string
	// Client overrides the HTTP client. The default carries a 2-minute
	// timeout, which doubles as the hang detector: an in-flight request
	// that survives a daemon SIGKILL must surface as an error within the
	// timeout, never hang.
	Client *http.Client
	// Seed seeds the splitmix64 decision streams (worker w uses
	// Seed + w*golden-ratio so streams are independent but replayable).
	Seed uint64
	// Concurrency is the closed-loop worker count. Default 8.
	Concurrency int
	// Rate, when positive, switches the mixed phase to open loop:
	// operations launch on a fixed Rate-per-second schedule regardless
	// of completions.
	Rate float64
	// Requests bounds the mixed phase's total operations. Default 64.
	Requests int
	// Duration, when positive, additionally bounds the mixed phase by
	// wall clock.
	Duration time.Duration
	// Figs are the figures to drive. Default {9}. Every entry needs a
	// Reference.
	Figs []int
	// Mix weights the mixed-phase op kinds.
	Mix Mix
	// References holds the canonical CLI bytes per figure — the
	// byte-identity oracle. RenderReferences builds it from a runner at
	// the daemon's scale.
	References map[int][]byte
	// ExpectedCells is the exactly-once cell total the daemon's
	// tusd_cells_run_total must land on after the cold sweep and stay at
	// through the warm phase. Zero selects
	// len(harness.FigureCellUnion(Figs...)); negative disables the check.
	ExpectedCells int
	// MetricsEvery is the monotonicity scrape cadence during the mixed
	// phase. Default 250ms.
	MetricsEvery time.Duration
	// JobDeadline bounds every wait-for-terminal poll. Default 2m.
	JobDeadline time.Duration
	// Warnf receives progress/warning lines. Nil discards.
	Warnf func(format string, args ...any)
}

// endpoint aggregates one logical endpoint's latency and error count.
type endpoint struct {
	hist *stats.Histogram
	errs atomic.Int64
}

// Loader drives one load scenario and accumulates its report.
type Loader struct {
	o      Options
	client *http.Client
	mix    []string

	base atomic.Value // string: mutable so soak can repoint after restart

	set   *stats.Set
	epMu  sync.Mutex
	eps   map[string]*endpoint
	order []string

	requests atomic.Int64
	errors   atomic.Int64
	// tolerant suppresses violation escalation for transport errors —
	// the soak harness sets it around the SIGKILL window, where refused
	// connections are the expected outcome.
	tolerant atomic.Bool

	violMu     sync.Mutex
	violations []string

	promMu  sync.Mutex
	prevMet map[string]float64
	scrapes int

	start time.Time
	mode  string
}

// New validates o and builds a Loader.
func New(o Options) (*Loader, error) {
	if o.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL is required")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if len(o.Figs) == 0 {
		o.Figs = []int{9}
	}
	if o.Mix.total() == 0 {
		o.Mix = DefaultMix()
	}
	if o.MetricsEvery <= 0 {
		o.MetricsEvery = 250 * time.Millisecond
	}
	if o.JobDeadline <= 0 {
		o.JobDeadline = 2 * time.Minute
	}
	for _, f := range o.Figs {
		if len(o.References[f]) == 0 {
			return nil, fmt.Errorf("loadgen: no reference bytes for figure %d (render them with RenderReferences)", f)
		}
	}
	if o.Mix.Cells+o.Mix.Hist > 0 && !containsInt(o.Figs, 9) {
		// Cells and hist ops draw from Fig. 9's matrix; without fig 9 in
		// the sweep they would grow cells_run past the expected total and
		// fake an exactly-once violation.
		return nil, fmt.Errorf("loadgen: cells/hist ops require figure 9 in Figs (their cells are its matrix)")
	}
	if o.ExpectedCells == 0 {
		o.ExpectedCells = len(harness.FigureCellUnion(o.Figs...))
	}
	cl := o.Client
	if cl == nil {
		cl = &http.Client{Timeout: 2 * time.Minute}
	}
	mode := "closed"
	if o.Rate > 0 {
		mode = "open"
	}
	l := &Loader{
		o:      o,
		client: cl,
		mix:    o.Mix.ops(),
		set:    stats.NewSet("tusload"),
		eps:    map[string]*endpoint{},
		start:  time.Now(),
		mode:   mode,
	}
	l.base.Store(strings.TrimRight(o.BaseURL, "/"))
	return l, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Base returns the current daemon base URL.
func (l *Loader) Base() string { return l.base.Load().(string) }

// SetBase repoints the loader at a restarted daemon.
func (l *Loader) SetBase(u string) { l.base.Store(strings.TrimRight(u, "/")) }

// SetTolerant toggles the kill-window mode: transport errors are still
// counted, but stop escalating to invariant violations.
func (l *Loader) SetTolerant(b bool) { l.tolerant.Store(b) }

func (l *Loader) warnf(format string, args ...any) {
	if l.o.Warnf != nil {
		l.o.Warnf(format, args...)
	}
}

// violate records one invariant violation.
func (l *Loader) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	l.violMu.Lock()
	l.violations = append(l.violations, msg)
	l.violMu.Unlock()
	l.warnf("tusload: VIOLATION: %s", msg)
}

// Violations snapshots the recorded invariant violations.
func (l *Loader) Violations() []string {
	l.violMu.Lock()
	defer l.violMu.Unlock()
	return append([]string(nil), l.violations...)
}

// ep interns one endpoint accumulator.
func (l *Loader) ep(name string) *endpoint {
	l.epMu.Lock()
	defer l.epMu.Unlock()
	e, ok := l.eps[name]
	if !ok {
		e = &endpoint{hist: l.set.Histogram(name)}
		l.eps[name] = e
		l.order = append(l.order, name)
	}
	return e
}

// observe records one operation's latency (µs) and error outcome. A
// transport/protocol error outside the tolerant window is an invariant
// violation: the acceptance contract is zero errors under healthy load.
func (l *Loader) observe(name string, d time.Duration, err error) {
	e := l.ep(name)
	l.requests.Add(1)
	e.hist.Observe(uint64(d.Microseconds()))
	if err != nil {
		e.errs.Add(1)
		l.errors.Add(1)
		if !l.tolerant.Load() {
			l.violate("%s: %v", name, err)
		} else {
			l.warnf("tusload: %s (tolerated during kill window): %v", name, err)
		}
	}
}

// get issues a GET and returns body+headers, treating non-2xx as error.
func (l *Loader) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", l.Base()+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, err
	}
	if resp.StatusCode/100 != 2 {
		return body, resp.Header, fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, firstLine(body))
	}
	return body, resp.Header, nil
}

// post issues a JSON POST and decodes the response into out (when
// non-nil), treating non-2xx as error.
func (l *Loader) post(ctx context.Context, path string, payload, out any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", l.Base()+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, firstLine(body))
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// jobJSON mirrors the server's JobJSON wire form (decoded loosely so
// the loader does not import internal/server).
type jobJSON struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       string `json:"state"`
	Key         string `json:"key"`
	Error       string `json:"error"`
	CellsTotal  int    `json:"cells_total"`
	CellsDone   int    `json:"cells_done"`
	CellsRun    int    `json:"cells_run"`
	CellsCached int    `json:"cells_cached"`
}

// checkFigure performs one GET /v1/figures/{fig} and applies the
// byte-identity (and, when warm, the cells_run: 0) invariant.
func (l *Loader) checkFigure(ctx context.Context, fig int, warm bool, epName string) {
	t0 := time.Now()
	body, hdr, err := l.get(ctx, fmt.Sprintf("/v1/figures/%d", fig))
	l.observe(epName, time.Since(t0), err)
	if err != nil {
		return
	}
	if want := l.o.References[fig]; !bytes.Equal(body, want) {
		l.violate("figure %d: response differs from canonical CLI bytes (%d vs %d bytes)", fig, len(body), len(want))
	}
	if warm {
		if got := hdr.Get("X-Tusd-Cells-Run"); got != "0" {
			l.violate("figure %d: warm-phase X-Tusd-Cells-Run = %q, want 0", fig, got)
		}
	}
}

// ColdSweep fetches every configured figure once, serially, against a
// cold daemon: each response must match the CLI bytes, and afterwards
// the daemon must have simulated exactly the registry's expected cell
// total (the exactly-once proof for the cold path).
func (l *Loader) ColdSweep(ctx context.Context) error {
	for _, fig := range l.o.Figs {
		l.checkFigure(ctx, fig, false, "figure-cold")
	}
	if err := l.CheckExactlyOnce(ctx, "after cold sweep"); err != nil {
		return err
	}
	return l.err()
}

// WarmSweep fetches every configured figure once and requires byte
// identity plus X-Tusd-Cells-Run: 0 — the post-restart proof that the
// disk cache alone reconstructs every response.
func (l *Loader) WarmSweep(ctx context.Context) error {
	for _, fig := range l.o.Figs {
		l.checkFigure(ctx, fig, true, "figure-warm")
	}
	return l.err()
}

// err converts recorded violations into a single error.
func (l *Loader) err() error {
	v := l.Violations()
	if len(v) == 0 {
		return nil
	}
	return fmt.Errorf("loadgen: %d invariant violation(s); first: %s", len(v), v[0])
}

// Run drives the full scenario: cold sweep, mixed warm-phase load
// (closed- or open-loop), quiesce, and the final exactly-once check
// proving the warm phase simulated nothing.
func (l *Loader) Run(ctx context.Context) error {
	l.warnf("tusload: cold sweep over figures %v", l.o.Figs)
	if err := l.ColdSweep(ctx); err != nil {
		return err
	}
	l.warnf("tusload: mixed %s-loop phase: %d ops, concurrency %d, rate %.1f/s",
		l.mode, l.o.Requests, l.o.Concurrency, l.o.Rate)
	if err := l.RunMixed(ctx); err != nil {
		return err
	}
	if err := l.CheckExactlyOnce(ctx, "after warm mixed phase"); err != nil {
		return err
	}
	return l.err()
}

// RunMixed runs the mixed-op phase. The warm figure invariant is active:
// the cold sweep must have run first (Run does this).
func (l *Loader) RunMixed(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if l.o.Duration > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, l.o.Duration)
		defer tcancel()
	}

	// Metrics monotonicity watcher.
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		tick := time.NewTicker(l.o.MetricsEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				l.ScrapeMetrics(ctx)
			}
		}
	}()

	if l.o.Rate > 0 {
		l.runOpen(ctx)
	} else {
		l.runClosed(ctx)
	}
	cancel()
	watch.Wait()
	return l.err()
}

// runClosed runs Concurrency workers, each with its own deterministic
// decision stream, sharing one op budget.
func (l *Loader) runClosed(ctx context.Context) {
	var budget atomic.Int64
	budget.Store(int64(l.o.Requests))
	var wg sync.WaitGroup
	for w := 0; w < l.o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := faults.NewPRNGSource(l.o.Seed + uint64(w)*0x9E3779B97F4A7C15)
			for budget.Add(-1) >= 0 && ctx.Err() == nil {
				l.step(ctx, src)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen launches ops on a fixed schedule regardless of completions —
// the arrival process of an external client population.
func (l *Loader) runOpen(ctx context.Context) {
	interval := time.Duration(float64(time.Second) / l.o.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	src := &lockedSource{src: faults.NewPRNGSource(l.o.Seed)}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	launched := 0
	for launched < l.o.Requests && ctx.Err() == nil {
		select {
		case <-ctx.Done():
		case <-tick.C:
			wg.Add(1)
			launched++
			go func() {
				defer wg.Done()
				l.step(ctx, src)
			}()
		}
	}
	wg.Wait()
}

// lockedSource makes one shared decision stream safe for the open
// loop's concurrent ops while keeping the stream itself deterministic
// (the sequence of drawn values is fixed; which op observes which value
// depends on arrival order, as in any open-loop generator).
type lockedSource struct {
	mu  sync.Mutex
	src faults.DecisionSource
}

func (s *lockedSource) Hit(pct int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Hit(pct)
}

func (s *lockedSource) Amount(max uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Amount(max)
}

func (s *lockedSource) Index(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Index(n)
}

// pick chooses from a non-empty domain (Index requires n >= 2).
func pick(src faults.DecisionSource, n int) int {
	if n <= 1 {
		return 0
	}
	return src.Index(n)
}

// step executes one mixed-phase operation chosen by the decision stream.
func (l *Loader) step(ctx context.Context, src faults.DecisionSource) {
	switch l.mix[pick(src, len(l.mix))] {
	case "figure":
		l.checkFigure(ctx, l.o.Figs[pick(src, len(l.o.Figs))], true, "figure")
	case "sse":
		l.opSSE(ctx, src)
	case "cells":
		l.opCells(ctx, src)
	case "hist":
		l.opHist(ctx)
	case "litmus":
		l.opLitmus(ctx, src)
	case "cancel":
		l.opCancel(ctx, src)
	case "storm":
		l.opStorm(ctx, src)
	}
}

// waitTerminal polls a job until it leaves queued/running.
func (l *Loader) waitTerminal(ctx context.Context, id string) (jobJSON, error) {
	deadline := time.Now().Add(l.o.JobDeadline)
	for {
		var j jobJSON
		body, _, err := l.get(ctx, "/v1/jobs/"+id)
		if err != nil {
			return j, err
		}
		if err := json.Unmarshal(body, &j); err != nil {
			return j, fmt.Errorf("job %s: bad JSON: %w", id, err)
		}
		switch j.State {
		case "done", "failed", "canceled":
			return j, nil
		}
		if time.Now().After(deadline) {
			return j, fmt.Errorf("job %s: still %s after %v (hang)", id, j.State, l.o.JobDeadline)
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// opSSE submits a figure job and follows its SSE stream to the terminal
// event. Every read carries an explicit deadline: a stalled stream is a
// diagnosed violation, not a hung worker.
func (l *Loader) opSSE(ctx context.Context, src faults.DecisionSource) {
	fig := l.o.Figs[pick(src, len(l.o.Figs))]
	t0 := time.Now()
	err := l.sseFollow(ctx, fig)
	l.observe("sse", time.Since(t0), err)
}

func (l *Loader) sseFollow(ctx context.Context, fig int) error {
	var j jobJSON
	if err := l.post(ctx, "/v1/jobs", map[string]any{"kind": "figure", "fig": fig}, &j); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "GET", l.Base()+"/v1/jobs/"+j.ID+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("events: content type %q", ct)
	}

	lines := make(chan string, 64)
	errc := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		errc <- sc.Err()
		close(lines)
	}()

	events := 0
	var lastEvent, lastData string
	readDeadline := l.o.JobDeadline
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case line, ok := <-lines:
			if !ok {
				// Stream closed; the last event must have been terminal.
				if e := <-errc; e != nil {
					return fmt.Errorf("events: read: %w", e)
				}
				switch lastEvent {
				case "done":
					var final jobJSON
					if err := json.Unmarshal([]byte(lastData), &final); err != nil {
						return fmt.Errorf("events: terminal payload: %w", err)
					}
					if final.State != "done" {
						return fmt.Errorf("events: done event carries state %q", final.State)
					}
					// A fully warm job legitimately reports cells_done 0 —
					// every cell was served from the in-process memo and no
					// per-cell progress fired. Partial progress, though, must
					// have completed the whole matrix.
					if final.CellsDone != 0 && final.CellsDone != final.CellsTotal {
						return fmt.Errorf("events: terminal cells_done %d != cells_total %d", final.CellsDone, final.CellsTotal)
					}
					return nil
				case "failed", "canceled":
					return fmt.Errorf("events: job ended %s: %s", lastEvent, lastData)
				default:
					return fmt.Errorf("events: stream closed after %d events without a terminal event (last %q)", events, lastEvent)
				}
			}
			if strings.HasPrefix(line, "event: ") {
				lastEvent = strings.TrimPrefix(line, "event: ")
				events++
			}
			if strings.HasPrefix(line, "data: ") {
				lastData = strings.TrimPrefix(line, "data: ")
			}
		case <-time.After(readDeadline):
			return fmt.Errorf("events: no line within %v after %d events (last %q) — stalled stream", readDeadline, events, lastEvent)
		}
	}
}

// cellBenches is the pool cells/cancel ops draw from: ST SB-bound
// benchmarks, i.e. Fig. 9's rows, so every generated cell is already in
// the exactly-once union.
var cellBenches = []string{
	"502.gcc1", "502.gcc2", "502.gcc3", "502.gcc4", "502.gcc5",
	"505.mcf", "520.omnetpp", "557.xz", "tf.matmul", "tf.conv", "tf.embed",
}

var cellMechs = []string{"base", "SSB", "CSB", "SPB", "TUS"}

// cellsRequest builds a small in-union cells job.
func cellsRequest(src faults.DecisionSource) map[string]any {
	nb := 1 + pick(src, 3)
	benches := make([]string, 0, nb)
	seen := map[int]bool{}
	for len(benches) < nb {
		i := pick(src, len(cellBenches))
		if !seen[i] {
			seen[i] = true
			benches = append(benches, cellBenches[i])
		}
	}
	mechs := []string{cellMechs[pick(src, len(cellMechs))], "TUS"}
	return map[string]any{"kind": "cells", "benches": benches, "mechs": mechs, "sbs": []int{114}}
}

func (l *Loader) opCells(ctx context.Context, src faults.DecisionSource) {
	reqBody := cellsRequest(src)
	t0 := time.Now()
	err := l.submitAndWait(ctx, reqBody, "done")
	l.observe("cells", time.Since(t0), err)
}

func (l *Loader) opHist(ctx context.Context) {
	t0 := time.Now()
	err := l.submitAndWait(ctx, map[string]any{"kind": "hist", "sb": 114}, "done")
	l.observe("hist", time.Since(t0), err)
}

var litmusProgs = []string{"SB", "MP", "LB"}
var litmusMechs = []string{"base", "CSB", "TUS"}

func (l *Loader) opLitmus(ctx context.Context, src faults.DecisionSource) {
	reqBody := map[string]any{
		"kind":  "litmus",
		"progs": []string{litmusProgs[pick(src, len(litmusProgs))]},
		"mechs": []string{litmusMechs[pick(src, len(litmusMechs))]},
		"smoke": true,
	}
	t0 := time.Now()
	err := l.submitAndWait(ctx, reqBody, "done")
	l.observe("litmus", time.Since(t0), err)
}

// submitAndWait posts a job and requires the given terminal state.
func (l *Loader) submitAndWait(ctx context.Context, reqBody map[string]any, want string) error {
	var j jobJSON
	if err := l.post(ctx, "/v1/jobs", reqBody, &j); err != nil {
		return err
	}
	final, err := l.waitTerminal(ctx, j.ID)
	if err != nil {
		return err
	}
	if final.State != want {
		return fmt.Errorf("job %s (%s): state %s (%s), want %s", j.ID, j.Kind, final.State, final.Error, want)
	}
	return nil
}

// opCancel submits a cells job, cancels it immediately, and requires a
// terminal state: canceled if the cancel won the race, done if the job
// beat it. Anything else — especially a hang — is a violation.
func (l *Loader) opCancel(ctx context.Context, src faults.DecisionSource) {
	t0 := time.Now()
	err := func() error {
		var j jobJSON
		if err := l.post(ctx, "/v1/jobs", cellsRequest(src), &j); err != nil {
			return err
		}
		if err := l.post(ctx, "/v1/jobs/"+j.ID+"/cancel", map[string]any{}, nil); err != nil {
			return err
		}
		final, err := l.waitTerminal(ctx, j.ID)
		if err != nil {
			return err
		}
		if final.State != "canceled" && final.State != "done" {
			return fmt.Errorf("canceled job %s ended %s (%s)", j.ID, final.State, final.Error)
		}
		return nil
	}()
	l.observe("cancel", time.Since(t0), err)
}

// opStorm fires several identical figure submissions concurrently. The
// coalesce key is content-derived, so every response must carry the
// same key no matter how the requests raced; every job must then reach
// done.
func (l *Loader) opStorm(ctx context.Context, src faults.DecisionSource) {
	fig := l.o.Figs[pick(src, len(l.o.Figs))]
	n := 4 + pick(src, 4)
	t0 := time.Now()
	jobs := make([]jobJSON, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.post(ctx, "/v1/jobs", map[string]any{"kind": "figure", "fig": fig}, &jobs[i])
		}(i)
	}
	wg.Wait()
	err := func() error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		for i := 1; i < n; i++ {
			if jobs[i].Key != jobs[0].Key {
				return fmt.Errorf("storm: submissions %d and 0 disagree on coalesce key (%s vs %s)", i, jobs[i].Key, jobs[0].Key)
			}
		}
		// Wait out the distinct job IDs (duplicates coalesce to one).
		seen := map[string]bool{}
		for _, j := range jobs {
			if seen[j.ID] {
				continue
			}
			seen[j.ID] = true
			final, err := l.waitTerminal(ctx, j.ID)
			if err != nil {
				return err
			}
			if final.State != "done" {
				return fmt.Errorf("storm job %s ended %s (%s)", j.ID, final.State, final.Error)
			}
		}
		return nil
	}()
	l.observe("storm", time.Since(t0), err)
}

// ScrapeMetrics fetches /metrics, checks every counter series is
// monotone versus the previous scrape, and advances the baseline.
func (l *Loader) ScrapeMetrics(ctx context.Context) {
	t0 := time.Now()
	body, _, err := l.get(ctx, "/metrics")
	l.observe("metrics", time.Since(t0), err)
	if err != nil {
		return
	}
	cur, err := ParseProm(string(body))
	if err != nil {
		l.violate("metrics: unparseable exposition: %v", err)
		return
	}
	l.promMu.Lock()
	prev := l.prevMet
	l.prevMet = cur
	l.scrapes++
	l.promMu.Unlock()
	if prev != nil {
		for _, v := range MonotonicViolations(prev, cur) {
			l.violate("metrics: %s", v)
		}
	}
}

// ResetMetricsBaseline forgets the previous scrape — required after a
// daemon restart, where counters legitimately reset to zero.
func (l *Loader) ResetMetricsBaseline() {
	l.promMu.Lock()
	l.prevMet = nil
	l.promMu.Unlock()
}

// CheckExactlyOnce waits for the daemon to quiesce (jobs_inflight 0 —
// abandoned builds included) and then requires tusd_cells_run_total to
// equal the registry's expected cell total: every distinct cell
// simulated exactly once, none skipped, none repeated.
func (l *Loader) CheckExactlyOnce(ctx context.Context, when string) error {
	if l.o.ExpectedCells < 0 {
		return nil
	}
	deadline := time.Now().Add(l.o.JobDeadline)
	var m map[string]float64
	for {
		body, _, err := l.get(ctx, "/metrics")
		if err != nil {
			return fmt.Errorf("loadgen: exactly-once %s: %w", when, err)
		}
		m, err = ParseProm(string(body))
		if err != nil {
			return fmt.Errorf("loadgen: exactly-once %s: %w", when, err)
		}
		if m["tusd_jobs_inflight"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			l.violate("exactly-once %s: daemon never quiesced (%v jobs inflight after %v)",
				when, m["tusd_jobs_inflight"], l.o.JobDeadline)
			return l.err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	got := int(m["tusd_cells_run_total"])
	if got != l.o.ExpectedCells {
		l.violate("exactly-once %s: tusd_cells_run_total = %d, want exactly %d (registry cell union for figures %v)",
			when, got, l.o.ExpectedCells, l.o.Figs)
	}
	if c := m["tusd_cache_corrupt_total"]; c != 0 {
		l.violate("exactly-once %s: tusd_cache_corrupt_total = %v, want 0", when, c)
	}
	return l.err()
}

// CheckAllCached waits for quiescence and then requires the daemon to
// have simulated NOTHING: tusd_cells_run_total must be 0. This is the
// post-restart soak invariant — a fresh process on a warm disk cache
// reconstructs every response without running a single cell.
func (l *Loader) CheckAllCached(ctx context.Context, when string) error {
	body, _, err := l.get(ctx, "/metrics")
	if err != nil {
		return fmt.Errorf("loadgen: all-cached %s: %w", when, err)
	}
	m, err := ParseProm(string(body))
	if err != nil {
		return fmt.Errorf("loadgen: all-cached %s: %w", when, err)
	}
	if got := m["tusd_cells_run_total"]; got != 0 {
		l.violate("all-cached %s: tusd_cells_run_total = %v, want 0 (every cell must come off the disk cache)", when, got)
	}
	if c := m["tusd_cache_corrupt_total"]; c != 0 {
		l.violate("all-cached %s: tusd_cache_corrupt_total = %v, want 0", when, c)
	}
	return l.err()
}

// RenderReferences renders each figure's canonical CLI bytes through r
// — the byte-identity oracle. r must match the daemon's scale exactly
// (ops, parallel-ops, seed) and should have no disk cache attached so
// the oracle cannot be contaminated by the daemon's own writes.
func RenderReferences(r *harness.Runner, figs []int) (map[int][]byte, error) {
	out := make(map[int][]byte, len(figs))
	for _, fig := range figs {
		var buf bytes.Buffer
		if err := harness.RenderFigure(r, fig, &buf); err != nil {
			return nil, fmt.Errorf("loadgen: reference figure %d: %w", fig, err)
		}
		out[fig] = buf.Bytes()
	}
	return out, nil
}

// Report assembles the latency/violation report.
func (l *Loader) Report() Report {
	l.epMu.Lock()
	names := append([]string(nil), l.order...)
	l.epMu.Unlock()
	sort.Strings(names)
	eps := make([]EndpointStats, 0, len(names))
	for _, n := range names {
		e := l.ep(n)
		eps = append(eps, EndpointStats{
			Endpoint:  n,
			Errors:    e.errs.Load(),
			LatencyUS: e.hist.Snapshot().Summary(),
		})
	}
	l.promMu.Lock()
	scrapes := l.scrapes
	l.promMu.Unlock()
	return Report{
		HarnessVersion: harness.Version,
		Seed:           l.o.Seed,
		Mode:           l.mode,
		Concurrency:    l.o.Concurrency,
		RatePerSec:     l.o.Rate,
		Figs:           append([]int(nil), l.o.Figs...),
		ExpectedCells:  l.o.ExpectedCells,
		Seconds:        time.Since(l.start).Seconds(),
		Requests:       l.requests.Load(),
		Errors:         l.errors.Load(),
		MetricsScrapes: scrapes,
		Violations:     l.Violations(),
		Endpoints:      eps,
	}
}
