package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"tusim/internal/harness"
)

// GateOpts tunes the perf-regression ratchet. The ratchet is
// deliberately loose — it exists to catch order-of-magnitude
// regressions (an accidental cache bypass, a lock on the hot path), not
// single-digit-percent noise, so the trip wire is a strict >MaxRatio
// multiple and tiny absolute readings are exempted via floors.
type GateOpts struct {
	// MaxRatio is the allowed fresh/baseline multiple; fresh readings
	// strictly above baseline*MaxRatio fail. 0 means the default 2.0.
	MaxRatio float64
	// FloorSeconds exempts figure timings where both sides are under
	// this many seconds — sub-floor figures are dominated by scheduler
	// noise, not simulation work. 0 means the default 0.05s.
	FloorSeconds float64
	// FloorMicros exempts endpoint p99s where both sides are under this
	// many microseconds. 0 means the default 1000 (1ms).
	FloorMicros uint64
}

func (o GateOpts) withDefaults() GateOpts {
	if o.MaxRatio == 0 {
		o.MaxRatio = 2.0
	}
	if o.FloorSeconds == 0 {
		o.FloorSeconds = 0.05
	}
	if o.FloorMicros == 0 {
		o.FloorMicros = 1000
	}
	return o
}

// ReadBench loads a BENCH_harness.json-shaped report.
func ReadBench(path string) (harness.BenchReport, error) {
	var rep harness.BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	return rep, nil
}

// GateBench compares a fresh harness perf record against the committed
// baseline and returns one message per regression: a figure that got
// >MaxRatio slower (both sides above the noise floor), a figure the
// fresh run no longer produced, or total wall-clock blowing the ratio.
// Fresh runs being FASTER never fails — the ratchet only guards the
// slow direction; tightening the baseline is a deliberate commit.
//
// When the two records disagree on workers or num_cpu, wall-clock
// comparisons are meaningless (a 16-way baseline against a serial CI
// runner, or vice versa), so the per-figure and wall_seconds checks are
// replaced by a cell_seconds check: summed per-cell simulation time is
// worker-invariant, and sim_cycles_per_sec (already per-cell) keeps
// ratcheting as usual.
func GateBench(baseline, fresh harness.BenchReport, o GateOpts) []string {
	o = o.withDefaults()
	var out []string

	sameShape := baseline.Workers == fresh.Workers && baseline.NumCPU == fresh.NumCPU
	if sameShape {
		freshFigs := map[string]float64{}
		for _, f := range fresh.Figures {
			freshFigs[f.Name] = f.Seconds
		}
		for _, b := range baseline.Figures {
			fs, ok := freshFigs[b.Name]
			if !ok {
				out = append(out, fmt.Sprintf("%s: present in baseline but missing from fresh run", b.Name))
				continue
			}
			if b.Seconds < o.FloorSeconds && fs < o.FloorSeconds {
				continue // both under the noise floor
			}
			if fs > b.Seconds*o.MaxRatio {
				out = append(out, fmt.Sprintf("%s: %.3fs vs baseline %.3fs (%.1fx > %.1fx allowed)",
					b.Name, fs, b.Seconds, fs/b.Seconds, o.MaxRatio))
			}
		}
		if baseline.WallSeconds >= o.FloorSeconds || fresh.WallSeconds >= o.FloorSeconds {
			if fresh.WallSeconds > baseline.WallSeconds*o.MaxRatio {
				out = append(out, fmt.Sprintf("wall_seconds: %.3fs vs baseline %.3fs (%.1fx > %.1fx allowed)",
					fresh.WallSeconds, baseline.WallSeconds, fresh.WallSeconds/baseline.WallSeconds, o.MaxRatio))
			}
		}
	} else if baseline.CellSeconds >= o.FloorSeconds || fresh.CellSeconds >= o.FloorSeconds {
		// Worker-shape mismatch: compare the worker-invariant aggregate.
		// Only meaningful when both sides simulated a comparable cell
		// population — a cache-hot side reports near-zero cell time.
		if baseline.CellSeconds > 0 && fresh.CellsRun > 0 && baseline.CellsRun > 0 &&
			fresh.CellSeconds > baseline.CellSeconds*o.MaxRatio {
			out = append(out, fmt.Sprintf("cell_seconds: %.3fs vs baseline %.3fs (%.1fx > %.1fx allowed; workers %d vs %d, cpus %d vs %d — wall-clock not comparable)",
				fresh.CellSeconds, baseline.CellSeconds, fresh.CellSeconds/baseline.CellSeconds, o.MaxRatio,
				fresh.Workers, baseline.Workers, fresh.NumCPU, baseline.NumCPU))
		}
	}
	// Simulator throughput (simulated cycles per second of simulation
	// time) ratchets in the opposite direction of the timings above:
	// LOWER is worse. Both sides must have measured fresh cells — a
	// cache-hot run reports zero and proves nothing — and both must have
	// spent enough simulation time to be above scheduler noise.
	if baseline.SimCyclesPerSec > 0 && fresh.SimCyclesPerSec > 0 &&
		baseline.CellSeconds >= o.FloorSeconds && fresh.CellSeconds >= o.FloorSeconds {
		if fresh.SimCyclesPerSec < baseline.SimCyclesPerSec/o.MaxRatio {
			out = append(out, fmt.Sprintf("sim_cycles_per_sec: %.3g vs baseline %.3g (%.1fx slowdown > %.1fx allowed)",
				fresh.SimCyclesPerSec, baseline.SimCyclesPerSec, baseline.SimCyclesPerSec/fresh.SimCyclesPerSec, o.MaxRatio))
		}
	}
	return out
}

// GateLatency compares a fresh tusload latency report against a
// baseline, per endpoint, on p99. Quantiles are power-of-two bucket
// upper bounds, so with MaxRatio 2.0 a single bucket shift (exactly 2x)
// still passes — the strict > — and two shifts (4x) fail. Endpoints
// absent from either side are skipped: mixes differ across runs and the
// gate only judges endpoints both runs exercised.
func GateLatency(baseline, fresh Report, o GateOpts) []string {
	o = o.withDefaults()
	var out []string

	freshEps := map[string]EndpointStats{}
	for _, e := range fresh.Endpoints {
		freshEps[e.Endpoint] = e
	}
	for _, b := range baseline.Endpoints {
		f, ok := freshEps[b.Endpoint]
		if !ok || b.LatencyUS.Count == 0 || f.LatencyUS.Count == 0 {
			continue
		}
		bp, fp := b.LatencyUS.P99, f.LatencyUS.P99
		if bp < o.FloorMicros && fp < o.FloorMicros {
			continue
		}
		if float64(fp) > float64(bp)*o.MaxRatio {
			out = append(out, fmt.Sprintf("%s p99: %s vs baseline %s (%.1fx > %.1fx allowed)",
				b.Endpoint, us(fp), us(bp), float64(fp)/float64(bp), o.MaxRatio))
		}
	}
	return out
}
