package prefetch

import (
	"testing"

	"tusim/internal/stats"
)

// fakeIssuer records prefetch requests.
type fakeIssuer struct {
	reads    []uint64
	writes   []uint64
	writable map[uint64]bool
	reject   bool
}

func (f *fakeIssuer) PrefetchRead(line uint64) bool {
	if f.reject {
		return false
	}
	f.reads = append(f.reads, line)
	return true
}

func (f *fakeIssuer) RequestWritable(line uint64, prefetch, autoRetry bool, cb func(bool)) bool {
	if f.reject {
		return false
	}
	f.writes = append(f.writes, line)
	return true
}

func (f *fakeIssuer) Writable(line uint64) bool { return f.writable[line] }

func TestStreamDetectsAscendingStride(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	s := NewStream(fi, 2, stats.NewSet("t"))
	s.OnMiss(0x1000, false)
	s.OnMiss(0x1040, false) // stride +64, conf 1
	if len(fi.reads) != 0 {
		t.Fatalf("prefetched after one stride observation: %v", fi.reads)
	}
	s.OnMiss(0x1080, false) // conf 2 -> prefetch 0x10C0, 0x1100
	if len(fi.reads) != 2 || fi.reads[0] != 0x10C0 || fi.reads[1] != 0x1100 {
		t.Fatalf("prefetches = %#v, want [0x10C0 0x1100]", fi.reads)
	}
}

func TestStreamDetectsDescendingStride(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	s := NewStream(fi, 1, stats.NewSet("t"))
	s.OnMiss(0x2100, false)
	s.OnMiss(0x20C0, false)
	s.OnMiss(0x2080, false)
	if len(fi.reads) != 1 || fi.reads[0] != 0x2040 {
		t.Fatalf("prefetches = %#v, want [0x2040]", fi.reads)
	}
}

func TestStreamIgnoresRandomMisses(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	s := NewStream(fi, 4, stats.NewSet("t"))
	for _, a := range []uint64{0x10000, 0x94000, 0x3000, 0x771C0, 0x20800} {
		s.OnMiss(a, false)
	}
	if len(fi.reads) != 0 {
		t.Fatalf("random misses triggered prefetches: %v", fi.reads)
	}
}

func TestStreamSkipsWritableLines(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{0x10C0: true}}
	s := NewStream(fi, 2, stats.NewSet("t"))
	s.OnMiss(0x1000, false)
	s.OnMiss(0x1040, false)
	s.OnMiss(0x1080, false)
	if len(fi.reads) != 1 || fi.reads[0] != 0x1100 {
		t.Fatalf("prefetches = %#v, want only 0x1100", fi.reads)
	}
}

func TestStreamTracksMultipleStreams(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	s := NewStream(fi, 1, stats.NewSet("t"))
	// Two interleaved ascending streams far apart.
	s.OnMiss(0x1000, false)
	s.OnMiss(0x90000, false)
	s.OnMiss(0x1040, false)
	s.OnMiss(0x90040, false)
	s.OnMiss(0x1080, false)
	s.OnMiss(0x90080, false)
	want := map[uint64]bool{0x10C0: true, 0x900C0: true}
	if len(fi.reads) != 2 || !want[fi.reads[0]] || !want[fi.reads[1]] {
		t.Fatalf("prefetches = %#v, want both stream continuations", fi.reads)
	}
}

func TestSPBFullPageOnBurst(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	st := stats.NewSet("t")
	p := NewSPB(fi, 4, 4096, st)
	for i := 0; i < 4; i++ {
		p.OnStoreCommit(0x7000 + uint64(i*64))
	}
	// Forward-only: from the line after the burst head (0x70C0) to the
	// page end = 60 lines.
	if len(fi.writes) != 60 {
		t.Fatalf("SPB issued %d prefetches, want 60", len(fi.writes))
	}
	if fi.writes[0] != 0x7100 {
		t.Fatalf("first prefetch %#x, want 0x7100 (forward of the burst)", fi.writes[0])
	}
	if st.Get("spb_bursts") != 1 {
		t.Fatalf("bursts = %d", st.Get("spb_bursts"))
	}
}

func TestSPBNoBurstNoPrefetch(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	p := NewSPB(fi, 4, 4096, stats.NewSet("t"))
	// Non-consecutive lines never form a burst.
	for _, a := range []uint64{0x7000, 0x7100, 0x7240, 0x7000, 0x9040} {
		p.OnStoreCommit(a)
	}
	if len(fi.writes) != 0 {
		t.Fatalf("SPB prefetched without a burst: %d", len(fi.writes))
	}
}

func TestSPBSameLineStoresDoNotAdvanceBurst(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	p := NewSPB(fi, 4, 4096, stats.NewSet("t"))
	for i := 0; i < 32; i++ {
		p.OnStoreCommit(0x8000) // same line repeatedly
	}
	if len(fi.writes) != 0 {
		t.Fatal("repeated same-line stores must not trigger a page burst")
	}
}

func TestSPBDoesNotRePrefetchSamePage(t *testing.T) {
	fi := &fakeIssuer{writable: map[uint64]bool{}}
	p := NewSPB(fi, 2, 4096, stats.NewSet("t"))
	for i := 0; i < 8; i++ {
		p.OnStoreCommit(0xA000 + uint64(i*64))
	}
	// Burst fires once at line 0xA040 (threshold 2): prefetch covers
	// 0xA080..0xAFC0 = 62 lines; the page is not prefetched again.
	if len(fi.writes) != 62 {
		t.Fatalf("issued %d, want 62 (page prefetched once)", len(fi.writes))
	}
}
