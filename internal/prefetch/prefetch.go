// Package prefetch implements the two hardware prefetchers the paper
// models: the baseline L1D stream (stride) prefetcher that every
// configuration includes (Table I), and the Store Prefetch Burst (SPB)
// page-granularity write-permission prefetcher used as a comparison
// point (Cebrián et al., MICRO 2020).
package prefetch

import "tusim/internal/stats"

// Issuer abstracts the private cache operations prefetchers need.
type Issuer interface {
	// PrefetchRead starts a read (GetS) prefetch for a line.
	PrefetchRead(line uint64) bool
	// RequestWritable starts a write-permission (GetM) prefetch.
	RequestWritable(line uint64, prefetch, autoRetry bool, cb func(ok bool)) bool
	// Writable reports whether a line already holds E/M permission.
	Writable(line uint64) bool
}

// Stream is a per-core stride-based stream prefetcher on the L1D
// demand-miss stream. It tracks a handful of independent streams and,
// after two misses with a consistent line stride, prefetches degree
// lines ahead.
type Stream struct {
	issuer  Issuer
	degree  int
	streams []streamEntry
	issued  *stats.Counter
}

type streamEntry struct {
	lastLine uint64
	stride   int64
	conf     int
	valid    bool
}

// NewStream builds a stream prefetcher with the given lookahead degree.
func NewStream(issuer Issuer, degree int, st *stats.Set) *Stream {
	return &Stream{
		issuer:  issuer,
		degree:  degree,
		streams: make([]streamEntry, 8),
		issued:  st.Counter("stream_prefetches"),
	}
}

// OnMiss observes a demand miss and may issue prefetches.
func (s *Stream) OnMiss(addr uint64, store bool) {
	line := addr &^ 63
	// Find a stream whose predicted continuation matches, else the one
	// whose last line is closest, else reallocate round-robin.
	best := -1
	for i := range s.streams {
		e := &s.streams[i]
		if !e.valid {
			continue
		}
		if e.stride != 0 && uint64(int64(e.lastLine)+e.stride) == line {
			best = i
			break
		}
		if delta := int64(line) - int64(e.lastLine); delta != 0 && delta >= -4*64 && delta <= 4*64 {
			best = i
		}
	}
	if best < 0 {
		// Steal the least confident slot.
		best = 0
		for i := range s.streams {
			if !s.streams[i].valid {
				best = i
				break
			}
			if s.streams[i].conf < s.streams[best].conf {
				best = i
			}
		}
		s.streams[best] = streamEntry{lastLine: line, valid: true}
		return
	}
	e := &s.streams[best]
	delta := int64(line) - int64(e.lastLine)
	if delta == e.stride && delta != 0 {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 1
	}
	e.lastLine = line
	if e.conf >= 2 && e.stride != 0 {
		for i := 1; i <= s.degree; i++ {
			target := uint64(int64(line) + e.stride*int64(i))
			if s.issuer.Writable(target) {
				continue
			}
			if s.issuer.PrefetchRead(target) {
				s.issued.Inc()
			}
		}
	}
}

// SPB is the Store Prefetch Burst prefetcher: on detecting a burst of
// stores filling consecutive cache lines it requests write permission
// for the entire 4KB page (which can pollute the L1D — the paper's
// criticism of it emerges from exactly this behaviour).
type SPB struct {
	issuer     Issuer
	threshold  int
	pageBytes  uint64
	lastLine   uint64
	runLen     int
	prefetched map[uint64]bool
	issued     *stats.Counter
	bursts     *stats.Counter
}

// NewSPB builds the burst prefetcher.
func NewSPB(issuer Issuer, threshold int, pageBytes int, st *stats.Set) *SPB {
	return &SPB{
		issuer:     issuer,
		threshold:  threshold,
		pageBytes:  uint64(pageBytes),
		prefetched: make(map[uint64]bool),
		issued:     st.Counter("spb_prefetches"),
		bursts:     st.Counter("spb_bursts"),
	}
}

// OnStoreCommit observes every committed store's address.
func (s *SPB) OnStoreCommit(addr uint64) {
	line := addr &^ 63
	switch line {
	case s.lastLine:
		// same line: burst continues but run length counts lines
	case s.lastLine + 64:
		s.runLen++
	default:
		s.runLen = 1
	}
	s.lastLine = line
	if s.runLen >= s.threshold {
		page := addr &^ (s.pageBytes - 1)
		if !s.prefetched[page] {
			s.prefetched[page] = true
			s.bursts.Inc()
			// Prefetch from the burst position forward to the page end
			// (the burst walks upward; lines behind it were covered by
			// prefetch-at-commit already).
			for target := line + 64; target < page+s.pageBytes; target += 64 {
				if s.issuer.Writable(target) {
					continue
				}
				if s.issuer.RequestWritable(target, true, false, nil) {
					s.issued.Inc()
				}
			}
		}
		s.runLen = 0
	}
	// Forget pages occasionally so re-bursts can re-prefetch.
	if len(s.prefetched) > 256 {
		s.prefetched = make(map[uint64]bool)
	}
}
