// Package lmap provides the open-addressed line-map and slab pool that
// back the simulator's hot per-line state (private cache lines, MSHRs,
// write-back entries, directory entries). The built-in map[uint64]*T
// these replaced paid an interface-free but still branchy runtime call
// plus a heap allocation per inserted bucket chain; Map is a flat
// power-of-two open-addressed table with linear probing and
// backward-shift deletion, and Pool recycles entry structs through a
// slab-backed free list, so steady-state simulation performs zero
// allocations in these containers.
//
// Every Map/Pool can also run in *reference mode*, where Map delegates
// to a plain map[uint64]*T and Pool hands out a freshly allocated,
// zeroed struct on every Get (never recycling). The reference
// implementations are the trivially correct originals; the differential
// state-identity rig runs the whole simulator on both modes with
// identical seeds and asserts identical state at every drain point.
// Because reference Pools never reuse memory, any code path that fails
// to reset a recycled struct's fields diverges immediately. Build with
// `-tags tus_ref` to flip DefaultRef and run the entire test suite —
// golden figures included — on the reference containers.
package lmap

// DefaultRef selects the container implementation for callers that do
// not choose explicitly (config.Default consults it). It is false in
// normal builds; the tus_ref build tag flips it to true.
var DefaultRef = false

// hash is the splitmix64 finalizer: line addresses are multiples of the
// cache-line size, so the low bits carry no entropy and must be mixed
// before masking.
func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Map is an open-addressed uint64 → *T hash map. A nil value marks an
// empty slot, so callers must never Put a nil pointer (Put panics).
// The zero value of Map is NOT ready to use; construct with New or
// NewRef.
type Map[T any] struct {
	keys []uint64
	vals []*T
	n    int
	mask uint64
	ref  map[uint64]*T // non-nil in reference mode
}

// New returns an empty map using the implementation selected by
// DefaultRef.
func New[T any]() *Map[T] { return NewRef[T](DefaultRef) }

// NewRef returns an empty map; ref selects the reference (built-in
// map) implementation instead of the open-addressed table.
func NewRef[T any](ref bool) *Map[T] {
	if ref {
		return &Map[T]{ref: make(map[uint64]*T)}
	}
	const initCap = 16
	return &Map[T]{
		keys: make([]uint64, initCap),
		vals: make([]*T, initCap),
		mask: initCap - 1,
	}
}

// Len reports the number of stored entries.
func (m *Map[T]) Len() int {
	if m.ref != nil {
		return len(m.ref)
	}
	return m.n
}

// Get returns the value stored under k, or nil.
func (m *Map[T]) Get(k uint64) *T {
	if m.ref != nil {
		return m.ref[k]
	}
	i := hash(k) & m.mask
	for m.vals[i] != nil {
		if m.keys[i] == k {
			return m.vals[i]
		}
		i = (i + 1) & m.mask
	}
	return nil
}

// Put stores v under k, replacing any existing entry. v must be
// non-nil (nil marks an empty slot).
func (m *Map[T]) Put(k uint64, v *T) {
	if v == nil {
		panic("lmap: Put(nil)")
	}
	if m.ref != nil {
		m.ref[k] = v
		return
	}
	if m.n >= len(m.vals)*3/4 {
		m.grow()
	}
	i := hash(k) & m.mask
	for m.vals[i] != nil {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i] = k
	m.vals[i] = v
	m.n++
}

// Delete removes the entry under k if present, using backward-shift
// deletion (no tombstones, so probe chains never degrade).
func (m *Map[T]) Delete(k uint64) {
	if m.ref != nil {
		delete(m.ref, k)
		return
	}
	i := hash(k) & m.mask
	for {
		if m.vals[i] == nil {
			return // not present
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Backward-shift: walk the probe chain after i, moving back any
	// entry whose ideal slot means the vacancy would break its lookup.
	j := i
	for {
		j = (j + 1) & m.mask
		if m.vals[j] == nil {
			break
		}
		h := hash(m.keys[j]) & m.mask
		// Entry at j may move into the hole at i iff i lies on the
		// cyclic probe path from h to j.
		if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
			m.keys[i] = m.keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.vals[i] = nil
	m.n--
}

// Range calls fn for every entry. Iteration order is unspecified (and
// differs between the two implementations): callers that let order
// reach observable output must sort, exactly as they had to with the
// built-in map.
func (m *Map[T]) Range(fn func(k uint64, v *T)) {
	if m.ref != nil {
		for k, v := range m.ref {
			fn(k, v)
		}
		return
	}
	for i, v := range m.vals {
		if v != nil {
			fn(m.keys[i], v)
		}
	}
}

func (m *Map[T]) grow() {
	oldKeys, oldVals := m.keys, m.vals
	cap2 := len(oldVals) * 2
	m.keys = make([]uint64, cap2)
	m.vals = make([]*T, cap2)
	m.mask = uint64(cap2 - 1)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := hash(k) & m.mask
		for m.vals[j] != nil {
			j = (j + 1) & m.mask
		}
		m.keys[j] = k
		m.vals[j] = v
	}
}

// poolChunk is the slab granule: Pool allocates entry structs 64 at a
// time so long-running simulations touch the allocator O(peak/64)
// times instead of O(events).
const poolChunk = 64

// Pool is a slab-backed free-list allocator for entry structs. Get
// returns a recycled struct when one is available; callers own the
// reset discipline (Put does not zero, so slices inside T keep their
// grown capacity across reuse). In reference mode Get always returns a
// fresh zeroed struct and Put discards, which makes any missing reset
// observable as a state divergence in the differential rig.
type Pool[T any] struct {
	free []*T
	slab []T
	ref  bool
}

// NewPool returns a pool using the implementation selected by
// DefaultRef.
func NewPool[T any]() *Pool[T] { return &Pool[T]{ref: DefaultRef} }

// NewPoolRef returns a pool; ref selects always-fresh allocation.
func NewPoolRef[T any](ref bool) *Pool[T] { return &Pool[T]{ref: ref} }

// Get returns an entry struct. In fast mode the struct may be recycled
// and must be fully reset by the caller before use.
func (p *Pool[T]) Get() *T {
	if p.ref {
		return new(T)
	}
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return v
	}
	if len(p.slab) == 0 {
		p.slab = make([]T, poolChunk)
	}
	v := &p.slab[0]
	p.slab = p.slab[1:]
	return v
}

// Put returns an entry struct to the free list. The caller must not
// retain any reference to v afterwards.
func (p *Pool[T]) Put(v *T) {
	if p.ref || v == nil {
		return
	}
	p.free = append(p.free, v)
}
