//go:build tus_ref

package lmap

// Building with -tags tus_ref runs every Map and Pool constructed via
// the DefaultRef-consulting constructors on the trivially correct
// reference implementations (built-in map; always-fresh allocation).
// `go test -tags tus_ref ./...` therefore replays the entire suite —
// golden figures, chaos, model check — on the reference containers,
// which is the mechanical observational-equivalence proof for the
// open-addressed fast path.
func init() { DefaultRef = true }
