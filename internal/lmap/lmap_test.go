package lmap

import (
	"math/rand"
	"sort"
	"testing"
)

type entry struct {
	id   uint64
	data [8]byte
}

// TestMapDifferentialVsReference drives the same seeded random op
// stream (put/get/delete/range over a skewed key space, including
// cache-line-aligned keys with zero low-bit entropy) through the
// open-addressed map and the reference map, asserting identical
// contents after every op.
func TestMapDifferentialVsReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		fast := NewRef[entry](false)
		ref := NewRef[entry](true)
		live := map[uint64]*entry{}
		keyFor := func() uint64 {
			k := uint64(rng.Intn(512))
			if rng.Intn(2) == 0 {
				k <<= 6 // line-aligned addresses: low 6 bits always zero
			}
			return k
		}
		for op := 0; op < 20000; op++ {
			k := keyFor()
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // put
				e := &entry{id: k}
				fast.Put(k, e)
				ref.Put(k, e)
				live[k] = e
			case 4, 5: // delete
				fast.Delete(k)
				ref.Delete(k)
				delete(live, k)
			default: // get
				fv, rv := fast.Get(k), ref.Get(k)
				if fv != rv {
					t.Fatalf("seed %d op %d: Get(%d) fast=%p ref=%p", seed, op, k, fv, rv)
				}
				if fv != live[k] {
					t.Fatalf("seed %d op %d: Get(%d) = %p, model wants %p", seed, op, k, fv, live[k])
				}
			}
			if fast.Len() != ref.Len() || fast.Len() != len(live) {
				t.Fatalf("seed %d op %d: Len fast=%d ref=%d model=%d", seed, op, fast.Len(), ref.Len(), len(live))
			}
		}
		// Full-content comparison via Range (order-insensitive).
		collect := func(m *Map[entry]) []uint64 {
			var ks []uint64
			m.Range(func(k uint64, v *entry) {
				if v == nil {
					t.Fatalf("Range yielded nil value for key %d", k)
				}
				ks = append(ks, k)
			})
			sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
			return ks
		}
		fk, rk := collect(fast), collect(ref)
		if len(fk) != len(rk) {
			t.Fatalf("seed %d: final key sets differ: %d vs %d", seed, len(fk), len(rk))
		}
		for i := range fk {
			if fk[i] != rk[i] {
				t.Fatalf("seed %d: key %d: fast has %d, ref has %d", seed, i, fk[i], rk[i])
			}
		}
	}
}

func TestMapBackwardShiftDeletion(t *testing.T) {
	// Force long probe chains (many keys, small table growth steps) and
	// delete from the middle of chains; every surviving key must stay
	// findable — the property backward-shift deletion exists to keep.
	m := NewRef[entry](false)
	var keys []uint64
	for i := uint64(0); i < 300; i++ {
		k := i << 6
		keys = append(keys, k)
		m.Put(k, &entry{id: k})
	}
	rng := rand.New(rand.NewSource(5))
	for len(keys) > 0 {
		i := rng.Intn(len(keys))
		m.Delete(keys[i])
		keys[i] = keys[len(keys)-1]
		keys = keys[:len(keys)-1]
		for _, k := range keys {
			if v := m.Get(k); v == nil || v.id != k {
				t.Fatalf("after deletion, key %d lost", k)
			}
		}
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", m.Len())
	}
}

func TestMapPutReplacesAndDeleteMissing(t *testing.T) {
	m := NewRef[entry](false)
	a, b := &entry{id: 1}, &entry{id: 2}
	m.Put(64, a)
	m.Put(64, b)
	if m.Len() != 1 || m.Get(64) != b {
		t.Fatalf("Put did not replace: len=%d", m.Len())
	}
	m.Delete(128) // absent: no-op
	if m.Len() != 1 {
		t.Fatalf("Delete(missing) changed Len to %d", m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put(nil) did not panic")
		}
	}()
	m.Put(7, nil)
}

func TestMapSteadyStateZeroAlloc(t *testing.T) {
	m := NewRef[entry](false)
	pool := NewPoolRef[entry](false)
	// Warm: reach the table's high-water mark and seed the free list.
	var held []*entry
	for i := uint64(0); i < 256; i++ {
		e := pool.Get()
		e.id = i
		m.Put(i<<6, e)
		held = append(held, e)
	}
	for i, e := range held {
		m.Delete(uint64(i) << 6)
		pool.Put(e)
	}
	if n := testing.AllocsPerRun(1000, func() {
		for i := uint64(0); i < 64; i++ {
			e := pool.Get()
			e.id = i
			m.Put(i<<6, e)
		}
		for i := uint64(0); i < 64; i++ {
			k := i << 6
			pool.Put(m.Get(k))
			m.Delete(k)
		}
	}); n != 0 {
		t.Fatalf("steady-state put/get/delete allocates %v allocs/op, want 0", n)
	}
}

func TestPoolRecyclesFastAndFreshRef(t *testing.T) {
	fast := NewPoolRef[entry](false)
	a := fast.Get()
	a.id = 99
	fast.Put(a)
	b := fast.Get()
	if b != a {
		t.Fatal("fast pool did not recycle the freed struct")
	}
	if b.id != 99 {
		t.Fatal("fast pool zeroed the struct; reset is the caller's job")
	}

	ref := NewPoolRef[entry](true)
	c := ref.Get()
	c.id = 99
	ref.Put(c)
	d := ref.Get()
	if d == c {
		t.Fatal("reference pool recycled memory; it must always allocate fresh")
	}
	if d.id != 0 {
		t.Fatal("reference pool returned a non-zero struct")
	}
}

func TestPoolSlabContiguity(t *testing.T) {
	p := NewPoolRef[entry](false)
	var got []*entry
	for i := 0; i < poolChunk+5; i++ {
		got = append(got, p.Get())
	}
	// Entries within one slab are contiguous; all must be distinct.
	seen := map[*entry]bool{}
	for _, e := range got {
		if seen[e] {
			t.Fatal("pool returned the same struct twice without a Put")
		}
		seen[e] = true
	}
	p.Put(nil) // tolerated no-op
}

func BenchmarkMapGetHit(b *testing.B) {
	for _, mode := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"ref", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := NewRef[entry](mode.ref)
			for i := uint64(0); i < 1024; i++ {
				m.Put(i<<6, &entry{id: i})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m.Get(uint64(i%1024)<<6) == nil {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkMapChurn(b *testing.B) {
	for _, mode := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"ref", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := NewRef[entry](mode.ref)
			p := NewPoolRef[entry](mode.ref)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := uint64(i%512) << 6
				if e := m.Get(k); e != nil {
					m.Delete(k)
					p.Put(e)
				} else {
					m.Put(k, p.Get())
				}
			}
		})
	}
}
