// Package mech implements the store-handling policies the paper
// compares TUS against: the baseline in-order drain (with
// prefetch-at-commit), the idealized Scalable Store Buffer (SSB), and
// the Coalescing Store Buffer (CSB). SPB is the baseline plus the
// page-burst prefetcher from internal/prefetch, wired by the system.
package mech

import (
	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/memsys"
	"tusim/internal/stats"
)

// Base drains committed stores from the SB head in order; a store that
// lacks write permission blocks the drain until its line arrives
// (prefetch-at-commit usually hides this, except on LLC misses and
// long bursts — the paper's motivating pathologies).
type Base struct {
	core *cpu.Core
	priv *memsys.Private

	requested bool // demand GetM issued for the current head

	cBlocked *stats.Counter
	cDrained *stats.Counter
}

// NewBase builds the baseline drain policy.
func NewBase(core *cpu.Core, st *stats.Set) *Base {
	return &Base{
		core:     core,
		priv:     core.Priv(),
		cBlocked: st.Counter("drain_blocked_cycles"),
		cDrained: st.Counter("stores_drained"),
	}
}

// Name implements cpu.DrainMechanism.
func (b *Base) Name() string { return config.Baseline.String() }

// drainLookahead is how many distinct committed lines ahead of the SB
// head keep RFOs in flight (real store buffers sustain several
// outstanding store misses; prefetch-at-commit covers most of this,
// but its requests are dropped under MSHR pressure).
const drainLookahead = 16

// Tick drains at most one committed store per cycle (pipelined L1D
// store port).
func (b *Base) Tick() {
	e := b.core.SB.Head()
	if e == nil || !e.Committed {
		return
	}
	b.core.SB.LookaheadLines(drainLookahead, func(line uint64) {
		if !b.priv.Writable(line) {
			b.priv.RequestWritable(line, false, false, nil)
		}
	})
	line := e.Line()
	if b.priv.Writable(line) {
		if b.priv.StoreVisible(e.Addr, e.Data[:e.Size]) {
			b.core.SB.Pop()
			b.requested = false
			b.cDrained.Inc()
			return
		}
	}
	if !b.requested {
		// Demand write-permission request (the prefetch-at-commit one
		// may have been dropped under MSHR pressure).
		b.requested = b.priv.RequestWritable(line, false, true, nil)
	}
	b.cBlocked.Inc()
}

// Forward implements cpu.DrainMechanism: the baseline holds no stores
// outside the SB.
func (b *Base) Forward(addr uint64, size uint8) (cpu.ForwardResult, [8]byte) {
	return cpu.FwdMiss, [8]byte{}
}

// Drained implements cpu.DrainMechanism.
func (b *Base) Drained() bool { return true }

// FlushDone implements cpu.DrainMechanism.
func (b *Base) FlushDone() bool { return true }
