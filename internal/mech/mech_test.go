package mech

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/event"
	"tusim/internal/isa"
	"tusim/internal/memsys"
	"tusim/internal/stats"
)

// rig builds a single core with the given mechanism constructor.
type rig struct {
	q    *event.Queue
	core *cpu.Core
	st   *stats.Set
	mem  *memsys.Memory
	priv *memsys.Private
}

func newRig(t *testing.T, ops []isa.MicroOp, mechName string, mut func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default()
	cfg.StreamPrefetcher = false
	if mut != nil {
		mut(cfg)
	}
	q := event.NewQueue()
	mem := memsys.NewMemory()
	st := stats.NewSet("t")
	dram := memsys.NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := memsys.NewDirectory(cfg, q, mem, dram, st)
	priv := memsys.NewPrivate(0, cfg, q, dir, st)
	dir.Attach([]*memsys.Private{priv})
	core := cpu.NewCore(0, cfg, q, priv, isa.NewSliceStream(ops), st)
	var m cpu.DrainMechanism
	switch mechName {
	case "base":
		m = NewBase(core, st)
	case "ssb":
		m = NewSSB(core, cfg, q, st)
	case "csb":
		m = NewCSB(core, cfg, st)
	default:
		t.Fatalf("unknown mech %q", mechName)
	}
	core.SetMechanism(m)
	return &rig{q: q, core: core, st: st, mem: mem, priv: priv}
}

func (r *rig) run(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if r.core.Done() {
			return
		}
		r.q.Advance()
		r.core.Tick()
	}
	t.Fatalf("did not finish in %d cycles", maxCycles)
}

func storeTrace(addrs ...uint64) []isa.MicroOp {
	var ops []isa.MicroOp
	for _, a := range addrs {
		ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: a, Size: 8})
	}
	return ops
}

// ---------- Baseline ----------

func TestBaseDrainsInOrder(t *testing.T) {
	r := newRig(t, storeTrace(0x5000, 0x1000, 0x9000), "base", nil)
	var order []uint64
	r.priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		order = append(order, line)
	}
	r.run(t, 1_000_000)
	want := []uint64{0x5000, 0x1000, 0x9000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %#v, want %#v", order, want)
		}
	}
}

func TestBaseBlocksOnMiss(t *testing.T) {
	// Without prefetch-at-commit, each cold store blocks the drain for
	// a full miss round trip.
	r := newRig(t, storeTrace(0x1000, 0x2000), "base", func(c *config.Config) {
		c.PrefetchAtCommit = false
	})
	r.run(t, 1_000_000)
	if r.st.Get("drain_blocked_cycles") < 100 {
		t.Fatalf("drain_blocked_cycles = %d; cold stores should block the baseline drain",
			r.st.Get("drain_blocked_cycles"))
	}
}

func TestBaseWritesCorrectData(t *testing.T) {
	r := newRig(t, storeTrace(0x1000), "base", nil)
	r.run(t, 1_000_000)
	pl := r.priv.Lookup(0x1000)
	want := cpu.StoreValue(0, 0)
	for i := 0; i < 8; i++ {
		if pl.L1Data[i] != want[i] {
			t.Fatalf("L1 data %v, want %v", pl.L1Data[:8], want)
		}
	}
}

// ---------- SSB ----------

func TestSSBAbsorbsBurstIntoTSOB(t *testing.T) {
	// 200 cold stores: the SB must never fill (store-wait-free), with
	// the backlog absorbed by the TSOB.
	var addrs []uint64
	for i := 0; i < 200; i++ {
		addrs = append(addrs, 0x10000+uint64(i)*64)
	}
	r := newRig(t, storeTrace(addrs...), "ssb", nil)
	r.run(t, 2_000_000)
	if r.st.Get("stall_sb") != 0 {
		t.Fatalf("SSB had %d SB stalls; the TSOB should absorb the burst", r.st.Get("stall_sb"))
	}
	if r.st.Get("tsob_peak_occupancy") == 0 {
		t.Fatal("TSOB never used")
	}
	if r.st.Get("ssb_llc_writes") != 200 {
		t.Fatalf("ssb_llc_writes = %d, want 200 (one shared-cache write per store)",
			r.st.Get("ssb_llc_writes"))
	}
}

func TestSSBForwardsFromTSOB(t *testing.T) {
	ops := storeTrace(0x1000)
	// Pad so the store reaches the TSOB before the load issues.
	for i := 0; i < 40; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.IntAdd, Dep1: 1})
	}
	ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: 0x1000, Size: 8, Dep1: 1})
	r := newRig(t, ops, "ssb", func(c *config.Config) { c.PrefetchAtCommit = false })
	var got [8]byte
	r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { got = v }
	r.run(t, 1_000_000)
	if got != cpu.StoreValue(0, 0) {
		t.Fatalf("load = %v, want TSOB-forwarded store value", got)
	}
}

func TestSSBDrainsInOrder(t *testing.T) {
	r := newRig(t, storeTrace(0x9000, 0x1000, 0x5000), "ssb", nil)
	var order []uint64
	r.priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		order = append(order, line)
	}
	r.run(t, 1_000_000)
	want := []uint64{0x9000, 0x1000, 0x5000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %#v, want %#v", order, want)
		}
	}
}

// ---------- CSB ----------

func TestCSBCoalescesBeforeWriting(t *testing.T) {
	// Four stores to one line + four to another: two L1D line writes.
	r := newRig(t, storeTrace(0x1000, 0x1008, 0x1010, 0x1018, 0x2000, 0x2008, 0x2010, 0x2018),
		"csb", nil)
	r.run(t, 1_000_000)
	if w := r.st.Get("l1d_writes"); w != 2 {
		t.Fatalf("l1d_writes = %d, want 2 (coalesced)", w)
	}
	if r.st.Get("csb_group_writes") == 0 {
		t.Fatal("no group writes recorded")
	}
}

func TestCSBGroupAtomicity(t *testing.T) {
	// An A,B,A cycle forms an atomic group: both lines must publish in
	// the same cycle.
	r := newRig(t, storeTrace(0x1000, 0x2000, 0x1008, 0x3000), "csb", nil)
	pubCycle := map[uint64]uint64{}
	r.priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		pubCycle[line] = r.q.Now()
	}
	r.run(t, 1_000_000)
	if pubCycle[0x1000] != pubCycle[0x2000] {
		t.Fatalf("atomic group published at %d and %d", pubCycle[0x1000], pubCycle[0x2000])
	}
}

func TestCSBRequiresPermissionBeforeWrite(t *testing.T) {
	// Unlike TUS, CSB may not write the L1D before the line is
	// writable: at every visible write the line must hold E/M.
	r := newRig(t, storeTrace(0x1000, 0x2000, 0x3000), "csb", nil)
	r.priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		if !r.priv.Writable(line) {
			t.Fatalf("CSB published line %#x without permission", line)
		}
		if pl := r.priv.Lookup(line); pl.NotVisible {
			t.Fatalf("CSB line %#x is not-visible; only TUS uses that state", line)
		}
	}
	r.run(t, 1_000_000)
}

func TestCSBFenceFlushes(t *testing.T) {
	ops := storeTrace(0x1000)
	ops = append(ops, isa.MicroOp{Kind: isa.Fence})
	ops = append(ops, storeTrace(0x2000)...)
	r := newRig(t, ops, "csb", nil)
	pubs := 0
	r.priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) { pubs++ }
	r.run(t, 1_000_000)
	if pubs != 2 {
		t.Fatalf("published %d lines, want 2", pubs)
	}
}
