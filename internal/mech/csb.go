package mech

import (
	"sort"

	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/memsys"
	"tusim/internal/stats"
	"tusim/internal/trace"
	"tusim/internal/wcb"
)

// CSB is the Coalescing Store Buffer (Ros & Kaxiras, ISCA'18): it
// coalesces committed stores across non-consecutive lines in the WCBs
// and writes each atomic group to the L1D *after* acquiring write
// permission for every line in the group (acquired one at a time in
// lex order, which guarantees forward progress). While a group waits
// for permissions the SB stops draining — CSB's weakness on
// long-latency store misses, which TUS removes.
type CSB struct {
	core *cpu.Core
	priv *memsys.Private
	cfg  *config.Config

	wcbs     *wcb.Set
	flushing []*wcb.Buffer
	// lineScratch backs the per-cycle lex-sorted line list of the group
	// being flushed.
	lineScratch []uint64
	// requested marks the line currently being acquired for the group.
	requested map[uint64]bool
	idle      int

	cDrained, cBlocked, cGroupWrites *stats.Counter
	cCoalesced, cWCBSearch           *stats.Counter

	tr *trace.Tracer
}

// csbIdleFlush is how many drain-idle cycles the WCBs may hold stores
// before being pushed to the cache (bounds store invisibility).
const csbIdleFlush = 8

// csbLookahead matches the baseline drain-ahead RFO window.
const csbLookahead = 16

// NewCSB builds the coalescing store buffer policy.
func NewCSB(core *cpu.Core, cfg *config.Config, st *stats.Set) *CSB {
	return &CSB{
		core:         core,
		priv:         core.Priv(),
		cfg:          cfg,
		wcbs:         wcb.NewSet(cfg.WCBCount, cfg.LexBits),
		requested:    make(map[uint64]bool),
		cDrained:     st.Counter("stores_drained"),
		cBlocked:     st.Counter("drain_blocked_cycles"),
		cGroupWrites: st.Counter("csb_group_writes"),
		cCoalesced:   st.Counter("csb_coalesced_stores"),
		cWCBSearch:   st.Counter("wcb_searches"),
	}
}

// Name implements cpu.DrainMechanism.
func (c *CSB) Name() string { return config.CSB.String() }

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (c *CSB) SetTracer(t *trace.Tracer) { c.tr = t }

// Tick implements cpu.DrainMechanism.
func (c *CSB) Tick() {
	if c.flushing != nil {
		c.advanceFlush()
		if c.flushing != nil {
			c.cBlocked.Inc()
			return
		}
	}

	// RFOs run ahead of the drain as in the baseline, and the WCBs
	// accept up to commit-width stores per cycle (coalescing is not
	// L1D-port limited).
	c.core.SB.LookaheadLines(csbLookahead, func(line uint64) {
		if !c.priv.Writable(line) {
			c.priv.RequestWritable(line, false, false, nil)
		}
	})
	for n := 0; n < c.cfg.CommitWidth; n++ {
		e := c.core.SB.Head()
		if e == nil || !e.Committed {
			if n == 0 && !c.wcbs.Empty() {
				// Idle: eventually push lingering coalesced stores out.
				c.idle++
				if c.idle >= csbIdleFlush {
					c.startFlush()
				}
			}
			return
		}
		c.idle = 0
		switch c.wcbs.Insert(e.Addr, e.Data[:e.Size]) {
		case wcb.Inserted:
			c.tr.Emit(trace.WCBCoalesce, int32(c.core.ID), c.core.Now(), e.Addr, e.Seq, 0)
			c.core.SB.Pop()
			c.cDrained.Inc()
			c.cCoalesced.Inc()
		case wcb.NeedFlush, wcb.LexConflict:
			c.startFlush()
			c.cBlocked.Inc()
			return
		}
	}
}

func (c *CSB) startFlush() {
	c.flushing = c.wcbs.OldestGroup()
	c.advanceFlush()
}

// advanceFlush acquires permissions in lex order and performs the
// atomic group write once every line is held.
func (c *CSB) advanceFlush() {
	if c.flushing == nil {
		return
	}
	lines := c.lineScratch[:0]
	for _, b := range c.flushing {
		lines = append(lines, b.Line)
	}
	c.lineScratch = lines
	// Issue permission requests in lex order but in parallel: the order
	// in which RFOs *start* follows the global order (forward
	// progress), while overlapping their latencies keeps the drain off
	// the critical path when several group lines miss.
	sort.Slice(lines, func(i, j int) bool {
		return wcb.Lex(lines[i], c.cfg.LexBits) < wcb.Lex(lines[j], c.cfg.LexBits)
	})
	allHeld := true
	for _, ln := range lines {
		if c.priv.Writable(ln) {
			continue
		}
		allHeld = false
		if !c.requested[ln] {
			ln := ln
			if c.priv.RequestWritable(ln, false, true, func(bool) { delete(c.requested, ln) }) {
				c.requested[ln] = true
			}
		}
	}
	if !allHeld {
		return
	}
	// All permissions held: the group must also fit the L1D.
	if !c.priv.L1WaysAvailable(lines) {
		return
	}
	for _, b := range c.flushing {
		if !c.priv.StoreVisibleLine(b.Line, &b.Data, b.Mask) {
			// A permission was stolen between the check and the write;
			// restart acquisition next cycle.
			return
		}
	}
	c.cGroupWrites.Inc()
	c.wcbs.Release(c.flushing)
	c.flushing = nil
	c.idle = 0
}

// FinalizeStats exports WCB search counts at run end.
func (c *CSB) FinalizeStats() {
	ctr := c.cWCBSearch
	ctr.Add(c.wcbs.Searches - ctr.Value())
}

// Forward implements cpu.DrainMechanism (WCBs are searched on loads).
func (c *CSB) Forward(addr uint64, size uint8) (cpu.ForwardResult, [8]byte) {
	hit, conflict, out := c.wcbs.Forward(addr, size)
	switch {
	case hit:
		return cpu.FwdHit, out
	case conflict:
		// Force the partial data out so the load can complete from L1D.
		if c.flushing == nil {
			c.startFlush()
		}
		return cpu.FwdConflict, out
	}
	return cpu.FwdMiss, out
}

// Drained implements cpu.DrainMechanism.
func (c *CSB) Drained() bool { return c.wcbs.Empty() && c.flushing == nil }

// FlushDone reports whether every coalesced store reached the cache;
// while stores linger the idle timer pushes them out, so a waiting
// fence always completes.
func (c *CSB) FlushDone() bool {
	if c.wcbs.Empty() && c.flushing == nil {
		return true
	}
	// A fence is waiting: flush immediately rather than idling.
	if c.flushing == nil {
		c.startFlush()
	}
	return false
}
