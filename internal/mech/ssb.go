package mech

import (
	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/event"
	"tusim/internal/memsys"
	"tusim/internal/stats"
	"tusim/internal/trace"
)

// SSB is the idealized Scalable Store Buffer (Wenisch et al., ISCA'07):
// committed stores move immediately from the SB into a large in-order
// FIFO (the TSOB), so the SB almost never blocks. The TSOB drains
// store-by-store in order, requiring write permission and — because
// SSB does not coalesce — paying a shared-cache write per store. As in
// the paper we idealize invalidation recovery (0-cycle replay) and let
// loads forward from the TSOB for free.
type SSB struct {
	core *cpu.Core
	priv *memsys.Private
	cfg  *config.Config
	q    *event.Queue

	tsob  []cpu.SBEntry
	head  int
	count int

	requested bool
	// llcInflight models the shared-cache write port: SSB performs a
	// write in the shared cache for every store (no coalescing), which
	// bounds its sustained drain throughput.
	llcInflight int

	cDrained  *stats.Counter
	cLLCWrite *stats.Counter
	cBlocked  *stats.Counter
	cPeak     *stats.Counter
	cSearches *stats.Counter

	hTSOBOcc *stats.Histogram

	tr *trace.Tracer
}

// ssbLookahead is how many distinct TSOB lines ahead of the drain head
// keep permission requests in flight.
const ssbLookahead = 64

// ssbLLCWritePort bounds concurrent second-level-cache writes (one per
// drained store; SSB does not coalesce, so every store pays one).
const ssbLLCWritePort = 16

// NewSSB builds the idealized SSB with cfg.TSOBEntries slots.
func NewSSB(core *cpu.Core, cfg *config.Config, q *event.Queue, st *stats.Set) *SSB {
	return &SSB{
		core:      core,
		priv:      core.Priv(),
		cfg:       cfg,
		q:         q,
		tsob:      make([]cpu.SBEntry, cfg.TSOBEntries),
		cDrained:  st.Counter("stores_drained"),
		cLLCWrite: st.Counter("ssb_llc_writes"),
		cBlocked:  st.Counter("drain_blocked_cycles"),
		cPeak:     st.Counter("tsob_peak_occupancy"),
		cSearches: st.Counter("tsob_searches"),
		hTSOBOcc:  st.Histogram("tsob_occupancy"),
	}
}

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (s *SSB) SetTracer(t *trace.Tracer) { s.tr = t }

// Name implements cpu.DrainMechanism.
func (s *SSB) Name() string { return config.SSB.String() }

func (s *SSB) at(i int) *cpu.SBEntry { return &s.tsob[(s.head+i)%len(s.tsob)] }

// Tick moves committed stores into the TSOB (up to commit width per
// cycle, store-wait-free) and drains the TSOB head (one per cycle).
func (s *SSB) Tick() {
	for n := 0; n < s.cfg.CommitWidth; n++ {
		e := s.core.SB.Head()
		if e == nil || !e.Committed || s.count == len(s.tsob) {
			break
		}
		*s.at(s.count) = *e
		s.count++
		s.tr.Emit(trace.TSOBEnqueue, int32(s.core.ID), s.q.Now(), e.Addr, e.Seq, uint64(s.count))
		s.core.SB.Pop()
	}
	if uint64(s.count) > s.cPeak.Value() {
		// Track peak occupancy via a counter (monotone).
		s.cPeak.Add(uint64(s.count) - s.cPeak.Value())
	}
	s.hTSOBOcc.Observe(uint64(s.count))
	if s.count == 0 {
		return
	}
	// Drain lookahead: keep write-permission requests in flight for the
	// next few distinct lines so the deep TSOB drains with memory-level
	// parallelism (a store that committed a thousand entries ago has
	// long lost its prefetch-at-commit line from the L1D).
	seen := 0
	var last uint64 = ^uint64(0)
	for i := 0; i < s.count && seen < ssbLookahead; i++ {
		ln := s.at(i).Line()
		if ln == last {
			continue
		}
		last = ln
		seen++
		if !s.priv.Writable(ln) {
			// Demand-class: the idealized SSB keeps its drain window's
			// RFOs on the fast path.
			s.priv.RequestWritable(ln, false, false, nil)
		}
	}
	h := s.at(0)
	line := h.Line()
	if s.llcInflight >= ssbLLCWritePort {
		// Shared-cache write port saturated: the uncoalesced
		// store-by-store LLC updates throttle the drain.
		s.cBlocked.Inc()
		return
	}
	if s.priv.Writable(line) {
		if s.priv.StoreVisible(h.Addr, h.Data[:h.Size]) {
			// SSB performs the write in the shared cache for every
			// store (no coalescing): occupy an LLC write-port slot and
			// count the energy event.
			s.cLLCWrite.Inc()
			s.llcInflight++
			s.q.After(s.cfg.L2.Latency, func() { s.llcInflight-- })
			s.tr.Emit(trace.StoreVisibleEv, int32(s.core.ID), s.q.Now(), h.Addr, h.Seq, 0)
			s.head = (s.head + 1) % len(s.tsob)
			s.count--
			s.requested = false
			s.cDrained.Inc()
			return
		}
	}
	if !s.requested {
		s.requested = s.priv.RequestWritable(line, false, true, nil)
	}
	s.cBlocked.Inc()
}

// Forward searches the TSOB youngest-first (idealized: free and at
// forwarding latency).
func (s *SSB) Forward(addr uint64, size uint8) (cpu.ForwardResult, [8]byte) {
	var zero [8]byte
	want := memsys.MaskFor(addr, size)
	line := addr &^ 63
	s.cSearches.Inc()
	for i := s.count - 1; i >= 0; i-- {
		e := s.at(i)
		if e.Line() != line {
			continue
		}
		m := e.Mask()
		if !m.Overlaps(want) {
			continue
		}
		if !m.Covers(want) {
			return cpu.FwdConflict, zero
		}
		var out [8]byte
		off := int(addr&63) - int(e.Addr&63)
		copy(out[:size], e.Data[off:off+int(size)])
		return cpu.FwdHit, out
	}
	return cpu.FwdMiss, zero
}

// Drained implements cpu.DrainMechanism.
func (s *SSB) Drained() bool { return s.count == 0 }

// FlushDone implements cpu.DrainMechanism.
func (s *SSB) FlushDone() bool { return s.count == 0 }
