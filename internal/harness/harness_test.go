package harness

import (
	"math"
	"strings"
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

func TestGeomean(t *testing.T) {
	if g, err := Geomean([]float64{4, 1}); err != nil || math.Abs(g-2) > 1e-9 {
		t.Fatalf("Geomean(4,1) = %f, %v, want 2", g, err)
	}
	if g, err := Geomean([]float64{2, 2, 2}); err != nil || math.Abs(g-2) > 1e-9 {
		t.Fatalf("Geomean(2,2,2) = %f, %v", g, err)
	}
}

// TestGeomeanRejectsBadInput pins the loud-failure contract: empty,
// NaN, infinite, and non-positive inputs are errors, never a silently
// plausible aggregate.
func TestGeomeanRejectsBadInput(t *testing.T) {
	cases := map[string][]float64{
		"empty":    nil,
		"nan":      {1.0, math.NaN(), 2.0},
		"inf":      {1.0, math.Inf(1)},
		"zero":     {1.0, 0},
		"negative": {1.0, -2.5},
	}
	for name, xs := range cases {
		if g, err := Geomean(xs); err == nil {
			t.Fatalf("Geomean(%s=%v) = %f, want error", name, xs, g)
		}
	}
}

func TestSCurveSorted(t *testing.T) {
	in := []float64{1.3, 0.9, 1.1}
	out, err := SCurve(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0.9 || out[2] != 1.3 {
		t.Fatalf("SCurve = %v", out)
	}
	if in[0] != 1.3 {
		t.Fatal("SCurve mutated its input")
	}
	if empty, err := SCurve(nil); err != nil || len(empty) != 0 {
		t.Fatalf("SCurve(nil) = %v, %v; want empty, nil", empty, err)
	}
}

// TestSCurveRejectsNaN: a NaN has no sort position, so the curve must
// fail rather than render a mis-sorted panel.
func TestSCurveRejectsNaN(t *testing.T) {
	if out, err := SCurve([]float64{1.0, math.NaN()}); err == nil {
		t.Fatalf("SCurve with NaN = %v, want error", out)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 3000
	b, _ := workload.ByName("503.bw2")
	a1, err := r.Run(b, config.Baseline, 114)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Run(b, config.Baseline, 114)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cycles != a2.Cycles || a1.Stats != a2.Stats {
		t.Fatal("memoized run returned a different result")
	}
}

func TestRunnerDeterministic(t *testing.T) {
	b, _ := workload.ByName("502.gcc1")
	mk := func() uint64 {
		r := NewQuickRunner()
		r.Ops = 4000
		res, err := r.Run(b, config.TUS, 114)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if mk() != mk() {
		t.Fatal("identical runs produced different cycle counts")
	}
}

func TestRunnerChecked(t *testing.T) {
	// The TSO checker must pass on a real workload for every mechanism.
	r := NewQuickRunner()
	r.Ops = 4000
	r.Check = true
	b, _ := workload.ByName("502.gcc2")
	for _, m := range config.Mechanisms {
		if _, err := r.Run(b, m, 114); err != nil {
			t.Fatalf("[%v] %v", m, err)
		}
	}
}

func TestFig9Structure(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 3000
	rows, err := Fig9(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.SBBound()) {
		t.Fatalf("%d rows, want %d", len(rows), len(workload.SBBound()))
	}
	// Sorted by baseline stalls, descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Stalls[config.Baseline] > rows[i-1].Stalls[config.Baseline]+1e-9 {
			t.Fatal("Fig9 rows not sorted by baseline stalls")
		}
	}
	var sb strings.Builder
	PrintFig9(&sb, rows)
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Fatal("PrintFig9 output missing header")
	}
}

func TestSpeedupStudyStructure(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 3000
	r.ParallelOps = 400
	s, err := Speedups(r, 114, 114)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.SCurves[config.TUS]) != len(workload.All()) {
		t.Fatalf("S-curve has %d points, want %d", len(s.SCurves[config.TUS]), len(workload.All()))
	}
	// The baseline's speedup over itself is exactly 1 everywhere.
	for _, x := range s.SCurves[config.Baseline] {
		if math.Abs(x-1) > 1e-12 {
			t.Fatalf("baseline self-speedup %f != 1", x)
		}
	}
	if len(s.Breakdown) != len(workload.SBBound()) {
		t.Fatalf("breakdown rows = %d", len(s.Breakdown))
	}
	var sb strings.Builder
	s.Print(&sb, "Figure 10")
	if !strings.Contains(sb.String(), "geomean") {
		t.Fatal("Print output missing geomean")
	}
}

func TestEDPStudyStructure(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 3000
	benchs := workload.SBBound()[:3]
	s, err := EDP(r, benchs, 114, 114)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, row := range s.Rows {
		if math.Abs(row.EDP[config.Baseline]-1) > 1e-12 {
			t.Fatalf("baseline EDP not normalized: %f", row.EDP[config.Baseline])
		}
		for _, m := range config.Mechanisms {
			if row.EDP[m] <= 0 {
				t.Fatalf("non-positive EDP for %v", m)
			}
		}
	}
}

func TestFig8Structure(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 3000
	r.ParallelOps = 400
	rows, err := Fig8(r)
	if err != nil {
		t.Fatal(err)
	}
	// 3 suites x 3 SB sizes.
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, row := range rows {
		for _, m := range config.Mechanisms {
			if row.Speedup[m] <= 0 {
				t.Fatalf("non-positive speedup for %v", m)
			}
		}
	}
}

func TestCAMTablePrint(t *testing.T) {
	var sb strings.Builder
	PrintCAMTable(&sb)
	out := sb.String()
	for _, want := range []string{"2.00x", "21%", "13.0x", "10.0x", "5.0x", "272 bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CAM table missing %q:\n%s", want, out)
		}
	}
}
