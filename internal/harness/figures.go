package harness

import (
	"fmt"
	"io"
	"strings"

	"tusim/internal/config"
	"tusim/internal/energy"
	"tusim/internal/workload"
)

// SBSizes are the store buffer sizes of the scalability study (Fig. 8).
var SBSizes = []int{32, 64, 114}

// Each figure builder first enumerates its full cell list and hands it
// to Runner.Prefetch, which fans the cells out to the worker pool; the
// assembly loops below then read every cell from the in-process cache
// in the same deterministic order as the original serial harness, so
// output is byte-identical at any worker count.

// Fig8Row is one (suite, SB size) series of geomean speedups relative
// to the 114-entry-SB baseline.
type Fig8Row struct {
	Suite   string
	SB      int
	Speedup map[config.Mechanism]float64
}

// fig8Suite is one suite series of the scalability study.
type fig8Suite struct {
	name   string
	benchs []workload.Benchmark
}

// fig8Suites enumerates the scalability study's suite series; the
// registry reuses it for cell counting.
func fig8Suites() []fig8Suite {
	spec := make([]workload.Benchmark, 0, 8)
	tf := make([]workload.Benchmark, 0, 4)
	for _, b := range workload.SBBound() {
		if b.Suite == workload.TF {
			tf = append(tf, b)
		} else {
			spec = append(spec, b)
		}
	}
	return []fig8Suite{
		{"SPEC-ST(SB-bound)", spec},
		{"TF", tf},
		{"Parsec", workload.BySuite(workload.Parsec)},
	}
}

// fig8Cells is the scalability study's full cell list.
func fig8Cells() []Cell {
	var cells []Cell
	for _, s := range fig8Suites() {
		for _, b := range s.benchs {
			cells = append(cells, Cell{b, config.Baseline, 114})
			for _, sb := range SBSizes {
				for _, m := range config.Mechanisms {
					cells = append(cells, Cell{b, m, sb})
				}
			}
		}
	}
	return cells
}

// Fig8 regenerates the scalability analysis: geomean speedup over the
// 114-entry baseline for every mechanism, SB size, and suite.
func Fig8(r *Runner) ([]Fig8Row, error) {
	suites := fig8Suites()
	if err := r.Prefetch(fig8Cells()); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, s := range suites {
		for _, sb := range SBSizes {
			row := Fig8Row{Suite: s.name, SB: sb, Speedup: map[config.Mechanism]float64{}}
			for _, m := range config.Mechanisms {
				var sp []float64
				for _, b := range s.benchs {
					base, bok, err := r.runCell("fig8", b, config.Baseline, 114)
					if err != nil {
						return nil, err
					}
					res, rok, err := r.runCell("fig8", b, m, sb)
					if err != nil {
						return nil, err
					}
					if !bok || !rok {
						// Quarantined: the geomean degrades to the
						// surviving benchmarks (recorded in the report's
						// degraded section).
						continue
					}
					sp = append(sp, Speedup(res, base))
				}
				gm, err := Geomean(sp)
				if err != nil {
					return nil, fmt.Errorf("fig8 %s/SB=%d/%v: %w", s.name, sb, m, err)
				}
				row.Speedup[m] = gm
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFig8 renders the Fig. 8 table.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Figure 8: geomean speedup vs 114-entry-SB baseline, by SB size")
	fmt.Fprintf(w, "%-20s %4s", "suite", "SB")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-20s %4d", row.Suite, row.SB)
		for _, m := range config.Mechanisms {
			fmt.Fprintf(w, " %+7.1f%%", 100*(row.Speedup[m]-1))
		}
		fmt.Fprintln(w)
	}
}

// Fig9Row is one benchmark's SB-induced stall fractions per mechanism.
type Fig9Row struct {
	Bench  string
	Stalls map[config.Mechanism]float64 // % of cycles
}

// fullMatrix enumerates benchs × mechanisms at mechSB plus the baseline
// at baseSB — the cell set shared by the stall, speedup, and EDP
// studies.
func fullMatrix(benchs []workload.Benchmark, baseSB, mechSB int) []Cell {
	var cells []Cell
	for _, b := range benchs {
		cells = append(cells, Cell{b, config.Baseline, baseSB})
		for _, m := range config.Mechanisms {
			cells = append(cells, Cell{b, m, mechSB})
		}
	}
	return cells
}

// Fig9 regenerates the SB-induced dispatch stall breakdown (114 SB,
// single-threaded SB-bound set, sorted by baseline stalls).
func Fig9(r *Runner) ([]Fig9Row, error) {
	if err := r.Prefetch(fullMatrix(workload.SBBound(), 114, 114)); err != nil {
		return nil, err
	}
	benchs, err := r.sbBoundSorted(114)
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, b := range benchs {
		row := Fig9Row{Bench: b.Name, Stalls: map[config.Mechanism]float64{}}
		good := true
		for _, m := range config.Mechanisms {
			res, ok, err := r.runCell("fig9", b, m, 114)
			if err != nil {
				return nil, err
			}
			if !ok {
				good = false
				continue
			}
			row.Stalls[m] = res.SBStallPct()
		}
		// A row with any quarantined cell is dropped whole: a partial
		// stall comparison would be misleading. The skip is recorded in
		// the degraded section.
		if good {
			rows = append(rows, row)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fig9: every benchmark quarantined")
	}
	return rows, nil
}

// PrintFig9 renders the Fig. 9 table.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: SB-induced stalls (% of cycles), 114-entry SB, ST SB-bound (lower is better)")
	fmt.Fprintf(w, "%-16s", "benchmark")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %7s", m)
	}
	fmt.Fprintln(w)
	avg := map[config.Mechanism]float64{}
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s", row.Bench)
		for _, m := range config.Mechanisms {
			fmt.Fprintf(w, " %6.1f%%", row.Stalls[m])
			avg[m] += row.Stalls[m]
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s", "average")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %6.1f%%", avg[m]/float64(len(rows)))
	}
	fmt.Fprintln(w)
}

// SpeedupStudy holds the data behind Figs. 10/13: an S-curve over every
// application plus the per-benchmark SB-bound breakdown, normalized to
// a baseline with the given SB size.
type SpeedupStudy struct {
	BaselineSB int
	MechSB     int
	// SCurves: per mechanism, sorted speedups over all applications.
	SCurves map[config.Mechanism][]float64
	// Breakdown: per SB-bound ST benchmark (sorted by stalls).
	Breakdown []SpeedupRow
	// Geomean over the SB-bound set.
	Geomean map[config.Mechanism]float64
}

// SpeedupRow is one benchmark's speedups per mechanism.
type SpeedupRow struct {
	Bench    string
	Speedups map[config.Mechanism]float64
}

// Speedups regenerates Fig. 10 (baselineSB=114) or Fig. 13
// (baselineSB=32): every mechanism runs with mechSB entries and is
// normalized to the baseline with baselineSB entries.
func Speedups(r *Runner, baselineSB, mechSB int) (*SpeedupStudy, error) {
	study := &SpeedupStudy{
		BaselineSB: baselineSB,
		MechSB:     mechSB,
		SCurves:    map[config.Mechanism][]float64{},
		Geomean:    map[config.Mechanism]float64{},
	}
	fig := fmt.Sprintf("speedups_%d_%d", baselineSB, mechSB)
	all := workload.All()
	if err := r.Prefetch(fullMatrix(all, baselineSB, mechSB)); err != nil {
		return nil, err
	}
	for _, m := range config.Mechanisms {
		var sp []float64
		for _, b := range all {
			base, bok, err := r.runCell(fig, b, config.Baseline, baselineSB)
			if err != nil {
				return nil, err
			}
			res, rok, err := r.runCell(fig, b, m, mechSB)
			if err != nil {
				return nil, err
			}
			if !bok || !rok {
				continue
			}
			sp = append(sp, Speedup(res, base))
		}
		curve, err := SCurve(sp)
		if err != nil {
			return nil, fmt.Errorf("speedups %d/%d %v: %w", baselineSB, mechSB, m, err)
		}
		study.SCurves[m] = curve
	}
	benchs, err := r.sbBoundSorted(baselineSB)
	if err != nil {
		return nil, err
	}
	gm := map[config.Mechanism][]float64{}
	for _, b := range benchs {
		base, resm, ok, err := r.rowResults(fig, b, baselineSB, mechSB)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := SpeedupRow{Bench: b.Name, Speedups: map[config.Mechanism]float64{}}
		for _, m := range config.Mechanisms {
			row.Speedups[m] = Speedup(resm[m], base)
			gm[m] = append(gm[m], row.Speedups[m])
		}
		study.Breakdown = append(study.Breakdown, row)
	}
	if len(study.Breakdown) == 0 {
		return nil, fmt.Errorf("speedups %d/%d: every SB-bound benchmark quarantined", baselineSB, mechSB)
	}
	for m, xs := range gm {
		g, err := Geomean(xs)
		if err != nil {
			return nil, fmt.Errorf("speedups %d/%d %v: %w", baselineSB, mechSB, m, err)
		}
		study.Geomean[m] = g
	}
	return study, nil
}

// Print renders the study in the paper's two-panel layout.
func (s *SpeedupStudy) Print(w io.Writer, figure string) {
	fmt.Fprintf(w, "%s: speedup normalized to %d-entry-SB baseline (mechanisms at SB=%d)\n",
		figure, s.BaselineSB, s.MechSB)
	fmt.Fprintln(w, "left panel - S-curve over all applications (sorted speedups):")
	for _, m := range config.Mechanisms {
		curve := s.SCurves[m]
		var sb strings.Builder
		for _, x := range curve {
			fmt.Fprintf(&sb, " %+5.1f", 100*(x-1))
		}
		fmt.Fprintf(w, "  %-5s%s\n", m, sb.String())
	}
	fmt.Fprintln(w, "right panel - ST SB-bound breakdown:")
	fmt.Fprintf(w, "  %-16s", "benchmark")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, row := range s.Breakdown {
		fmt.Fprintf(w, "  %-16s", row.Bench)
		for _, m := range config.Mechanisms {
			fmt.Fprintf(w, " %+7.1f%%", 100*(row.Speedups[m]-1))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-16s", "geomean")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %+7.1f%%", 100*(s.Geomean[m]-1))
	}
	fmt.Fprintln(w)
}

// EDPStudy holds Figs. 11/15 (ST SB-bound) or the EDP halves of
// Figs. 12/14 (Parsec): EDP normalized to the baseline.
type EDPStudy struct {
	BaselineSB int
	MechSB     int
	Rows       []EDPRow
	Geomean    map[config.Mechanism]float64
}

// EDPRow is one benchmark's normalized EDP per mechanism.
type EDPRow struct {
	Bench string
	EDP   map[config.Mechanism]float64 // normalized; lower is better
}

// EDP regenerates an EDP figure over the given benchmark set.
func EDP(r *Runner, benchs []workload.Benchmark, baselineSB, mechSB int) (*EDPStudy, error) {
	study := &EDPStudy{
		BaselineSB: baselineSB,
		MechSB:     mechSB,
		Geomean:    map[config.Mechanism]float64{},
	}
	if err := r.Prefetch(fullMatrix(benchs, baselineSB, mechSB)); err != nil {
		return nil, err
	}
	fig := fmt.Sprintf("edp_%d_%d", baselineSB, mechSB)
	gm := map[config.Mechanism][]float64{}
	for _, b := range benchs {
		base, resm, ok, err := r.rowResults(fig, b, baselineSB, mechSB)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := EDPRow{Bench: b.Name, EDP: map[config.Mechanism]float64{}}
		for _, m := range config.Mechanisms {
			row.EDP[m] = resm[m].EDP / base.EDP
			gm[m] = append(gm[m], row.EDP[m])
		}
		study.Rows = append(study.Rows, row)
	}
	if len(study.Rows) == 0 {
		return nil, fmt.Errorf("edp %d/%d: every benchmark quarantined", baselineSB, mechSB)
	}
	for m, xs := range gm {
		g, err := Geomean(xs)
		if err != nil {
			return nil, fmt.Errorf("edp %d/%d %v: %w", baselineSB, mechSB, m, err)
		}
		study.Geomean[m] = g
	}
	return study, nil
}

// Print renders the EDP table.
func (s *EDPStudy) Print(w io.Writer, figure string) {
	fmt.Fprintf(w, "%s: EDP normalized to %d-entry-SB baseline (mechanisms at SB=%d, lower is better)\n",
		figure, s.BaselineSB, s.MechSB)
	fmt.Fprintf(w, "  %-16s", "benchmark")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, row := range s.Rows {
		fmt.Fprintf(w, "  %-16s", row.Bench)
		for _, m := range config.Mechanisms {
			fmt.Fprintf(w, " %8.3f", row.EDP[m])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-16s", "geomean")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %8.3f", s.Geomean[m])
	}
	fmt.Fprintln(w)
}

// ParsecStudy is a Fig. 12/14 panel pair: Parsec speedup and EDP.
type ParsecStudy struct {
	Speedup *EDPStudy // reused row layout; values are speedups
	EDP     *EDPStudy
}

// Parsec regenerates Fig. 12 (baselineSB=114) or Fig. 14 (32).
func Parsec(r *Runner, baselineSB, mechSB int) (*ParsecStudy, error) {
	benchs := workload.BySuite(workload.Parsec)
	if err := r.Prefetch(fullMatrix(benchs, baselineSB, mechSB)); err != nil {
		return nil, err
	}
	fig := fmt.Sprintf("parsec_%d_%d", baselineSB, mechSB)
	sp := &EDPStudy{BaselineSB: baselineSB, MechSB: mechSB, Geomean: map[config.Mechanism]float64{}}
	gm := map[config.Mechanism][]float64{}
	for _, b := range benchs {
		base, resm, ok, err := r.rowResults(fig, b, baselineSB, mechSB)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := EDPRow{Bench: b.Name, EDP: map[config.Mechanism]float64{}}
		for _, m := range config.Mechanisms {
			row.EDP[m] = Speedup(resm[m], base)
			gm[m] = append(gm[m], row.EDP[m])
		}
		sp.Rows = append(sp.Rows, row)
	}
	if len(sp.Rows) == 0 {
		return nil, fmt.Errorf("parsec %d/%d: every benchmark quarantined", baselineSB, mechSB)
	}
	for m, xs := range gm {
		g, err := Geomean(xs)
		if err != nil {
			return nil, fmt.Errorf("parsec %d/%d %v: %w", baselineSB, mechSB, m, err)
		}
		sp.Geomean[m] = g
	}
	edp, err := EDP(r, benchs, baselineSB, mechSB)
	if err != nil {
		return nil, err
	}
	return &ParsecStudy{Speedup: sp, EDP: edp}, nil
}

// Print renders both Parsec panels.
func (p *ParsecStudy) Print(w io.Writer, figure string) {
	fmt.Fprintf(w, "%s left: Parsec speedup vs %d-entry-SB baseline (higher is better)\n", figure, p.Speedup.BaselineSB)
	fmt.Fprintf(w, "  %-16s", "benchmark")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %8s", m)
	}
	fmt.Fprintln(w)
	for _, row := range p.Speedup.Rows {
		fmt.Fprintf(w, "  %-16s", row.Bench)
		for _, m := range config.Mechanisms {
			fmt.Fprintf(w, " %+7.1f%%", 100*(row.EDP[m]-1))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-16s", "geomean")
	for _, m := range config.Mechanisms {
		fmt.Fprintf(w, " %+7.1f%%", 100*(p.Speedup.Geomean[m]-1))
	}
	fmt.Fprintln(w)
	p.EDP.Print(w, figure+" right")
}

// PrintCAMTable reports the analytic CAM model against the paper's
// published numbers (Secs. I/V: the "X2" experiment in DESIGN.md).
func PrintCAMTable(w io.Writer) {
	fmt.Fprintln(w, "CAM model vs paper claims:")
	fmt.Fprintf(w, "  SB energy/search 114 vs 32:  %.2fx   (paper: 2x)\n", energy.SBEnergyRatio(114, 32))
	fmt.Fprintf(w, "  SB area saving 114 -> 32:    %.0f%%    (paper: 21%%)\n", 100*energy.SBAreaReduction(114, 32))
	fmt.Fprintf(w, "  WOQ area vs 114-entry SB:    %.1fx smaller (paper: 13x)\n",
		energy.SBCAM.Area(114)/energy.WOQArea())
	fmt.Fprintf(w, "  WOQ energy vs 114-entry SB:  %.1fx less    (paper: 10x)\n",
		energy.SBCAM.SearchEnergy(114)/energy.WOQSearchEnergy())
	fmt.Fprintf(w, "  WOQ energy vs 32-entry SB:   %.1fx less    (paper: 5x)\n",
		energy.SBCAM.SearchEnergy(32)/energy.WOQSearchEnergy())
	fmt.Fprintf(w, "  store-to-load fwd latency:   5 cycles @114, 4 @64, 3 @32 (paper: 5 -> 3)\n")
	fmt.Fprintf(w, "  WOQ storage: 64 entries x 34 bits = %d bytes (paper: 272 bytes)\n", 64*34/8)
}
