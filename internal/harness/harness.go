// Package harness drives the paper's evaluation: it runs benchmark
// proxies under every store-handling mechanism and SB size, collects
// cycles/stats/energy, and regenerates each figure of Sec. VI as a
// text table (see DESIGN.md's experiment index).
package harness

import (
	"fmt"
	"math"
	"sort"

	"tusim/internal/config"
	"tusim/internal/energy"
	"tusim/internal/stats"
	"tusim/internal/system"
	"tusim/internal/tso"
	"tusim/internal/workload"
)

// Result captures one simulation run.
type Result struct {
	Bench  string
	Mech   config.Mechanism
	SB     int
	Cores  int
	Cycles uint64
	Stats  *stats.Set
	Energy energy.Breakdown
	EDP    float64
}

// SBStallPct is the fraction of cycles dispatch stalled on a full SB
// (Fig. 9's metric), averaged over cores.
func (r Result) SBStallPct() float64 {
	return 100 * float64(r.Stats.Get("stall_sb")) / float64(r.Cycles) / float64(r.Cores)
}

// Runner executes and memoizes simulation runs.
type Runner struct {
	// Ops is the trace length per thread.
	Ops int
	// ParallelOps is the per-thread trace length for 16-thread runs.
	ParallelOps int
	// Seed drives the workload generators.
	Seed int64
	// Check attaches the TSO checker to every run (slower).
	Check bool
	// Verbose prints each run as it completes.
	Verbose bool

	cache map[string]Result
}

// NewRunner returns a runner with the default experiment scale.
func NewRunner() *Runner {
	return &Runner{Ops: 150_000, ParallelOps: 25_000, Seed: 1}
}

// NewQuickRunner returns a runner sized for tests.
func NewQuickRunner() *Runner {
	return &Runner{Ops: 12_000, ParallelOps: 1_500, Seed: 1}
}

func (r *Runner) ops(b workload.Benchmark) int {
	if b.Threads > 1 {
		return r.ParallelOps
	}
	return r.Ops
}

// Run simulates benchmark b under mechanism m with the given SB size.
func (r *Runner) Run(b workload.Benchmark, m config.Mechanism, sbSize int) (Result, error) {
	key := fmt.Sprintf("%s/%v/%d", b.Name, m, sbSize)
	if r.cache == nil {
		r.cache = make(map[string]Result)
	}
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	cfg := config.Default().WithMechanism(m).WithSB(sbSize).WithCores(b.Threads)
	sys, err := system.New(cfg, b.Streams(r.Seed, r.ops(b)))
	if err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", key, err)
	}
	// Discard the first third as warm-up (the paper warms 200M of each
	// 2B-instruction simulation point; our warm workloads put their
	// footprint-touch prologue inside this window).
	sys.WarmupOps = uint64(r.ops(b)) * uint64(b.Threads) / 3
	var ck *tso.Checker
	if r.Check {
		ck = tso.NewChecker(cfg.Cores)
		sys.SetObserver(ck)
	}
	if err := sys.Run(); err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", key, err)
	}
	if ck != nil {
		ck.Finish()
		if err := ck.Err(); err != nil {
			return Result{}, fmt.Errorf("harness: %s: %w", key, err)
		}
	}
	st := sys.StatsSum()
	model := energy.New(cfg)
	res := Result{
		Bench:  b.Name,
		Mech:   m,
		SB:     sbSize,
		Cores:  cfg.Cores,
		Cycles: sys.Cycles,
		Stats:  st,
		Energy: model.Energy(st, sys.Cycles),
		EDP:    model.EDP(st, sys.Cycles),
	}
	r.cache[key] = res
	if r.Verbose {
		fmt.Printf("  ran %-28s cycles=%-10d sbstall=%5.1f%%\n", key, res.Cycles, res.SBStallPct())
	}
	return res, nil
}

// Speedup returns base.Cycles / res.Cycles.
func Speedup(res, base Result) float64 { return float64(base.Cycles) / float64(res.Cycles) }

// Geomean computes the geometric mean of xs (1.0 when empty).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SCurve returns speedups sorted ascending (Figs. 10/13 left panels).
func SCurve(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// sbBoundSorted returns the ST SB-bound set sorted by baseline SB-stall
// fraction at the given SB size (the paper sorts its per-benchmark bars
// this way).
func (r *Runner) sbBoundSorted(sb int) ([]workload.Benchmark, error) {
	set := workload.SBBound()
	type kv struct {
		b workload.Benchmark
		s float64
	}
	kvs := make([]kv, 0, len(set))
	for _, b := range set {
		res, err := r.Run(b, config.Baseline, sb)
		if err != nil {
			return nil, err
		}
		kvs = append(kvs, kv{b, res.SBStallPct()})
	}
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].s > kvs[j].s })
	out := make([]workload.Benchmark, len(kvs))
	for i, x := range kvs {
		out[i] = x.b
	}
	return out, nil
}
