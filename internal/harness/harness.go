// Package harness drives the paper's evaluation: it runs benchmark
// proxies under every store-handling mechanism and SB size, collects
// cycles/stats/energy, and regenerates each figure of Sec. VI as a
// text table (see DESIGN.md's experiment index).
//
// Every figure is an aggregate over independent (benchmark, mechanism,
// SB size) simulation cells, so the Runner fans cells out to a
// Workers-bounded goroutine pool and merges results back in
// deterministic cell order: each cell simulates a private system with
// private stats, so figure output is byte-identical to the serial path
// regardless of worker count (the golden + determinism tests pin this).
package harness

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tusim/internal/config"
	"tusim/internal/energy"
	"tusim/internal/stats"
	"tusim/internal/supervise"
	"tusim/internal/system"
	"tusim/internal/trace"
	"tusim/internal/tso"
	"tusim/internal/workload"
)

// Result captures one simulation run.
type Result struct {
	Bench  string
	Mech   config.Mechanism
	SB     int
	Cores  int
	Cycles uint64
	Stats  *stats.Set
	Energy energy.Breakdown
	EDP    float64
}

// SBStallPct is the fraction of cycles dispatch stalled on a full SB
// (Fig. 9's metric), averaged over cores.
func (r Result) SBStallPct() float64 {
	return 100 * float64(r.Stats.Get("stall_sb")) / float64(r.Cycles) / float64(r.Cores)
}

// Cell identifies one independent simulation of the evaluation matrix.
type Cell struct {
	Bench workload.Benchmark
	Mech  config.Mechanism
	SB    int
}

// Runner executes and memoizes simulation runs.
type Runner struct {
	// Ops is the trace length per thread.
	Ops int
	// ParallelOps is the per-thread trace length for 16-thread runs.
	ParallelOps int
	// Seed drives the workload generators.
	Seed int64
	// Check attaches the TSO checker to every run (slower).
	Check bool
	// Verbose prints each run as it completes.
	Verbose bool
	// Workers bounds concurrent cell simulations: 0 picks
	// runtime.NumCPU(), 1 is the serial path. Results are identical at
	// every setting; Workers only changes wall-clock time.
	Workers int
	// Cache, when non-nil, persists results across processes keyed by
	// the content hash of (harness version, config, workload identity).
	Cache *DiskCache
	// Trace attaches a store-lifecycle tracer to every freshly simulated
	// cell. Tracing is observational only: every result and figure is
	// byte-identical with it on or off (the golden identity test pins
	// this). Event streams are discarded unless OnTrace is set; cells
	// served from a cache never simulated, so they deliver no trace.
	Trace bool
	// OnTrace, when set together with Trace, receives each simulated
	// cell's tracer after the run completes (key = "bench/mech/sb").
	// Called from worker goroutines; the callback must be safe for
	// concurrent use when Workers > 1.
	OnTrace func(key string, t *trace.Tracer)
	// OnCellDone, when set, observes every cell completion exactly once
	// per process: it fires on the singleflight owner's path after the
	// cell is computed (freshly simulated, loaded from the disk cache, or
	// failed), never again for later memoized Run calls on the same key.
	// cached reports a disk-cache hit; d is the wall-clock the scheduler
	// waited for the cell, including supervised retries and backoff. The
	// callback runs on worker goroutines and must be safe for concurrent
	// use when Workers > 1. tusd uses it for per-cell job progress and
	// the cell-latency metrics histogram.
	OnCellDone func(key string, cached bool, d time.Duration, err error)
	// Supervisor, when non-nil, runs every simulation inside the cell
	// supervision layer: panic capture, calibrated deadlines, bounded
	// retries for transient failures, and quarantine for deterministic
	// ones. A quarantined cell surfaces as a *supervise.Quarantined
	// error, which the figure builders degrade into a "degraded" report
	// section instead of failing the run. Nil keeps the legacy behavior
	// (any cell failure is fatal to its figure). Healthy runs are
	// byte-identical either way.
	Supervisor *supervise.Supervisor

	mu    sync.Mutex
	cells map[string]*cell

	// interned is the cross-cell trace table: cells that share a
	// (bench, seed, ops) workload share one immutable generated trace
	// instead of each regenerating it (see intern.go).
	interned interner

	// Perf accounting for the BENCH_harness.json emitter.
	cellNanos  atomic.Int64
	cellCycles atomic.Uint64
	cellsRun   atomic.Int64
	cellsFromC atomic.Int64
	// cacheCorrupt counts disk-cache entries that existed but failed to
	// decode or validate (each was resimulated); corruptOnce gates the
	// single per-run warning.
	cacheCorrupt atomic.Int64
	corruptOnce  sync.Once

	// degraded accumulates cells the figure builders skipped because of
	// quarantine, keyed "figure|cell" for dedup.
	degMu    sync.Mutex
	degraded map[string]DegradedCell

	// testHookSim, when set (tests only), runs before each simulation
	// with the cell key; a non-nil return poisons the attempt with that
	// error, letting tests inject deterministic and transient failures
	// without touching the simulator.
	testHookSim func(key string) error
}

// DegradedCell names one quarantined cell a figure had to skip, and
// why. The JSON report collects these in its "degraded" section so a
// partial run is explicit, never silent.
type DegradedCell struct {
	Figure string `json:"figure"`
	Cell   string `json:"cell"`
	Reason string `json:"reason"`
}

// cell is a singleflight slot: the first goroutine to claim a key
// simulates it; everyone else blocks on done and shares the result.
type cell struct {
	done chan struct{}
	res  Result
	err  error
}

// NewRunner returns a runner with the default experiment scale.
func NewRunner() *Runner {
	return &Runner{Ops: 150_000, ParallelOps: 25_000, Seed: 1}
}

// NewQuickRunner returns a runner sized for tests.
func NewQuickRunner() *Runner {
	return &Runner{Ops: 12_000, ParallelOps: 1_500, Seed: 1}
}

func (r *Runner) ops(b workload.Benchmark) int {
	if b.Threads > 1 {
		return r.ParallelOps
	}
	return r.Ops
}

// workers resolves the effective pool width.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.NumCPU()
}

// Run simulates benchmark b under mechanism m with the given SB size.
// It is safe for concurrent use: identical cells are de-duplicated so
// exactly one simulation runs per key per process.
func (r *Runner) Run(b workload.Benchmark, m config.Mechanism, sbSize int) (Result, error) {
	key := fmt.Sprintf("%s/%v/%d", b.Name, m, sbSize)
	r.mu.Lock()
	if r.cells == nil {
		r.cells = make(map[string]*cell)
	}
	c, inflight := r.cells[key]
	if !inflight {
		c = &cell{done: make(chan struct{})}
		r.cells[key] = c
	}
	r.mu.Unlock()
	if inflight {
		<-c.done
		return c.res, c.err
	}
	start := time.Now()
	var cached bool
	c.res, cached, c.err = r.compute(b, m, sbSize, key)
	if r.OnCellDone != nil {
		r.OnCellDone(key, cached, time.Since(start), c.err)
	}
	close(c.done)
	return c.res, c.err
}

// compute performs the actual simulation (or persistent-cache load)
// behind Run's singleflight gate, routing fresh simulations through the
// supervisor when one is attached. cached reports whether the result
// was served from the disk cache instead of simulated.
func (r *Runner) compute(b workload.Benchmark, m config.Mechanism, sbSize int, key string) (_ Result, cached bool, _ error) {
	if !b.Valid() {
		return Result{}, false, fmt.Errorf("harness: %s: unknown or zero-value benchmark", key)
	}
	cfg := config.Default().WithMechanism(m).WithSB(sbSize).WithCores(b.Threads)
	ckey := r.contentKey(b, cfg)
	if r.Cache != nil {
		res, st := r.Cache.Get(ckey, b, m, sbSize)
		switch st {
		case CacheHit:
			r.cellsFromC.Add(1)
			if r.Verbose {
				fmt.Printf("  hit %-28s cycles=%-10d (cache)\n", key, res.Cycles)
			}
			return res, true, nil
		case CacheCorrupt:
			r.cacheCorrupt.Add(1)
			r.corruptOnce.Do(func() {
				fmt.Fprintf(os.Stderr, "harness: warning: corrupt result-cache entry for %s (resimulating; further corruption counted silently in cache_corrupt)\n", key)
			})
		}
	}
	if r.Supervisor == nil {
		res, err := r.simulate(b, cfg, key, ckey)
		return res, false, err
	}
	// Supervised path. A deadline-abandoned attempt keeps running as a
	// zombie goroutine (goroutines cannot be killed), so result
	// publication is serialized: only the supervisor's winning attempt
	// is returned, and a late zombie write cannot race it.
	class := "st"
	if b.Threads > 1 {
		class = "mt"
	}
	var resMu sync.Mutex
	var res Result
	err := r.Supervisor.Do(key, class, func() error {
		out, serr := r.simulate(b, cfg, key, ckey)
		if serr != nil {
			return serr
		}
		resMu.Lock()
		res = out
		resMu.Unlock()
		return nil
	})
	resMu.Lock()
	defer resMu.Unlock()
	if err != nil {
		return Result{}, false, err
	}
	return res, false, nil
}

// simulate runs one cell for real (no cache probe) and writes the
// result back to the persistent cache.
func (r *Runner) simulate(b workload.Benchmark, cfg *config.Config, key, ckey string) (Result, error) {
	m, sbSize := cfg.Mechanism, cfg.SBEntries
	if r.testHookSim != nil {
		if err := r.testHookSim(key); err != nil {
			return Result{}, err
		}
	}
	start := time.Now()
	sys, err := system.New(cfg, r.interned.streams(b, r.Seed, r.ops(b)))
	if err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", key, err)
	}
	// Discard the first third as warm-up (the paper warms 200M of each
	// 2B-instruction simulation point; our warm workloads put their
	// footprint-touch prologue inside this window).
	sys.WarmupOps = uint64(r.ops(b)) * uint64(b.Threads) / 3
	var tr *trace.Tracer
	if r.Trace {
		tr = trace.New(0)
		sys.SetTracer(tr)
	}
	var ck *tso.Checker
	if r.Check {
		ck = tso.NewChecker(cfg.Cores)
		sys.SetObserver(ck)
	}
	if err := sys.Run(); err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", key, err)
	}
	if ck != nil {
		ck.Finish()
		if err := ck.Err(); err != nil {
			return Result{}, fmt.Errorf("harness: %s: %w", key, err)
		}
	}
	st := sys.StatsSum()
	model := energy.New(cfg)
	res := Result{
		Bench:  b.Name,
		Mech:   m,
		SB:     sbSize,
		Cores:  cfg.Cores,
		Cycles: sys.Cycles,
		Stats:  st,
		Energy: model.Energy(st, sys.Cycles),
		EDP:    model.EDP(st, sys.Cycles),
	}
	r.cellNanos.Add(int64(time.Since(start)))
	r.cellCycles.Add(sys.Cycles)
	r.cellsRun.Add(1)
	if tr != nil && r.OnTrace != nil {
		r.OnTrace(key, tr)
	}
	if r.Cache != nil {
		r.Cache.Put(ckey, res)
	}
	if r.Verbose {
		fmt.Printf("  ran %-28s cycles=%-10d sbstall=%5.1f%%\n", key, res.Cycles, res.SBStallPct())
	}
	return res, nil
}

// Prefetch simulates the given cells through the worker pool, filling
// the in-process cache so subsequent Run calls return instantly. The
// figure builders call it with their full cell list and then assemble
// output serially in deterministic order, which is what makes the
// parallel path byte-identical to the serial one. The returned error is
// the first failing cell in list order (deterministic regardless of
// completion order); with Workers <= 1 cells run serially in order and
// Prefetch stops at the first failure, exactly like the pre-parallel
// harness.
// Quarantined cells are not Prefetch failures: the supervisor has
// already contained them, and the figure builders degrade around them,
// so the prefetch keeps filling every other cell.
func (r *Runner) Prefetch(cells []Cell) error {
	w := r.workers()
	if w <= 1 || len(cells) <= 1 {
		for _, c := range cells {
			if _, err := r.Run(c.Bench, c.Mech, c.SB); err != nil && !isQuarantined(err) {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(cells))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	if w > len(cells) {
		w = len(cells)
	}
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				_, errs[i] = r.Run(cells[i].Bench, cells[i].Mech, cells[i].SB)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !isQuarantined(err) {
			return err
		}
	}
	return nil
}

// isQuarantined reports whether err is a supervisor quarantine.
func isQuarantined(err error) bool {
	var q *supervise.Quarantined
	return errors.As(err, &q)
}

// NewSupervisor builds the harness's standard supervision policy wired
// to the simulator's crash classification: panics become CrashReports,
// chaos-induced watchdog trips and deadline misses retry with
// decorrelated-jitter backoff, and everything else quarantines on first
// failure. timeout is the uncalibrated per-cell deadline (zero selects
// config.DefaultCellTimeout).
func NewSupervisor(timeout time.Duration) *supervise.Supervisor {
	if timeout <= 0 {
		timeout = config.DefaultCellTimeout
	}
	return supervise.New(supervise.Policy{
		MaxRetries: 2,
		Fallback:   timeout,
		Transient: func(err error) bool {
			var cr *system.CrashReport
			if errors.As(err, &cr) {
				return cr.Transient()
			}
			return false
		},
		WrapPanic: func(key string, v any, stack []byte) error {
			return fmt.Errorf("harness: %s: %w", key, system.PanicReport(v, stack))
		},
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
}

// noteDegraded records a (figure, cell) skip for the report's
// "degraded" section; duplicates collapse.
func (r *Runner) noteDegraded(fig, cellKey, reason string) {
	r.degMu.Lock()
	defer r.degMu.Unlock()
	if r.degraded == nil {
		r.degraded = map[string]DegradedCell{}
	}
	k := fig + "|" + cellKey
	if _, dup := r.degraded[k]; !dup {
		r.degraded[k] = DegradedCell{Figure: fig, Cell: cellKey, Reason: reason}
	}
}

// DegradedCells returns every recorded figure degradation, sorted by
// (figure, cell) so reports serialize deterministically. Empty (and
// nil) on a healthy run.
func (r *Runner) DegradedCells() []DegradedCell {
	r.degMu.Lock()
	defer r.degMu.Unlock()
	if len(r.degraded) == 0 {
		return nil
	}
	out := make([]DegradedCell, 0, len(r.degraded))
	for _, d := range r.degraded {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Figure != out[j].Figure {
			return out[i].Figure < out[j].Figure
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// runCell is Run plus quarantine degradation: a quarantined cell is
// recorded under fig and reported as ok=false with a nil error, so
// builders skip it; any other failure propagates.
func (r *Runner) runCell(fig string, b workload.Benchmark, m config.Mechanism, sb int) (Result, bool, error) {
	res, err := r.Run(b, m, sb)
	if err == nil {
		return res, true, nil
	}
	var q *supervise.Quarantined
	if errors.As(err, &q) {
		r.noteDegraded(fig, q.Key, q.Reason)
		return Result{}, false, nil
	}
	return Result{}, false, err
}

// rowResults fetches one benchmark's full figure row: the baseline cell
// at baseSB plus every mechanism at mechSB. ok is false when any of
// those cells is quarantined (each quarantine is recorded under fig, and
// the remaining cells are still probed so the degraded section lists
// every poisoned cell, not just the first); hard errors propagate.
func (r *Runner) rowResults(fig string, b workload.Benchmark, baseSB, mechSB int) (Result, map[config.Mechanism]Result, bool, error) {
	base, good, err := r.runCell(fig, b, config.Baseline, baseSB)
	if err != nil {
		return Result{}, nil, false, err
	}
	out := make(map[config.Mechanism]Result, len(config.Mechanisms))
	for _, m := range config.Mechanisms {
		res, ok, err := r.runCell(fig, b, m, mechSB)
		if err != nil {
			return Result{}, nil, false, err
		}
		if !ok {
			good = false
			continue
		}
		out[m] = res
	}
	return base, out, good, nil
}

// parmap runs f(0..n-1) through the worker pool and returns the error
// with the lowest index (deterministic first failure). With one worker
// it degrades to a plain serial loop that stops at the first error.
func (r *Runner) parmap(n int, f func(int) error) error {
	return parmap(r.workers(), n, f)
}

func parmap(workers, n int, f func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Speedup returns base.Cycles / res.Cycles.
func Speedup(res, base Result) float64 { return float64(base.Cycles) / float64(res.Cycles) }

// Geomean computes the geometric mean of xs. It fails loudly instead of
// silently laundering bad data: an empty slice, a NaN/Inf, or a
// non-positive element (whose log is undefined) all return an error so
// a perf refactor that perturbs figure inputs cannot hide inside an
// aggregate.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("harness: geomean of empty input")
	}
	s := 0.0
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return 0, fmt.Errorf("harness: geomean input %d is %v (want finite > 0)", i, x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// SCurve returns speedups sorted ascending (Figs. 10/13 left panels).
// NaN elements have no defined sort position, so any NaN input is an
// error rather than a silently mis-sorted curve.
func SCurve(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	copy(out, xs)
	for i, x := range out {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("harness: s-curve input %d is NaN", i)
		}
	}
	sort.Float64s(out)
	return out, nil
}

// SortByBaselineStalls returns benchs sorted by baseline SB-stall
// fraction (descending) at the given SB size — the paper sorts its
// per-benchmark bars this way. An empty input returns an empty,
// non-nil slice; an invalid benchmark surfaces Run's error.
func (r *Runner) SortByBaselineStalls(benchs []workload.Benchmark, sb int) ([]workload.Benchmark, error) {
	type kv struct {
		b workload.Benchmark
		s float64
	}
	cells := make([]Cell, len(benchs))
	for i, b := range benchs {
		cells[i] = Cell{b, config.Baseline, sb}
	}
	if err := r.Prefetch(cells); err != nil {
		return nil, err
	}
	kvs := make([]kv, 0, len(benchs))
	for _, b := range benchs {
		res, err := r.Run(b, config.Baseline, sb)
		if err != nil {
			if isQuarantined(err) {
				// A quarantined baseline sorts last; the figure builder
				// will rediscover the quarantine per-cell and record the
				// degradation under its own figure name.
				kvs = append(kvs, kv{b, -1})
				continue
			}
			return nil, err
		}
		kvs = append(kvs, kv{b, res.SBStallPct()})
	}
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].s > kvs[j].s })
	out := make([]workload.Benchmark, len(kvs))
	for i, x := range kvs {
		out[i] = x.b
	}
	return out, nil
}

// sbBoundSorted sorts the ST SB-bound set by baseline SB-stall
// fraction at the given SB size.
func (r *Runner) sbBoundSorted(sb int) ([]workload.Benchmark, error) {
	return r.SortByBaselineStalls(workload.SBBound(), sb)
}
