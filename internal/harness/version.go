package harness

// Version is the single harness identity string shared by every layer
// that must agree on what "the same result" means: the content-addressed
// disk cache keys it, cache entries embed it, BENCH_harness.json records
// it, the run journal header carries it so a resume under a different
// binary is detected, and tusd reports it from /healthz and /metrics.
// Bump it whenever a change anywhere in the simulator can alter cell
// results, so stale entries from older binaries can never masquerade as
// fresh runs. Keeping it in one exported constant (instead of per-layer
// copies) is what makes skew between those layers impossible.
//
// (v4: stat sets carry occupancy/latency histograms that must
// round-trip through the cache.)
const Version = "tusim-harness-4"
