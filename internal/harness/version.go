package harness

// Version is the single harness identity string shared by every layer
// that must agree on what "the same result" means: the content-addressed
// disk cache keys it, cache entries embed it, BENCH_harness.json records
// it, the run journal header carries it so a resume under a different
// binary is detected, and tusd reports it from /healthz and /metrics.
// Bump it whenever a change anywhere in the simulator can alter cell
// results, so stale entries from older binaries can never masquerade as
// fresh runs. Keeping it in one exported constant (instead of per-layer
// copies) is what makes skew between those layers impossible.
//
// (v5: open-addressed/pooled hot-path containers; identical results by
// construction — the differential rig proves it — but the bump keeps
// the before/after byte-identity comparison honest by forcing fresh
// simulation instead of serving pre-conversion cache entries.)
//
// (v6: hierarchical time-wheel event scheduler + interned workload
// traces. Pop order — and therefore every cell result — is proved
// identical to the v5 binary heap by the wheel differential rig and
// `make ref-identity`, but the same honesty argument applies: a v6
// binary must never serve v5 cache entries as its own, so the
// committed BENCH_harness.json baseline was regenerated fresh.)
const Version = "tusim-harness-6"
