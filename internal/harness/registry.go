package harness

import (
	"fmt"
	"io"

	"tusim/internal/workload"
)

// This file is the single registry of everything the evaluation can
// produce: which figures exist, which benchmarks exist, and which
// simulation cells each figure runs. `tusbench -list`, tusd's
// GET /v1/figures, and the server's per-job progress accounting all
// read the same tables, so the CLI and the service can never disagree
// about what is servable.

// FigureSpec describes one regenerable figure of Sec. VI.
type FigureSpec struct {
	// Fig is the paper's figure number (8-15).
	Fig int
	// Name is the short tag used in reports and timings ("fig9").
	Name string
	// Title is the one-line human description.
	Title string
	// DegradeTags are the figure tags the builders record quarantine
	// degradations under; a served figure response surfaces every
	// DegradedCell whose Figure field matches one of these.
	DegradeTags []string
}

// figureSpecs lists every figure in paper order.
var figureSpecs = []FigureSpec{
	{8, "fig8", "geomean speedup vs 114-entry-SB baseline, by SB size and suite", []string{"fig8"}},
	{9, "fig9", "SB-induced dispatch stalls (% of cycles), 114-entry SB, ST SB-bound", []string{"fig9"}},
	{10, "fig10", "speedup S-curve + SB-bound breakdown vs 114-entry-SB baseline", []string{"speedups_114_114"}},
	{11, "fig11", "normalized EDP @114 SB, ST SB-bound", []string{"edp_114_114"}},
	{12, "fig12", "Parsec speedup + EDP @114 SB", []string{"parsec_114_114", "edp_114_114"}},
	{13, "fig13", "speedup S-curve + SB-bound breakdown vs 32-entry-SB baseline", []string{"speedups_32_32"}},
	{14, "fig14", "Parsec speedup + EDP @32 SB", []string{"parsec_32_32", "edp_32_32"}},
	{15, "fig15", "normalized EDP @32 SB, ST SB-bound", []string{"edp_32_32"}},
}

// Figures returns every regenerable figure in paper order.
func Figures() []FigureSpec {
	return append([]FigureSpec(nil), figureSpecs...)
}

// FigureByNum looks a figure up by its paper number.
func FigureByNum(fig int) (FigureSpec, bool) {
	for _, f := range figureSpecs {
		if f.Fig == fig {
			return f, true
		}
	}
	return FigureSpec{}, false
}

// CellKey renders the cell's in-process identity, matching Runner.Run's
// singleflight key ("bench/mech/sb") and the journal's cell records.
func CellKey(c Cell) string {
	return fmt.Sprintf("%s/%v/%d", c.Bench.Name, c.Mech, c.SB)
}

// FigureCells returns the figure's full simulation cell list, deduped
// in first-appearance order — exactly the distinct cells a cold
// regeneration simulates. An unknown figure returns nil.
func FigureCells(fig int) []Cell {
	var raw []Cell
	switch fig {
	case 8:
		raw = fig8Cells()
	case 9:
		raw = fullMatrix(workload.SBBound(), 114, 114)
	case 10:
		raw = fullMatrix(workload.All(), 114, 114)
	case 11:
		raw = fullMatrix(workload.SBBound(), 114, 114)
	case 12:
		raw = fullMatrix(workload.BySuite(workload.Parsec), 114, 114)
	case 13:
		raw = fullMatrix(workload.All(), 32, 32)
	case 14:
		raw = fullMatrix(workload.BySuite(workload.Parsec), 32, 32)
	case 15:
		raw = fullMatrix(workload.SBBound(), 32, 32)
	default:
		return nil
	}
	seen := make(map[string]bool, len(raw))
	out := make([]Cell, 0, len(raw))
	for _, c := range raw {
		k := CellKey(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// FigureCellUnion returns the distinct union of the given figures'
// cells, deduped by CellKey in first-appearance order across the
// figures as listed. Its length is the registry's expected exactly-once
// cell total for a cold run that regenerates exactly those figures:
// tusload asserts the daemon's cells_run counter lands on it. Unknown
// figure numbers contribute nothing.
func FigureCellUnion(figs ...int) []Cell {
	seen := map[string]bool{}
	var out []Cell
	for _, f := range figs {
		for _, c := range FigureCells(f) {
			k := CellKey(c)
			if !seen[k] {
				seen[k] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// RenderFigure regenerates figure fig through r and writes it to w in
// the exact byte form `tusbench -fig <n>` prints: the table followed by
// one blank line. tusd serves these same bytes, which is what makes a
// network fetch diffable against the CLI.
func RenderFigure(r *Runner, fig int, w io.Writer) error {
	switch fig {
	case 8:
		rows, err := Fig8(r)
		if err != nil {
			return err
		}
		PrintFig8(w, rows)
	case 9:
		rows, err := Fig9(r)
		if err != nil {
			return err
		}
		PrintFig9(w, rows)
	case 10:
		s, err := Speedups(r, 114, 114)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 10")
	case 11:
		s, err := EDP(r, workload.SBBound(), 114, 114)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 11")
	case 12:
		s, err := Parsec(r, 114, 114)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 12")
	case 13:
		s, err := Speedups(r, 32, 32)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 13")
	case 14:
		s, err := Parsec(r, 32, 32)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 14")
	case 15:
		s, err := EDP(r, workload.SBBound(), 32, 32)
		if err != nil {
			return err
		}
		s.Print(w, "Figure 15")
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
	fmt.Fprintln(w)
	return nil
}

// FigureInfo is the machine-readable registry row for one figure.
type FigureInfo struct {
	Fig   int    `json:"fig"`
	Name  string `json:"name"`
	Title string `json:"title"`
	// Cells is the number of distinct simulation cells a cold
	// regeneration runs.
	Cells int `json:"cells"`
}

// BenchInfo is the machine-readable registry row for one benchmark
// proxy.
type BenchInfo struct {
	Name    string `json:"name"`
	Suite   string `json:"suite"`
	Threads int    `json:"threads"`
	SBBound bool   `json:"sb_bound"`
}

// ListReport is the full servable inventory, emitted by
// `tusbench -list` and GET /v1/figures.
type ListReport struct {
	HarnessVersion string       `json:"harness_version"`
	Figures        []FigureInfo `json:"figures"`
	Benches        []BenchInfo  `json:"benches"`
}

// List assembles the servable inventory from the registry tables.
func List() ListReport {
	rep := ListReport{HarnessVersion: Version}
	for _, f := range figureSpecs {
		rep.Figures = append(rep.Figures, FigureInfo{
			Fig:   f.Fig,
			Name:  f.Name,
			Title: f.Title,
			Cells: len(FigureCells(f.Fig)),
		})
	}
	for _, b := range workload.All() {
		rep.Benches = append(rep.Benches, BenchInfo{
			Name:    b.Name,
			Suite:   b.Suite.String(),
			Threads: b.Threads,
			SBBound: b.SBBound,
		})
	}
	return rep
}
