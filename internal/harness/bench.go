package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// buildPGO reports the profile-guided-optimization setting the running
// binary was built with, via the build info stamped by the toolchain:
// the base name of the applied profile (normally "default.pgo"), or
// "off" when PGO was disabled or no profile was found.
func buildPGO() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "-pgo" && s.Value != "" && s.Value != "off" {
				return filepath.Base(s.Value)
			}
		}
	}
	return "off"
}

// FigTiming is the wall-clock cost of regenerating one figure.
type FigTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// BenchReport is the perf trajectory record emitted as
// BENCH_harness.json: per-figure wall-clock, the aggregate simulation
// time across cells, and the cache hit split. ParallelSpeedup is the
// ratio of summed per-cell elapsed time to total wall-clock: the
// realized figure-generation speedup when each worker runs on an
// otherwise-idle core. It is omitted when the run is serial (workers
// == 1) — the ratio is then a meaningless ~1.0 that only records
// harness overhead. Cells are timed by wall clock, so when workers
// oversubscribe the physical cores the per-cell times absorb
// descheduled time and the ratio overestimates — compare wall_seconds
// across -j settings for a ground-truth number.
type BenchReport struct {
	HarnessVersion string `json:"harness_version"`
	// PGO names the profile the running binary was built with
	// ("default.pgo" under -pgo=auto with a committed profile, "off"
	// otherwise), so throughput numbers in committed reports are
	// attributable to the right build mode.
	PGO         string      `json:"pgo,omitempty"`
	Workers     int         `json:"workers"`
	NumCPU      int         `json:"num_cpu"`
	Ops         int         `json:"ops"`
	ParallelOps int         `json:"parallel_ops"`
	Seed        int64       `json:"seed"`
	Figures     []FigTiming `json:"figures"`
	WallSeconds float64     `json:"wall_seconds"`
	// CellSeconds is simulation time summed over cells actually run
	// (cache hits contribute nothing).
	CellSeconds float64 `json:"cell_seconds"`
	CellsRun    int     `json:"cells_run"`
	CellsCached int     `json:"cells_cached"`
	// CacheCorrupt counts disk-cache entries that existed but failed to
	// decode or validate; each one was resimulated. Nonzero means the
	// cache directory is rotting (torn writes, version skew, bit flips)
	// even though results stayed correct.
	CacheCorrupt    int     `json:"cache_corrupt"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// SimCycles is the total simulated cycles across freshly run cells;
	// with CellSeconds it yields the harness's core throughput metrics:
	// CellsPerSec (cells simulated per second of simulation time) and
	// SimCyclesPerSec (simulated cycles per wall second of simulation).
	// Both are zero on a fully cache-hot run — the perf gate skips the
	// throughput check then, since no simulation work was measured.
	SimCycles       uint64  `json:"sim_cycles"`
	CellsPerSec     float64 `json:"cells_per_sec"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// BenchRecorder accumulates figure timings around a Runner. It is safe
// for concurrent use: tusd times concurrently executing figure jobs
// through one recorder.
type BenchRecorder struct {
	r     *Runner
	start time.Time

	mu      sync.Mutex
	figures []FigTiming
}

// NewBenchRecorder starts the wall clock for a harness invocation.
func NewBenchRecorder(r *Runner) *BenchRecorder {
	return &BenchRecorder{r: r, start: time.Now()}
}

// Time runs f and records its wall-clock under name.
func (b *BenchRecorder) Time(name string, f func() error) error {
	t0 := time.Now()
	err := f()
	b.mu.Lock()
	b.figures = append(b.figures, FigTiming{Name: name, Seconds: time.Since(t0).Seconds()})
	b.mu.Unlock()
	return err
}

// Report closes the wall clock and assembles the perf record.
func (b *BenchRecorder) Report() BenchReport {
	wall := time.Since(b.start).Seconds()
	cell := time.Duration(b.r.cellNanos.Load()).Seconds()
	b.mu.Lock()
	figures := append([]FigTiming(nil), b.figures...)
	b.mu.Unlock()
	cs := b.r.CacheStats()
	var speedup float64
	if b.r.workers() > 1 && wall > 0 {
		speedup = cell / wall
	}
	simCycles := b.r.cellCycles.Load()
	var cellsPerSec, cyclesPerSec float64
	if cell > 0 {
		cellsPerSec = float64(cs.CellsRun) / cell
		cyclesPerSec = float64(simCycles) / cell
	}
	return BenchReport{
		HarnessVersion:  Version,
		PGO:             buildPGO(),
		Workers:         b.r.workers(),
		NumCPU:          runtime.NumCPU(),
		Ops:             b.r.Ops,
		ParallelOps:     b.r.ParallelOps,
		Seed:            b.r.Seed,
		Figures:         figures,
		WallSeconds:     wall,
		CellSeconds:     cell,
		CellsRun:        int(cs.CellsRun),
		CellsCached:     int(cs.CellsCached),
		CacheCorrupt:    int(cs.CacheCorrupt),
		ParallelSpeedup: speedup,
		SimCycles:       simCycles,
		CellsPerSec:     cellsPerSec,
		SimCyclesPerSec: cyclesPerSec,
	}
}

// WriteFile emits the report as indented JSON (the BENCH_harness.json
// artifact tracked across PRs).
func (rep BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
