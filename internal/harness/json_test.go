package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 2500
	r.ParallelOps = 300
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Fig8) != 9 || len(rep.Fig9) == 0 {
		t.Fatalf("fig8=%d fig9=%d rows", len(rep.Fig8), len(rep.Fig9))
	}
	if rep.Fig10 == nil || rep.Fig10.Geomean["TUS"] <= 0 {
		t.Fatal("fig10 missing or empty")
	}
	if rep.Fig12 == nil || rep.Fig12.EDP == nil {
		t.Fatal("fig12 missing")
	}
	if rep.Scale.Ops != 2500 {
		t.Fatalf("scale.ops = %d", rep.Scale.Ops)
	}
}
