package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"tusim/internal/audit"
	"tusim/internal/config"
	"tusim/internal/faults"
	"tusim/internal/litmus"
	"tusim/internal/system"
	"tusim/internal/tso"
	"tusim/internal/workload"
)

// ChaosPatterns names the litmus tests the chaos driver exercises: the
// store-buffering, message-passing, and atomic-group patterns are the
// ones whose TSO guarantees depend on the WOQ / lex-order machinery.
var ChaosPatterns = []string{"SB", "MP", "ATOM"}

// ReproBundle is everything needed to deterministically replay one
// crashed (or suspect) run: the workload identity, the fault plan, and
// the attached crash diagnosis. Bundles serialize to JSON and replay
// via Replay (the `tusim -repro` path).
type ReproBundle struct {
	// Kind selects the replay procedure: "litmus" or "bench".
	Kind string `json:"kind"`
	// Name is the litmus test or benchmark name.
	Name      string `json:"name"`
	Mechanism string `json:"mechanism"`
	// Skew is the litmus start-offset index.
	Skew int `json:"skew,omitempty"`
	// Seed/Ops size a bench replay (unused for litmus).
	Seed int64 `json:"seed,omitempty"`
	Ops  int   `json:"ops,omitempty"`
	// SB is the bench store-buffer size (0 = config default).
	SB         int    `json:"sb,omitempty"`
	AuditEvery uint64 `json:"audit_every,omitempty"`
	Watchdog   uint64 `json:"watchdog,omitempty"`
	// Faults is the injected schedule (includes its seed).
	Faults faults.Plan `json:"faults"`
	// Script, when non-nil, pins the injector's decision stream
	// explicitly instead of deriving it from Faults.Seed: the model
	// checker's minimal violating schedules replay through it
	// (litmus-kind bundles only). An empty-but-present script is the
	// quiet all-defaults schedule, which is distinct from no script.
	Script []faults.Decision `json:"script,omitempty"`
	// Scripted marks the bundle as schedule-pinned even when Script
	// minimized to empty (JSON omits empty slices).
	Scripted bool `json:"scripted,omitempty"`
	// Report is the diagnosis from the crashing run (informational;
	// replay regenerates it).
	Report *system.CrashReport `json:"report,omitempty"`
	// Classification is the report's transient/deterministic verdict
	// (see CrashReport.Classification): "transient" failures may not
	// replay byte-for-byte under different host timing pressure, while
	// "deterministic" ones must reproduce exactly. Derived from Report
	// at save time.
	Classification string `json:"classification,omitempty"`
}

// Save writes the bundle as indented JSON.
func (b *ReproBundle) Save(path string) error {
	if b.Report != nil {
		b.Classification = b.Report.Classification()
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBundle reads a bundle written by Save.
func LoadBundle(path string) (*ReproBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ReproBundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("harness: bad repro bundle %s: %w", path, err)
	}
	return &b, nil
}

// Replay re-executes the bundled run and returns the error it
// reproduces (nil means the run came out clean — the bug did not
// replay, which for a deterministic simulator indicates the bundle and
// binary are out of sync).
func (b *ReproBundle) Replay() error {
	m, err := config.ParseMechanism(b.Mechanism)
	if err != nil {
		return err
	}
	switch b.Kind {
	case "litmus":
		var test *litmus.Test
		for _, t := range litmus.Tests() {
			if t.Name == b.Name {
				t := t
				test = &t
				break
			}
		}
		if test == nil {
			return fmt.Errorf("harness: unknown litmus test %q", b.Name)
		}
		o := litmus.Opts{
			Faults:     &b.Faults,
			AuditEvery: b.AuditEvery,
			Watchdog:   b.Watchdog,
		}
		if b.Scripted || len(b.Script) > 0 {
			o.Source = faults.NewScriptSource(b.Script)
		}
		obs, err := litmus.RunOne(*test, m, b.Skew, o)
		if err == nil && o.Source != nil && test.Forbidden != nil && test.Forbidden(obs) {
			// Model-checker bundles may capture a forbidden *outcome*
			// rather than a crash; replay must reproduce that failure
			// mode too.
			err = fmt.Errorf("harness: TSO-forbidden outcome %v in %s/%v skew %d (scripted schedule)",
				obs, test.Name, m, b.Skew)
		}
		return err
	case "bench":
		bench, ok := workload.ByName(b.Name)
		if !ok {
			return fmt.Errorf("harness: unknown benchmark %q", b.Name)
		}
		_, err := RunChaosBench(bench, m, b.Seed, b.Ops, b.SB, b.Faults, b.AuditEvery, b.Watchdog)
		return err
	}
	return fmt.Errorf("harness: unknown bundle kind %q", b.Kind)
}

// RunChaosBench runs one benchmark under fault injection with the TSO
// checker and invariant auditor attached, returning the final cycle
// count. Any returned error may be a *system.CrashReport.
func RunChaosBench(b workload.Benchmark, m config.Mechanism, seed int64, ops, sb int,
	plan faults.Plan, auditEvery, watchdog uint64) (uint64, error) {
	cfg := config.Default().WithMechanism(m).WithCores(b.Threads)
	if sb > 0 {
		cfg = cfg.WithSB(sb)
	}
	if watchdog != 0 {
		cfg.WatchdogWindow = watchdog
	}
	sys, err := system.New(cfg, b.Streams(seed, ops))
	if err != nil {
		return 0, err
	}
	ck := tso.NewChecker(cfg.Cores)
	sys.SetObserver(ck)
	sys.InstallFaults(faults.NewInjector(plan))
	if auditEvery != 0 {
		audit.Install(sys, auditEvery)
	}
	if err := sys.Run(); err != nil {
		return 0, err
	}
	ck.Finish()
	if err := ck.Err(); err != nil {
		return 0, err
	}
	return sys.Cycles, nil
}

// ChaosResult summarizes a chaos sweep.
type ChaosResult struct {
	Runs     int
	Injected bool
	// Bundle is non-nil when a run crashed or violated TSO; it replays
	// the failing cell.
	Bundle *ReproBundle
	// Err is the failure the bundle reproduces.
	Err error
}

// runMatrix executes n independent cells through a workers-wide pool
// and returns the lowest failing cell index plus its error (-1, nil on
// a clean sweep). Workers claim indices in order and a failure stops
// further claims, so every index below the claimed ones has already
// started: the minimum failing index — and therefore the reported
// failure and run count — is identical to the serial sweep's.
func runMatrix(workers, n int, run func(int) error) (int, error) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return i, err
		}
	}
	return -1, nil
}

// ChaosLitmus sweeps the litmus chaos matrix: every mechanism ×
// ChaosPatterns × schedules derived fault plans × skews start offsets,
// each under the TSO checker and the invariant auditor, fanned out over
// a workers-wide pool (<= 1 means serial). It stops at the first
// failure (in deterministic matrix order) with a repro bundle; a clean
// sweep returns Bundle == nil.
func ChaosLitmus(seed uint64, schedules, skews int, auditEvery uint64, workers int) (ChaosResult, error) {
	res := ChaosResult{Injected: true}
	tests := map[string]litmus.Test{}
	for _, t := range litmus.Tests() {
		tests[t.Name] = t
	}
	type chaosCell struct {
		mi, pi, si, skew int
		test             litmus.Test
	}
	var cells []chaosCell
	for mi := range config.Mechanisms {
		for pi, name := range ChaosPatterns {
			test, ok := tests[name]
			if !ok {
				return res, fmt.Errorf("harness: unknown chaos pattern %q", name)
			}
			for si := 0; si < schedules; si++ {
				for skew := 0; skew < skews; skew++ {
					cells = append(cells, chaosCell{mi, pi, si, skew, test})
				}
			}
		}
	}
	// cellPlan rederives the seeded plan from the cell coordinates, so
	// each concurrent run owns a private Plan.
	cellPlan := func(c chaosCell) faults.Plan {
		return faults.Schedule(faults.MixSeed(seed, uint64(c.mi), uint64(c.pi), uint64(c.si)))
	}
	failIdx, failErr := runMatrix(workers, len(cells), func(i int) error {
		c := cells[i]
		m := config.Mechanisms[c.mi]
		plan := cellPlan(c)
		obs, err := litmus.RunOne(c.test, m, c.skew, litmus.Opts{
			Faults:     &plan,
			AuditEvery: auditEvery,
		})
		if err == nil && c.test.Forbidden != nil && c.test.Forbidden(obs) {
			err = fmt.Errorf("harness: TSO-forbidden outcome %v in %s/%v skew %d under faults",
				obs, c.test.Name, m, c.skew)
		}
		return err
	})
	if failIdx < 0 {
		res.Runs = len(cells)
		return res, nil
	}
	c := cells[failIdx]
	res.Runs = failIdx + 1
	res.Err = failErr
	res.Bundle = &ReproBundle{
		Kind:       "litmus",
		Name:       c.test.Name,
		Mechanism:  config.Mechanisms[c.mi].String(),
		Skew:       c.skew,
		AuditEvery: auditEvery,
		Faults:     cellPlan(c),
	}
	var cr *system.CrashReport
	if errors.As(failErr, &cr) {
		res.Bundle.Report = cr
		res.Bundle.Classification = cr.Classification()
	}
	return res, nil
}

// ChaosBench runs each SB-bound benchmark once under TUS with a
// seed-derived fault plan (the deeper soak behind `tusim -chaos-seed`),
// fanned out over a workers-wide pool.
func ChaosBench(seed uint64, ops int, auditEvery uint64, workers int) (ChaosResult, error) {
	res := ChaosResult{Injected: true}
	benchs := workload.SBBound()
	cellPlan := func(bi int) faults.Plan {
		return faults.Schedule(faults.MixSeed(seed, 0xBE9C4, uint64(bi)))
	}
	failIdx, failErr := runMatrix(workers, len(benchs), func(bi int) error {
		plan := cellPlan(bi)
		_, err := RunChaosBench(benchs[bi], config.TUS, int64(seed), ops, 0, plan, auditEvery, 0)
		return err
	})
	if failIdx < 0 {
		res.Runs = len(benchs)
		return res, nil
	}
	res.Runs = failIdx + 1
	res.Err = failErr
	res.Bundle = &ReproBundle{
		Kind:       "bench",
		Name:       benchs[failIdx].Name,
		Mechanism:  config.TUS.String(),
		Seed:       int64(seed),
		Ops:        ops,
		AuditEvery: auditEvery,
		Faults:     cellPlan(failIdx),
	}
	var cr *system.CrashReport
	if errors.As(failErr, &cr) {
		res.Bundle.Report = cr
		res.Bundle.Classification = cr.Classification()
	}
	return res, nil
}
