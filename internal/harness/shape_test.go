package harness

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// TestShapeRegression guards the paper's qualitative results at a
// moderate scale: if a code change flips one of these orderings, the
// reproduction is broken even if every unit test passes.
func TestShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale shape check")
	}
	r := NewRunner()
	r.Ops = 60_000

	speedup := func(bench string, m config.Mechanism, sb int) float64 {
		b, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("missing %s", bench)
		}
		base, err := r.Run(b, config.Baseline, 114)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(b, m, sb)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(res, base)
	}

	// 1. TUS wins clearly on the store-burst flagship (paper: +26%).
	if s := speedup("502.gcc5", config.TUS, 114); s < 1.05 {
		t.Errorf("TUS on gcc5 = %+.1f%%, want a clear win", 100*(s-1))
	}
	// 2. TUS helps the long-latency-store workload; CSB and SPB do not
	//    (the paper's mcf narrative).
	mcfTUS := speedup("505.mcf", config.TUS, 114)
	mcfCSB := speedup("505.mcf", config.CSB, 114)
	mcfSPB := speedup("505.mcf", config.SPB, 114)
	if mcfTUS < 1.03 {
		t.Errorf("TUS on mcf = %+.1f%%, want a gain", 100*(mcfTUS-1))
	}
	if mcfCSB > mcfTUS-0.02 || mcfSPB > mcfTUS-0.02 {
		t.Errorf("mcf ordering broken: TUS %+.1f%% CSB %+.1f%% SPB %+.1f%%",
			100*(mcfTUS-1), 100*(mcfCSB-1), 100*(mcfSPB-1))
	}
	// 3. TUS does not slow the compute-bound control workload.
	if s := speedup("503.bw2", config.TUS, 114); s < 0.995 {
		t.Errorf("TUS slows bw2: %+.2f%%", 100*(s-1))
	}
	// 4. The headline: TUS with a 32-entry SB at least matches the
	//    114-entry baseline on the burst flagship.
	if s := speedup("502.gcc5", config.TUS, 32); s < 1.0 {
		t.Errorf("TUS@32 vs base@114 on gcc5 = %+.1f%%, want >= 0", 100*(s-1))
	}
	// 5. Coalescing reduces L1D write traffic ~4x on gcc5.
	b, _ := workload.ByName("502.gcc5")
	tusRes, err := r.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := r.Run(b, config.Baseline, 114)
	if err != nil {
		t.Fatal(err)
	}
	wTUS := tusRes.Stats.Get("l1d_writes")
	wBase := baseRes.Stats.Get("l1d_writes")
	if wTUS*3 > wBase {
		t.Errorf("coalescing weak: TUS %d vs base %d L1D writes", wTUS, wBase)
	}
	// 6. TUS EDP beats the baseline on the flagship.
	if tusRes.EDP >= baseRes.EDP {
		t.Errorf("TUS EDP (%.3g) not below baseline (%.3g)", tusRes.EDP, baseRes.EDP)
	}
}
