package harness

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// evalJSON runs the complete evaluation at a small scale with the given
// worker count and returns the emitted bytes.
func evalJSON(t *testing.T, workers int) []byte {
	t.Helper()
	r := NewQuickRunner()
	r.Ops = 1600
	r.ParallelOps = 200
	r.Workers = workers
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return buf.Bytes()
}

// TestParallelByteIdentity is the tentpole's core guarantee: the full
// evaluation JSON — every figure, S-curve, geomean — is byte-identical
// whether cells run serially or fan out to 2, 4, or 8 workers. Run
// under -race in CI (make race-harness) this doubles as the harness's
// concurrency soundness proof.
func TestParallelByteIdentity(t *testing.T) {
	serial := evalJSON(t, 1)
	if len(serial) == 0 {
		t.Fatal("empty serial evaluation")
	}
	for _, w := range []int{2, 4, 8} {
		if par := evalJSON(t, w); !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d produced different JSON than the serial path (%d vs %d bytes)",
				w, len(par), len(serial))
		}
	}
}

// TestParallelResultStructs compares individual cell Results — cycles,
// energy, EDP, and the full stats snapshot — across worker counts.
func TestParallelResultStructs(t *testing.T) {
	run := func(workers int) []Result {
		r := NewQuickRunner()
		r.Ops = 2000
		r.Workers = workers
		benchs := workload.SBBound()[:3]
		var cells []Cell
		for _, b := range benchs {
			for _, m := range config.Mechanisms {
				cells = append(cells, Cell{b, m, 114})
			}
		}
		if err := r.Prefetch(cells); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]Result, len(cells))
		for i, c := range cells {
			res, err := r.Run(c.Bench, c.Mech, c.SB)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			out[i] = res
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Cycles != p.Cycles || s.EDP != p.EDP || s.Energy != p.Energy ||
			s.Bench != p.Bench || s.Mech != p.Mech || s.SB != p.SB || s.Cores != p.Cores {
			t.Fatalf("cell %s/%v/%d differs: serial %+v parallel %+v", s.Bench, s.Mech, s.SB, s, p)
		}
		if !reflect.DeepEqual(s.Stats.Snapshot(), p.Stats.Snapshot()) {
			t.Fatalf("cell %s/%v/%d stats differ between serial and parallel", s.Bench, s.Mech, s.SB)
		}
	}
}

// TestPrefetchDeterministicError: the first failing cell in list order
// is reported regardless of worker count or completion order.
func TestPrefetchDeterministicError(t *testing.T) {
	good, _ := workload.ByName("502.gcc1")
	cells := []Cell{
		{good, config.Baseline, 114},
		{workload.Benchmark{Name: "ghost-a"}, config.TUS, 114},
		{workload.Benchmark{Name: "ghost-b"}, config.TUS, 114},
	}
	for _, w := range []int{1, 4} {
		r := NewQuickRunner()
		r.Ops = 1000
		r.Workers = w
		err := r.Prefetch(cells)
		if err == nil {
			t.Fatalf("workers=%d: Prefetch accepted an invalid benchmark", w)
		}
		if !strings.Contains(err.Error(), "ghost-a") {
			t.Fatalf("workers=%d: first error should name ghost-a, got: %v", w, err)
		}
	}
}

// TestRunSingleflight: concurrent Run calls for the same cell share one
// simulation (same *stats.Set handle).
func TestRunSingleflight(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 2000
	r.Workers = 8
	b, _ := workload.ByName("503.bw2")
	const callers = 8
	results := make([]Result, callers)
	if err := parmap(callers, callers, func(i int) error {
		res, err := r.Run(b, config.TUS, 114)
		results[i] = res
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < callers; i++ {
		if results[i].Stats != results[0].Stats {
			t.Fatal("concurrent Run calls did not share the memoized result")
		}
	}
	if got := r.cellsRun.Load(); got != 1 {
		t.Fatalf("singleflight ran the cell %d times, want 1", got)
	}
}

// TestChaosParallelMatchesSerial: the chaos litmus matrix reports the
// same run count and cleanliness at any worker count (deterministic
// first-failure merge order).
func TestChaosParallelMatchesSerial(t *testing.T) {
	serial, err := ChaosLitmus(7, 1, 2, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := ChaosLitmus(7, 1, 2, 64, w)
		if err != nil {
			t.Fatal(err)
		}
		if par.Runs != serial.Runs || (par.Bundle == nil) != (serial.Bundle == nil) {
			t.Fatalf("workers=%d: runs=%d bundle=%v; serial runs=%d bundle=%v",
				w, par.Runs, par.Bundle != nil, serial.Runs, serial.Bundle != nil)
		}
	}
}

// TestDSEParallelMatchesSerial: sweep points land in identical order
// with identical cycle counts under the pool.
func TestDSEParallelMatchesSerial(t *testing.T) {
	run := func(workers int) []DSEPoint {
		r := NewQuickRunner()
		r.Ops = 2500
		r.Workers = workers
		points, err := DSE(r, "502.gcc2")
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("DSE diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestSortByBaselineStallsEdgeCases covers the empty and invalid-input
// paths of the paper's bar-sorting helper.
func TestSortByBaselineStallsEdgeCases(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 1000
	out, err := r.SortByBaselineStalls(nil, 114)
	if err != nil {
		t.Fatalf("empty input errored: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty input returned %d benchmarks", len(out))
	}
	if _, err := r.SortByBaselineStalls([]workload.Benchmark{{Name: "no-such"}}, 114); err == nil {
		t.Fatal("invalid benchmark did not error")
	}
}

// TestRunRejectsInvalidBenchmark: a zero-value Benchmark (an ignored
// ByName miss) is a clean error, not a panic inside the generator.
func TestRunRejectsInvalidBenchmark(t *testing.T) {
	r := NewQuickRunner()
	if _, err := r.Run(workload.Benchmark{Name: "phantom"}, config.TUS, 114); err == nil {
		t.Fatal("Run accepted an invalid benchmark")
	} else if !strings.Contains(err.Error(), "phantom") {
		t.Fatalf("error should identify the cell: %v", err)
	}
}

// TestParmapOrderAndError pins the pool helper's contract directly.
func TestParmapOrderAndError(t *testing.T) {
	for _, w := range []int{1, 3, 16} {
		var hits [40]int32
		if err := parmap(w, len(hits), func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, h)
			}
		}
		err := parmap(w, 10, func(i int) error {
			if i >= 4 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 4" {
			t.Fatalf("workers=%d: first-in-order error = %v, want boom 4", w, err)
		}
	}
}
