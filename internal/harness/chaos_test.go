package harness

import (
	"errors"
	"path/filepath"
	"testing"

	"tusim/internal/config"
	"tusim/internal/faults"
	"tusim/internal/litmus"
	"tusim/internal/system"
)

// TestChaosFuzzMatrix sweeps the full chaos matrix — every mechanism ×
// {SB, MP, ATOM} × 3 seeded fault schedules × 8 start skews — under the
// TSO checker and the invariant auditor. Seed 7 is pinned: its MP/base
// cell is the schedule that originally exposed the missing MOB
// invalidation snoop (load->load reordering under injected latency).
func TestChaosFuzzMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fuzz matrix skipped in -short")
	}
	for _, seed := range []uint64{7, 21} {
		res, err := ChaosLitmus(seed, 3, 8, 64, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Bundle != nil {
			t.Fatalf("seed %d: chaos failure after %d runs: %v", seed, res.Runs, res.Err)
		}
		want := len(config.Mechanisms) * len(ChaosPatterns) * 3 * 8
		if res.Runs != want {
			t.Fatalf("seed %d: ran %d cells, want %d", seed, res.Runs, want)
		}
	}
}

// sabotageRun executes one litmus cell with a deliberate corruption
// scheduled and returns the resulting crash report.
func sabotageRun(t *testing.T, m config.Mechanism, plan faults.Plan) (*system.CrashReport, error) {
	t.Helper()
	test := findTest(t, "MP")
	_, err := litmus.RunOne(test, m, 0, litmus.Opts{Faults: &plan, AuditEvery: 1})
	if err == nil {
		return nil, nil
	}
	var cr *system.CrashReport
	if !errors.As(err, &cr) {
		t.Fatalf("sabotage produced a non-CrashReport error: %v", err)
	}
	return cr, err
}

func findTest(t *testing.T, name string) litmus.Test {
	t.Helper()
	for _, lt := range litmus.Tests() {
		if lt.Name == name {
			return lt
		}
	}
	t.Fatalf("litmus test %q not found", name)
	return litmus.Test{}
}

// TestSabotageDetectedAndReproduced proves the whole detection pipeline
// end to end, for both sabotage kinds: deliberate corruption must yield
// a CrashReport naming a violated invariant, and the saved repro bundle
// must deterministically reproduce the identical crash via Replay (the
// `tusim -repro` path).
func TestSabotageDetectedAndReproduced(t *testing.T) {
	cases := []struct {
		name string
		mech config.Mechanism
		kind string
	}{
		// hide-line corrupts TUS's NotVisible bookkeeping, so it needs the
		// TUS drain; drop-owner corrupts the directory under any mechanism.
		{"hide-line", config.TUS, faults.SabotageHideLine},
		{"drop-owner", config.Baseline, faults.SabotageDropOwner},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := faults.Plan{
				Seed:         1,
				SabotageSpec: faults.Sabotage{Cycle: 1, Core: 0, Kind: tc.kind},
			}
			cr, err := sabotageRun(t, tc.mech, plan)
			if cr == nil {
				t.Fatalf("%s sabotage went undetected", tc.kind)
			}
			if cr.Kind != system.CrashAudit && cr.Kind != system.CrashInvariant {
				t.Fatalf("crash kind = %q, want audit or invariant", cr.Kind)
			}
			if cr.Violation == nil || cr.Violation.Invariant == "" {
				t.Fatalf("crash report names no invariant: %+v", cr)
			}

			// Round-trip through the bundle file and replay.
			bundle := &ReproBundle{
				Kind:       "litmus",
				Name:       "MP",
				Mechanism:  tc.mech.String(),
				AuditEvery: 1,
				Faults:     plan,
				Report:     cr,
			}
			path := filepath.Join(t.TempDir(), "crash.json")
			if err := bundle.Save(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadBundle(path)
			if err != nil {
				t.Fatal(err)
			}
			rerr := loaded.Replay()
			if rerr == nil {
				t.Fatal("replay did not reproduce the crash")
			}
			var rcr *system.CrashReport
			if !errors.As(rerr, &rcr) {
				t.Fatalf("replay error is not a *CrashReport: %v", rerr)
			}
			// Determinism: the replay must die the same death at the same
			// cycle for the same invariant.
			if rcr.Kind != cr.Kind || rcr.Cycle != cr.Cycle ||
				rcr.Violation.Invariant != cr.Violation.Invariant {
				t.Fatalf("replay diverged:\n  original: %s cycle=%d inv=%s\n  replay:   %s cycle=%d inv=%s",
					cr.Kind, cr.Cycle, cr.Violation.Invariant,
					rcr.Kind, rcr.Cycle, rcr.Violation.Invariant)
			}
		})
	}
}

// TestChaosBenchSoak runs the benchmark leg of the chaos sweep once
// with a small op count (the full soak runs via `tusim -chaos-seed`).
func TestChaosBenchSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos bench soak skipped in -short")
	}
	res, err := ChaosBench(7, 1500, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bundle != nil {
		t.Fatalf("bench soak failed after %d runs: %v", res.Runs, res.Err)
	}
	if res.Runs == 0 {
		t.Fatal("bench soak ran nothing")
	}
}

// TestBundleRejectsGarbage: a corrupt bundle file must fail loudly.
func TestBundleRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := (&ReproBundle{Kind: "litmus", Name: "MP"}).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing bundle succeeded")
	}
	b := &ReproBundle{Kind: "nonsense"}
	if err := b.Replay(); err == nil {
		t.Fatal("replaying an unknown bundle kind succeeded")
	}
}
