package harness

import (
	"fmt"
	"io"

	"tusim/internal/config"
	"tusim/internal/system"
	"tusim/internal/workload"
)

// DSEPoint is one configuration of a design-space sweep.
type DSEPoint struct {
	Label  string
	Bench  string
	Cycles uint64
	// SpeedupVsDefault is relative to the paper's chosen configuration.
	SpeedupVsDefault float64
}

// DSE reproduces the paper's design-space exploration (Sec. VI): sweeps
// of WOQ size, WCB count, maximum atomic-group length, and the
// coalescing ablation, all on TUS with a representative SB-bound
// workload. The paper's conclusions to check: 64 WOQ entries and 2
// WCBs are cost-effective, and group lengths beyond 8 stop mattering
// for sequential applications.
//
// The sweep points mutate the machine configuration, so they bypass the
// Runner's cell cache; each point simulates a private system, and the
// whole sweep (default + every point) fans out to the worker pool with
// results merged back in fixed sweep order.
func DSE(r *Runner, benchName string) ([]DSEPoint, error) {
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown benchmark %q", benchName)
	}
	run := func(mut func(*config.Config)) (uint64, error) {
		cfg := config.Default().WithMechanism(config.TUS).WithCores(b.Threads)
		mut(cfg)
		sys, err := system.New(cfg, r.interned.streams(b, r.Seed, r.ops(b)))
		if err != nil {
			return 0, err
		}
		sys.WarmupOps = uint64(r.ops(b)) * uint64(b.Threads) / 3
		if err := sys.Run(); err != nil {
			return 0, err
		}
		return sys.Cycles, nil
	}

	type spec struct {
		label string
		mut   func(*config.Config)
	}
	specs := []spec{{"default", func(*config.Config) {}}}
	for _, n := range []int{16, 32, 64, 128} {
		n := n
		specs = append(specs, spec{fmt.Sprintf("WOQ=%d", n), func(c *config.Config) { c.WOQEntries = n }})
	}
	for _, n := range []int{1, 2, 4} {
		n := n
		specs = append(specs, spec{fmt.Sprintf("WCBs=%d", n), func(c *config.Config) { c.WCBCount = n }})
	}
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		specs = append(specs, spec{fmt.Sprintf("maxGroup=%d", n), func(c *config.Config) { c.MaxAtomicGroup = n }})
	}
	specs = append(specs,
		spec{"no-coalescing", func(c *config.Config) { c.TUSCoalesce = false }},
		spec{"no-prefetch-at-commit", func(c *config.Config) { c.PrefetchAtCommit = false }},
	)

	cycles := make([]uint64, len(specs))
	err := r.parmap(len(specs), func(i int) error {
		cyc, err := run(specs[i].mut)
		if err != nil {
			return fmt.Errorf("harness: DSE %s: %w", specs[i].label, err)
		}
		cycles[i] = cyc
		return nil
	})
	if err != nil {
		return nil, err
	}

	base := cycles[0]
	out := make([]DSEPoint, 0, len(specs)-1)
	for i, s := range specs[1:] {
		out = append(out, DSEPoint{
			Label:            s.label,
			Bench:            benchName,
			Cycles:           cycles[i+1],
			SpeedupVsDefault: float64(base) / float64(cycles[i+1]),
		})
	}
	return out, nil
}

// PrintDSE renders the sweep.
func PrintDSE(w io.Writer, points []DSEPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "TUS design-space exploration on %s (vs the paper's WOQ=64/WCB=2/group<=16):\n",
		points[0].Bench)
	for _, p := range points {
		fmt.Fprintf(w, "  %-24s %10d cycles  %+6.1f%%\n", p.Label, p.Cycles, 100*(p.SpeedupVsDefault-1))
	}
}
