package harness

import (
	"fmt"
	"io"

	"tusim/internal/config"
	"tusim/internal/system"
	"tusim/internal/workload"
)

// DSEPoint is one configuration of a design-space sweep.
type DSEPoint struct {
	Label  string
	Bench  string
	Cycles uint64
	// SpeedupVsDefault is relative to the paper's chosen configuration.
	SpeedupVsDefault float64
}

// DSE reproduces the paper's design-space exploration (Sec. VI): sweeps
// of WOQ size, WCB count, maximum atomic-group length, and the
// coalescing ablation, all on TUS with a representative SB-bound
// workload. The paper's conclusions to check: 64 WOQ entries and 2
// WCBs are cost-effective, and group lengths beyond 8 stop mattering
// for sequential applications.
func DSE(r *Runner, benchName string) ([]DSEPoint, error) {
	b, ok := workload.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown benchmark %q", benchName)
	}
	run := func(mut func(*config.Config)) (uint64, error) {
		cfg := config.Default().WithMechanism(config.TUS).WithCores(b.Threads)
		mut(cfg)
		sys, err := system.New(cfg, b.Streams(r.Seed, r.ops(b)))
		if err != nil {
			return 0, err
		}
		sys.WarmupOps = uint64(r.ops(b)) * uint64(b.Threads) / 3
		if err := sys.Run(); err != nil {
			return 0, err
		}
		return sys.Cycles, nil
	}

	base, err := run(func(*config.Config) {})
	if err != nil {
		return nil, err
	}

	var out []DSEPoint
	add := func(label string, mut func(*config.Config)) error {
		cyc, err := run(mut)
		if err != nil {
			return fmt.Errorf("harness: DSE %s: %w", label, err)
		}
		out = append(out, DSEPoint{
			Label:            label,
			Bench:            benchName,
			Cycles:           cyc,
			SpeedupVsDefault: float64(base) / float64(cyc),
		})
		return nil
	}

	for _, n := range []int{16, 32, 64, 128} {
		n := n
		if err := add(fmt.Sprintf("WOQ=%d", n), func(c *config.Config) { c.WOQEntries = n }); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{1, 2, 4} {
		n := n
		if err := add(fmt.Sprintf("WCBs=%d", n), func(c *config.Config) { c.WCBCount = n }); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{4, 8, 16, 32} {
		n := n
		if err := add(fmt.Sprintf("maxGroup=%d", n), func(c *config.Config) { c.MaxAtomicGroup = n }); err != nil {
			return nil, err
		}
	}
	if err := add("no-coalescing", func(c *config.Config) { c.TUSCoalesce = false }); err != nil {
		return nil, err
	}
	if err := add("no-prefetch-at-commit", func(c *config.Config) { c.PrefetchAtCommit = false }); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintDSE renders the sweep.
func PrintDSE(w io.Writer, points []DSEPoint) {
	if len(points) == 0 {
		return
	}
	fmt.Fprintf(w, "TUS design-space exploration on %s (vs the paper's WOQ=64/WCB=2/group<=16):\n",
		points[0].Bench)
	for _, p := range points {
		fmt.Fprintf(w, "  %-24s %10d cycles  %+6.1f%%\n", p.Label, p.Cycles, 100*(p.SpeedupVsDefault-1))
	}
}
