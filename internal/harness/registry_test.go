package harness

import (
	"fmt"
	"strings"
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// TestRegistryCoversEveryFigure pins the servable inventory: all eight
// figures of Sec. VI are registered, each with a non-empty, duplicate-
// free cell list, and the numbers agree with what tusbench -list and
// GET /v1/figures report.
func TestRegistryCoversEveryFigure(t *testing.T) {
	figs := Figures()
	if len(figs) != 8 {
		t.Fatalf("Figures() = %d specs, want 8", len(figs))
	}
	for i, f := range figs {
		if f.Fig != 8+i {
			t.Errorf("Figures()[%d].Fig = %d, want %d (paper order)", i, f.Fig, 8+i)
		}
		cells := FigureCells(f.Fig)
		if len(cells) == 0 {
			t.Errorf("fig%d: no cells", f.Fig)
		}
		seen := map[string]bool{}
		for _, c := range cells {
			k := CellKey(c)
			if seen[k] {
				t.Errorf("fig%d: duplicate cell %s", f.Fig, k)
			}
			seen[k] = true
		}
		if len(f.DegradeTags) == 0 {
			t.Errorf("fig%d: no degrade tags (quarantine would be invisible)", f.Fig)
		}
	}
	if _, ok := FigureByNum(7); ok {
		t.Error("FigureByNum(7) = ok, want miss")
	}
	if _, ok := FigureByNum(9); !ok {
		t.Error("FigureByNum(9) missed")
	}
}

// TestFig9CellCount pins the acceptance-criterion number: Fig. 9 is the
// ST SB-bound matrix at 114 entries — 11 benchmarks x 5 distinct cells
// (the baseline cell coincides with the Baseline mechanism column).
func TestFig9CellCount(t *testing.T) {
	want := len(workload.SBBound()) * len(config.Mechanisms)
	if got := len(FigureCells(9)); got != want {
		t.Fatalf("fig9 cells = %d, want %d", got, want)
	}
}

// TestCellKeyMatchesRunKey pins CellKey to the exact key Runner.Run
// builds, which is what lets tusd index per-cell completion events.
func TestCellKeyMatchesRunKey(t *testing.T) {
	b, ok := workload.ByName("502.gcc1")
	if !ok {
		t.Fatal("502.gcc1 missing")
	}
	c := Cell{Bench: b, Mech: config.TUS, SB: 32}
	want := fmt.Sprintf("%s/%v/%d", b.Name, config.TUS, 32)
	if got := CellKey(c); got != want {
		t.Fatalf("CellKey = %q, want %q", got, want)
	}
}

// TestListReport checks the -list / GET /v1/figures payload is
// assembled from the same registry tables.
func TestListReport(t *testing.T) {
	rep := List()
	if rep.HarnessVersion != Version {
		t.Errorf("HarnessVersion = %q, want %q", rep.HarnessVersion, Version)
	}
	if len(rep.Figures) != len(Figures()) {
		t.Errorf("Figures = %d rows, want %d", len(rep.Figures), len(Figures()))
	}
	for _, f := range rep.Figures {
		if f.Cells != len(FigureCells(f.Fig)) {
			t.Errorf("fig%d: listed cells %d != registry %d", f.Fig, f.Cells, len(FigureCells(f.Fig)))
		}
		if f.Title == "" || f.Name == "" {
			t.Errorf("fig%d: empty name/title", f.Fig)
		}
	}
	if len(rep.Benches) != len(workload.All()) {
		t.Errorf("Benches = %d rows, want %d", len(rep.Benches), len(workload.All()))
	}
}

// TestRenderFigureUnknown pins the error path (the server surfaces it
// as a 400).
func TestRenderFigureUnknown(t *testing.T) {
	r := NewQuickRunner()
	err := RenderFigure(r, 99, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("RenderFigure(99) err = %v, want unknown-figure error", err)
	}
}

// TestFigureCellUnion pins the expected exactly-once totals tusload
// gates on: figures sharing a matrix (9 and 11 are both the SB-bound
// set at 114) collapse to one set, disjoint SB sizes add, and unknown
// figures contribute nothing.
func TestFigureCellUnion(t *testing.T) {
	n9 := len(FigureCells(9))
	if got := len(FigureCellUnion(9)); got != n9 {
		t.Errorf("union(9) = %d, want %d", got, n9)
	}
	// Fig 11 runs the identical matrix: the union must not double count.
	if got := len(FigureCellUnion(9, 11)); got != n9 {
		t.Errorf("union(9,11) = %d, want %d (same matrix)", got, n9)
	}
	// Fig 15 is the same benches at SB 32: fully disjoint cells.
	if got := len(FigureCellUnion(9, 15)); got != 2*n9 {
		t.Errorf("union(9,15) = %d, want %d", got, 2*n9)
	}
	if got := len(FigureCellUnion(9, 99)); got != n9 {
		t.Errorf("union(9,99) = %d, want %d (unknown fig ignored)", got, n9)
	}
	// No duplicates survive, and every member resolves back to a figure
	// cell.
	union := FigureCellUnion(9, 15, 11)
	seen := map[string]bool{}
	for _, c := range union {
		k := CellKey(c)
		if seen[k] {
			t.Errorf("duplicate cell %s in union", k)
		}
		seen[k] = true
	}
	if len(union) != 2*n9 {
		t.Errorf("union(9,15,11) = %d, want %d", len(union), 2*n9)
	}
}
