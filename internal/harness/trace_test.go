package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tusim/internal/config"
	"tusim/internal/trace"
	"tusim/internal/workload"
)

// TestTraceIdentityFig8 pins the ISSUE's observability invariant: a full
// Fig. 8 run with store-lifecycle tracing enabled is byte-identical to
// one with tracing disabled. The committed golden snapshot was generated
// untraced, so comparing a traced run against it proves tracing never
// perturbs timing, stats, or figure assembly.
func TestTraceIdentityFig8(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "fig8.golden.json"))
	if err != nil {
		t.Fatalf("missing fig8 golden snapshot: %v", err)
	}

	r := goldenRunner()
	r.Trace = true
	rows, err := Fig8(r)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Fig8JSON, 0, len(rows))
	for _, row := range rows {
		out = append(out, Fig8JSON{Suite: row.Suite, SB: row.SB, Speedups: mechMap(row.Speedup)})
	}
	got, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("fig8 with tracing enabled differs from the untraced golden snapshot: tracing is supposed to be observational only (got %d bytes, want %d)", len(got), len(want))
	}
}

// TestTraceChromeRoundTrip drives one cell through the harness with
// tracing on and asserts the exported file is valid Chrome trace JSON
// with the complete store lifecycle: SB residency spans, WCB coalescing,
// unauthorized WOQ residency, MSHR misses, and the permission protocol
// instants. This is the same path `tusim -trace -trace-out` uses.
func TestTraceChromeRoundTrip(t *testing.T) {
	b, ok := workload.ByName("502.gcc5")
	if !ok {
		t.Fatal("benchmark 502.gcc5 missing")
	}
	r := NewQuickRunner()
	r.Workers = 1
	r.Trace = true
	var mu sync.Mutex
	tracers := map[string]*trace.Tracer{}
	r.OnTrace = func(key string, tr *trace.Tracer) {
		mu.Lock()
		tracers[key] = tr
		mu.Unlock()
	}
	if _, err := r.Run(b, config.TUS, 114); err != nil {
		t.Fatal(err)
	}
	tr := tracers["502.gcc5/TUS/114"]
	if tr == nil {
		t.Fatalf("OnTrace never delivered the cell's tracer (got keys %v)", tracers)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("-trace-out output is not valid Chrome trace JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}

	spans := map[string]int{}
	instants := map[string]int{}
	for _, e := range f.TraceEvents {
		name, _ := e["name"].(string)
		switch e["ph"] {
		case "X":
			spans[name]++
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("span %v lacks a numeric ts", e)
			}
			if dur := e["dur"].(float64); dur < 0 {
				t.Fatalf("span %v has negative duration", e)
			}
		case "i":
			instants[name]++
		}
	}
	// The complete TUS lifecycle must be present: SB residency, WCB
	// coalescing, unauthorized WOQ residency, and MSHR misses as spans;
	// commit and permission traffic as instants.
	for _, want := range []string{"sb_resident", "wcb_resident", "unauthorized", "miss"} {
		if spans[want] == 0 {
			t.Errorf("lifecycle span %q missing from trace (spans: %v)", want, spans)
		}
	}
	for _, want := range []string{"sb_commit", "perm_request", "perm_grant", "woq_release", "store_visible"} {
		if instants[want] == 0 {
			t.Errorf("protocol instant %q missing from trace (instants: %v)", want, instants)
		}
	}
}

// TestTraceCacheHitDeliversNoTrace documents the Runner contract: cells
// served from the persistent cache never simulated in this process, so
// OnTrace must not fire for them.
func TestTraceCacheHitDeliversNoTrace(t *testing.T) {
	b, ok := workload.ByName("523.xalancbmk")
	if !ok {
		t.Fatal("benchmark 523.xalancbmk missing")
	}
	dir := t.TempDir()
	warm := NewQuickRunner()
	warm.Ops = 2000
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm.Cache = cache
	if _, err := warm.Run(b, config.Baseline, 32); err != nil {
		t.Fatal(err)
	}

	r := NewQuickRunner()
	r.Ops = 2000
	r.Cache = cache
	r.Trace = true
	fired := 0
	r.OnTrace = func(string, *trace.Tracer) { fired++ }
	if _, err := r.Run(b, config.Baseline, 32); err != nil {
		t.Fatal(err)
	}
	if got := r.cellsFromC.Load(); got != 1 {
		t.Fatalf("expected a cache hit, got %d", got)
	}
	if fired != 0 {
		t.Fatalf("OnTrace fired %d times for a cache-served cell, want 0", fired)
	}
}
