package harness

import (
	"sync"
	"sync/atomic"

	"tusim/internal/isa"
	"tusim/internal/workload"
)

// Trace interning. A figure sweep runs many cells per benchmark — fig8
// alone runs every mechanism × SB point over the same workloads — and
// every cell used to regenerate its full micro-op trace from scratch
// via b.Streams(seed, ops), even though the trace depends only on
// (bench, seed, ops), not on the mechanism or SB size under test. The
// interner generates each distinct trace exactly once per process and
// serves the immutable [][]isa.MicroOp to every cell that shares the
// key; concurrent first requests collapse via singleflight so the
// generation cost is paid once even under a full worker pool.
//
// Interned traces are shared across concurrently running simulations,
// so they are strictly read-only after publication: cells wrap the
// shared per-thread slices in fresh isa.SliceStream cursors (private
// position, shared backing array) and the CPU model only ever reads
// ops through Stream.Next. TestInternedTraceConcurrentMechanisms pins
// that contract under the race detector.

// traceKey is the full identity of a generated workload trace.
type traceKey struct {
	bench string
	seed  int64
	ops   int
}

// traceCell is one singleflight slot: the first goroutine to claim a
// key generates; everyone else blocks on done and shares the result.
type traceCell struct {
	done   chan struct{}
	traces [][]isa.MicroOp
}

// interner is the content-keyed trace table. The zero value is ready
// to use.
type interner struct {
	mu sync.Mutex
	m  map[traceKey]*traceCell

	// generated counts actual trace generations (not hits); tests use
	// it to pin the generate-once guarantee.
	generated atomic.Int64
}

// traces returns the interned per-thread op slices for (b, seed, ops),
// generating them on first use. The returned slices are shared and
// immutable; callers must not modify them.
func (in *interner) traces(b workload.Benchmark, seed int64, ops int) [][]isa.MicroOp {
	key := traceKey{bench: b.Name, seed: seed, ops: ops}
	in.mu.Lock()
	if in.m == nil {
		in.m = make(map[traceKey]*traceCell)
	}
	c, inflight := in.m[key]
	if !inflight {
		c = &traceCell{done: make(chan struct{})}
		in.m[key] = c
	}
	in.mu.Unlock()
	if inflight {
		<-c.done
		return c.traces
	}
	c.traces = b.Generate(seed, ops)
	in.generated.Add(1)
	close(c.done)
	return c.traces
}

// streams wraps the interned trace in fresh per-cell stream cursors.
// Only the small cursor structs are allocated per cell; the op arrays
// are shared.
func (in *interner) streams(b workload.Benchmark, seed int64, ops int) []isa.Stream {
	traces := in.traces(b, seed, ops)
	out := make([]isa.Stream, len(traces))
	for i, tr := range traces {
		out[i] = isa.NewSliceStream(tr)
	}
	return out
}
