package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tusim/internal/config"
	"tusim/internal/workload"
)

func cachedRunner(t *testing.T, dir string) *Runner {
	t.Helper()
	cache, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewQuickRunner()
	r.Ops = 2000
	r.Cache = cache
	return r
}

// TestDiskCacheRoundTrip: a second process-equivalent Runner rehydrates
// the cell from disk — identical cycles, energy, EDP, and stats
// (including formatting prefix) — without simulating.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, _ := workload.ByName("503.bw2")

	cold := cachedRunner(t, dir)
	want, err := cold.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}
	if cold.cellsRun.Load() != 1 || cold.cellsFromC.Load() != 0 {
		t.Fatalf("cold run accounting: run=%d cached=%d", cold.cellsRun.Load(), cold.cellsFromC.Load())
	}

	warm := cachedRunner(t, dir)
	got, err := warm.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}
	if warm.cellsRun.Load() != 0 || warm.cellsFromC.Load() != 1 {
		t.Fatalf("warm run accounting: run=%d cached=%d", warm.cellsRun.Load(), warm.cellsFromC.Load())
	}
	if got.Cycles != want.Cycles || got.EDP != want.EDP || got.Energy != want.Energy ||
		got.Bench != want.Bench || got.Mech != want.Mech || got.SB != want.SB || got.Cores != want.Cores {
		t.Fatalf("cache hit differs: got %+v want %+v", got, want)
	}
	if !reflect.DeepEqual(got.Stats.Snapshot(), want.Stats.Snapshot()) {
		t.Fatal("cached stats snapshot differs from live run")
	}
	if got.Stats.String() != want.Stats.String() {
		t.Fatal("cached stats format (prefix/order) differs from live run")
	}
}

// TestDiskCacheCorruptEntryIsMiss: a torn or garbage entry silently
// degrades to a recomputation, never an error or a wrong result.
func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	b, _ := workload.ByName("503.bw2")
	cold := cachedRunner(t, dir)
	want, err := cold.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected 1 cache entry, got %v (%v)", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	warm := cachedRunner(t, dir)
	got, err := warm.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}
	if warm.cellsRun.Load() != 1 {
		t.Fatal("corrupt entry should have forced a recomputation")
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("recomputed cycles %d != original %d", got.Cycles, want.Cycles)
	}
	if warm.cacheCorrupt.Load() != 1 {
		t.Fatalf("cache_corrupt = %d, want 1", warm.cacheCorrupt.Load())
	}
	if cold.cacheCorrupt.Load() != 0 {
		t.Fatalf("cold runner counted %d corruptions, want 0", cold.cacheCorrupt.Load())
	}
}

// TestContentKeySensitivity: the content hash must move when anything
// that can change the result moves — mechanism, SB size, seed, trace
// length, checker attachment, harness version — and must be stable for
// identical inputs.
func TestContentKeySensitivity(t *testing.T) {
	b, _ := workload.ByName("503.bw2")
	base := NewQuickRunner()
	cfgOf := func(m config.Mechanism, sb int) *config.Config {
		return config.Default().WithMechanism(m).WithSB(sb).WithCores(b.Threads)
	}
	ref := base.contentKey(b, cfgOf(config.TUS, 114))
	if ref != base.contentKey(b, cfgOf(config.TUS, 114)) {
		t.Fatal("content key is not stable")
	}
	variants := map[string]string{}
	variants["mech"] = base.contentKey(b, cfgOf(config.CSB, 114))
	variants["sb"] = base.contentKey(b, cfgOf(config.TUS, 32))
	seeded := NewQuickRunner()
	seeded.Seed = 99
	variants["seed"] = seeded.contentKey(b, cfgOf(config.TUS, 114))
	longer := NewQuickRunner()
	longer.Ops = base.Ops * 2
	variants["ops"] = longer.contentKey(b, cfgOf(config.TUS, 114))
	checked := NewQuickRunner()
	checked.Check = true
	variants["check"] = checked.contentKey(b, cfgOf(config.TUS, 114))
	other, _ := workload.ByName("502.gcc1")
	variants["bench"] = base.contentKey(other, cfgOf(config.TUS, 114))
	seen := map[string]string{ref: "ref"}
	for what, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Fatalf("content key for %q collides with %q", what, prev)
		}
		seen[key] = what
	}
}

// TestContentKeyIgnoresCellTimeout: the supervision deadline is a
// harness knob, not a simulation parameter — changing it must not
// invalidate cached cells.
func TestContentKeyIgnoresCellTimeout(t *testing.T) {
	b, _ := workload.ByName("503.bw2")
	r := NewQuickRunner()
	cfg := config.Default().WithMechanism(config.TUS).WithSB(114).WithCores(b.Threads)
	ref := r.contentKey(b, cfg)
	mod := cfg.Clone()
	mod.CellTimeout = 17 * time.Second
	if got := r.contentKey(b, mod); got != ref {
		t.Fatal("CellTimeout changed the content key; timeout tweaks would bust the cache")
	}
	if mod.CellTimeout != 17*time.Second {
		t.Fatal("contentKey mutated its input config")
	}
}

// TestDiskCacheParallelSharing: a parallel figure run against a warm
// cache simulates nothing.
func TestDiskCacheParallelSharing(t *testing.T) {
	dir := t.TempDir()
	benchs := workload.SBBound()[:2]
	var cells []Cell
	for _, b := range benchs {
		for _, m := range config.Mechanisms {
			cells = append(cells, Cell{b, m, 114})
		}
	}
	cold := cachedRunner(t, dir)
	cold.Workers = 4
	if err := cold.Prefetch(cells); err != nil {
		t.Fatal(err)
	}
	if got := int(cold.cellsRun.Load()); got != len(cells) {
		t.Fatalf("cold prefetch ran %d cells, want %d", got, len(cells))
	}
	warm := cachedRunner(t, dir)
	warm.Workers = 4
	if err := warm.Prefetch(cells); err != nil {
		t.Fatal(err)
	}
	if got := warm.cellsRun.Load(); got != 0 {
		t.Fatalf("warm prefetch simulated %d cells, want 0", got)
	}
	if got := int(warm.cellsFromC.Load()); got != len(cells) {
		t.Fatalf("warm prefetch loaded %d cells from cache, want %d", got, len(cells))
	}
}
