package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tusim/internal/config"
	"tusim/internal/energy"
	"tusim/internal/stats"
	"tusim/internal/workload"
)

// DiskCache is a content-addressed, cross-process result cache: each
// cell is stored under the hex SHA-256 of everything that determines
// its outcome (harness version, full machine configuration, benchmark
// identity, workload seed, trace length, checker attachment). Because
// the key is derived from content — not from file mtimes or run order —
// a hit is exactly as trustworthy as a rerun, and any change to the
// simulator invalidates the whole cache via Version.
//
// The cache is best-effort: read or write failures (corrupt entries,
// permission errors, version skew) degrade to a miss and a fresh
// simulation, never to an error.
type DiskCache struct {
	Dir string
}

// NewDiskCache returns a cache rooted at dir, creating it if needed.
func NewDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: cache dir: %w", err)
	}
	return &DiskCache{Dir: dir}, nil
}

// contentKey hashes everything that determines a cell's result.
// Supervision-only knobs (the cell deadline) are zeroed out first: they
// cannot change a simulation outcome, so two runs differing only in
// timeout policy must share cache entries.
func (r *Runner) contentKey(b workload.Benchmark, cfg *config.Config) string {
	hc := cfg.Clone()
	hc.CellTimeout = 0
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|seed=%d|ops=%d|check=%v|cfg=%+v",
		Version, b.Name, r.Seed, r.ops(b), r.Check, *hc)))
	return hex.EncodeToString(h[:])
}

// ContentKey exposes the cell's content-addressed cache key: the hex
// SHA-256 over (harness Version, benchmark identity, seed, trace
// length, checker attachment, full machine configuration). tusd keys
// request coalescing on these, so "the same job" means exactly what
// "the same cache entry" means.
func (r *Runner) ContentKey(c Cell) string {
	cfg := config.Default().WithMechanism(c.Mech).WithSB(c.SB).WithCores(c.Bench.Threads)
	return r.contentKey(c.Bench, cfg)
}

// CacheStats is a point-in-time snapshot of the runner's cell
// accounting: cells simulated for real (every one of which was a cache
// miss when a cache is attached), cells served from the disk cache, and
// entries that existed but failed to decode or validate.
type CacheStats struct {
	CellsRun     int64 `json:"cells_run"`
	CellsCached  int64 `json:"cells_cached"`
	CacheCorrupt int64 `json:"cache_corrupt"`
}

// CacheStats returns the runner's current cell accounting. Safe for
// concurrent use; tusd scrapes it for /metrics.
func (r *Runner) CacheStats() CacheStats {
	return CacheStats{
		CellsRun:     r.cellsRun.Load(),
		CellsCached:  r.cellsFromC.Load(),
		CacheCorrupt: r.cacheCorrupt.Load(),
	}
}

// cacheEntry is the serialized form of a Result. Stats are stored as
// parallel name/value slices in counter-creation order so the rebuilt
// Set formats identically to a live one.
type cacheEntry struct {
	Version    string           `json:"version"`
	Bench      string           `json:"bench"`
	Mech       string           `json:"mech"`
	SB         int              `json:"sb"`
	Cores      int              `json:"cores"`
	Cycles     uint64           `json:"cycles"`
	EDP        float64          `json:"edp"`
	Energy     energy.Breakdown `json:"energy"`
	StatPrefix string           `json:"stat_prefix"`
	StatNames  []string         `json:"stat_names"`
	StatValues []uint64         `json:"stat_values"`
	// Histograms, like counters, are stored in creation order so the
	// rebuilt Set formats identically to a live one.
	HistNames []string             `json:"hist_names,omitempty"`
	HistSnaps []stats.HistSnapshot `json:"hist_snaps,omitempty"`
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// CacheStatus is the outcome of a cache probe. Corruption still
// degrades to a fresh simulation (a corrupt entry behaves like a miss),
// but the runner counts it and warns: a silently rotting cache
// directory should be visible in BENCH_harness.json, not invisible.
type CacheStatus int

const (
	// CacheMiss: no entry exists for the key.
	CacheMiss CacheStatus = iota
	// CacheHit: a valid entry was loaded.
	CacheHit
	// CacheCorrupt: an entry exists but is torn, garbage, or fails
	// identity/shape validation; it will be resimulated and rewritten.
	CacheCorrupt
)

// Get loads the cell stored under key, verifying it matches the
// requested (bench, mech, sb) identity. A missing file is CacheMiss;
// an unreadable, undecodable, or identity-mismatched entry is
// CacheCorrupt. Both serve as a miss to the caller.
func (c *DiskCache) Get(key string, b workload.Benchmark, m config.Mechanism, sbSize int) (Result, CacheStatus) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return Result{}, CacheMiss
		}
		return Result{}, CacheCorrupt
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return Result{}, CacheCorrupt
	}
	if e.Version != Version || e.Bench != b.Name || e.Mech != m.String() ||
		e.SB != sbSize || len(e.StatNames) != len(e.StatValues) ||
		len(e.HistNames) != len(e.HistSnaps) || e.Cycles == 0 {
		return Result{}, CacheCorrupt
	}
	st := stats.NewSet(e.StatPrefix)
	for i, name := range e.StatNames {
		st.Counter(name).Add(e.StatValues[i])
	}
	for i, name := range e.HistNames {
		st.MergeHistSnapshot(name, e.HistSnaps[i])
	}
	return Result{
		Bench:  e.Bench,
		Mech:   m,
		SB:     e.SB,
		Cores:  e.Cores,
		Cycles: e.Cycles,
		Stats:  st,
		Energy: e.Energy,
		EDP:    e.EDP,
	}, CacheHit
}

// Put stores res under key. Writes go through a temp file + rename so
// concurrent harness processes never observe a torn entry.
func (c *DiskCache) Put(key string, res Result) {
	names := res.Stats.Names()
	vals := make([]uint64, len(names))
	for i, n := range names {
		vals[i] = res.Stats.Get(n)
	}
	hnames := res.Stats.HistNames()
	hsnaps := make([]stats.HistSnapshot, len(hnames))
	byName := res.Stats.HistSnapshots()
	for i, n := range hnames {
		hsnaps[i] = byName[n]
	}
	e := cacheEntry{
		Version:    Version,
		Bench:      res.Bench,
		Mech:       res.Mech.String(),
		SB:         res.SB,
		Cores:      res.Cores,
		Cycles:     res.Cycles,
		EDP:        res.EDP,
		Energy:     res.Energy,
		StatPrefix: res.Stats.Prefix(),
		StatNames:  names,
		StatValues: vals,
		HistNames:  hnames,
		HistSnaps:  hsnaps,
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.Dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
