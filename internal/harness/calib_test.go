package harness

import (
	"fmt"
	"os"
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// TestCalibration prints the full single-threaded speedup/stall table
// (the working view used while calibrating the workload proxies):
//
//	CALIB=1 go test ./internal/harness -run TestCalibration -v
//
// It is skipped unless CALIB=1 to keep the default test run fast.
func TestCalibration(t *testing.T) {
	if os.Getenv("CALIB") == "" {
		t.Skip("set CALIB=1 to run the calibration table")
	}
	r := NewRunner()
	r.Ops = 150000
	fmt.Printf("%-14s %6s", "bench", "stall")
	for _, m := range config.Mechanisms {
		fmt.Printf(" %8s", m)
	}
	fmt.Println()
	for _, b := range workload.SingleThreaded() {
		base, err := r.Run(b, config.Baseline, 114)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%-14s %5.1f%%", b.Name, base.SBStallPct())
		for _, m := range config.Mechanisms {
			res, err := r.Run(b, m, 114)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf(" %+7.1f%%", 100*(Speedup(res, base)-1))
		}
		fmt.Println()
	}
}
