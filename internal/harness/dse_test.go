package harness

import (
	"strings"
	"testing"
)

func TestDSEStructure(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 4000
	points, err := DSE(r, "502.gcc2")
	if err != nil {
		t.Fatal(err)
	}
	// 4 WOQ + 3 WCB + 4 group + 2 ablations.
	if len(points) != 13 {
		t.Fatalf("points = %d, want 13", len(points))
	}
	labels := map[string]bool{}
	for _, p := range points {
		if p.Cycles == 0 {
			t.Fatalf("%s: zero cycles", p.Label)
		}
		labels[p.Label] = true
	}
	for _, want := range []string{"WOQ=64", "WCBs=2", "maxGroup=16", "no-coalescing", "no-prefetch-at-commit"} {
		if !labels[want] {
			t.Fatalf("missing DSE point %q", want)
		}
	}
	var sb strings.Builder
	PrintDSE(&sb, points)
	if !strings.Contains(sb.String(), "WOQ=128") {
		t.Fatal("PrintDSE output incomplete")
	}
}

func TestDSEUnknownBenchmark(t *testing.T) {
	if _, err := DSE(NewQuickRunner(), "no-such-bench"); err == nil {
		t.Fatal("DSE accepted an unknown benchmark")
	}
}
