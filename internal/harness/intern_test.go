package harness

import (
	"sync"
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// TestInternedTraceConcurrentMechanisms runs two different mechanisms
// concurrently over the SAME interned trace. Under `go test -race`
// this pins the read-only contract: the CPU model must only ever read
// the shared op arrays through private stream cursors — any write to
// an interned trace is a data race here. It also pins generate-once:
// both cells share one generation.
func TestInternedTraceConcurrentMechanisms(t *testing.T) {
	b, ok := workload.ByName("502.gcc5")
	if !ok {
		t.Fatal("missing benchmark 502.gcc5")
	}
	r := NewQuickRunner()
	r.Workers = 2

	var wg sync.WaitGroup
	results := make([]Result, 2)
	errs := make([]error, 2)
	for i, m := range []config.Mechanism{config.TUS, config.SSB} {
		wg.Add(1)
		go func(i int, m config.Mechanism) {
			defer wg.Done()
			results[i], errs[i] = r.Run(b, m, 114)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if results[i].Cycles == 0 {
			t.Fatalf("cell %d: zero cycles", i)
		}
	}
	if results[0].Cycles == results[1].Cycles {
		t.Fatalf("TUS and SSB report identical cycles (%d); cells are not independent", results[0].Cycles)
	}
	if n := r.interned.generated.Load(); n != 1 {
		t.Fatalf("trace generated %d times for one (bench, seed, ops) key, want 1", n)
	}
}

// TestInternerSharesBacking pins the whole point of interning: two
// requests for the same key return the same backing arrays, and a
// different seed returns different ones.
func TestInternerSharesBacking(t *testing.T) {
	b, ok := workload.ByName("502.gcc5")
	if !ok {
		t.Fatal("missing benchmark 502.gcc5")
	}
	var in interner
	t1 := in.traces(b, 1, 500)
	t2 := in.traces(b, 1, 500)
	if len(t1) == 0 || len(t1[0]) == 0 {
		t.Fatal("empty trace")
	}
	if &t1[0][0] != &t2[0][0] {
		t.Fatal("same key returned distinct backing arrays; trace was regenerated")
	}
	t3 := in.traces(b, 2, 500)
	if &t1[0][0] == &t3[0][0] {
		t.Fatal("different seeds share a backing array")
	}
	if n := in.generated.Load(); n != 2 {
		t.Fatalf("generated %d traces for 2 distinct keys, want 2", n)
	}
}

// TestInternerHitZeroAlloc extends the zero-alloc pins to interned-
// trace cell setup: once a trace is interned, serving it to another
// cell allocates nothing beyond the per-cell stream cursors — and the
// raw hit path allocates nothing at all.
func TestInternerHitZeroAlloc(t *testing.T) {
	b, ok := workload.ByName("502.gcc5")
	if !ok {
		t.Fatal("missing benchmark 502.gcc5")
	}
	var in interner
	in.traces(b, 1, 500) // intern once
	if n := testing.AllocsPerRun(100, func() {
		in.traces(b, 1, 500)
	}); n != 0 {
		t.Fatalf("interned-trace hit allocates %v allocs/op, want 0", n)
	}
}
