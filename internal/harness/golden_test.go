package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tusim/internal/workload"
)

var update = flag.Bool("update", false, "regenerate golden figure snapshots in testdata/")

// goldenRunner pins the scale the snapshots were generated at. Changing
// it invalidates every golden file (regenerate with `go test
// ./internal/harness -run TestGoldenFigures -update`).
func goldenRunner() *Runner {
	r := NewQuickRunner()
	r.Ops = 2500
	r.ParallelOps = 300
	r.Workers = 4 // the snapshots must also pin the parallel path
	return r
}

// TestGoldenFigures locks the harness output byte-for-byte: any future
// refactor — parallelism, caching, mechanism tweaks — that perturbs a
// figure fails against these committed snapshots instead of silently
// drifting the paper's numbers. The six snapshots cover both SB
// operating points (114 and 32 entries), the scalability sweep, the
// stall breakdown, and both Parsec panel pairs.
func TestGoldenFigures(t *testing.T) {
	r := goldenRunner()
	cases := []struct {
		name  string
		build func() (any, error)
	}{
		{"fig8", func() (any, error) {
			rows, err := Fig8(r)
			if err != nil {
				return nil, err
			}
			out := make([]Fig8JSON, 0, len(rows))
			for _, row := range rows {
				out = append(out, Fig8JSON{Suite: row.Suite, SB: row.SB, Speedups: mechMap(row.Speedup)})
			}
			return out, nil
		}},
		{"fig9", func() (any, error) {
			rows, err := Fig9(r)
			if err != nil {
				return nil, err
			}
			out := make([]Fig9JSON, 0, len(rows))
			for _, row := range rows {
				out = append(out, Fig9JSON{Bench: row.Bench, Stalls: mechMap(row.Stalls)})
			}
			return out, nil
		}},
		{"fig12", func() (any, error) {
			p, err := Parsec(r, 114, 114)
			if err != nil {
				return nil, err
			}
			return &ParsecJSON{Speedup: edpJSON(p.Speedup), EDP: edpJSON(p.EDP)}, nil
		}},
		{"fig13", func() (any, error) {
			s, err := Speedups(r, 32, 32)
			if err != nil {
				return nil, err
			}
			return speedupsJSON(s), nil
		}},
		{"fig14", func() (any, error) {
			p, err := Parsec(r, 32, 32)
			if err != nil {
				return nil, err
			}
			return &ParsecJSON{Speedup: edpJSON(p.Speedup), EDP: edpJSON(p.EDP)}, nil
		}},
		{"fig15", func() (any, error) {
			s, err := EDP(r, workload.SBBound(), 32, 32)
			if err != nil {
				return nil, err
			}
			return edpJSON(s), nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			v, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s drifted from its golden snapshot.\nIf the change is intended, regenerate with:\n  go test ./internal/harness -run TestGoldenFigures -update\ngot %d bytes, want %d bytes", tc.name, len(got), len(want))
			}
		})
	}
}
