package harness

import (
	"fmt"
	"io"
	"sort"

	"tusim/internal/config"
	"tusim/internal/stats"
	"tusim/internal/workload"
)

// HistRow carries one cell's occupancy/latency histograms (merged over
// cores by StatsSum). Names is sorted so rows render and serialize
// deterministically regardless of which core registered a histogram
// first.
type HistRow struct {
	Bench string
	Mech  config.Mechanism
	SB    int
	Names []string
	Hists map[string]stats.HistSnapshot
}

// Histograms runs (or fetches) the ST SB-bound matrix at the given SB
// size and returns every cell's histograms: SB/WOQ/TSOB/MSHR occupancy,
// drain latency, and TUS unauthorized-residency distributions. The cell
// set matches Fig. 9's, so after a figure run everything is already
// memoized and this is free.
func Histograms(r *Runner, sb int) ([]HistRow, error) {
	benchs := workload.SBBound()
	if err := r.Prefetch(fullMatrix(benchs, sb, sb)); err != nil {
		return nil, err
	}
	var rows []HistRow
	for _, b := range benchs {
		for _, m := range config.Mechanisms {
			res, ok, err := r.runCell("histograms", b, m, sb)
			if err != nil {
				return nil, err
			}
			if !ok {
				// Histogram rows are independent per cell, so a
				// quarantined cell drops only its own row.
				continue
			}
			snaps := res.Stats.HistSnapshots()
			names := make([]string, 0, len(snaps))
			for n := range snaps {
				names = append(names, n)
			}
			sort.Strings(names)
			rows = append(rows, HistRow{Bench: b.Name, Mech: m, SB: sb, Names: names, Hists: snaps})
		}
	}
	return rows, nil
}

// PrintHistograms renders the histogram report as text.
func PrintHistograms(w io.Writer, rows []HistRow) {
	fmt.Fprintln(w, "Occupancy / latency histograms (cycles or entries; power-of-two buckets)")
	for _, row := range rows {
		fmt.Fprintf(w, "%s/%v/SB=%d\n", row.Bench, row.Mech, row.SB)
		for _, n := range row.Names {
			fmt.Fprintf(w, "  %-22s %s\n", n, row.Hists[n])
		}
	}
}

// HistJSON is the machine-readable form of one histogram: headline
// moments plus quantile upper bounds (full buckets stay in the disk
// cache; the report carries the summary).
type HistJSON struct {
	Bench string  `json:"bench"`
	Mech  string  `json:"mech"`
	SB    int     `json:"sb"`
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50_upper"`
	P90   uint64  `json:"p90_upper"`
	P99   uint64  `json:"p99_upper"`
}

func histsJSON(rows []HistRow) []HistJSON {
	var out []HistJSON
	for _, row := range rows {
		for _, n := range row.Names {
			s := row.Hists[n]
			out = append(out, HistJSON{
				Bench: row.Bench,
				Mech:  row.Mech.String(),
				SB:    row.SB,
				Name:  n,
				Count: s.Count,
				Mean:  stats.Ratio(s.Sum, s.Count),
				Max:   s.Max,
				P50:   s.Quantile(0.50),
				P90:   s.Quantile(0.90),
				P99:   s.Quantile(0.99),
			})
		}
	}
	return out
}
