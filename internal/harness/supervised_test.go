package harness

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"tusim/internal/config"
	"tusim/internal/faults"
	"tusim/internal/supervise"
	"tusim/internal/system"
	"tusim/internal/workload"
)

// transientCrash is a chaos-induced watchdog report: the one failure
// class NewSupervisor's policy classifies as retryable.
func transientCrash() error {
	return &system.CrashReport{
		Kind:      system.CrashWatchdog,
		FaultPlan: faults.Plan{Seed: 7, NackPct: 10},
	}
}

// TestSupervisedTransientRetriesThenMatches: a cell that fails once with
// a chaos watchdog trip retries with backoff, succeeds, and produces a
// result identical to an unsupervised run.
func TestSupervisedTransientRetriesThenMatches(t *testing.T) {
	b, _ := workload.ByName("503.bw2")

	plain := NewQuickRunner()
	plain.Ops = 2000
	want, err := plain.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatal(err)
	}

	r := NewQuickRunner()
	r.Ops = 2000
	r.Supervisor = NewSupervisor(0)
	var tripped atomic.Bool
	r.testHookSim = func(key string) error {
		if tripped.CompareAndSwap(false, true) {
			return transientCrash()
		}
		return nil
	}
	got, err := r.Run(b, config.TUS, 114)
	if err != nil {
		t.Fatalf("supervised run failed after transient trip: %v", err)
	}
	if n := r.Supervisor.Retries(); n != 1 {
		t.Fatalf("retries = %d, want 1", n)
	}
	if got.Cycles != want.Cycles || got.EDP != want.EDP {
		t.Fatalf("retried result differs: got cycles=%d edp=%v, want cycles=%d edp=%v",
			got.Cycles, got.EDP, want.Cycles, want.EDP)
	}
	if !reflect.DeepEqual(got.Stats.Snapshot(), want.Stats.Snapshot()) {
		t.Fatal("retried stats differ from unsupervised run")
	}
	if len(r.Supervisor.QuarantinedCells()) != 0 {
		t.Fatal("a recovered transient must not quarantine")
	}
}

// TestSupervisedDeterministicQuarantinesImmediately: a reproducible
// failure gets no retry — one attempt, straight to quarantine — and a
// second Run returns the cached quarantine without re-running.
func TestSupervisedDeterministicQuarantinesImmediately(t *testing.T) {
	b, _ := workload.ByName("503.bw2")
	r := NewQuickRunner()
	r.Ops = 2000
	r.Supervisor = NewSupervisor(0)
	var attempts atomic.Int64
	r.testHookSim = func(key string) error {
		attempts.Add(1)
		return errors.New("deterministic boom")
	}
	_, err := r.Run(b, config.TUS, 114)
	var q *supervise.Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("want *supervise.Quarantined, got %v", err)
	}
	if !strings.Contains(q.Reason, "deterministic") {
		t.Fatalf("reason %q not tagged deterministic", q.Reason)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("deterministic failure ran %d attempts, want 1 (no retry)", n)
	}
	if r.Supervisor.Retries() != 0 {
		t.Fatal("deterministic failure must not consume the retry budget")
	}
	// Singleflight memoizes the error for this key within the runner, so
	// exercise the supervisor's quarantine check directly.
	err2 := r.Supervisor.Do("503.bw2/TUS/114", "st", func() error {
		t.Fatal("quarantined cell must not re-run")
		return nil
	})
	if !errors.As(err2, &q) {
		t.Fatalf("second attempt: want quarantine, got %v", err2)
	}
}

// TestSupervisedPanicQuarantines: a panicking cell converts to a
// CrashPanic report, classifies deterministic, and quarantines.
func TestSupervisedPanicQuarantines(t *testing.T) {
	b, _ := workload.ByName("503.bw2")
	r := NewQuickRunner()
	r.Ops = 2000
	r.Supervisor = NewSupervisor(0)
	r.testHookSim = func(key string) error {
		panic("kaboom: slice index out of range")
	}
	_, err := r.Run(b, config.TUS, 114)
	var q *supervise.Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("want quarantine, got %v", err)
	}
	var cr *system.CrashReport
	if !errors.As(err, &cr) {
		t.Fatalf("panic did not convert to a CrashReport: %v", err)
	}
	if cr.Kind != system.CrashPanic {
		t.Fatalf("kind = %q, want %q", cr.Kind, system.CrashPanic)
	}
	if !strings.Contains(cr.Message, "kaboom") {
		t.Fatalf("report lost the panic payload: %q", cr.Message)
	}
	if cr.Stack == "" {
		t.Fatal("report lost the stack")
	}
	if !cr.Deterministic() {
		t.Fatal("panics must classify deterministic")
	}
}

// TestSupervisedFigureDegrades: poisoning one Fig. 9 cell drops that
// benchmark's row, records the skip in the degraded section, and leaves
// every other row intact — the figure is an explicit partial result,
// not a failure.
func TestSupervisedFigureDegrades(t *testing.T) {
	r := NewQuickRunner()
	r.Ops = 2000
	r.ParallelOps = 500
	r.Workers = 4
	r.Supervisor = NewSupervisor(0)
	const poison = "505.mcf/TUS/114"
	r.testHookSim = func(key string) error {
		if key == poison {
			return errors.New("poisoned cell")
		}
		return nil
	}
	rows, err := Fig9(r)
	if err != nil {
		t.Fatalf("degraded figure must still build: %v", err)
	}
	want := len(workload.SBBound()) - 1
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d (one benchmark dropped)", len(rows), want)
	}
	for _, row := range rows {
		if row.Bench == "505.mcf" {
			t.Fatal("poisoned benchmark must not appear in the figure")
		}
	}
	deg := r.DegradedCells()
	if len(deg) == 0 {
		t.Fatal("degraded section empty; skip was silent")
	}
	found := false
	for _, d := range deg {
		if d.Cell == poison && d.Figure == "fig9" {
			found = true
			if d.Reason == "" {
				t.Fatal("degraded entry has no reason")
			}
		}
	}
	if !found {
		t.Fatalf("degraded section %+v does not name %s under fig9", deg, poison)
	}
}
