package harness

import (
	"encoding/json"
	"io"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// JSONReport is the machine-readable form of the full evaluation,
// written by `tusbench -json`.
type JSONReport struct {
	// Scale records the trace lengths the numbers were produced at.
	Scale struct {
		Ops         int   `json:"ops"`
		ParallelOps int   `json:"parallel_ops"`
		Seed        int64 `json:"seed"`
	} `json:"scale"`
	Fig8  []Fig8JSON    `json:"fig8_scalability"`
	Fig9  []Fig9JSON    `json:"fig9_sb_stalls"`
	Fig10 *SpeedupsJSON `json:"fig10_speedups_114"`
	Fig11 *EDPJSON      `json:"fig11_edp_114"`
	Fig12 *ParsecJSON   `json:"fig12_parsec_114"`
	Fig13 *SpeedupsJSON `json:"fig13_speedups_32"`
	Fig14 *ParsecJSON   `json:"fig14_parsec_32"`
	Fig15 *EDPJSON      `json:"fig15_edp_32"`
	// Hists summarizes every occupancy/latency histogram of the ST
	// SB-bound matrix at 114 SB (the Fig. 9 cells, so no extra runs).
	Hists []HistJSON `json:"histograms"`
	// Degraded lists every quarantined cell the figure builders had to
	// skip; absent on a healthy run. A report with this section is an
	// explicit partial result, never a silent one.
	Degraded []DegradedCell `json:"degraded,omitempty"`
}

// Fig8JSON is one scalability row.
type Fig8JSON struct {
	Suite    string             `json:"suite"`
	SB       int                `json:"sb_entries"`
	Speedups map[string]float64 `json:"speedup_vs_base114"`
}

// Fig9JSON is one stall row.
type Fig9JSON struct {
	Bench  string             `json:"bench"`
	Stalls map[string]float64 `json:"sb_stall_pct"`
}

// SpeedupsJSON mirrors SpeedupStudy.
type SpeedupsJSON struct {
	BaselineSB int                  `json:"baseline_sb"`
	MechSB     int                  `json:"mech_sb"`
	SCurves    map[string][]float64 `json:"s_curves"`
	Breakdown  []Fig9JSON           `json:"sb_bound_breakdown"` // values are speedups
	Geomean    map[string]float64   `json:"geomean"`
}

// EDPJSON mirrors EDPStudy.
type EDPJSON struct {
	BaselineSB int                `json:"baseline_sb"`
	MechSB     int                `json:"mech_sb"`
	Rows       []Fig9JSON         `json:"rows"` // values are normalized EDP
	Geomean    map[string]float64 `json:"geomean"`
}

// ParsecJSON mirrors ParsecStudy.
type ParsecJSON struct {
	Speedup *EDPJSON `json:"speedup"`
	EDP     *EDPJSON `json:"edp"`
}

func mechMap(m map[config.Mechanism]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k.String()] = v
	}
	return out
}

func speedupsJSON(s *SpeedupStudy) *SpeedupsJSON {
	out := &SpeedupsJSON{
		BaselineSB: s.BaselineSB,
		MechSB:     s.MechSB,
		SCurves:    map[string][]float64{},
		Geomean:    mechMap(s.Geomean),
	}
	for m, curve := range s.SCurves {
		out.SCurves[m.String()] = curve
	}
	for _, row := range s.Breakdown {
		out.Breakdown = append(out.Breakdown, Fig9JSON{Bench: row.Bench, Stalls: mechMap(row.Speedups)})
	}
	return out
}

func edpJSON(s *EDPStudy) *EDPJSON {
	out := &EDPJSON{BaselineSB: s.BaselineSB, MechSB: s.MechSB, Geomean: mechMap(s.Geomean)}
	for _, row := range s.Rows {
		out.Rows = append(out.Rows, Fig9JSON{Bench: row.Bench, Stalls: mechMap(row.EDP)})
	}
	return out
}

// BuildJSON runs the full evaluation and assembles the report. A
// non-nil rec records per-figure wall-clock for BENCH_harness.json.
func BuildJSON(r *Runner, rec *BenchRecorder) (*JSONReport, error) {
	timed := func(name string, f func() error) error {
		if rec != nil {
			return rec.Time(name, f)
		}
		return f()
	}
	var rep JSONReport
	rep.Scale.Ops = r.Ops
	rep.Scale.ParallelOps = r.ParallelOps
	rep.Scale.Seed = r.Seed

	if err := timed("fig8", func() error {
		rows8, err := Fig8(r)
		if err != nil {
			return err
		}
		for _, row := range rows8 {
			rep.Fig8 = append(rep.Fig8, Fig8JSON{Suite: row.Suite, SB: row.SB, Speedups: mechMap(row.Speedup)})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig9", func() error {
		rows9, err := Fig9(r)
		if err != nil {
			return err
		}
		for _, row := range rows9 {
			rep.Fig9 = append(rep.Fig9, Fig9JSON{Bench: row.Bench, Stalls: mechMap(row.Stalls)})
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig10", func() error {
		s10, err := Speedups(r, 114, 114)
		if err != nil {
			return err
		}
		rep.Fig10 = speedupsJSON(s10)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig11", func() error {
		e11, err := EDP(r, workload.SBBound(), 114, 114)
		if err != nil {
			return err
		}
		rep.Fig11 = edpJSON(e11)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig12", func() error {
		p12, err := Parsec(r, 114, 114)
		if err != nil {
			return err
		}
		rep.Fig12 = &ParsecJSON{Speedup: edpJSON(p12.Speedup), EDP: edpJSON(p12.EDP)}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig13", func() error {
		s13, err := Speedups(r, 32, 32)
		if err != nil {
			return err
		}
		rep.Fig13 = speedupsJSON(s13)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig14", func() error {
		p14, err := Parsec(r, 32, 32)
		if err != nil {
			return err
		}
		rep.Fig14 = &ParsecJSON{Speedup: edpJSON(p14.Speedup), EDP: edpJSON(p14.EDP)}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("fig15", func() error {
		e15, err := EDP(r, workload.SBBound(), 32, 32)
		if err != nil {
			return err
		}
		rep.Fig15 = edpJSON(e15)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := timed("histograms", func() error {
		rows, err := Histograms(r, 114)
		if err != nil {
			return err
		}
		rep.Hists = histsJSON(rows)
		return nil
	}); err != nil {
		return nil, err
	}
	rep.Degraded = r.DegradedCells()
	return &rep, nil
}

// WriteJSON runs the full evaluation and writes it as indented JSON.
func WriteJSON(w io.Writer, r *Runner) error {
	rep, err := BuildJSON(r, nil)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
