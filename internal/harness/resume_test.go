package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"syscall"
	"testing"
	"time"

	"tusim/internal/supervise"
)

// The kill-and-resume test re-executes this test binary as a child
// (TestResumeChild), SIGKILLs it mid-figure, then resumes the run
// in-process from the journal + disk cache and asserts the resumed
// figure output is byte-identical to an uninterrupted run.

const (
	resumeOps   = 20_000
	resumePOps  = 500
	resumeRunID = "killtest"
)

// fig9Bytes renders the Fig. 9 report as canonical JSON bytes — the
// byte-identity oracle for the resume test.
func fig9Bytes(r *Runner) ([]byte, error) {
	rows, err := Fig9(r)
	if err != nil {
		return nil, err
	}
	var out []Fig9JSON
	for _, row := range rows {
		out = append(out, Fig9JSON{Bench: row.Bench, Stalls: mechMap(row.Stalls)})
	}
	return json.MarshalIndent(out, "", "  ")
}

// resumeRunner builds the runner both halves of the test share: same
// scale and seed, supervised, cached under dir/cache.
func resumeRunner(t *testing.T, dir string, workers int) *Runner {
	t.Helper()
	cache, err := NewDiskCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewQuickRunner()
	r.Ops = resumeOps
	r.ParallelOps = resumePOps
	r.Workers = workers
	r.Cache = cache
	r.Supervisor = NewSupervisor(0)
	return r
}

// TestResumeChild is the helper half of TestKillAndResumeByteIdentical:
// it only runs for real when re-executed with TUS_RESUME_DIR set, and
// is the process the parent SIGKILLs mid-run.
func TestResumeChild(t *testing.T) {
	dir := os.Getenv("TUS_RESUME_DIR")
	if dir == "" {
		t.Skip("helper process for TestKillAndResumeByteIdentical")
	}
	workers, _ := strconv.Atoi(os.Getenv("TUS_RESUME_WORKERS"))
	r := resumeRunner(t, dir, workers)
	j, err := supervise.Create(filepath.Join(dir, "journal"), resumeRunID, map[string]int{"ops": resumeOps})
	if err != nil {
		t.Fatal(err)
	}
	r.Supervisor.SetJournal(j)
	if _, err := fig9Bytes(r); err != nil {
		t.Fatal(err)
	}
	j.Finish()
	j.Close()
}

// TestKillAndResumeByteIdentical: SIGKILL a journaled figure run at a
// random point mid-matrix, resume it from the journal + cache, and
// require the resumed figure bytes to equal an uninterrupted run's — at
// both -j 1 and -j 4.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("needs SIGKILL")
	}
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("j%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			jdir := filepath.Join(dir, "journal")

			cmd := exec.Command(os.Args[0], "-test.run", "TestResumeChild")
			cmd.Env = append(os.Environ(),
				"TUS_RESUME_DIR="+dir,
				fmt.Sprintf("TUS_RESUME_WORKERS=%d", workers))
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}

			// Poll the journal until the run is mid-flight, then kill it.
			// SIGKILL gives the child no chance to flush or tidy: whatever
			// the journal and cache hold at that instant is the crash
			// state the resume must recover from.
			const killAfter = 8
			deadline := time.Now().Add(120 * time.Second)
			for {
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatal("child never reached the kill threshold")
				}
				st, err := supervise.Load(jdir, resumeRunID)
				if err == nil && (len(st.Done) >= killAfter || st.Finished) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			cmd.Process.Signal(syscall.SIGKILL)
			cmd.Wait()

			st, err := supervise.Load(jdir, resumeRunID)
			if err != nil {
				t.Fatal(err)
			}
			if st.Finished {
				t.Skip("child finished before SIGKILL landed; nothing to resume")
			}
			done := len(st.Done)
			if done == 0 {
				t.Fatal("journal recorded no completed cells before the kill")
			}

			// Resume in-process: preload the quarantine list, reopen the
			// journal for appending, rebuild the same figure.
			res := resumeRunner(t, dir, workers)
			for k, reason := range st.Quarantined {
				res.Supervisor.Quarantine(k, reason)
			}
			j, err := supervise.OpenAppend(jdir, resumeRunID, st.NextSeq)
			if err != nil {
				t.Fatal(err)
			}
			res.Supervisor.SetJournal(j)
			got, err := fig9Bytes(res)
			if err != nil {
				t.Fatal(err)
			}
			j.Finish()
			j.Close()

			// Every journaled-done cell must have been served from the
			// disk cache, not resimulated.
			if int(res.cellsFromC.Load()) < done {
				t.Fatalf("resume loaded %d cells from cache, want >= %d (the journaled done set)",
					res.cellsFromC.Load(), done)
			}

			// Byte-identity against an uninterrupted run in a fresh dir.
			base := resumeRunner(t, filepath.Join(dir, "fresh"), workers)
			want, err := fig9Bytes(base)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed figure differs from uninterrupted run\nresumed:\n%s\nfresh:\n%s", got, want)
			}

			// The resumed journal must now record clean completion.
			st2, err := supervise.Load(jdir, resumeRunID)
			if err != nil {
				t.Fatal(err)
			}
			if !st2.Finished {
				t.Fatal("resumed run did not journal run_finish")
			}
		})
	}
}
