package config

import "testing"

// TestTableI asserts the defaults match the paper's Table I exactly.
func TestTableI(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"FetchWidth", c.FetchWidth, 8},
		{"DecodeWidth", c.DecodeWidth, 6},
		{"RenameWidth", c.RenameWidth, 6},
		{"DispatchWidth", c.DispatchWidth, 12},
		{"IssueWidth", c.IssueWidth, 12},
		{"CommitWidth", c.CommitWidth, 8},
		{"ROBEntries", c.ROBEntries, 512},
		{"LQEntries", c.LQEntries, 192},
		{"SBEntries", c.SBEntries, 114},
		{"L1D size", c.L1D.SizeBytes, 48 << 10},
		{"L1D ways", c.L1D.Ways, 12},
		{"L1D MSHRs", c.L1D.MSHRs, 64},
		{"L2 size", c.L2.SizeBytes, 1 << 20},
		{"L2 ways", c.L2.Ways, 16},
		{"L3 size", c.L3.SizeBytes, 64 << 20},
		{"L3 ways", c.L3.Ways, 16},
		{"WOQEntries", c.WOQEntries, 64},
		{"WCBCount", c.WCBCount, 2},
		{"MaxAtomicGroup", c.MaxAtomicGroup, 16},
		{"LexBits", c.LexBits, 16},
		{"TSOBEntries", c.TSOBEntries, 1024},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	lats := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"IntAddLat", c.IntAddLat, 1},
		{"IntMulLat", c.IntMulLat, 4},
		{"IntDivLat", c.IntDivLat, 12},
		{"FPAddLat", c.FPAddLat, 5},
		{"FPMulLat", c.FPMulLat, 5},
		{"FPDivLat", c.FPDivLat, 12},
		{"L1D latency", c.L1D.Latency, 5},
		{"L2 latency", c.L2.Latency, 16},
		{"L3 latency", c.L3.Latency, 34},
		{"DRAM latency", c.DRAMLatency, 160},
	}
	for _, ck := range lats {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestCacheSets(t *testing.T) {
	c := Default()
	if got := c.L1D.Sets(); got != 64 {
		t.Errorf("L1D sets = %d, want 64 (48KB/12way/64B)", got)
	}
	if got := c.L2.Sets(); got != 1024 {
		t.Errorf("L2 sets = %d, want 1024", got)
	}
	if got := c.L3.Sets(); got != 65536 {
		t.Errorf("L3 sets = %d, want 65536", got)
	}
}

// TestForwardLatency asserts the Fog-derived SB-size-dependent
// store-to-load forwarding latencies (5 @ 114, 4 @ 64, 3 below).
func TestForwardLatency(t *testing.T) {
	cases := []struct {
		sb   int
		want uint64
	}{{114, 5}, {128, 5}, {64, 4}, {100, 4}, {32, 3}, {16, 3}, {63, 3}}
	for _, cs := range cases {
		if got := Default().WithSB(cs.sb).ForwardLatency(); got != cs.want {
			t.Errorf("ForwardLatency(SB=%d) = %d, want %d", cs.sb, got, cs.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.SBEntries = 1
	b.L1D.Ways = 2
	if a.SBEntries != 114 || a.L1D.Ways != 12 {
		t.Fatal("Clone shares state with original")
	}
}

func TestWithHelpers(t *testing.T) {
	c := Default().WithSB(32).WithMechanism(TUS).WithCores(16)
	if c.SBEntries != 32 || c.Mechanism != TUS || c.Cores != 16 {
		t.Fatalf("With helpers broken: %+v", c)
	}
	if Default().SBEntries != 114 {
		t.Fatal("With helpers mutated a fresh default")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []*Config{
		func() *Config { c := Default(); c.Cores = 0; return c }(),
		func() *Config { c := Default(); c.SBEntries = 0; return c }(),
		func() *Config { c := Default(); c.L1D.Ways = 7; return c }(),
		func() *Config { c := Default().WithMechanism(TUS); c.WOQEntries = 0; return c }(),
		func() *Config { c := Default().WithMechanism(CSB); c.WCBCount = 0; return c }(),
		func() *Config { c := Default().WithMechanism(SSB); c.TSOBEntries = 0; return c }(),
		func() *Config { c := Default(); c.ROBEntries = 4; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
}

func TestMechanismString(t *testing.T) {
	want := map[Mechanism]string{Baseline: "base", TUS: "TUS", SSB: "SSB", CSB: "CSB", SPB: "SPB"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if len(Mechanisms) != 5 {
		t.Fatalf("Mechanisms has %d entries, want 5", len(Mechanisms))
	}
}
