// Package config holds every simulation parameter. Defaults reproduce
// Table I of the paper; experiments override individual fields.
package config

import (
	"fmt"
	"strings"
	"time"
)

// Mechanism selects the store-handling policy under evaluation.
type Mechanism int

const (
	// Baseline drains committed stores in order and blocks on misses;
	// it issues a write-permission prefetch when a store commits.
	Baseline Mechanism = iota
	// TUS is the paper's contribution: temporarily unauthorized stores
	// with WCB coalescing and a write ordering queue.
	TUS
	// SSB is the idealized Scalable Store Buffer (1K-entry TSOB,
	// store-wait-free, per-store L2 write-through).
	SSB
	// CSB is the Coalescing Store Buffer (WCB coalescing, but write
	// permission is required before writing to L1D).
	CSB
	// SPB is Store Prefetch Burst (baseline + 4KB page write-permission
	// prefetch on store-burst detection).
	SPB
)

// String returns the mechanism's paper name.
func (m Mechanism) String() string {
	switch m {
	case Baseline:
		return "base"
	case TUS:
		return "TUS"
	case SSB:
		return "SSB"
	case CSB:
		return "CSB"
	case SPB:
		return "SPB"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// Mechanisms lists every policy in the order the paper plots them.
var Mechanisms = []Mechanism{Baseline, SSB, CSB, SPB, TUS}

// ParseMechanism maps a (case-insensitive) mechanism name back to its
// value; the CLI tools and crash-repro bundles use it.
func ParseMechanism(name string) (Mechanism, error) {
	switch strings.ToLower(name) {
	case "base", "baseline":
		return Baseline, nil
	case "tus":
		return TUS, nil
	case "ssb":
		return SSB, nil
	case "csb":
		return CSB, nil
	case "spb":
		return SPB, nil
	}
	return Baseline, fmt.Errorf("config: unknown mechanism %q", name)
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	// Latency is the load-to-use (L1) or round-trip (L2/L3) latency in
	// cycles, as in Table I.
	Latency uint64
	MSHRs   int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Config is the full machine description (Table I) plus mechanism knobs.
type Config struct {
	Cores int

	// Front end / back end widths (instructions per cycle).
	FetchWidth    int
	DecodeWidth   int
	RenameWidth   int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	ROBEntries int
	LQEntries  int
	SBEntries  int

	// Functional units: 1 Int ALU + 3 Int/FP/SIMD ALUs.
	SimpleALUs  int
	ComplexALUs int

	// Instruction latencies (Fog tables, Table I).
	IntAddLat, IntMulLat, IntDivLat uint64
	FPAddLat, FPMulLat, FPDivLat    uint64

	L1D, L2, L3 CacheConfig
	DRAMLatency uint64
	// DRAMMaxInFlight bounds concurrent DRAM accesses (simple bandwidth
	// model; not in Table I but required for burst behaviour).
	DRAMMaxInFlight int
	// NetLatency is the one-way core<->directory message latency used
	// for invalidations and data forwards in the 16-core runs.
	NetLatency uint64

	// StreamPrefetcher enables the L1D stride prefetcher (baseline has it).
	StreamPrefetcher bool
	// StreamPrefetchDegree is how many lines ahead the stream prefetcher runs.
	StreamPrefetchDegree int
	// PrefetchAtCommit requests write permission when a store commits
	// (Sec. V: +15% over default gem5; all configs in the paper have it).
	PrefetchAtCommit bool

	Mechanism Mechanism

	// TUS / CSB parameters (Sec. IV and DSE in Sec. VI).
	WOQEntries int
	WCBCount   int
	// MaxAtomicGroup caps the number of cache lines per atomic group
	// (DSE chose 16).
	MaxAtomicGroup int
	// LexBits is the number of low line-address bits defining the
	// global lexicographical order (paper: 16, matching directory index).
	LexBits int
	// TUSCoalesce can be disabled for the ablation study.
	TUSCoalesce bool

	// SSB parameters.
	TSOBEntries int

	// SPB parameters.
	SPBBurstThreshold int
	SPBPageBytes      int

	// MaxCycles aborts runaway simulations.
	MaxCycles uint64

	// WatchdogWindow is how many cycles the machine may go without a
	// single committed micro-op before the deadlock/livelock watchdog
	// trips (system.Run then returns a CrashReport). Zero selects
	// DefaultWatchdogWindow.
	WatchdogWindow uint64

	// CellTimeout is the wall-clock deadline the harness supervisor
	// applies to one experiment cell before calibration has produced a
	// per-class estimate (once cells complete, deadlines derive from
	// observed runtimes instead). Purely a harness-robustness knob: it
	// cannot change any simulation result, so the result cache excludes
	// it from cell identity. Zero selects DefaultCellTimeout.
	CellTimeout time.Duration

	// RefContainers runs this machine's per-line state (private cache
	// lines, MSHRs, writeback buffer, directory entries) on the
	// reference container implementations (built-in maps, always-fresh
	// allocation) instead of the open-addressed/pooled fast path. Any
	// observable difference between the two modes is a bug; the
	// differential state-identity rig runs one system in each mode and
	// compares state at every drain point.
	RefContainers bool

	// RefScheduler runs this machine's event queue on the reference
	// binary-heap engine instead of the hierarchical time wheel. Both
	// engines pop in exactly (cycle, insertion-seq) order, so any
	// observable difference is a bug; the scheduler differential rig
	// runs one system on each engine and compares state at every drain
	// point (and `make ref-identity` replays the whole suite on the
	// reference engine via the tus_ref build tag).
	RefScheduler bool
}

// DefaultWatchdogWindow is the no-commit-progress bound used when
// Config.WatchdogWindow is zero.
const DefaultWatchdogWindow = 2_000_000

// DefaultCellTimeout is the uncalibrated per-cell supervision deadline
// used when Config.CellTimeout is zero. Generous on purpose: a full-
// scale single cell is minutes at worst, and false deadline trips cost
// a pointless retry.
const DefaultCellTimeout = 10 * time.Minute

// Default returns the Table I configuration with a 114-entry SB and the
// baseline mechanism on a single core.
func Default() *Config {
	return &Config{
		Cores: 1,

		FetchWidth:    8,
		DecodeWidth:   6,
		RenameWidth:   6,
		DispatchWidth: 12,
		IssueWidth:    12,
		CommitWidth:   8,

		ROBEntries: 512,
		LQEntries:  192,
		SBEntries:  114,

		SimpleALUs:  1,
		ComplexALUs: 3,

		IntAddLat: 1, IntMulLat: 4, IntDivLat: 12,
		FPAddLat: 5, FPMulLat: 5, FPDivLat: 12,

		L1D: CacheConfig{SizeBytes: 48 << 10, Ways: 12, LineBytes: 64, Latency: 5, MSHRs: 64},
		L2:  CacheConfig{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, Latency: 16, MSHRs: 64},
		L3:  CacheConfig{SizeBytes: 64 << 20, Ways: 16, LineBytes: 64, Latency: 34, MSHRs: 64},

		DRAMLatency:     160,
		DRAMMaxInFlight: 32,
		NetLatency:      20,

		StreamPrefetcher:     true,
		StreamPrefetchDegree: 4,
		PrefetchAtCommit:     true,

		Mechanism: Baseline,

		WOQEntries:     64,
		WCBCount:       2,
		MaxAtomicGroup: 16,
		LexBits:        16,
		TUSCoalesce:    true,

		TSOBEntries: 1024,

		SPBBurstThreshold: 6,
		SPBPageBytes:      4 << 10,

		MaxCycles:      1 << 34,
		WatchdogWindow: DefaultWatchdogWindow,
		CellTimeout:    DefaultCellTimeout,
	}
}

// Clone returns a deep copy (Config contains no reference types).
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}

// WithSB returns a copy with the given SB size.
func (c *Config) WithSB(entries int) *Config {
	cp := c.Clone()
	cp.SBEntries = entries
	return cp
}

// WithMechanism returns a copy using the given store mechanism.
func (c *Config) WithMechanism(m Mechanism) *Config {
	cp := c.Clone()
	cp.Mechanism = m
	return cp
}

// WithCores returns a copy with the given core count. Memory channels
// scale with socket size: the DRAM concurrency bound grows by half the
// single-core value per additional core (a 16-core part has several
// memory channels, not one).
func (c *Config) WithCores(n int) *Config {
	cp := c.Clone()
	cp.Cores = n
	if n > 1 {
		cp.DRAMMaxInFlight = c.DRAMMaxInFlight * n
	}
	return cp
}

// ForwardLatency is the SB store-to-load forwarding latency, which
// shrinks with SB size (Sec. V, per Fog: 5 cycles for 114 entries, 4
// for 64, 3 below).
func (c *Config) ForwardLatency() uint64 {
	switch {
	case c.SBEntries >= 114:
		return 5
	case c.SBEntries >= 64:
		return 4
	default:
		return 3
	}
}

// Validate reports configuration errors that would make the machine
// unbuildable.
func (c *Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("config: Cores = %d, need >= 1", c.Cores)
	}
	if c.CellTimeout < 0 {
		return fmt.Errorf("config: CellTimeout = %v, need >= 0", c.CellTimeout)
	}
	if c.SBEntries < 1 {
		return fmt.Errorf("config: SBEntries = %d, need >= 1", c.SBEntries)
	}
	if c.ROBEntries < c.CommitWidth {
		return fmt.Errorf("config: ROB (%d) smaller than commit width (%d)", c.ROBEntries, c.CommitWidth)
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if cc.c.LineBytes == 0 || cc.c.Ways == 0 || cc.c.SizeBytes%(cc.c.LineBytes*cc.c.Ways) != 0 {
			return fmt.Errorf("config: %s geometry %d/%dw/%dB does not divide into sets", cc.name, cc.c.SizeBytes, cc.c.Ways, cc.c.LineBytes)
		}
	}
	if c.Mechanism == TUS || c.Mechanism == CSB {
		if c.WCBCount < 1 {
			return fmt.Errorf("config: %v needs WCBCount >= 1, got %d", c.Mechanism, c.WCBCount)
		}
		if c.MaxAtomicGroup < 1 {
			// Sec. III-B also caps group lines *per L1D set* at the
			// associativity; that is enforced at runtime since it
			// depends on which sets the group maps to.
			return fmt.Errorf("config: MaxAtomicGroup must be >= 1")
		}
	}
	if c.Mechanism == TUS && c.WOQEntries < 1 {
		return fmt.Errorf("config: TUS needs WOQEntries >= 1")
	}
	if c.Mechanism == SSB && c.TSOBEntries < 1 {
		return fmt.Errorf("config: SSB needs TSOBEntries >= 1")
	}
	return nil
}
