package audit

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
	"tusim/internal/system"
	"tusim/internal/workload"
)

// TestAuditorCleanOnHealthyRuns: the auditor must report nothing on
// fault-free runs of every mechanism — its checks are designed to have
// no false positives, including on transient mid-transaction states.
func TestAuditorCleanOnHealthyRuns(t *testing.T) {
	b, _ := workload.ByName("canneal")
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m).WithCores(4)
			traces := b.Generate(11, 2000)[:4]
			streams := make([]isa.Stream, 4)
			for i := range streams {
				streams[i] = isa.NewSliceStream(traces[i])
			}
			sys, err := system.New(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			// Audit every cycle: maximum exposure to transient states.
			Install(sys, 1)
			if err := sys.Run(); err != nil {
				t.Fatalf("[%v] auditor flagged a healthy run: %v", m, err)
			}
		})
	}
}

// TestAuditorCleanUnderContention: heavy same-line contention under TUS
// exercises the WOQ, lex-order, and relinquish checks on live state.
func TestAuditorCleanUnderContention(t *testing.T) {
	const cores = 4
	cfg := config.Default().WithMechanism(config.TUS).WithCores(cores)
	streams := make([]isa.Stream, cores)
	for c := 0; c < cores; c++ {
		var ops []isa.MicroOp
		for i := 0; i < 1200; i++ {
			shared := uint64(1)<<33 + uint64(i%4)*64
			if i%3 == 0 {
				ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: shared, Size: 8})
			} else {
				ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: shared + uint64(c)*8, Size: 8})
			}
		}
		streams[c] = isa.NewSliceStream(ops)
	}
	sys, err := system.New(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	Install(sys, 2)
	if err := sys.Run(); err != nil {
		t.Fatalf("auditor flagged contended TUS run: %v", err)
	}
}
