// Package audit implements the periodic invariant auditor: it walks the
// whole machine's coherence and TUS state between events and reports
// the first inconsistency as a structured ProtocolError. The walk order
// is fully deterministic (cores in index order, lines in address
// order), so a given seed always reports the same first violation.
//
// Every check is written to have no false positives: states that are
// legally inconsistent mid-transaction (directory busy bit held, a
// writeback or miss in flight) are skipped rather than guessed at.
// Under chaos fault injection the perturbations are all legal, so any
// report from this package is a real protocol bug.
package audit

import (
	"fmt"

	"tusim/internal/faults"
	"tusim/internal/memsys"
	"tusim/internal/system"
	"tusim/internal/tus"
)

// Auditor checks global state invariants. It implements system.Auditor.
type Auditor struct {
	sys *system.System

	// MaxMissAge bounds how long one MSHR may stay allocated; beyond it
	// the miss is presumed lost (a request/response was dropped).
	MaxMissAge uint64
	// MaxWOQAge bounds how long a WOQ entry may wait for publication.
	MaxWOQAge uint64
}

// Default age bounds: far beyond any legal latency (DRAM is ~160
// cycles; retries and lex gating add contention, not unbounded delay)
// but well inside the watchdog window, so the auditor names the stuck
// structure before the watchdog gives a generic "no progress".
const (
	DefaultMaxMissAge = 1_000_000
	DefaultMaxWOQAge  = 1_000_000
)

// New builds an auditor over a machine.
func New(s *system.System) *Auditor {
	return &Auditor{sys: s, MaxMissAge: DefaultMaxMissAge, MaxWOQAge: DefaultMaxWOQAge}
}

// Audit implements system.Auditor: it returns the first violation
// found, or nil when the machine is consistent.
func (a *Auditor) Audit(cycle uint64) *faults.ProtocolError {
	if pe := a.checkOwnership(); pe != nil {
		return pe
	}
	if pe := a.checkLineBits(); pe != nil {
		return pe
	}
	if pe := a.checkWOQ(cycle); pe != nil {
		return pe
	}
	if pe := a.checkAges(cycle); pe != nil {
		return pe
	}
	return a.checkLexAcyclic()
}

// settled reports whether a line's coherence state is stable enough to
// judge: no directory transaction, writeback, or miss in flight on it.
func (a *Auditor) settled(core int, line uint64) bool {
	if busy, _ := a.sys.Dir.BusyInfo(line); busy {
		return false
	}
	p := a.sys.Privs[core]
	return !p.WBPending(line) && !p.MSHRPending(line)
}

// checkOwnership verifies the single-writer property and the
// directory/private owner agreement: a line held E/M by a settled
// private hierarchy must be owned by exactly that core in the
// directory, and no two hierarchies may hold E/M at once.
func (a *Auditor) checkOwnership() *faults.ProtocolError {
	holders := map[uint64]int{}
	var pe *faults.ProtocolError
	for core := range a.sys.Privs {
		core := core
		a.sys.Privs[core].AuditLines(func(pl *memsys.PLine) {
			if pe != nil {
				return
			}
			if pl.State != memsys.StateE && pl.State != memsys.StateM {
				return
			}
			if prev, dup := holders[pl.Line]; dup {
				pe = faults.Violationf("audit", core, pl.Line, "single-writer",
					"cores %d and %d both hold %v; %s", prev, core, pl.State, a.dumpLine(pl.Line))
				return
			}
			holders[pl.Line] = core
			if !a.settled(core, pl.Line) {
				return
			}
			owner, _, _, ok := a.sys.Dir.EntryInfo(pl.Line)
			if !ok || owner != core {
				pe = faults.Violationf("audit", core, pl.Line, "dir-owner-agreement",
					"private holds %v but directory owner is %d; %s", pl.State, owner, a.dumpLine(pl.Line))
			}
		})
		if pe != nil {
			return pe
		}
	}
	return nil
}

// checkLineBits verifies per-line TUS bit consistency and residency:
// not-visible lines are pinned in L1, ready implies not-visible with
// write permission, and owned lines hold their data somewhere.
func (a *Auditor) checkLineBits() *faults.ProtocolError {
	var pe *faults.ProtocolError
	for core := range a.sys.Privs {
		core := core
		a.sys.Privs[core].AuditLines(func(pl *memsys.PLine) {
			switch {
			case pe != nil:
			case pl.NotVisible && !pl.InL1:
				pe = faults.Violationf("audit", core, pl.Line, "notvisible-in-l1",
					"not-visible line is not L1 resident; %s", a.dumpLine(pl.Line))
			case pl.Ready && !pl.NotVisible:
				pe = faults.Violationf("audit", core, pl.Line, "ready-implies-notvisible",
					"ready bit set on a visible line; %s", a.dumpLine(pl.Line))
			case pl.Ready && pl.State != memsys.StateE && pl.State != memsys.StateM:
				pe = faults.Violationf("audit", core, pl.Line, "ready-implies-perm",
					"ready bit set without write permission (state %v); %s", pl.State, a.dumpLine(pl.Line))
			case (pl.State == memsys.StateE || pl.State == memsys.StateM) && !pl.InL1 && !pl.InL2:
				pe = faults.Violationf("audit", core, pl.Line, "owned-line-resident",
					"line held %v resides in neither L1 nor L2; %s", pl.State, a.dumpLine(pl.Line))
			}
		})
		if pe != nil {
			return pe
		}
	}
	return nil
}

// checkWOQ verifies WOQ <-> L1 agreement on every TUS core: each WOQ
// entry's line must be a not-visible L1 resident whose ready bit
// matches, and every not-visible line must be WOQ-tracked.
func (a *Auditor) checkWOQ(cycle uint64) *faults.ProtocolError {
	for core, m := range a.sys.Mechs {
		t, ok := m.(*tus.TUS)
		if !ok {
			continue
		}
		priv := a.sys.Privs[core]
		tracked := map[uint64]bool{}
		for _, e := range t.AuditWOQ() {
			tracked[e.Line] = true
			pl := priv.Lookup(e.Line)
			if pl == nil || !pl.NotVisible {
				return faults.Violationf("audit", core, e.Line, "woq-l1-agreement",
					"WOQ entry (group %d, ready=%v) has no not-visible L1 backing; %s",
					e.Group, e.Ready, a.dumpLine(e.Line))
			}
			if pl.Ready != e.Ready {
				return faults.Violationf("audit", core, e.Line, "woq-ready-agreement",
					"WOQ ready=%v but line ready=%v; %s", e.Ready, pl.Ready, a.dumpLine(e.Line))
			}
		}
		var pe *faults.ProtocolError
		priv.AuditLines(func(pl *memsys.PLine) {
			if pe == nil && pl.NotVisible && !tracked[pl.Line] {
				pe = faults.Violationf("audit", core, pl.Line, "woq-tracks-notvisible",
					"not-visible line is not WOQ-tracked; %s", a.dumpLine(pl.Line))
			}
		})
		if pe != nil {
			return pe
		}
	}
	return nil
}

// checkAges bounds how long misses and WOQ entries may remain pending.
func (a *Auditor) checkAges(cycle uint64) *faults.ProtocolError {
	var pe *faults.ProtocolError
	for core := range a.sys.Privs {
		core := core
		a.sys.Privs[core].AuditMSHRs(func(line, born uint64, wantM, prefetch bool) {
			if pe == nil && cycle-born > a.MaxMissAge {
				pe = faults.Violationf("audit", core, line, "mshr-age-bound",
					"miss (wantM=%v prefetch=%v) outstanding for %d cycles (born %d)",
					wantM, prefetch, cycle-born, born)
			}
		})
		if pe != nil {
			return pe
		}
	}
	for core, m := range a.sys.Mechs {
		t, ok := m.(*tus.TUS)
		if !ok {
			continue
		}
		for _, e := range t.AuditWOQ() {
			if cycle-e.Born > a.MaxWOQAge {
				return faults.Violationf("audit", core, e.Line, "woq-age-bound",
					"WOQ entry (group %d perm=%v ready=%v gated=%v) pending for %d cycles",
					e.Group, e.HasPerm, e.Ready, e.Gated, cycle-e.Born)
			}
		}
	}
	return nil
}

// checkLexAcyclic detects deadlock cycles in the lex-order wait-for
// graph. Each TUS core waits (at most) on the lex-least missing-
// permission line of its WOQ-head atomic group; an edge points to the
// core currently holding that line with write permission, but only
// when that holder would *delay* a probe under the Sec. III-C rule
// (if it would relinquish, progress follows the next retry and there
// is no wait). Around any cycle of delay-edges the lex keys must be
// non-decreasing, hence all equal — and a tie cycle never resolves, so
// every cycle this finds is a genuine protocol deadlock, never a
// transient.
func (a *Auditor) checkLexAcyclic() *faults.ProtocolError {
	n := len(a.sys.Mechs)
	waitLine := make([]uint64, n) // line core i waits on
	next := make([]int, n)        // functional graph; -1 = no edge
	woqs := make([][]tus.WOQInfo, n)
	for i, m := range a.sys.Mechs {
		next[i] = -1
		if t, ok := m.(*tus.TUS); ok {
			woqs[i] = t.AuditWOQ()
		}
	}
	for i, woq := range woqs {
		if len(woq) == 0 {
			continue
		}
		head := woq[0].Group
		best := -1
		for j, e := range woq {
			if e.Group != head {
				break
			}
			if !e.HasPerm && (best < 0 || e.Lex < woq[best].Lex) {
				best = j
			}
		}
		if best < 0 {
			continue // head group fully authorized: publishing, not waiting
		}
		want := woq[best]
		for h := range a.sys.Privs {
			if h == i {
				continue
			}
			pl := a.sys.Privs[h].Lookup(want.Line)
			if pl == nil || !pl.NotVisible ||
				(pl.State != memsys.StateE && pl.State != memsys.StateM) {
				continue
			}
			if a.wouldDelay(woqs[h], want.Line, want.Lex) {
				waitLine[i] = want.Line
				next[i] = h
			}
			break // at most one holder (single-writer)
		}
	}
	// Cycle detection by pointer chasing in the functional graph.
	for start := 0; start < n; start++ {
		slow, steps := start, 0
		for next[slow] >= 0 && steps <= n {
			slow = next[slow]
			steps++
			if slow == start {
				chain := fmt.Sprintf("core %d", start)
				for c := next[start]; ; c = next[c] {
					chain += fmt.Sprintf(" -[line %#x]-> core %d", waitLine[c], c)
					if c == start {
						break
					}
				}
				return faults.Violationf("audit", start, waitLine[start], "lex-acyclic",
					"lex-order wait-for cycle: %s", chain)
			}
		}
	}
	return nil
}

// wouldDelay replays the holder's HandleProbe lex decision from its
// audited WOQ: delay iff no missing-permission entry with a strictly
// smaller lex key precedes (or shares) the probed line's atomic group.
func (a *Auditor) wouldDelay(woq []tus.WOQInfo, line, probeLex uint64) bool {
	group, found := 0, false
	for _, e := range woq {
		if e.Line == line {
			group, found = e.Group, true
		}
	}
	if !found {
		// The holder's WOQ no longer tracks the line (it is between
		// publication steps); a probe would be delayed conservatively,
		// but it is about to become visible — no lasting wait.
		return false
	}
	end := -1
	for j, e := range woq {
		if e.Group == group {
			end = j
		}
	}
	for j, e := range woq {
		if j > end {
			break
		}
		if !e.HasPerm && e.Lex < probeLex {
			return false
		}
	}
	return true
}

// dumpLine renders every party's view of one line (private copies and
// the directory entry) for violation reports.
func (a *Auditor) dumpLine(line uint64) string {
	s := fmt.Sprintf("line %#x:", line)
	for core, p := range a.sys.Privs {
		pl := p.Lookup(line)
		if pl == nil {
			continue
		}
		s += fmt.Sprintf(" core%d{%v l1=%v l2=%v nv=%v rdy=%v umask=%#x wb=%v mshr=%v}",
			core, pl.State, pl.InL1, pl.InL2, pl.NotVisible, pl.Ready, uint64(pl.UMask),
			p.WBPending(line), p.MSHRPending(line))
	}
	owner, sharers, busy, ok := a.sys.Dir.EntryInfo(line)
	if ok {
		s += fmt.Sprintf(" dir{owner=%d sharers=%#x busy=%v}", owner, sharers, busy)
	} else {
		s += " dir{untracked}"
	}
	return s
}

// Install attaches a new auditor to the machine with the given cadence
// (0 selects every 64 cycles) and returns it.
func Install(s *system.System, every uint64) *Auditor {
	if every == 0 {
		every = 64
	}
	a := New(s)
	s.SetAuditor(a, every)
	return a
}

var _ system.Auditor = (*Auditor)(nil)
