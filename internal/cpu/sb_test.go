package cpu

import (
	"testing"
	"testing/quick"
)

func execStore(sb *StoreBuffer, seq, addr uint64, size uint8, data [8]byte) *SBEntry {
	e := sb.Push(seq, addr, size)
	e.Data = data
	sb.MarkExecuted(e)
	return e
}

func TestSBPushPop(t *testing.T) {
	sb := NewStoreBuffer(3)
	if !sb.Empty() || sb.Full() || sb.Cap() != 3 {
		t.Fatal("fresh SB state wrong")
	}
	sb.Push(1, 0x100, 8)
	sb.Push(2, 0x200, 8)
	sb.Push(3, 0x300, 8)
	if !sb.Full() || sb.Len() != 3 {
		t.Fatal("SB should be full")
	}
	if sb.Head().Seq != 1 {
		t.Fatalf("head seq = %d", sb.Head().Seq)
	}
	sb.Pop()
	if sb.Head().Seq != 2 || sb.Len() != 2 {
		t.Fatal("pop did not advance head")
	}
	// Ring wrap.
	sb.Push(4, 0x400, 8)
	sb.Pop()
	sb.Pop()
	if sb.Head().Seq != 4 {
		t.Fatalf("head after wrap = %d", sb.Head().Seq)
	}
}

func TestSBOverflowCounted(t *testing.T) {
	sb := NewStoreBuffer(1)
	if sb.Push(1, 0, 8) == nil {
		t.Fatal("push into empty SB failed")
	}
	if e := sb.Push(2, 64, 8); e != nil {
		t.Fatalf("push into full SB returned %v, want nil", e)
	}
	if sb.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", sb.Overflows)
	}
	// The buffer itself is untouched by the rejected push.
	if sb.Len() != 1 || sb.Head().Seq != 1 {
		t.Fatal("rejected push corrupted the SB")
	}
}

func TestSBForwardHit(t *testing.T) {
	sb := NewStoreBuffer(8)
	execStore(sb, 1, 0x100, 8, [8]byte{1, 2, 3, 4, 5, 6, 7, 8})
	res, data := sb.Search(5, 0x104, 4)
	if res != FwdHit {
		t.Fatalf("res = %v", res)
	}
	if data[0] != 5 || data[3] != 8 {
		t.Fatalf("forwarded data = %v", data)
	}
}

func TestSBForwardYoungestWins(t *testing.T) {
	sb := NewStoreBuffer(8)
	execStore(sb, 1, 0x100, 8, [8]byte{1, 1, 1, 1, 1, 1, 1, 1})
	execStore(sb, 2, 0x100, 8, [8]byte{2, 2, 2, 2, 2, 2, 2, 2})
	res, data := sb.Search(9, 0x100, 8)
	if res != FwdHit || data[0] != 2 {
		t.Fatalf("res=%v data=%v; youngest store must forward", res, data)
	}
}

func TestSBForwardOnlyOlderStores(t *testing.T) {
	sb := NewStoreBuffer(8)
	execStore(sb, 10, 0x100, 8, [8]byte{9})
	res, _ := sb.Search(5, 0x100, 8)
	if res != FwdMiss {
		t.Fatalf("res = %v; a load must not see younger stores", res)
	}
}

func TestSBPartialOverlapConflicts(t *testing.T) {
	sb := NewStoreBuffer(8)
	execStore(sb, 1, 0x100, 4, [8]byte{1, 2, 3, 4})
	res, _ := sb.Search(5, 0x102, 4) // bytes 2-5; store covers 0-3
	if res != FwdConflict {
		t.Fatalf("res = %v, want conflict on partial overlap", res)
	}
}

func TestSBUnexecutedStoreBlocks(t *testing.T) {
	sb := NewStoreBuffer(8)
	sb.Push(1, 0x900, 8) // address "unknown"
	res, _ := sb.Search(5, 0x100, 8)
	if res != FwdConflict {
		t.Fatalf("res = %v; unknown older store address must block", res)
	}
	if !sb.OldestUnexecutedBefore(5) {
		t.Fatal("OldestUnexecutedBefore wrong")
	}
}

func TestSBMinUnexecTracking(t *testing.T) {
	sb := NewStoreBuffer(8)
	a := sb.Push(1, 0x100, 8)
	b := sb.Push(2, 0x200, 8)
	c := sb.Push(3, 0x300, 8)
	sb.MarkExecuted(b) // out of order
	if res, _ := sb.Search(9, 0x400, 8); res != FwdConflict {
		t.Fatal("oldest store still unexecuted")
	}
	sb.MarkExecuted(a)
	if res, _ := sb.Search(9, 0x400, 8); res != FwdConflict {
		t.Fatal("store 3 still unexecuted")
	}
	sb.MarkExecuted(c)
	if res, _ := sb.Search(9, 0x400, 8); res != FwdMiss {
		t.Fatal("all executed; disjoint load must miss")
	}
}

func TestSBLookaheadLines(t *testing.T) {
	sb := NewStoreBuffer(8)
	mk := func(seq, addr uint64, committed bool) {
		e := execStore(sb, seq, addr, 8, [8]byte{})
		e.Committed = committed
	}
	mk(1, 0x100, true)
	mk(2, 0x108, true) // same line
	mk(3, 0x200, true)
	mk(4, 0x300, false) // uncommitted ends the scan
	mk(5, 0x400, true)
	var lines []uint64
	sb.LookaheadLines(8, func(l uint64) { lines = append(lines, l) })
	if len(lines) != 2 || lines[0] != 0x100 || lines[1] != 0x200 {
		t.Fatalf("lookahead lines = %#v", lines)
	}
	lines = nil
	sb.LookaheadLines(1, func(l uint64) { lines = append(lines, l) })
	if len(lines) != 1 {
		t.Fatalf("k bound ignored: %v", lines)
	}
}

// Property: Search never returns FwdHit with data differing from the
// youngest covering executed store.
func TestSBSearchProperty(t *testing.T) {
	f := func(offsets []uint8, loadOff uint8) bool {
		sb := NewStoreBuffer(16)
		type st struct {
			addr uint64
			data byte
		}
		var stores []st
		for i, o := range offsets {
			if i >= 14 {
				break
			}
			addr := uint64(0x1000) + uint64(o%56)
			v := byte(i + 1)
			execStore(sb, uint64(i+1), addr, 8, [8]byte{v, v, v, v, v, v, v, v})
			stores = append(stores, st{addr, v})
		}
		res, data := sb.Search(100, 0x1000+uint64(loadOff%56), 1)
		if res != FwdHit {
			return true // miss/conflict: nothing to verify
		}
		// Find the youngest store covering the byte.
		la := uint64(0x1000) + uint64(loadOff%56)
		for i := len(stores) - 1; i >= 0; i-- {
			if la >= stores[i].addr && la < stores[i].addr+8 {
				return data[0] == stores[i].data
			}
		}
		return false // hit without a covering store
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
