package cpu

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/isa"
	"tusim/internal/memsys"
	"tusim/internal/stats"
)

// coreRig is a single core wired to a 1-core memory system with a
// trivial drain mechanism (baseline-like, inlined to avoid an import
// cycle with internal/mech).
type coreRig struct {
	q    *event.Queue
	core *Core
	st   *stats.Set
	mem  *memsys.Memory
}

// testDrain is a minimal in-order store drain.
type testDrain struct {
	core *Core
	priv *memsys.Private
}

func (d *testDrain) Name() string { return "test" }
func (d *testDrain) Tick() {
	e := d.core.SB.Head()
	if e == nil || !e.Committed {
		return
	}
	line := e.Line()
	if d.priv.Writable(line) {
		if d.priv.StoreVisible(e.Addr, e.Data[:e.Size]) {
			d.core.SB.Pop()
			return
		}
	}
	d.priv.RequestWritable(line, false, true, nil)
}
func (d *testDrain) Forward(addr uint64, size uint8) (ForwardResult, [8]byte) {
	return FwdMiss, [8]byte{}
}
func (d *testDrain) Drained() bool   { return true }
func (d *testDrain) FlushDone() bool { return true }

func newCoreRig(t *testing.T, ops []isa.MicroOp, mut func(*config.Config)) *coreRig {
	t.Helper()
	cfg := config.Default()
	cfg.StreamPrefetcher = false
	if mut != nil {
		mut(cfg)
	}
	q := event.NewQueue()
	mem := memsys.NewMemory()
	st := stats.NewSet("t")
	dram := memsys.NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := memsys.NewDirectory(cfg, q, mem, dram, st)
	priv := memsys.NewPrivate(0, cfg, q, dir, st)
	dir.Attach([]*memsys.Private{priv})
	core := NewCore(0, cfg, q, priv, isa.NewSliceStream(ops), st)
	core.SetMechanism(&testDrain{core: core, priv: priv})
	return &coreRig{q: q, core: core, st: st, mem: mem}
}

func (r *coreRig) run(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if r.core.Done() {
			return
		}
		r.q.Advance()
		r.core.Tick()
	}
	t.Fatalf("core did not finish in %d cycles (committed %d)", maxCycles, r.st.Get("committed_ops"))
}

func TestCoreRunsALUTrace(t *testing.T) {
	var ops []isa.MicroOp
	for i := 0; i < 100; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.IntAdd, Dep1: 1})
	}
	ops[0].Dep1 = 0
	r := newCoreRig(t, ops, nil)
	r.run(t, 10_000)
	if got := r.st.Get("committed_ops"); got != 100 {
		t.Fatalf("committed %d", got)
	}
	// A serial dependency chain of 1-cycle adds runs at IPC ~1.
	cycles := r.st.Get("cycles")
	if cycles < 100 || cycles > 200 {
		t.Fatalf("serial add chain took %d cycles, want ~100-200", cycles)
	}
}

func TestCoreILP(t *testing.T) {
	// Independent adds are bound by front-end width (6/cycle) and ALUs
	// (4/cycle) -> roughly ops/4 cycles.
	var ops []isa.MicroOp
	for i := 0; i < 400; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.IntAdd})
	}
	r := newCoreRig(t, ops, nil)
	r.run(t, 10_000)
	cycles := r.st.Get("cycles")
	if cycles > 400/2 {
		t.Fatalf("independent adds took %d cycles; ALU parallelism broken", cycles)
	}
}

func TestDivLatencyRespected(t *testing.T) {
	// Chain of 10 dependent divisions: >= 10*12 cycles.
	var ops []isa.MicroOp
	for i := 0; i < 10; i++ {
		d := uint16(1)
		if i == 0 {
			d = 0
		}
		ops = append(ops, isa.MicroOp{Kind: isa.IntDiv, Dep1: d})
	}
	r := newCoreRig(t, ops, nil)
	r.run(t, 10_000)
	if cycles := r.st.Get("cycles"); cycles < 120 {
		t.Fatalf("10 chained divs took %d cycles, want >= 120", cycles)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	ops := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x1000, Size: 8},
		{Kind: isa.Load, Addr: 0x1000, Size: 8},
	}
	r := newCoreRig(t, ops, nil)
	var loaded [8]byte
	r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { loaded = v }
	r.run(t, 100_000)
	want := StoreValue(0, 0)
	if loaded != want {
		t.Fatalf("forwarded %v, want %v", loaded, want)
	}
	if r.st.Get("sb_forward_hits") != 1 {
		t.Fatalf("sb_forward_hits = %d, want 1", r.st.Get("sb_forward_hits"))
	}
}

func TestLoadFromMemory(t *testing.T) {
	var seed memsys.LineData
	seed[0] = 0xAB
	ops := []isa.MicroOp{{Kind: isa.Load, Addr: 0x2000, Size: 1}}
	r := newCoreRig(t, ops, nil)
	r.mem.WriteLine(0x2000, &seed)
	var loaded [8]byte
	r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { loaded = v }
	r.run(t, 100_000)
	if loaded[0] != 0xAB {
		t.Fatalf("loaded %#x, want 0xAB", loaded[0])
	}
}

func TestSBStallAttribution(t *testing.T) {
	// A tiny SB and a long run of stores to cold lines must produce
	// SB-full dispatch stalls.
	var ops []isa.MicroOp
	for i := 0; i < 400; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: uint64(i) * 64, Size: 8})
	}
	r := newCoreRig(t, ops, func(c *config.Config) { c.SBEntries = 4; c.PrefetchAtCommit = false })
	r.run(t, 1_000_000)
	if r.st.Get("stall_sb") == 0 {
		t.Fatal("no SB stalls with a 4-entry SB and 400 cold stores")
	}
	if r.st.Get("stall_rob") > r.st.Get("stall_sb") {
		t.Fatal("stalls attributed to ROB instead of SB")
	}
}

func TestROBStallAttribution(t *testing.T) {
	// A long dependent load chain fills the ROB, not the SB.
	var ops []isa.MicroOp
	for i := 0; i < 600; i++ {
		d := uint16(1)
		if i == 0 {
			d = 0
		}
		ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: uint64(i) * 4096, Size: 8, Dep1: d})
	}
	r := newCoreRig(t, ops, func(c *config.Config) { c.ROBEntries = 32; c.LQEntries = 64 })
	r.run(t, 5_000_000)
	if r.st.Get("stall_rob") == 0 {
		t.Fatal("no ROB stalls with a 32-entry ROB and serial miss chain")
	}
}

func TestFenceOrdersStores(t *testing.T) {
	ops := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x1000, Size: 8},
		{Kind: isa.Fence},
		{Kind: isa.Store, Addr: 0x2000, Size: 8},
		{Kind: isa.IntAdd},
	}
	r := newCoreRig(t, ops, nil)
	var order []uint64
	r.core.Priv().OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		order = append(order, line)
	}
	r.run(t, 1_000_000)
	if len(order) != 2 || order[0] != 0x1000 || order[1] != 0x2000 {
		t.Fatalf("visibility order = %#v", order)
	}
	if r.st.Get("fence_stall_cycles") == 0 {
		t.Fatal("fence should have stalled commit while the SB drained")
	}
}

func TestFenceBlocksYoungerLoads(t *testing.T) {
	// A load after a fence must not bind before the fence commits.
	ops := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x3000, Size: 8}, // slow (cold miss)
		{Kind: isa.Fence},
		{Kind: isa.Load, Addr: 0x4000, Size: 8},
	}
	r := newCoreRig(t, ops, nil)
	var loadBound uint64
	r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { loadBound = r.q.Now() }
	var storeVisible uint64
	r.core.Priv().OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		if line == 0x3000 {
			storeVisible = r.q.Now()
		}
	}
	r.run(t, 1_000_000)
	if loadBound <= storeVisible {
		t.Fatalf("load bound at %d before/at fence-ordered store visibility %d", loadBound, storeVisible)
	}
}

func TestCommitWidthBound(t *testing.T) {
	// N independent 1-cycle ops cannot commit faster than CommitWidth.
	var ops []isa.MicroOp
	for i := 0; i < 800; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.Nop})
	}
	r := newCoreRig(t, ops, func(c *config.Config) { c.CommitWidth = 2 })
	r.run(t, 100_000)
	if cycles := r.st.Get("cycles"); cycles < 400 {
		t.Fatalf("800 ops committed in %d cycles with commit width 2", cycles)
	}
}

func TestStoreValueDeterministic(t *testing.T) {
	if StoreValue(1, 42) != StoreValue(1, 42) {
		t.Fatal("StoreValue not deterministic")
	}
	if StoreValue(1, 42) == StoreValue(2, 42) || StoreValue(1, 42) == StoreValue(1, 43) {
		t.Fatal("StoreValue collisions across core/seq")
	}
}
