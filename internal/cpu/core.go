package cpu

import (
	"encoding/binary"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/isa"
	"tusim/internal/memsys"
	"tusim/internal/stats"
	"tusim/internal/trace"
)

// DrainMechanism is the pluggable store-handling policy: it owns the
// path from the SB head into the memory system.
type DrainMechanism interface {
	// Name returns the paper name of the policy.
	Name() string
	// Tick runs once per cycle after commit; it may drain committed
	// stores from the SB (the core never pops the SB itself).
	Tick()
	// Forward searches mechanism-held store data (WCBs, TSOB, ...) for
	// a load that missed SB forwarding.
	Forward(addr uint64, size uint8) (ForwardResult, [8]byte)
	// Drained reports that no stores remain buffered in the mechanism.
	Drained() bool
	// FlushDone reports that every store the mechanism handled is
	// globally visible (fence/serializing semantics; for TUS this
	// additionally requires an empty WOQ).
	FlushDone() bool
}

type robEntry struct {
	seq      uint64
	op       isa.MicroOp
	valid    bool
	issued   bool
	done     bool
	replay   bool // bound load snooped by an invalidation; re-bind at commit
	depCount int
	waiters  []uint64 // seqs of dependents
	sbEntry  *SBEntry
}

// mobLoad is one memory-order-buffer record: a load that bound its
// value from the memory system (not store forwarding) and has not yet
// committed. Invalidation snoops check these to enforce TSO
// load->load ordering (see Core.snoopInvalidate).
type mobLoad struct {
	seq  uint64
	addr uint64
	size uint8
}

// LoadObserver receives every architecturally bound load value (the
// TSO checker subscribes).
type LoadObserver func(core int, seq, addr uint64, size uint8, value [8]byte)

// Core is one out-of-order hardware context.
type Core struct {
	ID   int
	cfg  *config.Config
	q    *event.Queue
	st   *stats.Set
	priv *memsys.Private
	mech DrainMechanism

	stream   isa.Stream
	nextOp   isa.MicroOp // lookahead slot, valid when haveNext
	haveNext bool
	seq      uint64 // next seq to dispatch
	eof      bool

	// rob is a power-of-two ring indexed by seq&robMask; robCap is the
	// architectural capacity (the ring may be larger so indexing is a
	// mask, not a division).
	rob      []robEntry
	robMask  uint64
	robCap   int
	robHead  uint64 // seq of oldest in-flight op
	robCount int

	SB      *StoreBuffer
	lqCount int

	// ready is a hand-rolled min-heap of issuable seqs (oldest first);
	// seqs are unique so the pop order is total.
	ready        []uint64
	blockedLoads []uint64 // loads waiting on conflicts/MSHRs/fences
	fences       []uint64 // seqs of in-flight fences
	mob          []mobLoad

	// execDoneFn/fwdDoneFn are the long-lived two-arg event callbacks
	// the issue path schedules through; binding them once keeps the
	// per-op execute/forward completions allocation-free.
	execDoneFn event.Func2
	fwdDoneFn  event.Func2

	// ReadVisible returns the current globally visible value of a byte
	// range (wired by system). It is consulted only to re-bind snooped
	// loads at commit, so it never affects timing.
	ReadVisible func(addr uint64, size uint8) [8]byte

	frontWidth int

	// OnStoreCommit observers (prefetch-at-commit, SPB).
	OnStoreCommit []func(addr uint64)
	// OnStoreData observes committed stores with their final data
	// (TSO checker).
	OnStoreData func(seq, addr uint64, size uint8, value [8]byte)
	// OnStoreExec observes stores at execute time, when their data
	// first becomes forwardable to loads (TSO checker).
	OnStoreExec func(seq, addr uint64, size uint8, value [8]byte)
	// OnLoadValue observes bound load values.
	OnLoadValue LoadObserver

	cCycles, cCommitted, cLoads, cStores     *stats.Counter
	cStallROB, cStallLQ, cStallSB, cSBSearch *stats.Counter
	cFwdHits, cFwdConflicts, cMechFwd        *stats.Counter
	cSBBlocked, cFenceStall, cSBOverflow     *stats.Counter

	hSBOcc, hDrainLat *stats.Histogram

	// tr is the lifecycle tracer; nil (the default) records nothing and
	// costs one branch per Emit.
	tr *trace.Tracer
}

// NewCore builds a core over a private cache hierarchy and a micro-op
// stream. The drain mechanism is attached separately (SetMechanism)
// because mechanisms need the core's SB at construction time.
func NewCore(id int, cfg *config.Config, q *event.Queue, priv *memsys.Private, stream isa.Stream, st *stats.Set) *Core {
	fw := cfg.FetchWidth
	for _, w := range []int{cfg.DecodeWidth, cfg.RenameWidth, cfg.DispatchWidth} {
		if w < fw {
			fw = w
		}
	}
	robSize := 1
	for robSize < cfg.ROBEntries {
		robSize <<= 1
	}
	c := &Core{
		ID:         id,
		cfg:        cfg,
		q:          q,
		st:         st,
		priv:       priv,
		stream:     stream,
		rob:        make([]robEntry, robSize),
		robMask:    uint64(robSize - 1),
		robCap:     cfg.ROBEntries,
		SB:         NewStoreBuffer(cfg.SBEntries),
		frontWidth: fw,
	}
	c.execDoneFn = c.execDone
	c.fwdDoneFn = c.fwdDone
	c.cCycles = st.Counter("cycles")
	c.cCommitted = st.Counter("committed_ops")
	c.cLoads = st.Counter("loads")
	c.cStores = st.Counter("stores")
	c.cStallROB = st.Counter("stall_rob")
	c.cStallLQ = st.Counter("stall_lq")
	c.cStallSB = st.Counter("stall_sb")
	c.cSBSearch = st.Counter("sb_searches")
	c.cFwdHits = st.Counter("sb_forward_hits")
	c.cFwdConflicts = st.Counter("sb_forward_conflicts")
	c.cMechFwd = st.Counter("mech_forward_hits")
	c.cSBBlocked = st.Counter("sb_head_blocked_cycles")
	c.cFenceStall = st.Counter("fence_stall_cycles")
	c.cSBOverflow = st.Counter("sb_overflows")
	c.hSBOcc = st.Histogram("sb_occupancy")
	c.hDrainLat = st.Histogram("sb_drain_latency")
	c.SB.OnPop = func(e *SBEntry) {
		now := c.q.Now()
		var lat uint64
		if now >= e.CommitCycle {
			lat = now - e.CommitCycle
		}
		c.hDrainLat.Observe(lat)
		c.tr.Emit(trace.SBDrain, int32(c.ID), now, e.Addr, e.Seq, lat)
	}
	if cfg.PrefetchAtCommit {
		// The commit-time RFO is a 100%-accurate demand hint, naturally
		// rate-limited by commit width, so it rides the demand path.
		// Under TUS it is only an allocation warm-up (the WOQ issues
		// the authoritative, lex-governed permission requests), so it
		// stays in the prefetch class there and never fights the
		// authorization unit. NACKs drop the request either way; the
		// drain path issues any demand request still needed.
		prefetchClass := cfg.Mechanism == config.TUS
		c.OnStoreCommit = append(c.OnStoreCommit, func(addr uint64) {
			priv.RequestWritable(addr&^63, prefetchClass, false, nil)
		})
	}
	priv.OnLineLost = c.snoopInvalidate
	priv.LoadReply = c.loadReply
	return c
}

// SetMechanism attaches the store drain policy.
func (c *Core) SetMechanism(m DrainMechanism) { c.mech = m }

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (c *Core) SetTracer(t *trace.Tracer) { c.tr = t }

// Priv exposes the private hierarchy (mechanisms and tests).
func (c *Core) Priv() *memsys.Private { return c.priv }

// Now exposes the simulation clock (mechanisms without their own queue
// handle use it to timestamp trace events).
func (c *Core) Now() uint64 { return c.q.Now() }

// StoreValue derives the deterministic 8-byte value a store writes;
// workloads and the TSO checker agree on this function.
func StoreValue(core int, seq uint64) [8]byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], seq*0x9E3779B97F4A7C15+uint64(core)*0xBF58476D1CE4E5B9+1)
	return v
}

func (c *Core) entry(seq uint64) *robEntry { return &c.rob[seq&c.robMask] }

// readyPush inserts seq into the ready min-heap.
func (c *Core) readyPush(seq uint64) {
	c.ready = append(c.ready, seq)
	i := len(c.ready) - 1
	for i > 0 {
		p := (i - 1) / 2
		if c.ready[p] <= c.ready[i] {
			break
		}
		c.ready[i], c.ready[p] = c.ready[p], c.ready[i]
		i = p
	}
}

// readyPop removes the minimum seq (callers peek c.ready[0] first).
func (c *Core) readyPop() {
	n := len(c.ready) - 1
	c.ready[0] = c.ready[n]
	c.ready = c.ready[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && c.ready[r] < c.ready[l] {
			m = r
		}
		if c.ready[i] <= c.ready[m] {
			break
		}
		c.ready[i], c.ready[m] = c.ready[m], c.ready[i]
		i = m
	}
}

// Done reports the core has fully retired its trace, drained its SB
// and mechanism, and has no in-flight memory operations.
func (c *Core) Done() bool {
	return c.eof && !c.haveNext && c.robCount == 0 && c.SB.Empty() &&
		(c.mech == nil || c.mech.Drained())
}

// Tick advances the core by one cycle: commit, issue, dispatch, drain.
func (c *Core) Tick() {
	c.cCycles.Inc()
	c.hSBOcc.Observe(uint64(c.SB.Len()))
	c.commit()
	c.issue()
	c.dispatch()
	if c.mech != nil {
		c.mech.Tick()
	}
}

// ---------- Commit ----------

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		e := c.entry(c.robHead)
		if !e.valid {
			// Invariant: the ROB ring always holds a valid entry at its
			// head while robCount > 0 (dispatch/commit keep them in step).
			panic(faults.Violationf("cpu", c.ID, 0, "rob-head-valid",
				"ROB head seq=%d invalid with robCount=%d", c.robHead, c.robCount))
		}
		if e.op.Kind == isa.Fence {
			// Serializing: wait until every OLDER store has drained and
			// the mechanism has made it visible (Sec. III-A). Younger
			// stores may already sit in the SB behind the fence.
			if h := c.SB.Head(); h != nil && h.Seq < e.seq {
				c.cFenceStall.Inc()
				return
			}
			if c.mech != nil && !c.mech.FlushDone() {
				c.cFenceStall.Inc()
				return
			}
			e.done = true
		}
		if !e.done {
			return
		}
		switch e.op.Kind {
		case isa.Store:
			e.sbEntry.Committed = true
			e.sbEntry.CommitCycle = c.q.Now()
			c.tr.Emit(trace.SBCommit, int32(c.ID), c.q.Now(), e.op.Addr, e.seq, 0)
			if c.OnStoreData != nil {
				c.OnStoreData(e.seq, e.op.Addr, e.op.Size, e.sbEntry.Data)
			}
			for _, f := range c.OnStoreCommit {
				f(e.op.Addr)
			}
		case isa.Load:
			c.lqCount--
			c.retireLoad(e)
		case isa.Fence:
			c.popFence(e.seq)
		}
		c.notifyWaiters(e) // in case anything waited on a fence
		e.valid = false
		c.robHead++
		c.robCount--
		c.cCommitted.Inc()
	}
}

func (c *Core) popFence(seq uint64) {
	for i, f := range c.fences {
		if f == seq {
			c.fences = append(c.fences[:i], c.fences[i+1:]...)
			return
		}
	}
}

// blockedByFence reports whether a memory op at seq must wait for an
// older in-flight fence.
func (c *Core) blockedByFence(seq uint64) bool {
	for _, f := range c.fences {
		if f < seq {
			return true
		}
	}
	return false
}

// ---------- Issue / execute ----------

func (c *Core) issue() {
	issued := 0
	simpleALU := c.cfg.SimpleALUs
	complexALU := c.cfg.ComplexALUs

	// Retry blocked loads first (oldest first), then fresh ready ops.
	if len(c.blockedLoads) > 0 {
		still := c.blockedLoads[:0]
		for _, seq := range c.blockedLoads {
			if issued >= c.cfg.IssueWidth {
				still = append(still, seq)
				continue
			}
			e := c.entry(seq)
			if !e.valid || e.seq != seq || e.done || !e.issued {
				continue
			}
			if c.tryLoad(e) {
				issued++
			} else {
				still = append(still, seq)
			}
		}
		c.blockedLoads = still
	}

	for issued < c.cfg.IssueWidth && len(c.ready) > 0 {
		seq := c.ready[0]
		e := c.entry(seq)
		if !e.valid || e.seq != seq || e.issued {
			c.readyPop()
			continue
		}
		k := e.op.Kind
		if k.IsALU() || k == isa.Nop || k == isa.Store {
			// Structural hazard check: stores use an AGU slot on any ALU.
			if k.Complex() {
				if complexALU == 0 {
					break
				}
			} else if simpleALU == 0 && complexALU == 0 {
				break
			}
			c.readyPop()
			if k.Complex() {
				complexALU--
			} else if simpleALU > 0 {
				simpleALU--
			} else {
				complexALU--
			}
			e.issued = true
			issued++
			c.execute(e)
			continue
		}
		if k == isa.Load {
			if c.blockedByFence(seq) {
				c.readyPop()
				e.issued = true
				c.blockedLoads = append(c.blockedLoads, seq)
				continue
			}
			c.readyPop()
			e.issued = true
			issued++
			if !c.tryLoad(e) {
				c.blockedLoads = append(c.blockedLoads, seq)
			}
			continue
		}
		// Fence: becomes "done" at commit time; nothing to issue.
		c.readyPop()
		e.issued = true
	}
}

func (c *Core) latencyOf(k isa.Kind) uint64 {
	switch k {
	case isa.IntAdd, isa.Nop:
		return c.cfg.IntAddLat
	case isa.IntMul:
		return c.cfg.IntMulLat
	case isa.IntDiv:
		return c.cfg.IntDivLat
	case isa.FPAdd:
		return c.cfg.FPAddLat
	case isa.FPMul:
		return c.cfg.FPMulLat
	case isa.FPDiv:
		return c.cfg.FPDivLat
	case isa.Store:
		return 1 // address generation
	}
	return 1
}

func (c *Core) execute(e *robEntry) {
	c.q.After2(c.latencyOf(e.op.Kind), c.execDoneFn, e.seq, 0)
}

// execDone is the functional-unit completion event (scheduled through
// the preallocated execDoneFn binding; the second argument is unused).
func (c *Core) execDone(seq, _ uint64) {
	e2 := c.entry(seq)
	if !e2.valid || e2.seq != seq {
		return
	}
	if e2.op.Kind == isa.Store {
		e2.sbEntry.Data = StoreValue(c.ID, seq)
		c.SB.MarkExecuted(e2.sbEntry)
		if c.OnStoreExec != nil {
			c.OnStoreExec(seq, e2.op.Addr, e2.op.Size, e2.sbEntry.Data)
		}
	}
	c.complete(e2)
}

func (c *Core) complete(e *robEntry) {
	e.done = true
	c.notifyWaiters(e)
}

func (c *Core) notifyWaiters(e *robEntry) {
	// Truncating (not nil-ing) keeps the slot's grown capacity for the
	// next op dispatched into this ring entry. Safe because waiters are
	// only appended while the producer is !done, and the loop body below
	// never dispatches: nothing can append into the backing array while
	// we iterate it.
	ws := e.waiters
	e.waiters = e.waiters[:0]
	for _, w := range ws {
		d := c.entry(w)
		if !d.valid || d.seq != w {
			continue
		}
		d.depCount--
		if d.depCount == 0 && !d.issued {
			c.readyPush(w)
		}
	}
}

// snoopInvalidate is the MOB snoop (the standard OOO-TSO safeguard):
// when an invalidating probe arrives for a line, any load that already
// bound a value from that line while an older load has not yet
// architecturally performed may have read too early — a remote write
// the older load will observe is about to supersede the bound value.
// Such loads are flagged to re-bind at commit. Real hardware squashes
// and replays; in a trace-driven model load values are observational,
// so re-binding from the visible memory at commit time is equivalent
// and costs no timing.
func (c *Core) snoopInvalidate(line uint64) {
	for i := range c.mob {
		m := &c.mob[i]
		if m.addr&^63 != line && (m.addr+uint64(m.size)-1)&^63 != line {
			continue
		}
		e := c.entry(m.seq)
		if e.valid && e.seq == m.seq && !e.replay && c.olderLoadPending(m.seq) {
			e.replay = true
		}
	}
}

// olderLoadPending reports whether any load older than seq has not yet
// architecturally performed: not bound, or bound but itself flagged to
// re-bind at commit (its effective read point is its commit cycle).
func (c *Core) olderLoadPending(seq uint64) bool {
	for s := c.robHead; s < seq; s++ {
		e := c.entry(s)
		if e.valid && e.seq == s && e.op.Kind == isa.Load && (!e.done || e.replay) {
			return true
		}
	}
	return false
}

// retireLoad drops the load's MOB record and, when an invalidation
// snoop flagged it, re-binds its value from the currently visible
// memory — the load architecturally performs at commit, which restores
// program order relative to every older load.
func (c *Core) retireLoad(e *robEntry) {
	for i := range c.mob {
		if c.mob[i].seq == e.seq {
			c.mob = append(c.mob[:i], c.mob[i+1:]...)
			break
		}
	}
	if e.replay && c.ReadVisible != nil && c.OnLoadValue != nil {
		c.OnLoadValue(c.ID, e.seq, e.op.Addr, e.op.Size, c.ReadVisible(e.op.Addr, e.op.Size))
	}
}

// tryLoad attempts the full load path; false means retry next cycle.
func (c *Core) tryLoad(e *robEntry) bool {
	if c.blockedByFence(e.seq) {
		return false
	}
	addr, size := e.op.Addr, e.op.Size
	seq := e.seq

	// 1. SB search (every load pays it: the CAM energy of the paper).
	c.cSBSearch.Inc()
	res, data := c.SB.Search(seq, addr, size)
	switch res {
	case FwdHit:
		c.cFwdHits.Inc()
		c.q.After2(c.cfg.ForwardLatency(), c.fwdDoneFn, seq, binary.LittleEndian.Uint64(data[:]))
		return true
	case FwdConflict:
		c.cFwdConflicts.Inc()
		return false
	}

	// 2. Mechanism-held stores (WCBs / TSOB).
	if c.mech != nil {
		mres, mdata := c.mech.Forward(addr, size)
		switch mres {
		case FwdHit:
			c.cMechFwd.Inc()
			c.q.After2(c.cfg.ForwardLatency(), c.fwdDoneFn, seq, binary.LittleEndian.Uint64(mdata[:]))
			return true
		case FwdConflict:
			return false
		}
	}

	// 3. L1D (which internally handles unauthorized-line aliasing).
	// The seq-based form answers through loadReply below — no per-load
	// closure, no per-load byte slice.
	return c.priv.LoadSeq(addr, size, seq)
}

// loadReply receives memory-system load data (packed little-endian),
// installed once as the private hierarchy's LoadReply at construction.
func (c *Core) loadReply(seq, data uint64) {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], data)
	c.finishLoad(seq, v, true)
}

// fwdDone completes a store-to-load forward (SB or mechanism CAM hit).
func (c *Core) fwdDone(seq, data uint64) {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], data)
	c.finishLoad(seq, v, false)
}

// finishLoad binds a load value. fromMem marks values read from the
// memory system (as opposed to forwarded from the core's own stores,
// which TSO always permits to be read early): only those enter the MOB
// and are subject to invalidation snoops.
func (c *Core) finishLoad(seq uint64, value [8]byte, fromMem bool) {
	e := c.entry(seq)
	if !e.valid || e.seq != seq || e.done {
		return
	}
	if fromMem {
		c.mob = append(c.mob, mobLoad{seq: seq, addr: e.op.Addr, size: e.op.Size})
	}
	if c.OnLoadValue != nil {
		c.OnLoadValue(c.ID, seq, e.op.Addr, e.op.Size, value)
	}
	c.complete(e)
}

// ---------- Dispatch ----------

// fetchNext returns the next op to dispatch, holding it in the
// in-struct lookahead slot (no per-op heap escape).
func (c *Core) fetchNext() *isa.MicroOp {
	if c.haveNext {
		return &c.nextOp
	}
	if c.eof {
		return nil
	}
	op, ok := c.stream.Next()
	if !ok {
		c.eof = true
		return nil
	}
	c.nextOp = op
	c.haveNext = true
	return &c.nextOp
}

func (c *Core) dispatch() {
	dispatched := 0
	var stall *stats.Counter
	for dispatched < c.frontWidth {
		op := c.fetchNext()
		if op == nil {
			break
		}
		if c.robCount == c.robCap {
			stall = c.cStallROB
			break
		}
		switch op.Kind {
		case isa.Load:
			if c.lqCount == c.cfg.LQEntries {
				stall = c.cStallLQ
			}
		case isa.Store:
			if c.SB.Full() {
				stall = c.cStallSB
			}
		}
		if stall != nil {
			break
		}
		if !c.dispatchOp(*op) {
			stall = c.cStallSB
			break
		}
		c.haveNext = false
		dispatched++
	}
	if dispatched == 0 && stall != nil {
		stall.Inc()
	}
}

func (c *Core) dispatchOp(op isa.MicroOp) bool {
	seq := c.seq
	var sbe *SBEntry
	if op.Kind == isa.Store {
		// Push before touching any other state so an overflow (dispatch
		// checked Full this cycle, so this means SB accounting drifted)
		// surfaces as a counted stall rather than a dead process.
		sbe = c.SB.Push(seq, op.Addr, op.Size)
		if sbe == nil {
			c.cSBOverflow.Inc()
			return false
		}
		c.tr.Emit(trace.SBEnqueue, int32(c.ID), c.q.Now(), op.Addr, seq, uint64(c.SB.Len()))
	}
	c.seq++
	e := c.entry(seq)
	*e = robEntry{seq: seq, op: op, valid: true, waiters: e.waiters[:0]}
	c.robCount++
	if c.robCount == 1 {
		c.robHead = seq
	}

	switch op.Kind {
	case isa.Load:
		c.lqCount++
		c.cLoads.Inc()
	case isa.Store:
		e.sbEntry = sbe
		c.cStores.Inc()
	case isa.Fence:
		c.fences = append(c.fences, seq)
	}

	// Wire data dependencies (backward distances).
	for _, d := range []uint16{op.Dep1, op.Dep2} {
		if d == 0 {
			continue
		}
		pseq := seq - uint64(d)
		if pseq >= c.robHead && pseq < seq {
			p := c.entry(pseq)
			if p.valid && p.seq == pseq && !p.done {
				p.waiters = append(p.waiters, seq)
				e.depCount++
			}
		}
	}
	if e.depCount == 0 {
		c.readyPush(seq)
	}
	return true
}
