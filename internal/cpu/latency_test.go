package cpu

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
)

// TestForwardLatencyScalesWithSBSize measures the store-to-load
// forwarding latency directly: a store followed by a dependent load
// completes faster with a smaller SB (5/4/3 cycles at 114/64/32).
func TestForwardLatencyScalesWithSBSize(t *testing.T) {
	measure := func(sbSize int) uint64 {
		ops := []isa.MicroOp{
			{Kind: isa.Store, Addr: 0x1000, Size: 8},
			{Kind: isa.Load, Addr: 0x1000, Size: 8, Dep1: 1},
		}
		r := newCoreRig(t, ops, func(c *config.Config) { c.SBEntries = sbSize })
		var bound uint64
		r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) {
			bound = r.q.Now()
		}
		r.run(t, 100_000)
		return bound
	}
	t114 := measure(114)
	t64 := measure(64)
	t32 := measure(32)
	if !(t32 < t64 && t64 < t114) {
		t.Fatalf("forward bind times: sb114=%d sb64=%d sb32=%d; want strictly decreasing", t114, t64, t32)
	}
	if t114-t32 != 2 {
		t.Fatalf("114 vs 32 forwarding delta = %d cycles, want 2 (5c -> 3c)", t114-t32)
	}
}

// TestLQStallAttribution fills a tiny load queue with slow misses.
func TestLQStallAttribution(t *testing.T) {
	var ops []isa.MicroOp
	for i := 0; i < 300; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: uint64(i) * 4096, Size: 8})
	}
	r := newCoreRig(t, ops, func(c *config.Config) { c.LQEntries = 4 })
	r.run(t, 5_000_000)
	if r.st.Get("stall_lq") == 0 {
		t.Fatal("no LQ stalls with a 4-entry LQ and 300 cold loads")
	}
	if r.st.Get("stall_sb") != 0 {
		t.Fatal("SB stalls attributed on a store-free trace")
	}
}

// TestSimpleALUThroughput: with only the 1 simple ALU (complex units
// removed), independent adds serialize to ~1 per cycle.
func TestSimpleALUThroughput(t *testing.T) {
	var ops []isa.MicroOp
	for i := 0; i < 200; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.IntAdd})
	}
	r := newCoreRig(t, ops, func(c *config.Config) { c.ComplexALUs = 0; c.SimpleALUs = 1 })
	r.run(t, 100_000)
	if cyc := r.st.Get("cycles"); cyc < 200 {
		t.Fatalf("200 adds in %d cycles through one ALU", cyc)
	}
}

// TestComplexOpsNeedComplexALU: FP work cannot use the simple ALU.
func TestComplexOpsNeedComplexALU(t *testing.T) {
	var ops []isa.MicroOp
	for i := 0; i < 90; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.FPMul})
	}
	fast := func(complexALUs int) uint64 {
		r := newCoreRig(t, ops, func(c *config.Config) { c.ComplexALUs = complexALUs })
		r.run(t, 100_000)
		return r.st.Get("cycles")
	}
	three := fast(3)
	one := fast(1)
	if one <= three {
		t.Fatalf("1 complex ALU (%d cyc) not slower than 3 (%d cyc)", one, three)
	}
}

// TestPartialForwardConflictResolves: a load partially covered by an
// older store must wait for the drain, then read the merged bytes from
// the L1D.
func TestPartialForwardConflictResolves(t *testing.T) {
	ops := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x1000, Size: 4}, // bytes 0-3
		{Kind: isa.Load, Addr: 0x1000, Size: 8, Dep1: 1},
	}
	r := newCoreRig(t, ops, nil)
	var got [8]byte
	r.core.OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { got = v }
	r.run(t, 1_000_000)
	if r.st.Get("sb_forward_conflicts") == 0 {
		t.Fatal("partial overlap did not register a forwarding conflict")
	}
	want := StoreValue(0, 0)
	for i := 0; i < 4; i++ {
		if got[i] != want[i] {
			t.Fatalf("merged load = %v, want store prefix %v", got, want[:4])
		}
	}
	for i := 4; i < 8; i++ {
		if got[i] != 0 {
			t.Fatalf("bytes beyond the store should be zero: %v", got)
		}
	}
}
