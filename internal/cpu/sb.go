// Package cpu models the out-of-order core of Table I: a trace-driven
// pipeline with ROB, load queue, and store buffer, Fog-style execution
// latencies, prefetch-at-commit, SB-size-dependent store-to-load
// forwarding, and per-resource dispatch-stall attribution. The store
// drain path is pluggable (DrainMechanism) so the baseline, TUS, SSB,
// CSB, and SPB policies share one core.
package cpu

import "tusim/internal/memsys"

// SBEntry is one store buffer slot. The SB is unified for non-committed
// and committed stores, as in x86 processors (paper footnote 1).
type SBEntry struct {
	Seq       uint64
	Addr      uint64
	Size      uint8
	Data      [8]byte
	Executed  bool // address generated and data captured
	Committed bool
	// CommitCycle is the cycle the store's ROB entry retired (set by the
	// core at commit). Drain latency = pop cycle − CommitCycle. Purely
	// observational: no mechanism reads it for timing decisions.
	CommitCycle uint64
}

// Line returns the cache line address of the entry.
func (e *SBEntry) Line() uint64 { return e.Addr &^ 63 }

// Mask returns the byte mask of the entry within its line.
func (e *SBEntry) Mask() memsys.Mask { return memsys.MaskFor(e.Addr, e.Size) }

// StoreBuffer is a program-order ring of stores. Every load searches it
// associatively (the CAM the paper's energy analysis centres on).
type StoreBuffer struct {
	// entries is a power-of-two ring (indexing is a mask, not a
	// division); capacity is the architectural size.
	entries  []SBEntry
	mask     int
	capacity int
	head     int
	count    int
	// minUnexec caches the oldest store whose address is still unknown
	// (^0 when none), so blocked loads don't rescan the CAM each cycle.
	minUnexec uint64
	// Overflows counts Push attempts on a full buffer. Dispatch checks
	// Full first, so a nonzero count means SB accounting drifted; the
	// core surfaces it as a counted stall instead of killing the run.
	Overflows uint64
	// OnPop, when set, observes each entry just before it leaves the
	// buffer. Every drain mechanism pops through here, so the core gets
	// a uniform drain-event hook without each mechanism carrying a
	// clock. Must be observational only.
	OnPop func(*SBEntry)
}

const noUnexec = ^uint64(0)

// NewStoreBuffer allocates an SB with the given capacity.
func NewStoreBuffer(capacity int) *StoreBuffer {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &StoreBuffer{entries: make([]SBEntry, size), mask: size - 1, capacity: capacity, minUnexec: noUnexec}
}

// Cap returns the SB capacity.
func (sb *StoreBuffer) Cap() int { return sb.capacity }

// Len returns the number of occupied slots.
func (sb *StoreBuffer) Len() int { return sb.count }

// Full reports whether dispatch must stall on a store.
func (sb *StoreBuffer) Full() bool { return sb.count == sb.capacity }

// Empty reports an empty SB.
func (sb *StoreBuffer) Empty() bool { return sb.count == 0 }

// Push appends a dispatched store in program order and returns its slot
// handle, or nil when the buffer is full (the overflow is counted and
// the caller stalls the store instead of the process dying).
func (sb *StoreBuffer) Push(seq, addr uint64, size uint8) *SBEntry {
	if sb.Full() {
		sb.Overflows++
		return nil
	}
	idx := (sb.head + sb.count) & sb.mask
	sb.count++
	e := &sb.entries[idx]
	*e = SBEntry{Seq: seq, Addr: addr, Size: size}
	if sb.minUnexec == noUnexec {
		sb.minUnexec = seq
	}
	return e
}

// MarkExecuted records that the entry's address/data are now known
// (callers must use this instead of setting Executed directly so the
// oldest-unexecuted cache stays coherent).
func (sb *StoreBuffer) MarkExecuted(e *SBEntry) {
	e.Executed = true
	if e.Seq != sb.minUnexec {
		return
	}
	sb.minUnexec = noUnexec
	for i := 0; i < sb.count; i++ {
		x := sb.at(i)
		if !x.Executed {
			sb.minUnexec = x.Seq
			return
		}
	}
}

// Head returns the oldest entry, or nil when empty.
func (sb *StoreBuffer) Head() *SBEntry {
	if sb.count == 0 {
		return nil
	}
	return &sb.entries[sb.head]
}

// Pop removes the oldest entry (after it drained to the memory system).
func (sb *StoreBuffer) Pop() {
	if sb.count == 0 {
		// Invariant: mechanisms pop only after Head() returned non-nil.
		panic("cpu: pop from empty store buffer")
	}
	if sb.OnPop != nil {
		sb.OnPop(&sb.entries[sb.head])
	}
	sb.head = (sb.head + 1) & sb.mask
	sb.count--
}

// at returns the i-th oldest entry (0 = head).
func (sb *StoreBuffer) at(i int) *SBEntry {
	return &sb.entries[(sb.head+i)&sb.mask]
}

// ForwardResult classifies an SB search for a load.
type ForwardResult uint8

// Forwarding outcomes.
const (
	// FwdMiss: no older store overlaps; the load may go to memory.
	FwdMiss ForwardResult = iota
	// FwdHit: the youngest overlapping older store covers the load
	// fully; Data holds the bytes.
	FwdHit
	// FwdConflict: a partial overlap or an older store with an
	// ungenerated address blocks the load; retry later.
	FwdConflict
)

// Search performs the associative store-to-load forwarding lookup for a
// load at loadSeq. Only stores older than the load participate. An
// older store whose address is not yet known conservatively blocks the
// load (no memory speculation).
func (sb *StoreBuffer) Search(loadSeq, addr uint64, size uint8) (ForwardResult, [8]byte) {
	var zero [8]byte
	if sb.minUnexec < loadSeq {
		// An older store's address is unknown: conservative conflict
		// (fast path — no CAM scan needed).
		return FwdConflict, zero
	}
	want := memsys.MaskFor(addr, size)
	line := addr &^ 63
	// Scan youngest -> oldest.
	for i := sb.count - 1; i >= 0; i-- {
		e := sb.at(i)
		if e.Seq >= loadSeq {
			continue
		}
		if !e.Executed {
			return FwdConflict, zero
		}
		if e.Line() != line {
			continue
		}
		m := e.Mask()
		if !m.Overlaps(want) {
			continue
		}
		if !m.Covers(want) {
			return FwdConflict, zero
		}
		// Full cover: extract the requested bytes from the store data.
		var out [8]byte
		off := int(addr&63) - int(e.Addr&63)
		copy(out[:size], e.Data[off:off+int(size)])
		return FwdHit, out
	}
	return FwdMiss, zero
}

// LookaheadLines visits up to k distinct line addresses of the oldest
// committed stores (drain-ahead RFO issue).
func (sb *StoreBuffer) LookaheadLines(k int, visit func(line uint64)) {
	var last uint64 = ^uint64(0)
	seen := 0
	for i := 0; i < sb.count && seen < k; i++ {
		e := sb.at(i)
		if !e.Committed {
			break
		}
		ln := e.Line()
		if ln == last {
			continue
		}
		last = ln
		seen++
		visit(ln)
	}
}

// OldestUnexecutedBefore reports whether any store older than seq has
// not generated its address yet (blocks load issue conservatively).
func (sb *StoreBuffer) OldestUnexecutedBefore(seq uint64) bool {
	for i := 0; i < sb.count; i++ {
		e := sb.at(i)
		if e.Seq >= seq {
			return false
		}
		if !e.Executed {
			return true
		}
	}
	return false
}
