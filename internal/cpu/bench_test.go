package cpu

import (
	"testing"

	"tusim/internal/stats"
	"tusim/internal/trace"
)

// drainSB builds a store buffer instrumented exactly like NewCore's: an
// OnPop hook that observes the drain-latency histogram and emits the
// SBDrain trace event. The returned step pushes, commits, and pops one
// store through the hook — the drain hot path in miniature.
func drainSB(tr *trace.Tracer) (sb *StoreBuffer, step func()) {
	sb = NewStoreBuffer(16)
	st := stats.NewSet("bench")
	hDrain := st.Histogram("sb_drain_latency")
	var cycle uint64
	sb.OnPop = func(e *SBEntry) {
		var lat uint64
		if cycle >= e.CommitCycle {
			lat = cycle - e.CommitCycle
		}
		hDrain.Observe(lat)
		tr.Emit(trace.SBDrain, 0, cycle, e.Addr, e.Seq, lat)
	}
	var seq uint64
	step = func() {
		cycle++
		e := sb.Push(seq, 0x1000+(seq%64)*8, 8)
		seq++
		sb.MarkExecuted(e)
		e.Committed = true
		e.CommitCycle = cycle
		sb.Pop()
	}
	return sb, step
}

// TestDrainPathZeroAlloc pins the ISSUE's invariant: with tracing
// disabled (the default nil tracer), the fully instrumented
// push → commit → pop drain path allocates zero bytes per store.
// Histogram observation is atomic adds and the nil-tracer Emit is a
// branch, so instrumentation costs the untraced simulator nothing.
func TestDrainPathZeroAlloc(t *testing.T) {
	_, step := drainSB(nil)
	step() // warm the histogram handle
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("disabled-tracer drain path allocates %.1f allocs/store, want 0", n)
	}
}

// TestDrainPathZeroAllocTraced: even with tracing on, the preallocated
// ring keeps the drain path allocation-free (it may drop, never grow).
func TestDrainPathZeroAllocTraced(t *testing.T) {
	_, step := drainSB(trace.New(64))
	step()
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("traced drain path allocates %.1f allocs/store, want 0", n)
	}
}

func benchDrain(b *testing.B, tr *trace.Tracer) {
	_, step := drainSB(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkDrainUntraced is the production default: nil tracer.
func BenchmarkDrainUntraced(b *testing.B) { benchDrain(b, nil) }

// BenchmarkDrainDisabled holds a constructed but disabled tracer.
func BenchmarkDrainDisabled(b *testing.B) {
	tr := trace.New(1 << 10)
	tr.SetEnabled(false)
	benchDrain(b, tr)
}

// BenchmarkDrainTraced records every drain into the ring.
func BenchmarkDrainTraced(b *testing.B) { benchDrain(b, trace.New(1<<10)) }
