package energy

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/stats"
)

// TestCounterComponentMapping is the table-driven contract between the
// stats layer and the energy model: each counter feeds exactly one
// breakdown component, charged at its documented per-event energy, and
// the components sum to Total. Setting one counter at a time makes a
// mis-wired counter (charged twice, or to the wrong component) fail by
// name.
func TestCounterComponentMapping(t *testing.T) {
	cfg := config.Default()
	m := New(cfg)
	sbSearch := SBCAM.SearchEnergy(cfg.SBEntries)
	cases := []struct {
		counter string
		events  uint64
		perUnit float64
		pick    func(Breakdown) float64
		name    string
	}{
		{"committed_ops", 1000, m.P.CoreDynamic, func(b Breakdown) float64 { return b.Core }, "Core"},
		{"sb_searches", 700, sbSearch, func(b Breakdown) float64 { return b.SB }, "SB"},
		{"woq_searches", 700, WOQSearchEnergy(), func(b Breakdown) float64 { return b.WOQ }, "WOQ"},
		{"wcb_searches", 300, m.P.WCBSearch, func(b Breakdown) float64 { return b.WCB }, "WCB"},
		{"tsob_searches", 300, m.P.TSOBSearch, func(b Breakdown) float64 { return b.TSOB }, "TSOB"},
		{"l1d_reads", 400, m.P.L1DAccess, func(b Breakdown) float64 { return b.L1D }, "L1D"},
		{"l1d_writes", 250, m.P.L1DAccess, func(b Breakdown) float64 { return b.L1D }, "L1D"},
		{"tus_fill_merges", 50, m.P.L1DAccess, func(b Breakdown) float64 { return b.L1D }, "L1D"},
		{"l2_hits", 60, m.P.L2Access, func(b Breakdown) float64 { return b.L2 }, "L2"},
		{"l2_updates", 40, m.P.L2Access, func(b Breakdown) float64 { return b.L2 }, "L2"},
		{"l2_misses", 30, m.P.L2Access, func(b Breakdown) float64 { return b.L2 }, "L2"},
		{"llc_accesses", 20, m.P.LLCAccess, func(b Breakdown) float64 { return b.LLC }, "LLC"},
		{"ssb_llc_writes", 20, m.P.LLCAccess, func(b Breakdown) float64 { return b.LLC }, "LLC"},
		{"llc_probes", 15, m.P.Probe, func(b Breakdown) float64 { return b.LLC }, "LLC"},
		{"dram_accesses", 9, m.P.DRAMAccess, func(b Breakdown) float64 { return b.DRAM }, "DRAM"},
	}
	for _, tc := range cases {
		t.Run(tc.counter, func(t *testing.T) {
			st := stats.NewSet("t")
			st.Counter(tc.counter).Add(tc.events)
			b := m.Energy(st, 0)
			want := float64(tc.events) * tc.perUnit
			if got := tc.pick(b); got != want {
				t.Errorf("%s component = %v, want %v (%d events x %v)", tc.name, got, want, tc.events, tc.perUnit)
			}
			// With zero cycles there is no leakage, so the single charged
			// component must be the whole total: the counter feeds exactly
			// one component.
			if b.Total() != want {
				t.Errorf("Total = %v, want %v — counter %s charged to more than one component", b.Total(), want, tc.counter)
			}
		})
	}
}

// TestZeroStatsZeroEnergy: an empty stat set at zero cycles costs
// nothing, and with cycles > 0 costs exactly leakage — no component has
// a hidden constant term.
func TestZeroStatsZeroEnergy(t *testing.T) {
	cfg := config.Default()
	m := New(cfg)
	empty := stats.NewSet("t")
	if got := m.Energy(empty, 0).Total(); got != 0 {
		t.Fatalf("zero stats, zero cycles: Total = %v, want 0", got)
	}
	b := m.Energy(empty, 10_000)
	wantLeak := 10_000 * m.P.LeakagePerCycle * float64(cfg.Cores)
	if b.Leakage != wantLeak {
		t.Errorf("Leakage = %v, want %v", b.Leakage, wantLeak)
	}
	if b.Total() != wantLeak {
		t.Errorf("zero stats: Total = %v, want leakage only (%v)", b.Total(), wantLeak)
	}
	if m.EDP(empty, 0) != 0 {
		t.Errorf("EDP of an empty zero-cycle run = %v, want 0", m.EDP(empty, 0))
	}
}

// fig15Profile builds counter sets shaped like the Fig. 15 operating
// point (mechanisms at a 32-entry SB): the same committed work and
// cache traffic, differing only in the store-handling structures each
// mechanism exercises.
func fig15Profile(extra func(*stats.Set)) *stats.Set {
	st := stats.NewSet("t")
	st.Counter("committed_ops").Add(100_000)
	st.Counter("l1d_reads").Add(30_000)
	st.Counter("l1d_writes").Add(12_000)
	st.Counter("l2_misses").Add(2_000)
	st.Counter("llc_accesses").Add(1_500)
	st.Counter("dram_accesses").Add(400)
	if extra != nil {
		extra(st)
	}
	return st
}

// TestMechanismEnergyDeltaSigns pins the directional claims Fig. 15
// rests on, on fig-15-shaped inputs at 32 SB entries:
//
//   - TUS replaces SB CAM searches with 5x-cheaper WOQ searches, so its
//     energy delta vs baseline is negative even after paying WCB
//     searches and fill merges;
//   - SSB writes every store through to the LLC, so its delta is
//     positive (the EDP penalty the paper reports);
//   - both inequalities carry over to EDP at equal cycle counts.
func TestMechanismEnergyDeltaSigns(t *testing.T) {
	cfg := config.Default().WithSB(32)
	m := New(cfg)
	const cycles = 80_000
	const searches = 40_000
	const stores = 12_000

	base := fig15Profile(func(st *stats.Set) {
		st.Counter("sb_searches").Add(searches)
	})
	tus := fig15Profile(func(st *stats.Set) {
		st.Counter("woq_searches").Add(searches)
		st.Counter("wcb_searches").Add(stores)
		st.Counter("tus_fill_merges").Add(stores / 10)
	})
	ssb := fig15Profile(func(st *stats.Set) {
		st.Counter("sb_searches").Add(searches)
		st.Counter("tsob_searches").Add(searches)
		st.Counter("ssb_llc_writes").Add(stores)
	})

	eBase := m.Energy(base, cycles).Total()
	eTUS := m.Energy(tus, cycles).Total()
	eSSB := m.Energy(ssb, cycles).Total()
	if eTUS >= eBase {
		t.Errorf("TUS energy delta sign: %v >= baseline %v, want lower (WOQ search is 5x cheaper than the 32-entry SB CAM)", eTUS, eBase)
	}
	if eSSB <= eBase {
		t.Errorf("SSB energy delta sign: %v <= baseline %v, want higher (per-store LLC writes)", eSSB, eBase)
	}
	if edpT, edpB := m.EDP(tus, cycles), m.EDP(base, cycles); edpT >= edpB {
		t.Errorf("TUS EDP %v >= baseline %v at equal cycles", edpT, edpB)
	}
	if edpS, edpB := m.EDP(ssb, cycles), m.EDP(base, cycles); edpS <= edpB {
		t.Errorf("SSB EDP %v <= baseline %v at equal cycles", edpS, edpB)
	}
}
