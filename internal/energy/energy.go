// Package energy is the McPAT-substitute power/area model (DESIGN.md):
// event energies multiplied by simulation counts plus leakage
// proportional to runtime. The CAM model for the SB and WOQ is an
// affine fit calibrated to the paper's own published ratios, which are
// mutually consistent:
//
//   - a 32-entry SB uses 2x less energy per search and 21% less area
//     than a 114-entry SB;
//   - the WOQ is 13x smaller and uses 10x less energy per search than
//     the 114-entry SB, and 5x less than a 32-entry SB.
//
// Solving e(n) = eFix + n*eVar with e(114) = 2*e(32) gives eFix = 50
// eVar-units, and a(n) = aFix + n*aVar with a(114) = a(32)/0.79 gives
// aFix ~= 276 aVar-units; the WOQ ratios then hold to within a percent.
package energy

import (
	"tusim/internal/config"
	"tusim/internal/stats"
)

// CAM characterizes a content-addressable structure's per-search energy
// and area as affine functions of its entry count.
type CAM struct {
	// EnergyFix/EnergyVar: energy per search = EnergyFix + n*EnergyVar
	// (arbitrary units).
	EnergyFix, EnergyVar float64
	// AreaFix/AreaVar: area = AreaFix + n*AreaVar (arbitrary units).
	AreaFix, AreaVar float64
}

// SBCAM is the store buffer CAM, calibrated as derived above.
var SBCAM = CAM{EnergyFix: 50, EnergyVar: 1, AreaFix: 276, AreaVar: 1}

// SearchEnergy returns the per-search energy of an n-entry instance.
func (c CAM) SearchEnergy(n int) float64 { return c.EnergyFix + float64(n)*c.EnergyVar }

// Area returns the area of an n-entry instance.
func (c CAM) Area(n int) float64 { return c.AreaFix + float64(n)*c.AreaVar }

// WOQSearchEnergy is the per-search energy of the 64-entry WOQ. The
// WOQ compares 10-bit set/way tags instead of 64-bit virtual addresses
// (Sec. IV), which the paper reports as 10x below the 114-entry SB.
func WOQSearchEnergy() float64 { return SBCAM.SearchEnergy(114) / 10 }

// WOQArea is the WOQ area (13x below the 114-entry SB).
func WOQArea() float64 { return SBCAM.Area(114) / 13 }

// Params are the per-event energies (arbitrary units, one unit = the
// SB CAM's per-entry search energy) and leakage powers. Relative
// magnitudes follow CACTI-class intuition: each level down the
// hierarchy costs roughly 5-10x more per access.
type Params struct {
	L1DAccess  float64
	L2Access   float64
	LLCAccess  float64
	DRAMAccess float64
	WCBSearch  float64
	TSOBSearch float64
	Probe      float64

	// CoreDynamic is charged per committed micro-op (front end, rename,
	// ROB, ALUs).
	CoreDynamic float64
	// LeakagePerCycle covers the whole core+caches static power.
	LeakagePerCycle float64
}

// DefaultParams returns the calibrated event energies.
func DefaultParams() Params {
	return Params{
		L1DAccess:       120,
		L2Access:        600,
		LLCAccess:       2400,
		DRAMAccess:      12000,
		WCBSearch:       12,
		TSOBSearch:      30,
		Probe:           300,
		CoreDynamic:     220,
		LeakagePerCycle: 900,
	}
}

// Breakdown is the energy decomposition of one run.
type Breakdown struct {
	Core    float64
	SB      float64
	WOQ     float64
	WCB     float64
	TSOB    float64
	L1D     float64
	L2      float64
	LLC     float64
	DRAM    float64
	Leakage float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.Core + b.SB + b.WOQ + b.WCB + b.TSOB + b.L1D + b.L2 + b.LLC + b.DRAM + b.Leakage
}

// Model computes energy and EDP from run statistics.
type Model struct {
	P   Params
	Cfg *config.Config
}

// New builds a model for a machine configuration.
func New(cfg *config.Config) *Model { return &Model{P: DefaultParams(), Cfg: cfg} }

// Energy decomposes the energy of a run from its merged counters and
// cycle count.
func (m *Model) Energy(st *stats.Set, cycles uint64) Breakdown {
	sbSearch := SBCAM.SearchEnergy(m.Cfg.SBEntries)
	var b Breakdown
	b.Core = float64(st.Get("committed_ops")) * m.P.CoreDynamic
	b.SB = float64(st.Get("sb_searches")) * sbSearch
	b.WOQ = float64(st.Get("woq_searches")) * WOQSearchEnergy()
	b.WCB = float64(st.Get("wcb_searches")) * m.P.WCBSearch
	b.TSOB = float64(st.Get("tsob_searches")) * m.P.TSOBSearch
	// L1D dynamic: reads + writes + fill merges.
	b.L1D = float64(st.Get("l1d_reads")+st.Get("l1d_writes")+st.Get("tus_fill_merges")) * m.P.L1DAccess
	// L2: hits, updates (TUS pushes + L1 writebacks) and inclusive fills.
	b.L2 = float64(st.Get("l2_hits")+st.Get("l2_updates")+st.Get("l2_misses")) * m.P.L2Access
	// LLC: directory transactions, probes, and SSB's per-store writes.
	b.LLC = float64(st.Get("llc_accesses")+st.Get("ssb_llc_writes"))*m.P.LLCAccess +
		float64(st.Get("llc_probes"))*m.P.Probe
	b.DRAM = float64(st.Get("dram_accesses")) * m.P.DRAMAccess
	b.Leakage = float64(cycles) * m.P.LeakagePerCycle * float64(m.Cfg.Cores)
	return b
}

// EDP returns the energy-delay product of a run.
func (m *Model) EDP(st *stats.Set, cycles uint64) float64 {
	return m.Energy(st, cycles).Total() * float64(cycles)
}

// SBAreaReduction returns the fractional area saved by shrinking the
// SB from 'from' to 'to' entries (paper: 114 -> 32 saves 21%).
func SBAreaReduction(from, to int) float64 {
	return 1 - SBCAM.Area(to)/SBCAM.Area(from)
}

// SBEnergyRatio returns e(from)/e(to) per search (paper: 114 vs 32 is 2x).
func SBEnergyRatio(from, to int) float64 {
	return SBCAM.SearchEnergy(from) / SBCAM.SearchEnergy(to)
}
