package energy

import (
	"math"
	"testing"

	"tusim/internal/config"
	"tusim/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestCAMCalibration checks the analytic CAM model against the paper's
// own published ratios (abstract and Sec. V).
func TestCAMCalibration(t *testing.T) {
	// 114-entry SB uses 2x the energy per search of a 32-entry SB.
	if r := SBEnergyRatio(114, 32); !approx(r, 2.0, 0.01) {
		t.Errorf("SB energy ratio 114/32 = %.3f, want 2.0", r)
	}
	// Area saving of 21% going 114 -> 32.
	if r := SBAreaReduction(114, 32); !approx(r, 0.21, 0.005) {
		t.Errorf("SB area reduction = %.3f, want 0.21", r)
	}
	// WOQ is 13x smaller than the 114-entry SB.
	if r := SBCAM.Area(114) / WOQArea(); !approx(r, 13, 0.01) {
		t.Errorf("WOQ area ratio = %.2f, want 13", r)
	}
	// WOQ uses 10x less energy per search than the 114-entry SB.
	if r := SBCAM.SearchEnergy(114) / WOQSearchEnergy(); !approx(r, 10, 0.01) {
		t.Errorf("WOQ energy ratio vs 114 = %.2f, want 10", r)
	}
	// And 5x less than a 32-entry SB.
	if r := SBCAM.SearchEnergy(32) / WOQSearchEnergy(); !approx(r, 5, 0.01) {
		t.Errorf("WOQ energy ratio vs 32 = %.2f, want 5", r)
	}
}

func TestCAMMonotonic(t *testing.T) {
	prev := 0.0
	for n := 8; n <= 256; n *= 2 {
		e := SBCAM.SearchEnergy(n)
		if e <= prev {
			t.Fatalf("energy not monotonic at %d entries", n)
		}
		prev = e
	}
}

func TestEnergyBreakdown(t *testing.T) {
	cfg := config.Default()
	m := New(cfg)
	st := stats.NewSet("t")
	st.Counter("committed_ops").Add(1000)
	st.Counter("sb_searches").Add(400)
	st.Counter("l1d_reads").Add(400)
	st.Counter("l1d_writes").Add(100)
	st.Counter("l2_hits").Add(50)
	st.Counter("dram_accesses").Add(10)
	b := m.Energy(st, 5000)
	if b.Core != 1000*m.P.CoreDynamic {
		t.Errorf("Core = %f", b.Core)
	}
	if b.SB != 400*SBCAM.SearchEnergy(114) {
		t.Errorf("SB = %f", b.SB)
	}
	if b.DRAM != 10*m.P.DRAMAccess {
		t.Errorf("DRAM = %f", b.DRAM)
	}
	if b.Leakage != 5000*m.P.LeakagePerCycle {
		t.Errorf("Leakage = %f", b.Leakage)
	}
	if b.Total() <= 0 {
		t.Error("total energy must be positive")
	}
	// EDP = E * delay.
	if edp := m.EDP(st, 5000); !approx(edp, b.Total()*5000, 1) {
		t.Errorf("EDP = %f", edp)
	}
}

// TestSmallerSBSavesSBEnergy verifies the per-search energy scales down
// with SB size in the full model.
func TestSmallerSBSavesSBEnergy(t *testing.T) {
	st := stats.NewSet("t")
	st.Counter("sb_searches").Add(1000)
	big := New(config.Default().WithSB(114)).Energy(st, 100).SB
	small := New(config.Default().WithSB(32)).Energy(st, 100).SB
	if !approx(big/small, 2.0, 0.01) {
		t.Errorf("SB energy scaling = %.3f, want 2.0", big/small)
	}
}

// TestSSBLLCWritesCharged verifies SSB's per-store shared-cache writes
// appear in the LLC component (its EDP penalty in the paper).
func TestSSBLLCWritesCharged(t *testing.T) {
	cfg := config.Default()
	m := New(cfg)
	a := stats.NewSet("a")
	b := stats.NewSet("b")
	b.Counter("ssb_llc_writes").Add(500)
	ea := m.Energy(a, 100).LLC
	eb := m.Energy(b, 100).LLC
	if eb-ea != 500*m.P.LLCAccess {
		t.Errorf("SSB LLC writes not charged: %f vs %f", ea, eb)
	}
}

// TestWOQStorage checks the 272-byte WOQ claim (64 entries x 34 bits).
func TestWOQStorage(t *testing.T) {
	if bytes := 64 * 34 / 8; bytes != 272 {
		t.Fatalf("WOQ storage = %d bytes, want 272", bytes)
	}
}
