package isa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace file format: a small header followed by delta-encoded micro-ops.
//
//	magic "TUST" | version u8 | count uvarint
//	per op: kind u8 | dep1 uvarint | dep2 uvarint
//	        (mem ops only) size u8 | addr-delta svarint
//
// Addresses are delta-encoded against the previous memory op's address,
// which compresses the strided patterns the workloads produce.
const (
	traceMagic   = "TUST"
	traceVersion = 1
)

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, ops []MicroOp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(ops))); err != nil {
		return err
	}
	prevAddr := int64(0)
	for _, op := range ops {
		if err := bw.WriteByte(byte(op.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(op.Dep1)); err != nil {
			return err
		}
		if err := putUvarint(uint64(op.Dep2)); err != nil {
			return err
		}
		if op.Kind.IsMem() {
			if err := bw.WriteByte(op.Size); err != nil {
				return err
			}
			if err := putVarint(int64(op.Addr) - prevAddr); err != nil {
				return err
			}
			prevAddr = int64(op.Addr)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace and validates it.
func ReadTrace(r io.Reader) ([]MicroOp, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("isa: reading trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("isa: bad trace magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("isa: unsupported trace version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxOps = 1 << 28
	if count > maxOps {
		return nil, fmt.Errorf("isa: trace claims %d ops (max %d)", count, maxOps)
	}
	ops := make([]MicroOp, 0, count)
	prevAddr := int64(0)
	for i := uint64(0); i < count; i++ {
		k, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("isa: op %d: %w", i, err)
		}
		op := MicroOp{Kind: Kind(k)}
		d1, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		d2, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if d1 > 65535 || d2 > 65535 {
			return nil, fmt.Errorf("isa: op %d: dep distance out of range", i)
		}
		op.Dep1, op.Dep2 = uint16(d1), uint16(d2)
		if op.Kind.IsMem() {
			sz, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			op.Size = sz
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			prevAddr += delta
			op.Addr = uint64(prevAddr)
		}
		ops = append(ops, op)
	}
	if err := Validate(ops); err != nil {
		return nil, fmt.Errorf("isa: trace fails validation: %w", err)
	}
	return ops, nil
}
