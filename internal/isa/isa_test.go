package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Fatal("Load/Store must be memory ops")
	}
	if Nop.IsMem() || Fence.IsMem() || IntAdd.IsMem() {
		t.Fatal("non-memory kinds misclassified")
	}
	for _, k := range []Kind{IntAdd, IntMul, IntDiv, FPAdd, FPMul, FPDiv} {
		if !k.IsALU() {
			t.Fatalf("%v should be ALU", k)
		}
	}
	if Load.IsALU() || Fence.IsALU() || Nop.IsALU() {
		t.Fatal("non-ALU kinds misclassified")
	}
	if IntAdd.Complex() {
		t.Fatal("IntAdd runs on the simple ALU")
	}
	for _, k := range []Kind{IntMul, IntDiv, FPAdd, FPMul, FPDiv} {
		if !k.Complex() {
			t.Fatalf("%v needs a complex ALU", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{Nop: "nop", IntAdd: "iadd", Load: "ld", Store: "st", Fence: "fence", FPDiv: "fdiv"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestLineAddr(t *testing.T) {
	op := MicroOp{Kind: Store, Addr: 0x1234, Size: 4}
	if op.LineAddr() != 0x1200 {
		t.Fatalf("LineAddr = %#x, want 0x1200", op.LineAddr())
	}
}

func TestValidateAccepts(t *testing.T) {
	trace := []MicroOp{
		{Kind: IntAdd},
		{Kind: Load, Addr: 0x100, Size: 8, Dep1: 1},
		{Kind: Store, Addr: 0x140, Size: 4, Dep1: 1},
		{Kind: Fence},
		{Kind: Load, Addr: 0x13C, Size: 4}, // ends exactly at line boundary
	}
	if err := Validate(trace); err != nil {
		t.Fatalf("Validate rejected valid trace: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		trace []MicroOp
	}{
		{"bad size", []MicroOp{{Kind: Load, Addr: 0, Size: 3}}},
		{"zero size", []MicroOp{{Kind: Store, Addr: 0, Size: 0}}},
		{"line crossing", []MicroOp{{Kind: Load, Addr: 0x3C, Size: 8}}},
		{"simd size", []MicroOp{{Kind: Load, Addr: 0, Size: 32}}},
		{"dep before start", []MicroOp{{Kind: IntAdd, Dep1: 1}}},
		{"fence with addr", []MicroOp{{Kind: Fence, Addr: 0x40}}},
		{"alu with size", []MicroOp{{Kind: IntAdd, Size: 8}}},
	}
	for _, c := range cases {
		if err := Validate(c.trace); err == nil {
			t.Errorf("%s: Validate accepted invalid trace", c.name)
		}
	}
}

func TestSliceStream(t *testing.T) {
	ops := []MicroOp{{Kind: IntAdd}, {Kind: Load, Addr: 8, Size: 8}}
	s := NewSliceStream(ops)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, ok := s.Next()
	if !ok || a.Kind != IntAdd {
		t.Fatal("first op wrong")
	}
	b, ok := s.Next()
	if !ok || b.Kind != Load {
		t.Fatal("second op wrong")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
}

// Property: LineAddr is idempotent and never larger than Addr.
func TestLineAddrProperty(t *testing.T) {
	f := func(addr uint64) bool {
		op := MicroOp{Kind: Load, Addr: addr, Size: 1}
		l := op.LineAddr()
		return l <= addr && l&63 == 0 && (MicroOp{Kind: Load, Addr: l, Size: 1}).LineAddr() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
