// Package isa defines the trace-driven micro-op format consumed by the
// out-of-order core. A workload is a per-thread stream of MicroOps with
// explicit data dependencies expressed as backward distances, which is
// sufficient to reproduce instruction-level parallelism, address
// streams, and store behaviour without an x86 decoder.
package isa

import "fmt"

// Kind classifies a micro-op.
type Kind uint8

const (
	// Nop occupies ROB/commit bandwidth only.
	Nop Kind = iota
	// IntAdd/IntMul/IntDiv and the FP kinds execute on ALUs with the
	// Table I latencies.
	IntAdd
	IntMul
	IntDiv
	FPAdd
	FPMul
	FPDiv
	// Load reads Size bytes at Addr.
	Load
	// Store writes Size bytes at Addr.
	Store
	// Fence is a serializing event: dispatch stalls until the SB (and,
	// under TUS, the WOQ) has drained and all stores are visible.
	Fence
)

// String returns a short mnemonic.
func (k Kind) String() string {
	switch k {
	case Nop:
		return "nop"
	case IntAdd:
		return "iadd"
	case IntMul:
		return "imul"
	case IntDiv:
		return "idiv"
	case FPAdd:
		return "fadd"
	case FPMul:
		return "fmul"
	case FPDiv:
		return "fdiv"
	case Load:
		return "ld"
	case Store:
		return "st"
	case Fence:
		return "fence"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMem reports whether the op accesses memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// IsALU reports whether the op executes on an ALU.
func (k Kind) IsALU() bool { return k >= IntAdd && k <= FPDiv }

// Complex reports whether the op needs a complex (Int/FP/SIMD) ALU
// rather than the simple integer ALU.
func (k Kind) Complex() bool { return k == IntMul || k == IntDiv || (k >= FPAdd && k <= FPDiv) }

// MicroOp is one trace entry.
type MicroOp struct {
	Kind Kind
	// Addr/Size describe the memory access for Load/Store.
	Addr uint64
	Size uint8
	// Dep1/Dep2 are backward distances to producer ops this op consumes
	// (0 = no dependency). A Load with Dep pointing at an older Load
	// models pointer chasing; a Store's Dep models the data producer.
	Dep1 uint16
	Dep2 uint16
}

// String formats the op for debugging.
func (op MicroOp) String() string {
	if op.Kind.IsMem() {
		return fmt.Sprintf("%s [%#x,%d] dep(%d,%d)", op.Kind, op.Addr, op.Size, op.Dep1, op.Dep2)
	}
	return fmt.Sprintf("%s dep(%d,%d)", op.Kind, op.Dep1, op.Dep2)
}

// LineAddr returns the 64-byte cache line address of a memory op.
func (op MicroOp) LineAddr() uint64 { return op.Addr &^ 63 }

// Validate reports structural problems in a trace (bad sizes, deps that
// reach before the start, fences carrying addresses).
func Validate(trace []MicroOp) error {
	for i, op := range trace {
		if op.Kind.IsMem() {
			// Sizes are limited to scalar widths; the store buffer holds
			// at most 8 bytes of data per entry, as do the workloads.
			switch op.Size {
			case 1, 2, 4, 8:
			default:
				return fmt.Errorf("isa: op %d (%s) has invalid size %d", i, op, op.Size)
			}
			if off := op.Addr & 63; uint64(off)+uint64(op.Size) > 64 {
				return fmt.Errorf("isa: op %d (%s) crosses a cache line", i, op)
			}
		} else if op.Addr != 0 || op.Size != 0 {
			return fmt.Errorf("isa: op %d (%s) is non-memory but carries an address", i, op)
		}
		if int(op.Dep1) > i || int(op.Dep2) > i {
			return fmt.Errorf("isa: op %d (%s) depends before trace start", i, op)
		}
	}
	return nil
}

// Stream supplies micro-ops to one hardware thread. Implementations
// must be deterministic.
type Stream interface {
	// Next returns the next op. ok=false signals end of trace.
	Next() (op MicroOp, ok bool)
}

// SliceStream adapts a []MicroOp to a Stream.
type SliceStream struct {
	ops []MicroOp
	pos int
}

// NewSliceStream returns a Stream over ops.
func NewSliceStream(ops []MicroOp) *SliceStream { return &SliceStream{ops: ops} }

// Next implements Stream.
func (s *SliceStream) Next() (MicroOp, bool) {
	if s.pos >= len(s.ops) {
		return MicroOp{}, false
	}
	op := s.ops[s.pos]
	s.pos++
	return op, true
}

// Len returns the total number of ops in the underlying slice.
func (s *SliceStream) Len() int { return len(s.ops) }

// Reset rebinds the cursor to ops and rewinds it, letting a long-lived
// stream struct serve successive (shared, immutable) traces without
// allocating a new cursor per run.
func (s *SliceStream) Reset(ops []MicroOp) {
	s.ops = ops
	s.pos = 0
}
