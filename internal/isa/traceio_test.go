package isa

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	ops := []MicroOp{
		{Kind: IntAdd},
		{Kind: Load, Addr: 0x1000, Size: 8, Dep1: 1},
		{Kind: Store, Addr: 0x2008, Size: 4, Dep2: 2},
		{Kind: Fence},
		{Kind: Load, Addr: 0x1000, Size: 1}, // backwards delta
		{Kind: FPDiv, Dep1: 3, Dep2: 1},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len = %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x00"),
		"bad version": []byte("TUST\x09\x00"),
		"truncated":   []byte("TUST\x01\x05\x07"),
	}
	for name, data := range cases {
		if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadTrace accepted invalid input", name)
		}
	}
}

func TestTraceRejectsInvalidOps(t *testing.T) {
	// A hand-built trace whose op fails Validate (bad size) must be
	// rejected on read even if the encoding is well-formed.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []MicroOp{{Kind: Load, Addr: 0, Size: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err == nil || !strings.Contains(err.Error(), "validation") {
		t.Fatalf("invalid op not rejected: %v", err)
	}
}

// Property: any valid generated trace round-trips bit-exactly.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		ops := synthTrace(seed, int(n))
		var buf bytes.Buffer
		if err := WriteTrace(&buf, ops); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(ops) {
			return false
		}
		for i := range ops {
			if got[i] != ops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// synthTrace builds a deterministic valid trace from a seed.
func synthTrace(seed int64, n int) []MicroOp {
	var ops []MicroOp
	s := uint64(seed)
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		switch s % 5 {
		case 0:
			ops = append(ops, MicroOp{Kind: IntAdd, Dep1: uint16(uint64(i) % 3)})
		case 1:
			ops = append(ops, MicroOp{Kind: Load, Addr: (s >> 8) &^ 7 % (1 << 30), Size: 8})
		case 2:
			ops = append(ops, MicroOp{Kind: Store, Addr: (s >> 16) &^ 7 % (1 << 30), Size: 8})
		case 3:
			ops = append(ops, MicroOp{Kind: FPMul})
		case 4:
			ops = append(ops, MicroOp{Kind: Fence})
		}
	}
	// Clamp deps that might reach before the start.
	for i := range ops {
		if int(ops[i].Dep1) > i {
			ops[i].Dep1 = 0
		}
	}
	return ops
}

func TestTraceCompression(t *testing.T) {
	// Strided addresses should delta-encode compactly: well under the
	// naive 8 bytes per address.
	var ops []MicroOp
	for i := 0; i < 1000; i++ {
		ops = append(ops, MicroOp{Kind: Store, Addr: 0x100000 + uint64(i)*64, Size: 8})
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 1000*7 {
		t.Fatalf("trace encoding too large: %d bytes for 1000 strided stores", buf.Len())
	}
}
