// Package litmus runs classic memory-consistency litmus tests on the
// simulated machine. Each test is a tiny multi-core program with an
// assertion about which final observations x86-TSO forbids; running
// them under every store mechanism checks that TUS (and the
// comparison mechanisms) preserve TSO not just statistically (the
// online checker) but on the canonical adversarial patterns:
//
//   - SB  (store buffering):   r1=0 ^ r2=0 is ALLOWED under TSO
//   - MP  (message passing):   r1=1 ^ r2=0 is FORBIDDEN
//   - LB  (load buffering):    r1=1 ^ r2=1 is FORBIDDEN (no LSR)
//   - SBF (SB + fences):       r1=0 ^ r2=0 is FORBIDDEN
//   - CoWW/CoRR (coherence):   per-location order must hold, for both
//     the write-write and read-read directions
//   - IRIW (independent reads): readers may not disagree on the order
//     of two independent writes (store atomicity)
//   - n6 (store forwarding):   r1=1 ^ r2=0 ^ x=1 is ALLOWED — the
//     forwarding outcome SC and forwarding-free TSO both forbid
//   - RWC (fenced):            r1=1 ^ r2=0 ^ r3=0 is FORBIDDEN
//   - ATOM (atomic group):     a coalesced A,B,A group publishes
//     atomically — no observer may see the second A write before B
//
// Observations are collected over many interleavings by varying
// per-core start skew and filler work; TSO-forbidden outcomes must
// never appear for any skew, and (for ALLOWED tests) the relaxed
// outcome should appear for at least one skew.
package litmus

import (
	"fmt"

	"tusim/internal/audit"
	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/faults"
	"tusim/internal/isa"
	"tusim/internal/system"
	"tusim/internal/tso"
)

// X and Y are the shared variables used by the litmus tests (distinct
// cache lines in the cross-thread shared region).
const (
	X = uint64(1)<<33 + 0*64
	Y = uint64(1)<<33 + 1*64
)

// Thread is one core's program: a sequence of micro-ops where loads
// record observations.
type Thread struct {
	Ops []isa.MicroOp
	// ObsSeqs lists the op indices (by order of appearance among
	// loads) whose values are recorded as r1, r2, ... for this thread.
	ObsSeqs []int
}

// Test is one litmus configuration.
type Test struct {
	Name    string
	Threads []Thread
	// FinalReads lists addresses whose *final* coherent memory value is
	// appended (rank-classified like load observations) to the outcome
	// vector after all recorded loads. The n6 test needs this: its
	// discriminating outcome constrains the final value of x.
	FinalReads []uint64
	// Forbidden returns true if the observation vector (all threads'
	// recorded load values, flattened, then FinalReads values; k means
	// "saw the k-th store to that address in program-scan order", 0
	// means "saw initial memory") violates x86-TSO.
	Forbidden func(obs []uint64) bool
	// WantRelaxed, when set, is an outcome that TSO *allows*; the
	// runner reports whether it was ever observed (it should be, for
	// the SB test — the store buffer is the whole point).
	WantRelaxed func(obs []uint64) bool
}

// delay returns n filler ALU ops (a serial chain, n cycles).
func delay(n int) []isa.MicroOp {
	ops := make([]isa.MicroOp, n)
	for i := range ops {
		ops[i] = isa.MicroOp{Kind: isa.IntAdd, Dep1: 1}
	}
	if n > 0 {
		ops[0].Dep1 = 0
	}
	return ops
}

func st(addr uint64) isa.MicroOp { return isa.MicroOp{Kind: isa.Store, Addr: addr, Size: 8} }
func ld(addr uint64) isa.MicroOp { return isa.MicroOp{Kind: isa.Load, Addr: addr, Size: 8} }

// Tests returns the litmus suite.
func Tests() []Test {
	return []Test{
		{
			// SB: T0: x=1; r1=y   T1: y=1; r2=x
			// TSO allows r1=r2=0 (both loads bypass the buffered store).
			Name: "SB",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), ld(Y)}, ObsSeqs: []int{0}},
				{Ops: []isa.MicroOp{st(Y), ld(X)}, ObsSeqs: []int{0}},
			},
			Forbidden:   func(obs []uint64) bool { return false }, // everything is legal
			WantRelaxed: func(obs []uint64) bool { return obs[0] == 0 && obs[1] == 0 },
		},
		{
			// SB+mfence: the fences forbid r1=r2=0.
			Name: "SB+fences",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), {Kind: isa.Fence}, ld(Y)}, ObsSeqs: []int{0}},
				{Ops: []isa.MicroOp{st(Y), {Kind: isa.Fence}, ld(X)}, ObsSeqs: []int{0}},
			},
			Forbidden: func(obs []uint64) bool { return obs[0] == 0 && obs[1] == 0 },
		},
		{
			// MP: T0: x=1; y=1   T1: r1=y; r2=x
			// Forbidden: r1=1 ^ r2=0 (stores must become visible in order).
			Name: "MP",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), st(Y)}},
				{Ops: append(append([]isa.MicroOp{ld(Y)}, delay(8)...), ld(X)), ObsSeqs: []int{0, 1}},
			},
			Forbidden: func(obs []uint64) bool { return obs[0] == 1 && obs[1] == 0 },
		},
		{
			// MP with the two stores coalescing into one atomic group
			// (x and y adjacent lines, plus a cycle back to x): the
			// group publishes atomically, so ordering still holds.
			Name: "MP+cycle",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), st(Y), {Kind: isa.Store, Addr: X + 8, Size: 8}}},
				{Ops: append(append([]isa.MicroOp{ld(Y)}, delay(8)...), ld(X)), ObsSeqs: []int{0, 1}},
			},
			Forbidden: func(obs []uint64) bool { return obs[0] == 1 && obs[1] == 0 },
		},
		{
			// ATOM: the atomic group {X, Y} (via the cycle X,Y,X+8) may
			// never be observed half-published in either direction:
			// seeing the second X write (X+8) implies seeing Y, and
			// seeing Y implies seeing the first X write.
			Name: "ATOM",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), st(Y), {Kind: isa.Store, Addr: X + 8, Size: 8}}},
				{Ops: []isa.MicroOp{{Kind: isa.Load, Addr: X + 8, Size: 8}, ld(Y), ld(X)}, ObsSeqs: []int{0, 1, 2}},
			},
			Forbidden: func(obs []uint64) bool {
				// obs[0]=saw X+8 write, obs[1]=saw Y, obs[2]=saw X.
				if obs[0] == 1 && (obs[1] == 0 || obs[2] == 0) {
					return true // second X write visible without the group
				}
				return obs[1] == 1 && obs[2] == 0 // Y visible before older X
			},
		},
		{
			// CoWW + CoRW: same-location writes by one core must be
			// observed in order by another core polling the location.
			Name: "CoWW",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), {Kind: isa.Store, Addr: X, Size: 8}}},
				{Ops: append(append([]isa.MicroOp{ld(X)}, delay(8)...), ld(X)), ObsSeqs: []int{0, 1}},
			},
			// Observation encodes which write was seen: 0 (init),
			// 1 (first write) or 2 (second). Going backwards is forbidden.
			Forbidden: func(obs []uint64) bool { return obs[1] < obs[0] },
		},
		{
			// CoRR: same-location reads by one core must not observe a
			// write and then un-observe it (per-location coherence, the
			// read-read half of the CoWW pair).
			Name: "CoRR",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X)}},
				{Ops: append(append([]isa.MicroOp{ld(X)}, delay(8)...), ld(X)), ObsSeqs: []int{0, 1}},
			},
			Forbidden: func(obs []uint64) bool { return obs[1] < obs[0] },
		},
		{
			// LB: T0: r1=x; y=1   T1: r2=y; x=1
			// TSO keeps loads before their later stores: r1=1 ^ r2=1
			// would need both loads to read the other thread's later
			// store — forbidden.
			Name: "LB",
			Threads: []Thread{
				{Ops: []isa.MicroOp{ld(X), st(Y)}, ObsSeqs: []int{0}},
				{Ops: []isa.MicroOp{ld(Y), st(X)}, ObsSeqs: []int{0}},
			},
			Forbidden: func(obs []uint64) bool { return obs[0] == 1 && obs[1] == 1 },
		},
		{
			// IRIW: two writers, two readers. TSO's store atomicity
			// forbids the readers disagreeing on the store order:
			// r1=1,r2=0 says x=1 happened before y=1; r3=1,r4=0 says the
			// opposite.
			Name: "IRIW",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X)}},
				{Ops: []isa.MicroOp{st(Y)}},
				{Ops: append(append([]isa.MicroOp{ld(X)}, delay(8)...), ld(Y)), ObsSeqs: []int{0, 1}},
				{Ops: append(append([]isa.MicroOp{ld(Y)}, delay(8)...), ld(X)), ObsSeqs: []int{0, 1}},
			},
			Forbidden: func(obs []uint64) bool {
				return obs[0] == 1 && obs[1] == 0 && obs[2] == 1 && obs[3] == 0
			},
		},
		{
			// n6 (Owens/Sarkar/Sewell): T0: x=1; r1=x; r2=y
			//                           T1: y=1; x=2
			// The discriminating outcome r1=1 ^ r2=0 ^ final x=1 is
			// ALLOWED under x86-TSO (store forwarding lets T0 read its
			// own buffered x=1 while both its drain and T1's stores float
			// around it) but forbidden without forwarding. The full
			// allowed set is small, so forbid by complement.
			Name: "n6",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X), ld(X), ld(Y)}, ObsSeqs: []int{0, 1}},
				{Ops: []isa.MicroOp{st(Y), st(X)}},
			},
			FinalReads: []uint64{X},
			Forbidden: func(obs []uint64) bool {
				for _, a := range n6Allowed {
					if obs[0] == a[0] && obs[1] == a[1] && obs[2] == a[2] {
						return false
					}
				}
				return true
			},
			WantRelaxed: func(obs []uint64) bool {
				return obs[0] == 1 && obs[1] == 0 && obs[2] == 1
			},
		},
		{
			// RWC (read-to-write causality, fenced): T0: x=1
			//   T1: r1=x; r2=y   T2: y=1; mfence; r3=x
			// r1=1 ^ r2=0 places x=1 before y=1 in the store order; the
			// fence forces T2's read after its own y=1, so r3=0 would
			// place y=1 before x=1 — forbidden. (Without the fence TSO
			// allows it: T2 may read x while y=1 sits in its buffer.)
			Name: "RWC",
			Threads: []Thread{
				{Ops: []isa.MicroOp{st(X)}},
				{Ops: append(append([]isa.MicroOp{ld(X)}, delay(8)...), ld(Y)), ObsSeqs: []int{0, 1}},
				{Ops: []isa.MicroOp{st(Y), {Kind: isa.Fence}, ld(X)}, ObsSeqs: []int{0}},
			},
			Forbidden: func(obs []uint64) bool {
				return obs[0] == 1 && obs[1] == 0 && obs[2] == 0
			},
		},
	}
}

// n6Allowed is the hand-derived x86-TSO outcome table for n6 over
// (r1, r2, final x): r1 always sees at least T0's own x=1 (mandatory
// forwarding), r1=2 requires T0's own store already drained and
// overwritten (forcing final x=2 and, transitively, r2=1).
var n6Allowed = [][3]uint64{
	{1, 0, 1}, {1, 0, 2}, {1, 1, 1}, {1, 1, 2}, {2, 1, 2},
}

// Result summarizes one litmus test under one mechanism.
type Result struct {
	Test       string
	Mech       config.Mechanism
	Runs       int
	Violations int
	// RelaxedSeen reports whether the WantRelaxed outcome appeared.
	RelaxedSeen bool
	// Outcomes maps the observation vector (stringified) to its count.
	Outcomes map[string]int
}

// Opts tunes a litmus run beyond the plain configuration.
type Opts struct {
	// Faults, when non-nil, installs seeded fault injection.
	Faults *faults.Plan
	// Source, when non-nil alongside Faults, overrides the injector's
	// decision source (the model checker's scripted-schedule hook).
	Source faults.DecisionSource
	// AuditEvery, when nonzero, attaches the invariant auditor at the
	// given cadence (cycles).
	AuditEvery uint64
	// Watchdog, when nonzero, overrides the no-progress window.
	Watchdog uint64
}

// Run executes a litmus test under a mechanism across `skews`
// different relative start offsets and returns the outcome census.
func Run(test Test, m config.Mechanism, skews int) (Result, error) {
	return RunOpts(test, m, skews, Opts{})
}

// RunOpts is Run with chaos options applied to every skew.
func RunOpts(test Test, m config.Mechanism, skews int, o Opts) (Result, error) {
	res := Result{Test: test.Name, Mech: m, Outcomes: map[string]int{}}
	for skew := 0; skew < skews; skew++ {
		obs, err := RunOne(test, m, skew, o)
		if err != nil {
			return res, err
		}
		res.Runs++
		key := fmt.Sprint(obs)
		res.Outcomes[key]++
		if test.Forbidden != nil && test.Forbidden(obs) {
			res.Violations++
		}
		if test.WantRelaxed != nil && test.WantRelaxed(obs) {
			res.RelaxedSeen = true
		}
	}
	return res, nil
}

// RunOne executes the test once with per-thread start skews and
// classifies each observed load value: 0 = initial memory, k = the
// k-th store (in program order) to that address anywhere in the test.
// The TSO checker is always attached; o adds fault injection and the
// invariant auditor. A returned error may be a *system.CrashReport.
func RunOne(test Test, m config.Mechanism, skew int, o Opts) ([]uint64, error) {
	cores := len(test.Threads)
	cfg := config.Default().WithMechanism(m).WithCores(cores)
	cfg.StreamPrefetcher = false
	if o.Watchdog != 0 {
		cfg.WatchdogWindow = o.Watchdog
	}

	type obsKey struct{ core, loadIdx int }
	streams := make([]isa.Stream, cores)
	obsOrder := make([]obsKey, 0, 4)
	loadSeqOf := make([]map[int]int, cores)
	valueRank := map[[8]byte]uint64{}
	addrCount := map[uint64]int{}
	for c, th := range test.Threads {
		pre := delay(1 + skew*(7+6*c)%97)
		ops := append(append([]isa.MicroOp{}, pre...), th.Ops...)
		loadSeqOf[c] = map[int]int{}
		li := 0
		for i, op := range th.Ops {
			seq := len(pre) + i
			switch op.Kind {
			case isa.Load:
				loadSeqOf[c][li] = seq
				li++
			case isa.Store:
				addrCount[op.Addr]++
				valueRank[cpu.StoreValue(c, uint64(seq))] = uint64(addrCount[op.Addr])
			}
		}
		for _, oi := range th.ObsSeqs {
			obsOrder = append(obsOrder, obsKey{c, oi})
		}
		streams[c] = isa.NewSliceStream(ops)
	}

	sys, err := system.New(cfg, streams)
	if err != nil {
		return nil, err
	}
	ck := tso.NewChecker(cores)
	sys.SetObserver(ck)
	if o.Faults != nil {
		if o.Source != nil {
			sys.InstallFaults(faults.NewInjectorWithSource(*o.Faults, o.Source))
		} else {
			sys.InstallFaults(faults.NewInjector(*o.Faults))
		}
	}
	if o.AuditEvery != 0 {
		audit.Install(sys, o.AuditEvery)
	}

	// Capture load values keyed by (core, seq), preserving the
	// checker's observer hook.
	loadVals := map[[2]uint64][8]byte{}
	for i := range sys.Cores {
		i := i
		prev := sys.Cores[i].OnLoadValue
		sys.Cores[i].OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) {
			if prev != nil {
				prev(core, seq, addr, size, v)
			}
			loadVals[[2]uint64{uint64(i), seq}] = v
		}
	}

	if err := sys.Run(); err != nil {
		return nil, fmt.Errorf("litmus %s/%v skew %d: %w", test.Name, m, skew, err)
	}
	ck.Finish()
	if err := ck.Err(); err != nil {
		return nil, fmt.Errorf("litmus %s/%v skew %d: %w", test.Name, m, skew, err)
	}

	out := make([]uint64, 0, len(obsOrder)+len(test.FinalReads))
	for _, k := range obsOrder {
		seq := loadSeqOf[k.core][k.loadIdx]
		v, ok := loadVals[[2]uint64{uint64(k.core), uint64(seq)}]
		if !ok {
			return nil, fmt.Errorf("litmus %s: observation load never bound", test.Name)
		}
		out = append(out, valueRank[v]) // zero value -> rank 0 (initial)
	}
	for _, addr := range test.FinalReads {
		var v [8]byte
		for i := range v {
			v[i] = sys.ReadCoherent(addr + uint64(i))
		}
		out = append(out, valueRank[v])
	}
	return out, nil
}
