package litmus

import (
	"testing"

	"tusim/internal/isa"
)

// TestProgramExport: every suite test must export to the checkable IR,
// with filler ops stripped, ranks assigned in scan order, and outcome
// slots matching RunOne's layout.
func TestProgramExport(t *testing.T) {
	for _, lt := range Tests() {
		p, err := lt.Program()
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		wantObs := 0
		for _, th := range lt.Threads {
			wantObs += len(th.ObsSeqs)
		}
		if p.NumObs != wantObs {
			t.Errorf("%s: NumObs = %d, want %d", lt.Name, p.NumObs, wantObs)
		}
		if p.OutcomeLen() != wantObs+len(lt.FinalReads) {
			t.Errorf("%s: OutcomeLen = %d, want %d", lt.Name, p.OutcomeLen(), wantObs+len(lt.FinalReads))
		}
		for c, ops := range p.Threads {
			for i, op := range ops {
				if op.Kind != isa.Store && op.Kind != isa.Load && op.Kind != isa.Fence {
					t.Errorf("%s: thread %d op %d: non-IR kind %v survived export", lt.Name, c, i, op.Kind)
				}
			}
		}
	}
}

// TestProgramRanks: the IR's store ranks must replicate RunOne's
// program-scan rank assignment (CoWW has two stores to one address).
func TestProgramRanks(t *testing.T) {
	for _, lt := range Tests() {
		if lt.Name != "CoWW" {
			continue
		}
		p, err := lt.Program()
		if err != nil {
			t.Fatal(err)
		}
		var ranks []uint64
		for _, op := range p.Threads[0] {
			if op.Kind == isa.Store {
				ranks = append(ranks, op.Val)
			}
		}
		if len(ranks) != 2 || ranks[0] != 1 || ranks[1] != 2 {
			t.Fatalf("CoWW store ranks = %v, want [1 2]", ranks)
		}
	}
}

// TestProgramRejectsSubWordAccess: the IR models 8-byte locations; a
// narrower access must be rejected, not silently mis-modeled.
func TestProgramRejectsSubWordAccess(t *testing.T) {
	bad := Test{
		Name: "bad",
		Threads: []Thread{
			{Ops: []isa.MicroOp{{Kind: isa.Store, Addr: X, Size: 4}}},
		},
	}
	if _, err := bad.Program(); err == nil {
		t.Fatal("4-byte store exported without error")
	}
}
