package litmus

import (
	"fmt"

	"tusim/internal/isa"
)

// ProgOp is one instruction of the checkable IR: a memory-model-visible
// operation with the bookkeeping the oracle needs and nothing else
// (filler ALU ops, which exist only to shape simulator timing, are
// stripped).
type ProgOp struct {
	// Kind is isa.Store, isa.Load, or isa.Fence.
	Kind isa.Kind
	// Addr is the 8-byte-aligned location (Store/Load).
	Addr uint64
	// Val is the store's rank: the k-th store to Addr in program-scan
	// order writes k, matching the rank classification RunOne applies
	// to the simulator's observed values.
	Val uint64
	// Obs is the outcome-vector slot this load's value lands in, or -1
	// for loads whose value the test does not record.
	Obs int
}

// Program is a litmus test in checkable IR form: per-thread operation
// lists over ranked store values, plus the final-memory observations.
// Outcome vectors are len(NumObs)+len(FinalReads) ranks, laid out
// exactly like RunOne's: recorded loads in thread-major ObsSeqs order,
// then FinalReads.
type Program struct {
	Name    string
	Threads [][]ProgOp
	// NumObs is the number of recorded-load slots.
	NumObs int
	// FinalReads lists addresses observed after termination.
	FinalReads []uint64
}

// OutcomeLen is the length of this program's outcome vectors.
func (p Program) OutcomeLen() int { return p.NumObs + len(p.FinalReads) }

// Program exports the test in checkable IR form. It fails on tests the
// oracle cannot model exactly: memory ops that are not 8 aligned bytes
// (the IR models locations at 8-byte granularity, which every litmus
// pattern in the suite uses).
func (t Test) Program() (Program, error) {
	p := Program{Name: t.Name, FinalReads: append([]uint64(nil), t.FinalReads...)}

	// Outcome slots in RunOne's order: threads in order, each thread's
	// ObsSeqs in order.
	type loadKey struct{ thread, loadIdx int }
	obsSlot := map[loadKey]int{}
	for c, th := range t.Threads {
		for _, oi := range th.ObsSeqs {
			obsSlot[loadKey{c, oi}] = p.NumObs
			p.NumObs++
		}
	}

	addrCount := map[uint64]int{}
	for c, th := range t.Threads {
		var ops []ProgOp
		li := 0
		for i, op := range th.Ops {
			switch op.Kind {
			case isa.Store, isa.Load:
				if op.Size != 8 || op.Addr%8 != 0 {
					return Program{}, fmt.Errorf("litmus %s: thread %d op %d (%s) is not an aligned 8-byte access",
						t.Name, c, i, op)
				}
			}
			switch op.Kind {
			case isa.Store:
				addrCount[op.Addr]++
				ops = append(ops, ProgOp{Kind: isa.Store, Addr: op.Addr, Val: uint64(addrCount[op.Addr])})
			case isa.Load:
				obs := -1
				if s, ok := obsSlot[loadKey{c, li}]; ok {
					obs = s
				}
				ops = append(ops, ProgOp{Kind: isa.Load, Addr: op.Addr, Obs: obs})
				li++
			case isa.Fence:
				ops = append(ops, ProgOp{Kind: isa.Fence})
			}
		}
		p.Threads = append(p.Threads, ops)
	}
	for _, addr := range p.FinalReads {
		if addr%8 != 0 {
			return Program{}, fmt.Errorf("litmus %s: final read %#x is not 8-byte aligned", t.Name, addr)
		}
	}
	return p, nil
}
