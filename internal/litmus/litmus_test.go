package litmus

import (
	"testing"

	"tusim/internal/config"
)

// TestForbiddenOutcomesNeverAppear runs every litmus test under every
// mechanism across many interleavings: TSO-forbidden outcomes must
// never be observed.
func TestForbiddenOutcomesNeverAppear(t *testing.T) {
	for _, lt := range Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			for _, m := range config.Mechanisms {
				res, err := Run(lt, m, 12)
				if err != nil {
					t.Fatalf("[%v] %v", m, err)
				}
				if res.Violations != 0 {
					t.Errorf("[%v] %d/%d runs produced TSO-forbidden outcomes: %v",
						m, res.Violations, res.Runs, res.Outcomes)
				}
			}
		})
	}
}

// TestStoreBufferingRelaxationObservable: the r1=r2=0 outcome of the SB
// litmus is the store buffer's signature; at least one mechanism and
// skew must expose it (all of them buffer stores).
func TestStoreBufferingRelaxationObservable(t *testing.T) {
	var sb Test
	for _, lt := range Tests() {
		if lt.Name == "SB" {
			sb = lt
		}
	}
	for _, m := range config.Mechanisms {
		res, err := Run(sb, m, 12)
		if err != nil {
			t.Fatalf("[%v] %v", m, err)
		}
		if !res.RelaxedSeen {
			t.Errorf("[%v] never observed r1=r2=0 on the SB litmus; store buffering not visible (outcomes: %v)",
				m, res.Outcomes)
		}
	}
}

// TestFenceForbidsRelaxation: with mfences the SB relaxation must
// disappear under every mechanism (fences flush the SB and, for TUS,
// the WOQ).
func TestFenceForbidsRelaxation(t *testing.T) {
	var sbf Test
	for _, lt := range Tests() {
		if lt.Name == "SB+fences" {
			sbf = lt
		}
	}
	for _, m := range config.Mechanisms {
		res, err := Run(sbf, m, 12)
		if err != nil {
			t.Fatalf("[%v] %v", m, err)
		}
		if res.Violations != 0 {
			t.Errorf("[%v] fenced store buffering leaked: %v", m, res.Outcomes)
		}
	}
}

// TestMessagePassingOrderUnderTUS focuses the MP pattern on TUS with
// more skews (the WOQ's in-order publication is exactly what it tests).
func TestMessagePassingOrderUnderTUS(t *testing.T) {
	for _, name := range []string{"MP", "MP+cycle", "ATOM", "CoWW"} {
		for _, lt := range Tests() {
			if lt.Name != name {
				continue
			}
			res, err := Run(lt, config.TUS, 24)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Violations != 0 {
				t.Errorf("%s under TUS: %d violations (%v)", name, res.Violations, res.Outcomes)
			}
		}
	}
}
