package system

import (
	"fmt"

	"tusim/internal/faults"
	"tusim/internal/tus"
)

// MSHRSnapshot is one in-flight miss at crash time.
type MSHRSnapshot struct {
	Line     uint64 `json:"line"`
	Born     uint64 `json:"born"`
	WantM    bool   `json:"want_m"`
	Prefetch bool   `json:"prefetch"`
}

// CoreSnapshot is one core's architectural-ish state at crash time:
// enough to see what the store machinery was doing without a debugger.
type CoreSnapshot struct {
	Core        int            `json:"core"`
	Committed   uint64         `json:"committed"`
	SBLen       int            `json:"sb_len"`
	SBOverflows uint64         `json:"sb_overflows"`
	WOQ         []tus.WOQInfo  `json:"woq,omitempty"`
	MSHRs       []MSHRSnapshot `json:"mshrs,omitempty"`
}

// Crash kinds.
const (
	// CrashWatchdog: no core committed anything for a full watchdog
	// window (deadlock or livelock).
	CrashWatchdog = "watchdog"
	// CrashInvariant: protocol code panicked with a ProtocolError.
	CrashInvariant = "invariant"
	// CrashAudit: the periodic invariant auditor found an inconsistency.
	CrashAudit = "audit"
	// CrashMaxCycles: the run exceeded Config.MaxCycles.
	CrashMaxCycles = "max-cycles"
	// CrashPanic: the simulation goroutine panicked with something other
	// than a ProtocolError (a plain Go bug). Assembled by PanicReport in
	// the supervision layer, so no machine state is attached.
	CrashPanic = "panic"
)

// CrashReport is the typed error system.Run returns when the machine
// dies. It carries everything needed to triage — and, combined with the
// workload description the harness adds, to replay — the failure.
type CrashReport struct {
	Kind      string `json:"kind"`
	Cycle     uint64 `json:"cycle"`
	Mechanism string `json:"mechanism"`
	Cores     int    `json:"cores"`
	Message   string `json:"message"`
	// Violation is set for invariant/audit crashes.
	Violation *faults.ProtocolError `json:"violation,omitempty"`
	// FaultPlan is the injected fault schedule, if any (Seed 0 and all
	// rates zero when the run was fault-free).
	FaultPlan faults.Plan    `json:"fault_plan"`
	PerCore   []CoreSnapshot `json:"per_core"`
	// Stack is the captured goroutine stack for panic crashes.
	Stack string `json:"stack,omitempty"`
}

// Error implements error.
func (r *CrashReport) Error() string {
	return fmt.Sprintf("system: %s crash at cycle %d (%s, %d cores): %s",
		r.Kind, r.Cycle, r.Mechanism, r.Cores, r.Message)
}

// PanicReport converts a recovered panic into a CrashReport so the
// supervision layer can route Go-level bugs through the same
// classification and crash-to-repro pipeline as protocol crashes. No
// machine is available at the recovery site, so the report carries only
// the panic payload and stack.
func PanicReport(value any, stack []byte) *CrashReport {
	return &CrashReport{
		Kind:    CrashPanic,
		Message: fmt.Sprintf("panic: %v", value),
		Stack:   string(stack),
	}
}

// Transient reports whether retrying the crashed run could plausibly
// succeed. Only a watchdog trip under active fault injection qualifies:
// chaos schedules deliberately stall the machine, so a no-progress
// window may be pressure rather than a real deadlock. Everything else —
// invariant violations, auditor trips, cycle-budget overruns, panics,
// and watchdog trips on a fault-free (fully deterministic) run — will
// recur on every retry and must quarantine immediately.
func (r *CrashReport) Transient() bool {
	return r.Kind == CrashWatchdog && r.FaultPlan.Enabled()
}

// Deterministic is the complement of Transient.
func (r *CrashReport) Deterministic() bool { return !r.Transient() }

// Classification renders the transient/deterministic verdict for
// crash-to-repro bundles and logs.
func (r *CrashReport) Classification() string {
	if r.Transient() {
		return "transient"
	}
	return "deterministic"
}

// crash assembles a CrashReport from the machine's current state.
func (s *System) crash(kind string, violation *faults.ProtocolError, message string) *CrashReport {
	r := &CrashReport{
		Kind:      kind,
		Cycle:     s.Q.Now(),
		Mechanism: s.Cfg.Mechanism.String(),
		Cores:     s.Cfg.Cores,
		Message:   message,
		Violation: violation,
		FaultPlan: s.faults.Plan(),
	}
	for i, c := range s.Cores {
		snap := CoreSnapshot{
			Core:        i,
			Committed:   s.CoreStats[i].Get("committed_ops"),
			SBLen:       c.SB.Len(),
			SBOverflows: c.SB.Overflows,
		}
		if t, ok := s.Mechs[i].(*tus.TUS); ok {
			snap.WOQ = t.AuditWOQ()
		}
		s.Privs[i].AuditMSHRs(func(line, born uint64, wantM, prefetch bool) {
			snap.MSHRs = append(snap.MSHRs, MSHRSnapshot{Line: line, Born: born, WantM: wantM, Prefetch: prefetch})
		})
		r.PerCore = append(r.PerCore, snap)
	}
	return r
}

// InstallFaults wires a fault injector into every layer of the machine
// (directory, private hierarchies, TUS drain) and schedules the plan's
// sabotage, if any. Call before Run. A nil injector is a no-op.
func (s *System) InstallFaults(in *faults.Injector) {
	s.faults = in
	if in == nil {
		return
	}
	s.Dir.SetFaults(in)
	for i, p := range s.Privs {
		p.SetFaults(in)
		if t, ok := s.Mechs[i].(*tus.TUS); ok {
			t.SetFaults(in, s.CoreStats[i])
		}
	}
	if spec := in.Plan().SabotageSpec; spec.Kind != "" {
		s.scheduleSabotage(spec)
	}
}

// scheduleSabotage retries the corruption once per cycle from
// spec.Cycle until a candidate exists, so a given seed always corrupts
// the same state at the same cycle.
func (s *System) scheduleSabotage(spec faults.Sabotage) {
	if spec.Core < 0 || spec.Core >= len(s.Privs) {
		return
	}
	s.Q.At(spec.Cycle, func() {
		s.Q.Every(1, func() bool {
			return !s.trySabotage(spec) // keep retrying until it lands
		})
	})
}

func (s *System) trySabotage(spec faults.Sabotage) bool {
	switch spec.Kind {
	case faults.SabotageHideLine:
		_, ok := s.Privs[spec.Core].SabotageHideLine()
		return ok
	case faults.SabotageDropOwner:
		target, found := uint64(0), false
		s.Dir.AuditEntries(func(line uint64, owner int, _ uint64, busy bool, _ uint64) {
			if found || busy || owner != spec.Core {
				return
			}
			// Only corrupt a settled line (no miss or writeback in
			// flight) the private really holds: the resulting
			// directory/private disagreement is then unambiguous.
			p := s.Privs[spec.Core]
			if p.MSHRPending(line) || p.WBPending(line) || !p.Writable(line) {
				return
			}
			pl := p.Lookup(line)
			if pl == nil || pl.NotVisible {
				return
			}
			target, found = line, true
		})
		return found && s.Dir.SabotageDropOwner(target)
	}
	return true // unknown kind: stop retrying
}
