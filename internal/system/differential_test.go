package system

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/workload"
)

// TestRefContainersWholeSystemIdentity is the whole-machine half of the
// differential state-identity rig (the memsys package holds the
// per-drain-point half): every mechanism runs the same workload twice,
// once on the open-addressed/pooled fast containers and once on the
// reference containers, and the complete runs must agree on cycle
// count and every statistic. Combined with `go test -tags tus_ref
// ./...` — which replays the entire suite, golden figures included, on
// the reference containers — this pins observational equivalence of
// the two container implementations at full-system scale.
func TestRefContainersWholeSystemIdentity(t *testing.T) {
	run := func(t *testing.T, m config.Mechanism, bench string, threads bool, ref bool) (uint64, string) {
		b, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		cfg := config.Default().WithMechanism(m)
		if threads {
			cfg = cfg.WithCores(b.Threads)
		}
		cfg.RefContainers = ref
		ops := 6000
		sys, err := New(cfg, b.Streams(3, ops))
		if err != nil {
			t.Fatal(err)
		}
		sys.WarmupOps = uint64(ops) * uint64(cfg.Cores) / 3
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Cycles, sys.StatsSum().String()
	}

	cases := []struct {
		m       config.Mechanism
		bench   string
		threads bool
	}{
		{config.TUS, "502.gcc2", false},
		{config.Baseline, "505.mcf", false},
		{config.CSB, "502.gcc5", false},
		{config.TUS, "fluidanimate", true}, // 16-core: directory + probe traffic
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.m.String()+"/"+tc.bench, func(t *testing.T) {
			fastCycles, fastStats := run(t, tc.m, tc.bench, tc.threads, false)
			refCycles, refStats := run(t, tc.m, tc.bench, tc.threads, true)
			if fastCycles != refCycles {
				t.Fatalf("cycle divergence: fast=%d ref=%d", fastCycles, refCycles)
			}
			if fastStats != refStats {
				t.Fatalf("stats divergence:\nfast:\n%s\nref:\n%s", fastStats, refStats)
			}
		})
	}
}
