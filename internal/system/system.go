// Package system assembles a complete simulated machine: cores,
// private cache hierarchies, prefetchers, the directory/LLC, DRAM, and
// the selected store-handling mechanism, all driven by one event queue.
package system

import (
	"fmt"

	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/isa"
	"tusim/internal/mech"
	"tusim/internal/memsys"
	"tusim/internal/prefetch"
	"tusim/internal/stats"
	"tusim/internal/trace"
	"tusim/internal/tus"
)

// Auditor walks the machine's global state and reports the first
// invariant violation it finds (nil when everything is consistent).
// The audit package implements this; system only defines the interface
// so the dependency points outward.
type Auditor interface {
	Audit(cycle uint64) *faults.ProtocolError
}

// Observer receives the architectural event stream (the TSO checker
// implements this; a nil observer costs nothing).
type Observer interface {
	// StoreExecuted fires when a store's data becomes forwardable.
	StoreExecuted(core int, seq, addr uint64, size uint8, value [8]byte)
	// StoreCommitted fires when a store commits, with its final data.
	StoreCommitted(core int, seq, addr uint64, size uint8, value [8]byte)
	// StoreVisible fires when bytes become globally visible.
	StoreVisible(core int, cycle uint64, line uint64, mask memsys.Mask, data *memsys.LineData)
	// LoadBound fires when a load's value binds.
	LoadBound(core int, cycle uint64, seq, addr uint64, size uint8, value [8]byte)
}

// System is one simulated machine.
type System struct {
	Cfg   *config.Config
	Q     *event.Queue
	Mem   *memsys.Memory
	Dir   *memsys.Directory
	Cores []*cpu.Core
	Privs []*memsys.Private
	Mechs []cpu.DrainMechanism

	SysStats  *stats.Set
	CoreStats []*stats.Set
	Cycles    uint64
	observer  Observer
	tracer    *trace.Tracer
	dram      *memsys.DRAM
	faults    *faults.Injector
	auditErr  *faults.ProtocolError

	// WarmupOps discards statistics until this many micro-ops have
	// committed machine-wide (the paper warms for 200M instructions
	// before its 2B-instruction measurement windows). Cycles and all
	// counters then cover only the post-warmup region.
	WarmupOps uint64
	warmCycle uint64
	warmed    bool
}

// New builds a machine running one micro-op stream per core.
// len(streams) must equal cfg.Cores.
func New(cfg *config.Config, streams []isa.Stream) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("system: %d streams for %d cores", len(streams), cfg.Cores)
	}
	s := &System{
		Cfg:      cfg,
		Q:        event.NewQueueRef(cfg.RefScheduler || event.DefaultRef),
		Mem:      memsys.NewMemory(),
		SysStats: stats.NewSet("sys"),
	}
	s.dram = memsys.NewDRAM(s.Q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	s.Dir = memsys.NewDirectory(cfg, s.Q, s.Mem, s.dram, s.SysStats)

	s.Privs = make([]*memsys.Private, cfg.Cores)
	s.Cores = make([]*cpu.Core, cfg.Cores)
	s.Mechs = make([]cpu.DrainMechanism, cfg.Cores)
	s.CoreStats = make([]*stats.Set, cfg.Cores)

	for i := 0; i < cfg.Cores; i++ {
		st := stats.NewSet(fmt.Sprintf("core%d", i))
		s.CoreStats[i] = st
		priv := memsys.NewPrivate(i, cfg, s.Q, s.Dir, st)
		s.Privs[i] = priv
		core := cpu.NewCore(i, cfg, s.Q, priv, streams[i], st)
		s.Cores[i] = core

		if cfg.StreamPrefetcher {
			sp := prefetch.NewStream(priv, cfg.StreamPrefetchDegree, st)
			priv.OnDemandMiss = sp.OnMiss
		}

		var m cpu.DrainMechanism
		switch cfg.Mechanism {
		case config.Baseline:
			m = mech.NewBase(core, st)
		case config.TUS:
			m = tus.New(core, cfg, s.Q, st)
		case config.SSB:
			m = mech.NewSSB(core, cfg, s.Q, st)
		case config.CSB:
			m = mech.NewCSB(core, cfg, st)
		case config.SPB:
			m = mech.NewBase(core, st)
			spb := prefetch.NewSPB(priv, cfg.SPBBurstThreshold, cfg.SPBPageBytes, st)
			core.OnStoreCommit = append(core.OnStoreCommit, spb.OnStoreCommit)
		default:
			return nil, fmt.Errorf("system: unknown mechanism %v", cfg.Mechanism)
		}
		s.Mechs[i] = m
		core.SetMechanism(m)
	}
	s.Dir.Attach(s.Privs)
	for _, core := range s.Cores {
		// Commit-time re-binding of snooped loads reads the machine's
		// visible coherent state (observational only; no timing).
		core.ReadVisible = func(addr uint64, size uint8) [8]byte {
			var v [8]byte
			for i := uint8(0); i < size; i++ {
				v[i] = s.ReadCoherent(addr + uint64(i))
			}
			return v
		}
	}
	return s, nil
}

// SetObserver installs an architectural event observer (before Run).
func (s *System) SetObserver(o Observer) {
	s.observer = o
	for i := range s.Cores {
		i := i
		core := s.Cores[i]
		priv := s.Privs[i]
		core.OnStoreData = func(seq, addr uint64, size uint8, value [8]byte) {
			o.StoreCommitted(i, seq, addr, size, value)
		}
		core.OnStoreExec = func(seq, addr uint64, size uint8, value [8]byte) {
			o.StoreExecuted(i, seq, addr, size, value)
		}
		core.OnLoadValue = func(c int, seq, addr uint64, size uint8, value [8]byte) {
			o.LoadBound(c, s.Q.Now(), seq, addr, size, value)
		}
		priv.OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
			o.StoreVisible(i, s.Q.Now(), line, mask, data)
		}
	}
}

// tracerSetter is implemented by every component that accepts a
// lifecycle tracer. Mechanisms opt in by implementing it; Base/SPB
// drain through the SB pop hook and need no tracer of their own.
type tracerSetter interface{ SetTracer(*trace.Tracer) }

// SetTracer attaches a store-lifecycle tracer to every layer of the
// machine (cores, private hierarchies, directory, mechanisms). Pass nil
// to detach. Tracing is observational only: timing, stats, and figures
// are byte-identical with it on or off.
func (s *System) SetTracer(t *trace.Tracer) {
	s.tracer = t
	s.Dir.SetTracer(t)
	for _, c := range s.Cores {
		c.SetTracer(t)
	}
	for _, p := range s.Privs {
		p.SetTracer(t)
	}
	for _, m := range s.Mechs {
		if ts, ok := m.(tracerSetter); ok {
			ts.SetTracer(t)
		}
	}
}

// Tracer returns the tracer installed with SetTracer (nil when none).
func (s *System) Tracer() *trace.Tracer { return s.tracer }

// SetAuditor schedules a periodic state-invariant audit (before Run).
// The audit rides the event queue, so it interleaves deterministically
// with the simulation; a violation aborts the run with a CrashReport.
func (s *System) SetAuditor(a Auditor, every uint64) {
	s.Q.Every(every, func() bool {
		if s.auditErr != nil {
			return false
		}
		if pe := a.Audit(s.Q.Now()); pe != nil {
			s.auditErr = pe
			return false
		}
		return true
	})
}

// Run simulates until every core retires its trace and drains. On
// deadlock/livelock (watchdog), MaxCycles overrun, a protocol-code
// invariant panic, or an auditor violation it returns a *CrashReport
// (retrieve with errors.As) carrying per-core state snapshots.
func (s *System) Run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			pe, ok := r.(*faults.ProtocolError)
			if !ok {
				// Not a protocol invariant: a genuine harness bug, let
				// it kill the process with its original stack.
				panic(r)
			}
			err = s.crash(CrashInvariant, pe, pe.Error())
		}
	}()
	watchdogWindow := s.Cfg.WatchdogWindow
	if watchdogWindow == 0 {
		watchdogWindow = config.DefaultWatchdogWindow
	}
	lastProgress := s.Q.Now()
	lastCommitted := uint64(0)
	for {
		done := true
		for _, c := range s.Cores {
			if !c.Done() {
				done = false
				break
			}
		}
		if done {
			s.Cycles = s.Q.Now() - s.warmCycle
			s.finalizeStats()
			return nil
		}
		if s.Q.Now() >= s.Cfg.MaxCycles {
			return s.crash(CrashMaxCycles, nil,
				fmt.Sprintf("exceeded MaxCycles=%d", s.Cfg.MaxCycles))
		}
		committed := uint64(0)
		for _, st := range s.CoreStats {
			committed += st.Get("committed_ops")
		}
		if !s.warmed && s.WarmupOps > 0 && committed >= s.WarmupOps {
			s.warmed = true
			s.warmCycle = s.Q.Now()
			s.dram.Accesses = 0
			s.SysStats.Reset()
			for _, st := range s.CoreStats {
				st.Reset()
			}
			// The trace covers the measurement region, like the stats.
			s.tracer.Reset()
		}
		if committed != lastCommitted {
			lastCommitted = committed
			lastProgress = s.Q.Now()
		} else if s.Q.Now()-lastProgress > watchdogWindow {
			perCore := make([]uint64, len(s.CoreStats))
			for i, st := range s.CoreStats {
				perCore[i] = st.Get("committed_ops")
			}
			return s.crash(CrashWatchdog, nil,
				fmt.Sprintf("no commit progress for %d cycles (per-core commits: %v) — deadlock?",
					watchdogWindow, perCore))
		}
		s.Q.Advance()
		for _, c := range s.Cores {
			c.Tick()
		}
		if s.auditErr != nil {
			return s.crash(CrashAudit, s.auditErr, s.auditErr.Error())
		}
	}
}

// statsFinalizer lets mechanisms export internal counters at run end.
type statsFinalizer interface{ FinalizeStats() }

func (s *System) finalizeStats() {
	c := s.SysStats.Counter("dram_accesses")
	c.Add(s.dram.Accesses - c.Value())
	for _, m := range s.Mechs {
		if f, ok := m.(statsFinalizer); ok {
			f.FinalizeStats()
		}
	}
}

// TotalCommitted sums committed micro-ops over all cores.
func (s *System) TotalCommitted() uint64 {
	var n uint64
	for _, st := range s.CoreStats {
		n += st.Get("committed_ops")
	}
	return n
}

// StatsSum returns a merged view of system + per-core counters.
func (s *System) StatsSum() *stats.Set {
	out := stats.NewSet("total")
	out.Merge(s.SysStats)
	for _, st := range s.CoreStats {
		out.Merge(st)
	}
	return out
}

// ReadCoherent returns the coherent value of a byte after Run: the
// owner's copy if a core owns the line, else the LLC/memory data.
// Used by tests to compare against the checker's golden memory.
func (s *System) ReadCoherent(addr uint64) byte {
	line := addr &^ 63
	off := addr & 63
	for _, p := range s.Privs {
		pl := p.Lookup(line)
		if pl == nil {
			continue
		}
		if pl.State == memsys.StateM || pl.State == memsys.StateE {
			if pl.NotVisible {
				// Unauthorized bytes are not part of the coherent view;
				// the authorized copy lives in the private L2.
				return pl.L2Data[off]
			}
			if pl.InL1 {
				return pl.L1Data[off]
			}
			return pl.L2Data[off]
		}
	}
	var d memsys.LineData
	s.Mem.ReadLine(line, &d)
	if e := s.Dir.LLCData(line); e != nil {
		return e[off]
	}
	return d[off]
}
