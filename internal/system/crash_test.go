package system

import (
	"encoding/json"
	"errors"
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
)

// stallTrace is a single cold-miss load: commits stall for the full
// miss latency, which dwarfs a tiny watchdog window.
func stallTrace() []isa.Stream {
	ops := []isa.MicroOp{{Kind: isa.Load, Addr: 1 << 30, Size: 8}}
	return []isa.Stream{isa.NewSliceStream(ops)}
}

func TestWatchdogCrashReport(t *testing.T) {
	cfg := config.Default()
	cfg.WatchdogWindow = 3
	sys, err := New(cfg, stallTrace())
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run()
	if err == nil {
		t.Fatal("run with a 3-cycle watchdog completed without tripping")
	}
	var cr *CrashReport
	if !errors.As(err, &cr) {
		t.Fatalf("error is not a *CrashReport: %v", err)
	}
	if cr.Kind != CrashWatchdog {
		t.Fatalf("kind = %q, want %q", cr.Kind, CrashWatchdog)
	}
	if cr.Cores != 1 || len(cr.PerCore) != 1 {
		t.Fatalf("per-core snapshots: cores=%d len=%d", cr.Cores, len(cr.PerCore))
	}
	if cr.PerCore[0].Committed != 0 {
		t.Fatalf("snapshot committed = %d, want 0 (nothing could commit)", cr.PerCore[0].Committed)
	}
	// The report must serialize (it is embedded in repro bundles).
	if _, jerr := json.Marshal(cr); jerr != nil {
		t.Fatalf("report does not serialize: %v", jerr)
	}
}

func TestMaxCyclesCrashReport(t *testing.T) {
	cfg := config.Default()
	cfg.MaxCycles = 20
	cfg.WatchdogWindow = 1 << 40 // keep the watchdog out of the way
	sys, err := New(cfg, stallTrace())
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run()
	var cr *CrashReport
	if !errors.As(err, &cr) {
		t.Fatalf("error is not a *CrashReport: %v", err)
	}
	if cr.Kind != CrashMaxCycles {
		t.Fatalf("kind = %q, want %q", cr.Kind, CrashMaxCycles)
	}
}

// TestWatchdogDefaultWindow: a normal run must never trip the default
// watchdog (regression guard for the window plumbing). Run also
// tolerates a zeroed window (hand-built configs) by falling back to
// the default.
func TestWatchdogDefaultWindow(t *testing.T) {
	cfg := config.Default()
	if cfg.WatchdogWindow != config.DefaultWatchdogWindow {
		t.Fatalf("default config WatchdogWindow = %d, want %d", cfg.WatchdogWindow, config.DefaultWatchdogWindow)
	}
	cfg.WatchdogWindow = 0 // exercise the Run-side fallback
	sys, err := New(cfg, stallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("single-load run crashed: %v", err)
	}
}
