package system

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
	"tusim/internal/tso"
	"tusim/internal/workload"
)

// runChecked builds a system, attaches the TSO checker, runs to
// completion, and fails the test on any consistency violation.
func runChecked(t *testing.T, cfg *config.Config, streams []isa.Stream) (*System, *tso.Checker) {
	t.Helper()
	sys, err := New(cfg, streams)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ck := tso.NewChecker(cfg.Cores)
	sys.SetObserver(ck)
	if err := sys.Run(); err != nil {
		t.Fatalf("[%v] Run: %v", cfg.Mechanism, err)
	}
	ck.Finish()
	if err := ck.Err(); err != nil {
		for _, v := range ck.Violations()[:min(5, len(ck.Violations()))] {
			t.Logf("  %v", v)
		}
		t.Fatalf("[%v] %v", cfg.Mechanism, err)
	}
	return sys, ck
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mixedTrace builds a small single-core trace exercising every op kind.
func mixedTrace(n int) []isa.MicroOp {
	b, _ := workload.ByName("502.gcc2")
	return b.Generate(7, n)[0]
}

func TestSingleCoreAllMechanisms(t *testing.T) {
	trace := mixedTrace(8000)
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			sys, ck := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
			if got := sys.TotalCommitted(); got != 8000 {
				t.Fatalf("committed %d ops, want 8000", got)
			}
			if ck.LoadsSeen == 0 || ck.Published == 0 {
				t.Fatalf("checker saw loads=%d published=%d; observer not wired", ck.LoadsSeen, ck.Published)
			}
			if sys.Cycles == 0 {
				t.Fatal("zero cycles")
			}
		})
	}
}

func TestSingleCorePointerChaseAllMechanisms(t *testing.T) {
	b, _ := workload.ByName("505.mcf")
	trace := b.Generate(3, 6000)[0]
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			sys, _ := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
			if got := sys.TotalCommitted(); got != 6000 {
				t.Fatalf("committed %d ops, want 6000", got)
			}
		})
	}
}

func TestFenceWorkloadAllMechanisms(t *testing.T) {
	b, _ := workload.ByName("fluidanimate")
	traces := b.Generate(5, 4000)
	// Use just the first trace single-core (it contains fences).
	hasFence := false
	for _, op := range traces[0] {
		if op.Kind == isa.Fence {
			hasFence = true
		}
	}
	if !hasFence {
		t.Skip("no fences generated at this length")
	}
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(traces[0])})
		})
	}
}

func TestMultiCoreSharingAllMechanisms(t *testing.T) {
	b, _ := workload.ByName("canneal")
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m).WithCores(4)
			traces := b.Generate(11, 2500)[:4]
			streams := make([]isa.Stream, 4)
			for i := range streams {
				streams[i] = isa.NewSliceStream(traces[i])
			}
			sys, ck := runChecked(t, cfg, streams)
			if got := sys.TotalCommitted(); got != 4*2500 {
				t.Fatalf("committed %d, want %d", got, 4*2500)
			}
			_ = ck
		})
	}
}

// TestTUSContention drives heavy same-line contention across cores to
// exercise the authorization unit (delays and relinquishes) under the
// checker's eye.
func TestTUSContention(t *testing.T) {
	const cores = 4
	cfg := config.Default().WithMechanism(config.TUS).WithCores(cores)
	streams := make([]isa.Stream, cores)
	for c := 0; c < cores; c++ {
		var ops []isa.MicroOp
		// All cores hammer the same handful of shared lines with
		// interleaved ABAB patterns (atomic-group cycles) plus private
		// traffic.
		for i := 0; i < 1500; i++ {
			shared := uint64(1)<<33 + uint64(i%6)*64
			priv := uint64(1)<<32 + uint64(c)<<28 + uint64(i%64)*64
			switch i % 5 {
			case 0, 1:
				ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: shared + uint64(c)*8, Size: 8})
			case 2:
				ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: shared, Size: 8})
			case 3:
				ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: priv, Size: 8})
			case 4:
				ops = append(ops, isa.MicroOp{Kind: isa.IntAdd})
			}
		}
		streams[c] = isa.NewSliceStream(ops)
	}
	sys, _ := runChecked(t, cfg, streams)
	tot := sys.StatsSum()
	if tot.Get("tus_lines_made_visible") == 0 {
		t.Fatal("TUS never made lines visible")
	}
	if tot.Get("tus_lex_delays")+tot.Get("tus_lex_relinquishes") == 0 {
		t.Log("warning: contention test exercised no authorization-unit decisions")
	}
}

// TestCoherentViewMatchesChecker cross-validates the machine's final
// coherent memory against the checker's golden memory.
func TestCoherentViewMatchesChecker(t *testing.T) {
	b, _ := workload.ByName("502.gcc1")
	trace := b.Generate(21, 4000)[0]
	for _, m := range config.Mechanisms {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			cfg := config.Default().WithMechanism(m)
			sys, ck := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
			checked := 0
			for _, op := range trace {
				if op.Kind != isa.Store {
					continue
				}
				for i := uint64(0); i < uint64(op.Size); i++ {
					a := op.Addr + i
					want := ck.VisibleByte(a)
					got := sys.ReadCoherent(a)
					if got != want {
						t.Fatalf("addr %#x: machine=%#x checker=%#x", a, got, want)
					}
					checked++
				}
				if checked > 4000 {
					break
				}
			}
		})
	}
}

// TestTUSBeatsBaselineOnBursts is the headline sanity check: on a
// store-burst workload TUS must not be slower than the baseline.
func TestTUSBeatsBaselineOnBursts(t *testing.T) {
	b, _ := workload.ByName("502.gcc5")
	trace := b.Generate(2, 12000)[0]
	cycles := map[config.Mechanism]uint64{}
	for _, m := range []config.Mechanism{config.Baseline, config.TUS} {
		cfg := config.Default().WithMechanism(m)
		sys, _ := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
		cycles[m] = sys.Cycles
	}
	if cycles[config.TUS] > cycles[config.Baseline] {
		t.Fatalf("TUS slower than baseline on store bursts: %d vs %d", cycles[config.TUS], cycles[config.Baseline])
	}
	t.Logf("burst workload: base=%d TUS=%d (%.1f%% speedup)", cycles[config.Baseline], cycles[config.TUS],
		100*(float64(cycles[config.Baseline])/float64(cycles[config.TUS])-1))
}

func TestSmallSBStillCorrect(t *testing.T) {
	trace := mixedTrace(5000)
	for _, m := range config.Mechanisms {
		cfg := config.Default().WithMechanism(m).WithSB(8)
		sys, _ := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
		if sys.TotalCommitted() != 5000 {
			t.Fatalf("[%v] committed %d", m, sys.TotalCommitted())
		}
	}
}

func TestStatsSanity(t *testing.T) {
	trace := mixedTrace(5000)
	cfg := config.Default().WithMechanism(config.TUS)
	sys, _ := runChecked(t, cfg, []isa.Stream{isa.NewSliceStream(trace)})
	st := sys.StatsSum()
	if st.Get("sb_searches") != st.Get("loads")+st.Get("sb_forward_conflicts")*0 && st.Get("sb_searches") < st.Get("loads") {
		t.Errorf("sb_searches (%d) < loads (%d): every load must search the SB", st.Get("sb_searches"), st.Get("loads"))
	}
	if st.Get("stores_drained") == 0 {
		t.Error("no stores drained")
	}
	if st.Get("l1d_writes") == 0 {
		t.Error("no L1D writes recorded")
	}
	if st.Get("tus_lines_made_visible") == 0 {
		t.Error("TUS made nothing visible")
	}
	// Coalescing must reduce L1D writes below the store count.
	if st.Get("l1d_writes") >= st.Get("stores") {
		t.Logf("note: l1d_writes=%d stores=%d (little coalescing on this trace)", st.Get("l1d_writes"), st.Get("stores"))
	}
}
