package system

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
)

// TestWarmupDiscardsStatistics verifies the warm-up window: counters
// and cycles must cover only the post-warm-up region.
func TestWarmupDiscardsStatistics(t *testing.T) {
	var ops []isa.MicroOp
	for i := 0; i < 4000; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: uint64(i%64) * 64, Size: 8})
	}
	mk := func(warmup uint64) (cycles, committed, stores uint64) {
		cfg := config.Default()
		sys, err := New(cfg, []isa.Stream{isa.NewSliceStream(ops)})
		if err != nil {
			t.Fatal(err)
		}
		sys.WarmupOps = warmup
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		st := sys.StatsSum()
		return sys.Cycles, st.Get("committed_ops"), st.Get("stores")
	}
	fullCyc, fullCommitted, _ := mk(0)
	warmCyc, warmCommitted, warmStores := mk(2000)

	if fullCommitted != 4000 {
		t.Fatalf("full run committed %d", fullCommitted)
	}
	if warmCommitted >= 2100 || warmCommitted < 1500 {
		t.Fatalf("post-warmup committed = %d, want ~2000", warmCommitted)
	}
	if warmCyc >= fullCyc {
		t.Fatalf("warmed cycles (%d) not less than full cycles (%d)", warmCyc, fullCyc)
	}
	if warmStores > warmCommitted {
		t.Fatalf("post-warmup stores (%d) exceed committed ops (%d)", warmStores, warmCommitted)
	}
}

// TestWarmupZeroIsNoop: WarmupOps=0 must not reset anything.
func TestWarmupZeroIsNoop(t *testing.T) {
	ops := []isa.MicroOp{{Kind: isa.Store, Addr: 0x100, Size: 8}, {Kind: isa.IntAdd}}
	sys, err := New(config.Default(), []isa.Stream{isa.NewSliceStream(ops)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.TotalCommitted() != 2 {
		t.Fatalf("committed = %d", sys.TotalCommitted())
	}
}
