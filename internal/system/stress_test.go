package system

import (
	"math/rand"
	"testing"

	"tusim/internal/config"
	"tusim/internal/isa"
	"tusim/internal/tso"
)

// stressTrace builds an adversarial random trace: heavy same-line
// sharing, store cycles, fences, tiny footprints, and pathological
// interleavings — everything that breaks coherence protocols.
func stressTrace(rng *rand.Rand, core, n int, sharedLines, privLines int) []isa.MicroOp {
	var ops []isa.MicroOp
	for i := 0; i < n; i++ {
		var addr uint64
		if rng.Intn(100) < 60 {
			addr = uint64(1)<<33 + uint64(rng.Intn(sharedLines))*64
		} else {
			addr = uint64(1)<<32 + uint64(core)<<28 + uint64(rng.Intn(privLines))*64
		}
		addr += uint64(rng.Intn(8)) * 8
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: addr, Size: 8})
		case 4, 5, 6:
			ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: addr, Size: 8})
		case 7:
			ops = append(ops, isa.MicroOp{Kind: isa.Fence})
		case 8:
			ops = append(ops, isa.MicroOp{Kind: isa.IntAdd, Dep1: uint16(min(i, 1+rng.Intn(3)))})
		case 9:
			// 1/2/4-byte stores exercise partial masks and forwarding
			// conflicts.
			size := uint8(1) << rng.Intn(3)
			ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: addr &^ 7, Size: size})
		}
	}
	return ops
}

// TestStressRandomized runs adversarial random workloads under every
// mechanism and configuration corner with the TSO checker attached.
// Any deadlock, livelock, or consistency violation fails the test.
func TestStressRandomized(t *testing.T) {
	type corner struct {
		name string
		mut  func(*config.Config)
	}
	corners := []corner{
		{"default", func(c *config.Config) {}},
		{"tinySB", func(c *config.Config) { c.SBEntries = 4 }},
		{"tinyWOQ", func(c *config.Config) { c.WOQEntries = 4 }},
		{"tinyL1", func(c *config.Config) { c.L1D.SizeBytes = 4 * 64 * 2; c.L1D.Ways = 2 }},
		{"oneWCB", func(c *config.Config) { c.WCBCount = 1 }},
		{"smallGroup", func(c *config.Config) { c.MaxAtomicGroup = 2 }},
	}
	for _, m := range config.Mechanisms {
		for _, co := range corners {
			m, co := m, co
			t.Run(m.String()+"/"+co.name, func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 3; seed++ {
					const cores = 3
					cfg := config.Default().WithMechanism(m).WithCores(cores)
					co.mut(cfg)
					if err := cfg.Validate(); err != nil {
						t.Skipf("corner invalid for %v: %v", m, err)
					}
					rng := rand.New(rand.NewSource(seed * 7919))
					streams := make([]isa.Stream, cores)
					total := 0
					for c := 0; c < cores; c++ {
						tr := stressTrace(rng, c, 900, 5, 12)
						if err := isa.Validate(tr); err != nil {
							t.Fatal(err)
						}
						total += len(tr)
						streams[c] = isa.NewSliceStream(tr)
					}
					sys, err := New(cfg, streams)
					if err != nil {
						t.Fatal(err)
					}
					ck := tso.NewChecker(cores)
					sys.SetObserver(ck)
					if err := sys.Run(); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if got := sys.TotalCommitted(); got != uint64(total) {
						t.Fatalf("seed %d: committed %d/%d", seed, got, total)
					}
					ck.Finish()
					if err := ck.Err(); err != nil {
						for _, v := range ck.Violations()[:min(3, len(ck.Violations()))] {
							t.Logf("  %v", v)
						}
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestStressManyCores pushes the TUS protocol across 8 cores with a
// single hot line plus cold private misses holding WOQ heads back —
// the worst case for the lex-order authorization unit.
func TestStressManyCores(t *testing.T) {
	const cores = 8
	cfg := config.Default().WithMechanism(config.TUS).WithCores(cores)
	streams := make([]isa.Stream, cores)
	for c := 0; c < cores; c++ {
		var ops []isa.MicroOp
		for i := 0; i < 800; i++ {
			cold := uint64(1)<<32 + uint64(c)<<28 + uint64(i)*64
			hot := uint64(1) << 33
			ops = append(ops,
				isa.MicroOp{Kind: isa.Store, Addr: cold, Size: 8},
				isa.MicroOp{Kind: isa.Store, Addr: hot + uint64(c)*8, Size: 8},
				isa.MicroOp{Kind: isa.Load, Addr: hot, Size: 8},
			)
		}
		streams[c] = isa.NewSliceStream(ops)
	}
	sys, err := New(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	ck := tso.NewChecker(cores)
	sys.SetObserver(ck)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	ck.Finish()
	if err := ck.Err(); err != nil {
		t.Fatal(err)
	}
	st := sys.StatsSum()
	if st.Get("tus_lex_delays")+st.Get("tus_lex_relinquishes") == 0 {
		t.Error("8-way hot-line contention never exercised the authorization unit")
	}
}
