package system

import (
	"strings"
	"testing"

	"tusim/internal/faults"
)

// chaosPlan is a fault plan that actually perturbs the run (Enabled).
func chaosPlan() faults.Plan {
	return faults.Plan{Seed: 7, NackPct: 10, ReqExtraPct: 5, ReqExtraMax: 50}
}

// TestCrashClassification pins the transient/deterministic split the
// supervisor's retry policy is built on: only chaos-induced watchdog
// trips may retry; every reproducible failure quarantines.
func TestCrashClassification(t *testing.T) {
	cases := []struct {
		name      string
		report    CrashReport
		transient bool
	}{
		{"watchdog under chaos", CrashReport{Kind: CrashWatchdog, FaultPlan: chaosPlan()}, true},
		{"watchdog fault-free", CrashReport{Kind: CrashWatchdog}, false},
		{"invariant under chaos", CrashReport{Kind: CrashInvariant, FaultPlan: chaosPlan()}, false},
		{"invariant fault-free", CrashReport{Kind: CrashInvariant}, false},
		{"audit under chaos", CrashReport{Kind: CrashAudit, FaultPlan: chaosPlan()}, false},
		{"max-cycles", CrashReport{Kind: CrashMaxCycles}, false},
		{"panic", CrashReport{Kind: CrashPanic}, false},
		{"panic under chaos", CrashReport{Kind: CrashPanic, FaultPlan: chaosPlan()}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.report.Transient(); got != tc.transient {
				t.Fatalf("Transient() = %v, want %v", got, tc.transient)
			}
			if tc.report.Deterministic() == tc.report.Transient() {
				t.Fatal("Deterministic must be the complement of Transient")
			}
			want := "deterministic"
			if tc.transient {
				want = "transient"
			}
			if got := tc.report.Classification(); got != want {
				t.Fatalf("Classification() = %q, want %q", got, want)
			}
		})
	}
}

// TestPanicReport: the supervision layer's panic conversion carries the
// payload and stack and classifies deterministic.
func TestPanicReport(t *testing.T) {
	r := PanicReport("index out of range [114] with length 64", []byte("goroutine 1 [running]:\nmain.go:1"))
	if r.Kind != CrashPanic {
		t.Fatalf("kind = %q", r.Kind)
	}
	if !strings.Contains(r.Message, "index out of range") {
		t.Fatalf("message lost payload: %q", r.Message)
	}
	if !strings.Contains(r.Stack, "goroutine 1") {
		t.Fatalf("stack lost: %q", r.Stack)
	}
	if !r.Deterministic() {
		t.Fatal("panics must classify deterministic")
	}
	if r.Error() == "" {
		t.Fatal("panic report must still be a printable error")
	}
}
