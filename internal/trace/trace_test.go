package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestKindNamesComplete(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < kindCount; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d has no stable name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind name = %q", got)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Emit(SBEnqueue, 0, 1, 2, 3, 4) // must not panic
	tr.Reset()
	if tr.Enabled() || tr.Len() != 0 || tr.Cap() != 0 || tr.Dropped() != 0 {
		t.Errorf("nil tracer reports non-zero state")
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer Events() = %v, want nil", evs)
	}
}

func TestRingRecordsInOrder(t *testing.T) {
	tr := New(8)
	for i := uint64(0); i < 5; i++ {
		tr.Emit(SBEnqueue, 1, i, i*64, i, 0)
	}
	evs := tr.Events()
	if len(evs) != 5 || tr.Len() != 5 {
		t.Fatalf("Len = %d, events = %d, want 5", tr.Len(), len(evs))
	}
	for i, e := range evs {
		if e.Cycle != uint64(i) || e.Seq != uint64(i) || e.Kind != SBEnqueue || e.Core != 1 {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}

func TestRingWrapsAndCountsDrops(t *testing.T) {
	tr := New(4)
	for i := uint64(0); i < 10; i++ {
		tr.Emit(SBCommit, 0, i, 0, i, 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, want := range []uint64{6, 7, 8, 9} {
		if evs[i].Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first after wrap)", i, evs[i].Cycle, want)
		}
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	tr := New(4)
	for i := uint64(0); i < 6; i++ {
		tr.Emit(SBDrain, 0, i, 0, i, 0)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Cap() != 4 {
		t.Fatalf("after Reset: Len=%d Dropped=%d Cap=%d", tr.Len(), tr.Dropped(), tr.Cap())
	}
	tr.Emit(SBDrain, 0, 42, 0, 0, 0)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Cycle != 42 {
		t.Fatalf("post-Reset events = %v", evs)
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	tr := New(4)
	tr.SetEnabled(false)
	tr.Emit(SBEnqueue, 0, 1, 0, 0, 0)
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Len())
	}
	tr.SetEnabled(true)
	tr.Emit(SBEnqueue, 0, 2, 0, 0, 0)
	if tr.Len() != 1 {
		t.Fatalf("re-enabled tracer recorded %d events, want 1", tr.Len())
	}
}

// TestEmitDisabledZeroAlloc pins the package contract: Emit on a nil or
// disabled tracer allocates nothing, so the instrumented drain hot path
// is free when tracing is off.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nilTr.Emit(SBDrain, 0, 1, 64, 2, 3)
	}); n != 0 {
		t.Errorf("nil tracer Emit allocates %.1f bytes/op, want 0", n)
	}
	off := New(16)
	off.SetEnabled(false)
	if n := testing.AllocsPerRun(1000, func() {
		off.Emit(SBDrain, 0, 1, 64, 2, 3)
	}); n != 0 {
		t.Errorf("disabled tracer Emit allocates %.1f bytes/op, want 0", n)
	}
}

// TestEmitEnabledZeroAlloc: even when on, recording into the
// preallocated ring never grows the heap.
func TestEmitEnabledZeroAlloc(t *testing.T) {
	tr := New(64)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(SBDrain, 0, 1, 64, 2, 3)
	}); n != 0 {
		t.Errorf("enabled tracer Emit allocates %.1f bytes/op, want 0", n)
	}
}

// chromeFile mirrors the Chrome trace-event JSON object form.
type chromeFile struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	OtherData       map[string]any   `json:"otherData"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

func exportChrome(t *testing.T, tr *Tracer) (chromeFile, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	return f, buf.Bytes()
}

func spansNamed(f chromeFile, name string) []map[string]any {
	var out []map[string]any
	for _, e := range f.TraceEvents {
		if e["ph"] == "X" && e["name"] == name {
			out = append(out, e)
		}
	}
	return out
}

func TestWriteChromeSpanReconstruction(t *testing.T) {
	tr := New(64)
	// One full SB residency: enqueue at 10, drain at 35.
	tr.Emit(SBEnqueue, 2, 10, 0x1000, 7, 1)
	tr.Emit(SBCommit, 2, 20, 0x1000, 7, 0)
	tr.Emit(SBDrain, 2, 35, 0x1000, 7, 15)
	// One unauthorized WOQ residency on line 0x2000: admit at 40,
	// release at 90.
	tr.Emit(UnauthWrite, 2, 40, 0x2000, 0, 3)
	tr.Emit(WOQRelease, 2, 90, 0x2000, 0, 50)

	f, _ := exportChrome(t, tr)
	if f.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	sb := spansNamed(f, "sb_resident")
	if len(sb) != 1 {
		t.Fatalf("sb_resident spans = %d, want 1", len(sb))
	}
	if ts, dur := sb[0]["ts"].(float64), sb[0]["dur"].(float64); ts != 10 || dur != 25 {
		t.Errorf("sb_resident ts=%v dur=%v, want 10/25", ts, dur)
	}
	if sb[0]["pid"].(float64) != 2 || sb[0]["tid"] != "SB" {
		t.Errorf("sb_resident placed on pid=%v tid=%v", sb[0]["pid"], sb[0]["tid"])
	}

	woq := spansNamed(f, "unauthorized")
	if len(woq) != 1 {
		t.Fatalf("unauthorized spans = %d, want 1", len(woq))
	}
	if ts, dur := woq[0]["ts"].(float64), woq[0]["dur"].(float64); ts != 40 || dur != 50 {
		t.Errorf("unauthorized ts=%v dur=%v, want 40/50", ts, dur)
	}

	// sb_commit and woq_release surface as instants.
	var instants []string
	for _, e := range f.TraceEvents {
		if e["ph"] == "i" {
			instants = append(instants, e["name"].(string))
		}
	}
	for _, want := range []string{"sb_commit", "woq_release"} {
		found := false
		for _, n := range instants {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("instant %q missing (got %v)", want, instants)
		}
	}
}

func TestWriteChromeMultiEndAndLeftovers(t *testing.T) {
	tr := New(64)
	// CSB-style WCB residency: coalesce ends at a direct visible group
	// write, not at a TUS admit.
	tr.Emit(WCBCoalesce, 0, 5, 0x3000, 1, 0)
	tr.Emit(StoreVisibleEv, 0, 25, 0x3000, 0, 0)
	// A begin with no end: must export closed at the last cycle and
	// tagged open.
	tr.Emit(SBEnqueue, 0, 30, 0x4000, 9, 1)
	// An end with no begin (ring truncation): must be skipped, not
	// crash or emit a negative span.
	tr.Emit(SBDrain, 0, 40, 0x5000, 55, 2)

	f, raw := exportChrome(t, tr)
	wcb := spansNamed(f, "wcb_resident")
	if len(wcb) != 1 {
		t.Fatalf("wcb_resident spans = %d, want 1", len(wcb))
	}
	if dur := wcb[0]["dur"].(float64); dur != 20 {
		t.Errorf("wcb_resident dur = %v, want 20", dur)
	}
	sb := spansNamed(f, "sb_resident")
	if len(sb) != 1 {
		t.Fatalf("sb_resident spans = %d, want 1 (the leftover)", len(sb))
	}
	args := sb[0]["args"].(map[string]any)
	if args["open"] != true {
		t.Errorf("leftover span not tagged open: %v", sb[0])
	}
	if ts, dur := sb[0]["ts"].(float64), sb[0]["dur"].(float64); ts != 30 || dur != 10 {
		t.Errorf("leftover closed at ts=%v dur=%v, want 30/10 (last cycle 40)", ts, dur)
	}
	if !bytes.Contains(raw, []byte(`"generator":"tusim"`)) {
		t.Errorf("otherData generator stamp missing")
	}
}

func TestWriteChromeDuplicateBeginIgnored(t *testing.T) {
	tr := New(64)
	tr.Emit(MSHRAlloc, 1, 10, 0x1000, 0, 1)
	tr.Emit(MSHRAlloc, 1, 15, 0x1000, 0, 2) // same line: dup begin
	tr.Emit(MSHRFree, 1, 50, 0x1000, 0, 40)
	f, _ := exportChrome(t, tr)
	miss := spansNamed(f, "miss")
	if len(miss) != 1 {
		t.Fatalf("miss spans = %d, want 1 (dup begin ignored)", len(miss))
	}
	if ts := miss[0]["ts"].(float64); ts != 10 {
		t.Errorf("miss span starts at %v, want the first begin (10)", ts)
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(128)
		for i := uint64(0); i < 30; i++ {
			core := int32(i % 3)
			tr.Emit(SBEnqueue, core, i*10, 0x1000+i*64, i, 0)
			tr.Emit(SBDrain, core, i*10+5, 0x1000+i*64, i, 5)
			tr.Emit(MSHRAlloc, core, i*10+1, 0x8000+i*64, 0, 1)
		}
		return tr
	}
	_, a := exportChrome(t, build())
	_, b := exportChrome(t, build())
	if !bytes.Equal(a, b) {
		t.Fatalf("identical streams exported different bytes")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	f, _ := exportChrome(t, New(4))
	if len(f.TraceEvents) != 0 {
		t.Fatalf("empty tracer exported %d events", len(f.TraceEvents))
	}
}
