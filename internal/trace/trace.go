// Package trace is the simulator's structured observability layer: a
// deterministic, ring-buffered recorder of per-store lifecycle events
// (SB enqueue → drain → WCB coalesce / unauthorized L1D write →
// permission arrival → WOQ release → coherent visibility) and
// cache/directory events (MSHR allocation, probes, NACKs, recalls).
//
// Contract (pinned by tests in this package and internal/harness):
//
//   - Zero overhead when off: every Emit* call on a nil or disabled
//     *Tracer is a branch and a return — no allocation, no atomic, no
//     lock. Components hold a plain *Tracer field (nil by default), so
//     the fully-instrumented drain hot path allocates zero bytes when
//     tracing is disabled.
//   - Determinism: events are recorded in event-queue order by the
//     single simulation goroutine; two runs of the same seed produce
//     identical event streams, and a run with tracing enabled is
//     cycle-for-cycle identical to one with tracing disabled (tracing
//     only observes, it never schedules or mutates).
//   - Bounded memory: the ring keeps the most recent Cap events and
//     counts what it dropped; recording never grows the heap after New.
//
// The recorded stream exports as Chrome trace-event JSON (WriteChrome)
// loadable directly in Perfetto / chrome://tracing: lifecycle phases
// become duration events on per-core tracks, one-shot protocol events
// become instants.
package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Kind enumerates the event taxonomy. The numeric values are part of
// the ring's compact encoding only; names (Kind.String) are the stable
// interface.
type Kind uint8

// Store-lifecycle and protocol event kinds.
const (
	// KindNone is the zero Kind; it never appears in a recorded stream.
	KindNone Kind = iota

	// ---- Store lifecycle (per store, then per line) ----

	// SBEnqueue: a store entered the store buffer at dispatch.
	// Arg = SB occupancy after the push.
	SBEnqueue
	// SBCommit: the store's ROB entry retired; the SB entry is now
	// drainable. Arg = 0.
	SBCommit
	// SBDrain: the store left the SB head into the drain mechanism.
	// Arg = cycles since SBCommit (drain latency).
	SBDrain
	// WCBCoalesce: the store's bytes entered a write-combining buffer
	// (TUS/CSB coalescing path). Arg = 0.
	WCBCoalesce
	// TSOBEnqueue: the store entered SSB's TSOB FIFO. Arg = TSOB
	// occupancy after the push.
	TSOBEnqueue
	// UnauthWrite: a coalesced group line was written into the L1D
	// without permission (TUS temporarily-unauthorized store).
	// Arg = WOQ atomic-group id.
	UnauthWrite
	// AuthWrite: a group line hit a line already held E/M and was
	// written ready (TUS authorized hit). Arg = WOQ group id.
	AuthWrite
	// PermRequest: a write-permission request was issued for a WOQ
	// line. Arg = 1 when the line is lex-gated (Sec. III-C re-request).
	PermRequest
	// PermGrant: write permission (and memory data) arrived and was
	// merged under the unauthorized mask. Arg = 0.
	PermGrant
	// PermRelinquish: the authorization unit surrendered the line's
	// permission to a lex-order conflict. Arg = 0.
	PermRelinquish
	// WOQRelease: the line's atomic group reached the WOQ head ready
	// and the line became coherently visible. Arg = unauthorized
	// residency in cycles (admission → release).
	WOQRelease
	// StoreVisibleEv: store bytes became coherently visible through a
	// direct visible write (baseline/SSB per-store, CSB group write).
	// Arg = 0.
	StoreVisibleEv

	// ---- Cache / directory ----

	// MSHRAlloc: a miss allocated an MSHR. Arg = MSHR pool occupancy
	// after the allocation (prefetch pool included).
	MSHRAlloc
	// MSHRFree: the miss completed (fill applied) or was abandoned.
	// Arg = cycles since MSHRAlloc (miss latency).
	MSHRFree
	// ProbeRecv: an external probe arrived at a private hierarchy.
	// Arg = 0 for an invalidation, 1 for a downgrade.
	ProbeRecv
	// ProbeNackEv: the probed core NACKed (TUS lex delay or busy).
	// Arg = 0.
	ProbeNackEv
	// DirNack: the directory NACKed a request (busy line, queue
	// overflow, or injected fault). Arg = 0.
	DirNack
	// DirRecall: the directory could not evict any way of a full set
	// (recall skipped; set temporarily overflows). Arg = 0.
	DirRecall

	kindCount // sentinel
)

var kindNames = [kindCount]string{
	KindNone:       "none",
	SBEnqueue:      "sb_enqueue",
	SBCommit:       "sb_commit",
	SBDrain:        "sb_drain",
	WCBCoalesce:    "wcb_coalesce",
	TSOBEnqueue:    "tsob_enqueue",
	UnauthWrite:    "tus_unauth_write",
	AuthWrite:      "tus_auth_write",
	PermRequest:    "perm_request",
	PermGrant:      "perm_grant",
	PermRelinquish: "perm_relinquish",
	WOQRelease:     "woq_release",
	StoreVisibleEv: "store_visible",
	MSHRAlloc:      "mshr_alloc",
	MSHRFree:       "mshr_free",
	ProbeRecv:      "probe",
	ProbeNackEv:    "probe_nack",
	DirNack:        "dir_nack",
	DirRecall:      "dir_recall",
}

// String returns the event kind's stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one fixed-size ring record. Addr carries the store's byte
// address for SB-granular events and the line address for line-granular
// ones; Seq is the per-core store sequence number where known (0 for
// line-granular protocol events); Arg is kind-specific (see Kind docs).
type Event struct {
	Cycle uint64
	Addr  uint64
	Seq   uint64
	Arg   uint64
	Core  int32
	Kind  Kind
}

// Tracer records events into a fixed-capacity ring. The zero value and
// the nil pointer are both valid, permanently-disabled tracers. A
// Tracer is not safe for concurrent use; attach one tracer per
// simulated system (each system runs on one goroutine).
type Tracer struct {
	enabled bool
	ring    []Event
	head    int // index of the oldest event when full
	count   int
	dropped uint64
}

// DefaultCap is the ring capacity New uses when given n <= 0.
const DefaultCap = 1 << 18

// New returns an enabled tracer with capacity for n events (DefaultCap
// when n <= 0). All memory is allocated here; recording never grows it.
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultCap
	}
	return &Tracer{enabled: true, ring: make([]Event, n)}
}

// Enabled reports whether Emit records anything. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled }

// SetEnabled toggles recording (panics on nil; only constructed tracers
// can be toggled).
func (t *Tracer) SetEnabled(on bool) { t.enabled = on }

// Cap returns the ring capacity. Safe on nil (0).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Len returns the number of retained events. Safe on nil (0).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Dropped returns how many events the ring overwrote. Safe on nil (0).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Emit records one event. On a nil or disabled tracer it is a branch
// and a return: the drain hot path calls it unconditionally and pays
// nothing when tracing is off (pinned by the AllocsPerRun test).
func (t *Tracer) Emit(k Kind, core int32, cycle, addr, seq, arg uint64) {
	if t == nil || !t.enabled {
		return
	}
	var slot *Event
	if t.count < len(t.ring) {
		slot = &t.ring[(t.head+t.count)%len(t.ring)]
		t.count++
	} else {
		slot = &t.ring[t.head]
		t.head = (t.head + 1) % len(t.ring)
		t.dropped++
	}
	*slot = Event{Cycle: cycle, Addr: addr, Seq: seq, Arg: arg, Core: core, Kind: k}
}

// Events returns the retained events oldest-first (a copy; the ring
// keeps recording). Safe on nil (empty).
func (t *Tracer) Events() []Event {
	if t == nil || t.count == 0 {
		return nil
	}
	out := make([]Event, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// Reset drops all retained events, keeping the ring memory.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head, t.count, t.dropped = 0, 0, 0
}

// ---------- Chrome trace-event export ----------

// spanDef maps a begin kind and its possible end kinds onto a named
// track. Spans are keyed per core by Seq (store-granular) or line
// address.
type spanDef struct {
	begin  Kind
	ends   []Kind
	track  string
	name   string
	byLine bool
}

// spanDefs is the lifecycle-span pairing table. Order fixes export
// order for deterministic output. WCB residency ends at admission —
// which is UnauthWrite/AuthWrite under TUS but a direct visible group
// write under CSB — hence the multi-end definition.
var spanDefs = []spanDef{
	{SBEnqueue, []Kind{SBDrain}, "SB", "sb_resident", false},
	{TSOBEnqueue, []Kind{StoreVisibleEv}, "TSOB", "tsob_resident", false},
	{WCBCoalesce, []Kind{UnauthWrite, AuthWrite, StoreVisibleEv}, "WCB", "wcb_resident", true},
	{UnauthWrite, []Kind{WOQRelease}, "WOQ", "unauthorized", true},
	{AuthWrite, []Kind{WOQRelease}, "WOQ", "authorized", true},
	{MSHRAlloc, []Kind{MSHRFree}, "MSHR", "miss", true},
}

// instantKinds are exported as Chrome instant events on a per-core
// "protocol" track.
var instantKinds = map[Kind]bool{
	SBCommit:       true,
	PermRequest:    true,
	PermGrant:      true,
	PermRelinquish: true,
	StoreVisibleEv: true,
	ProbeRecv:      true,
	ProbeNackEv:    true,
	DirNack:        true,
	DirRecall:      true,
	WCBCoalesce:    true,
	WOQRelease:     true,
}

type openSpan struct {
	start uint64
	arg   uint64
}

// WriteChrome exports the retained events as Chrome trace-event JSON
// (the object form: {"traceEvents": [...]}) loadable in Perfetto and
// chrome://tracing. Timestamps are cycles reported as microseconds
// (displayTimeUnit "ns" keeps Perfetto from rescaling). Lifecycle
// phases export as complete ("X") duration events on per-core tracks;
// protocol one-shots export as instants ("i"). Spans still open at the
// end of the stream are closed at the last recorded cycle and tagged
// "open": true.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	events := t.Events()
	var last uint64
	for _, e := range events {
		if e.Cycle > last {
			last = e.Cycle
		}
	}

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"tusim\",\"events\":%d,\"dropped\":%d},\"traceEvents\":[",
		len(events), t.Dropped())
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Process metadata: one pid per core (pid -1 = directory/LLC).
	pids := map[int32]bool{}
	for _, e := range events {
		if !pids[e.Core] {
			pids[e.Core] = true
			name := fmt.Sprintf("core %d", e.Core)
			if e.Core < 0 {
				name = "directory"
			}
			emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, e.Core, name)
		}
	}

	// Spans: a single ordered pass per definition keeps output
	// deterministic (map iteration never decides order).
	type spanKey struct {
		core int32
		id   uint64
	}
	for _, def := range spanDefs {
		open := map[spanKey]openSpan{}
		isEnd := func(k Kind) bool {
			for _, e := range def.ends {
				if k == e {
					return true
				}
			}
			return false
		}
		for _, e := range events {
			key := spanKey{e.Core, e.Seq}
			if def.byLine {
				key.id = e.Addr &^ 63
			}
			switch {
			case e.Kind == def.begin:
				if _, dup := open[key]; !dup {
					open[key] = openSpan{start: e.Cycle, arg: e.Arg}
				}
			case isEnd(e.Kind):
				s, ok := open[key]
				if !ok {
					continue // begin fell off the ring
				}
				delete(open, key)
				emit(`{"ph":"X","name":%q,"cat":"lifecycle","pid":%d,"tid":%q,"ts":%d,"dur":%d,"args":{"addr":"%#x","seq":%d,"arg":%d}}`,
					def.name, e.Core, def.track, s.start, e.Cycle-s.start, key.id, e.Seq, e.Arg)
			}
		}
		// Close leftovers at the final cycle, in recording order: rescan
		// the stream and emit each still-open key at its begin event.
		for _, e := range events {
			if e.Kind != def.begin {
				continue
			}
			key := spanKey{e.Core, e.Seq}
			if def.byLine {
				key.id = e.Addr &^ 63
			}
			s, ok := open[key]
			if !ok || s.start != e.Cycle {
				continue
			}
			delete(open, key)
			emit(`{"ph":"X","name":%q,"cat":"lifecycle","pid":%d,"tid":%q,"ts":%d,"dur":%d,"args":{"addr":"%#x","open":true}}`,
				def.name, e.Core, def.track, s.start, last-s.start, key.id)
		}
	}

	// Instants.
	for _, e := range events {
		if !instantKinds[e.Kind] {
			continue
		}
		emit(`{"ph":"i","s":"t","name":%q,"cat":"protocol","pid":%d,"tid":"protocol","ts":%d,"args":{"addr":"%#x","seq":%d,"arg":%d}}`,
			e.Kind, e.Core, e.Cycle, e.Addr, e.Seq, e.Arg)
	}

	bw.WriteString("]}\n")
	return bw.Flush()
}
