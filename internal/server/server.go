// Package server is tusd's service layer: it turns the one-shot
// evaluation harness into a long-running, network-facing query service.
// Figure, histogram, cell-matrix, and litmus-check jobs are scheduled
// on a bounded pool that reuses the process-wide harness.Runner (worker
// pool, supervision, quarantine) and its shared content-addressed disk
// cache; identical in-flight requests coalesce via singleflight keyed
// on the cells' existing cache keys; per-cell progress streams over
// SSE; /metrics exposes Prometheus text with no dependencies.
//
// Determinism contract: a figure job's bytes are exactly what
// `tusbench -fig <n>` prints for the same scale flags — the server
// calls the same harness.RenderFigure the CLI does, and the harness's
// parallel/cached paths are byte-identical by construction. The CI
// smoke job diffs the two byte-for-byte.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tusim/internal/harness"
	"tusim/internal/stats"
)

// Options configures a Server.
type Options struct {
	// Runner is the shared harness runner (required). The server owns
	// its OnCellDone hook: per-cell progress dispatch and the cell
	// latency histogram hang off it.
	Runner *harness.Runner
	// MaxJobs bounds concurrently building jobs; queued jobs wait.
	// Cell-level parallelism inside one job is still bounded by
	// Runner.Workers. Default 2.
	MaxJobs int
	// JobTimeout is the per-job deadline; a job that exceeds it fails
	// with "job deadline exceeded". 0 disables.
	JobTimeout time.Duration
	// KeepJobs bounds the finished-job history in the registry (oldest
	// terminal jobs are evicted past it). Default 512.
	KeepJobs int
	// Warnf receives operational warnings (never figure output). Nil
	// discards.
	Warnf func(format string, args ...any)
}

// Server is the tusd core, independent of the listener so tests can
// drive it through httptest.
type Server struct {
	o   Options
	r   *harness.Runner
	rec *harness.BenchRecorder
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // job IDs in creation order
	inflight map[string]*Job // coalesce key -> non-terminal job
	byCell   map[string]map[*Job]bool
	seq      int
	// jobsCompleted counts terminal jobs by (kind, terminal state).
	jobsCompleted map[[2]string]int64

	jobsInflight atomic.Int64
	coalescedN   atomic.Int64

	// cellHist observes the scheduler-side wall latency of every
	// freshly simulated cell, in microseconds (stats.Histogram reused
	// for /metrics export).
	metricSet *stats.Set
	cellHist  *stats.Histogram

	// sem is the bounded job pool: one slot per concurrently building
	// job.
	sem chan struct{}

	draining atomic.Bool
	builds   sync.WaitGroup
	started  time.Time
}

// New builds a server around the shared runner and installs its
// OnCellDone hook.
func New(o Options) *Server {
	if o.Runner == nil {
		panic("server: Options.Runner is required")
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 2
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 512
	}
	ms := stats.NewSet("tusd")
	s := &Server{
		o:             o,
		r:             o.Runner,
		rec:           harness.NewBenchRecorder(o.Runner),
		jobs:          map[string]*Job{},
		inflight:      map[string]*Job{},
		byCell:        map[string]map[*Job]bool{},
		jobsCompleted: map[[2]string]int64{},
		metricSet:     ms,
		cellHist:      ms.Histogram("cell_latency_us"),
		started:       time.Now(),
	}
	s.sem = make(chan struct{}, o.MaxJobs)
	o.Runner.OnCellDone = s.onCellDone
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// warnf routes an operational warning.
func (s *Server) warnf(format string, args ...any) {
	if s.o.Warnf != nil {
		s.o.Warnf(format, args...)
	}
}

// onCellDone is the Runner's cell-completion hook: it feeds the cell
// latency histogram and fans progress out to every job waiting on that
// cell. It runs on harness worker goroutines.
func (s *Server) onCellDone(key string, cached bool, d time.Duration, err error) {
	if !cached && err == nil {
		s.cellHist.Observe(uint64(d.Microseconds()))
	}
	s.mu.Lock()
	waiters := s.byCell[key]
	var jobs []*Job
	for j := range waiters {
		jobs = append(jobs, j)
	}
	delete(s.byCell, key)
	s.mu.Unlock()
	for _, j := range jobs {
		s.deliverCell(j, key, cached, d, err)
	}
}

// deliverCell updates one job's progress for a completed cell and
// broadcasts the event. Idempotent per (job, cell): late zombie
// completions after a supervised deadline cannot double-count.
func (s *Server) deliverCell(j *Job, key string, cached bool, d time.Duration, err error) {
	j.mu.Lock()
	if !j.pending[key] {
		j.mu.Unlock()
		return
	}
	delete(j.pending, key)
	j.cellsDone++
	if err == nil {
		if cached {
			j.cellsCached++
		} else {
			j.cellsRun++
		}
	}
	ev := map[string]any{
		"cell":    key,
		"cached":  cached,
		"seconds": d.Seconds(),
		"done":    j.cellsDone,
		"total":   j.cellsTotal,
	}
	if err != nil {
		ev["error"] = err.Error()
	}
	data, _ := json.Marshal(ev)
	j.broadcast(sseEvent{name: "cell", data: data})
	j.mu.Unlock()
}

// jobCellEvent reports direct (non-Runner) per-cell progress; the
// litmus job uses it since model-check cells do not flow through the
// harness.
func (s *Server) jobCellEvent(j *Job, cell string, cached bool, seconds float64, done, total int, err error) {
	j.mu.Lock()
	j.cellsDone = done
	ev := map[string]any{
		"cell":    cell,
		"cached":  cached,
		"seconds": seconds,
		"done":    done,
		"total":   total,
	}
	if err != nil {
		ev["error"] = err.Error()
	}
	data, _ := json.Marshal(ev)
	j.broadcast(sseEvent{name: "cell", data: data})
	j.mu.Unlock()
}

// Submit validates req, coalesces it against in-flight jobs, and
// schedules a new job if none matched. The bool reports whether the
// request coalesced onto an existing job.
func (s *Server) Submit(req JobRequest) (*Job, bool, error) {
	p, err := s.plan(req)
	if err != nil {
		return nil, false, err
	}
	if s.draining.Load() {
		return nil, false, errDraining
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if j := s.inflight[p.key]; j != nil {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.coalescedN.Add(1)
		s.mu.Unlock()
		cancel()
		return j, true, nil
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%d", s.seq),
		Kind:        p.kind,
		Name:        p.name,
		Key:         p.key,
		state:       JobQueued,
		contentType: p.contentType,
		created:     time.Now(),
		pending:     make(map[string]bool, len(p.cells)),
		cellsTotal:  len(p.cells),
		done:        make(chan struct{}),
		cancel:      cancel,
	}
	if p.total > 0 {
		j.cellsTotal = p.total
	}
	for _, c := range p.cells {
		k := harness.CellKey(c)
		j.pending[k] = true
		w := s.byCell[k]
		if w == nil {
			w = map[*Job]bool{}
			s.byCell[k] = w
		}
		w[j] = true
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.inflight[p.key] = j
	s.evictLocked()
	s.mu.Unlock()
	s.jobsInflight.Add(1)
	s.builds.Add(1)
	go s.runJob(ctx, j, p)
	return j, false, nil
}

var errDraining = errors.New("server is draining")

// evictLocked trims the oldest terminal jobs past the KeepJobs bound;
// callers hold s.mu.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.o.KeepJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobDone, JobFailed, JobCanceled:
		return true
	}
	return false
}

// runJob drives one job: pool admission, per-job deadline, build, and
// idempotent finalization. The build goroutine is never killed — on
// cancel or deadline it is abandoned (its cells keep warming the shared
// cache) and runJob waits for it so drain has a precise meaning.
func (s *Server) runJob(ctx context.Context, j *Job, p *jobPlan) {
	defer s.builds.Done()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finalize(j, p, JobCanceled, nil, "canceled while queued")
		return
	}
	defer func() { <-s.sem }()
	if s.o.JobTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.o.JobTimeout)
		defer tcancel()
	}
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.broadcast(j.stateEventLocked())
	j.mu.Unlock()

	innerDone := make(chan struct{})
	var out []byte
	var err error
	go func() {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("job panicked: %v", v)
			}
			close(innerDone)
		}()
		run := func() error {
			out, err = p.run(ctx, j)
			return err
		}
		if p.timed != "" {
			s.rec.Time(p.timed, run)
		} else {
			run()
		}
	}()
	select {
	case <-innerDone:
		switch {
		case err == nil:
			s.finalize(j, p, JobDone, out, "")
		case errors.Is(err, context.Canceled):
			s.finalize(j, p, JobCanceled, nil, "canceled")
		case errors.Is(err, context.DeadlineExceeded):
			s.finalize(j, p, JobFailed, nil, fmt.Sprintf("job deadline exceeded (%v)", s.o.JobTimeout))
		default:
			s.finalize(j, p, JobFailed, out, err.Error())
		}
	case <-ctx.Done():
		if errors.Is(context.Cause(ctx), context.DeadlineExceeded) {
			s.finalize(j, p, JobFailed, nil, fmt.Sprintf("job deadline exceeded (%v)", s.o.JobTimeout))
		} else {
			s.finalize(j, p, JobCanceled, nil, "canceled")
		}
		// Wait out the abandoned build so the pool slot stays accounted
		// and drain means "no build running anywhere".
		<-innerDone
	}
}

// finalize commits the job's terminal state exactly once: the first
// transition wins, later calls are no-ops.
func (s *Server) finalize(j *Job, p *jobPlan, state string, out []byte, errMsg string) {
	deg := s.degradedFor(p)
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	j.mu.Lock()
	pending := j.pending
	j.mu.Unlock()
	for k := range pending {
		if w := s.byCell[k]; w != nil {
			delete(w, j)
			if len(w) == 0 {
				delete(s.byCell, k)
			}
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCanceled {
		j.mu.Unlock()
		return
	}
	j.state = state
	if out != nil {
		j.output = out
	}
	j.errMsg = errMsg
	j.degraded = deg
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	j.mu.Unlock()

	s.mu.Lock()
	s.jobsCompleted[[2]string{j.Kind, state}]++
	s.mu.Unlock()
	s.jobsInflight.Add(-1)

	v := j.view()
	data, _ := json.Marshal(v)
	j.mu.Lock()
	j.broadcast(sseEvent{name: state, data: data})
	j.mu.Unlock()
	close(j.done)
	if state == JobFailed {
		s.warnf("tusd: job %s (%s) failed: %s", j.ID, j.Name, errMsg)
	}
	if len(deg) > 0 {
		s.warnf("tusd: job %s (%s) degraded: %d cell(s) quarantined", j.ID, j.Name, len(deg))
	}
}

// degradedFor filters the runner's accumulated quarantine degradations
// down to the tags this job's builders record under.
func (s *Server) degradedFor(p *jobPlan) []harness.DegradedCell {
	if p == nil || len(p.degradeTags) == 0 {
		return nil
	}
	tag := map[string]bool{}
	for _, t := range p.degradeTags {
		tag[t] = true
	}
	var out []harness.DegradedCell
	for _, d := range s.r.DegradedCells() {
		if tag[d.Figure] {
			out = append(out, d)
		}
	}
	return out
}

// Cancel requests cancellation of a job; terminal jobs are unaffected.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return j, true
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every registered job in creation order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, j)
		}
	}
	return out
}

// JobsInflight reports the number of jobs currently queued or running —
// the same gauge /metrics exports as tusd_jobs_inflight. tusload's
// quiesce phase and the drain tests read it directly instead of
// scraping.
func (s *Server) JobsInflight() int64 { return s.jobsInflight.Load() }

// StartDrain flips the server into draining mode: /healthz reports 503
// and new job submissions are refused. In-flight jobs keep running.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until every job build (including abandoned ones) has
// finished, or ctx expires.
func (s *Server) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.builds.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// BenchReport assembles the perf trajectory record for the server's
// lifetime (figure timings, cell accounting, cache split) — the same
// BENCH_harness.json shape tusbench emits.
func (s *Server) BenchReport() harness.BenchReport {
	return s.rec.Report()
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/figures", s.handleFigures)
	s.mux.HandleFunc("GET /v1/figures/{fig}", s.handleFigure)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleJobOutput)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/bench", s.handleBench)
	// Live profiling of a running daemon: CPU/heap/goroutine profiles on
	// the same mux as the operational endpoints (tusd binds loopback-ish
	// harness ports, not the public internet). `go tool pprof
	// http://host/debug/pprof/profile` while a figure job runs is the
	// supported way to find simulator hot spots in situ.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Tusd-Version", harness.Version)
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, harness.List())
}

// handleFigure is the synchronous convenience endpoint: it submits (or
// coalesces onto) a figure job, waits for it, and serves the exact
// bytes `tusbench -fig <n>` prints. Job accounting rides in X-Tusd-*
// headers so the body stays byte-identical to the CLI.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	fig, err := strconv.Atoi(r.PathValue("fig"))
	if err != nil {
		http.Error(w, "bad figure number", http.StatusBadRequest)
		return
	}
	j, coalesced, err := s.Submit(JobRequest{Kind: "figure", Fig: fig})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client went away; the job keeps running (other clients may be
		// attached, and its cells warm the shared cache either way).
		return
	}
	v := j.view()
	w.Header().Set("X-Tusd-Job", v.ID)
	w.Header().Set("X-Tusd-Coalesced", strconv.FormatBool(coalesced))
	w.Header().Set("X-Tusd-Cells-Total", strconv.Itoa(v.CellsTotal))
	w.Header().Set("X-Tusd-Cells-Run", strconv.Itoa(v.CellsRun))
	w.Header().Set("X-Tusd-Cells-Cached", strconv.Itoa(v.CellsCached))
	w.Header().Set("X-Tusd-Degraded", strconv.Itoa(len(v.Degraded)))
	switch v.State {
	case JobDone:
		data, ct, _ := j.Output()
		w.Header().Set("Content-Type", ct)
		w.Write(data)
	case JobCanceled:
		http.Error(w, "job canceled", http.StatusConflict)
	default:
		http.Error(w, "figure job failed: "+v.Error, http.StatusInternalServerError)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad job request: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, coalesced, err := s.Submit(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.Header().Set("X-Tusd-Coalesced", strconv.FormatBool(coalesced))
	status := http.StatusAccepted
	if coalesced {
		status = http.StatusOK
	}
	writeJSON(w, status, j.view())
}

func writeSubmitError(w http.ResponseWriter, err error) {
	if errors.Is(err, errDraining) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobJSON, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.view())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleJobOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	data, ct, state := j.Output()
	switch state {
	case JobDone, JobFailed:
		if data == nil {
			http.Error(w, "job produced no output: "+j.view().Error, http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", ct)
		w.Write(data)
	case JobCanceled:
		http.Error(w, "job canceled", http.StatusConflict)
	default:
		http.Error(w, "job not finished", http.StatusConflict)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.BenchReport())
}

// handleJobEvents streams the job's progress as server-sent events:
// an initial `state` snapshot, `cell` events as the matrix completes,
// and a terminal `done`/`failed`/`canceled` event carrying the full
// job JSON, after which the stream closes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	writeSSE(w, snap)
	fl.Flush()
	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case ev := <-ch:
			writeSSE(w, ev)
			fl.Flush()
			if ev.name == JobDone || ev.name == JobFailed || ev.name == JobCanceled {
				return
			}
		case <-j.done:
			// Drain any queued events, then re-send the terminal
			// snapshot so even a slow subscriber ends with it.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, ev)
				default:
					v := j.view()
					data, _ := json.Marshal(v)
					writeSSE(w, sseEvent{name: v.State, data: data})
					fl.Flush()
					return
				}
			}
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev sseEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
