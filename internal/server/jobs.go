package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"tusim/internal/config"
	"tusim/internal/harness"
	"tusim/internal/litmus"
	"tusim/internal/modelcheck"
	"tusim/internal/supervise"
	"tusim/internal/workload"
)

// Job states. A job is terminal in exactly one of done/failed/canceled;
// the first transition wins (a canceled job whose abandoned build later
// completes stays canceled).
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobRequest is the POST /v1/jobs body. Kind selects the job type;
// the other fields parameterize it:
//
//	{"kind":"figure","fig":9}
//	{"kind":"hist","sb":114}
//	{"kind":"cells","benches":["502.gcc5"],"mechs":["base","TUS"],"sbs":[114]}
//	{"kind":"litmus","progs":["SB","MP"],"mechs":["TUS"],"smoke":true}
type JobRequest struct {
	Kind    string   `json:"kind"`
	Fig     int      `json:"fig,omitempty"`
	SB      int      `json:"sb,omitempty"`
	Benches []string `json:"benches,omitempty"`
	Mechs   []string `json:"mechs,omitempty"`
	SBs     []int    `json:"sbs,omitempty"`
	Progs   []string `json:"progs,omitempty"`
	Smoke   bool     `json:"smoke,omitempty"`
}

// JobJSON is the wire form of a job's status.
type JobJSON struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Key is the job's content-addressed coalesce key: identical
	// requests share it (and, while one is in flight, share the job).
	Key   string `json:"key"`
	Error string `json:"error,omitempty"`
	// CellsTotal is the job's full simulation-cell matrix; CellsDone
	// counts first-time completions observed while this job was in
	// flight, split into CellsRun (simulated) and CellsCached (served
	// from the shared disk cache). A warm job completes with
	// cells_run == 0: the whole matrix came from cache or from cells
	// already memoized in-process.
	CellsTotal  int `json:"cells_total"`
	CellsDone   int `json:"cells_done"`
	CellsRun    int `json:"cells_run"`
	CellsCached int `json:"cells_cached"`
	// Coalesced counts later identical requests that attached to this
	// job instead of starting their own.
	Coalesced int `json:"coalesced"`
	// Degraded lists quarantined cells the figure builders skipped; a
	// response carrying this section is an explicit partial result.
	Degraded   []harness.DegradedCell `json:"degraded,omitempty"`
	CreatedAt  string                 `json:"created_at"`
	StartedAt  string                 `json:"started_at,omitempty"`
	FinishedAt string                 `json:"finished_at,omitempty"`
	Seconds    float64                `json:"seconds,omitempty"`
}

// sseEvent is one server-sent event: a name and a JSON payload.
type sseEvent struct {
	name string
	data []byte
}

// Job is one scheduled unit of work. All mutable state is behind mu;
// done closes exactly once on the first terminal transition.
type Job struct {
	ID   string
	Kind string
	Name string
	Key  string

	mu          sync.Mutex
	state       string
	output      []byte
	contentType string
	errMsg      string
	degraded    []harness.DegradedCell
	cellsTotal  int
	pending     map[string]bool
	cellsDone   int
	cellsRun    int
	cellsCached int
	coalesced   int
	created     time.Time
	started     time.Time
	finished    time.Time
	subs        map[chan sseEvent]bool

	cancel context.CancelFunc
	done   chan struct{}
}

// view snapshots the job as wire JSON.
func (j *Job) view() JobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobJSON{
		ID:          j.ID,
		Kind:        j.Kind,
		Name:        j.Name,
		State:       j.state,
		Key:         j.Key,
		Error:       j.errMsg,
		CellsTotal:  j.cellsTotal,
		CellsDone:   j.cellsDone,
		CellsRun:    j.cellsRun,
		CellsCached: j.cellsCached,
		Coalesced:   j.coalesced,
		Degraded:    append([]harness.DegradedCell(nil), j.degraded...),
		CreatedAt:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		v.Seconds = j.finished.Sub(j.started).Seconds()
	}
	return v
}

// Output returns the job's result bytes and content type once terminal.
func (j *Job) Output() (data []byte, contentType string, state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.contentType, j.state
}

// broadcast sends ev to every subscriber without blocking: a slow SSE
// client drops intermediate cell events but always receives the
// terminal snapshot (the stream re-sends it from job.done).
func (j *Job) broadcast(ev sseEvent) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an SSE listener and returns its channel plus an
// initial snapshot event.
func (j *Job) subscribe() (chan sseEvent, sseEvent) {
	ch := make(chan sseEvent, 64)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = map[chan sseEvent]bool{}
	}
	j.subs[ch] = true
	snap := j.stateEventLocked()
	j.mu.Unlock()
	return ch, snap
}

// unsubscribe removes an SSE listener.
func (j *Job) unsubscribe(ch chan sseEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// stateEventLocked renders the job's current state as an event; callers
// hold mu.
func (j *Job) stateEventLocked() sseEvent {
	data, _ := json.Marshal(map[string]any{
		"state":        j.state,
		"cells_total":  j.cellsTotal,
		"cells_done":   j.cellsDone,
		"cells_run":    j.cellsRun,
		"cells_cached": j.cellsCached,
	})
	return sseEvent{name: "state", data: data}
}

// jobPlan is a validated, runnable job: its coalesce key, its known
// cell matrix (nil for litmus jobs, which do not go through the
// Runner), and the build function.
type jobPlan struct {
	kind        string
	name        string
	key         string
	cells       []harness.Cell
	degradeTags []string
	contentType string
	// total overrides the progress denominator for jobs whose work does
	// not flow through the Runner (litmus); 0 means len(cells).
	total int
	// timed, when non-empty, records the build's wall-clock under this
	// name in the server's BenchRecorder (the /v1/bench trajectory).
	timed string
	run   func(ctx context.Context, j *Job) ([]byte, error)
}

// plan validates a request against the registry and compiles it.
func (s *Server) plan(req JobRequest) (*jobPlan, error) {
	switch req.Kind {
	case "figure":
		return s.planFigure(req.Fig)
	case "hist":
		sb := req.SB
		if sb == 0 {
			sb = 114
		}
		return s.planHist(sb)
	case "cells":
		return s.planCells(req)
	case "litmus":
		return s.planLitmus(req)
	}
	return nil, fmt.Errorf("unknown job kind %q (want figure, hist, cells, or litmus)", req.Kind)
}

// cellsKey derives the job's coalesce key from the cells' existing
// content-addressed cache keys, so two requests coalesce exactly when
// they would share every cache entry.
func (s *Server) cellsKey(kind, extra string, cells []harness.Cell) string {
	h := sha256.New()
	io.WriteString(h, harness.Version+"|"+kind+"|"+extra)
	for _, c := range cells {
		io.WriteString(h, "|")
		io.WriteString(h, s.r.ContentKey(c))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) planFigure(fig int) (*jobPlan, error) {
	spec, ok := harness.FigureByNum(fig)
	if !ok {
		return nil, fmt.Errorf("unknown figure %d (GET /v1/figures lists the servable set)", fig)
	}
	cells := harness.FigureCells(fig)
	return &jobPlan{
		kind:        "figure",
		name:        spec.Name,
		key:         s.cellsKey("figure", spec.Name, cells),
		cells:       cells,
		degradeTags: spec.DegradeTags,
		contentType: "text/plain; charset=utf-8",
		timed:       spec.Name,
		run: func(ctx context.Context, j *Job) ([]byte, error) {
			var buf bytes.Buffer
			if err := harness.RenderFigure(s.r, fig, &buf); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
	}, nil
}

func (s *Server) planHist(sb int) (*jobPlan, error) {
	if sb <= 0 {
		return nil, fmt.Errorf("hist: sb must be positive, got %d", sb)
	}
	cells := dedupCells(fullHistMatrix(sb))
	name := fmt.Sprintf("hist@%d", sb)
	return &jobPlan{
		kind:        "hist",
		name:        name,
		key:         s.cellsKey("hist", name, cells),
		cells:       cells,
		degradeTags: []string{"histograms"},
		contentType: "text/plain; charset=utf-8",
		run: func(ctx context.Context, j *Job) ([]byte, error) {
			rows, err := harness.Histograms(s.r, sb)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			harness.PrintHistograms(&buf, rows)
			return buf.Bytes(), nil
		},
	}, nil
}

// fullHistMatrix mirrors harness.Histograms's cell set: the ST SB-bound
// matrix at one SB size.
func fullHistMatrix(sb int) []harness.Cell {
	var cells []harness.Cell
	for _, b := range workload.SBBound() {
		cells = append(cells, harness.Cell{Bench: b, Mech: config.Baseline, SB: sb})
		for _, m := range config.Mechanisms {
			cells = append(cells, harness.Cell{Bench: b, Mech: m, SB: sb})
		}
	}
	return cells
}

// dedupCells drops duplicate cell keys, keeping first-appearance order.
func dedupCells(cells []harness.Cell) []harness.Cell {
	seen := make(map[string]bool, len(cells))
	out := make([]harness.Cell, 0, len(cells))
	for _, c := range cells {
		k := harness.CellKey(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// cellRow is one cell-matrix result row.
type cellRow struct {
	Bench       string  `json:"bench"`
	Mech        string  `json:"mech"`
	SB          int     `json:"sb"`
	Cycles      uint64  `json:"cycles,omitempty"`
	SBStallPct  float64 `json:"sb_stall_pct,omitempty"`
	EDP         float64 `json:"edp,omitempty"`
	Quarantined string  `json:"quarantined,omitempty"`
}

func (s *Server) planCells(req JobRequest) (*jobPlan, error) {
	if len(req.Benches) == 0 {
		return nil, fmt.Errorf("cells: benches is required")
	}
	mechs := req.Mechs
	if len(mechs) == 0 {
		mechs = []string{"base", "TUS"}
	}
	sbs := req.SBs
	if len(sbs) == 0 {
		sbs = []int{114}
	}
	var cells []harness.Cell
	for _, name := range req.Benches {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("cells: unknown benchmark %q (GET /v1/figures lists the servable set)", name)
		}
		for _, mn := range mechs {
			m, err := config.ParseMechanism(mn)
			if err != nil {
				return nil, fmt.Errorf("cells: %w", err)
			}
			for _, sb := range sbs {
				if sb <= 0 {
					return nil, fmt.Errorf("cells: sb must be positive, got %d", sb)
				}
				cells = append(cells, harness.Cell{Bench: b, Mech: m, SB: sb})
			}
		}
	}
	cells = dedupCells(cells)
	name := fmt.Sprintf("cells(%d)", len(cells))
	return &jobPlan{
		kind:        "cells",
		name:        name,
		key:         s.cellsKey("cells", "", cells),
		cells:       cells,
		contentType: "application/json",
		run: func(ctx context.Context, j *Job) ([]byte, error) {
			// Prefetch fans the matrix out to the worker pool; rows then
			// assemble in deterministic request order. Cancellation is
			// honored between rows.
			if err := s.r.Prefetch(cells); err != nil {
				return nil, err
			}
			rows := make([]cellRow, 0, len(cells))
			for _, c := range cells {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				row := cellRow{Bench: c.Bench.Name, Mech: c.Mech.String(), SB: c.SB}
				res, err := s.r.Run(c.Bench, c.Mech, c.SB)
				switch {
				case err == nil:
					row.Cycles = res.Cycles
					row.SBStallPct = res.SBStallPct()
					row.EDP = res.EDP
				case isQuarantined(err):
					row.Quarantined = err.Error()
				default:
					return nil, err
				}
				rows = append(rows, row)
			}
			data, err := json.MarshalIndent(rows, "", "  ")
			if err != nil {
				return nil, err
			}
			return append(data, '\n'), nil
		},
	}, nil
}

// isQuarantined reports whether err is a supervisor quarantine (the
// cells job surfaces these per-row instead of failing the job).
func isQuarantined(err error) bool {
	var q *supervise.Quarantined
	return errors.As(err, &q)
}

func (s *Server) planLitmus(req JobRequest) (*jobPlan, error) {
	tests := litmus.Tests()
	byName := make(map[string]litmus.Test, len(tests))
	var names []string
	for _, lt := range tests {
		byName[lt.Name] = lt
		names = append(names, lt.Name)
	}
	selected := tests
	if len(req.Progs) > 0 {
		selected = nil
		for _, n := range req.Progs {
			lt, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("litmus: unknown program %q (suite: %s)", n, strings.Join(names, ","))
			}
			selected = append(selected, lt)
		}
	}
	mechNames := req.Mechs
	if len(mechNames) == 0 {
		mechNames = []string{"base", "CSB", "TUS"}
	}
	var mechs []config.Mechanism
	for _, mn := range mechNames {
		m, err := config.ParseMechanism(mn)
		if err != nil {
			return nil, fmt.Errorf("litmus: %w", err)
		}
		mechs = append(mechs, m)
	}
	eo := modelcheck.ExploreOpts{Skews: 8, MaxDecisions: 8, MaxRuns: 512}
	if req.Smoke {
		eo.Skews, eo.MaxDecisions, eo.MaxRuns = 3, 4, 64
	}
	var progNames []string
	for _, lt := range selected {
		progNames = append(progNames, lt.Name)
	}
	extra := fmt.Sprintf("progs=%s|mechs=%s|smoke=%v", strings.Join(progNames, ","), strings.Join(mechNames, ","), req.Smoke)
	total := len(selected) * len(mechs)
	return &jobPlan{
		kind:        "litmus",
		name:        fmt.Sprintf("litmus(%d)", total),
		key:         s.cellsKey("litmus", extra, nil),
		contentType: "text/plain; charset=utf-8",
		total:       total,
		run: func(ctx context.Context, j *Job) ([]byte, error) {
			var buf bytes.Buffer
			unsound := 0
			done := 0
			for _, lt := range selected {
				for _, m := range mechs {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					rep, err := modelcheck.Check(lt, m, eo, modelcheck.Limits{MaxStates: modelcheck.DefaultMaxStates})
					if err != nil {
						return nil, err
					}
					rep.Write(&buf)
					if !rep.Sound() {
						unsound++
					}
					done++
					s.jobCellEvent(j, fmt.Sprintf("%s/%v", lt.Name, m), false, 0, done, total, nil)
				}
			}
			if unsound > 0 {
				// The report text is still the job output; the error marks
				// the job failed so clients cannot mistake it for a pass.
				j.mu.Lock()
				j.output = buf.Bytes()
				j.contentType = "text/plain; charset=utf-8"
				j.mu.Unlock()
				return buf.Bytes(), fmt.Errorf("unsound: %d litmus cell(s) produced TSO-forbidden behaviour", unsound)
			}
			return buf.Bytes(), nil
		},
	}, nil
}
