package server

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"tusim/internal/harness"
	"tusim/internal/stats"
)

// handleMetrics exposes operational counters in the Prometheus text
// exposition format, hand-rolled over the repo's own stats.Histogram so
// the server stays dependency-free. Series:
//
//	tusd_info{harness_version="..."} 1
//	tusd_uptime_seconds
//	tusd_jobs_inflight
//	tusd_jobs_completed_total{kind="...",status="..."}
//	tusd_coalesced_total
//	tusd_cells_run_total / tusd_cells_cached_total / tusd_cache_corrupt_total
//	tusd_cell_seconds_bucket{le="..."} / _sum / _count
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	fmt.Fprintf(&b, "# HELP tusd_info Build/identity info for the tusd daemon.\n")
	fmt.Fprintf(&b, "# TYPE tusd_info gauge\n")
	fmt.Fprintf(&b, "tusd_info{harness_version=%q} 1\n", harness.Version)

	fmt.Fprintf(&b, "# HELP tusd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(&b, "# TYPE tusd_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "tusd_uptime_seconds %s\n", promFloat(time.Since(s.started).Seconds()))

	fmt.Fprintf(&b, "# HELP tusd_jobs_inflight Jobs currently queued or running.\n")
	fmt.Fprintf(&b, "# TYPE tusd_jobs_inflight gauge\n")
	fmt.Fprintf(&b, "tusd_jobs_inflight %d\n", s.jobsInflight.Load())

	s.mu.Lock()
	keys := make([][2]string, 0, len(s.jobsCompleted))
	for k := range s.jobsCompleted {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	fmt.Fprintf(&b, "# HELP tusd_jobs_completed_total Terminal jobs by kind and final status.\n")
	fmt.Fprintf(&b, "# TYPE tusd_jobs_completed_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "tusd_jobs_completed_total{kind=%q,status=%q} %d\n", k[0], k[1], s.jobsCompleted[k])
	}
	s.mu.Unlock()

	fmt.Fprintf(&b, "# HELP tusd_coalesced_total Requests coalesced onto an already in-flight identical job.\n")
	fmt.Fprintf(&b, "# TYPE tusd_coalesced_total counter\n")
	fmt.Fprintf(&b, "tusd_coalesced_total %d\n", s.coalescedN.Load())

	cs := s.r.CacheStats()
	fmt.Fprintf(&b, "# HELP tusd_cells_run_total Simulation cells freshly executed (cache misses).\n")
	fmt.Fprintf(&b, "# TYPE tusd_cells_run_total counter\n")
	fmt.Fprintf(&b, "tusd_cells_run_total %d\n", cs.CellsRun)
	fmt.Fprintf(&b, "# HELP tusd_cells_cached_total Simulation cells served from the content-addressed disk cache.\n")
	fmt.Fprintf(&b, "# TYPE tusd_cells_cached_total counter\n")
	fmt.Fprintf(&b, "tusd_cells_cached_total %d\n", cs.CellsCached)
	fmt.Fprintf(&b, "# HELP tusd_cache_corrupt_total Disk-cache entries that failed to decode and were resimulated.\n")
	fmt.Fprintf(&b, "# TYPE tusd_cache_corrupt_total counter\n")
	fmt.Fprintf(&b, "tusd_cache_corrupt_total %d\n", cs.CacheCorrupt)

	writeHistMetric(&b, "tusd_cell_seconds",
		"Wall-clock latency of freshly simulated cells, in seconds.",
		s.cellHist.Snapshot(), 1e6) // samples are microseconds

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// writeHistMetric renders one stats.Histogram as a Prometheus
// cumulative histogram. scale divides the raw sample unit into the
// exported unit (1e6 for µs samples exported as seconds). Empty
// power-of-two buckets are elided (Prometheus histograms permit sparse
// bucket sets as long as they stay cumulative and end in +Inf).
func writeHistMetric(b *strings.Builder, name, help string, snap stats.HistSnapshot, scale float64) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, c := range snap.Buckets {
		cum += c
		if c == 0 {
			continue
		}
		le := "+Inf"
		if i < stats.HistBuckets-1 {
			le = promFloat(float64(stats.BucketUpper(i)) / scale)
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(float64(snap.Sum)/scale))
	fmt.Fprintf(b, "%s_count %d\n", name, snap.Count)
}

// promFloat formats a float the way Prometheus expects (no exponent
// surprises for the common cases, NaN/Inf spelled out).
func promFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
