package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tusim/internal/harness"
)

// testOps is deliberately tiny: server tests exercise scheduling,
// coalescing, and byte identity, not simulation fidelity (the harness
// golden suite owns that).
const (
	testOps  = 2500
	testPOps = 300
)

func testRunner(t *testing.T, cacheDir string) *harness.Runner {
	t.Helper()
	r := harness.NewQuickRunner()
	r.Ops = testOps
	r.ParallelOps = testPOps
	r.Workers = 2
	if cacheDir != "" {
		c, err := harness.NewDiskCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = c
	}
	r.Supervisor = harness.NewSupervisor(0)
	return r
}

func newTestServer(t *testing.T, o Options) (*Server, *harness.Runner) {
	t.Helper()
	if o.Runner == nil {
		o.Runner = testRunner(t, t.TempDir())
	}
	s := New(o)
	return s, o.Runner
}

func waitJob(t *testing.T, j *Job, timeout time.Duration) JobJSON {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish in %v (state %s)", j.ID, timeout, j.view().State)
	}
	return j.view()
}

// TestFigureByteIdentity is the tentpole guarantee: GET /v1/figures/9
// serves exactly the bytes `tusbench -fig 9` prints — cold (every cell
// simulated), under 8-way concurrent fan-in (matrix executed exactly
// once), and warm (cells_run == 0).
func TestFigureByteIdentity(t *testing.T) {
	// CLI reference: an independent runner at the same scale, no cache,
	// rendering through the exact code path tusbench's figure loop uses.
	var want bytes.Buffer
	if err := harness.RenderFigure(testRunner(t, ""), 9, &want); err != nil {
		t.Fatal(err)
	}

	s, r := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold: 8 concurrent requests for the same uncached figure.
	type reply struct {
		body []byte
		hdr  http.Header
		code int
	}
	replies := make([]reply, 8)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/figures/9")
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			replies[i] = reply{body, resp.Header, resp.StatusCode}
		}(i)
	}
	wg.Wait()

	nCells := len(harness.FigureCells(9))
	for i, rp := range replies {
		if rp.code != http.StatusOK {
			t.Fatalf("req %d: status %d, body %s", i, rp.code, rp.body)
		}
		if !bytes.Equal(rp.body, want.Bytes()) {
			t.Fatalf("req %d: served figure differs from CLI bytes:\nserver:\n%s\nCLI:\n%s", i, rp.body, want.Bytes())
		}
	}
	// The matrix ran exactly once no matter how the 8 requests raced:
	// every fresh simulation is accounted in CacheStats.
	if cs := r.CacheStats(); cs.CellsRun != int64(nCells) {
		t.Fatalf("cold 8-way fan-in: cells_run = %d, want exactly %d", cs.CellsRun, nCells)
	}
	// Every request either created the one job or coalesced onto it.
	if jobs, co := len(s.Jobs()), int(s.coalescedN.Load()); jobs+co != 8 {
		t.Fatalf("jobs(%d) + coalesced(%d) != 8 requests", jobs, co)
	}

	// Warm: same bytes, zero cells simulated.
	resp, err := http.Get(ts.URL + "/v1/figures/9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("warm fetch differs from CLI bytes")
	}
	if got := resp.Header.Get("X-Tusd-Cells-Run"); got != "0" {
		t.Fatalf("warm fetch X-Tusd-Cells-Run = %q, want 0", got)
	}
	if cs := r.CacheStats(); cs.CellsRun != int64(nCells) {
		t.Fatalf("warm fetch resimulated: cells_run = %d, want %d", cs.CellsRun, nCells)
	}
}

// TestSubmitCoalescesIdenticalRequests pins the singleflight contract
// at the Submit level, where ordering is deterministic: the first
// request creates the job, the next seven attach to it.
func TestSubmitCoalescesIdenticalRequests(t *testing.T) {
	s, r := newTestServer(t, Options{MaxJobs: 2})
	req := JobRequest{Kind: "cells", Benches: []string{"502.gcc1", "502.gcc2"}, Mechs: []string{"base", "TUS"}}

	first, co, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if co {
		t.Fatal("first submit reported coalesced")
	}
	for i := 0; i < 7; i++ {
		j, co, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if !co || j != first {
			t.Fatalf("submit %d: coalesced=%v job=%s, want attach to %s", i, co, j.ID, first.ID)
		}
	}
	v := waitJob(t, first, 2*time.Minute)
	if v.State != JobDone {
		t.Fatalf("job state %s (%s), want done", v.State, v.Error)
	}
	if v.Coalesced != 7 {
		t.Fatalf("job coalesced = %d, want 7", v.Coalesced)
	}
	if s.coalescedN.Load() != 7 {
		t.Fatalf("server coalesce counter = %d, want 7", s.coalescedN.Load())
	}
	if cs := r.CacheStats(); cs.CellsRun != 4 {
		t.Fatalf("cells_run = %d, want 4 (2 benches x 2 mechs, exactly once)", cs.CellsRun)
	}
	if v.CellsDone != 4 || v.CellsRun != 4 || v.CellsTotal != 4 {
		t.Fatalf("job progress done=%d run=%d total=%d, want 4/4/4", v.CellsDone, v.CellsRun, v.CellsTotal)
	}

	// A different request must not coalesce.
	other, co, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if co || other == first {
		t.Fatal("distinct request coalesced onto the wrong job")
	}
	waitJob(t, other, 2*time.Minute)

	// The cells output itself is deterministic JSON.
	data, ct, _ := first.Output()
	if ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var rows []cellRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(rows) != 4 || rows[0].Cycles == 0 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
}

// TestCancel covers both cancellation shapes: a queued job dies
// immediately, and a running job is abandoned the moment its context
// is canceled while its terminal state stays canceled even after the
// abandoned build completes.
func TestCancel(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})

	// Occupy the single pool slot.
	blocker, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc1", "502.gcc2", "502.gcc3"}})
	if err != nil {
		t.Fatal(err)
	}
	// This one queues behind it; cancel must not wait for the slot.
	queued, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	v := waitJob(t, queued, 30*time.Second)
	if v.State != JobCanceled {
		t.Fatalf("queued job state %s, want canceled", v.State)
	}
	if v := waitJob(t, blocker, 2*time.Minute); v.State != JobDone {
		t.Fatalf("blocker state %s (%s), want done", v.State, v.Error)
	}

	// Cancel mid-run: the litmus job checks its context between cells.
	lit, _, err := s.Submit(JobRequest{Kind: "litmus"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(lit.ID); !ok {
		t.Fatal("cancel: litmus job not found")
	}
	v = waitJob(t, lit, 2*time.Minute)
	if v.State != JobCanceled {
		t.Fatalf("litmus job state %s, want canceled", v.State)
	}
	if _, ok := s.Cancel("j999"); ok {
		t.Fatal("cancel of unknown job reported ok")
	}
	// Drain still completes: abandoned builds are waited out.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainUnderLoad: draining refuses new work, flips /healthz to 503,
// and WaitIdle returns only after in-flight jobs finish.
func TestDrainUnderLoad(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	j, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc4"}})
	if err != nil {
		t.Fatal(err)
	}
	s.StartDrain()

	if _, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}}); !errors.Is(err, errDraining) {
		t.Fatalf("submit during drain: err = %v, want errDraining", err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if v := j.view(); v.State != JobDone {
		t.Fatalf("in-flight job after drain: %s (%s), want done", v.State, v.Error)
	}
	// An expired wait reports the timeout instead of hanging.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	s2, _ := newTestServer(t, Options{MaxJobs: 1})
	if _, _, err := s2.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc5"}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.WaitIdle(expired); err == nil {
		t.Fatal("WaitIdle with dead context returned nil")
	}
	if err := s2.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSSEProgress streams a cold figure job end to end over real HTTP:
// the stream opens with a state snapshot, carries per-cell progress
// events, and closes with the terminal job JSON.
func TestSSEProgress(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(JobRequest{Kind: "figure", Fig: 9})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	var events []string
	var lastData string
	sc := bufio.NewScanner(es.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(events) == 0 || events[0] != "state" {
		t.Fatalf("stream did not open with a state snapshot: %v", events)
	}
	if events[len(events)-1] != JobDone {
		t.Fatalf("stream did not close with done: %v", events)
	}
	cellEvents := 0
	for _, e := range events {
		if e == "cell" {
			cellEvents++
		}
	}
	if cellEvents == 0 {
		t.Fatalf("no per-cell progress events in stream: %v", events)
	}
	var final JobJSON
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("terminal event payload: %v", err)
	}
	if final.State != JobDone || final.CellsDone != final.CellsTotal || final.CellsTotal != len(harness.FigureCells(9)) {
		t.Fatalf("terminal payload %+v", final)
	}

	// The finished job's output endpoint serves the figure bytes.
	out, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Body.Close()
	data, _ := io.ReadAll(out.Body)
	if !bytes.Contains(data, []byte("Figure 9")) {
		t.Fatalf("job output does not look like figure 9:\n%s", data)
	}
}

// TestLitmusJob runs the model-check smoke suite through the job layer.
func TestLitmusJob(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	j, _, err := s.Submit(JobRequest{Kind: "litmus", Progs: []string{"SB", "MP"}, Mechs: []string{"TUS"}, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, j, 2*time.Minute)
	if v.State != JobDone {
		t.Fatalf("litmus job %s (%s), want done", v.State, v.Error)
	}
	if v.CellsTotal != 2 || v.CellsDone != 2 {
		t.Fatalf("litmus progress %d/%d, want 2/2", v.CellsDone, v.CellsTotal)
	}
	data, _, _ := j.Output()
	if !bytes.Contains(data, []byte("SB")) || !bytes.Contains(data, []byte("MP")) {
		t.Fatalf("litmus output missing reports:\n%s", data)
	}
}

// TestMetricsAndRegistryEndpoints scrapes /metrics after real activity
// and spot-checks the HTTP registry and error paths.
func TestMetricsAndRegistryEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Kind: "cells", Benches: []string{"520.omnetpp"}, Mechs: []string{"base", "TUS"}}
	j, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 2*time.Minute)
	if _, co, err := s.Submit(req); err != nil || co {
		// The job is terminal, so this resubmission starts a fresh
		// (instant, fully memoized) job rather than coalescing.
		t.Fatalf("resubmit after terminal: co=%v err=%v", co, err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		fmt.Sprintf("tusd_info{harness_version=%q} 1", harness.Version),
		"tusd_jobs_inflight",
		`tusd_jobs_completed_total{kind="cells",status="done"}`,
		"tusd_coalesced_total",
		"tusd_cells_run_total 2",
		"tusd_cells_cached_total",
		"tusd_cache_corrupt_total",
		"tusd_cell_seconds_bucket{le=\"+Inf\"} 2",
		"tusd_cell_seconds_sum",
		"tusd_cell_seconds_count 2",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Registry: GET /v1/figures serves the same inventory as -list.
	fresp, err := http.Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var list harness.ListReport
	if err := json.NewDecoder(fresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.HarnessVersion != harness.Version || len(list.Figures) != 8 || len(list.Benches) == 0 {
		t.Fatalf("inventory %+v", list)
	}

	// Error paths.
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/v1/figures/99", http.StatusBadRequest},
		{"GET", "/v1/jobs/nope", http.StatusNotFound},
		{"POST", "/v1/jobs/nope/cancel", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
	badBody := strings.NewReader(`{"kind":"nope"}`)
	bresp, err := http.Post(ts.URL+"/v1/jobs", "application/json", badBody)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind submit = %d, want 400", bresp.StatusCode)
	}
}
