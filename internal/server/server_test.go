package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tusim/internal/harness"
)

// testOps is deliberately tiny: server tests exercise scheduling,
// coalescing, and byte identity, not simulation fidelity (the harness
// golden suite owns that).
const (
	testOps  = 2500
	testPOps = 300
)

func testRunner(t *testing.T, cacheDir string) *harness.Runner {
	t.Helper()
	r := harness.NewQuickRunner()
	r.Ops = testOps
	r.ParallelOps = testPOps
	r.Workers = 2
	if cacheDir != "" {
		c, err := harness.NewDiskCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = c
	}
	r.Supervisor = harness.NewSupervisor(0)
	return r
}

func newTestServer(t *testing.T, o Options) (*Server, *harness.Runner) {
	t.Helper()
	if o.Runner == nil {
		o.Runner = testRunner(t, t.TempDir())
	}
	s := New(o)
	return s, o.Runner
}

func waitJob(t *testing.T, j *Job, timeout time.Duration) JobJSON {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish in %v (state %s)", j.ID, timeout, j.view().State)
	}
	return j.view()
}

// TestFigureByteIdentity is the tentpole guarantee: GET /v1/figures/9
// serves exactly the bytes `tusbench -fig 9` prints — cold (every cell
// simulated), under 8-way concurrent fan-in (matrix executed exactly
// once), and warm (cells_run == 0).
func TestFigureByteIdentity(t *testing.T) {
	// CLI reference: an independent runner at the same scale, no cache,
	// rendering through the exact code path tusbench's figure loop uses.
	var want bytes.Buffer
	if err := harness.RenderFigure(testRunner(t, ""), 9, &want); err != nil {
		t.Fatal(err)
	}

	s, r := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold: 8 concurrent requests for the same uncached figure.
	type reply struct {
		body []byte
		hdr  http.Header
		code int
	}
	replies := make([]reply, 8)
	var wg sync.WaitGroup
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/figures/9")
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			replies[i] = reply{body, resp.Header, resp.StatusCode}
		}(i)
	}
	wg.Wait()

	nCells := len(harness.FigureCells(9))
	for i, rp := range replies {
		if rp.code != http.StatusOK {
			t.Fatalf("req %d: status %d, body %s", i, rp.code, rp.body)
		}
		if !bytes.Equal(rp.body, want.Bytes()) {
			t.Fatalf("req %d: served figure differs from CLI bytes:\nserver:\n%s\nCLI:\n%s", i, rp.body, want.Bytes())
		}
	}
	// The matrix ran exactly once no matter how the 8 requests raced:
	// every fresh simulation is accounted in CacheStats.
	if cs := r.CacheStats(); cs.CellsRun != int64(nCells) {
		t.Fatalf("cold 8-way fan-in: cells_run = %d, want exactly %d", cs.CellsRun, nCells)
	}
	// Every request either created the one job or coalesced onto it.
	if jobs, co := len(s.Jobs()), int(s.coalescedN.Load()); jobs+co != 8 {
		t.Fatalf("jobs(%d) + coalesced(%d) != 8 requests", jobs, co)
	}

	// Warm: same bytes, zero cells simulated.
	resp, err := http.Get(ts.URL + "/v1/figures/9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("warm fetch differs from CLI bytes")
	}
	if got := resp.Header.Get("X-Tusd-Cells-Run"); got != "0" {
		t.Fatalf("warm fetch X-Tusd-Cells-Run = %q, want 0", got)
	}
	if cs := r.CacheStats(); cs.CellsRun != int64(nCells) {
		t.Fatalf("warm fetch resimulated: cells_run = %d, want %d", cs.CellsRun, nCells)
	}
}

// TestSubmitCoalescesIdenticalRequests pins the singleflight contract
// at the Submit level, where ordering is deterministic: the first
// request creates the job, the next seven attach to it.
func TestSubmitCoalescesIdenticalRequests(t *testing.T) {
	s, r := newTestServer(t, Options{MaxJobs: 2})
	req := JobRequest{Kind: "cells", Benches: []string{"502.gcc1", "502.gcc2"}, Mechs: []string{"base", "TUS"}}

	first, co, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if co {
		t.Fatal("first submit reported coalesced")
	}
	for i := 0; i < 7; i++ {
		j, co, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if !co || j != first {
			t.Fatalf("submit %d: coalesced=%v job=%s, want attach to %s", i, co, j.ID, first.ID)
		}
	}
	v := waitJob(t, first, 2*time.Minute)
	if v.State != JobDone {
		t.Fatalf("job state %s (%s), want done", v.State, v.Error)
	}
	if v.Coalesced != 7 {
		t.Fatalf("job coalesced = %d, want 7", v.Coalesced)
	}
	if s.coalescedN.Load() != 7 {
		t.Fatalf("server coalesce counter = %d, want 7", s.coalescedN.Load())
	}
	if cs := r.CacheStats(); cs.CellsRun != 4 {
		t.Fatalf("cells_run = %d, want 4 (2 benches x 2 mechs, exactly once)", cs.CellsRun)
	}
	if v.CellsDone != 4 || v.CellsRun != 4 || v.CellsTotal != 4 {
		t.Fatalf("job progress done=%d run=%d total=%d, want 4/4/4", v.CellsDone, v.CellsRun, v.CellsTotal)
	}

	// A different request must not coalesce.
	other, co, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if co || other == first {
		t.Fatal("distinct request coalesced onto the wrong job")
	}
	waitJob(t, other, 2*time.Minute)

	// The cells output itself is deterministic JSON.
	data, ct, _ := first.Output()
	if ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var rows []cellRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("output not JSON: %v", err)
	}
	if len(rows) != 4 || rows[0].Cycles == 0 {
		t.Fatalf("unexpected rows: %+v", rows)
	}
}

// TestCancel covers both cancellation shapes: a queued job dies
// immediately, and a running job is abandoned the moment its context
// is canceled while its terminal state stays canceled even after the
// abandoned build completes.
func TestCancel(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})

	// Occupy the single pool slot.
	blocker, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc1", "502.gcc2", "502.gcc3"}})
	if err != nil {
		t.Fatal(err)
	}
	// This one queues behind it; cancel must not wait for the slot.
	queued, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel: job not found")
	}
	v := waitJob(t, queued, 30*time.Second)
	if v.State != JobCanceled {
		t.Fatalf("queued job state %s, want canceled", v.State)
	}
	if v := waitJob(t, blocker, 2*time.Minute); v.State != JobDone {
		t.Fatalf("blocker state %s (%s), want done", v.State, v.Error)
	}

	// Cancel mid-run: the litmus job checks its context between cells.
	lit, _, err := s.Submit(JobRequest{Kind: "litmus"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Cancel(lit.ID); !ok {
		t.Fatal("cancel: litmus job not found")
	}
	v = waitJob(t, lit, 2*time.Minute)
	if v.State != JobCanceled {
		t.Fatalf("litmus job state %s, want canceled", v.State)
	}
	if _, ok := s.Cancel("j999"); ok {
		t.Fatal("cancel of unknown job reported ok")
	}
	// Drain still completes: abandoned builds are waited out.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainUnderLoad: draining refuses new work, flips /healthz to 503,
// and WaitIdle returns only after in-flight jobs finish.
func TestDrainUnderLoad(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	j, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc4"}})
	if err != nil {
		t.Fatal(err)
	}
	s.StartDrain()

	if _, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{"505.mcf"}}); !errors.Is(err, errDraining) {
		t.Fatalf("submit during drain: err = %v, want errDraining", err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if v := j.view(); v.State != JobDone {
		t.Fatalf("in-flight job after drain: %s (%s), want done", v.State, v.Error)
	}
	// An expired wait reports the timeout instead of hanging.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	s2, _ := newTestServer(t, Options{MaxJobs: 1})
	if _, _, err := s2.Submit(JobRequest{Kind: "cells", Benches: []string{"502.gcc5"}}); err != nil {
		t.Fatal(err)
	}
	if err := s2.WaitIdle(expired); err == nil {
		t.Fatal("WaitIdle with dead context returned nil")
	}
	if err := s2.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
}

// sseReader feeds a stream's lines through a channel so every read can
// carry an explicit deadline: a stalled stream fails the test with a
// diagnosis (how many events arrived, what came last) instead of
// blocking a raw Scan until the whole suite times out.
type sseReader struct {
	lines chan string
	errc  chan error
}

func newSSEReader(body io.Reader) *sseReader {
	r := &sseReader{lines: make(chan string, 64), errc: make(chan error, 1)}
	go func() {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			r.lines <- sc.Text()
		}
		r.errc <- sc.Err()
		close(r.lines)
	}()
	return r
}

// next returns the next line within the deadline; ok=false is clean EOF.
func (r *sseReader) next(t *testing.T, deadline time.Duration, progress func() string) (string, bool) {
	t.Helper()
	select {
	case line, ok := <-r.lines:
		if !ok {
			if err := <-r.errc; err != nil {
				t.Fatalf("sse read (%s): %v", progress(), err)
			}
			return "", false
		}
		return line, true
	case <-time.After(deadline):
		t.Fatalf("sse read: no line within %v (%s) — stalled stream", deadline, progress())
		return "", false
	}
}

// TestSSEProgress streams a cold figure job end to end over real HTTP:
// the stream opens with a state snapshot, carries per-cell progress
// events, and closes with the terminal job JSON. Every read carries its
// own deadline so a wedged stream is diagnosed, not waited out.
func TestSSEProgress(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(JobRequest{Kind: "figure", Fig: 9})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	var events []string
	var lastData string
	r := newSSEReader(es.Body)
	progress := func() string {
		last := "none"
		if len(events) > 0 {
			last = events[len(events)-1]
		}
		return fmt.Sprintf("after %d events, last %q", len(events), last)
	}
	for {
		line, ok := r.next(t, 30*time.Second, progress)
		if !ok {
			break
		}
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
	}
	if len(events) == 0 || events[0] != "state" {
		t.Fatalf("stream did not open with a state snapshot: %v", events)
	}
	if events[len(events)-1] != JobDone {
		t.Fatalf("stream did not close with done: %v", events)
	}
	cellEvents := 0
	for _, e := range events {
		if e == "cell" {
			cellEvents++
		}
	}
	if cellEvents == 0 {
		t.Fatalf("no per-cell progress events in stream: %v", events)
	}
	var final JobJSON
	if err := json.Unmarshal([]byte(lastData), &final); err != nil {
		t.Fatalf("terminal event payload: %v", err)
	}
	if final.State != JobDone || final.CellsDone != final.CellsTotal || final.CellsTotal != len(harness.FigureCells(9)) {
		t.Fatalf("terminal payload %+v", final)
	}

	// The finished job's output endpoint serves the figure bytes.
	out, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Body.Close()
	data, _ := io.ReadAll(out.Body)
	if !bytes.Contains(data, []byte("Figure 9")) {
		t.Fatalf("job output does not look like figure 9:\n%s", data)
	}

	// Re-subscribing to the now-terminal job must deliver the state
	// snapshot plus a terminal resend immediately and close the stream —
	// a slow or late subscriber always ends on the terminal event.
	es2, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Body.Close()
	r2 := newSSEReader(es2.Body)
	var events2 []string
	progress2 := func() string { return fmt.Sprintf("replay: %d events", len(events2)) }
	for {
		line, ok := r2.next(t, 10*time.Second, progress2)
		if !ok {
			break
		}
		if strings.HasPrefix(line, "event: ") {
			events2 = append(events2, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(events2) < 2 || events2[0] != "state" || events2[len(events2)-1] != JobDone {
		t.Fatalf("terminal-job replay stream: %v, want state ... done", events2)
	}
}

// TestLitmusJob runs the model-check smoke suite through the job layer.
func TestLitmusJob(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	j, _, err := s.Submit(JobRequest{Kind: "litmus", Progs: []string{"SB", "MP"}, Mechs: []string{"TUS"}, Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, j, 2*time.Minute)
	if v.State != JobDone {
		t.Fatalf("litmus job %s (%s), want done", v.State, v.Error)
	}
	if v.CellsTotal != 2 || v.CellsDone != 2 {
		t.Fatalf("litmus progress %d/%d, want 2/2", v.CellsDone, v.CellsTotal)
	}
	data, _, _ := j.Output()
	if !bytes.Contains(data, []byte("SB")) || !bytes.Contains(data, []byte("MP")) {
		t.Fatalf("litmus output missing reports:\n%s", data)
	}
}

// TestMetricsAndRegistryEndpoints scrapes /metrics after real activity
// and spot-checks the HTTP registry and error paths.
func TestMetricsAndRegistryEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Kind: "cells", Benches: []string{"520.omnetpp"}, Mechs: []string{"base", "TUS"}}
	j, _, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 2*time.Minute)
	if _, co, err := s.Submit(req); err != nil || co {
		// The job is terminal, so this resubmission starts a fresh
		// (instant, fully memoized) job rather than coalescing.
		t.Fatalf("resubmit after terminal: co=%v err=%v", co, err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		fmt.Sprintf("tusd_info{harness_version=%q} 1", harness.Version),
		"tusd_jobs_inflight",
		`tusd_jobs_completed_total{kind="cells",status="done"}`,
		"tusd_coalesced_total",
		"tusd_cells_run_total 2",
		"tusd_cells_cached_total",
		"tusd_cache_corrupt_total",
		"tusd_cell_seconds_bucket{le=\"+Inf\"} 2",
		"tusd_cell_seconds_sum",
		"tusd_cell_seconds_count 2",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	// Registry: GET /v1/figures serves the same inventory as -list.
	fresp, err := http.Get(ts.URL + "/v1/figures")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	var list harness.ListReport
	if err := json.NewDecoder(fresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.HarnessVersion != harness.Version || len(list.Figures) != 8 || len(list.Benches) == 0 {
		t.Fatalf("inventory %+v", list)
	}

	// Error paths.
	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{"GET", "/v1/figures/99", http.StatusBadRequest},
		{"GET", "/v1/jobs/nope", http.StatusNotFound},
		{"POST", "/v1/jobs/nope/cancel", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
	badBody := strings.NewReader(`{"kind":"nope"}`)
	bresp, err := http.Post(ts.URL+"/v1/jobs", "application/json", badBody)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind submit = %d, want 400", bresp.StatusCode)
	}
}

// TestAPIErrorPaths pins every client-error response: status code AND
// body shape, so error messages stay part of the API contract.
func TestAPIErrorPaths(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tests := []struct {
		name         string
		method, path string
		body         string
		status       int
		wantBody     string
	}{
		{"non-numeric figure", "GET", "/v1/figures/abc", "", http.StatusBadRequest, "bad figure number"},
		{"unknown figure", "GET", "/v1/figures/99", "", http.StatusBadRequest, "unknown figure 99"},
		{"malformed JSON submit", "POST", "/v1/jobs", `{not json`, http.StatusBadRequest, "bad job request"},
		{"unknown job kind", "POST", "/v1/jobs", `{"kind":"nope"}`, http.StatusBadRequest, `unknown job kind "nope"`},
		{"figure job for unknown figure", "POST", "/v1/jobs", `{"kind":"figure","fig":99}`, http.StatusBadRequest, "unknown figure 99"},
		{"hist with negative sb", "POST", "/v1/jobs", `{"kind":"hist","sb":-5}`, http.StatusBadRequest, "sb must be positive"},
		{"status of unknown job", "GET", "/v1/jobs/nope", "", http.StatusNotFound, "no such job"},
		{"output of unknown job", "GET", "/v1/jobs/nope/output", "", http.StatusNotFound, "no such job"},
		{"events of unknown job", "GET", "/v1/jobs/nope/events", "", http.StatusNotFound, "no such job"},
		{"cancel of unknown job", "POST", "/v1/jobs/nope/cancel", "", http.StatusNotFound, "no such job"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var rdr io.Reader
			if tc.body != "" {
				rdr = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rdr)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("%s %s = %d, want %d (body %s)", tc.method, tc.path, resp.StatusCode, tc.status, body)
			}
			if !bytes.Contains(body, []byte(tc.wantBody)) {
				t.Fatalf("%s %s body %q does not contain %q", tc.method, tc.path, body, tc.wantBody)
			}
		})
	}

	// Output of a queued (unfinished) job is 409, not a hang or a 200
	// with partial bytes. MaxJobs is 1, so a heavy blocker (the full
	// bench set at three SB points, 66 cells) pins the pool slot long
	// enough that the second job stays queued through the checks below.
	allBenches := []string{
		"502.gcc1", "502.gcc2", "502.gcc3", "502.gcc4", "502.gcc5",
		"505.mcf", "520.omnetpp", "557.xz", "tf.matmul", "tf.conv", "tf.embed",
	}
	blocker, _, err := s.Submit(JobRequest{Kind: "cells", Benches: allBenches, SBs: []int{114, 140, 171}})
	if err != nil {
		t.Fatal(err)
	}
	// The queued job uses SB 32, disjoint from the blocker's matrix:
	// none of its 22 cells are memoized, so even if the pool admits it
	// in the same instant the cancel lands, the build cannot finish all
	// cells before the cancel below commits — runJob observes the
	// canceled context mid-build and the terminal state stays
	// deterministically canceled. For the job to end "done" instead,
	// all 88 cells of both jobs would have to simulate inside the
	// in-process window between the HTTP read below and s.Cancel.
	queued, _, err := s.Submit(JobRequest{Kind: "cells", Benches: allBenches, SBs: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(body, []byte("job not finished")) {
		t.Fatalf("output of queued job = %d %q, want 409 'job not finished'", resp.StatusCode, body)
	}

	// Cancel the queued job while the blocker still owns the only pool
	// slot. The cancellation is committed through the API — on a
	// single-CPU runtime an HTTP round-trip can be starved by the
	// spinning build workers until the blocker finishes, losing the
	// race — and the HTTP layer then pins the terminal contract: a
	// cancel POST on a terminal job is a 200 no-op reporting the
	// immutable canceled state.
	s.Cancel(queued.ID)
	if v := waitJob(t, queued, 30*time.Second); v.State != JobCanceled {
		t.Fatalf("canceled job ended %s, want canceled", v.State)
	}
	cresp, err := http.Post(ts.URL+"/v1/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cv JobJSON
	if err := json.NewDecoder(cresp.Body).Decode(&cv); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || cv.State != JobCanceled {
		t.Fatalf("cancel of canceled job = %d state %s, want 200 canceled", cresp.StatusCode, cv.State)
	}
	oresp, err := http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	obody, _ := io.ReadAll(oresp.Body)
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusConflict || !bytes.Contains(obody, []byte("job canceled")) {
		t.Fatalf("output of canceled job = %d %q, want 409 'job canceled'", oresp.StatusCode, obody)
	}

	// Cancel of an already-finished job is a no-op 200: the terminal
	// state is immutable, and the response proves it.
	if v := waitJob(t, blocker, 2*time.Minute); v.State != JobDone {
		t.Fatalf("blocker %s (%s), want done", v.State, v.Error)
	}
	fresp, err := http.Post(ts.URL+"/v1/jobs/"+blocker.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var fv JobJSON
	if err := json.NewDecoder(fresp.Body).Decode(&fv); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK || fv.State != JobDone {
		t.Fatalf("cancel of finished job = %d state %s, want 200 done", fresp.StatusCode, fv.State)
	}
}

// TestHistJobAndRegistryHTTP drives the histogram job over HTTP (the
// full SB-bound matrix at one SB size), then spot-checks the registry
// list, the bench endpoint, and the inflight gauge accessor.
func TestHistJobAndRegistryHTTP(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(JobRequest{Kind: "hist", SB: 114})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v JobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || v.Kind != "hist" {
		t.Fatalf("hist submit: status %d kind %s", resp.StatusCode, v.Kind)
	}
	if s.JobsInflight() == 0 {
		t.Fatal("JobsInflight = 0 with a job just submitted")
	}
	j, ok := s.Job(v.ID)
	if !ok {
		t.Fatal("submitted hist job not in registry")
	}
	if fv := waitJob(t, j, 2*time.Minute); fv.State != JobDone {
		t.Fatalf("hist job %s (%s), want done", fv.State, fv.Error)
	}

	out, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(out.Body)
	out.Body.Close()
	if ct := out.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("hist output content type %q", ct)
	}
	if !bytes.Contains(data, []byte("SB occupancy")) && !bytes.Contains(data, []byte("occupancy")) {
		t.Fatalf("hist output does not look like histograms:\n%.400s", data)
	}

	// The registry list carries the job.
	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []JobJSON
	if err := json.NewDecoder(lresp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	found := false
	for _, jj := range jobs {
		if jj.ID == v.ID && jj.State == JobDone {
			found = true
		}
	}
	if !found {
		t.Fatalf("GET /v1/jobs does not list finished hist job %s: %+v", v.ID, jobs)
	}

	// /v1/bench serves the BENCH_harness.json shape with live cell
	// accounting.
	bresp, err := http.Get(ts.URL + "/v1/bench")
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchReport
	if err := json.NewDecoder(bresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if rep.HarnessVersion != harness.Version || rep.CellsRun == 0 {
		t.Fatalf("bench report %+v", rep)
	}

	// Quiesced: the gauge returns to zero.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.WaitIdle(ctx); err != nil {
		t.Fatal(err)
	}
	if n := s.JobsInflight(); n != 0 {
		t.Fatalf("JobsInflight = %d after WaitIdle, want 0", n)
	}
}

// TestJobEviction pins the registry bound: with KeepJobs 1, old
// terminal jobs are evicted as new ones arrive, and evicted IDs 404.
func TestJobEviction(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1, KeepJobs: 1})

	var ids []string
	for _, bench := range []string{"502.gcc1", "502.gcc2", "502.gcc3"} {
		j, _, err := s.Submit(JobRequest{Kind: "cells", Benches: []string{bench}, Mechs: []string{"base"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		if v := waitJob(t, j, 2*time.Minute); v.State != JobDone {
			t.Fatalf("job %s: %s (%s)", j.ID, v.State, v.Error)
		}
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatalf("job %s survived eviction with KeepJobs=1", ids[0])
	}
	if got := len(s.Jobs()); got > 2 {
		t.Fatalf("registry holds %d jobs with KeepJobs=1, want <= 2", got)
	}
	// The newest job is still present.
	if _, ok := s.Job(ids[2]); !ok {
		t.Fatalf("newest job %s missing from registry", ids[2])
	}
}

// TestHealthzAndDrainingAccessor covers the healthy side of /healthz
// and the Draining accessor across the drain transition.
func TestHealthzAndDrainingAccessor(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte("ok\n")) {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Tusd-Version") != harness.Version {
		t.Fatalf("healthz version header %q", resp.Header.Get("X-Tusd-Version"))
	}
	if s.Draining() {
		t.Fatal("fresh server reports draining")
	}
	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	// Submission over HTTP during drain is 503 with the drain message.
	b, _ := json.Marshal(JobRequest{Kind: "figure", Fig: 9})
	dresp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	dbody, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(dbody, []byte("draining")) {
		t.Fatalf("submit during drain = %d %q, want 503 draining", dresp.StatusCode, dbody)
	}
}

// TestPromFloat pins the Prometheus float spellings for the edge cases.
func TestPromFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	} {
		if got := promFloat(tc.in); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
