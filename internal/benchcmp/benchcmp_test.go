package benchcmp

import (
	"strings"
	"testing"
)

const sampleOld = `goos: linux
goarch: amd64
pkg: tusim/internal/event
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWheelAt2 	149817976	        16.03 ns/op	       0 B/op	       0 allocs/op
BenchmarkHeapAt2  	15862226	       141.6 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	tusim/internal/event	6.427s
pkg: tusim/internal/lmap
BenchmarkGet-8   	100000000	        11.00 ns/op
BenchmarkVanishes 	1000	        99.00 ns/op
ok  	tusim/internal/lmap	1.2s
`

const sampleNew = `pkg: tusim/internal/event
BenchmarkWheelAt2 	200000000	        12.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHeapAt2  	15000000	       150.0 ns/op	       0 B/op	       0 allocs/op
pkg: tusim/internal/lmap
BenchmarkGet-16   	100000000	        22.00 ns/op
BenchmarkBrandNew 	1000	        5.00 ns/op
`

func TestParse(t *testing.T) {
	rs, err := Parse(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4: %v", len(rs), rs)
	}
	w, ok := rs["tusim/internal/event.BenchmarkWheelAt2"]
	if !ok || w.NsPerOp != 16.03 || w.AllocsPerOp != 0 || w.BytesPerOp != 0 {
		t.Fatalf("wheel result: %+v (ok=%v)", w, ok)
	}
	// The -GOMAXPROCS suffix is stripped so core counts don't split keys.
	g, ok := rs["tusim/internal/lmap.BenchmarkGet"]
	if !ok || g.NsPerOp != 11.00 {
		t.Fatalf("get result: %+v (ok=%v)", g, ok)
	}
	// No B/op columns parsed as absent, not zero.
	if g.AllocsPerOp != -1 || g.BytesPerOp != -1 {
		t.Fatalf("absent mem columns should be -1: %+v", g)
	}
}

func TestCompareAndFormat(t *testing.T) {
	oldRs, err := Parse(strings.NewReader(sampleOld))
	if err != nil {
		t.Fatal(err)
	}
	newRs, err := Parse(strings.NewReader(sampleNew))
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(oldRs, newRs)
	if len(deltas) != 5 {
		t.Fatalf("got %d deltas, want 5", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	w := byName["tusim/internal/event.BenchmarkWheelAt2"]
	if w.OnlyOld || w.OnlyNew || w.Ratio > 0.76 || w.Ratio < 0.74 {
		t.Fatalf("wheel delta: %+v", w)
	}
	if d := byName["tusim/internal/lmap.BenchmarkVanishes"]; !d.OnlyOld {
		t.Fatalf("vanished benchmark not flagged: %+v", d)
	}
	if d := byName["tusim/internal/lmap.BenchmarkBrandNew"]; !d.OnlyNew {
		t.Fatalf("new benchmark not flagged: %+v", d)
	}

	table := FormatTable(deltas)
	for _, want := range []string{"gone", "new", "-25.1%", "old ns/op"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	// Deterministic order: sorted by qualified name.
	if strings.Index(table, "BenchmarkHeapAt2") > strings.Index(table, "BenchmarkGet") {
		t.Fatalf("table not sorted:\n%s", table)
	}
}

func TestParseBadInput(t *testing.T) {
	// Garbage that matches no benchmark shape parses to empty, not error.
	rs, err := Parse(strings.NewReader("hello\nworld 123\n"))
	if err != nil || len(rs) != 0 {
		t.Fatalf("rs=%v err=%v", rs, err)
	}
}
