// Package benchcmp parses `go test -bench` output and renders a
// benchstat-style old-vs-new delta table. It exists so `make bench-diff`
// can compare a fresh microbenchmark run against the committed
// BENCH_micro.txt baseline without any external tooling: the numbers
// are informational (machine-dependent — the ratchet that FAILS on
// regression is the bench gate over BENCH_harness.json), but the table
// makes hot-path drift visible in every CI run's artifacts.
package benchcmp

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name qualified by its package (as printed
	// in the preceding "pkg:" header) with any -GOMAXPROCS suffix
	// stripped, so runs from machines with different core counts still
	// line up.
	Name        string
	Iterations  int64
	NsPerOp     float64
	BytesPerOp  float64 // -1 when the run did not report B/op
	AllocsPerOp float64 // -1 when the run did not report allocs/op
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)
var gomaxSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns results keyed by
// qualified name. Duplicate names (e.g. -count>1 runs) keep the last
// reading. Non-benchmark lines are ignored.
func Parse(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := gomaxSuffix.ReplaceAllString(m[1], "")
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %w", line, err)
		}
		res := Result{Name: name, Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		for _, f := range strings.Split(m[4], "\t") {
			f = strings.TrimSpace(f)
			switch {
			case strings.HasSuffix(f, " B/op"):
				res.BytesPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " B/op"), 64)
			case strings.HasSuffix(f, " allocs/op"):
				res.AllocsPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " allocs/op"), 64)
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Delta is one old-vs-new comparison row.
type Delta struct {
	Name     string
	Old, New Result
	// Ratio is new/old ns/op; <1 is faster, >1 slower.
	Ratio float64
	// OnlyOld/OnlyNew mark benchmarks present on one side only.
	OnlyOld, OnlyNew bool
}

// Compare joins two parsed runs by name, sorted by name for stable
// output.
func Compare(old, fresh map[string]Result) []Delta {
	names := map[string]bool{}
	for n := range old {
		names[n] = true
	}
	for n := range fresh {
		names[n] = true
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var out []Delta
	for _, n := range sorted {
		o, haveOld := old[n]
		f, haveNew := fresh[n]
		d := Delta{Name: n, Old: o, New: f, OnlyOld: !haveNew, OnlyNew: !haveOld}
		if haveOld && haveNew && o.NsPerOp > 0 {
			d.Ratio = f.NsPerOp / o.NsPerOp
		}
		out = append(out, d)
	}
	return out
}

// FormatTable renders deltas as an aligned text table. Rows present on
// one side only are flagged rather than dropped — a vanished benchmark
// usually means a renamed or deleted hot path, which is exactly what a
// reviewer wants to see.
func FormatTable(deltas []Delta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-64s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range deltas {
		switch {
		case d.OnlyOld:
			fmt.Fprintf(&b, "%-64s %14.2f %14s %8s\n", d.Name, d.Old.NsPerOp, "-", "gone")
		case d.OnlyNew:
			fmt.Fprintf(&b, "%-64s %14s %14.2f %8s\n", d.Name, "-", d.New.NsPerOp, "new")
		default:
			fmt.Fprintf(&b, "%-64s %14.2f %14.2f %+7.1f%%\n",
				d.Name, d.Old.NsPerOp, d.New.NsPerOp, (d.Ratio-1)*100)
		}
	}
	return b.String()
}
