package tso_test

// FuzzOracleVsChecker extends the oracle cross-validation from the
// fixed litmus suite to fuzzer-generated programs: random small TSO
// programs are enumerated through the operational x86-TSO oracle, and
// every complete interleaving it allows must replay through tso.Checker
// with zero violations (the no-false-positive direction), with the
// checker's final visible memory agreeing with the oracle's.

import (
	"sort"
	"testing"

	"tusim/internal/isa"
	"tusim/internal/litmus"
	"tusim/internal/modelcheck"
)

// fuzzBase places fuzz program locations where the litmus suite puts
// its own (distinct cache lines, 8-byte aligned).
const fuzzBase = uint64(1) << 33

// fuzzMaxOps bounds program size so the oracle's path enumeration
// stays litmus-scale per fuzz iteration.
const fuzzMaxOps = 8

// fuzzMaxTraces caps replayed interleavings per program.
const fuzzMaxTraces = 256

// programFromBytes decodes fuzz data into a checkable-IR program:
// byte 0 selects 2 or 3 threads; each following byte encodes
// (thread, op kind, address index) as bitfields. Store ranks follow the
// IR convention (k-th store to an address in program-scan order writes
// k) and every load records into an outcome slot in thread-major order,
// mirroring litmus.Test.Program.
func programFromBytes(data []byte) (litmus.Program, bool) {
	if len(data) < 2 {
		return litmus.Program{}, false
	}
	nThreads := 2 + int(data[0])%2
	p := litmus.Program{Name: "fuzz", Threads: make([][]litmus.ProgOp, nThreads)}
	total := 0
	for _, b := range data[1:] {
		if total >= fuzzMaxOps {
			break
		}
		th := int(b&3) % nThreads
		addr := fuzzBase + uint64((b>>4)&3)%3*64
		switch (b >> 2) & 3 {
		case 0:
			p.Threads[th] = append(p.Threads[th], litmus.ProgOp{Kind: isa.Store, Addr: addr})
		case 1:
			p.Threads[th] = append(p.Threads[th], litmus.ProgOp{Kind: isa.Load, Addr: addr, Obs: -1})
		case 2:
			p.Threads[th] = append(p.Threads[th], litmus.ProgOp{Kind: isa.Fence, Obs: -1})
		default:
			continue // skip byte: lets the fuzzer vary op density
		}
		total++
	}
	if total == 0 {
		return litmus.Program{}, false
	}
	ranks := map[uint64]uint64{}
	for t := range p.Threads {
		for i := range p.Threads[t] {
			op := &p.Threads[t][i]
			switch op.Kind {
			case isa.Store:
				ranks[op.Addr]++
				op.Val = ranks[op.Addr]
			case isa.Load:
				op.Obs = p.NumObs
				p.NumObs++
			}
		}
	}
	for a := range ranks {
		p.FinalReads = append(p.FinalReads, a)
	}
	sort.Slice(p.FinalReads, func(i, j int) bool { return p.FinalReads[i] < p.FinalReads[j] })
	return p, true
}

func FuzzOracleVsChecker(f *testing.F) {
	// Classic shapes as corpus seeds (encoding per programFromBytes):
	// MP (st x; st y || ld y; ld x), SB (st x; ld y || st y; ld x),
	// a fenced 3-thread variant, and a same-address store race.
	f.Add([]byte{0, 0x00, 0x10, 0x15, 0x05})
	f.Add([]byte{0, 0x00, 0x14, 0x11, 0x04})
	f.Add([]byte{1, 0x00, 0x08, 0x10, 0x15, 0x06, 0x02})
	f.Add([]byte{0, 0x00, 0x01, 0x00, 0x04, 0x05})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := programFromBytes(data)
		if !ok {
			t.Skip()
		}
		traces, _ := modelcheck.Traces(p, fuzzMaxTraces)
		for _, tr := range traces {
			ck := replayTrace(len(p.Threads), tr)
			if err := ck.Err(); err != nil {
				t.Fatalf("checker flagged a TSO-allowed interleaving\nprogram: %+v\ntrace: %v\nerror: %v", p, tr, err)
			}
			// A complete oracle trace drains every store, so the
			// checker's visible memory must end at the oracle's: the
			// last drain per address wins.
			final := map[uint64]uint64{}
			for _, s := range tr {
				if s.Kind == modelcheck.StepDrain {
					final[s.Addr] = s.Val
				}
			}
			for addr, rank := range final {
				if got := ck.VisibleByte(addr); got != byte(rank) {
					t.Fatalf("final memory disagrees at %#x: checker=%d oracle=%d\ntrace: %v", addr, got, rank, tr)
				}
			}
		}
	})
}
