package tso_test

// Cross-validation of the online TSO checker against the modelcheck
// oracle: every complete trace the operational x86-TSO machine can
// produce is, by construction, a legal event stream — replaying it
// through tso.Checker must raise zero violations (no false positives).
// Conversely, mutating a legal trace into a TSO-forbidden one (drains
// out of program order, a load binding a value that never existed, a
// store that never becomes visible) must be caught. Together the two
// directions pin the checker's judgement to the oracle's semantics.

import (
	"encoding/binary"
	"testing"

	"tusim/internal/litmus"
	"tusim/internal/memsys"
	"tusim/internal/modelcheck"
	"tusim/internal/tso"
)

// xvalCycleStep spaces replayed events further apart than the
// checker's load-sampling window, so window slack can never excuse a
// value that was not current when its load bound.
const xvalCycleStep = 1024

func le8(v uint64) (b [8]byte) {
	binary.LittleEndian.PutUint64(b[:], v)
	return
}

// replayTrace feeds one oracle trace to a fresh checker as the
// architectural event stream the simulator would emit: stores execute
// and commit when the oracle buffers them, become visible when the
// oracle drains them, and loads bind the value the oracle computed.
func replayTrace(cores int, tr modelcheck.Trace) *tso.Checker {
	ck := tso.NewChecker(cores)
	seq := make([]uint64, cores)
	cycle := uint64(1)
	for _, s := range tr {
		cycle += xvalCycleStep
		switch s.Kind {
		case modelcheck.StepStore:
			seq[s.Thread]++
			ck.StoreExecuted(s.Thread, seq[s.Thread], s.Addr, 8, le8(s.Val))
			ck.StoreCommitted(s.Thread, seq[s.Thread], s.Addr, 8, le8(s.Val))
		case modelcheck.StepDrain:
			var line memsys.LineData
			v := le8(s.Val)
			copy(line[s.Addr&63:], v[:])
			ck.StoreVisible(s.Thread, cycle, s.Addr&^63, memsys.MaskFor(s.Addr, 8), &line)
		case modelcheck.StepLoad:
			seq[s.Thread]++
			ck.LoadBound(s.Thread, cycle, seq[s.Thread], s.Addr, 8, le8(s.Val))
		}
	}
	ck.Finish()
	return ck
}

func programFor(t *testing.T, name string) (litmus.Program, int) {
	t.Helper()
	for _, lt := range litmus.Tests() {
		if lt.Name == name {
			p, err := lt.Program()
			if err != nil {
				t.Fatal(err)
			}
			return p, len(p.Threads)
		}
	}
	t.Fatalf("no litmus test %q", name)
	return litmus.Program{}, 0
}

func allTraces(t *testing.T, name string) ([]modelcheck.Trace, int) {
	t.Helper()
	p, cores := programFor(t, name)
	traces, complete := modelcheck.Traces(p, 1<<18)
	if !complete {
		t.Fatalf("%s: trace enumeration truncated at %d traces", name, len(traces))
	}
	return traces, cores
}

// TestCheckerAcceptsAllOracleTraces: the zero-false-positive
// direction, over the whole suite. Every interleaving the operational
// TSO machine allows — including store-forwarded loads (n6), buffered
// relaxations (SB), and four-thread drains (IRIW) — must replay
// through the checker clean.
func TestCheckerAcceptsAllOracleTraces(t *testing.T) {
	for _, lt := range litmus.Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			traces, cores := allTraces(t, lt.Name)
			if len(traces) == 0 {
				t.Fatal("oracle enumerated no traces")
			}
			for _, tr := range traces {
				ck := replayTrace(cores, tr)
				if err := ck.Err(); err != nil {
					t.Fatalf("false positive on TSO-allowed trace %v: %v", tr, err)
				}
			}
			t.Logf("%d traces replayed clean", len(traces))
		})
	}
}

// mutateSwapAdjacentDrains returns copies of tr with each adjacent
// same-thread drain pair to different addresses swapped — each mutant
// publishes a core's stores out of program order, which TSO forbids.
func mutateSwapAdjacentDrains(tr modelcheck.Trace) []modelcheck.Trace {
	var out []modelcheck.Trace
	for i := 0; i+1 < len(tr); i++ {
		a, b := tr[i], tr[i+1]
		if a.Kind == modelcheck.StepDrain && b.Kind == modelcheck.StepDrain &&
			a.Thread == b.Thread && a.Addr != b.Addr {
			m := append(modelcheck.Trace(nil), tr...)
			m[i], m[i+1] = b, a
			out = append(out, m)
		}
	}
	return out
}

// TestCheckerCatchesReorderedDrains: the mutation direction for
// store->store order. Every out-of-order drain mutant of every MP
// trace must be flagged.
func TestCheckerCatchesReorderedDrains(t *testing.T) {
	traces, cores := allTraces(t, "MP")
	mutants := 0
	for _, tr := range traces {
		for _, m := range mutateSwapAdjacentDrains(tr) {
			mutants++
			if err := replayTrace(cores, m).Err(); err == nil {
				t.Fatalf("reordered-drain mutant replayed clean:\n  %v", m)
			}
		}
	}
	if mutants == 0 {
		t.Fatal("no adjacent same-thread drain pairs found to mutate — mutation test is vacuous")
	}
	t.Logf("%d reordered-drain mutants all caught", mutants)
}

// TestCheckerCatchesCorruptedLoads: binding a value no store ever
// wrote (and memory never held) must be flagged, whether the original
// load read memory or forwarded from the local buffer.
func TestCheckerCatchesCorruptedLoads(t *testing.T) {
	// n6 exercises the forwarding path; SB the memory path.
	for _, name := range []string{"SB", "n6"} {
		traces, cores := allTraces(t, name)
		mutants := 0
		for _, tr := range traces {
			for i, s := range tr {
				if s.Kind != modelcheck.StepLoad {
					continue
				}
				m := append(modelcheck.Trace(nil), tr...)
				m[i].Val += 1000 // a rank no store in the suite writes
				mutants++
				if err := replayTrace(cores, m).Err(); err == nil {
					t.Fatalf("%s: corrupted load (step %d, val %d) replayed clean:\n  %v",
						name, i, m[i].Val, m)
				}
			}
		}
		if mutants == 0 {
			t.Fatalf("%s: no load steps found to corrupt", name)
		}
		t.Logf("%s: %d corrupted-load mutants all caught", name, mutants)
	}
}

// TestCheckerCatchesDroppedDrain: deleting a trace's final drain
// leaves a committed store that never becomes visible; the checker's
// end-of-run completeness check must flag it.
func TestCheckerCatchesDroppedDrain(t *testing.T) {
	traces, cores := allTraces(t, "SB")
	mutants := 0
	for _, tr := range traces {
		last := -1
		for i, s := range tr {
			if s.Kind == modelcheck.StepDrain {
				last = i
			}
		}
		if last < 0 {
			continue
		}
		m := append(append(modelcheck.Trace(nil), tr[:last]...), tr[last+1:]...)
		mutants++
		if err := replayTrace(cores, m).Err(); err == nil {
			t.Fatalf("dropped-drain mutant replayed clean:\n  %v", m)
		}
	}
	if mutants == 0 {
		t.Fatal("no drain steps found to drop")
	}
	t.Logf("%d dropped-drain mutants all caught", mutants)
}

// TestReplayHarnessSelfCheck: the replay harness itself must be
// faithful — a hand-built two-store, one-load sequence in plain SC
// order replays clean, so clean results above mean "the checker
// accepted the trace", not "the harness never exercised it".
func TestReplayHarnessSelfCheck(t *testing.T) {
	const x, y = uint64(1 << 33), uint64(1<<33 + 64)
	tr := modelcheck.Trace{
		{Kind: modelcheck.StepStore, Thread: 0, Addr: x, Val: 1, Obs: -1},
		{Kind: modelcheck.StepDrain, Thread: 0, Addr: x, Val: 1, Obs: -1},
		{Kind: modelcheck.StepStore, Thread: 0, Addr: y, Val: 1, Obs: -1},
		{Kind: modelcheck.StepDrain, Thread: 0, Addr: y, Val: 1, Obs: -1},
		{Kind: modelcheck.StepLoad, Thread: 1, Addr: x, Val: 1, Obs: 0},
	}
	ck := replayTrace(2, tr)
	if err := ck.Err(); err != nil {
		t.Fatalf("SC self-check trace flagged: %v", err)
	}
	if got := ck.VisibleByte(x); got != 1 {
		t.Fatalf("checker visible byte at %#x = %d, want 1", x, got)
	}
	if ck.Published != 2 || ck.LoadsSeen != 1 {
		t.Fatalf("event accounting off: published=%d loads=%d", ck.Published, ck.LoadsSeen)
	}
}
