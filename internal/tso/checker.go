// Package tso provides an online checker for the consistency
// properties TUS must preserve (Sec. III-D). It observes the
// architectural event stream of a simulation and verifies:
//
//   - Store->Store order: the stores a core makes visible in one cycle
//     (an atomic group publication) always form a *prefix* of that
//     core's committed pending-store queue — no store becomes visible
//     while an older store of the same core stays pending outside the
//     same atomic publication.
//   - Coalescing value correctness: the bytes published for a line
//     equal the program-order application of exactly the popped stores.
//   - Load value legality: every bound load value matches, byte for
//     byte, either the globally visible memory (within a small recent
//     window, since loads sample the memory system a few cycles before
//     their value binds) or a pending same-core store older than the
//     load (store-to-load forwarding).
//   - End-of-run completeness: no store remains pending forever.
//
// The checker is deliberately implementation-agnostic: it sees only
// commits, visibility events, and load values, never mechanism state.
package tso

import (
	"fmt"

	"tusim/internal/memsys"
)

// pendingStore is a committed store not yet globally visible.
type pendingStore struct {
	seq   uint64
	addr  uint64
	size  uint8
	value [8]byte
}

func (p *pendingStore) mask() memsys.Mask { return memsys.MaskFor(p.addr, p.size) }
func (p *pendingStore) line() uint64      { return p.addr &^ 63 }

// history keeps recent visible values of one byte so that loads whose
// value was sampled a few cycles before binding still verify.
type history struct {
	vals   [4]byte
	cycles [4]uint64
	n      int
}

func (h *history) push(v byte, cycle uint64) {
	if h.n < len(h.vals) {
		h.vals[h.n], h.cycles[h.n] = v, cycle
		h.n++
		return
	}
	copy(h.vals[:], h.vals[1:])
	copy(h.cycles[:], h.cycles[1:])
	h.vals[h.n-1], h.cycles[h.n-1] = v, cycle
}

// legal reports whether v was the visible value at some point within
// [cycle-window, cycle].
func (h *history) legal(v byte, cycle, window uint64) bool {
	if h.n == 0 {
		return v == 0 // unwritten memory reads zero
	}
	for i := h.n - 1; i >= 0; i-- {
		if h.vals[i] == v {
			if i == h.n-1 {
				return true // still current
			}
			// Overwritten at cycles[i+1]; legal if current within window.
			return h.cycles[i+1]+window >= cycle
		}
	}
	// v predates recorded history; legal only if even the oldest
	// recorded write is inside the window and v is the zero default.
	return h.cycles[0]+window >= cycle && v == 0
}

// loadWindow is the slack (cycles) between a load sampling memory and
// its value binding; covers the deepest miss path (L3 + DRAM + probes).
const loadWindow = 512

// Violation is one detected consistency violation.
type Violation struct {
	Kind string
	Msg  string
}

func (v Violation) String() string { return v.Kind + ": " + v.Msg }

// publication is one line's visibility event inside a same-cycle batch.
type publication struct {
	mask memsys.Mask
	data memsys.LineData
}

// seqVal records one store's write to one byte, for forwarding checks.
type seqVal struct {
	seq uint64
	val byte
}

// Checker implements system.Observer.
type Checker struct {
	pending [][]pendingStore // per core, program order (committed)
	// exec records, per core and byte address, every executed store's
	// value — loads may forward from executed-but-uncommitted stores.
	exec    []map[uint64][]seqVal
	golden  map[uint64]*history
	current map[uint64]byte
	violas  []Violation
	maxKeep int

	batchCycle []uint64
	batch      []map[uint64]*publication

	// Published counts visibility events; LoadsSeen counts checked loads.
	Published uint64
	LoadsSeen uint64
}

// NewChecker builds a checker for the given core count.
func NewChecker(cores int) *Checker {
	c := &Checker{
		pending:    make([][]pendingStore, cores),
		exec:       make([]map[uint64][]seqVal, cores),
		golden:     make(map[uint64]*history),
		current:    make(map[uint64]byte),
		maxKeep:    64,
		batchCycle: make([]uint64, cores),
		batch:      make([]map[uint64]*publication, cores),
	}
	for i := range c.exec {
		c.exec[i] = make(map[uint64][]seqVal)
	}
	return c
}

// StoreExecuted implements system.Observer.
func (c *Checker) StoreExecuted(core int, seq, addr uint64, size uint8, value [8]byte) {
	for i := 0; i < int(size); i++ {
		a := addr + uint64(i)
		c.exec[core][a] = append(c.exec[core][a], seqVal{seq: seq, val: value[i]})
	}
}

func (c *Checker) violate(kind, format string, args ...any) {
	if len(c.violas) < c.maxKeep {
		c.violas = append(c.violas, Violation{Kind: kind, Msg: fmt.Sprintf(format, args...)})
	}
}

// Violations returns everything detected so far.
func (c *Checker) Violations() []Violation { return c.violas }

// Err returns a summarizing error, or nil if the run was clean.
func (c *Checker) Err() error {
	if len(c.violas) == 0 {
		return nil
	}
	return fmt.Errorf("tso: %d violations; first: %s", len(c.violas), c.violas[0])
}

// StoreCommitted implements system.Observer.
func (c *Checker) StoreCommitted(core int, seq, addr uint64, size uint8, value [8]byte) {
	c.pending[core] = append(c.pending[core], pendingStore{seq: seq, addr: addr, size: size, value: value})
}

// StoreVisible implements system.Observer. Same-cycle events from one
// core form one atomic publication (atomic groups publish all their
// lines in a single cycle); the batch is checked when the core's next
// publication cycle differs or at Finish.
func (c *Checker) StoreVisible(core int, cycle uint64, line uint64, mask memsys.Mask, data *memsys.LineData) {
	c.Published++
	c.flushOlder(cycle)
	if c.batch[core] == nil {
		c.batch[core] = make(map[uint64]*publication, 4)
		c.batchCycle[core] = cycle
	}
	p := c.batch[core][line]
	if p == nil {
		p = &publication{}
		c.batch[core][line] = p
	}
	p.mask |= mask
	p.data = *data
}

// flushOlder closes every batch opened at a cycle before the given one
// (events arrive in non-decreasing cycle order, so those publications
// are complete and other cores' loads may legally observe them).
func (c *Checker) flushOlder(cycle uint64) {
	for core := range c.batch {
		if c.batch[core] != nil && c.batchCycle[core] < cycle {
			c.flush(core)
		}
	}
}

// flush applies and checks one core's atomic publication batch.
func (c *Checker) flush(core int) {
	batch := c.batch[core]
	cycle := c.batchCycle[core]
	c.batch[core] = nil
	if len(batch) == 0 {
		return
	}

	// Pop the longest *value-consistent* covered prefix of the pending
	// queue. Coverage alone is ambiguous: a non-coalescing mechanism
	// publishing store k may cover a later pending store to the same
	// bytes that it did NOT make visible; value consistency (the
	// program-order application of the popped stores must equal the
	// published bytes everywhere they touch) disambiguates.
	q := c.pending[core]
	scratch := map[uint64]byte{}
	consistent := func() bool {
		for a, v := range scratch {
			pub := batch[a&^63]
			if pub == nil {
				return false
			}
			if pub.data[a&63] != v {
				return false
			}
		}
		return true
	}
	covered := 0
	bestPop := 0
	for _, p := range q {
		pub := batch[p.line()]
		if pub == nil || !pub.mask.Covers(p.mask()) {
			break
		}
		for i := 0; i < int(p.size); i++ {
			scratch[p.addr+uint64(i)] = p.value[i]
		}
		covered++
		if consistent() {
			bestPop = covered
		}
	}
	if bestPop == 0 {
		// Benign republication of already-visible data is allowed
		// (e.g., two identical-value stores drained separately).
		benign := true
		for line, pub := range batch {
			for i := 0; i < 64; i++ {
				if pub.mask&(1<<uint(i)) != 0 && c.current[line+uint64(i)] != pub.data[i] {
					benign = false
				}
			}
		}
		if !benign {
			if covered > 0 {
				c.violate("store-value",
					"core %d publication at cycle %d covers %d pending stores but no prefix reproduces the published bytes",
					core, cycle, covered)
			} else {
				c.violate("store-order",
					"core %d published %d line(s) at cycle %d but its oldest pending store (%s) is not covered",
					core, len(batch), cycle, describeOldest(q))
			}
		}
	}
	c.pending[core] = q[bestPop:]

	// Update the golden memory for every published byte.
	for line, pub := range batch {
		for i := 0; i < 64; i++ {
			if pub.mask&(1<<uint(i)) == 0 {
				continue
			}
			a := line + uint64(i)
			h := c.golden[a]
			if h == nil {
				h = &history{}
				c.golden[a] = h
			}
			h.push(pub.data[i], cycle)
			c.current[a] = pub.data[i]
		}
	}
}

func describeOldest(q []pendingStore) string {
	if len(q) == 0 {
		return "<none>"
	}
	p := q[0]
	return fmt.Sprintf("seq=%d addr=%#x size=%d", p.seq, p.addr, p.size)
}

// LoadBound implements system.Observer.
func (c *Checker) LoadBound(core int, cycle uint64, seq, addr uint64, size uint8, value [8]byte) {
	// Publications from earlier cycles are complete; make them visible.
	c.flushOlder(cycle)
	c.LoadsSeen++
	for i := 0; i < int(size); i++ {
		a := addr + uint64(i)
		v := value[i]
		if c.legalByte(core, seq, a, v, cycle) {
			continue
		}
		c.violate("load-value",
			"core %d load seq=%d addr=%#x byte %d read %#x; visible=%#x and no matching pending local store",
			core, seq, addr, i, v, c.current[a])
		return
	}
}

func (c *Checker) legalByte(core int, loadSeq, a uint64, v byte, cycle uint64) bool {
	// Forwarding from the youngest older local store that executed
	// (its data is forwardable from the SB/WCB/TSOB even before it
	// commits). If such a store exists and matches, the load is legal;
	// if it exists and mismatches, the load may still legally have
	// read visible memory (the store may already be visible and
	// overwritten remotely), so fall through to the golden check.
	if hist := c.exec[core][a]; len(hist) > 0 {
		var youngest *seqVal
		for i := range hist {
			sv := &hist[i]
			if sv.seq < loadSeq && (youngest == nil || sv.seq > youngest.seq) {
				youngest = sv
			}
		}
		if youngest != nil && youngest.val == v {
			return true
		}
	}
	// A publication still sitting in an open same-cycle batch (any
	// core's): events within a cycle are ordered, so a publication the
	// checker has already recorded this cycle happened before this bind
	// and is legally observable.
	for _, b := range c.batch {
		if b == nil {
			continue
		}
		if pub := b[a&^63]; pub != nil && pub.mask&(1<<uint(a&63)) != 0 {
			if pub.data[a&63] == v {
				return true
			}
		}
	}
	// Globally visible memory (with the sampling window).
	if h := c.golden[a]; h != nil {
		return h.legal(v, cycle, loadWindow)
	}
	return v == 0
}

// Finish flushes open batches and performs end-of-run checks: every
// committed store must have become visible.
func (c *Checker) Finish() {
	for core := range c.batch {
		if c.batch[core] != nil {
			c.flush(core)
		}
	}
	for core, q := range c.pending {
		if len(q) > 0 {
			c.violate("liveness", "core %d finished with %d stores never made visible (oldest %s)",
				core, len(q), describeOldest(q))
		}
	}
}

// VisibleByte returns the checker's view of the coherent value of a
// byte (tests compare it against the machine's coherent view).
func (c *Checker) VisibleByte(a uint64) byte { return c.current[a] }
