package tso

import (
	"testing"

	"tusim/internal/memsys"
)

func mkData(pairs map[int]byte) *memsys.LineData {
	var d memsys.LineData
	for i, v := range pairs {
		d[i] = v
	}
	return &d
}

func TestInOrderPublicationClean(t *testing.T) {
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 4, [8]byte{1, 2, 3, 4})
	c.StoreCommitted(0, 2, 0x1040, 4, [8]byte{5, 6, 7, 8})
	c.StoreVisible(0, 10, 0x1000, memsys.MaskFor(0x1000, 4), mkData(map[int]byte{0: 1, 1: 2, 2: 3, 3: 4}))
	c.StoreVisible(0, 20, 0x1040, memsys.MaskFor(0x1040, 4), mkData(map[int]byte{0: 5, 1: 6, 2: 7, 3: 8}))
	c.Finish()
	if err := c.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if c.VisibleByte(0x1001) != 2 || c.VisibleByte(0x1043) != 8 {
		t.Fatal("golden memory wrong")
	}
}

func TestOutOfOrderPublicationFlagged(t *testing.T) {
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 4, [8]byte{1})
	c.StoreCommitted(0, 2, 0x1040, 4, [8]byte{2})
	// Younger store published first: TSO store->store violation.
	c.StoreVisible(0, 10, 0x1040, memsys.MaskFor(0x1040, 4), mkData(map[int]byte{0: 2}))
	c.StoreVisible(0, 20, 0x1000, memsys.MaskFor(0x1000, 4), mkData(map[int]byte{0: 1}))
	c.Finish()
	if err := c.Err(); err == nil {
		t.Fatal("out-of-order publication not flagged")
	}
	if c.Violations()[0].Kind != "store-order" {
		t.Fatalf("kind = %s, want store-order", c.Violations()[0].Kind)
	}
}

func TestAtomicGroupSameCycleClean(t *testing.T) {
	// ABA cycle: A1 B1 A2 published atomically in one cycle.
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 1, [8]byte{0xA1})
	c.StoreCommitted(0, 2, 0x1040, 1, [8]byte{0xB1})
	c.StoreCommitted(0, 3, 0x1008, 1, [8]byte{0xA2})
	c.StoreVisible(0, 50, 0x1000, memsys.MaskFor(0x1000, 1)|memsys.MaskFor(0x1008, 1),
		mkData(map[int]byte{0: 0xA1, 8: 0xA2}))
	c.StoreVisible(0, 50, 0x1040, memsys.MaskFor(0x1040, 1), mkData(map[int]byte{0: 0xB1}))
	c.Finish()
	if err := c.Err(); err != nil {
		t.Fatalf("atomic group flagged: %v", err)
	}
}

func TestNonAtomicCycleFlagged(t *testing.T) {
	// A1 B1 A2 where A publishes both its stores but B1 publishes in a
	// LATER cycle: A2 became visible before the older B1 — violation.
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 1, [8]byte{0xA1})
	c.StoreCommitted(0, 2, 0x1040, 1, [8]byte{0xB1})
	c.StoreCommitted(0, 3, 0x1008, 1, [8]byte{0xA2})
	c.StoreVisible(0, 50, 0x1000, memsys.MaskFor(0x1000, 1)|memsys.MaskFor(0x1008, 1),
		mkData(map[int]byte{0: 0xA1, 8: 0xA2}))
	c.StoreVisible(0, 60, 0x1040, memsys.MaskFor(0x1040, 1), mkData(map[int]byte{0: 0xB1}))
	c.Finish()
	if err := c.Err(); err == nil {
		t.Fatal("non-atomic ABA publication not flagged")
	}
}

func TestCoalescedValueMismatchFlagged(t *testing.T) {
	// Two stores to one byte coalesced into one publication carrying a
	// value that matches neither program-order outcome.
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 1, [8]byte{0x11})
	c.StoreCommitted(0, 2, 0x1000, 1, [8]byte{0x22})
	c.StoreVisible(0, 9, 0x1000, memsys.MaskFor(0x1000, 1), mkData(map[int]byte{0: 0x33}))
	c.Finish()
	if err := c.Err(); err == nil {
		t.Fatal("corrupted coalesced value not flagged")
	}
}

func TestStaleCoalescedPublicationEventuallyFlagged(t *testing.T) {
	// A mechanism that coalesces {0x11, 0x22} but publishes the stale
	// 0x11 looks like a partial drain; the younger store then never
	// becomes visible, which Finish flags.
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 1, [8]byte{0x11})
	c.StoreCommitted(0, 2, 0x1000, 1, [8]byte{0x22})
	c.StoreVisible(0, 9, 0x1000, memsys.MaskFor(0x1000, 1), mkData(map[int]byte{0: 0x11}))
	c.Finish()
	if err := c.Err(); err == nil {
		t.Fatal("stale coalesced publication not flagged")
	}
}

func TestLoadForwardingLegal(t *testing.T) {
	c := NewChecker(1)
	// The store has executed (data forwardable) but not yet committed.
	c.StoreExecuted(0, 5, 0x2000, 4, [8]byte{9, 9, 9, 9})
	c.LoadBound(0, 3, 6, 0x2000, 4, [8]byte{9, 9, 9, 9})
	c.Finish()
	for _, v := range c.Violations() {
		if v.Kind == "load-value" {
			t.Fatalf("legal forward flagged: %v", v)
		}
	}
}

func TestLoadCannotForwardFromYoungerStore(t *testing.T) {
	c := NewChecker(1)
	c.StoreExecuted(0, 10, 0x2000, 4, [8]byte{7, 7, 7, 7})
	c.StoreCommitted(0, 10, 0x2000, 4, [8]byte{7, 7, 7, 7})
	// Load with seq 8 is OLDER than the store; reading its value means
	// the load observed the future.
	c.LoadBound(0, 3, 8, 0x2000, 4, [8]byte{7, 7, 7, 7})
	found := false
	for _, v := range c.Violations() {
		if v.Kind == "load-value" {
			found = true
		}
	}
	if !found {
		t.Fatal("load observing a younger store's value not flagged")
	}
}

func TestLoadSeesVisibleMemory(t *testing.T) {
	c := NewChecker(2)
	c.StoreCommitted(0, 1, 0x3000, 1, [8]byte{0x42})
	c.StoreVisible(0, 10, 0x3000, memsys.MaskFor(0x3000, 1), mkData(map[int]byte{0: 0x42}))
	// Another core's load after visibility.
	c.LoadBound(1, 100, 1, 0x3000, 1, [8]byte{0x42})
	// And a load of untouched memory must read zero.
	c.LoadBound(1, 101, 2, 0x9999000, 1, [8]byte{0})
	c.Finish()
	if err := c.Err(); err != nil {
		t.Fatalf("legal loads flagged: %v", err)
	}
}

func TestLoadWrongValueFlagged(t *testing.T) {
	c := NewChecker(2)
	c.StoreCommitted(0, 1, 0x3000, 1, [8]byte{0x42})
	c.StoreVisible(0, 10, 0x3000, memsys.MaskFor(0x3000, 1), mkData(map[int]byte{0: 0x42}))
	c.LoadBound(1, 2000, 1, 0x3000, 1, [8]byte{0x43})
	if err := c.Err(); err == nil {
		t.Fatal("wrong load value not flagged")
	}
}

func TestLoadWindowToleratesRecentOverwrite(t *testing.T) {
	c := NewChecker(2)
	c.StoreCommitted(0, 1, 0x3000, 1, [8]byte{0x10})
	c.StoreVisible(0, 100, 0x3000, memsys.MaskFor(0x3000, 1), mkData(map[int]byte{0: 0x10}))
	c.StoreCommitted(0, 2, 0x3000, 1, [8]byte{0x20})
	c.StoreVisible(0, 1000, 0x3000, memsys.MaskFor(0x3000, 1), mkData(map[int]byte{0: 0x20}))
	// A load that sampled just before the overwrite binds shortly after:
	// legal within the window.
	c.LoadBound(1, 1005, 1, 0x3000, 1, [8]byte{0x10})
	// But a load binding long after the overwrite must see 0x20.
	c.LoadBound(1, 5000, 2, 0x3000, 1, [8]byte{0x10})
	violations := 0
	for _, v := range c.Violations() {
		if v.Kind == "load-value" {
			violations++
		}
	}
	if violations != 1 {
		t.Fatalf("window check: %d load violations, want exactly 1 (got %v)", violations, c.Violations())
	}
}

func TestLivenessFlagged(t *testing.T) {
	c := NewChecker(1)
	c.StoreCommitted(0, 1, 0x1000, 4, [8]byte{1})
	c.Finish()
	if err := c.Err(); err == nil {
		t.Fatal("never-visible store not flagged at Finish")
	}
}
