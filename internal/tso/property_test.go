package tso

import (
	"math/rand"
	"testing"

	"tusim/internal/memsys"
)

// TestLegalStreamsNeverFlagged drives the checker with randomly
// generated but TSO-LEGAL event streams: per-core stores committed in
// order, published strictly in program order (with random coalescing
// into same-cycle atomic groups), and loads reading either the current
// visible value or a pending local store. No violations may fire.
func TestLegalStreamsNeverFlagged(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const cores = 2
		ck := NewChecker(cores)

		type pend struct {
			seq   uint64
			addr  uint64
			value [8]byte
		}
		pending := make([][]pend, cores)
		visible := map[uint64]byte{} // per-byte golden
		cycle := uint64(10)
		seq := uint64(1)

		for step := 0; step < 400; step++ {
			core := rng.Intn(cores)
			cycle += uint64(rng.Intn(3) + 1)
			switch rng.Intn(4) {
			case 0: // commit a store
				addr := uint64(0x1000) + uint64(rng.Intn(4))*64 + uint64(rng.Intn(8))*8
				var v [8]byte
				rng.Read(v[:])
				if v == ([8]byte{}) {
					v[0] = 1
				}
				ck.StoreExecuted(core, seq, addr, 8, v)
				ck.StoreCommitted(core, seq, addr, 8, v)
				pending[core] = append(pending[core], pend{seq, addr, v})
				seq++
			case 1: // publish an in-order prefix (coalesced per line)
				n := rng.Intn(len(pending[core]) + 1)
				if n == 0 {
					continue
				}
				batch := pending[core][:n]
				pending[core] = pending[core][n:]
				// Build per-line masks/data in program order.
				lines := map[uint64]*struct {
					mask memsys.Mask
					data memsys.LineData
				}{}
				for _, p := range batch {
					line := p.addr &^ 63
					e := lines[line]
					if e == nil {
						e = &struct {
							mask memsys.Mask
							data memsys.LineData
						}{}
						lines[line] = e
					}
					off := p.addr & 63
					copy(e.data[off:off+8], p.value[:])
					e.mask |= memsys.MaskFor(p.addr, 8)
				}
				for line, e := range lines {
					ck.StoreVisible(core, cycle, line, e.mask, &e.data)
					for i := 0; i < 64; i++ {
						if e.mask&(1<<uint(i)) != 0 {
							visible[line+uint64(i)] = e.data[i]
						}
					}
				}
				cycle++ // close the atomic batch
			case 2: // load from visible memory
				addr := uint64(0x1000) + uint64(rng.Intn(4))*64 + uint64(rng.Intn(8))*8
				// Forwarding must win if this core has a pending store
				// covering the byte; otherwise read visible memory.
				var v [8]byte
				forwarded := false
				for i := len(pending[core]) - 1; i >= 0; i-- {
					if pending[core][i].addr == addr {
						v = pending[core][i].value
						forwarded = true
						break
					}
				}
				if !forwarded {
					for i := 0; i < 8; i++ {
						v[i] = visible[addr+uint64(i)]
					}
				}
				ck.LoadBound(core, cycle, seq, addr, 8, v)
				seq++
			case 3: // idle
			}
		}
		// Publish the rest so Finish is clean.
		for core := range pending {
			for _, p := range pending[core] {
				var d memsys.LineData
				off := p.addr & 63
				copy(d[off:off+8], p.value[:])
				ck.StoreVisible(core, cycle, p.addr&^63, memsys.MaskFor(p.addr, 8), &d)
				for i := uint64(0); i < 8; i++ {
					visible[p.addr+i] = p.value[i]
				}
				cycle += 2
			}
		}
		ck.Finish()
		if err := ck.Err(); err != nil {
			t.Fatalf("seed %d: legal stream flagged: %v (first: %v)", seed, err, ck.Violations()[0])
		}
	}
}

// TestIllegalStreamsCaught injects specific violations into otherwise
// legal streams and checks each is detected.
func TestIllegalStreamsCaught(t *testing.T) {
	mk := func() (*Checker, [8]byte, [8]byte) {
		ck := NewChecker(1)
		a := [8]byte{0xA}
		b := [8]byte{0xB}
		ck.StoreCommitted(0, 1, 0x1000, 8, a)
		ck.StoreCommitted(0, 2, 0x1040, 8, b)
		return ck, a, b
	}
	line := func(v [8]byte, off uint64) *memsys.LineData {
		var d memsys.LineData
		copy(d[off:off+8], v[:])
		return &d
	}

	// Violation 1: publish the younger store first.
	ck, _, b := mk()
	ck.StoreVisible(0, 10, 0x1040, memsys.MaskFor(0x1040, 8), line(b, 0))
	if len(ck.Violations()) == 0 {
		ck.StoreVisible(0, 20, 0x1000, memsys.MaskFor(0x1000, 8), line([8]byte{0xA}, 0))
		ck.Finish()
	}
	if len(ck.Violations()) == 0 {
		t.Fatal("younger-first publication not caught")
	}

	// Violation 2: publish wrong data.
	ck2, _, _ := mk()
	ck2.StoreVisible(0, 10, 0x1000, memsys.MaskFor(0x1000, 8), line([8]byte{0xFF}, 0))
	ck2.StoreVisible(0, 20, 0x1040, memsys.MaskFor(0x1040, 8), line([8]byte{0xB}, 0))
	ck2.Finish()
	if len(ck2.Violations()) == 0 {
		t.Fatal("corrupted publication not caught")
	}

	// Violation 3: load sees a value that never existed.
	ck3 := NewChecker(1)
	ck3.LoadBound(0, 100, 1, 0x2000, 8, [8]byte{0x77})
	if len(ck3.Violations()) == 0 {
		t.Fatal("phantom load value not caught")
	}
}
