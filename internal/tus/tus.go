// Package tus implements Temporarily Unauthorized Stores, the paper's
// contribution: committed stores leave the store buffer through the
// write-combining buffers into the L1D *without* write permission,
// remaining invisible to coherence until permission arrives; a Write
// Ordering Queue (WOQ) tracks the x86-TSO order (and the atomic groups
// created by store cycles) in which lines become visible; and an
// authorization unit based on a global lexicographical order decides —
// without speculation or rollback — which core relinquishes lines when
// external requests hit unauthorized data (Sec. III and IV).
package tus

import (
	"fmt"
	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/lmap"
	"tusim/internal/memsys"
	"tusim/internal/stats"
	"tusim/internal/trace"
	"tusim/internal/wcb"
)

// woqEntry mirrors the paper's WOQ record: line location, atomic group
// id, written-byte tracking (held by the L1D line here), a CanCycle
// bit, and a Ready bit. We additionally track permission state to
// drive the lex-gated re-request rule.
type woqEntry struct {
	line      uint64
	born      uint64 // admission cycle (age-bound auditing)
	group     int
	canCycle  bool
	ready     bool
	hasPerm   bool
	requested bool
	// gated marks a line that lost (or was denied) its permission to a
	// lex-order conflict; it may only re-request under the Sec. III-C
	// rule (lex-least missing line of the WOQ-head atomic group).
	// Non-gated retries (MSHR pressure, transient NACKs) re-issue
	// freely with a backoff.
	gated   bool
	retryAt uint64
}

// flushItem is one line of an atomic group headed for the L1D.
type flushItem struct {
	line uint64
	data memsys.LineData
	mask memsys.Mask
}

// lexPair is one (lex key, line) seen while checking a candidate
// atomic group for duplicate lex keys.
type lexPair struct{ key, line uint64 }

// TUS is the drain mechanism; it also implements
// memsys.UnauthorizedHandler (the authorization unit + WOQ side).
type TUS struct {
	core *cpu.Core
	priv *memsys.Private
	cfg  *config.Config
	q    *event.Queue

	wcbs    *wcb.Set
	woq     []*woqEntry
	byLine  *lmap.Map[woqEntry]
	woqPool *lmap.Pool[woqEntry]
	nextGID int

	pending []flushItem   // group awaiting L1D/WOQ admission
	pendBuf []*wcb.Buffer // WCB buffers backing the pending group (nil for bypass)
	// Scratch backings reused across drain cycles (one outstanding
	// group / admission attempt at a time).
	flushScratch []flushItem
	wayScratch   []uint64
	lexScratch   []lexPair
	idle         int
	faults       *faults.Injector
	// cFaultFlush counts injected early WCB flushes; allocated only when
	// an injector is installed.
	cFaultFlush *stats.Counter

	cDrained, cBlocked     *stats.Counter
	cVisibleGroups         *stats.Counter
	cWOQSearch, cWOQPeak   *stats.Counter
	cCycleMerges           *stats.Counter
	cLexDelays, cLexRelinq *stats.Counter
	cGroupLen              *stats.Counter
	cStoresVisible         *stats.Counter
	cWCBSearch             *stats.Counter

	hWOQOcc, hUnauthRes *stats.Histogram

	tr *trace.Tracer
}

// tusIdleFlush bounds how long coalesced stores linger in the WCBs
// when the SB drain is idle.
const tusIdleFlush = 4

// New builds the TUS mechanism for a core and registers it as the
// private hierarchy's unauthorized handler.
func New(core *cpu.Core, cfg *config.Config, q *event.Queue, st *stats.Set) *TUS {
	ref := cfg.RefContainers || lmap.DefaultRef
	t := &TUS{
		core:           core,
		priv:           core.Priv(),
		cfg:            cfg,
		q:              q,
		wcbs:           wcb.NewSet(cfg.WCBCount, cfg.LexBits),
		byLine:         lmap.NewRef[woqEntry](ref),
		woqPool:        lmap.NewPoolRef[woqEntry](ref),
		cDrained:       st.Counter("stores_drained"),
		cBlocked:       st.Counter("drain_blocked_cycles"),
		cVisibleGroups: st.Counter("tus_visible_groups"),
		cWOQSearch:     st.Counter("woq_searches"),
		cWOQPeak:       st.Counter("woq_peak_occupancy"),
		cCycleMerges:   st.Counter("tus_cycle_merges"),
		cLexDelays:     st.Counter("tus_lex_delays"),
		cLexRelinq:     st.Counter("tus_lex_relinquishes"),
		cGroupLen:      st.Counter("tus_group_lines"),
		cStoresVisible: st.Counter("tus_lines_made_visible"),
		cWCBSearch:     st.Counter("wcb_searches"),
		hWOQOcc:        st.Histogram("woq_occupancy"),
		hUnauthRes:     st.Histogram("tus_unauth_residency"),
	}
	t.priv.SetHandler(t)
	return t
}

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (t *TUS) SetTracer(tr *trace.Tracer) { t.tr = tr }

// SetFaults installs a fault injector on the drain path (nil disables).
func (t *TUS) SetFaults(in *faults.Injector, st *stats.Set) {
	t.faults = in
	if in != nil {
		t.cFaultFlush = st.Counter("fault_wcb_flushes")
	}
}

// Name implements cpu.DrainMechanism.
func (t *TUS) Name() string { return config.TUS.String() }

func (t *TUS) lex(line uint64) uint64 { return wcb.Lex(line, t.cfg.LexBits) }

// ---------- Drain path ----------

// Tick implements cpu.DrainMechanism.
func (t *TUS) Tick() {
	t.hWOQOcc.Observe(uint64(len(t.woq)))
	t.advanceVisibility()
	t.reRequest()

	if t.pending == nil && !t.wcbs.Empty() && t.faults.WCBFlush() {
		// Force an early flush of the oldest coalescing group — legal
		// (equivalent to idle-timeout expiry), but it stresses the
		// WOQ/admission path with smaller, more frequent atomic groups.
		t.cFaultFlush.Inc()
		t.startFlushOldest()
	}

	if t.pending != nil {
		if !t.tryAdmit() {
			t.cBlocked.Inc()
			return
		}
	}

	// Coalescing decouples the SB drain from the L1D write port: up to
	// commit-width committed stores enter the WCBs per cycle (the
	// paper's L1D-bandwidth argument for the WCB path).
	for n := 0; n < t.cfg.CommitWidth; n++ {
		e := t.core.SB.Head()
		if e == nil || !e.Committed {
			if n == 0 && !t.wcbs.Empty() {
				t.idle++
				if t.idle >= tusIdleFlush {
					t.startFlushOldest()
				}
			}
			return
		}
		t.idle = 0

		if !t.cfg.TUSCoalesce {
			// Ablation: every store is its own single-line atomic group
			// and pays its own L1D write — at most one per cycle (the
			// L1D write port coalescing normally relieves).
			var it flushItem
			it.line = e.Line()
			off := e.Addr & 63
			copy(it.data[off:], e.Data[:e.Size])
			it.mask = e.Mask()
			t.pending = []flushItem{it}
			t.pendBuf = nil
			if t.tryAdmit() {
				t.core.SB.Pop()
				t.cDrained.Inc()
				return
			}
			// Admission failed: un-pend and retry with the same store.
			t.pending, t.pendBuf = nil, nil
			t.cBlocked.Inc()
			return
		}

		switch t.wcbs.Insert(e.Addr, e.Data[:e.Size]) {
		case wcb.Inserted:
			t.tr.Emit(trace.WCBCoalesce, int32(t.core.ID), t.q.Now(), e.Addr, e.Seq, 0)
			t.core.SB.Pop()
			t.cDrained.Inc()
		case wcb.NeedFlush, wcb.LexConflict:
			t.startFlushOldest()
			t.cBlocked.Inc()
			return
		}
	}
}

func (t *TUS) startFlushOldest() {
	group := t.wcbs.OldestGroup()
	if group == nil {
		return
	}
	items := t.flushScratch[:0]
	for _, b := range group {
		items = append(items, flushItem{line: b.Line, data: b.Data, mask: b.Mask})
	}
	t.flushScratch = items
	t.pending = items
	t.pendBuf = group
	t.tryAdmit()
}

// tryAdmit writes the pending atomic group into the L1D + WOQ if every
// admission check passes (Fig. 7 left side). All lines go in the same
// cycle — the group is atomic.
func (t *TUS) tryAdmit() bool {
	items := t.pending

	// Classify each line against the current L1D/WOQ state.
	newEntries := 0
	cycleHit := false
	minHitIdx := -1
	needWays := t.wayScratch[:0]
	for _, it := range items {
		pl := t.priv.Lookup(it.line)
		switch {
		case pl != nil && pl.NotVisible:
			e := t.byLine.Get(it.line)
			if e == nil {
				panic(faults.Violationf("tus", t.core.ID, it.line, "woq-tracks-notvisible",
					"not-visible line missing from WOQ"))
			}
			t.cWOQSearch.Inc()
			if !e.canCycle {
				return false // cycles disabled while a conflict resolves
			}
			// The merge absorbs the hit entry's whole group, whose
			// oldest member may sit before the hit entry itself.
			idx := t.firstOfGroup(e.group)
			if minHitIdx < 0 || idx < minHitIdx {
				minHitIdx = idx
			}
			cycleHit = true
		default:
			newEntries++
			if pl == nil || !pl.InL1 {
				needWays = append(needWays, it.line)
			}
		}
	}
	t.wayScratch = needWays

	if len(t.woq)+newEntries > t.cfg.WOQEntries {
		return false
	}
	if len(needWays) > 0 && !t.priv.L1WaysAvailable(needWays) {
		return false
	}

	// Resulting atomic group size (groups are contiguous WOQ runs; a
	// cycle merge absorbs everything from the hit entry to the tail).
	mergedLen := newEntries
	if cycleHit {
		mergedLen += len(t.woq) - minHitIdx
	}
	if mergedLen > t.cfg.MaxAtomicGroup {
		return false
	}
	// No two distinct lines of the final group may share a lex key.
	if t.lexConflictInMerged(items, minHitIdx, cycleHit) {
		return false
	}

	// Commit the group.
	t.nextGID++
	gid := t.nextGID
	for _, it := range items {
		pl := t.priv.Lookup(it.line)
		switch {
		case pl != nil && pl.NotVisible:
			t.priv.StoreUnauthorizedHitLine(it.line, &it.data, it.mask)
		case pl != nil && (pl.State == memsys.StateE || pl.State == memsys.StateM):
			// Authorized hit: L2 keeps the old copy; ready immediately.
			if !t.priv.StoreOverVisibleLine(it.line, &it.data, it.mask) {
				panic(faults.Violationf("tus", t.core.ID, it.line, "admission-checked",
					"StoreOverVisibleLine failed after admission checks"))
			}
			e := t.woqPool.Get()
			*e = woqEntry{line: it.line, born: t.q.Now(), group: gid, canCycle: true, ready: true, hasPerm: true}
			t.append(e)
			t.tr.Emit(trace.AuthWrite, int32(t.core.ID), t.q.Now(), it.line, 0, uint64(gid))
		default:
			if !t.priv.StoreUnauthorizedLine(it.line, &it.data, it.mask) {
				panic(faults.Violationf("tus", t.core.ID, it.line, "admission-checked",
					"StoreUnauthorizedLine failed after admission checks"))
			}
			e := t.woqPool.Get()
			*e = woqEntry{line: it.line, born: t.q.Now(), group: gid, canCycle: true}
			t.append(e)
			t.tr.Emit(trace.UnauthWrite, int32(t.core.ID), t.q.Now(), it.line, 0, uint64(gid))
			t.request(e)
		}
	}
	if cycleHit {
		// Copy the hit entry's group id over everything younger.
		t.cCycleMerges.Inc()
		g := t.woq[minHitIdx].group
		for i := minHitIdx; i < len(t.woq); i++ {
			t.woq[i].group = g
		}
	}
	t.cGroupLen.Add(uint64(len(items)))

	if t.pendBuf != nil {
		t.wcbs.Release(t.pendBuf)
	}
	t.pending, t.pendBuf = nil, nil
	if uint64(len(t.woq)) > t.cWOQPeak.Value() {
		t.cWOQPeak.Add(uint64(len(t.woq)) - t.cWOQPeak.Value())
	}
	t.advanceVisibility()
	return true
}

func (t *TUS) lexConflictInMerged(items []flushItem, minHitIdx int, cycleHit bool) bool {
	// Quadratic scan over a scratch pair list: candidate groups are at
	// most MaxAtomicGroup plus the merged WOQ tail, so this stays small
	// and allocation-free where the old per-call map did not.
	seen := t.lexScratch[:0]
	defer func() { t.lexScratch = seen[:0] }()
	add := func(line uint64) bool {
		k := t.lex(line)
		for _, p := range seen {
			if p.key == k && p.line != line {
				return true
			}
		}
		seen = append(seen, lexPair{key: k, line: line})
		return false
	}
	for _, it := range items {
		if add(it.line) {
			return true
		}
	}
	if cycleHit {
		for i := minHitIdx; i < len(t.woq); i++ {
			if add(t.woq[i].line) {
				return true
			}
		}
	}
	return false
}

func (t *TUS) append(e *woqEntry) {
	t.woq = append(t.woq, e)
	t.byLine.Put(e.line, e)
}

func (t *TUS) firstOfGroup(gid int) int {
	for i, o := range t.woq {
		if o.group == gid {
			return i
		}
	}
	// Invariant: gid came from a live byLine entry, and byLine members
	// are always WOQ members.
	panic(faults.Violationf("tus", t.core.ID, 0, "group-in-woq",
		"group %d not found in WOQ", gid))
}

// ---------- Permission requests ----------

func (t *TUS) request(e *woqEntry) {
	line := e.line
	e.requested = true
	var gated uint64
	if e.gated {
		gated = 1
	}
	t.tr.Emit(trace.PermRequest, int32(t.core.ID), t.q.Now(), line, 0, gated)
	ok := t.priv.RequestWritable(line, false, false, func(granted bool) {
		if granted {
			return // HandleFill already recorded it
		}
		// NACKed: a remote authorization unit delayed us (lex gate) or
		// the request overflowed a queue. Re-request with a backoff;
		// mark it gated so a contended line follows the Sec. III-C
		// re-request rule instead of hammering the holder.
		if cur := t.byLine.Get(line); cur != nil {
			cur.requested = false
			cur.gated = true
			cur.retryAt = t.q.Now() + t.cfg.NetLatency
		}
	})
	if !ok {
		// Could not even start (MSHRs full): plain retry, not a lex gate.
		e.requested = false
		e.retryAt = t.q.Now() + 1
	}
}

// reRequest re-issues permission requests. Ungated entries (initial
// request failed to start, e.g. MSHR pressure) retry freely across the
// whole WOQ. Gated entries — lines lost or denied under the lex order —
// ask again only when they are the lex-least permission-lacking line of
// the atomic group at the WOQ head (Sec. III-C), which guarantees the
// system-wide acquisition order that makes the protocol deadlock-free.
func (t *TUS) reRequest() {
	if len(t.woq) == 0 {
		return
	}
	now := t.q.Now()
	budget := 4 // request-port bandwidth per cycle
	for _, e := range t.woq {
		if budget == 0 {
			return
		}
		if e.hasPerm || e.requested || e.gated || now < e.retryAt {
			continue
		}
		t.request(e)
		budget--
	}
	// Gated: only the lex-least missing line of the head group.
	head := t.woq[0].group
	var best *woqEntry
	for _, e := range t.woq {
		if e.group != head {
			break
		}
		if e.hasPerm || e.requested {
			continue
		}
		if best == nil || t.lex(e.line) < t.lex(best.line) {
			best = e
		}
	}
	if best != nil && best.gated && now >= best.retryAt {
		t.request(best)
	}
}

// ---------- Visibility ----------

// advanceVisibility publishes ready atomic groups from the WOQ head,
// in order, atomically per group (Fig. 7 (4)).
func (t *TUS) advanceVisibility() {
	for len(t.woq) > 0 {
		gid := t.woq[0].group
		n := 0
		ready := true
		for _, e := range t.woq {
			if e.group != gid {
				break
			}
			n++
			if !e.ready {
				ready = false
			}
		}
		if !ready {
			return
		}
		now := t.q.Now()
		for i := 0; i < n; i++ {
			e := t.woq[i]
			t.priv.MakeVisible(e.line)
			t.byLine.Delete(e.line)
			t.cStoresVisible.Inc()
			var res uint64
			if now >= e.born {
				res = now - e.born
			}
			t.hUnauthRes.Observe(res)
			t.tr.Emit(trace.WOQRelease, int32(t.core.ID), now, e.line, 0, res)
			t.woq[i] = nil // drop the slice's reference before recycling
			t.woqPool.Put(e)
		}
		t.woq = t.woq[n:]
		t.cVisibleGroups.Inc()
	}
}

// ---------- memsys.UnauthorizedHandler (authorization unit) ----------

// HandleProbe implements the lex-order deadlock-avoidance decision of
// Sec. III-C: delay the external request when this core holds
// permissions for every lex-lesser line among the stores up to (and
// including) the probed line's atomic group; otherwise relinquish the
// probed line and every held line above the lex-least missing one,
// restoring the invariant that held permissions form a lex prefix.
func (t *TUS) HandleProbe(line uint64) memsys.ProbeAction {
	t.cWOQSearch.Inc()
	e := t.byLine.Get(line)
	if e == nil {
		// Not tracked (should not happen): delay is always safe for
		// the prober, which will retry.
		return memsys.ActionDelay
	}
	// Disable new cycles involving this atomic group so the lex order
	// cannot change under the resolution.
	end := 0
	for i, o := range t.woq {
		if o.group == e.group {
			o.canCycle = false
			end = i
		}
	}

	probeLex := t.lex(line)
	violation := false
	for i := 0; i <= end; i++ {
		o := t.woq[i]
		if !o.hasPerm && t.lex(o.line) < probeLex {
			violation = true
			break
		}
	}
	if !violation {
		t.cLexDelays.Inc()
		return memsys.ActionDelay
	}
	// Relinquish the probed line (the memory system serves the stale
	// authorized copy from the private L2 and transfers ownership
	// atomically with the probe reply). Other lex-violating lines are
	// effectively in the paper's "retry" state: each one relinquishes
	// the moment its own invalidation arrives, so ownership always
	// changes hands synchronously and the directory never diverges.
	t.cLexRelinq.Inc()
	return memsys.ActionRelinquish
}

// HandleFill implements memsys.UnauthorizedHandler: write permission
// and data arrived and were combined under the mask.
func (t *TUS) HandleFill(line uint64) {
	t.cWOQSearch.Inc()
	e := t.byLine.Get(line)
	if e == nil {
		return
	}
	e.hasPerm = true
	e.ready = true
	e.requested = false
	e.gated = false
	t.tr.Emit(trace.PermGrant, int32(t.core.ID), t.q.Now(), line, 0, 0)
	t.advanceVisibility()
}

// HandleRelinquish implements memsys.UnauthorizedHandler.
func (t *TUS) HandleRelinquish(line uint64) {
	e := t.byLine.Get(line)
	if e == nil {
		return
	}
	e.hasPerm = false
	e.ready = false
	e.requested = false
	e.gated = true
	e.retryAt = t.q.Now() + t.cfg.NetLatency
	t.tr.Emit(trace.PermRelinquish, int32(t.core.ID), t.q.Now(), line, 0, 0)
}

// ---------- Load path / fences ----------

// Forward implements cpu.DrainMechanism: loads search the WCBs
// (Fig. 1 (3)); unauthorized L1D lines alias inside memsys.
func (t *TUS) Forward(addr uint64, size uint8) (cpu.ForwardResult, [8]byte) {
	hit, conflict, out := t.wcbs.Forward(addr, size)
	switch {
	case hit:
		return cpu.FwdHit, out
	case conflict:
		if t.pending == nil {
			t.startFlushOldest()
		}
		return cpu.FwdConflict, out
	}
	return cpu.FwdMiss, out
}

// Drained implements cpu.DrainMechanism.
func (t *TUS) Drained() bool {
	return t.wcbs.Empty() && len(t.woq) == 0 && t.pending == nil
}

// FlushDone implements cpu.DrainMechanism: a serializing event waits
// for the WCBs *and* the WOQ to empty (Sec. III-A).
func (t *TUS) FlushDone() bool {
	if t.Drained() {
		return true
	}
	if t.pending == nil && !t.wcbs.Empty() {
		t.startFlushOldest()
	}
	return false
}

// FinalizeStats exports WCB search counts at run end.
func (t *TUS) FinalizeStats() {
	c := t.cWCBSearch
	c.Add(t.wcbs.Searches - c.Value())
}

// WOQLen reports the current WOQ occupancy (tests, harness).
func (t *TUS) WOQLen() int { return len(t.woq) }

// WOQInfo is one WOQ entry's state exported for auditing and crash
// snapshots.
type WOQInfo struct {
	Line      uint64 `json:"line"`
	Group     int    `json:"group"`
	Lex       uint64 `json:"lex"`
	HasPerm   bool   `json:"has_perm"`
	Ready     bool   `json:"ready"`
	Requested bool   `json:"requested"`
	Gated     bool   `json:"gated"`
	CanCycle  bool   `json:"can_cycle"`
	Born      uint64 `json:"born"`
}

// AuditWOQ snapshots the WOQ in order (head first).
func (t *TUS) AuditWOQ() []WOQInfo {
	out := make([]WOQInfo, len(t.woq))
	for i, e := range t.woq {
		out[i] = WOQInfo{
			Line: e.line, Group: e.group, Lex: t.lex(e.line),
			HasPerm: e.hasPerm, Ready: e.ready, Requested: e.requested,
			Gated: e.gated, CanCycle: e.canCycle, Born: e.born,
		}
	}
	return out
}

// DumpWOQ renders the WOQ for debugging.
func (t *TUS) DumpWOQ() string {
	s := fmt.Sprintf("woq(len=%d pending=%d wcb=%d):", len(t.woq), len(t.pending), t.wcbs.Len())
	for i, e := range t.woq {
		if i > 24 {
			s += " ..."
			break
		}
		s += fmt.Sprintf(" [%d g%d line=%#x lex=%d perm=%v rdy=%v req=%v cyc=%v]",
			i, e.group, e.line, t.lex(e.line), e.hasPerm, e.ready, e.requested, e.canCycle)
	}
	return s
}
