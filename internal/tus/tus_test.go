package tus

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/cpu"
	"tusim/internal/event"
	"tusim/internal/isa"
	"tusim/internal/memsys"
	"tusim/internal/stats"
)

// rig wires N TUS cores through a directory for protocol-level tests.
type rig struct {
	cfg   *config.Config
	q     *event.Queue
	mem   *memsys.Memory
	dir   *memsys.Directory
	cores []*cpu.Core
	tus   []*TUS
	sts   []*stats.Set
}

func newRig(t *testing.T, cores int, traces [][]isa.MicroOp, mut func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default().WithMechanism(config.TUS).WithCores(cores)
	cfg.StreamPrefetcher = false
	if mut != nil {
		mut(cfg)
	}
	q := event.NewQueue()
	mem := memsys.NewMemory()
	sysSt := stats.NewSet("sys")
	dram := memsys.NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := memsys.NewDirectory(cfg, q, mem, dram, sysSt)
	r := &rig{cfg: cfg, q: q, mem: mem, dir: dir}
	var privs []*memsys.Private
	for i := 0; i < cores; i++ {
		st := stats.NewSet("c")
		priv := memsys.NewPrivate(i, cfg, q, dir, st)
		core := cpu.NewCore(i, cfg, q, priv, isa.NewSliceStream(traces[i]), st)
		m := New(core, cfg, q, st)
		core.SetMechanism(m)
		privs = append(privs, priv)
		r.cores = append(r.cores, core)
		r.tus = append(r.tus, m)
		r.sts = append(r.sts, st)
	}
	dir.Attach(privs)
	return r
}

func (r *rig) run(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		done := true
		for _, c := range r.cores {
			if !c.Done() {
				done = false
			}
		}
		if done {
			return
		}
		r.q.Advance()
		for _, c := range r.cores {
			c.Tick()
		}
	}
	t.Fatalf("rig did not finish in %d cycles", maxCycles)
}

func stores(addrs ...uint64) []isa.MicroOp {
	var ops []isa.MicroOp
	for _, a := range addrs {
		ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: a, Size: 8})
	}
	return ops
}

func TestTUSDrainsAndPublishes(t *testing.T) {
	r := newRig(t, 1, [][]isa.MicroOp{stores(0x1000, 0x2000, 0x3000)}, nil)
	r.run(t, 1_000_000)
	st := r.sts[0]
	if st.Get("tus_lines_made_visible") != 3 {
		t.Fatalf("lines visible = %d, want 3", st.Get("tus_lines_made_visible"))
	}
	if r.tus[0].WOQLen() != 0 {
		t.Fatalf("WOQ not empty at end: %d", r.tus[0].WOQLen())
	}
	if !r.tus[0].Drained() || !r.tus[0].FlushDone() {
		t.Fatal("Drained/FlushDone false after completion")
	}
}

func TestTUSCoalescesSameLine(t *testing.T) {
	// Four stores to one line become one WOQ entry / one visible line.
	r := newRig(t, 1, [][]isa.MicroOp{stores(0x1000, 0x1008, 0x1010, 0x1018)}, nil)
	r.run(t, 1_000_000)
	st := r.sts[0]
	if st.Get("tus_lines_made_visible") != 1 {
		t.Fatalf("visible lines = %d, want 1 (coalesced)", st.Get("tus_lines_made_visible"))
	}
	if st.Get("l1d_writes") >= 4 {
		t.Fatalf("l1d_writes = %d; coalescing should reduce writes", st.Get("l1d_writes"))
	}
}

func TestTUSVisibilityRespectsProgramOrder(t *testing.T) {
	// Distinct lines: visibility events must follow program order.
	addrs := []uint64{0x5000, 0x1000, 0x9000, 0x3000, 0x7000}
	r := newRig(t, 1, [][]isa.MicroOp{stores(addrs...)}, nil)
	var order []uint64
	r.cores[0].Priv().OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		order = append(order, line)
	}
	r.run(t, 1_000_000)
	if len(order) != len(addrs) {
		t.Fatalf("published %d lines, want %d", len(order), len(addrs))
	}
	for i, a := range addrs {
		if order[i] != a&^63 {
			t.Fatalf("publication order %v, want program order %v", order, addrs)
		}
	}
}

func TestTUSStoreCycleFormsAtomicGroup(t *testing.T) {
	// A, B, A with only 2 WCBs: the third store cycles back to line A
	// while B occupies the other buffer -> WCB-level atomic group ->
	// both lines publish in the same cycle.
	r := newRig(t, 1, [][]isa.MicroOp{stores(0x1000, 0x2000, 0x1008, 0x2008, 0x1010, 0x3000)}, nil)
	type pub struct {
		line  uint64
		cycle uint64
	}
	var pubs []pub
	r.cores[0].Priv().OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		pubs = append(pubs, pub{line, r.q.Now()})
	}
	r.run(t, 1_000_000)
	cycleOf := map[uint64]uint64{}
	for _, p := range pubs {
		cycleOf[p.line] = p.cycle
	}
	if cycleOf[0x1000] != cycleOf[0x2000] {
		t.Fatalf("cycle-merged lines published at %d and %d; must be atomic",
			cycleOf[0x1000], cycleOf[0x2000])
	}
}

func TestTUSWOQCapacityRespected(t *testing.T) {
	// More distinct cold lines in flight than WOQ entries: peak must
	// never exceed the configured size and the run must still finish.
	var addrs []uint64
	for i := 0; i < 200; i++ {
		addrs = append(addrs, 0x100000+uint64(i)*64)
	}
	r := newRig(t, 1, [][]isa.MicroOp{stores(addrs...)}, func(c *config.Config) { c.WOQEntries = 8 })
	r.run(t, 2_000_000)
	if peak := r.sts[0].Get("woq_peak_occupancy"); peak > 8 {
		t.Fatalf("WOQ peak %d exceeds capacity 8", peak)
	}
	if r.sts[0].Get("tus_lines_made_visible") != 200 {
		t.Fatalf("visible = %d", r.sts[0].Get("tus_lines_made_visible"))
	}
}

func TestTUSMaxAtomicGroupRespected(t *testing.T) {
	// Interleave stores across 3 lines repeatedly (constant cycling);
	// group size must stay within MaxAtomicGroup and the run finishes.
	var ops []isa.MicroOp
	for i := 0; i < 60; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: uint64(i%3)*4096 + uint64(i/3%8)*8, Size: 8})
	}
	r := newRig(t, 1, [][]isa.MicroOp{ops}, func(c *config.Config) { c.MaxAtomicGroup = 4 })
	r.run(t, 2_000_000)
	if r.sts[0].Get("tus_lines_made_visible") == 0 {
		t.Fatal("nothing published")
	}
}

func TestTUSFenceFlushesWOQ(t *testing.T) {
	ops := append(stores(0x1000, 0x2000), isa.MicroOp{Kind: isa.Fence})
	ops = append(ops, stores(0x3000)...)
	r := newRig(t, 1, [][]isa.MicroOp{ops}, nil)
	var events []string
	r.cores[0].Priv().OnStoreVisible = func(line uint64, mask memsys.Mask, data *memsys.LineData) {
		events = append(events, "pub")
	}
	r.run(t, 1_000_000)
	if len(events) != 3 {
		t.Fatalf("published %d lines, want 3", len(events))
	}
	if r.sts[0].Get("fence_stall_cycles") == 0 {
		t.Fatal("fence did not wait for the WOQ flush")
	}
}

func TestTUSContendedLineResolvesByLex(t *testing.T) {
	// Two cores hammer the same two shared lines; the run must finish
	// (no deadlock/livelock) and exercise the authorization unit.
	// Each iteration writes a cold private line and then a shared line;
	// the shared line's group waits behind the slow private miss, so it
	// sits ready-but-not-visible long enough for external probes to
	// reach the authorization unit.
	mk := func(c int) []isa.MicroOp {
		var ops []isa.MicroOp
		for i := 0; i < 300; i++ {
			priv := uint64(1)<<32 + uint64(c)<<28 + uint64(i)*64
			ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: priv, Size: 8})
			ops = append(ops, isa.MicroOp{Kind: isa.Store, Addr: uint64(i%2)*4096 + uint64(c)*8, Size: 8})
			ops = append(ops, isa.MicroOp{Kind: isa.IntAdd})
		}
		return ops
	}
	r := newRig(t, 2, [][]isa.MicroOp{mk(0), mk(1)}, nil)
	r.run(t, 3_000_000)
	delays := r.sts[0].Get("tus_lex_delays") + r.sts[1].Get("tus_lex_delays")
	relinq := r.sts[0].Get("tus_lex_relinquishes") + r.sts[1].Get("tus_lex_relinquishes")
	if delays+relinq == 0 {
		t.Fatal("contention never reached the authorization unit")
	}
}

func TestTUSAblationNoCoalesce(t *testing.T) {
	trace := stores(0x1000, 0x1008, 0x1010, 0x1018, 0x2000, 0x2008)
	r := newRig(t, 1, [][]isa.MicroOp{trace}, func(c *config.Config) { c.TUSCoalesce = false })
	r.run(t, 1_000_000)
	// Without coalescing every store writes L1D individually.
	if w := r.sts[0].Get("l1d_writes"); w < 6 {
		t.Fatalf("l1d_writes = %d, want >= 6 without coalescing", w)
	}
	if r.sts[0].Get("tus_lines_made_visible") == 0 {
		t.Fatal("nothing published in ablation mode")
	}
}

func TestTUSLoadAliasedUntilReady(t *testing.T) {
	// A load to a line whose store already left the SB unauthorized
	// must still return the store's value.
	ops := []isa.MicroOp{
		{Kind: isa.Store, Addr: 0x1000, Size: 8},
	}
	// Pad so the store drains before the load issues.
	for i := 0; i < 40; i++ {
		ops = append(ops, isa.MicroOp{Kind: isa.IntAdd, Dep1: 1})
	}
	ops = append(ops, isa.MicroOp{Kind: isa.Load, Addr: 0x1000, Size: 8, Dep1: 1})
	r := newRig(t, 1, [][]isa.MicroOp{ops}, nil)
	var got [8]byte
	r.cores[0].OnLoadValue = func(core int, seq, addr uint64, size uint8, v [8]byte) { got = v }
	r.run(t, 1_000_000)
	want := cpu.StoreValue(0, 0)
	if got != want {
		t.Fatalf("load got %v, want the store's value %v", got, want)
	}
}
