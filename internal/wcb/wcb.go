// Package wcb models the Write Combining Buffers that TUS and CSB
// re-purpose to coalesce coherent stores across non-consecutive cache
// lines (Sec. III-B). Each buffer holds one line's worth of coalesced
// bytes plus a coalesced-group id (C_ID); buffers sharing a C_ID form
// an atomic group that must be written to the L1D together. It also
// provides the lexicographical sub-address order used for deadlock
// avoidance.
package wcb

import "tusim/internal/memsys"

// Lex returns the global lexicographical order key of a cache line:
// the low bits of the line address, matching the directory index
// (Sec. III-C chooses 16 bits).
func Lex(line uint64, bits int) uint64 {
	return (line >> 6) & (uint64(1)<<bits - 1)
}

// Buffer is one write-combining buffer.
type Buffer struct {
	Valid bool
	Line  uint64
	Data  memsys.LineData
	Mask  memsys.Mask
	CID   int
	// Order is the insertion sequence of the buffer's oldest store;
	// groups flush oldest-first.
	Order uint64
}

// InsertResult classifies an insertion attempt.
type InsertResult uint8

// Insertion outcomes.
const (
	// Inserted: the store was coalesced or placed in a free buffer.
	Inserted InsertResult = iota
	// NeedFlush: no buffer is free; the oldest group must be flushed.
	NeedFlush
	// LexConflict: the store's line shares a lex key with a different
	// line in the group it would join; coalescing is disabled for it
	// until the conflicting store is made visible (Sec. III-C).
	LexConflict
)

// Set is the array of WCBs of one core.
type Set struct {
	bufs    []Buffer
	lexBits int
	last    int // index of the buffer written by the previous store
	nextCID int
	order   uint64
	// Searches counts associative lookups (energy model).
	Searches uint64
	// CycleMerges counts atomic-group formations from WCB-level cycles.
	CycleMerges uint64
	// group is the scratch backing for OldestGroup (one outstanding
	// group per set, so a single buffer suffices).
	group []*Buffer
}

// NewSet builds n write-combining buffers.
func NewSet(n, lexBits int) *Set {
	return &Set{bufs: make([]Buffer, n), lexBits: lexBits, last: -1}
}

// Len returns the number of valid buffers.
func (s *Set) Len() int {
	n := 0
	for i := range s.bufs {
		if s.bufs[i].Valid {
			n++
		}
	}
	return n
}

// Empty reports whether no buffer holds data.
func (s *Set) Empty() bool { return s.Len() == 0 }

// Insert attempts to place a committed store. On a hit to a buffer
// other than the last one written, a cycle exists and every valid
// buffer is merged into one atomic group (with two buffers this is
// exactly the paper's rule).
func (s *Set) Insert(addr uint64, data []byte) InsertResult {
	line := addr &^ 63
	s.Searches++
	// Hit?
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.Valid || b.Line != line {
			continue
		}
		if i != s.last && s.last >= 0 && s.bufs[s.last].Valid {
			// Cycle: all current buffers become one atomic group —
			// unless that would put two lex-equal lines in one group.
			if s.lexConflictAll() {
				return LexConflict
			}
			cid := b.CID
			for j := range s.bufs {
				if s.bufs[j].Valid && s.bufs[j].CID != cid {
					s.bufs[j].CID = cid
					s.CycleMerges++
				}
			}
		}
		writeBytes(b, addr, data)
		s.last = i
		return Inserted
	}
	// Free buffer?
	for i := range s.bufs {
		b := &s.bufs[i]
		if b.Valid {
			continue
		}
		s.order++
		s.nextCID++
		*b = Buffer{Valid: true, Line: line, CID: s.nextCID, Order: s.order}
		writeBytes(b, addr, data)
		s.last = i
		return Inserted
	}
	return NeedFlush
}

// lexConflictAll reports whether any two valid buffers with distinct
// lines share a lex key (merging them all would break the global order).
// Pairwise scan: the buffer count is a small constant (2 by default),
// so this beats building a map every drain cycle.
func (s *Set) lexConflictAll() bool {
	for i := range s.bufs {
		bi := &s.bufs[i]
		if !bi.Valid {
			continue
		}
		ki := Lex(bi.Line, s.lexBits)
		for j := i + 1; j < len(s.bufs); j++ {
			bj := &s.bufs[j]
			if bj.Valid && bj.Line != bi.Line && Lex(bj.Line, s.lexBits) == ki {
				return true
			}
		}
	}
	return false
}

func writeBytes(b *Buffer, addr uint64, data []byte) {
	off := addr & 63
	copy(b.Data[off:], data)
	b.Mask |= memsys.MaskFor(addr, uint8(len(data)))
}

// OldestGroup returns the buffers of the atomic group containing the
// oldest store, or nil when empty. The returned buffers are live
// pointers into the set; call Release after flushing them. The slice
// itself is scratch owned by the set and is overwritten by the next
// OldestGroup call — callers flush one group at a time.
func (s *Set) OldestGroup() []*Buffer {
	oldest := -1
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.Valid {
			continue
		}
		if oldest < 0 || b.Order < s.bufs[oldest].Order {
			oldest = i
		}
	}
	if oldest < 0 {
		return nil
	}
	cid := s.bufs[oldest].CID
	group := s.group[:0]
	for i := range s.bufs {
		if s.bufs[i].Valid && s.bufs[i].CID == cid {
			group = append(group, &s.bufs[i])
		}
	}
	s.group = group
	return group
}

// Release invalidates the given buffers after their group was written.
func (s *Set) Release(group []*Buffer) {
	for _, b := range group {
		if s.last >= 0 && &s.bufs[s.last] == b {
			s.last = -1
		}
		b.Valid = false
		b.Mask = 0
	}
}

// Forward searches the buffers for load data.
func (s *Set) Forward(addr uint64, size uint8) (hit bool, conflict bool, out [8]byte) {
	line := addr &^ 63
	want := memsys.MaskFor(addr, size)
	s.Searches++
	for i := range s.bufs {
		b := &s.bufs[i]
		if !b.Valid || b.Line != line {
			continue
		}
		if !b.Mask.Overlaps(want) {
			return false, false, out
		}
		if !b.Mask.Covers(want) {
			return false, true, out
		}
		off := addr & 63
		copy(out[:size], b.Data[off:])
		return true, false, out
	}
	return false, false, out
}

// Lines returns the line addresses of a group.
func Lines(group []*Buffer) []uint64 {
	out := make([]uint64, len(group))
	for i, b := range group {
		out[i] = b.Line
	}
	return out
}
