package wcb

import (
	"testing"
	"testing/quick"
)

func TestLex(t *testing.T) {
	// Lex is the low bits of the line number (address >> 6).
	if Lex(0x12340, 16) != 0x48D {
		t.Fatalf("Lex = %#x", Lex(0x12340, 16))
	}
	// Lines 2^16 line-numbers apart share a lex key.
	a := uint64(0x1000)
	b := a + (1 << 16 * 1 << 6) // same low 16 bits of line number
	_ = b
	if Lex(a, 16) != Lex(a+(uint64(1)<<22), 16) {
		t.Fatal("lines 2^16 lines apart must collide in lex space")
	}
	if Lex(a, 16) == Lex(a+64, 16) {
		t.Fatal("adjacent lines must not collide")
	}
}

func TestInsertCoalescesSameLine(t *testing.T) {
	s := NewSet(2, 16)
	if r := s.Insert(0x1000, []byte{1, 2}); r != Inserted {
		t.Fatalf("first insert = %v", r)
	}
	if r := s.Insert(0x1008, []byte{3}); r != Inserted {
		t.Fatalf("coalescing insert = %v", r)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (coalesced)", s.Len())
	}
	g := s.OldestGroup()
	if len(g) != 1 || g[0].Mask != 0x103 {
		t.Fatalf("group = %+v", g)
	}
	if g[0].Data[0] != 1 || g[0].Data[1] != 2 || g[0].Data[8] != 3 {
		t.Fatal("coalesced data wrong")
	}
}

func TestInsertSecondLineNewGroup(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1})
	s.Insert(0x2000, []byte{2})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	g := s.OldestGroup()
	if len(g) != 1 || g[0].Line != 0x1000 {
		t.Fatalf("oldest group = %+v (want only line 0x1000)", g)
	}
}

func TestNeedFlushWhenFull(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1})
	s.Insert(0x2000, []byte{2})
	if r := s.Insert(0x3000, []byte{3}); r != NeedFlush {
		t.Fatalf("insert into full set = %v, want NeedFlush", r)
	}
}

func TestCycleFormsAtomicGroup(t *testing.T) {
	// A, B, A: writing A after B hit a non-last buffer -> cycle -> one
	// atomic group (Sec. III-B, Fig. 4).
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1}) // A
	s.Insert(0x2000, []byte{2}) // B (last written)
	if r := s.Insert(0x1008, []byte{3}); r != Inserted {
		t.Fatalf("cycle insert = %v", r)
	}
	g := s.OldestGroup()
	if len(g) != 2 {
		t.Fatalf("atomic group size = %d, want 2", len(g))
	}
	if s.CycleMerges == 0 {
		t.Fatal("cycle merge not counted")
	}
}

func TestNoCycleOnRepeatedLastBuffer(t *testing.T) {
	// A, B, B: hitting the last-written buffer is plain coalescing.
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1})
	s.Insert(0x2000, []byte{2})
	s.Insert(0x2008, []byte{3})
	if len(s.OldestGroup()) != 1 {
		t.Fatal("repeated last-buffer write must not merge groups")
	}
}

func TestLexConflictBlocksCycle(t *testing.T) {
	// Two lines 2^22 bytes apart share a lex key (16 bits of line
	// number); a cycle merging them must be refused.
	s := NewSet(2, 16)
	a := uint64(0x40000000)
	b := a + (uint64(1) << 22)
	if Lex(a, 16) != Lex(b, 16) {
		t.Fatal("test setup: lines must collide in lex space")
	}
	s.Insert(a, []byte{1})
	s.Insert(b, []byte{2})
	if r := s.Insert(a+8, []byte{3}); r != LexConflict {
		t.Fatalf("cycle with lex conflict = %v, want LexConflict", r)
	}
}

func TestRelease(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1})
	s.Insert(0x2000, []byte{2})
	g := s.OldestGroup()
	s.Release(g)
	if s.Len() != 1 {
		t.Fatalf("Len after release = %d", s.Len())
	}
	if r := s.Insert(0x3000, []byte{3}); r != Inserted {
		t.Fatalf("insert after release = %v", r)
	}
}

func TestForward(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{9, 8, 7, 6, 5, 4, 3, 2})
	hit, conflict, out := s.Forward(0x1002, 2)
	if !hit || conflict {
		t.Fatalf("hit=%v conflict=%v", hit, conflict)
	}
	if out[0] != 7 || out[1] != 6 {
		t.Fatalf("forwarded = %v", out[:2])
	}
	// Partial coverage -> conflict.
	_, conflict, _ = s.Forward(0x1006, 4)
	if !conflict {
		t.Fatal("partially covered load must conflict")
	}
	// Other line -> miss.
	hit, conflict, _ = s.Forward(0x9000, 8)
	if hit || conflict {
		t.Fatal("unrelated load must miss")
	}
}

func TestGroupFlushOrderIsOldestFirst(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x2000, []byte{1}) // older
	s.Insert(0x1000, []byte{2}) // younger (lower address - irrelevant)
	g := s.OldestGroup()
	if len(g) != 1 || g[0].Line != 0x2000 {
		t.Fatalf("oldest group = line %#x, want 0x2000", g[0].Line)
	}
}

func TestLinesHelper(t *testing.T) {
	s := NewSet(2, 16)
	s.Insert(0x1000, []byte{1})
	s.Insert(0x2000, []byte{2})
	s.Insert(0x1008, []byte{3}) // merge
	g := s.OldestGroup()
	ls := Lines(g)
	if len(ls) != 2 {
		t.Fatalf("Lines = %v", ls)
	}
}

// Property: after any sequence of inserts, all valid buffers hold
// distinct lines, and every group's lines are lex-distinct.
func TestInvariantsUnderRandomInserts(t *testing.T) {
	f := func(addrs []uint16) bool {
		s := NewSet(2, 16)
		for _, a := range addrs {
			addr := uint64(a) * 8
			r := s.Insert(addr, []byte{byte(a)})
			if r == NeedFlush || r == LexConflict {
				g := s.OldestGroup()
				if g == nil {
					return false
				}
				s.Release(g)
				s.Insert(addr, []byte{byte(a)})
			}
			// Check distinct lines.
			seen := map[uint64]bool{}
			for _, b := range s.bufs {
				if !b.Valid {
					continue
				}
				if seen[b.Line] {
					return false
				}
				seen[b.Line] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWCBCoalesce is the TUS drain's per-store WCB work: insert
// into a warm buffer (same line, so every store coalesces) plus the
// forwarding search loads pay.
func BenchmarkWCBCoalesce(b *testing.B) {
	s := NewSet(2, 16)
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Insert(0x4000+uint64(i%8)*8, buf) != Inserted {
			b.Fatal("coalescing store did not insert")
		}
	}
}

// BenchmarkWCBGroupFlush forms a two-line group and releases it — the
// per-group admission rhythm of a TUS drain under line churn.
func BenchmarkWCBGroupFlush(b *testing.B) {
	s := NewSet(2, 16)
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(0x4000, buf)
		s.Insert(0x8040, buf)
		g := s.OldestGroup()
		if g == nil {
			b.Fatal("no group to flush")
		}
		s.Release(g)
	}
}

// TestWCBCoalesceZeroAlloc pins the WCB insert/forward/flush cycle at
// zero steady-state allocations.
func TestWCBCoalesceZeroAlloc(t *testing.T) {
	s := NewSet(2, 16)
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	step := func() {
		s.Insert(0x4000, buf)
		s.Insert(0x8040, buf)
		if hit, _, _ := s.Forward(0x4000, 8); !hit {
			t.Fatal("forward missed a coalesced store")
		}
		g := s.OldestGroup()
		if g == nil {
			t.Fatal("no group")
		}
		s.Release(g)
	}
	step()
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("WCB insert/forward/flush allocates %.1f allocs/op, want 0", n)
	}
}
