package event

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.At(5, func() { got = append(got, 5) })
	q.At(1, func() { got = append(got, 1) })
	q.At(3, func() { got = append(got, 3) })
	q.Drain(100)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
}

func TestQueueFIFOWithinCycle(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(7, func() { got = append(got, i) })
	}
	q.Drain(7)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestQueueAfter(t *testing.T) {
	q := NewQueue()
	fired := uint64(0)
	q.AdvanceTo(10)
	q.After(5, func() { fired = q.Now() })
	q.Drain(100)
	if fired != 15 {
		t.Fatalf("After(5) fired at %d, want 15", fired)
	}
}

func TestQueuePastSchedulingClamps(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(20)
	ran := false
	q.At(3, func() { ran = true })
	q.RunDue()
	if !ran {
		t.Fatal("event scheduled in the past never ran")
	}
	if q.Now() != 20 {
		t.Fatalf("Now = %d, want 20", q.Now())
	}
}

func TestQueueCascade(t *testing.T) {
	// Events scheduling same-cycle events must run before time advances.
	q := NewQueue()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			q.After(0, rec)
		}
	}
	q.At(2, rec)
	q.AdvanceTo(2)
	if depth != 5 {
		t.Fatalf("cascade depth = %d, want 5", depth)
	}
}

func TestQueueAdvanceSkipsIdleTime(t *testing.T) {
	q := NewQueue()
	q.At(1000, func() {})
	q.AdvanceTo(500)
	if q.Now() != 500 {
		t.Fatalf("Now = %d, want 500", q.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("event fired early")
	}
}

func TestQueueRandomizedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewQueue()
	var fired []uint64
	cycles := make([]uint64, 500)
	for i := range cycles {
		c := uint64(rng.Intn(10000))
		cycles[i] = c
		q.At(c, func() { fired = append(fired, c) })
	}
	q.Drain(1 << 20)
	if len(fired) != len(cycles) {
		t.Fatalf("fired %d events, want %d", len(fired), len(cycles))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of cycle order")
	}
}

func TestQueueDrainRespectsMaxCycle(t *testing.T) {
	q := NewQueue()
	ran := false
	q.At(50, func() { ran = true })
	q.Drain(49)
	if ran {
		t.Fatal("Drain ran event past maxCycle")
	}
	q.Drain(50)
	if !ran {
		t.Fatal("Drain skipped due event")
	}
}

func TestQueueAt2InterleavesWithAt(t *testing.T) {
	// Func2 events share the same (cycle, seq) total order as plain
	// events — insertion order within a cycle is preserved across both
	// scheduling forms.
	q := NewQueue()
	var got []uint64
	rec2 := func(a, b uint64) { got = append(got, a*10+b) }
	q.At(3, func() { got = append(got, 100) })
	q.At2(3, rec2, 1, 1)
	q.At(3, func() { got = append(got, 200) })
	q.At2(2, rec2, 9, 9)
	q.Drain(10)
	want := []uint64{99, 100, 11, 200}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueueAt2PastClamps(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(20)
	var a, b uint64
	q.At2(3, func(x, y uint64) { a, b = x, y }, 7, 8)
	q.RunDue()
	if a != 7 || b != 8 {
		t.Fatalf("At2 args = (%d,%d), want (7,8)", a, b)
	}
	if q.Now() != 20 {
		t.Fatalf("Now = %d, want 20", q.Now())
	}
}

func TestQueueRandomizedVsReference(t *testing.T) {
	// Differential check of the hand-rolled heap against a trivially
	// correct reference: stable-sort the same (cycle, seq) stream and
	// require identical firing order, interleaving At and At2.
	rng := rand.New(rand.NewSource(99))
	q := NewQueue()
	type ev struct{ cycle, seq uint64 }
	var want []ev
	var got []ev
	for i := 0; i < 2000; i++ {
		c := uint64(rng.Intn(300))
		seq := uint64(i)
		want = append(want, ev{c, seq})
		if i%2 == 0 {
			q.At(c, func() { got = append(got, ev{c, seq}) })
		} else {
			q.At2(c, func(a, b uint64) { got = append(got, ev{a, b}) }, c, seq)
		}
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].cycle < want[j].cycle })
	q.Drain(1 << 20)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired as %+v, reference order wants %+v", i, got[i], want[i])
		}
	}
}

func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	// Once the heap's backing slice has reached its high-water mark,
	// schedule+fire via At2 must not allocate: this is the contract the
	// cpu/memsys hot paths rely on.
	q := NewQueue()
	sink := uint64(0)
	fn := func(a, b uint64) { sink += a + b }
	for i := 0; i < 64; i++ { // grow the backing array first
		q.After2(uint64(i%8), fn, 1, 2)
	}
	q.Drain(1 << 20)
	if n := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			q.After2(uint64(i%4), fn, uint64(i), 2)
		}
		q.Drain(1 << 30)
	}); n != 0 {
		t.Fatalf("steady-state schedule+drain allocates %v allocs/op, want 0", n)
	}
	_ = sink
}

func BenchmarkQueueAt(b *testing.B) {
	q := NewQueue()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(uint64(i%16), fn)
		if q.Len() > 1024 {
			q.Drain(1 << 62)
		}
	}
}

func BenchmarkQueueAt2(b *testing.B) {
	q := NewQueue()
	fn := func(a, bb uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After2(uint64(i%16), fn, 1, 2)
		if q.Len() > 1024 {
			q.Drain(1 << 62)
		}
	}
}
