package event

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.At(5, func() { got = append(got, 5) })
	q.At(1, func() { got = append(got, 1) })
	q.At(3, func() { got = append(got, 3) })
	q.Drain(100)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
}

func TestQueueFIFOWithinCycle(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(7, func() { got = append(got, i) })
	}
	q.Drain(7)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestQueueAfter(t *testing.T) {
	q := NewQueue()
	fired := uint64(0)
	q.AdvanceTo(10)
	q.After(5, func() { fired = q.Now() })
	q.Drain(100)
	if fired != 15 {
		t.Fatalf("After(5) fired at %d, want 15", fired)
	}
}

func TestQueuePastSchedulingClamps(t *testing.T) {
	q := NewQueue()
	q.AdvanceTo(20)
	ran := false
	q.At(3, func() { ran = true })
	q.RunDue()
	if !ran {
		t.Fatal("event scheduled in the past never ran")
	}
	if q.Now() != 20 {
		t.Fatalf("Now = %d, want 20", q.Now())
	}
}

func TestQueueCascade(t *testing.T) {
	// Events scheduling same-cycle events must run before time advances.
	q := NewQueue()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 5 {
			q.After(0, rec)
		}
	}
	q.At(2, rec)
	q.AdvanceTo(2)
	if depth != 5 {
		t.Fatalf("cascade depth = %d, want 5", depth)
	}
}

func TestQueueAdvanceSkipsIdleTime(t *testing.T) {
	q := NewQueue()
	q.At(1000, func() {})
	q.AdvanceTo(500)
	if q.Now() != 500 {
		t.Fatalf("Now = %d, want 500", q.Now())
	}
	if q.Len() != 1 {
		t.Fatalf("event fired early")
	}
}

func TestQueueRandomizedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewQueue()
	var fired []uint64
	cycles := make([]uint64, 500)
	for i := range cycles {
		c := uint64(rng.Intn(10000))
		cycles[i] = c
		q.At(c, func() { fired = append(fired, c) })
	}
	q.Drain(1 << 20)
	if len(fired) != len(cycles) {
		t.Fatalf("fired %d events, want %d", len(fired), len(cycles))
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Fatal("events fired out of cycle order")
	}
}

func TestQueueDrainRespectsMaxCycle(t *testing.T) {
	q := NewQueue()
	ran := false
	q.At(50, func() { ran = true })
	q.Drain(49)
	if ran {
		t.Fatal("Drain ran event past maxCycle")
	}
	q.Drain(50)
	if !ran {
		t.Fatal("Drain skipped due event")
	}
}
