//go:build tus_ref

package event

// Building with -tags tus_ref runs every Queue constructed via
// NewQueue on the reference binary-heap engine instead of the time
// wheel. `go test -tags tus_ref ./...` therefore replays the entire
// suite — golden figures, chaos, model check — on the reference
// scheduler, which is the mechanical pop-order-equivalence proof for
// the wheel (mirroring lmap's container reference mode).
func init() { DefaultRef = true }
