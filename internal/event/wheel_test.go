package event

import (
	"fmt"
	"math/rand"
	"testing"
)

// The wheel's contract is bit-exact (cycle, seq) pop-order identity
// with the reference heap. These tests drive both engines through the
// same randomized schedules — including far-future events that take
// the overflow ladder, Every periodics, idle-time jumps, and events
// scheduled from inside firing events — and require identical firing
// sequences and identical clocks at every step.

// rec is one observed firing: which label fired and at what cycle.
type rec struct {
	label uint64
	cycle uint64
}

// driveBoth applies the same seeded schedule script to a wheel queue
// and a heap queue and returns both firing logs.
func driveBoth(seed int64, steps int) (wheelLog, heapLog []rec) {
	rng := rand.New(rand.NewSource(seed))
	qs := []*Queue{NewQueueRef(false), NewQueueRef(true)}
	logs := make([][]rec, 2)
	var label uint64
	for step := 0; step < steps; step++ {
		op := rng.Intn(10)
		switch {
		case op < 5: // near event, wheel horizon
			d := uint64(rng.Intn(wheelSlots))
			label++
			for i, q := range qs {
				q, i, l := q, i, label
				if l%2 == 0 {
					q.After2(d, func(a, b uint64) { logs[i] = append(logs[i], rec{a, q.Now()}) }, l, 0)
				} else {
					q.After(d, func() { logs[i] = append(logs[i], rec{l, q.Now()}) })
				}
			}
		case op < 7: // far event, overflow ladder
			d := uint64(wheelSlots + rng.Intn(wheelSlots*4))
			label++
			for i, q := range qs {
				q, i, l := q, i, label
				q.After(d, func() { logs[i] = append(logs[i], rec{l, q.Now()}) })
			}
		case op == 7: // cascading event: schedules two more when it fires
			d := uint64(rng.Intn(64))
			d2 := uint64(rng.Intn(wheelSlots * 2))
			label++
			for i, q := range qs {
				q, i, l := q, i, label
				q.After(d, func() {
					logs[i] = append(logs[i], rec{l, q.Now()})
					q.After(0, func() { logs[i] = append(logs[i], rec{l + 1_000_000, q.Now()}) })
					q.After(d2, func() { logs[i] = append(logs[i], rec{l + 2_000_000, q.Now()}) })
				})
			}
		case op == 8: // advance a random stretch, firing everything due
			adv := uint64(rng.Intn(wheelSlots * 3))
			for _, q := range qs {
				q.AdvanceTo(q.Now() + adv)
			}
		default: // cycle-by-cycle advance, the simulator's hot pattern
			n := rng.Intn(20)
			for i := 0; i < n; i++ {
				for _, q := range qs {
					q.Advance()
				}
			}
		}
		if qs[0].Now() != qs[1].Now() || qs[0].Len() != qs[1].Len() {
			panic(fmt.Sprintf("step %d: wheel now=%d len=%d, heap now=%d len=%d",
				step, qs[0].Now(), qs[0].Len(), qs[1].Now(), qs[1].Len()))
		}
	}
	for _, q := range qs {
		q.Drain(q.Now() + 10*wheelSlots)
	}
	return logs[0], logs[1]
}

// TestWheelVsHeapDifferential pins wheel pop order to the reference
// heap under randomized mixed traffic.
func TestWheelVsHeapDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99, 1234} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w, h := driveBoth(seed, 400)
			if len(w) != len(h) {
				t.Fatalf("wheel fired %d events, heap fired %d", len(w), len(h))
			}
			for i := range w {
				if w[i] != h[i] {
					t.Fatalf("firing %d: wheel %+v, heap %+v", i, w[i], h[i])
				}
			}
			if len(w) == 0 {
				t.Fatal("schedule fired nothing; test is vacuous")
			}
		})
	}
}

// TestWheelOverflowLadderOrder pins the exact boundary case the
// order-preservation argument rests on: a far event (ladder) and a
// later-scheduled near event (wheel) at the SAME cycle must fire in
// scheduling order — ladder first.
func TestWheelOverflowLadderOrder(t *testing.T) {
	q := NewQueueRef(false)
	var got []int
	target := uint64(wheelSlots + 100)
	q.At(target, func() { got = append(got, 1) }) // delta > span: ladder
	q.AdvanceTo(200)                              // now target is within the horizon
	q.At(target, func() { got = append(got, 2) }) // wheel
	q.At(target, func() { got = append(got, 3) }) // wheel, same slot FIFO
	q.Drain(target)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestWheelSlotAliasRoutesToLadder pins the single-cycle-per-slot
// invariant: with an event pending at cycle c, scheduling at
// c+wheelSpan (same slot index) must not corrupt the chain.
func TestWheelSlotAliasRoutesToLadder(t *testing.T) {
	q := NewQueueRef(false)
	var got []uint64
	q.At(5, func() { got = append(got, q.Now()) })
	q.At(5+wheelSlots, func() { got = append(got, q.Now()) })
	q.At(5+2*wheelSlots, func() { got = append(got, q.Now()) })
	q.Drain(1 << 20)
	want := []uint64{5, 5 + wheelSlots, 5 + 2*wheelSlots}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at cycles %v, want %v", got, want)
		}
	}
}

// TestWheelEveryPeriodic drives an Every cadence longer than the wheel
// span (the auditor/watchdog pattern the ladder exists for) alongside
// near traffic on both engines.
func TestWheelEveryPeriodic(t *testing.T) {
	for _, ref := range []bool{false, true} {
		q := NewQueueRef(ref)
		ticks := 0
		q.Every(uint64(wheelSlots*2+13), func() bool {
			ticks++
			return ticks < 5
		})
		fired := 0
		for i := 0; i < 100; i++ {
			q.After(uint64(i%37), func() { fired++ })
		}
		q.Drain(1 << 20)
		if ticks != 5 || fired != 100 {
			t.Fatalf("ref=%v: ticks=%d fired=%d, want 5 and 100", ref, ticks, fired)
		}
		if q.Len() != 0 {
			t.Fatalf("ref=%v: %d events left after drain", ref, q.Len())
		}
	}
}

// TestWheelSteadyStateZeroAlloc extends the event-kernel allocation
// pin to the wheel engine explicitly: once the slab free list has
// reached its high-water mark, schedule+fire via At2 — including far
// events through the ladder — must not allocate.
func TestWheelSteadyStateZeroAlloc(t *testing.T) {
	q := NewQueueRef(false)
	sink := uint64(0)
	fn := func(a, b uint64) { sink += a + b }
	for i := 0; i < 256; i++ { // grow slab + ladder to high-water mark
		q.After2(uint64(i%8), fn, 1, 2)
		q.After2(uint64(wheelSlots+i%8), fn, 1, 2)
	}
	q.Drain(1 << 30)
	if n := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			q.After2(uint64(i%4), fn, uint64(i), 2)
			q.After2(uint64(wheelSlots+i%4), fn, uint64(i), 2)
		}
		q.Drain(1 << 40)
	}); n != 0 {
		t.Fatalf("steady-state wheel schedule+drain allocates %v allocs/op, want 0", n)
	}
	_ = sink
}

func BenchmarkWheelAt2(b *testing.B) {
	q := NewQueueRef(false)
	fn := func(a, bb uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After2(uint64(i%16), fn, 1, 2)
		if q.Len() > 1024 {
			q.Drain(1 << 62)
		}
	}
}

func BenchmarkHeapAt2(b *testing.B) {
	q := NewQueueRef(true)
	fn := func(a, bb uint64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After2(uint64(i%16), fn, 1, 2)
		if q.Len() > 1024 {
			q.Drain(1 << 62)
		}
	}
}
