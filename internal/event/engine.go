package event

import "fmt"

// SetDefaultEngine selects the engine NewQueue uses, by CLI-friendly
// name: "wheel" (the production time wheel), "heap" (the reference
// binary heap), or "" to keep the build default (the wheel, or the
// heap under -tags tus_ref).
func SetDefaultEngine(name string) error {
	switch name {
	case "":
	case "wheel":
		DefaultRef = false
	case "heap":
		DefaultRef = true
	default:
		return fmt.Errorf("event: unknown scheduler engine %q (want wheel or heap)", name)
	}
	return nil
}

// EngineName reports the engine NewQueue currently selects.
func EngineName() string {
	if DefaultRef {
		return "heap"
	}
	return "wheel"
}
