// Package event provides the deterministic discrete-event kernel that
// drives all timing in the simulator. Every component schedules
// callbacks on a single Queue; the simulation advances by executing
// events in (cycle, insertion-order) order, which makes every run
// bit-for-bit reproducible for a given seed.
//
// The queue is a hand-rolled binary min-heap over a flat []item slice
// rather than container/heap: the stdlib interface boxes every pushed
// and popped element into an `any`, which made Push/Pop the two top
// allocators in the whole-simulator heap profile. The flat heap keeps
// steady-state scheduling allocation-free once the backing slice has
// grown to the high-water mark.
package event

// Func is a callback executed when its event fires.
type Func func()

// Func2 is a callback carrying two uint64 arguments. Scheduling with
// At2/After2 lets hot paths pass small payloads (a sequence number, a
// packed 8-byte value) without closing over them — a closure per event
// is a heap allocation; a Func2 bound once and reused is not.
type Func2 func(a, b uint64)

type item struct {
	cycle uint64
	seq   uint64 // tie-breaker: FIFO among events at the same cycle
	fn    Func
	fn2   Func2
	a, b  uint64
}

// less orders items by (cycle, insertion seq). Both keys are unique per
// item, so the order is total and independent of heap internals.
func (it *item) less(other *item) bool {
	if it.cycle != other.cycle {
		return it.cycle < other.cycle
	}
	return it.seq < other.seq
}

// Queue is a discrete-event scheduler keyed by clock cycle.
// The zero value is ready to use.
type Queue struct {
	now  uint64
	seq  uint64
	heap []item
}

// NewQueue returns an empty event queue at cycle 0.
func NewQueue() *Queue { return &Queue{} }

// Now reports the current cycle.
func (q *Queue) Now() uint64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// push inserts it into the heap, sifting up to restore heap order.
func (q *Queue) push(it item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].less(&q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the minimum item. Callers must check Len.
func (q *Queue) pop() item {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap[n] = item{} // drop closure references for the GC
	q.heap = q.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.heap[r].less(&q.heap[l]) {
			min = r
		}
		if !q.heap[min].less(&q.heap[i]) {
			break
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
	return top
}

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past (or at the current cycle) runs the event before time advances
// again, preserving causality.
func (q *Queue) At(cycle uint64, fn Func) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	q.push(item{cycle: cycle, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay uint64, fn Func) { q.At(q.now+delay, fn) }

// At2 schedules fn(a, b) to run at the given absolute cycle, with the
// same causality clamp as At. The arguments ride in the heap item, so a
// long-lived fn (bound once at construction) schedules with zero
// allocations.
func (q *Queue) At2(cycle uint64, fn Func2, a, b uint64) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	q.push(item{cycle: cycle, seq: q.seq, fn2: fn, a: a, b: b})
}

// After2 schedules fn(a, b) to run delay cycles from now.
func (q *Queue) After2(delay uint64, fn Func2, a, b uint64) {
	q.At2(q.now+delay, fn, a, b)
}

// RunDue executes every event scheduled at or before the current cycle.
// Events may schedule further events for the same cycle; those run too.
func (q *Queue) RunDue() {
	for len(q.heap) > 0 && q.heap[0].cycle <= q.now {
		it := q.pop()
		if it.fn2 != nil {
			it.fn2(it.a, it.b)
		} else {
			it.fn()
		}
	}
}

// Advance moves the clock forward by one cycle and runs all events due
// at the new cycle.
func (q *Queue) Advance() {
	q.now++
	q.RunDue()
}

// Every schedules fn to run every period cycles, starting period
// cycles from now, until fn returns false. The periodic series rides
// the ordinary event stream, so it interleaves deterministically with
// all other events (the invariant auditor uses this cadence).
func (q *Queue) Every(period uint64, fn func() bool) {
	if period == 0 {
		period = 1
	}
	var tick Func
	tick = func() {
		if fn() {
			q.After(period, tick)
		}
	}
	q.After(period, tick)
}

// AdvanceTo moves the clock to the given cycle, running every
// intervening event in order. It is a no-op if cycle <= Now().
func (q *Queue) AdvanceTo(cycle uint64) {
	for q.now < cycle {
		if len(q.heap) == 0 || q.heap[0].cycle > cycle {
			q.now = cycle
			return
		}
		next := q.heap[0].cycle
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
}

// Drain runs events until the queue is empty, advancing time as needed,
// or until maxCycle is reached. It returns the final cycle.
func (q *Queue) Drain(maxCycle uint64) uint64 {
	for len(q.heap) > 0 && q.heap[0].cycle <= maxCycle {
		next := q.heap[0].cycle
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
	return q.now
}
