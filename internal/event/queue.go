// Package event provides the deterministic discrete-event kernel that
// drives all timing in the simulator. Every component schedules
// callbacks on a single Queue; the simulation advances by executing
// events in (cycle, insertion-order) order, which makes every run
// bit-for-bit reproducible for a given seed.
package event

import "container/heap"

// Func is a callback executed when its event fires.
type Func func()

type item struct {
	cycle uint64
	seq   uint64 // tie-breaker: FIFO among events at the same cycle
	fn    Func
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *itemHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is a discrete-event scheduler keyed by clock cycle.
// The zero value is ready to use.
type Queue struct {
	now  uint64
	seq  uint64
	heap itemHeap
}

// NewQueue returns an empty event queue at cycle 0.
func NewQueue() *Queue { return &Queue{} }

// Now reports the current cycle.
func (q *Queue) Now() uint64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past (or at the current cycle) runs the event before time advances
// again, preserving causality.
func (q *Queue) At(cycle uint64, fn Func) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	heap.Push(&q.heap, item{cycle: cycle, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay uint64, fn Func) { q.At(q.now+delay, fn) }

// RunDue executes every event scheduled at or before the current cycle.
// Events may schedule further events for the same cycle; those run too.
func (q *Queue) RunDue() {
	for len(q.heap) > 0 && q.heap[0].cycle <= q.now {
		it := heap.Pop(&q.heap).(item)
		it.fn()
	}
}

// Advance moves the clock forward by one cycle and runs all events due
// at the new cycle.
func (q *Queue) Advance() {
	q.now++
	q.RunDue()
}

// Every schedules fn to run every period cycles, starting period
// cycles from now, until fn returns false. The periodic series rides
// the ordinary event stream, so it interleaves deterministically with
// all other events (the invariant auditor uses this cadence).
func (q *Queue) Every(period uint64, fn func() bool) {
	if period == 0 {
		period = 1
	}
	var tick Func
	tick = func() {
		if fn() {
			q.After(period, tick)
		}
	}
	q.After(period, tick)
}

// AdvanceTo moves the clock to the given cycle, running every
// intervening event in order. It is a no-op if cycle <= Now().
func (q *Queue) AdvanceTo(cycle uint64) {
	for q.now < cycle {
		if len(q.heap) == 0 || q.heap[0].cycle > cycle {
			q.now = cycle
			return
		}
		next := q.heap[0].cycle
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
}

// Drain runs events until the queue is empty, advancing time as needed,
// or until maxCycle is reached. It returns the final cycle.
func (q *Queue) Drain(maxCycle uint64) uint64 {
	for len(q.heap) > 0 && q.heap[0].cycle <= maxCycle {
		next := q.heap[0].cycle
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
	return q.now
}
