// Package event provides the deterministic discrete-event kernel that
// drives all timing in the simulator. Every component schedules
// callbacks on a single Queue; the simulation advances by executing
// events in (cycle, insertion-order) order, which makes every run
// bit-for-bit reproducible for a given seed.
//
// The queue has two interchangeable engines:
//
//   - The default is a hierarchical time wheel: a short-horizon wheel
//     of power-of-two slots holding per-slot FIFO chains whose nodes
//     come from a slab free-list, plus an overflow ladder (a small
//     binary heap) for far-future events such as Every watchdogs and
//     periodic auditors. Scheduling and firing are O(1) with no
//     sift-up/sift-down item moves, which matters twice over: the old
//     heap's swaps were ~20% of whole-simulator CPU, and every moved
//     item carried two function pointers whose GC write barriers were
//     another ~10%.
//
//   - The reference engine is the previous hand-rolled binary min-heap
//     over a flat []item slice. It is kept behind NewHeapQueue /
//     config.RefScheduler / the tus_ref build tag so the wheel's pop
//     order can be differentially pinned against it forever (see
//     wheel_test.go and the memsys scheduler-differential rig).
//
// Both engines pop in exactly (cycle, insertion-seq) order, so golden
// figures, chaos repro bundles, and model-check traces are
// byte-identical regardless of engine. The wheel preserves the order
// by construction: slot chains are FIFO (ascending seq), a slot within
// the horizon holds exactly one distinct cycle, and the insert path
// routes exactly three classes of event to the ladder — far-future
// (delta >= wheelSpan), due-now (delta == 0 after the causality clamp),
// and everything in reference mode. For a given cycle X that keeps the
// fire order seq-ascending: far-ladder events at X were scheduled at
// now <= X-wheelSpan, wheel events at X at X-wheelSpan < now < X, and
// due-now ladder events at now == X; now and seq are both monotone, and
// RunDue fires ladder-then-chain per cycle with the heap interleaving
// the due-now stragglers (which the heap engine also fires late, at the
// first RunDue after they were scheduled) identically.
package event

import "math/bits"

// DefaultRef selects the scheduler engine for callers that do not
// choose explicitly (NewQueue consults it). It is false in normal
// builds; the tus_ref build tag flips it to true so the entire test
// suite replays on the reference heap.
var DefaultRef = false

// Func is a callback executed when its event fires.
type Func func()

// Func2 is a callback carrying two uint64 arguments. Scheduling with
// At2/After2 lets hot paths pass small payloads (a sequence number, a
// packed 8-byte value) without closing over them — a closure per event
// is a heap allocation; a Func2 bound once and reused is not.
type Func2 func(a, b uint64)

type item struct {
	cycle uint64
	seq   uint64 // tie-breaker: FIFO among events at the same cycle
	fn    Func
	fn2   Func2
	a, b  uint64
}

// less orders items by (cycle, insertion seq). Both keys are unique per
// item, so the order is total and independent of heap internals.
func (it *item) less(other *item) bool {
	if it.cycle != other.cycle {
		return it.cycle < other.cycle
	}
	return it.seq < other.seq
}

// Wheel geometry. The span must cover the simulator's ordinary
// latencies (Table I tops out at DRAMLatency=160; chaos request jitter
// adds up to ~200 more), so almost every event schedules O(1) into the
// wheel and only long periodics (auditor Every cadences, watchdog
// timers) take the overflow ladder.
const (
	wheelBits  = 9
	wheelSlots = 1 << wheelBits // 512 cycles of near horizon
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// node is one wheel-resident event in the slab; chains link by slab
// index so list surgery moves int32s, never the closure pointers.
type node struct {
	cycle uint64
	seq   uint64
	a, b  uint64
	fn    Func
	fn2   Func2
	next  int32
}

// chain is one slot's FIFO list (slab indices; -1 = empty).
type chain struct{ head, tail int32 }

// Queue is a discrete-event scheduler keyed by clock cycle. Construct
// with NewQueue (engine per DefaultRef), NewHeapQueue (reference heap)
// or NewQueueRef; the zero value is not usable — slot chains and the
// free list need their -1 sentinels.
type Queue struct {
	now uint64
	seq uint64
	n   int // total pending events, both engines

	// heap is the whole queue in reference mode, and the overflow
	// ladder (events >= wheelSlots cycles out) in wheel mode.
	heap []item

	// refHeap disables the wheel entirely (reference engine).
	refHeap bool

	// Wheel state: per-slot chains, an occupancy bitmap for O(words)
	// next-event scans, and the node slab with its free list.
	slots [wheelSlots]chain
	occ   [wheelWords]uint64
	nodes []node
	free  int32
	nearN int
}

// NewQueue returns an empty event queue at cycle 0 using the engine
// selected by DefaultRef (the wheel in normal builds).
func NewQueue() *Queue { return NewQueueRef(DefaultRef) }

// NewHeapQueue returns an empty queue on the reference binary-heap
// engine.
func NewHeapQueue() *Queue { return NewQueueRef(true) }

// NewQueueRef returns an empty queue; ref selects the reference heap
// engine instead of the time wheel.
func NewQueueRef(ref bool) *Queue {
	q := &Queue{refHeap: ref, free: -1}
	if !ref {
		for i := range q.slots {
			q.slots[i] = chain{head: -1, tail: -1}
		}
	}
	return q
}

// Ref reports whether the queue runs on the reference heap engine.
func (q *Queue) Ref() bool { return q.refHeap }

// Now reports the current cycle.
func (q *Queue) Now() uint64 { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return q.n }

// push inserts it into the heap, sifting up to restore heap order.
func (q *Queue) push(it item) {
	q.heap = append(q.heap, it)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.heap[i].less(&q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the minimum item. Callers must check length.
func (q *Queue) pop() item {
	top := q.heap[0]
	n := len(q.heap) - 1
	q.heap[0] = q.heap[n]
	q.heap[n] = item{} // drop closure references for the GC
	q.heap = q.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.heap[r].less(&q.heap[l]) {
			min = r
		}
		if !q.heap[min].less(&q.heap[i]) {
			break
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
	return top
}

// pushSlot links a near-horizon event onto its slot's FIFO chain,
// recycling a slab node when one is free. Steady state allocates
// nothing.
func (q *Queue) pushSlot(cycle uint64, fn Func, fn2 Func2, a, b uint64) {
	idx := q.free
	if idx >= 0 {
		q.free = q.nodes[idx].next
	} else {
		q.nodes = append(q.nodes, node{})
		idx = int32(len(q.nodes) - 1)
	}
	nd := &q.nodes[idx]
	nd.cycle, nd.seq, nd.a, nd.b = cycle, q.seq, a, b
	nd.fn, nd.fn2 = fn, fn2
	nd.next = -1
	s := cycle & wheelMask
	ch := &q.slots[s]
	if ch.tail < 0 {
		ch.head, ch.tail = idx, idx
		q.occ[s>>6] |= 1 << (s & 63)
	} else {
		q.nodes[ch.tail].next = idx
		ch.tail = idx
	}
	q.nearN++
}

// schedule is the shared insert path for both engines and both
// callback arities.
func (q *Queue) schedule(cycle uint64, fn Func, fn2 Func2, a, b uint64) {
	if cycle < q.now {
		cycle = q.now
	}
	q.seq++
	q.n++
	// Three event classes take the ladder: everything in reference
	// mode, far-future events (beyond the wheel horizon), and events
	// due at the CURRENT cycle. The last matters for order fidelity:
	// the heap engine fires cycle<=now stragglers at the next RunDue,
	// and the wheel's ring arithmetic cannot represent the past — so
	// due-now events ride the ladder, whose (cycle, seq) pops replay
	// the heap's late-firing behavior exactly.
	if q.refHeap || cycle == q.now || cycle-q.now >= wheelSlots {
		q.push(item{cycle: cycle, seq: q.seq, fn: fn, fn2: fn2, a: a, b: b})
		return
	}
	q.pushSlot(cycle, fn, fn2, a, b)
}

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past (or at the current cycle) runs the event before time advances
// again, preserving causality.
func (q *Queue) At(cycle uint64, fn Func) { q.schedule(cycle, fn, nil, 0, 0) }

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay uint64, fn Func) { q.schedule(q.now+delay, fn, nil, 0, 0) }

// At2 schedules fn(a, b) to run at the given absolute cycle, with the
// same causality clamp as At. The arguments ride in the event record,
// so a long-lived fn (bound once at construction) schedules with zero
// allocations.
func (q *Queue) At2(cycle uint64, fn Func2, a, b uint64) { q.schedule(cycle, nil, fn, a, b) }

// After2 schedules fn(a, b) to run delay cycles from now.
func (q *Queue) After2(delay uint64, fn Func2, a, b uint64) {
	q.schedule(q.now+delay, nil, fn, a, b)
}

// nearNext returns the cycle of the earliest wheel-resident event. The
// occupancy bitmap makes the scan O(wheelWords): slots are probed in
// ring order starting at now's slot, and a set bit at ring distance d
// is exactly an event at cycle now+d, because the wheel only ever
// holds cycles in [now, now+wheelSpan-1] and a slot maps to one cycle
// of that window.
func (q *Queue) nearNext() (uint64, bool) {
	if q.nearN == 0 {
		return 0, false
	}
	base := uint(q.now & wheelMask)
	w0 := int(base >> 6)
	off := base & 63
	if bitsHere := q.occ[w0] >> off; bitsHere != 0 {
		return q.now + uint64(bits.TrailingZeros64(bitsHere)), true
	}
	for i := 1; i <= wheelWords; i++ {
		w := (w0 + i) & (wheelWords - 1)
		if q.occ[w] != 0 {
			d := uint64(i)<<6 - uint64(off) + uint64(bits.TrailingZeros64(q.occ[w]))
			return q.now + d, true
		}
	}
	// nearN > 0 guaranteed a set bit; unreachable.
	panic("event: wheel occupancy bitmap out of sync")
}

// nextPending returns the earliest pending cycle across both the wheel
// and the overflow ladder (reference mode: the heap alone).
func (q *Queue) nextPending() (uint64, bool) {
	if q.refHeap {
		if len(q.heap) == 0 {
			return 0, false
		}
		return q.heap[0].cycle, true
	}
	best, ok := q.nearNext()
	if len(q.heap) > 0 && (!ok || q.heap[0].cycle < best) {
		return q.heap[0].cycle, true
	}
	return best, ok
}

// fireCycle runs every event scheduled at cycle c, in insertion order.
// Overflow-ladder events fire first: every ladder event at c carries a
// smaller seq than every wheel event at c (see the package comment's
// order-preservation argument), and the heap pops them seq-ascending.
// The slot chain then fires FIFO; events appended to the chain by the
// running events (After(0) cascades) are picked up in the same sweep.
func (q *Queue) fireCycle(c uint64) {
	for len(q.heap) > 0 && q.heap[0].cycle == c {
		it := q.pop()
		q.n--
		if it.fn2 != nil {
			it.fn2(it.a, it.b)
		} else {
			it.fn()
		}
	}
	s := c & wheelMask
	for {
		ch := &q.slots[s]
		idx := ch.head
		if idx < 0 {
			return
		}
		nd := &q.nodes[idx]
		// The chain is single-cycle by construction: wheel residents
		// always lie in [now, now+wheelSpan-1], where exactly one cycle
		// maps to this slot. But when c is a STALE ladder cycle (c < now,
		// a due-now event fired late), the slot's resident cycle is
		// c+wheelSpan — a future event this fire must not touch.
		if nd.cycle != c {
			return
		}
		ch.head = nd.next
		if ch.head < 0 {
			ch.tail = -1
			q.occ[s>>6] &^= 1 << (s & 63)
		}
		fn, fn2, a, b := nd.fn, nd.fn2, nd.a, nd.b
		nd.fn, nd.fn2 = nil, nil // drop closure references for the GC
		nd.next = q.free
		q.free = idx
		q.nearN--
		q.n--
		if fn2 != nil {
			fn2(a, b)
		} else {
			fn()
		}
	}
}

// RunDue executes every event scheduled at or before the current cycle.
// Events may schedule further events for the same cycle; those run too.
func (q *Queue) RunDue() {
	if q.refHeap {
		for len(q.heap) > 0 && q.heap[0].cycle <= q.now {
			it := q.pop()
			q.n--
			if it.fn2 != nil {
				it.fn2(it.a, it.b)
			} else {
				it.fn()
			}
		}
		return
	}
	for q.n > 0 {
		c, ok := q.nextPending()
		if !ok || c > q.now {
			return
		}
		q.fireCycle(c)
	}
}

// Advance moves the clock forward by one cycle and runs all events due
// at the new cycle.
func (q *Queue) Advance() {
	q.now++
	q.RunDue()
}

// Every schedules fn to run every period cycles, starting period
// cycles from now, until fn returns false. The periodic series rides
// the ordinary event stream, so it interleaves deterministically with
// all other events (the invariant auditor uses this cadence).
func (q *Queue) Every(period uint64, fn func() bool) {
	if period == 0 {
		period = 1
	}
	var tick Func
	tick = func() {
		if fn() {
			q.After(period, tick)
		}
	}
	q.After(period, tick)
}

// AdvanceTo moves the clock to the given cycle, running every
// intervening event in order. It is a no-op if cycle <= Now().
func (q *Queue) AdvanceTo(cycle uint64) {
	for q.now < cycle {
		next, ok := q.nextPending()
		if !ok || next > cycle {
			q.now = cycle
			return
		}
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
}

// Drain runs events until the queue is empty, advancing time as needed,
// or until maxCycle is reached. It returns the final cycle.
func (q *Queue) Drain(maxCycle uint64) uint64 {
	for {
		next, ok := q.nextPending()
		if !ok || next > maxCycle {
			return q.now
		}
		if next > q.now {
			q.now = next
		}
		q.RunDue()
	}
}
