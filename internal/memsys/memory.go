// Package memsys implements the complete memory substrate: the backing
// memory image, a fixed-latency bandwidth-limited DRAM model, per-core
// private L1D+L2 write-back inclusive cache hierarchies with MSHRs, and
// a directory-based MESI coherence protocol at the shared LLC.
//
// TUS integrates through three seams: L1D lines carry NotVisible/Ready
// bits and a written-byte mask; external probes that reach a
// not-visible line are routed to an UnauthorizedHandler which may delay
// (NACK) or relinquish the line (serving the unmodified copy the
// private L2 keeps, exactly as in Sec. III-C of the paper); and
// writable fills for not-visible lines merge memory data under the mask
// before the handler is told the line is ready.
package memsys

import "tusim/internal/event"

// LineBytes is the cache line size used throughout (Table I).
const LineBytes = 64

// LineMask drops the offset bits of an address.
const LineMask = ^uint64(LineBytes - 1)

// LineData is the payload of one cache line.
type LineData [LineBytes]byte

// Mask marks which bytes of a line have been written (bit i = byte i).
type Mask uint64

// MaskFor returns the mask covering size bytes starting at the line
// offset of addr.
func MaskFor(addr uint64, size uint8) Mask {
	off := addr & (LineBytes - 1)
	if size == 0 {
		return 0
	}
	if size >= 64 {
		return ^Mask(0)
	}
	return Mask((uint64(1)<<size - 1) << off)
}

// Covers reports whether m covers every byte of want.
func (m Mask) Covers(want Mask) bool { return m&want == want }

// Overlaps reports whether m and o share any byte.
func (m Mask) Overlaps(o Mask) bool { return m&o != 0 }

// Merge writes src bytes selected by mask into dst.
func Merge(dst *LineData, src *LineData, mask Mask) {
	for i := 0; i < LineBytes; i++ {
		if mask&(1<<uint(i)) != 0 {
			dst[i] = src[i]
		}
	}
}

// Memory is the backing DRAM image: a lazily allocated map from line
// address to contents. Unwritten memory reads as zero.
type Memory struct {
	lines map[uint64]*LineData
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return &Memory{lines: make(map[uint64]*LineData)} }

// ReadLine copies the line at lineAddr into dst.
func (m *Memory) ReadLine(lineAddr uint64, dst *LineData) {
	if l, ok := m.lines[lineAddr&LineMask]; ok {
		*dst = *l
	} else {
		*dst = LineData{}
	}
}

// WriteLine stores src at lineAddr.
func (m *Memory) WriteLine(lineAddr uint64, src *LineData) {
	la := lineAddr & LineMask
	l, ok := m.lines[la]
	if !ok {
		l = new(LineData)
		m.lines[la] = l
	}
	*l = *src
}

// DRAM models main-memory timing: a fixed access latency with a bound
// on concurrent accesses (a simple bandwidth model; overflow requests
// queue FIFO). Prefetch traffic runs in a low-priority lane restricted
// to half the channel so it can never starve demand accesses.
type DRAM struct {
	q           *event.Queue
	latency     uint64
	maxInFlight int
	inFlight    int
	waiting     []func()
	waitingLow  []func()
	// Accesses counts DRAM transfers for the energy model.
	Accesses uint64
}

// NewDRAM builds a DRAM model on the given queue.
func NewDRAM(q *event.Queue, latency uint64, maxInFlight int) *DRAM {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	return &DRAM{q: q, latency: latency, maxInFlight: maxInFlight}
}

// Access schedules cb after the DRAM latency, subject to the
// concurrency bound.
func (d *DRAM) Access(cb func()) { d.access(cb, false) }

// AccessLow is the prefetch lane: it only occupies up to half the
// channel and yields to queued demand accesses.
func (d *DRAM) AccessLow(cb func()) { d.access(cb, true) }

func (d *DRAM) access(cb func(), low bool) {
	start := func() {
		d.inFlight++
		d.Accesses++
		d.q.After(d.latency, func() {
			d.inFlight--
			cb()
			d.pump()
		})
	}
	if d.canStart(low) {
		start()
		return
	}
	if low {
		d.waitingLow = append(d.waitingLow, start)
	} else {
		d.waiting = append(d.waiting, start)
	}
}

func (d *DRAM) canStart(low bool) bool {
	if low {
		return d.inFlight < d.maxInFlight/2
	}
	return d.inFlight < d.maxInFlight
}

func (d *DRAM) pump() {
	for len(d.waiting) > 0 && d.inFlight < d.maxInFlight {
		next := d.waiting[0]
		d.waiting = d.waiting[1:]
		next()
	}
	for len(d.waitingLow) > 0 && d.inFlight < d.maxInFlight/2 {
		next := d.waitingLow[0]
		d.waitingLow = d.waitingLow[1:]
		next()
	}
}

// InFlight reports current outstanding accesses (for tests).
func (d *DRAM) InFlight() int { return d.inFlight }
