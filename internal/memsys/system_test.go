package memsys

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/stats"
)

// rig wires N private hierarchies to one directory for protocol tests.
type rig struct {
	cfg *config.Config
	q   *event.Queue
	mem *Memory
	dir *Directory
	ps  []*Private
	st  *stats.Set
}

func newRig(t testing.TB, cores int, mut func(*config.Config)) *rig {
	t.Helper()
	cfg := config.Default().WithCores(cores)
	if mut != nil {
		mut(cfg)
	}
	q := event.NewQueue()
	mem := NewMemory()
	st := stats.NewSet("sys")
	dram := NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := NewDirectory(cfg, q, mem, dram, st)
	ps := make([]*Private, cores)
	for i := range ps {
		ps[i] = NewPrivate(i, cfg, q, dir, stats.NewSet("p"))
	}
	dir.Attach(ps)
	return &rig{cfg: cfg, q: q, mem: mem, dir: dir, ps: ps, st: st}
}

func (r *rig) run(t testing.TB) {
	t.Helper()
	r.q.Drain(r.q.Now() + 1_000_000)
}

func (r *rig) mustLoad(t testing.TB, core int, addr uint64, size uint8) []byte {
	t.Helper()
	var got []byte
	if !r.ps[core].Load(addr, size, func(d []byte) { got = d }) {
		t.Fatalf("Load(%#x) could not start", addr)
	}
	r.run(t)
	if got == nil {
		t.Fatalf("Load(%#x) never completed", addr)
	}
	return got
}

func (r *rig) mustWritable(t testing.TB, core int, line uint64) {
	t.Helper()
	ok := false
	if !r.ps[core].RequestWritable(line, false, true, func(b bool) { ok = b }) {
		t.Fatalf("RequestWritable(%#x) could not start", line)
	}
	r.run(t)
	if !ok {
		t.Fatalf("RequestWritable(%#x) never granted", line)
	}
}

func TestLoadMissFillHit(t *testing.T) {
	r := newRig(t, 1, nil)
	var seed LineData
	for i := range seed {
		seed[i] = byte(i)
	}
	r.mem.WriteLine(0x1000, &seed)

	start := r.q.Now()
	var doneAt uint64
	r.ps[0].Load(0x1008, 4, func(d []byte) {
		doneAt = r.q.Now()
		if d[0] != 8 || d[3] != 11 {
			t.Errorf("load data = %v", d)
		}
	})
	r.run(t)
	// Miss path: L3 round trip (34) + DRAM (160).
	want := start + r.cfg.L3.Latency + r.cfg.DRAMLatency
	if doneAt != want {
		t.Errorf("miss completed at %d, want %d", doneAt, want)
	}

	// Second access is an L1 hit at L1 latency.
	start = r.q.Now()
	r.ps[0].Load(0x1000, 8, func(d []byte) { doneAt = r.q.Now() })
	r.run(t)
	if doneAt != start+r.cfg.L1D.Latency {
		t.Errorf("hit completed at %d, want %d", doneAt, start+r.cfg.L1D.Latency)
	}
	if r.ps[0].st.Get("l1d_hits") != 1 {
		t.Errorf("l1d_hits = %d, want 1", r.ps[0].st.Get("l1d_hits"))
	}
}

func TestLoadMergesIntoMSHR(t *testing.T) {
	r := newRig(t, 1, nil)
	done := 0
	r.ps[0].Load(0x2000, 8, func([]byte) { done++ })
	r.ps[0].Load(0x2008, 8, func([]byte) { done++ })
	if got := r.st.Get("llc_accesses"); got != 0 {
		t.Fatalf("llc access counted before arrival: %d", got)
	}
	r.run(t)
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if got := r.st.Get("llc_accesses"); got != 1 {
		t.Fatalf("llc_accesses = %d, want 1 (merged into one MSHR)", got)
	}
}

func TestStoreRequiresPermission(t *testing.T) {
	r := newRig(t, 1, nil)
	if r.ps[0].StoreVisible(0x3000, []byte{1, 2, 3, 4}) {
		t.Fatal("store succeeded without permission")
	}
	r.mustWritable(t, 0, 0x3000)
	if !r.ps[0].StoreVisible(0x3004, []byte{9, 9}) {
		t.Fatal("store failed with M permission")
	}
	got := r.mustLoad(t, 0, 0x3004, 2)
	if got[0] != 9 || got[1] != 9 {
		t.Fatalf("load after store = %v", got)
	}
}

func TestExclusiveGrantOnSoleReader(t *testing.T) {
	r := newRig(t, 2, nil)
	r.mustLoad(t, 0, 0x4000, 8)
	pl := r.ps[0].Lookup(0x4000)
	if pl == nil || pl.State != StateE {
		t.Fatalf("sole reader state = %v, want E", pl.State)
	}
	// Second core loads: first core downgrades to S.
	r.mustLoad(t, 1, 0x4000, 8)
	if got := r.ps[0].Lookup(0x4000).State; got != StateS {
		t.Fatalf("old owner state = %v, want S", got)
	}
	if got := r.ps[1].Lookup(0x4000).State; got != StateS {
		t.Fatalf("new reader state = %v, want S", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t, 2, nil)
	r.mustLoad(t, 0, 0x5000, 8)
	r.mustLoad(t, 1, 0x5000, 8)
	r.mustWritable(t, 1, 0x5000)
	if pl := r.ps[0].Lookup(0x5000); pl != nil && pl.State != StateI {
		t.Fatalf("sharer not invalidated: %v", pl.State)
	}
	if !r.ps[1].Writable(0x5000) {
		t.Fatal("writer did not gain M")
	}
	if r.dir.OwnerOf(0x5000) != 1 {
		t.Fatalf("directory owner = %d, want 1", r.dir.OwnerOf(0x5000))
	}
}

func TestDirtyDataMigrates(t *testing.T) {
	r := newRig(t, 2, nil)
	r.mustWritable(t, 0, 0x6000)
	if !r.ps[0].StoreVisible(0x6000, []byte{0xAB, 0xCD}) {
		t.Fatal("store failed")
	}
	got := r.mustLoad(t, 1, 0x6000, 2)
	if got[0] != 0xAB || got[1] != 0xCD {
		t.Fatalf("remote read saw %v, want dirty data", got)
	}
	// And write-write migration:
	r.mustWritable(t, 1, 0x6000)
	if !r.ps[1].StoreVisible(0x6002, []byte{0xEF}) {
		t.Fatal("second store failed")
	}
	got = r.mustLoad(t, 0, 0x6000, 4)
	if got[0] != 0xAB || got[1] != 0xCD || got[2] != 0xEF {
		t.Fatalf("migrated data = %v", got)
	}
}

func TestL1EvictionWritesBackThroughL2(t *testing.T) {
	// Shrink L1 to 2 sets x 1 way to force eviction quickly.
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 2 * 64
		c.L1D.Ways = 1
	})
	r.mustWritable(t, 0, 0x0)
	if !r.ps[0].StoreVisible(0x0, []byte{0x77}) {
		t.Fatal("store failed")
	}
	// Load two more lines mapping to set 0 (line addr multiples of 128).
	r.mustLoad(t, 0, 0x80, 8)
	r.mustLoad(t, 0, 0x100, 8)
	pl := r.ps[0].Lookup(0x0)
	if pl == nil {
		t.Fatal("line 0 fully lost")
	}
	if pl.InL1 {
		t.Fatal("line 0 should have been evicted from L1")
	}
	if !pl.InL2 || pl.L2Data[0] != 0x77 {
		t.Fatal("dirty data not written back to L2")
	}
	// And it still reads correctly (L2 hit).
	got := r.mustLoad(t, 0, 0x0, 1)
	if got[0] != 0x77 {
		t.Fatalf("reload = %v", got)
	}
}

func TestBusyLineSerializesRequests(t *testing.T) {
	r := newRig(t, 2, nil)
	okA, okB := false, false
	var grantA, grantB uint64
	r.ps[0].RequestWritable(0x7000, false, true, func(b bool) { okA = b; grantA = r.q.Now() })
	r.ps[1].RequestWritable(0x7000, false, true, func(b bool) { okB = b; grantB = r.q.Now() })
	r.run(t)
	if !okA || !okB {
		t.Fatalf("requests not eventually granted: A=%v B=%v", okA, okB)
	}
	if grantA == grantB {
		t.Fatal("conflicting writable grants completed simultaneously")
	}
	// The second grant must have waited for (and invalidated) the first.
	owner := r.dir.OwnerOf(0x7000)
	if owner != 0 && owner != 1 {
		t.Fatalf("owner = %d", owner)
	}
	if r.ps[0].Writable(0x7000) && r.ps[1].Writable(0x7000) {
		t.Fatal("both cores writable: coherence violation")
	}
	if !r.ps[owner].Writable(0x7000) {
		t.Fatal("directory owner does not hold the line")
	}
}

func TestMSHRLimit(t *testing.T) {
	r := newRig(t, 1, func(c *config.Config) { c.L1D.MSHRs = 2 })
	if !r.ps[0].Load(0x100, 8, func([]byte) {}) {
		t.Fatal("first load rejected")
	}
	if !r.ps[0].Load(0x200, 8, func([]byte) {}) {
		t.Fatal("second load rejected")
	}
	if r.ps[0].Load(0x300, 8, func([]byte) {}) {
		t.Fatal("third load should have been rejected (MSHRs full)")
	}
	r.run(t)
	if !r.ps[0].Load(0x300, 8, func([]byte) {}) {
		t.Fatal("load rejected after MSHRs drained")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 2, nil)
	r.mustLoad(t, 0, 0x8000, 8)
	r.mustLoad(t, 1, 0x8000, 8)
	r.mustWritable(t, 0, 0x8000)
	if !r.ps[0].Writable(0x8000) {
		t.Fatal("upgrade did not grant M")
	}
	if pl := r.ps[1].Lookup(0x8000); pl != nil && pl.State != StateI {
		t.Fatal("other sharer kept its copy across an upgrade")
	}
}

func TestUpgradePiggybacksOnInflightRead(t *testing.T) {
	r := newRig(t, 2, nil)
	// Make the line shared by the other core first so core 0's read
	// will be granted S (not E), forcing a real two-step upgrade.
	r.mustLoad(t, 1, 0x9000, 8)
	gotLoad := false
	okW := false
	r.ps[0].Load(0x9000, 8, func([]byte) { gotLoad = true })
	r.ps[0].RequestWritable(0x9000, false, true, func(b bool) { okW = b })
	r.run(t)
	if !gotLoad || !okW {
		t.Fatalf("load=%v writable=%v", gotLoad, okW)
	}
	if !r.ps[0].Writable(0x9000) {
		t.Fatal("line not writable after piggybacked upgrade")
	}
}

func TestWritebackBufferServicesProbe(t *testing.T) {
	// 1-way L1 and 1-way L2 so eviction triggers a PutM; probe the line
	// while the writeback may be in flight.
	r := newRig(t, 2, func(c *config.Config) {
		c.L1D.SizeBytes = 64
		c.L1D.Ways = 1
		c.L2.SizeBytes = 64
		c.L2.Ways = 1
	})
	r.mustWritable(t, 0, 0x0)
	if !r.ps[0].StoreVisible(0x0, []byte{0x42}) {
		t.Fatal("store failed")
	}
	// Evict by touching another line; immediately have core 1 read the
	// dirty line.
	var got []byte
	r.ps[0].Load(0x40, 8, func([]byte) {})
	r.ps[1].Load(0x0, 1, func(d []byte) { got = d })
	r.run(t)
	if got == nil || got[0] != 0x42 {
		t.Fatalf("remote read during writeback = %v, want 0x42", got)
	}
}

func TestStoreVisibleListener(t *testing.T) {
	r := newRig(t, 1, nil)
	var gotLine uint64
	var gotMask Mask
	r.ps[0].OnStoreVisible = func(line uint64, mask Mask, data *LineData) {
		gotLine, gotMask = line, mask
	}
	r.mustWritable(t, 0, 0xA000)
	r.ps[0].StoreVisible(0xA004, []byte{1, 2, 3, 4})
	if gotLine != 0xA000 || gotMask != MaskFor(0xA004, 4) {
		t.Fatalf("listener saw line=%#x mask=%#x", gotLine, gotMask)
	}
}
