package memsys

import (
	"fmt"
	"sort"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/lmap"
	"tusim/internal/stats"
	"tusim/internal/trace"
)

// Directory is the shared LLC with an embedded full-map directory. It
// serializes coherence transactions per line with a busy bit and NACKs
// concurrent requests, which is also how TUS's delay decision travels
// back to a requester (Sec. III-C).
type Directory struct {
	cfg  *config.Config
	q    *event.Queue
	mem  *Memory
	dram *DRAM
	st   *stats.Set

	privates []*Private

	entries *lmap.Map[dirEntry]
	pool    *lmap.Pool[dirEntry]
	sets    [][]*dirEntry
	ways    int

	reqLat uint64 // one-way private-L2 <-> LLC latency
	netLat uint64 // one-way probe latency

	lruTick uint64

	faults *faults.Injector
	// Fault counters exist only when an injector is installed, keeping
	// fault-free stat sets byte-identical to pre-chaos builds.
	cFaultNack, cFaultStall *stats.Counter

	cAccess, cNack, cProbes, cRecallFail *stats.Counter
	cEvict, cOverflow                    *stats.Counter

	tr *trace.Tracer
}

// dirTraceCore is the tracer pid for directory-originated events.
const dirTraceCore = -1

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (d *Directory) SetTracer(t *trace.Tracer) { d.tr = t }

type dirEntry struct {
	line      uint64
	data      LineData
	hasData   bool
	dirty     bool // newer than memory
	owner     int  // -1 when unowned
	sharers   uint64
	busy      bool
	busySince uint64
	lru       uint64
	// waiting queues requests that arrived while the line was busy;
	// FIFO service prevents deterministic retry livelocks between
	// contending cores.
	waiting []queuedReq
}

type queuedReq struct {
	src     int
	wantM   bool
	lowLane bool
	cb      func(ok bool, data *LineData, excl bool)
}

// dirQueueCap bounds the per-line request queue; overflow is NACKed.
const dirQueueCap = 24

// BusyInfo reports whether a line's directory entry is busy and since
// when (debugging aid).
func (d *Directory) BusyInfo(line uint64) (bool, uint64) {
	if e := d.entries.Get(line & LineMask); e != nil {
		return e.busy, e.busySince
	}
	return false, 0
}

// NewDirectory builds the LLC+directory.
func NewDirectory(cfg *config.Config, q *event.Queue, mem *Memory, dram *DRAM, st *stats.Set) *Directory {
	ref := cfg.RefContainers || lmap.DefaultRef
	d := &Directory{
		cfg:     cfg,
		q:       q,
		mem:     mem,
		dram:    dram,
		st:      st,
		entries: lmap.NewRef[dirEntry](ref),
		pool:    lmap.NewPoolRef[dirEntry](ref),
		sets:    make([][]*dirEntry, cfg.L3.Sets()),
		ways:    cfg.L3.Ways,
		reqLat:  cfg.L3.Latency / 2,
		netLat:  cfg.NetLatency,
	}
	d.cAccess = st.Counter("llc_accesses")
	d.cNack = st.Counter("llc_nacks")
	d.cProbes = st.Counter("llc_probes")
	d.cEvict = st.Counter("llc_evictions")
	d.cOverflow = st.Counter("llc_set_overflow")
	d.cRecallFail = st.Counter("llc_recall_skips")
	return d
}

// Attach registers the private hierarchies (called once at wiring time).
func (d *Directory) Attach(ps []*Private) { d.privates = ps }

// SetFaults installs a fault injector (nil disables injection).
func (d *Directory) SetFaults(in *faults.Injector) {
	d.faults = in
	if in != nil {
		d.cFaultNack = d.st.Counter("fault_nacks")
		d.cFaultStall = d.st.Counter("fault_stalls")
	}
}

func (d *Directory) set(line uint64) uint64 { return (line >> 6) % uint64(d.cfg.L3.Sets()) }

// entry returns (allocating if needed) the directory entry for line.
// Allocation may evict an un-cached-above victim; if every way is
// pinned the set temporarily overflows (counted, never fatal).
func (d *Directory) entry(line uint64) *dirEntry {
	if e := d.entries.Get(line); e != nil {
		return e
	}
	s := d.set(line)
	ways := d.sets[s]
	if len(ways) >= d.ways {
		var victim *dirEntry
		for _, w := range ways {
			if w.busy || w.owner >= 0 || w.sharers != 0 {
				continue
			}
			if victim == nil || w.lru < victim.lru {
				victim = w
			}
		}
		if victim != nil {
			d.cEvict.Inc()
			if victim.dirty && victim.hasData {
				d.mem.WriteLine(victim.line, &victim.data)
				d.dram.Accesses++
			}
			d.entries.Delete(victim.line)
			d.sets[s] = removeDir(d.sets[s], victim)
			d.pool.Put(victim)
		} else {
			d.cOverflow.Inc()
			d.cRecallFail.Inc()
			d.tr.Emit(trace.DirRecall, dirTraceCore, d.q.Now(), line, 0, 0)
		}
	}
	e := d.pool.Get()
	*e = dirEntry{line: line, owner: -1, waiting: e.waiting[:0]}
	d.entries.Put(line, e)
	d.sets[s] = append(d.sets[s], e)
	d.lruTick++
	e.lru = d.lruTick
	return e
}

func removeDir(s []*dirEntry, x *dirEntry) []*dirEntry {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// Request is the private hierarchy's entry point for GetS/GetM. The
// callback runs at response-arrival time at the requester; ok=false is
// a NACK (busy line or TUS delay).
func (d *Directory) Request(src int, line uint64, wantM, lowLane bool, cb func(ok bool, data *LineData, excl bool)) {
	line &= LineMask
	d.q.After(d.reqLat+d.faults.ReqExtra(), func() { d.handle(src, line, wantM, lowLane, cb) })
}

// DebugLine, when nonzero, traces every transaction on that line.
var DebugLine uint64

func (d *Directory) handle(src int, line uint64, wantM, lowLane bool, cb func(ok bool, data *LineData, excl bool)) {
	if DebugLine != 0 && line == DebugLine {
		e := d.entries.Get(line)
		o, b := -1, false
		if e != nil {
			o, b = e.owner, e.busy
		}
		fmt.Printf("[%d] handle src=%d wantM=%v owner=%d busy=%v\n", d.q.Now(), src, wantM, o, b)
	}
	if d.faults.SpuriousNack() {
		// A NACK is a legal response to any request (busy line, TUS
		// delay), so requesters must already cope with it at any time.
		d.cFaultNack.Inc()
		d.cNack.Inc()
		d.tr.Emit(trace.DirNack, dirTraceCore, d.q.Now(), line, 0, uint64(src))
		d.q.After(d.reqLat, func() { cb(false, nil, false) })
		return
	}
	d.cAccess.Inc()
	e := d.entry(line)
	d.lruTick++
	e.lru = d.lruTick
	if e.busy {
		if len(e.waiting) < dirQueueCap {
			e.waiting = append(e.waiting, queuedReq{src: src, wantM: wantM, lowLane: lowLane, cb: cb})
		} else {
			d.cNack.Inc()
			d.tr.Emit(trace.DirNack, dirTraceCore, d.q.Now(), line, 0, uint64(src))
			d.q.After(d.reqLat, func() { cb(false, nil, false) })
		}
		return
	}
	if stall := d.faults.BusyStall(); stall > 0 {
		// Hold the busy bit with no transaction in flight for a while,
		// as if a remote response were slow; then restart the request.
		// Concurrent requests queue behind the busy bit as usual.
		d.cFaultStall.Inc()
		e.busy = true
		e.busySince = d.q.Now()
		d.q.After(stall, func() {
			e.busy = false
			d.handle(src, line, wantM, lowLane, cb)
		})
		return
	}
	e.busy = true
	e.busySince = d.q.Now()

	nack := func() {
		e.busy = false
		d.cNack.Inc()
		d.tr.Emit(trace.DirNack, dirTraceCore, d.q.Now(), line, 0, uint64(src))
		d.q.After(d.reqLat, func() { cb(false, nil, false) })
		d.kick(e)
	}
	grant := func() {
		if wantM {
			e.owner = src
			e.sharers = 0
		} else {
			if e.owner == src {
				e.owner = -1
			}
			e.sharers |= 1 << uint(src)
		}
		excl := wantM || (e.owner < 0 && e.sharers == 1<<uint(src))
		if excl && !wantM {
			// Grant E: track as owner so future requests probe us.
			e.owner = src
			e.sharers = 0
		}
		data := e.data
		// The line stays busy until the requester has applied the fill
		// (cb runs synchronously at response arrival); this guarantees
		// probes never race an in-flight fill.
		d.q.After(d.reqLat, func() {
			cb(true, &data, excl)
			e.busy = false
			d.kick(e)
		})
	}

	// Step 2 runs once data and permissions are settled.
	withData := func(next func()) {
		if e.hasData {
			next()
			return
		}
		fill := func() {
			d.mem.ReadLine(line, &e.data)
			e.hasData = true
			next()
		}
		if lowLane {
			d.dram.AccessLow(fill)
		} else {
			d.dram.Access(fill)
		}
	}

	// Collect the probe targets.
	type target struct {
		core int
		kind ProbeKind
	}
	var targets []target
	if e.owner >= 0 && e.owner != src {
		k := ProbeDowngrade
		if wantM {
			k = ProbeInv
		}
		targets = append(targets, target{e.owner, k})
	}
	if wantM {
		for c := range d.privates {
			if c != src && e.owner != c && e.sharers&(1<<uint(c)) != 0 {
				targets = append(targets, target{c, ProbeInv})
			}
		}
	}

	if len(targets) == 0 {
		withData(grant)
		return
	}
	// Probe delivery order is not architecturally specified; a seeded
	// shuffle explores legal orderings the deterministic collector never
	// produces on its own.
	d.faults.ShuffleTargets(len(targets), func(i, j int) {
		targets[i], targets[j] = targets[j], targets[i]
	})

	pending := len(targets)
	nacked := false
	for _, t := range targets {
		t := t
		d.cProbes.Inc()
		d.q.After(d.netLat+d.faults.ProbeExtra(), func() {
			r := d.privates[t.core].Probe(line, t.kind)
			d.q.After(d.netLat, func() {
				switch r.Result {
				case ProbeNack:
					nacked = true
				case ProbeStale:
					// TUS relinquish: the old authorized copy becomes
					// the coherent data and the owner loses the line.
					e.data = *r.Data
					e.hasData = true
					e.dirty = true
					if e.owner == t.core {
						e.owner = -1
					}
				case ProbeAck:
					if r.Data != nil {
						e.data = *r.Data
						e.hasData = true
						e.dirty = true
					}
					if t.kind == ProbeInv {
						e.sharers &^= 1 << uint(t.core)
						if e.owner == t.core {
							e.owner = -1
						}
					} else if e.owner == t.core {
						// Downgrade: old owner stays on as a sharer.
						e.owner = -1
						e.sharers |= 1 << uint(t.core)
					}
				}
				pending--
				if pending == 0 {
					if nacked {
						nack()
						return
					}
					withData(grant)
				}
			})
		})
	}
}

// kick services the next queued request for a line that just unbusied.
// It runs synchronously so a queued request always beats any request
// arriving later in the same cycle (otherwise deterministic retry
// traffic can starve the queue forever).
func (d *Directory) kick(e *dirEntry) {
	if e.busy || len(e.waiting) == 0 {
		return
	}
	next := e.waiting[0]
	e.waiting = e.waiting[1:]
	d.handle(next.src, e.line, next.wantM, next.lowLane, next.cb)
}

// WriteBack handles PutM-style eviction/relinquish traffic. ok=false
// asks the private hierarchy to retry (busy line).
func (d *Directory) WriteBack(src int, line uint64, data *LineData, cb func(ok bool)) {
	line &= LineMask
	d.q.After(d.reqLat+d.faults.ReqExtra(), func() {
		if d.faults.SpuriousNack() {
			d.cFaultNack.Inc()
			d.q.After(d.reqLat, func() { cb(false) })
			return
		}
		d.cAccess.Inc()
		e := d.entry(line)
		if e.busy {
			d.q.After(d.reqLat, func() { cb(false) })
			return
		}
		if e.owner == src {
			e.owner = -1
			e.data = *data
			e.hasData = true
			e.dirty = true
		}
		// A writeback from a non-owner is stale (the probe already
		// collected the data); acknowledge and drop it.
		d.q.After(d.reqLat, func() { cb(true) })
	})
}

// OwnerOf reports the directory's notion of a line's owner (tests).
func (d *Directory) OwnerOf(line uint64) int {
	if e := d.entries.Get(line & LineMask); e != nil {
		return e.owner
	}
	return -1
}

// LLCData returns the LLC's copy of a line if present with valid data
// (tests and coherent-view reads).
func (d *Directory) LLCData(line uint64) *LineData {
	if e := d.entries.Get(line & LineMask); e != nil && e.hasData {
		return &e.data
	}
	return nil
}

// SharersOf reports the sharer bitmask (tests).
func (d *Directory) SharersOf(line uint64) uint64 {
	if e := d.entries.Get(line & LineMask); e != nil {
		return e.sharers
	}
	return 0
}

// ---------- Audit / chaos hooks ----------

// AuditEntries visits every directory entry in ascending line order
// (sorted for deterministic auditor reports).
func (d *Directory) AuditEntries(visit func(line uint64, owner int, sharers uint64, busy bool, busySince uint64)) {
	keys := make([]uint64, 0, d.entries.Len())
	d.entries.Range(func(k uint64, _ *dirEntry) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		e := d.entries.Get(k)
		visit(e.line, e.owner, e.sharers, e.busy, e.busySince)
	}
}

// EntryInfo reports a line's directory bookkeeping (auditor use).
func (d *Directory) EntryInfo(line uint64) (owner int, sharers uint64, busy bool, ok bool) {
	e := d.entries.Get(line & LineMask)
	if e == nil {
		return -1, 0, false, false
	}
	return e.owner, e.sharers, e.busy, true
}

// SabotageDropOwner deliberately forgets a line's owner (crash-pipeline
// testing): the private hierarchy still holds E/M but the directory now
// believes nobody does, which the single-writer audit must flag. Busy
// lines are skipped (their owner field is mid-transaction by design).
func (d *Directory) SabotageDropOwner(line uint64) bool {
	e := d.entries.Get(line & LineMask)
	if e == nil || e.busy || e.owner < 0 {
		return false
	}
	e.owner = -1
	return true
}
