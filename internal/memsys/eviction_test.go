package memsys

import (
	"testing"

	"tusim/internal/config"
)

// TestL2EvictionRecallsL1 verifies inclusion: evicting a line from the
// private L2 removes the L1 copy and writes dirty data back to the LLC.
func TestL2EvictionRecallsL1(t *testing.T) {
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 2 * 64
		c.L1D.Ways = 1
		c.L2.SizeBytes = 2 * 64
		c.L2.Ways = 1
	})
	r.mustWritable(t, 0, 0x0)
	if !r.ps[0].StoreVisible(0x0, []byte{0xEE}) {
		t.Fatal("store failed")
	}
	// Touch two more same-set lines: line 0 must be evicted from both
	// levels (1-way L2).
	r.mustLoad(t, 0, 0x80, 8)
	r.mustLoad(t, 0, 0x100, 8)
	if pl := r.ps[0].Lookup(0x0); pl != nil && (pl.InL1 || pl.InL2) {
		t.Fatalf("line 0 still resident: inL1=%v inL2=%v", pl.InL1, pl.InL2)
	}
	// Data must survive in the LLC (via writeback): reload and check.
	got := r.mustLoad(t, 0, 0x0, 1)
	if got[0] != 0xEE {
		t.Fatalf("reload after L2 eviction = %#x, want 0xEE", got[0])
	}
}

// TestWritebackReachesLLC asserts the directory holds the dirty data
// after an ownership-releasing eviction.
func TestWritebackReachesLLC(t *testing.T) {
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 64
		c.L1D.Ways = 1
		c.L2.SizeBytes = 64
		c.L2.Ways = 1
	})
	r.mustWritable(t, 0, 0x0)
	r.ps[0].StoreVisible(0x0, []byte{0x31})
	r.mustLoad(t, 0, 0x40, 8) // evicts line 0 everywhere
	r.run(t)
	if r.dir.OwnerOf(0x0) == 0 {
		t.Fatal("directory still thinks core 0 owns the evicted line")
	}
	if d := r.dir.LLCData(0x0); d == nil || d[0] != 0x31 {
		t.Fatalf("LLC data after writeback = %v", d)
	}
}

// TestInclusionNeverViolated is a sweep: after arbitrary traffic, every
// L1-resident line must also be L2-resident.
func TestInclusionNeverViolated(t *testing.T) {
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 4 * 64 * 2
		c.L1D.Ways = 2
		c.L2.SizeBytes = 8 * 64 * 2
		c.L2.Ways = 2
	})
	for i := 0; i < 200; i++ {
		addr := uint64((i * 7919) % 64 * 64)
		if i%3 == 0 {
			ok := false
			r.ps[0].RequestWritable(addr, false, true, func(b bool) { ok = b })
			r.run(t)
			if ok {
				r.ps[0].StoreVisible(addr, []byte{byte(i)})
			}
		} else {
			r.mustLoad(t, 0, addr, 1)
		}
	}
	// Inclusion check over every tracked line.
	for line := uint64(0); line < 64*64; line += 64 {
		pl := r.ps[0].Lookup(line)
		if pl == nil {
			continue
		}
		if pl.InL1 && !pl.InL2 {
			t.Fatalf("line %#x in L1 but not L2 (inclusion violated)", line)
		}
	}
}

// TestPrefetchPoolDoesNotBlockDemand fills the prefetch MSHR pool and
// verifies demand loads still start.
func TestPrefetchPoolDoesNotBlockDemand(t *testing.T) {
	r := newRig(t, 1, nil)
	issued := 0
	for i := 0; i < 100; i++ {
		if r.ps[0].PrefetchRead(uint64(0x100000 + i*64)) {
			issued++
		}
	}
	if issued == 0 {
		t.Fatal("no prefetches issued")
	}
	if issued > r.cfg.L1D.MSHRs/2 {
		t.Fatalf("prefetch pool overflow: %d issued", issued)
	}
	if !r.ps[0].MSHRFree() {
		t.Fatal("demand MSHRs exhausted by prefetches")
	}
	var got []byte
	if !r.ps[0].Load(0x900000, 8, func(d []byte) { got = d }) {
		t.Fatal("demand load rejected while prefetch pool full")
	}
	r.run(t)
	if got == nil {
		t.Fatal("demand load never completed")
	}
}

// TestDowngradeKeepsDataClean: after a downgrade probe the old owner
// retains a readable copy and a re-upgrade works.
func TestDowngradeKeepsDataClean(t *testing.T) {
	r := newRig(t, 2, nil)
	r.mustWritable(t, 0, 0xB000)
	r.ps[0].StoreVisible(0xB000, []byte{0x66})
	r.mustLoad(t, 1, 0xB000, 1) // downgrades core 0 to S
	if got := r.mustLoad(t, 0, 0xB000, 1); got[0] != 0x66 {
		t.Fatalf("old owner's copy lost: %v", got)
	}
	r.mustWritable(t, 0, 0xB000)
	if !r.ps[0].StoreVisible(0xB001, []byte{0x77}) {
		t.Fatal("re-upgrade failed")
	}
	if got := r.mustLoad(t, 1, 0xB000, 2); got[0] != 0x66 || got[1] != 0x77 {
		t.Fatalf("remote view after re-upgrade = %v", got)
	}
}
