package memsys

import (
	"testing"

	"tusim/internal/config"
)

// fakeHandler scripts the authorization unit's decisions for tests.
type fakeHandler struct {
	action       ProbeAction
	probed       []uint64
	filled       []uint64
	relinquished []uint64
}

func (f *fakeHandler) HandleProbe(line uint64) ProbeAction {
	f.probed = append(f.probed, line)
	return f.action
}
func (f *fakeHandler) HandleFill(line uint64)       { f.filled = append(f.filled, line) }
func (f *fakeHandler) HandleRelinquish(line uint64) { f.relinquished = append(f.relinquished, line) }

func TestUnauthorizedStoreThenFillMerges(t *testing.T) {
	r := newRig(t, 1, nil)
	h := &fakeHandler{}
	r.ps[0].SetHandler(h)

	var seed LineData
	for i := range seed {
		seed[i] = 0x10
	}
	r.mem.WriteLine(0xB000, &seed)

	// Write 4 bytes without permission: always-hit illusion.
	if !r.ps[0].StoreUnauthorized(0xB008, []byte{1, 2, 3, 4}) {
		t.Fatal("unauthorized store failed")
	}
	pl := r.ps[0].Lookup(0xB000)
	if !pl.NotVisible || pl.Ready {
		t.Fatalf("line flags: notVisible=%v ready=%v", pl.NotVisible, pl.Ready)
	}
	if pl.UMask != MaskFor(0xB008, 4) {
		t.Fatalf("UMask = %#x", pl.UMask)
	}

	// Request permission; on fill, memory data merges around the mask.
	var granted bool
	r.ps[0].RequestWritable(0xB000, false, false, func(ok bool) { granted = ok })
	r.run(t)
	if !granted {
		t.Fatal("permission not granted")
	}
	if !pl.Ready || !pl.NotVisible {
		t.Fatalf("after fill: notVisible=%v ready=%v", pl.NotVisible, pl.Ready)
	}
	if len(h.filled) != 1 || h.filled[0] != 0xB000 {
		t.Fatalf("HandleFill calls = %v", h.filled)
	}
	// Merged contents: memory bytes outside the mask, store bytes inside.
	if pl.L1Data[7] != 0x10 || pl.L1Data[8] != 1 || pl.L1Data[11] != 4 || pl.L1Data[12] != 0x10 {
		t.Fatalf("merge wrong: %v", pl.L1Data[:16])
	}
	// The L2 copy is the unmodified (authorized) version.
	if pl.L2Data[8] != 0x10 {
		t.Fatal("L2 must hold the unmodified authorized copy")
	}

	// Publish and verify the visibility listener fires with the mask.
	var visMask Mask
	r.ps[0].OnStoreVisible = func(line uint64, mask Mask, data *LineData) { visMask = mask }
	r.ps[0].MakeVisible(0xB000)
	if visMask != MaskFor(0xB008, 4) {
		t.Fatalf("visibility mask = %#x", visMask)
	}
	if pl.NotVisible || pl.State != StateM || !pl.L1Dirty {
		t.Fatal("MakeVisible left wrong state")
	}
}

func TestUnauthorizedStoreCoalescesOnHit(t *testing.T) {
	r := newRig(t, 1, nil)
	r.ps[0].SetHandler(&fakeHandler{})
	r.ps[0].StoreUnauthorized(0xC000, []byte{1})
	r.ps[0].StoreUnauthorizedHit(0xC001, []byte{2})
	pl := r.ps[0].Lookup(0xC000)
	if pl.UMask != 0x3 {
		t.Fatalf("UMask = %#x, want 0x3", pl.UMask)
	}
	if pl.L1Data[0] != 1 || pl.L1Data[1] != 2 {
		t.Fatal("coalesced data wrong")
	}
}

func TestLoadToUnauthorizedLineWaitsForPermission(t *testing.T) {
	r := newRig(t, 1, nil)
	r.ps[0].SetHandler(&fakeHandler{})
	var seed LineData
	seed[0] = 0x55
	r.mem.WriteLine(0xD000, &seed)

	r.ps[0].StoreUnauthorized(0xD008, []byte{7})
	var got []byte
	r.ps[0].Load(0xD000, 1, func(d []byte) { got = d })
	r.q.Drain(r.q.Now() + 10)
	if got != nil {
		t.Fatal("load to not-ready unauthorized line must wait")
	}
	r.ps[0].RequestWritable(0xD000, false, false, nil)
	r.run(t)
	if got == nil || got[0] != 0x55 {
		t.Fatalf("aliased load = %v, want 0x55 after permission", got)
	}
}

func TestProbeDelayNacksRequester(t *testing.T) {
	r := newRig(t, 2, nil)
	h := &fakeHandler{action: ActionDelay}
	r.ps[0].SetHandler(h)
	r.ps[1].SetHandler(&fakeHandler{})

	// Core 0 gets an unauthorized line ready (permission held, not visible).
	r.ps[0].StoreUnauthorized(0xE000, []byte{9})
	r.ps[0].RequestWritable(0xE000, false, false, nil)
	r.run(t)

	// Core 1 wants the line; core 0's authorization unit delays.
	nacks := 0
	granted := false
	var attempt func()
	attempt = func() {
		r.ps[1].RequestWritable(0xE000, false, false, func(ok bool) {
			if ok {
				granted = true
				return
			}
			nacks++
			if nacks == 3 {
				// After a few NACKs core 0 publishes; then retry succeeds.
				r.ps[0].MakeVisible(0xE000)
			}
			if nacks < 10 {
				r.q.After(50, attempt)
			}
		})
	}
	attempt()
	r.run(t)
	if nacks < 3 {
		t.Fatalf("nacks = %d, want >= 3", nacks)
	}
	if !granted {
		t.Fatal("request never granted after line became visible")
	}
	if len(h.probed) == 0 {
		t.Fatal("authorization unit never consulted")
	}
	// Ownership transferred with the *new* data (line was visible by then).
	var got []byte
	r.ps[1].Load(0xE000, 1, func(d []byte) { got = d })
	r.run(t)
	if got[0] != 9 {
		t.Fatalf("transferred data = %v, want visible store value 9", got)
	}
}

func TestProbeRelinquishServesStaleData(t *testing.T) {
	r := newRig(t, 2, nil)
	h := &fakeHandler{action: ActionRelinquish}
	r.ps[0].SetHandler(h)
	r.ps[1].SetHandler(&fakeHandler{})

	var seed LineData
	seed[0] = 0x33
	r.mem.WriteLine(0xF000, &seed)

	r.ps[0].StoreUnauthorized(0xF000, []byte{0x99})
	r.ps[0].RequestWritable(0xF000, false, false, nil)
	r.run(t)
	pl := r.ps[0].Lookup(0xF000)
	if !pl.Ready {
		t.Fatal("setup: line should be ready")
	}

	// Core 1 requests: core 0 relinquishes; core 1 must see the OLD data.
	var got []byte
	r.ps[1].Load(0xF000, 1, func(d []byte) { got = d })
	r.run(t)
	if got == nil || got[0] != 0x33 {
		t.Fatalf("requester saw %v, want stale 0x33", got)
	}
	// Core 0 keeps its unauthorized data but lost permission and ready.
	if !pl.NotVisible || pl.Ready || pl.State != StateI {
		t.Fatalf("relinquished line state: notVisible=%v ready=%v state=%v", pl.NotVisible, pl.Ready, pl.State)
	}
	if pl.L1Data[0] != 0x99 {
		t.Fatal("unauthorized data lost on relinquish")
	}
	if len(h.relinquished) != 1 || h.relinquished[0] != 0xF000 {
		t.Fatalf("HandleRelinquish calls = %v", h.relinquished)
	}

	// Re-acquiring merges the *updated* remote data around the mask.
	r.mustWritable(t, 1, 0xF000)
	r.ps[1].StoreVisible(0xF001, []byte{0x44})
	var granted bool
	r.ps[0].RequestWritable(0xF000, false, false, func(ok bool) { granted = ok })
	r.run(t)
	if !granted {
		t.Fatal("re-request not granted")
	}
	if pl.L1Data[0] != 0x99 || pl.L1Data[1] != 0x44 {
		t.Fatalf("re-merge wrong: %v (want own 0x99 + remote 0x44)", pl.L1Data[:2])
	}
}

func TestNotVisibleLineNotEvictable(t *testing.T) {
	// Single-way L1: the unauthorized line pins its set; a conflicting
	// load must not displace it (there is no other copy of that data).
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 2 * 64
		c.L1D.Ways = 1
	})
	r.ps[0].SetHandler(&fakeHandler{})
	if !r.ps[0].StoreUnauthorized(0x0, []byte{1}) {
		t.Fatal("unauthorized store failed")
	}
	var got []byte
	r.ps[0].Load(0x80, 8, func(d []byte) { got = d }) // same set
	r.run(t)
	pl := r.ps[0].Lookup(0x0)
	if pl == nil || !pl.InL1 || !pl.NotVisible {
		t.Fatal("not-visible line was evicted")
	}
	if got == nil {
		t.Fatal("conflicting load never completed (it may stay in L2 only)")
	}
	// A second unauthorized store to that set must be refused.
	if r.ps[0].StoreUnauthorized(0x100, []byte{2}) {
		t.Fatal("unauthorized store succeeded with no free way")
	}
}

func TestL1WaysAvailable(t *testing.T) {
	r := newRig(t, 1, func(c *config.Config) {
		c.L1D.SizeBytes = 2 * 64 * 2 // 2 sets x 2 ways
		c.L1D.Ways = 2
	})
	r.ps[0].SetHandler(&fakeHandler{})
	// Lines 0x0, 0x80, 0x100 map to set 0; 0x40 to set 1.
	if !r.ps[0].L1WaysAvailable([]uint64{0x0, 0x80}) {
		t.Fatal("2 lines into a 2-way set should fit")
	}
	if r.ps[0].L1WaysAvailable([]uint64{0x0, 0x80, 0x100}) {
		t.Fatal("3 lines cannot fit a 2-way set")
	}
	if !r.ps[0].L1WaysAvailable([]uint64{0x0, 0x80, 0x40}) {
		t.Fatal("split across sets should fit")
	}
	// Pin one way with an unauthorized line: only 1 slot left in set 0.
	r.ps[0].StoreUnauthorized(0x0, []byte{1})
	if !r.ps[0].L1WaysAvailable([]uint64{0x80}) {
		t.Fatal("one free way remains")
	}
	if r.ps[0].L1WaysAvailable([]uint64{0x80, 0x100}) {
		t.Fatal("pinned way must reduce availability")
	}
	// The resident line itself still counts as available.
	if !r.ps[0].L1WaysAvailable([]uint64{0x0, 0x80}) {
		t.Fatal("resident line counts as satisfied")
	}
}
