package memsys

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/stats"
)

// The differential state-identity rig: one memory system runs on the
// open-addressed/pooled fast containers, its twin runs on the
// reference containers (built-in maps, always-fresh allocation), and
// the same seeded traffic — loads, stores, ownership bounces,
// unauthorized-store lifecycles, chaos-injector streams — is pumped
// through both. At every drain point the full observable state (cache
// lines, MSHRs, write-back buffer, directory, stats, and the ordered
// reply log) must be byte-identical. Reference pools never recycle
// memory, so a missing field reset in the fast path's struct reuse
// diverges here immediately.

// diffSide is one of the two systems under comparison plus the
// observable-output log the rig compares.
type diffSide struct {
	r       *rig
	coreSts []*stats.Set
	handler []*diffHandler
	log     []string
}

// diffHandler is a deterministic authorization unit: probes alternate
// delay/relinquish by line hash, and fills publish the line (the
// shortest legal unauthorized lifecycle). Its decisions depend only on
// the call sequence, so two behaviorally identical systems see
// identical streams — and a divergence shows up as a state diff.
type diffHandler struct {
	p     *Private
	side  *diffSide
	core  int
	calls uint64
}

func (h *diffHandler) HandleProbe(line uint64) ProbeAction {
	h.calls++
	h.side.log = append(h.side.log, fmt.Sprintf("probe c%d %#x", h.core, line))
	if (line>>6+h.calls)%3 == 0 {
		return ActionRelinquish
	}
	return ActionDelay
}

func (h *diffHandler) HandleFill(line uint64) {
	h.side.log = append(h.side.log, fmt.Sprintf("fill c%d %#x", h.core, line))
	h.p.MakeVisible(line)
}

func (h *diffHandler) HandleRelinquish(line uint64) {
	h.side.log = append(h.side.log, fmt.Sprintf("relinq c%d %#x", h.core, line))
}

// newDiffSide builds one comparison side. ref selects the reference
// containers; schedRef selects the reference binary-heap scheduler
// (false = the production time wheel), independently, so the rig can
// pin container identity and scheduler identity with the same
// snapshot machinery.
func newDiffSide(cores int, ref, schedRef bool, plan faults.Plan) *diffSide {
	cfg := config.Default().WithCores(cores)
	cfg.RefContainers = ref
	cfg.RefScheduler = schedRef
	q := event.NewQueueRef(schedRef)
	mem := NewMemory()
	st := stats.NewSet("sys")
	dram := NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := NewDirectory(cfg, q, mem, dram, st)
	side := &diffSide{}
	ps := make([]*Private, cores)
	for i := range ps {
		cs := stats.NewSet("p")
		ps[i] = NewPrivate(i, cfg, q, dir, cs)
		side.coreSts = append(side.coreSts, cs)
		h := &diffHandler{p: ps[i], side: side, core: i}
		ps[i].SetHandler(h)
		side.handler = append(side.handler, h)
		core := i
		ps[i].LoadReply = func(seq, data uint64) {
			side.log = append(side.log, fmt.Sprintf("load c%d seq=%d data=%#x", core, seq, data))
		}
	}
	dir.Attach(ps)
	side.r = &rig{cfg: cfg, q: q, mem: mem, dir: dir, ps: ps, st: st}
	if plan.Enabled() {
		in := faults.NewInjector(plan)
		dir.SetFaults(in)
		for _, p := range ps {
			p.SetFaults(in)
		}
	}
	return side
}

// snapshot renders every piece of observable machine state. Audits
// iterate in sorted key order, so the rendering is representation-
// independent by construction.
func (s *diffSide) snapshot(pool []uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d\n", s.r.q.Now())
	for i, p := range s.r.ps {
		fmt.Fprintf(&b, "core %d lines:\n", i)
		p.AuditLines(func(pl *PLine) {
			fmt.Fprintf(&b, "  %#x st=%v l1=%v l2=%v d1=%v d2=%v nv=%v rdy=%v um=%#x l1d=%x l2d=%x\n",
				pl.Line, pl.State, pl.InL1, pl.InL2, pl.L1Dirty, pl.L2Dirty,
				pl.NotVisible, pl.Ready, pl.UMask, pl.L1Data, pl.L2Data)
		})
		fmt.Fprintf(&b, "core %d mshrs:\n", i)
		p.AuditMSHRs(func(line, born uint64, wantM, prefetch bool) {
			fmt.Fprintf(&b, "  %#x born=%d m=%v pf=%v\n", line, born, wantM, prefetch)
		})
		fmt.Fprintf(&b, "core %d wb:", i)
		for _, ln := range pool {
			if p.WBPending(ln) {
				fmt.Fprintf(&b, " %#x", ln)
			}
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "core %d stats:\n%s", i, s.coreSts[i].String())
	}
	b.WriteString("directory:\n")
	s.r.dir.AuditEntries(func(line uint64, owner int, sharers uint64, busy bool, busySince uint64) {
		fmt.Fprintf(&b, "  %#x own=%d sh=%#x busy=%v since=%d\n", line, owner, sharers, busy, busySince)
	})
	fmt.Fprintf(&b, "dir stats:\n%s", s.st())
	fmt.Fprintf(&b, "log(%d):\n", len(s.log))
	for _, l := range s.log {
		b.WriteString("  ")
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

func (s *diffSide) st() string { return s.r.st.String() }

// step applies one seeded random operation to a side. Both sides are
// driven with identical op streams (the rng is owned by the caller).
func (s *diffSide) step(op, core int, line uint64, off, sz uint64, seq uint64) {
	p := s.r.ps[core]
	switch op {
	case 0, 1, 2: // seq-based load
		ok := p.LoadSeq(line+off, uint8(sz), seq)
		s.log = append(s.log, fmt.Sprintf("loadseq c%d %#x ok=%v", core, line+off, ok))
	case 3: // ownership acquisition (bounces between cores)
		ok := p.RequestWritable(line, false, true, nil)
		s.log = append(s.log, fmt.Sprintf("rfo c%d %#x ok=%v", core, line, ok))
	case 4, 5: // visible store (hits only when writable and visible)
		if pl := p.Lookup(line); pl != nil && pl.NotVisible {
			// Mixing the visible-store path into an unauthorized line is
			// an API violation, not a workload; skip deterministically.
			s.log = append(s.log, fmt.Sprintf("store c%d %#x skip-nv", core, line+off))
			return
		}
		buf := []byte{byte(seq), byte(seq >> 8), 3, 4, 5, 6, 7, 8}
		ok := p.StoreVisible(line+off, buf[:sz])
		s.log = append(s.log, fmt.Sprintf("store c%d %#x ok=%v", core, line+off, ok))
	case 6: // unauthorized store: write first, ask for permission later
		if pl := p.Lookup(line); pl != nil && pl.NotVisible && pl.Ready {
			// Already filled and awaiting publication; writing more bytes
			// now would race MakeVisible. Skip deterministically.
			s.log = append(s.log, fmt.Sprintf("ustore c%d %#x skip-rdy", core, line+off))
			return
		}
		buf := []byte{byte(seq), 0xBB, 0xCC, 0xDD, 1, 2, 3, 4}
		if p.StoreUnauthorized(line+off, buf[:sz]) {
			started := p.RequestWritable(line, false, true, nil)
			s.log = append(s.log, fmt.Sprintf("ustore c%d %#x req=%v", core, line+off, started))
		} else {
			s.log = append(s.log, fmt.Sprintf("ustore c%d %#x ok=false", core, line+off))
		}
	case 7: // read prefetch
		ok := p.PrefetchRead(line)
		s.log = append(s.log, fmt.Sprintf("pf c%d %#x ok=%v", core, line, ok))
	}
}

func runDifferential(t *testing.T, seed int64, cores int, plan faults.Plan) {
	t.Helper()
	fast := newDiffSide(cores, false, event.DefaultRef, plan)
	ref := newDiffSide(cores, true, event.DefaultRef, plan)
	runDiffPair(t, "fast", fast, "reference", ref, seed)
}

// runSchedulerDifferential holds the containers fixed (fast path on
// both sides) and varies only the event-queue engine: one machine on
// the time wheel, its twin on the reference binary heap. Identical
// snapshots at every drain point — including the cycle counter, the
// ordered reply log, and every stat — pin the wheel's (cycle, seq) pop
// order to the heap under full coherence traffic.
func runSchedulerDifferential(t *testing.T, seed int64, cores int, plan faults.Plan) {
	t.Helper()
	wheel := newDiffSide(cores, false, false, plan)
	heap := newDiffSide(cores, false, true, plan)
	runDiffPair(t, "wheel", wheel, "heap", heap, seed)
}

func runDiffPair(t *testing.T, aName string, fast *diffSide, bName string, ref *diffSide, seed int64) {
	t.Helper()
	cores := len(fast.r.ps)
	rng := rand.New(rand.NewSource(seed))

	// A line pool with deliberate set pressure: more lines per L1 set
	// than its associativity, so evictions, write-backs, and line-table
	// gc churn constantly.
	var pool []uint64
	for i := 0; i < 256; i++ {
		pool = append(pool, uint64(rng.Intn(64))<<12|uint64(rng.Intn(8))<<6)
	}

	var seq uint64
	for step := 0; step < 60; step++ {
		for op := 0; op < 40; op++ {
			o := rng.Intn(8)
			core := rng.Intn(cores)
			line := pool[rng.Intn(len(pool))]
			off := uint64(rng.Intn(56))
			sz := uint64(1 + rng.Intn(8))
			seq++
			fast.step(o, core, line, off, sz, seq)
			ref.step(o, core, line, off, sz, seq)
			// Let a random amount of machinery run between ops so the
			// comparison also covers mid-transaction states.
			adv := uint64(rng.Intn(64))
			fast.r.q.Drain(fast.r.q.Now() + adv)
			ref.r.q.Drain(ref.r.q.Now() + adv)
		}
		// Drain point: run both machines to quiescence and demand
		// byte-identical state.
		fast.r.q.Drain(fast.r.q.Now() + 1_000_000)
		ref.r.q.Drain(ref.r.q.Now() + 1_000_000)
		fs, rs := fast.snapshot(pool), ref.snapshot(pool)
		if fs != rs {
			t.Fatalf("seed %d drain point %d: %s and %s state diverge\n%s",
				seed, step, aName, bName, firstDiff(fs, rs))
		}
	}
}

// firstDiff renders the first differing line of two snapshots.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  lhs: %s\n  rhs: %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: lhs %d lines, rhs %d lines", len(al), len(bl))
}

// TestDifferentialStateIdentity drives seeded random traffic through a
// fast-container and a reference-container memory system and asserts
// identical state at every drain point.
func TestDifferentialStateIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferential(t, seed, 2, faults.Plan{})
		})
	}
}

// TestDifferentialStateIdentityChaos repeats the comparison with a
// chaos-injector stream active on both sides: NACKs, busy stalls, MSHR
// pressure, and latency jitter push both machines through the retry
// and backoff paths, and the states must still match exactly.
func TestDifferentialStateIdentityChaos(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := faults.Schedule(seed)
			runDifferential(t, int64(seed), 2, plan)
		})
	}
}

// TestDifferentialFourCores widens the comparison to a 4-core machine,
// where directory waiting queues and multi-sharer invalidations carry
// more of the traffic.
func TestDifferentialFourCores(t *testing.T) {
	runDifferential(t, 99, 4, faults.Plan{})
}

// TestDifferentialSchedulerWheelVsHeap pins the time-wheel scheduler's
// pop order to the reference heap under seeded coherence traffic: same
// containers, different event-queue engines, byte-identical state at
// every drain point.
func TestDifferentialSchedulerWheelVsHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runSchedulerDifferential(t, seed, 2, faults.Plan{})
		})
	}
}

// TestDifferentialSchedulerChaos repeats the scheduler comparison with
// a chaos-injector stream active: latency jitter and NACK-driven
// retries reschedule events at adversarial offsets (including the
// wheel-horizon boundary), and the pop order must still match exactly.
func TestDifferentialSchedulerChaos(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := faults.Schedule(seed)
			runSchedulerDifferential(t, int64(seed), 2, plan)
		})
	}
}

// TestDifferentialSchedulerFourCores widens the scheduler comparison
// to a 4-core machine.
func TestDifferentialSchedulerFourCores(t *testing.T) {
	runSchedulerDifferential(t, 99, 4, faults.Plan{})
}
