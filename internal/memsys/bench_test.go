package memsys

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/stats"
)

// benchRig wires cores private hierarchies to one directory without the
// testing.T helpers (benchmarks must not pay t.Helper on the hot path).
func benchRig(cores int) *rig {
	cfg := config.Default().WithCores(cores)
	q := event.NewQueue()
	mem := NewMemory()
	st := stats.NewSet("sys")
	dram := NewDRAM(q, cfg.DRAMLatency, cfg.DRAMMaxInFlight)
	dir := NewDirectory(cfg, q, mem, dram, st)
	ps := make([]*Private, cores)
	for i := range ps {
		ps[i] = NewPrivate(i, cfg, q, dir, stats.NewSet("p"))
	}
	dir.Attach(ps)
	return &rig{cfg: cfg, q: q, mem: mem, dir: dir, ps: ps, st: st}
}

// warmLine pulls a line into the L1 in the requested writability.
func (r *rig) warmLine(b *testing.B, line uint64, writable bool) {
	b.Helper()
	done := false
	if writable {
		if !r.ps[0].RequestWritable(line, false, true, func(ok bool) { done = ok }) {
			b.Fatalf("RequestWritable(%#x) could not start", line)
		}
	} else {
		if !r.ps[0].Load(line, 8, func([]byte) { done = true }) {
			b.Fatalf("Load(%#x) could not start", line)
		}
	}
	r.q.Drain(r.q.Now() + 1_000_000)
	if !done {
		b.Fatalf("warm of %#x never completed", line)
	}
}

// BenchmarkL1LoadHit is the seq-based load path on a resident line —
// the single hottest memsys operation in a simulation.
func BenchmarkL1LoadHit(b *testing.B) {
	r := benchRig(1)
	p := r.ps[0]
	const line = 0x4000
	r.warmLine(b, line, false)
	got := 0
	p.LoadReply = func(seq, data uint64) { got++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.LoadSeq(line+uint64(i%8)*8, 8, uint64(i)) {
			b.Fatal("load did not start")
		}
		r.q.Drain(r.q.Now() + 64)
	}
	if got != b.N {
		b.Fatalf("completed %d of %d loads", got, b.N)
	}
}

// BenchmarkL1StoreHit is a visible store into a held-writable line —
// the baseline/CSB drain hot path.
func BenchmarkL1StoreHit(b *testing.B) {
	r := benchRig(1)
	p := r.ps[0]
	const line = 0x8000
	r.warmLine(b, line, true)
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.StoreVisible(line+uint64(i%8)*8, buf) {
			b.Fatal("store missed a held-writable line")
		}
	}
}

// BenchmarkL1LoadMiss cycles a footprint larger than L1+L2, so loads
// take the full MSHR → directory → LLC fill round trip.
func BenchmarkL1LoadMiss(b *testing.B) {
	r := benchRig(1)
	p := r.ps[0]
	// 4x the L2 line capacity: private levels cannot hold the set.
	lines := 4 * r.cfg.L2.SizeBytes / r.cfg.L2.LineBytes
	got := 0
	p.LoadReply = func(seq, data uint64) { got++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i%lines) << 6) + 0x100000
		if !p.LoadSeq(addr, 8, uint64(i)) {
			b.Fatal("load did not start")
		}
		r.q.Drain(r.q.Now() + 4096)
	}
	if got != b.N {
		b.Fatalf("completed %d of %d loads", got, b.N)
	}
}

// BenchmarkDirectoryProbe bounces write ownership of one line between
// two cores: every request invalidates the other core's copy, so each
// iteration pays a full directory probe round trip.
func BenchmarkDirectoryProbe(b *testing.B) {
	r := benchRig(2)
	const line = 0xC000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := r.ps[i%2]
		ok := false
		if !core.RequestWritable(line, false, true, func(g bool) { ok = g }) {
			b.Fatal("request did not start")
		}
		r.q.Drain(r.q.Now() + 1_000_000)
		if !ok {
			b.Fatal("ownership never granted")
		}
	}
}

// TestL1HitLoadZeroAlloc pins the tentpole invariant: the seq-based
// load path on an L1 hit performs zero allocations end to end,
// including the event-queue traffic that completes it.
func TestL1HitLoadZeroAlloc(t *testing.T) {
	r := benchRig(1)
	p := r.ps[0]
	const line = 0x4000
	done := false
	if !p.Load(line, 8, func([]byte) { done = true }) {
		t.Fatal("warm load did not start")
	}
	r.q.Drain(r.q.Now() + 1_000_000)
	if !done {
		t.Fatal("warm load never completed")
	}
	p.LoadReply = func(seq, data uint64) {}
	var i uint64
	step := func() {
		i++
		if !p.LoadSeq(line, 8, i) {
			t.Fatal("hit load did not start")
		}
		r.q.Drain(r.q.Now() + 64)
	}
	step() // settle event-queue heap capacity
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("L1-hit load allocates %.1f allocs/op, want 0", n)
	}
}

// TestL1HitStoreZeroAlloc pins the same invariant for the visible-store
// hit path (the baseline drain's per-store work).
func TestL1HitStoreZeroAlloc(t *testing.T) {
	r := benchRig(1)
	p := r.ps[0]
	const line = 0x8000
	granted := false
	if !p.RequestWritable(line, false, true, func(ok bool) { granted = ok }) {
		t.Fatal("warm request did not start")
	}
	r.q.Drain(r.q.Now() + 1_000_000)
	if !granted {
		t.Fatal("warm request never granted")
	}
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	step := func() {
		if !p.StoreVisible(line+8, buf) {
			t.Fatal("store missed a held-writable line")
		}
	}
	step()
	if n := testing.AllocsPerRun(1000, step); n != 0 {
		t.Fatalf("L1-hit store allocates %.1f allocs/op, want 0", n)
	}
}
