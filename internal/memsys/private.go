package memsys

import (
	"sort"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/faults"
	"tusim/internal/lmap"
	"tusim/internal/stats"
	"tusim/internal/trace"
)

// MESI is the coherence permission a private hierarchy holds for a line.
type MESI uint8

// Coherence states.
const (
	StateI MESI = iota
	StateS
	StateE
	StateM
)

// String returns the one-letter state name.
func (s MESI) String() string { return [...]string{"I", "S", "E", "M"}[s] }

// PLine is the private hierarchy's view of one cache line. It fuses the
// L1D and private-L2 copies of a line: the L2 copy is the authorized
// backup the coherence protocol can always see, while the L1 copy may
// additionally hold temporarily unauthorized (not-visible) store data.
type PLine struct {
	Line  uint64
	State MESI
	InL1  bool
	InL2  bool
	// L1Data is the core-side copy (possibly containing unauthorized
	// stores); L2Data is the last authorized version.
	L1Data  LineData
	L2Data  LineData
	L1Dirty bool // L1Data is newer than L2Data
	L2Dirty bool // L2Data is newer than the LLC copy

	// TUS state (Sec. IV, Fig. 6): NotVisible hides the L1 copy from
	// coherence; Ready means write permission was obtained and memory
	// data was combined under UMask; UMask marks unauthorized bytes.
	NotVisible bool
	Ready      bool
	UMask      Mask

	lru1, lru2  uint64
	loadWaiters []loadWait
}

// loadWait is one pending read. The hot (core) path identifies the load
// by seq and is answered through the set-once LoadReply callback with
// the bytes packed little-endian into a uint64 — no per-load closure,
// no per-load []byte. cb, when non-nil, overrides that with a one-off
// callback (test rigs and diagnostics).
type loadWait struct {
	addr uint64
	seq  uint64
	size uint8
	cb   func([]byte)
}

type mshrEntry struct {
	line      uint64
	born      uint64 // allocation cycle (age-bound auditing)
	wantM     bool
	upgradeM  bool // a writable request arrived while a GetS was in flight
	autoRetry bool
	// prefetch marks the MSHR-pool class; lowLane additionally routes
	// the DRAM access through the low-priority lane (speculative read
	// prefetches only — write-permission prefetches are accurate and
	// stay on the demand lane).
	prefetch bool
	lowLane  bool
	loads    []loadWait
	writeCbs []func(ok bool)
}

type wbEntry struct {
	data    LineData
	retired bool // a probe already transferred ownership
}

// ProbeKind distinguishes invalidating probes (GetM) from downgrades (GetS).
type ProbeKind uint8

// Probe kinds.
const (
	ProbeInv ProbeKind = iota
	ProbeDowngrade
)

// ProbeResult is the private hierarchy's synchronous answer to a probe.
type ProbeResult uint8

// Probe results.
const (
	// ProbeAck: done; Data is non-nil when the dirty copy travels back.
	ProbeAck ProbeResult = iota
	// ProbeNack: TUS delayed the request (requester must retry).
	ProbeNack
	// ProbeStale: TUS relinquished the line; Data carries the old
	// authorized copy from the private L2 (Sec. III-C step 8).
	ProbeStale
)

// ProbeReply is returned by Private.Probe.
type ProbeReply struct {
	Result ProbeResult
	Data   *LineData
}

// ProbeAction is the UnauthorizedHandler's verdict on an external probe
// hitting a not-visible line the core holds permission for.
type ProbeAction uint8

// Handler verdicts.
const (
	// ActionDelay NACKs the external request (this core's older stores
	// all respect lex order, so it may proceed first).
	ActionDelay ProbeAction = iota
	// ActionRelinquish gives up the permission and serves the stale
	// authorized data from the private L2.
	ActionRelinquish
)

// UnauthorizedHandler is how TUS plugs into the coherence protocol.
// All methods are called synchronously from memory-system events.
type UnauthorizedHandler interface {
	// HandleProbe decides the fate of an external probe that reached a
	// line whose L1 copy is not visible while this core holds write
	// permission for it.
	HandleProbe(line uint64) ProbeAction
	// HandleFill runs after a writable fill merged memory data under
	// the unauthorized mask and marked the line ready.
	HandleFill(line uint64)
	// HandleRelinquish runs after the line's permission was surrendered
	// (the L1 copy reverts to unauthorized).
	HandleRelinquish(line uint64)
}

// Private models one core's L1D + private L2 (both write-back,
// write-allocate, L1D inclusive in L2 — Table I).
//
// Per-line state (lines, MSHRs, writeback buffer) lives in lmap
// open-addressed tables with slab-pooled entry structs, so the
// steady-state hit/miss machinery allocates nothing; see package lmap
// for the reference-mode escape hatch the differential rig uses.
type Private struct {
	ID  int
	cfg *config.Config
	q   *event.Queue
	dir *Directory
	st  *stats.Set

	lines    *lmap.Map[PLine]
	linePool *lmap.Pool[PLine]
	l1Sets   [][]*PLine
	l2Sets   [][]*PLine

	mshrs     *lmap.Map[mshrEntry]
	mshrPool  *lmap.Pool[mshrEntry]
	mshrLimit int
	// prefetch MSHRs live in their own pool so speculative traffic
	// never blocks demand misses.
	prefMSHRs     int
	prefMSHRLimit int
	wb            *lmap.Map[wbEntry]
	wbPool        *lmap.Pool[wbEntry]

	handler UnauthorizedHandler
	lruTick uint64
	faults  *faults.Injector
	// cFaultMSHR counts injected MSHR-pressure faults; allocated only
	// when an injector is installed so fault-free stat sets are
	// unchanged.
	cFaultMSHR *stats.Counter

	// OnDemandMiss lets a prefetcher observe the demand miss stream.
	OnDemandMiss func(addr uint64, store bool)
	// OnStoreVisible fires whenever store bytes become globally visible
	// (consumed by the TSO checker).
	OnStoreVisible func(line uint64, mask Mask, data *LineData)
	// OnLineLost fires when an invalidating probe (a remote writer)
	// arrives for a line, whether or not a copy is still held —
	// directory sharer lists are imprecise. The core's memory-order
	// buffer subscribes to snoop already-bound loads.
	OnLineLost func(line uint64)
	// LoadReply answers LoadSeq reads: seq identifies the load, data
	// carries the bytes packed little-endian. Set once at wiring time
	// (the core installs its reply handler); scheduling replies through
	// this long-lived func is what keeps the load path closure-free.
	LoadReply func(seq, data uint64)

	cL1Hit, cL1Miss, cL2Hit, cL2Miss   *stats.Counter
	cL1Write, cL2Update, cWriteback    *stats.Counter
	cNack, cRelinquish, cPrefetchDrop  *stats.Counter
	cLoads, cFillMerge, cL1SetOverflow *stats.Counter

	hMSHROcc *stats.Histogram

	tr *trace.Tracer
}

// NewPrivate builds the private hierarchy for core id.
func NewPrivate(id int, cfg *config.Config, q *event.Queue, dir *Directory, st *stats.Set) *Private {
	ref := cfg.RefContainers || lmap.DefaultRef
	p := &Private{
		ID:            id,
		cfg:           cfg,
		q:             q,
		dir:           dir,
		st:            st,
		lines:         lmap.NewRef[PLine](ref),
		linePool:      lmap.NewPoolRef[PLine](ref),
		l1Sets:        make([][]*PLine, cfg.L1D.Sets()),
		l2Sets:        make([][]*PLine, cfg.L2.Sets()),
		mshrs:         lmap.NewRef[mshrEntry](ref),
		mshrPool:      lmap.NewPoolRef[mshrEntry](ref),
		mshrLimit:     cfg.L1D.MSHRs,
		prefMSHRLimit: cfg.L1D.MSHRs / 2,
		wb:            lmap.NewRef[wbEntry](ref),
		wbPool:        lmap.NewPoolRef[wbEntry](ref),
	}
	p.cL1Hit = st.Counter("l1d_hits")
	p.cL1Miss = st.Counter("l1d_misses")
	p.cL2Hit = st.Counter("l2_hits")
	p.cL2Miss = st.Counter("l2_misses")
	p.cL1Write = st.Counter("l1d_writes")
	p.cL2Update = st.Counter("l2_updates")
	p.cWriteback = st.Counter("writebacks")
	p.cNack = st.Counter("probe_nacks")
	p.cRelinquish = st.Counter("relinquishes")
	p.cPrefetchDrop = st.Counter("prefetch_drops")
	p.cLoads = st.Counter("l1d_reads")
	p.cFillMerge = st.Counter("tus_fill_merges")
	p.cL1SetOverflow = st.Counter("l1_alloc_fails")
	p.hMSHROcc = st.Histogram("mshr_occupancy")
	return p
}

// SetTracer attaches (or detaches, with nil) the lifecycle tracer.
func (p *Private) SetTracer(t *trace.Tracer) { p.tr = t }

// newLine allocates (from the slab pool) and registers a fully reset
// PLine. The loadWaiters slice keeps its grown capacity across reuse.
func (p *Private) newLine(line uint64) *PLine {
	pl := p.linePool.Get()
	*pl = PLine{Line: line, loadWaiters: pl.loadWaiters[:0]}
	p.lines.Put(line, pl)
	return pl
}

// newMSHR allocates a fully reset miss entry; callers set the request
// flags. loads/writeCbs keep their capacity across reuse.
func (p *Private) newMSHR(line uint64) *mshrEntry {
	m := p.mshrPool.Get()
	*m = mshrEntry{line: line, born: p.q.Now(), loads: m.loads[:0], writeCbs: m.writeCbs[:0]}
	return m
}

// noteMSHRAlloc observes a fresh MSHR allocation (occupancy includes
// the new entry; both demand and prefetch pools count).
func (p *Private) noteMSHRAlloc(line uint64) {
	p.hMSHROcc.Observe(uint64(p.mshrs.Len()))
	p.tr.Emit(trace.MSHRAlloc, int32(p.ID), p.q.Now(), line, 0, uint64(p.mshrs.Len()))
}

// SetHandler installs the TUS handler. Must be called before simulation.
func (p *Private) SetHandler(h UnauthorizedHandler) { p.handler = h }

// SetFaults installs a fault injector (nil disables injection).
func (p *Private) SetFaults(in *faults.Injector) {
	p.faults = in
	if in != nil {
		p.cFaultMSHR = p.st.Counter("fault_mshr_pressure")
	}
}

func (p *Private) l1Set(line uint64) int { return int((line >> 6) % uint64(len(p.l1Sets))) }
func (p *Private) l2Set(line uint64) int { return int((line >> 6) % uint64(len(p.l2Sets))) }

// Lookup returns the private line state, or nil if untracked.
func (p *Private) Lookup(line uint64) *PLine { return p.lines.Get(line & LineMask) }

// Writable reports whether the hierarchy holds E or M permission.
func (p *Private) Writable(line uint64) bool {
	pl := p.lines.Get(line & LineMask)
	return pl != nil && (pl.State == StateE || pl.State == StateM)
}

// MSHRFree reports whether a new demand miss can be tracked.
func (p *Private) MSHRFree() bool {
	if p.faults.MSHRPressure() {
		p.cFaultMSHR.Inc()
		return false
	}
	return p.mshrs.Len()-p.prefMSHRs < p.mshrLimit
}

func (p *Private) touch1(pl *PLine) { p.lruTick++; pl.lru1 = p.lruTick }
func (p *Private) touch2(pl *PLine) { p.lruTick++; pl.lru2 = p.lruTick }

// ---------- Loads ----------

// reply answers one pending load after delay cycles (synchronously when
// delay is 0, matching the fill path's in-event delivery). Seq-path
// replies ride the two-arg event form, so a hit schedules nothing on
// the heap beyond the preallocated item slot.
func (p *Private) reply(lw loadWait, src *LineData, delay uint64) {
	if lw.cb != nil {
		data := extract(src, lw.addr, lw.size)
		if delay == 0 {
			lw.cb(data)
		} else {
			p.q.After(delay, func() { lw.cb(data) })
		}
		return
	}
	packed := extractPacked(src, lw.addr, lw.size)
	if delay == 0 {
		p.LoadReply(lw.seq, packed)
	} else {
		p.q.After2(delay, p.LoadReply, lw.seq, packed)
	}
}

// Load performs a timed read of size bytes at addr. cb receives the
// data when the access completes. It returns false when the access
// cannot even start (MSHRs full); the caller retries next cycle.
func (p *Private) Load(addr uint64, size uint8, cb func([]byte)) bool {
	return p.load(loadWait{addr: addr, size: size, cb: cb})
}

// LoadSeq is the allocation-free form of Load used by the core's issue
// path: the read is identified by seq and answered through LoadReply.
func (p *Private) LoadSeq(addr uint64, size uint8, seq uint64) bool {
	return p.load(loadWait{addr: addr, size: size, seq: seq})
}

func (p *Private) load(lw loadWait) bool {
	line := lw.addr & LineMask
	p.cLoads.Inc()
	pl := p.lines.Get(line)

	if pl != nil && pl.InL1 && pl.NotVisible && !pl.Ready {
		// Unauthorized data without permission. When the written-byte
		// mask fully covers the load, forward from the L1D (the paper's
		// Sec. IV option, realized via a WOQ mask search); otherwise
		// the load is aliased to the line and serviced when the write
		// permission arrives.
		want := MaskFor(lw.addr, lw.size)
		if pl.UMask.Covers(want) {
			p.st.Counter("woq_searches").Inc()
			p.cL1Hit.Inc()
			p.reply(lw, &pl.L1Data, p.cfg.L1D.Latency)
			return true
		}
		pl.loadWaiters = append(pl.loadWaiters, lw)
		return true
	}
	if pl != nil && pl.InL1 && pl.State != StateI {
		p.cL1Hit.Inc()
		p.touch1(pl)
		p.reply(lw, &pl.L1Data, p.cfg.L1D.Latency)
		return true
	}
	if pl != nil && pl.InL2 && pl.State != StateI {
		// L1 miss, private L2 hit: allocate into L1 and serve.
		p.cL1Miss.Inc()
		p.cL2Hit.Inc()
		if p.allocL1(pl) {
			pl.L1Data = pl.L2Data
			pl.L1Dirty = false
		}
		p.touch2(pl)
		p.reply(lw, &pl.L2Data, p.cfg.L2.Latency)
		return true
	}
	// Full miss.
	if m := p.mshrs.Get(line); m != nil {
		m.loads = append(m.loads, lw)
		return true
	}
	if !p.MSHRFree() {
		return false
	}
	p.cL1Miss.Inc()
	p.cL2Miss.Inc()
	if p.OnDemandMiss != nil {
		p.OnDemandMiss(lw.addr, false)
	}
	m := p.newMSHR(line)
	m.autoRetry = true
	m.loads = append(m.loads, lw)
	p.mshrs.Put(line, m)
	p.noteMSHRAlloc(line)
	p.send(m)
	return true
}

// PrefetchRead starts a read (GetS) prefetch for line: a load miss
// without a consumer. Prefetches are dropped when MSHRs run low and
// never observe the demand-miss stream (no prefetcher feedback loops).
func (p *Private) PrefetchRead(line uint64) bool {
	line &= LineMask
	pl := p.lines.Get(line)
	if pl != nil && ((pl.InL1 || pl.InL2) && pl.State != StateI || pl.NotVisible) {
		return false
	}
	if p.mshrs.Get(line) != nil {
		return false
	}
	if p.prefMSHRs >= p.prefMSHRLimit {
		p.cPrefetchDrop.Inc()
		return false
	}
	p.cL2Miss.Inc()
	m := p.newMSHR(line)
	m.prefetch = true
	m.lowLane = true
	p.mshrs.Put(line, m)
	p.prefMSHRs++
	p.noteMSHRAlloc(line)
	p.send(m)
	return true
}

// ---------- Write-permission requests ----------

// RequestWritable asks for E/M permission on line. With autoRetry the
// request is retried internally after NACKs until it succeeds and cb
// always eventually fires with ok=true; without it a NACK frees the
// MSHR and reports ok=false so the caller (TUS) can re-request under
// its lex-order rule. prefetch requests are dropped (cb never called)
// when MSHRs run low. Returns false if nothing could be started.
func (p *Private) RequestWritable(line uint64, prefetch, autoRetry bool, cb func(ok bool)) bool {
	line &= LineMask
	if p.Writable(line) {
		if cb != nil {
			p.q.After(0, func() { cb(true) })
		}
		return true
	}
	if m := p.mshrs.Get(line); m != nil {
		if !m.wantM {
			m.upgradeM = true
		}
		if cb != nil {
			// A controlled (TUS) requester simply shares the outcome of
			// whatever request is already in flight.
			m.writeCbs = append(m.writeCbs, cb)
		}
		return true
	}
	if prefetch && p.prefMSHRs >= p.prefMSHRLimit {
		p.cPrefetchDrop.Inc()
		return false
	}
	if !prefetch && !p.MSHRFree() {
		return false
	}
	p.cL2Miss.Inc()
	m := p.newMSHR(line)
	m.wantM = true
	m.autoRetry = autoRetry
	m.prefetch = prefetch
	if cb != nil {
		m.writeCbs = append(m.writeCbs, cb)
	}
	p.mshrs.Put(line, m)
	if prefetch {
		p.prefMSHRs++
	}
	p.noteMSHRAlloc(line)
	p.send(m)
	return true
}

func (p *Private) send(m *mshrEntry) {
	p.dir.Request(p.ID, m.line, m.wantM, m.lowLane, func(ok bool, data *LineData, excl bool) {
		if !ok {
			if m.autoRetry {
				p.q.After(p.cfg.NetLatency, func() { p.send(m) })
				return
			}
			p.freeMSHR(m)
			for _, cb := range m.writeCbs {
				cb(false)
			}
			// Pending loads must not be dropped: reissue as a fresh
			// auto-retried read request.
			if len(m.loads) > 0 {
				m2 := p.newMSHR(m.line)
				m2.autoRetry = true
				m2.loads, m.loads = m.loads, m2.loads
				p.mshrs.Put(m2.line, m2)
				p.noteMSHRAlloc(m2.line)
				p.send(m2)
			}
			p.mshrPool.Put(m)
			return
		}
		p.fill(m, data, excl)
	})
}

// freeMSHR retires an MSHR, removing it from the tracking table. The
// struct itself returns to the pool at the caller's terminal point
// (after its loads/writeCbs have been consumed).
func (p *Private) freeMSHR(m *mshrEntry) {
	if p.mshrs.Get(m.line) == m {
		p.mshrs.Delete(m.line)
		now := p.q.Now()
		var lat uint64
		if now >= m.born {
			lat = now - m.born
		}
		p.tr.Emit(trace.MSHRFree, int32(p.ID), now, m.line, 0, lat)
	}
	if m.prefetch {
		p.prefMSHRs--
	}
}

// fill applies a directory response. Runs inside the response event.
func (p *Private) fill(m *mshrEntry, data *LineData, excl bool) {
	line := m.line
	pl := p.lines.Get(line)
	if pl == nil {
		pl = p.newLine(line)
	}
	// Allocate in the private L2 (inclusive point).
	if !pl.InL2 {
		p.allocL2(pl)
	}
	pl.L2Data = *data
	pl.L2Dirty = false
	p.touch2(pl)

	switch {
	case m.wantM:
		pl.State = StateM
	case excl:
		pl.State = StateE
	default:
		pl.State = StateS
	}

	if pl.NotVisible && (pl.State == StateM || pl.State == StateE) {
		// TUS: write permission granted — combine memory data with the
		// unauthorized bytes (Fig. 7 (4)).
		if !pl.InL1 {
			// Invariant: not-visible lines are pinned in L1 (l1Evictable
			// excludes them), so a writable fill must find the L1 copy.
			panic(faults.Violationf("memsys", p.ID, line, "notvisible-in-l1",
				"not-visible line lost its L1 copy during writable fill"))
		}
		inv := ^pl.UMask
		Merge(&pl.L1Data, data, inv)
		pl.Ready = true
		pl.L1Dirty = true
		p.cFillMerge.Inc()
		if p.handler != nil {
			p.handler.HandleFill(line)
		}
	} else if pl.NotVisible {
		// A read (S) fill reached a line holding unauthorized data —
		// e.g. a stale prefetch. The L2 copy was updated above; the
		// unauthorized L1 stash stays untouched and not ready until a
		// writable fill arrives.
	} else {
		if !pl.InL1 {
			if p.allocL1(pl) {
				pl.L1Data = *data
				pl.L1Dirty = false
			}
		} else {
			pl.L1Data = *data
			pl.L1Dirty = false
		}
	}

	p.freeMSHR(m)

	for _, lw := range m.loads {
		if pl.NotVisible && !pl.Ready {
			// The line turned unauthorized while this read was in
			// flight: alias the load until permission arrives, like
			// any other load to an unauthorized line.
			pl.loadWaiters = append(pl.loadWaiters, lw)
			continue
		}
		src := &pl.L2Data
		if pl.InL1 {
			src = &pl.L1Data
		}
		p.reply(lw, src, 0)
	}

	if m.upgradeM && pl.State == StateS {
		// A writable request piggybacked on an in-flight read: the read
		// was granted shared, so chase it with a proper GetM carrying
		// the write callbacks forward.
		m2 := p.newMSHR(line)
		m2.wantM = true
		m2.autoRetry = true
		m2.writeCbs, m.writeCbs = m.writeCbs, m2.writeCbs
		p.mshrs.Put(line, m2)
		p.noteMSHRAlloc(line)
		p.send(m2)
	} else {
		for _, cb := range m.writeCbs {
			cb(true)
		}
	}
	p.wakeLoadWaiters(pl)
	p.mshrPool.Put(m)
}

func (p *Private) wakeLoadWaiters(pl *PLine) {
	if pl.NotVisible && !pl.Ready {
		return
	}
	ws := pl.loadWaiters
	pl.loadWaiters = nil // not [:0]: replies may re-append while we iterate
	for _, lw := range ws {
		p.reply(lw, &pl.L1Data, p.cfg.L1D.Latency)
	}
}

// ---------- Visible stores (baseline, CSB, SSB, TUS-authorized) ----------

// StoreVisible writes data at addr into a line the hierarchy holds
// writable, making it coherently visible immediately. Returns false if
// the line is not writable or not allocatable in L1.
func (p *Private) StoreVisible(addr uint64, data []byte) bool {
	line := addr & LineMask
	pl := p.lines.Get(line)
	if pl == nil || (pl.State != StateE && pl.State != StateM) {
		return false
	}
	if pl.NotVisible {
		panic(faults.Violationf("memsys", p.ID, line, "visible-store-path",
			"StoreVisible on a not-visible line; use the TUS paths"))
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			return false
		}
		pl.L1Data = pl.L2Data
		pl.L1Dirty = false
		p.cL2Hit.Inc()
	}
	off := addr & (LineBytes - 1)
	copy(pl.L1Data[off:], data)
	pl.State = StateM
	pl.L1Dirty = true
	p.touch1(pl)
	p.cL1Write.Inc()
	if p.OnStoreVisible != nil {
		p.OnStoreVisible(line, MaskFor(addr, uint8(len(data))), &pl.L1Data)
	}
	return true
}

// StoreVisibleLine writes an entire coalesced mask of bytes into a
// writable line (CSB's atomic group writes). Returns false if the line
// is not writable or not allocatable in L1.
func (p *Private) StoreVisibleLine(line uint64, data *LineData, mask Mask) bool {
	line &= LineMask
	pl := p.lines.Get(line)
	if pl == nil || (pl.State != StateE && pl.State != StateM) {
		return false
	}
	if pl.NotVisible {
		panic(faults.Violationf("memsys", p.ID, line, "visible-store-path",
			"StoreVisibleLine on a not-visible line"))
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			return false
		}
		pl.L1Data = pl.L2Data
		pl.L1Dirty = false
	}
	Merge(&pl.L1Data, data, mask)
	pl.State = StateM
	pl.L1Dirty = true
	p.touch1(pl)
	p.cL1Write.Inc()
	p.tr.Emit(trace.StoreVisibleEv, int32(p.ID), p.q.Now(), line, 0, 0)
	if p.OnStoreVisible != nil {
		p.OnStoreVisible(line, mask, &pl.L1Data)
	}
	return true
}

// ---------- TUS store paths ----------

// StoreUnauthorizedLine is the line-granular unauthorized write used
// when a WCB flushes a coalesced group into the L1D.
func (p *Private) StoreUnauthorizedLine(line uint64, data *LineData, mask Mask) bool {
	line &= LineMask
	pl := p.lines.Get(line)
	if pl == nil {
		pl = p.newLine(line)
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			p.cL1SetOverflow.Inc()
			return false
		}
		if pl.InL2 {
			pl.L1Data = pl.L2Data
		} else {
			pl.L1Data = LineData{}
		}
		pl.L1Dirty = false
	}
	Merge(&pl.L1Data, data, mask)
	pl.UMask |= mask
	pl.NotVisible = true
	pl.Ready = false
	p.touch1(pl)
	p.cL1Write.Inc()
	return true
}

// StoreUnauthorizedHitLine coalesces a mask of bytes into an existing
// not-visible line (WOQ-level store cycle).
func (p *Private) StoreUnauthorizedHitLine(line uint64, data *LineData, mask Mask) {
	line &= LineMask
	pl := p.lines.Get(line)
	if pl == nil || !pl.NotVisible || !pl.InL1 {
		panic(faults.Violationf("memsys", p.ID, line, "unauthorized-resident",
			"StoreUnauthorizedHitLine on a line that is not an unauthorized L1 resident"))
	}
	Merge(&pl.L1Data, data, mask)
	pl.UMask |= mask
	p.touch1(pl)
	p.cL1Write.Inc()
}

// StoreOverVisibleLine is the line-granular "authorized hit" TUS path.
func (p *Private) StoreOverVisibleLine(line uint64, data *LineData, mask Mask) bool {
	line &= LineMask
	pl := p.lines.Get(line)
	if pl == nil || (pl.State != StateE && pl.State != StateM) || pl.NotVisible {
		return false
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			return false
		}
		pl.L1Data = pl.L2Data
		pl.L1Dirty = false
	}
	if !pl.InL2 {
		p.allocL2(pl)
	}
	pl.L2Data = pl.L1Data
	pl.L2Dirty = pl.L2Dirty || pl.L1Dirty
	p.cL2Update.Inc()

	Merge(&pl.L1Data, data, mask)
	pl.UMask = mask
	pl.NotVisible = true
	pl.Ready = true
	pl.State = StateM
	p.touch1(pl)
	p.cL1Write.Inc()
	return true
}

// StoreUnauthorized places store bytes in L1 without permission,
// marking the line not visible (Fig. 7 left path). If the line is
// absent it is allocated; if present and visible-but-unwritable (S),
// the read permission is kept but the copy becomes invisible. Returns
// false when no L1 way can host the line.
func (p *Private) StoreUnauthorized(addr uint64, data []byte) bool {
	line := addr & LineMask
	pl := p.lines.Get(line)
	if pl == nil {
		pl = p.newLine(line)
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			p.cL1SetOverflow.Inc()
			return false
		}
		if pl.InL2 {
			pl.L1Data = pl.L2Data
		} else {
			pl.L1Data = LineData{}
		}
		pl.L1Dirty = false
	}
	off := addr & (LineBytes - 1)
	copy(pl.L1Data[off:], data)
	pl.UMask |= MaskFor(addr, uint8(len(data)))
	pl.NotVisible = true
	pl.Ready = false
	p.touch1(pl)
	p.cL1Write.Inc()
	return true
}

// StoreUnauthorizedHit coalesces more bytes into an existing
// not-visible line (a store cycle, Sec. III-B). The caller must have
// verified the line is not visible.
func (p *Private) StoreUnauthorizedHit(addr uint64, data []byte) {
	line := addr & LineMask
	pl := p.lines.Get(line)
	if pl == nil || !pl.NotVisible || !pl.InL1 {
		panic(faults.Violationf("memsys", p.ID, line, "unauthorized-resident",
			"StoreUnauthorizedHit on a line that is not an unauthorized L1 resident"))
	}
	off := addr & (LineBytes - 1)
	copy(pl.L1Data[off:], data)
	pl.UMask |= MaskFor(addr, uint8(len(data)))
	p.touch1(pl)
	p.cL1Write.Inc()
}

// StoreOverVisible implements the TUS "authorized hit on a modified
// line" path (Fig. 7 (3)): the current data is first pushed to the
// private L2 so a valid authorized copy survives, then the new bytes
// are written and the line turns not-visible but ready.
func (p *Private) StoreOverVisible(addr uint64, data []byte) bool {
	line := addr & LineMask
	pl := p.lines.Get(line)
	if pl == nil || (pl.State != StateE && pl.State != StateM) || pl.NotVisible {
		return false
	}
	if !pl.InL1 {
		if !p.allocL1(pl) {
			return false
		}
		pl.L1Data = pl.L2Data
		pl.L1Dirty = false
	}
	// Push the authorized copy down (energy: an L2 update, Sec. VI-A).
	if !pl.InL2 {
		p.allocL2(pl)
	}
	pl.L2Data = pl.L1Data
	pl.L2Dirty = pl.L2Dirty || pl.L1Dirty
	p.cL2Update.Inc()

	off := addr & (LineBytes - 1)
	copy(pl.L1Data[off:], data)
	pl.UMask = MaskFor(addr, uint8(len(data)))
	pl.NotVisible = true
	pl.Ready = true
	pl.State = StateM
	p.touch1(pl)
	p.cL1Write.Inc()
	return true
}

// MakeVisible flips a ready not-visible line into an ordinary modified
// line, publishing its bytes to the coherent world.
func (p *Private) MakeVisible(line uint64) {
	pl := p.lines.Get(line & LineMask)
	if pl == nil || !pl.NotVisible || !pl.Ready {
		panic(faults.Violationf("memsys", p.ID, line&LineMask, "makevisible-ready",
			"MakeVisible on a line that is not ready"))
	}
	if pl.State != StateM && pl.State != StateE {
		panic(faults.Violationf("memsys", p.ID, line&LineMask, "makevisible-perm",
			"MakeVisible without permission (state %v)", pl.State))
	}
	mask := pl.UMask
	pl.NotVisible = false
	pl.Ready = false
	pl.UMask = 0
	pl.State = StateM
	pl.L1Dirty = true
	p.tr.Emit(trace.StoreVisibleEv, int32(p.ID), p.q.Now(), pl.Line, 0, 0)
	if p.OnStoreVisible != nil {
		p.OnStoreVisible(pl.Line, mask, &pl.L1Data)
	}
	p.wakeLoadWaiters(pl)
}

// ---------- Capacity management ----------

// L1WaysAvailable reports whether all the given lines could reside in
// L1 simultaneously (the atomic-group associativity restriction,
// Sec. III-B). Lines already resident count as satisfied.
func (p *Private) L1WaysAvailable(lines []uint64) bool {
	need := map[int]int{}
	for _, ln := range lines {
		ln &= LineMask
		pl := p.lines.Get(ln)
		if pl != nil && pl.InL1 {
			continue
		}
		need[p.l1Set(ln)]++
	}
	for set, n := range need {
		free := p.cfg.L1D.Ways - len(p.l1Sets[set])
		evictable := 0
		for _, v := range p.l1Sets[set] {
			if p.l1Evictable(v) {
				evictable++
			}
		}
		if free+evictable < n {
			return false
		}
	}
	return true
}

func (p *Private) l1Evictable(pl *PLine) bool {
	return !pl.NotVisible && p.mshrs.Get(pl.Line) == nil && len(pl.loadWaiters) == 0
}

// allocL1 places pl into its L1 set, evicting if needed. Returns false
// when every way is pinned (locked or not visible).
func (p *Private) allocL1(pl *PLine) bool {
	set := p.l1Set(pl.Line)
	ways := p.l1Sets[set]
	if len(ways) >= p.cfg.L1D.Ways {
		victim := p.pickL1Victim(ways)
		if victim == nil {
			return false
		}
		p.evictL1(victim)
	}
	p.l1Sets[set] = append(p.l1Sets[set], pl)
	pl.InL1 = true
	p.touch1(pl)
	return true
}

func (p *Private) pickL1Victim(ways []*PLine) *PLine {
	var victim *PLine
	for _, w := range ways {
		if !p.l1Evictable(w) {
			continue
		}
		if victim == nil || w.lru1 < victim.lru1 {
			victim = w
		}
	}
	return victim
}

// evictL1 removes pl from L1, writing dirty data back into the L2 copy.
func (p *Private) evictL1(pl *PLine) {
	set := p.l1Set(pl.Line)
	p.l1Sets[set] = remove(p.l1Sets[set], pl)
	pl.InL1 = false
	if pl.L1Dirty {
		if !pl.InL2 {
			p.allocL2(pl)
		}
		pl.L2Data = pl.L1Data
		pl.L2Dirty = true
		pl.L1Dirty = false
		p.cL2Update.Inc()
	}
	p.gc(pl)
}

// allocL2 places pl into its L2 set, evicting (and recalling from L1)
// as needed. The L2 has 16 ways; when every way is pinned we allow a
// temporary overflow and count it rather than deadlock the fill path.
func (p *Private) allocL2(pl *PLine) {
	set := p.l2Set(pl.Line)
	ways := p.l2Sets[set]
	if len(ways) >= p.cfg.L2.Ways {
		var victim *PLine
		for _, w := range ways {
			if w.NotVisible || p.mshrs.Get(w.Line) != nil || len(w.loadWaiters) > 0 {
				continue // inclusive: cannot evict below a pinned L1 line
			}
			if victim == nil || w.lru2 < victim.lru2 {
				victim = w
			}
		}
		if victim != nil {
			p.evictL2(victim)
		} else {
			p.st.Counter("l2_set_overflow").Inc()
		}
	}
	p.l2Sets[set] = append(p.l2Sets[set], pl)
	pl.InL2 = true
	p.touch2(pl)
}

// evictL2 removes pl from the hierarchy entirely (inclusive), issuing a
// writeback when this hierarchy owns the line or holds dirty data.
func (p *Private) evictL2(pl *PLine) {
	if pl.InL1 {
		p.evictL1(pl)
	}
	p.dropL2(pl)
	owned := pl.State == StateM || pl.State == StateE
	dirty := pl.L2Dirty
	if owned || dirty {
		data := pl.L2Data
		p.writeBack(pl.Line, &data)
	}
	pl.State = StateI
	pl.L2Dirty = false
	p.gc(pl)
}

func (p *Private) dropL2(pl *PLine) {
	if !pl.InL2 {
		return
	}
	set := p.l2Set(pl.Line)
	p.l2Sets[set] = remove(p.l2Sets[set], pl)
	pl.InL2 = false
}

// gc forgets a line that holds no state worth tracking, returning the
// struct to the slab pool.
func (p *Private) gc(pl *PLine) {
	if pl.InL1 || pl.InL2 || pl.NotVisible || pl.State != StateI ||
		p.mshrs.Get(pl.Line) != nil || len(pl.loadWaiters) > 0 {
		return
	}
	p.lines.Delete(pl.Line)
	p.linePool.Put(pl)
}

func remove(s []*PLine, x *PLine) []*PLine {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// writeBack sends the data to the directory, retrying NACKs from a
// writeback buffer that external probes can also service.
func (p *Private) writeBack(line uint64, data *LineData) {
	p.cWriteback.Inc()
	e := p.wbPool.Get()
	*e = wbEntry{data: *data}
	p.wb.Put(line, e)
	var try func()
	done := func() {
		p.wb.Delete(line)
		p.wbPool.Put(e)
	}
	try = func() {
		if e.retired {
			done()
			return
		}
		p.dir.WriteBack(p.ID, line, &e.data, func(ok bool) {
			if !ok && !e.retired {
				p.q.After(p.cfg.NetLatency, try)
				return
			}
			done()
		})
	}
	try()
}

// ---------- Probes ----------

// Probe handles an external coherence request delivered by the
// directory. It runs synchronously at probe-arrival time.
func (p *Private) Probe(line uint64, kind ProbeKind) ProbeReply {
	line &= LineMask
	p.tr.Emit(trace.ProbeRecv, int32(p.ID), p.q.Now(), line, 0, uint64(kind))
	if kind == ProbeInv && p.OnLineLost != nil {
		p.OnLineLost(line)
	}
	if e := p.wb.Get(line); e != nil {
		// The line was being written back; hand the data over directly.
		e.retired = true
		d := e.data
		return ProbeReply{Result: ProbeAck, Data: &d}
	}
	pl := p.lines.Get(line)
	if pl == nil || (pl.State == StateI && !pl.NotVisible) {
		return ProbeReply{Result: ProbeAck}
	}

	if pl.NotVisible && (pl.State == StateM || pl.State == StateE) {
		// The probed line holds unauthorized data under our write
		// permission: defer to the authorization unit (Sec. III-C).
		action := ActionDelay
		if p.handler != nil {
			action = p.handler.HandleProbe(line)
		}
		if action == ActionDelay {
			p.cNack.Inc()
			p.tr.Emit(trace.ProbeNackEv, int32(p.ID), p.q.Now(), line, 0, 0)
			return ProbeReply{Result: ProbeNack}
		}
		p.cRelinquish.Inc()
		old := pl.L2Data
		pl.State = StateI
		pl.Ready = false
		p.dropL2(pl)
		if p.handler != nil {
			p.handler.HandleRelinquish(line)
		}
		return ProbeReply{Result: ProbeStale, Data: &old}
	}

	if pl.NotVisible {
		// Unauthorized stash without permission; we are at most a
		// sharer in the directory's eyes. Drop the read permission but
		// keep the stash.
		pl.State = StateI
		p.dropL2(pl)
		return ProbeReply{Result: ProbeAck}
	}

	var data *LineData
	dirty := pl.L1Dirty || pl.L2Dirty || pl.State == StateM
	if dirty {
		d := pl.L2Data
		if pl.InL1 && pl.L1Dirty {
			d = pl.L1Data
		}
		data = &d
	}
	switch kind {
	case ProbeInv:
		pl.State = StateI
		if pl.InL1 {
			p.evictL1noWB(pl)
		}
		p.dropL2(pl)
		pl.L1Dirty, pl.L2Dirty = false, false
		p.gc(pl)
	case ProbeDowngrade:
		pl.State = StateS
		if pl.InL1 && pl.L1Dirty {
			pl.L2Data = pl.L1Data
		}
		pl.L1Dirty, pl.L2Dirty = false, false
	}
	return ProbeReply{Result: ProbeAck, Data: data}
}

// evictL1noWB removes the L1 residency without pushing data to L2
// (used on invalidation, where the data already left via the probe).
func (p *Private) evictL1noWB(pl *PLine) {
	set := p.l1Set(pl.Line)
	p.l1Sets[set] = remove(p.l1Sets[set], pl)
	pl.InL1 = false
}

// ---------- Audit / chaos hooks ----------

// AuditLines visits every tracked line in ascending address order. The
// sorted walk keeps auditor reports deterministic across runs (neither
// map implementation has a meaningful iteration order).
func (p *Private) AuditLines(visit func(pl *PLine)) {
	keys := make([]uint64, 0, p.lines.Len())
	p.lines.Range(func(k uint64, _ *PLine) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		visit(p.lines.Get(k))
	}
}

// AuditMSHRs visits every in-flight miss in ascending line order.
func (p *Private) AuditMSHRs(visit func(line, born uint64, wantM, prefetch bool)) {
	keys := make([]uint64, 0, p.mshrs.Len())
	p.mshrs.Range(func(k uint64, _ *mshrEntry) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		m := p.mshrs.Get(k)
		visit(m.line, m.born, m.wantM, m.prefetch)
	}
}

// WBPending reports whether line sits in the writeback buffer (its
// directory state is transiently out of sync while the WB is in flight).
func (p *Private) WBPending(line uint64) bool {
	return p.wb.Get(line&LineMask) != nil
}

// MSHRPending reports whether a miss for line is in flight.
func (p *Private) MSHRPending(line uint64) bool { return p.mshrs.Get(line&LineMask) != nil }

// SabotageHideLine deliberately corrupts state for crash-pipeline
// testing: the lowest-addressed unauthorized (not-visible, not-ready)
// L1 resident is silently flipped to visible with its unauthorized mask
// cleared, which the invariant auditor must catch as a WOQ/L1
// disagreement. Returns the corrupted line, or ok=false when no
// candidate exists yet.
func (p *Private) SabotageHideLine() (uint64, bool) {
	var best uint64
	found := false
	p.lines.Range(func(k uint64, pl *PLine) {
		if !pl.NotVisible || pl.Ready || !pl.InL1 {
			return
		}
		if !found || k < best {
			best = k
			found = true
		}
	})
	if !found {
		return 0, false
	}
	pl := p.lines.Get(best)
	pl.NotVisible = false
	pl.UMask = 0
	return best, true
}

// extract copies size bytes at addr out of a line.
func extract(l *LineData, addr uint64, size uint8) []byte {
	off := addr & (LineBytes - 1)
	out := make([]byte, size)
	copy(out, l[off:])
	return out
}

// extractPacked packs size bytes at addr into a uint64, little-endian
// (byte i of the line lands in bits 8i..8i+7, matching what copying
// into a [8]byte and decoding with encoding/binary would produce). It
// is the allocation-free twin of extract for the seq-based load path.
func extractPacked(l *LineData, addr uint64, size uint8) uint64 {
	off := addr & (LineBytes - 1)
	var v uint64
	for i := uint64(0); i < uint64(size); i++ {
		v |= uint64(l[off+i]) << (8 * i)
	}
	return v
}
