package memsys

import (
	"testing"
	"testing/quick"

	"tusim/internal/event"
)

func TestMaskFor(t *testing.T) {
	cases := []struct {
		addr uint64
		size uint8
		want Mask
	}{
		{0x1000, 1, 0x1},
		{0x1001, 1, 0x2},
		{0x1000, 8, 0xFF},
		{0x1038, 8, Mask(0xFF) << 56},
		{0x1004, 4, 0xF0},
		{0x1000, 0, 0},
	}
	for _, c := range cases {
		if got := MaskFor(c.addr, c.size); got != c.want {
			t.Errorf("MaskFor(%#x,%d) = %#x, want %#x", c.addr, c.size, got, c.want)
		}
	}
}

func TestMaskCoversOverlaps(t *testing.T) {
	m := MaskFor(0x1000, 8)
	if !m.Covers(MaskFor(0x1002, 4)) {
		t.Error("8B mask must cover contained 4B")
	}
	if m.Covers(MaskFor(0x1006, 4)) {
		t.Error("mask must not cover partially overlapping range")
	}
	if !m.Overlaps(MaskFor(0x1006, 4)) {
		t.Error("partial ranges overlap")
	}
	if m.Overlaps(MaskFor(0x1008, 4)) {
		t.Error("disjoint ranges do not overlap")
	}
}

func TestMerge(t *testing.T) {
	var dst, src LineData
	for i := range src {
		src[i] = byte(i + 1)
	}
	Merge(&dst, &src, MaskFor(0x4, 4))
	for i := 0; i < LineBytes; i++ {
		want := byte(0)
		if i >= 4 && i < 8 {
			want = byte(i + 1)
		}
		if dst[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], want)
		}
	}
}

// Property: Merge with mask m then with ^m reconstructs src entirely.
func TestMergeComplementProperty(t *testing.T) {
	f := func(m uint64, seed byte) bool {
		var dst, src LineData
		for i := range src {
			src[i] = seed ^ byte(i)
		}
		Merge(&dst, &src, Mask(m))
		Merge(&dst, &src, ^Mask(m))
		return dst == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	var d LineData
	d[0] = 99
	m.ReadLine(0x4000, &d)
	if d != (LineData{}) {
		t.Fatal("unwritten memory must read zero")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	var w LineData
	for i := range w {
		w[i] = byte(i * 3)
	}
	m.WriteLine(0x1040, &w)
	var r LineData
	m.ReadLine(0x1040, &r)
	if r != w {
		t.Fatal("read != write")
	}
	// Offsets within the line address the same line.
	m.ReadLine(0x105F, &r)
	if r != w {
		t.Fatal("line addressing must ignore offset bits")
	}
}

func TestDRAMLatency(t *testing.T) {
	q := event.NewQueue()
	d := NewDRAM(q, 160, 32)
	done := uint64(0)
	d.Access(func() { done = q.Now() })
	q.Drain(1 << 20)
	if done != 160 {
		t.Fatalf("DRAM access completed at %d, want 160", done)
	}
	if d.Accesses != 1 {
		t.Fatalf("Accesses = %d", d.Accesses)
	}
}

func TestDRAMBandwidthBound(t *testing.T) {
	q := event.NewQueue()
	d := NewDRAM(q, 100, 2)
	var finishes []uint64
	for i := 0; i < 4; i++ {
		d.Access(func() { finishes = append(finishes, q.Now()) })
	}
	if d.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2 (bounded)", d.InFlight())
	}
	q.Drain(1 << 20)
	if len(finishes) != 4 {
		t.Fatalf("only %d accesses completed", len(finishes))
	}
	// First two at 100, next two serialized behind them at 200.
	if finishes[0] != 100 || finishes[1] != 100 || finishes[2] != 200 || finishes[3] != 200 {
		t.Fatalf("finish times %v, want [100 100 200 200]", finishes)
	}
}
