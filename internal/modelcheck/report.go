package modelcheck

import (
	"fmt"
	"io"
	"sort"

	"tusim/internal/config"
	"tusim/internal/harness"
	"tusim/internal/litmus"
)

// Report is the comparator's verdict for one (program, mechanism)
// cell: the simulator's bounded-exhaustively observed outcome set
// diffed against the oracle's exact TSO-allowed set.
type Report struct {
	Test string
	Mech config.Mechanism

	Oracle      *OracleResult
	Exploration *Exploration

	// Unsound lists outcome keys the simulator produced that TSO
	// forbids — each one is a real protocol bug.
	Unsound []string
	// Uncovered lists TSO-allowed outcome keys no explored schedule
	// produced. Coverage information, not failure: mechanisms are free
	// to be stricter than TSO (atomic groups are), and bounded budgets
	// miss behaviours.
	Uncovered []string
	// Violation carries the failing run when the cell is unsound (or a
	// run crashed); Bundle is its minimal replayable schedule.
	Violation *Violation
	Bundle    *harness.ReproBundle
}

// Sound reports whether the simulator stayed inside the TSO-allowed
// outcome set and no run failed its checker/auditor.
func (r *Report) Sound() bool { return len(r.Unsound) == 0 && r.Violation == nil }

// Coverage returns observed-allowed and total-allowed outcome counts.
func (r *Report) Coverage() (got, total int) {
	total = len(r.Oracle.Outcomes)
	for k := range r.Oracle.Outcomes {
		if _, ok := r.Exploration.Outcomes[k]; ok {
			got++
		}
	}
	return got, total
}

// bundle builds the replayable schedule for a violating run.
func (r *Report) bundle(ref runRef) *harness.ReproBundle {
	return &harness.ReproBundle{
		Kind:       "litmus",
		Name:       r.Test,
		Mechanism:  r.Mech.String(),
		Skew:       ref.Skew,
		AuditEvery: r.Exploration.AuditEvery,
		Faults:     r.Exploration.Plan,
		Script:     ref.Script,
		Scripted:   true,
	}
}

// Check model-checks one litmus program under one mechanism: exact
// oracle enumeration, bounded-exhaustive schedule exploration of the
// real simulator, then the diff. The returned error is reserved for
// harness problems (program not exportable, oracle budget exceeded);
// protocol violations land in the Report, with a repro bundle.
func Check(test litmus.Test, m config.Mechanism, eo ExploreOpts, lim Limits) (*Report, error) {
	p, err := test.Program()
	if err != nil {
		return nil, err
	}
	oracle := Enumerate(p, lim)
	if !oracle.Complete {
		return nil, fmt.Errorf("modelcheck: oracle state budget exceeded on %s (%d states); raise Limits.MaxStates",
			test.Name, oracle.States)
	}

	ex := Explore(test, m, eo)
	r := &Report{Test: test.Name, Mech: m, Oracle: oracle, Exploration: ex}

	for key := range ex.Outcomes {
		if _, ok := oracle.Outcomes[key]; !ok {
			r.Unsound = append(r.Unsound, key)
		}
	}
	sort.Strings(r.Unsound)
	for _, key := range oracle.SortedKeys() {
		if _, ok := ex.Outcomes[key]; !ok {
			r.Uncovered = append(r.Uncovered, key)
		}
	}

	switch {
	case ex.Violation != nil:
		r.Violation = ex.Violation
	case len(r.Unsound) > 0:
		r.Violation = &Violation{
			Ref:     ex.First[r.Unsound[0]],
			Outcome: ex.Vecs[r.Unsound[0]],
			Reason:  fmt.Sprintf("outcome %s is outside the TSO-allowed set", r.Unsound[0]),
		}
	}
	if r.Violation != nil {
		r.Bundle = r.bundle(r.Violation.Ref)
	}
	return r, nil
}

// CheckSuite runs Check over a set of programs × mechanisms, stopping
// at the first unsound cell. Results arrive in deterministic order.
func CheckSuite(tests []litmus.Test, mechs []config.Mechanism, eo ExploreOpts, lim Limits) ([]*Report, error) {
	var out []*Report
	for _, test := range tests {
		for _, m := range mechs {
			r, err := Check(test, m, eo, lim)
			if err != nil {
				return out, err
			}
			out = append(out, r)
			if !r.Sound() {
				return out, nil
			}
		}
	}
	return out, nil
}

// Write renders the report compactly.
func (r *Report) Write(w io.Writer) {
	got, total := r.Coverage()
	status := "SOUND"
	if !r.Sound() {
		status = "UNSOUND"
	}
	fmt.Fprintf(w, "%-10s %-5s %s  oracle=%d outcomes (%d states)  observed=%d  coverage=%d/%d  runs=%d pruned=%d\n",
		r.Test, r.Mech, status, total, r.Oracle.States, len(r.Exploration.Outcomes), got, total,
		r.Exploration.Runs, r.Exploration.Pruned)
	if len(r.Unsound) > 0 {
		fmt.Fprintf(w, "  UNSOUND outcomes: %v\n", r.Unsound)
	}
	if r.Violation != nil {
		fmt.Fprintf(w, "  violation: %s (skew %d, %d-decision schedule)\n",
			r.Violation.Reason, r.Violation.Ref.Skew, len(r.Violation.Ref.Script))
		if r.Violation.Err != nil {
			fmt.Fprintf(w, "  error: %v\n", r.Violation.Err)
		}
	}
	if len(r.Uncovered) > 0 {
		fmt.Fprintf(w, "  uncovered (allowed, never observed): %v\n", r.Uncovered)
	}
}
