package modelcheck

import (
	"fmt"
	"strings"

	"tusim/internal/config"
	"tusim/internal/faults"
	"tusim/internal/litmus"
)

// ExploreOpts bounds a controlled-schedule exploration of the real
// simulator.
type ExploreOpts struct {
	// Skews is how many per-core start-skew indices to sweep (0 = 8).
	Skews int
	// MaxDecisions is the decision-prefix depth: only the first
	// MaxDecisions injector choice points of a run are enumerated;
	// later ones keep their quiet defaults (0 = 8).
	MaxDecisions int
	// MaxRuns caps total simulator runs across all skews (0 = 512).
	MaxRuns int
	// Plan enables the injector choice points to drive. Only sites with
	// a nonzero rate reach the decision source at all; the scripted
	// values, not the rates, decide what happens. Nil = ExplorePlan().
	Plan *faults.Plan
	// AuditEvery attaches the invariant auditor at this cadence (0 = off).
	AuditEvery uint64
}

func (o ExploreOpts) withDefaults() ExploreOpts {
	if o.Skews <= 0 {
		o.Skews = 8
	}
	if o.MaxDecisions <= 0 {
		o.MaxDecisions = 8
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 512
	}
	if o.Plan == nil {
		p := ExplorePlan()
		o.Plan = &p
	}
	return o
}

// ExplorePlan enables every legal perturbation site so the explorer can
// script it. Rates select *which* sites consult the decision source
// (all of them); magnitudes are kept small because the enumeration only
// branches on their {min, max} extremes anyway.
func ExplorePlan() faults.Plan {
	return faults.Plan{
		ReqExtraPct: 100, ReqExtraMax: 3,
		NackPct:      100,
		BusyStallPct: 100, BusyStallMax: 3,
		ProbeExtraPct: 100, ProbeExtraMax: 3,
		MSHRPressurePct: 100,
		WCBFlushPct:     100,
		ShuffleProbes:   true,
	}
}

// runRef identifies one explored run: a start skew plus the decision
// schedule that drove it.
type runRef struct {
	Skew   int               `json:"skew"`
	Script []faults.Decision `json:"script,omitempty"`
}

// Violation is one run whose behaviour left the architecture's
// contract: a TSO-checker/auditor/crash failure, or (flagged by the
// comparator) an outcome outside the oracle's allowed set.
type Violation struct {
	Ref runRef
	// Outcome is the observed vector (nil when the run died before
	// producing one).
	Outcome Outcome
	// Err is the checker/crash error, nil for outcome-set violations.
	Err error
	// Reason is a one-line classification.
	Reason string
}

// Exploration is the explorer's record of one (program, mechanism)
// cell.
type Exploration struct {
	Test string
	Mech config.Mechanism
	// Plan/AuditEvery echo the options the cell ran under (repro
	// bundles embed them).
	Plan       faults.Plan
	AuditEvery uint64
	// Outcomes is the observed outcome census; Vecs holds each key's
	// vector form.
	Outcomes map[string]int
	Vecs     map[string]Outcome
	// First maps each outcome key to the first run that produced it
	// (the replay handle the comparator turns into a repro bundle).
	First map[string]runRef
	// Runs counts simulator executions; Pruned counts schedules skipped
	// because their consumed decision trace had already been explored
	// (commuting suffixes collapse to one run).
	Runs, Pruned int
	// Deepened reports whether some run consumed more choice points
	// than MaxDecisions (the exploration is then bounded, not
	// exhaustive, over the injector's nondeterminism).
	Deepened bool
	// BudgetExhausted reports MaxRuns stopped the exploration early.
	BudgetExhausted bool
	// Violation is the first contract violation encountered, if any.
	Violation *Violation
	// Transcript logs every run in execution order (deterministic:
	// identical invocations produce identical transcripts).
	Transcript []string
}

// scriptKey is a compact deterministic encoding of a decision schedule.
func scriptKey(ds []faults.Decision) string {
	if len(ds) == 0 {
		return "-"
	}
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%c%d", d.Kind, d.Val)
	}
	return b.String()
}

// Explore drives the real simulator through its nondeterminism choice
// points for one litmus program under one mechanism. For every start
// skew it walks the injector's decision tree breadth-first by iterative
// prefix deepening: run the quiet schedule, then re-run with each of
// the first MaxDecisions consumed choice points flipped through its
// alternatives, expanding only choice points a run actually reached.
// Every terminal outcome is recorded; the first checker/auditor/crash
// failure (or annotated-forbidden outcome) stops the cell with a
// minimized, replayable schedule.
func Explore(test litmus.Test, m config.Mechanism, opts ExploreOpts) *Exploration {
	opts = opts.withDefaults()
	ex := &Exploration{
		Test:       test.Name,
		Mech:       m,
		Plan:       *opts.Plan,
		AuditEvery: opts.AuditEvery,
		Outcomes:   map[string]int{},
		Vecs:       map[string]Outcome{},
		First:      map[string]runRef{},
	}

	for skew := 0; skew < opts.Skews; skew++ {
		// seen holds consumed-trace keys: two scripts that collapse to
		// the same consumed schedule are the same run (the sleep-set
		// flavour of pruning — flips that commute into an already
		// explored schedule are skipped, and branches are only opened
		// at choice points a run actually consumed).
		seen := map[string]bool{}
		queue := [][]faults.Decision{nil}
		for len(queue) > 0 {
			if ex.Runs >= opts.MaxRuns {
				ex.BudgetExhausted = true
				return ex
			}
			script := queue[0]
			queue = queue[1:]

			ref := runRef{Skew: skew, Script: script}
			obs, trace, err := runScripted(test, m, ref, opts)
			ex.Runs++

			traceKey := scriptKey(trace)
			line := fmt.Sprintf("skew=%d script=%s", skew, scriptKey(script))
			if err != nil {
				ex.Transcript = append(ex.Transcript, line+" -> ERROR "+err.Error())
				ex.Violation = minimize(test, m, opts, &Violation{
					Ref: ref, Err: err, Reason: "run failed under a legal schedule",
				})
				return ex
			}
			ex.Transcript = append(ex.Transcript, line+" -> "+Key(obs))
			if seen[traceKey] {
				ex.Pruned++
				continue
			}
			seen[traceKey] = true

			key := Key(obs)
			ex.Outcomes[key]++
			ex.Vecs[key] = obs
			if _, ok := ex.First[key]; !ok {
				ex.First[key] = ref
			}
			if test.Forbidden != nil && test.Forbidden(obs) {
				ex.Violation = minimize(test, m, opts, &Violation{
					Ref: ref, Outcome: obs, Reason: "annotated TSO-forbidden outcome",
				})
				return ex
			}

			// Expand: flip each newly consumed choice point within the
			// deepening bound through its alternatives.
			limit := len(trace)
			if limit > opts.MaxDecisions {
				limit = opts.MaxDecisions
				ex.Deepened = true
			}
			for i := len(script); i < limit; i++ {
				for _, alt := range trace[i].Alternatives() {
					if alt == trace[i].Val {
						continue
					}
					next := append([]faults.Decision(nil), trace[:i+1]...)
					next[i].Val = alt
					queue = append(queue, next)
				}
			}
		}
	}
	return ex
}

// runScripted executes one litmus run under a scripted decision source,
// returning the outcome and the consumed decision trace.
func runScripted(test litmus.Test, m config.Mechanism, ref runRef, opts ExploreOpts) (Outcome, []faults.Decision, error) {
	src := faults.NewScriptSource(ref.Script)
	obs, err := litmus.RunOne(test, m, ref.Skew, litmus.Opts{
		Faults:     opts.Plan,
		Source:     src,
		AuditEvery: opts.AuditEvery,
	})
	return obs, src.Trace(), err
}

// minimize shrinks a violating schedule: first truncate decisions off
// the end, then quiet individual decisions back to their defaults,
// keeping every change that still reproduces a violation. The result
// is the replay schedule embedded in the repro bundle.
func minimize(test litmus.Test, m config.Mechanism, opts ExploreOpts, v *Violation) *Violation {
	budget := 2*len(v.Ref.Script) + 8
	fails := func(script []faults.Decision) bool {
		if budget <= 0 {
			return false
		}
		budget--
		obs, _, err := runScripted(test, m, runRef{Skew: v.Ref.Skew, Script: script}, opts)
		if err != nil {
			return true
		}
		return test.Forbidden != nil && test.Forbidden(obs)
	}

	script := append([]faults.Decision(nil), v.Ref.Script...)
	for len(script) > 0 && fails(script[:len(script)-1]) {
		script = script[:len(script)-1]
	}
	for i := len(script) - 1; i >= 0; i-- {
		if script[i].Val == script[i].Default() {
			continue
		}
		quieted := append([]faults.Decision(nil), script...)
		quieted[i].Val = quieted[i].Default()
		if fails(quieted) {
			script = quieted
		}
	}
	// Drop a trailing run of defaults: they are what an empty tail
	// answers anyway.
	for len(script) > 0 && script[len(script)-1].Val == script[len(script)-1].Default() {
		script = script[:len(script)-1]
	}

	// Re-run the minimized schedule to refresh the violation evidence.
	obs, _, err := runScripted(test, m, runRef{Skew: v.Ref.Skew, Script: script}, opts)
	if err != nil || (test.Forbidden != nil && test.Forbidden(obs)) {
		v.Ref.Script = script
		v.Outcome = obs
		v.Err = err
	}
	return v
}
