// Package modelcheck turns the repo's sampled TSO validation (litmus
// skew sweeps, chaos fuzzing) into a decidable check for small
// programs. It has three layers:
//
//  1. A reference *oracle*: the operational x86-TSO machine (per-thread
//     FIFO store buffer + shared memory, with store forwarding) of
//     Owens/Sarkar/Sewell, explored exhaustively by DFS with memoized
//     state hashing. For a litmus program it computes the *complete*
//     set of TSO-allowed final outcomes.
//  2. A controlled-schedule *explorer* that drives the real
//     cycle-accurate simulator through its nondeterminism choice points
//     — per-core start skews and the fault injector's decision stream
//     (latencies, NACKs, stalls, WCB flushes, probe orders) — by
//     iterative deepening over scripted decision prefixes, recording
//     each terminal outcome.
//  3. A *comparator* that diffs the two: any simulator outcome outside
//     the oracle's allowed set is unsoundness (a real protocol bug,
//     reported with a minimal replayable schedule); allowed outcomes no
//     schedule produced are reported as coverage, not failure.
//
// Everything here is deterministic: two identical invocations produce
// identical exploration transcripts, so a reported violation is
// reproducible by construction.
package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"tusim/internal/isa"
	"tusim/internal/litmus"
)

// Limits bounds an oracle enumeration.
type Limits struct {
	// MaxStates caps distinct states visited (0 = DefaultMaxStates).
	MaxStates int
}

// DefaultMaxStates is ample for every litmus-scale program; the suite's
// largest (IRIW) visits a few thousand states.
const DefaultMaxStates = 1 << 20

// Outcome is one final observation vector: recorded-load ranks in
// RunOne's slot order, then final-memory ranks for Program.FinalReads.
type Outcome []uint64

// Key is the canonical map key for an outcome. It matches the key
// format litmus.Result.Outcomes uses, so simulator and oracle outcome
// sets cross-index directly.
func Key(o []uint64) string { return fmt.Sprint(o) }

// OracleResult is the oracle's verdict on one program.
type OracleResult struct {
	Program litmus.Program
	// Outcomes is the complete TSO-allowed outcome set (complete only
	// when Complete is true).
	Outcomes map[string]Outcome
	// States counts distinct machine states visited.
	States int
	// Transcript lists every state's canonical encoding in first-visit
	// order; identical invocations must produce identical transcripts.
	Transcript []string
	// Complete is false when MaxStates stopped the enumeration early.
	Complete bool
}

// Allowed reports whether the outcome is in the oracle's set.
func (r *OracleResult) Allowed(o []uint64) bool {
	_, ok := r.Outcomes[Key(o)]
	return ok
}

// SortedKeys returns the outcome keys in lexicographic order (for
// deterministic reporting).
func (r *OracleResult) SortedKeys() []string {
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sbEntry is one buffered store: an 8-byte location and the rank it
// writes.
type sbEntry struct{ addr, val uint64 }

// mcState is one state of the operational TSO machine.
type mcState struct {
	pcs []int
	sbs [][]sbEntry
	mem map[uint64]uint64
	obs Outcome
}

func newState(p litmus.Program) *mcState {
	return &mcState{
		pcs: make([]int, len(p.Threads)),
		sbs: make([][]sbEntry, len(p.Threads)),
		mem: map[uint64]uint64{},
		obs: make(Outcome, p.NumObs),
	}
}

func (s *mcState) clone() *mcState {
	c := &mcState{
		pcs: append([]int(nil), s.pcs...),
		sbs: make([][]sbEntry, len(s.sbs)),
		mem: make(map[uint64]uint64, len(s.mem)),
		obs: append(Outcome(nil), s.obs...),
	}
	for i, sb := range s.sbs {
		c.sbs[i] = append([]sbEntry(nil), sb...)
	}
	for k, v := range s.mem {
		c.mem[k] = v
	}
	return c
}

// encode produces the canonical deterministic state encoding: threads
// in index order (pc, then FIFO store-buffer contents oldest-first),
// memory as addr-sorted pairs, then the observation vector. Map
// iteration order never leaks into the encoding, which is what makes
// exploration transcripts identical across runs.
func (s *mcState) encode() string {
	var b strings.Builder
	for t := range s.pcs {
		fmt.Fprintf(&b, "t%d@%d[", t, s.pcs[t])
		for _, e := range s.sbs[t] {
			fmt.Fprintf(&b, "%x:%d,", e.addr, e.val)
		}
		b.WriteString("]")
	}
	addrs := make([]uint64, 0, len(s.mem))
	for a := range s.mem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	b.WriteString("m{")
	for _, a := range addrs {
		fmt.Fprintf(&b, "%x:%d,", a, s.mem[a])
	}
	b.WriteString("}o")
	fmt.Fprint(&b, []uint64(s.obs))
	return b.String()
}

// forward returns the value a load of addr reads: the youngest matching
// store in the thread's own buffer (mandatory store-to-load
// forwarding), else shared memory (unwritten locations read rank 0).
func (s *mcState) forward(t int, addr uint64) uint64 {
	sb := s.sbs[t]
	for i := len(sb) - 1; i >= 0; i-- {
		if sb[i].addr == addr {
			return sb[i].val
		}
	}
	return s.mem[addr]
}

// move is one enabled transition: thread t either executes its next
// instruction (drain=false) or drains its oldest buffered store.
type move struct {
	t     int
	drain bool
}

// moves lists the enabled transitions in canonical order: instruction
// steps by thread index, then drain steps by thread index. A fence is
// enabled only once the issuing thread's buffer is empty.
func (s *mcState) moves(p litmus.Program) []move {
	var ms []move
	for t := range s.pcs {
		if s.pcs[t] >= len(p.Threads[t]) {
			continue
		}
		op := p.Threads[t][s.pcs[t]]
		if op.Kind == isa.Fence && len(s.sbs[t]) > 0 {
			continue
		}
		ms = append(ms, move{t: t})
	}
	for t := range s.sbs {
		if len(s.sbs[t]) > 0 {
			ms = append(ms, move{t: t, drain: true})
		}
	}
	return ms
}

// apply mutates the state by one transition, returning the step record.
func (s *mcState) apply(p litmus.Program, m move) Step {
	if m.drain {
		e := s.sbs[m.t][0]
		s.sbs[m.t] = s.sbs[m.t][1:]
		s.mem[e.addr] = e.val
		return Step{Kind: StepDrain, Thread: m.t, Addr: e.addr, Val: e.val, Obs: -1}
	}
	op := p.Threads[m.t][s.pcs[m.t]]
	s.pcs[m.t]++
	switch op.Kind {
	case isa.Store:
		s.sbs[m.t] = append(s.sbs[m.t], sbEntry{addr: op.Addr, val: op.Val})
		return Step{Kind: StepStore, Thread: m.t, Addr: op.Addr, Val: op.Val, Obs: -1}
	case isa.Load:
		v := s.forward(m.t, op.Addr)
		if op.Obs >= 0 {
			s.obs[op.Obs] = v
		}
		return Step{Kind: StepLoad, Thread: m.t, Addr: op.Addr, Val: v, Obs: op.Obs}
	default: // fence
		return Step{Kind: StepFence, Thread: m.t, Obs: -1}
	}
}

// outcome reads the terminal observation vector (loads + final memory).
func (s *mcState) outcome(p litmus.Program) Outcome {
	out := append(Outcome(nil), s.obs...)
	for _, a := range p.FinalReads {
		out = append(out, s.mem[a])
	}
	return out
}

// Enumerate computes the complete TSO-allowed outcome set of a program
// by exhaustive DFS over the operational machine, memoizing visited
// states. Returns Complete=false (never an error) when MaxStates stops
// it early — callers decide whether a bounded result is acceptable.
func Enumerate(p litmus.Program, lim Limits) *OracleResult {
	maxStates := lim.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	res := &OracleResult{
		Program:  p,
		Outcomes: map[string]Outcome{},
		Complete: true,
	}
	seen := map[string]bool{}

	var dfs func(s *mcState)
	dfs = func(s *mcState) {
		key := s.encode()
		if seen[key] {
			return
		}
		if len(seen) >= maxStates {
			res.Complete = false
			return
		}
		seen[key] = true
		res.Transcript = append(res.Transcript, key)

		ms := s.moves(p)
		if len(ms) == 0 {
			o := s.outcome(p)
			res.Outcomes[Key(o)] = o
			return
		}
		for _, m := range ms {
			next := s.clone()
			next.apply(p, m)
			dfs(next)
		}
	}
	dfs(newState(p))
	res.States = len(seen)
	return res
}

// Step kinds for enumerated traces.
const (
	// StepStore: a store executes into the issuing thread's buffer.
	StepStore = byte('S')
	// StepLoad: a load binds Val (forwarded or from memory).
	StepLoad = byte('L')
	// StepFence: a fence retires (buffer already empty).
	StepFence = byte('F')
	// StepDrain: the thread's oldest buffered store reaches memory.
	StepDrain = byte('D')
)

// Step is one transition of an enumerated trace.
type Step struct {
	Kind   byte
	Thread int
	Addr   uint64
	Val    uint64
	// Obs is the outcome slot a recorded load fills, else -1.
	Obs int
}

func (s Step) String() string {
	switch s.Kind {
	case StepFence:
		return fmt.Sprintf("t%d:fence", s.Thread)
	case StepDrain:
		return fmt.Sprintf("t%d:drain %#x=%d", s.Thread, s.Addr, s.Val)
	case StepLoad:
		return fmt.Sprintf("t%d:ld %#x->%d", s.Thread, s.Addr, s.Val)
	}
	return fmt.Sprintf("t%d:st %#x=%d", s.Thread, s.Addr, s.Val)
}

// Trace is one complete interleaving of the operational machine, from
// the initial state to a terminal (all-drained) state.
type Trace []Step

// Traces enumerates complete traces of the program by DFS (no
// memoization — paths, not states), up to max traces. The second
// result reports whether the enumeration was exhaustive. Traces feed
// the tso.Checker cross-validation: every one is TSO-allowed by
// construction.
func Traces(p litmus.Program, max int) ([]Trace, bool) {
	var out []Trace
	complete := true
	var cur Trace

	var dfs func(s *mcState)
	dfs = func(s *mcState) {
		if len(out) >= max {
			complete = false
			return
		}
		ms := s.moves(p)
		if len(ms) == 0 {
			out = append(out, append(Trace(nil), cur...))
			return
		}
		for _, m := range ms {
			next := s.clone()
			step := next.apply(p, m)
			cur = append(cur, step)
			dfs(next)
			cur = cur[:len(cur)-1]
		}
	}
	dfs(newState(p))
	return out, complete
}
