package modelcheck

import (
	"reflect"
	"testing"

	"tusim/internal/litmus"
)

func prog(t *testing.T, name string) litmus.Program {
	t.Helper()
	for _, lt := range litmus.Tests() {
		if lt.Name == name {
			p, err := lt.Program()
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	t.Fatalf("no litmus test %q", name)
	return litmus.Program{}
}

func enumerate(t *testing.T, name string) *OracleResult {
	t.Helper()
	res := Enumerate(prog(t, name), Limits{})
	if !res.Complete {
		t.Fatalf("%s: oracle enumeration hit the state budget", name)
	}
	return res
}

// outcomeSet builds the oracle-style key set from explicit vectors.
func outcomeSet(outs ...[]uint64) map[string]bool {
	m := map[string]bool{}
	for _, o := range outs {
		m[Key(o)] = true
	}
	return m
}

func assertExactly(t *testing.T, name string, res *OracleResult, want map[string]bool) {
	t.Helper()
	for k := range res.Outcomes {
		if !want[k] {
			t.Errorf("%s: oracle allows %s, hand table forbids it", name, k)
		}
	}
	for k := range want {
		if _, ok := res.Outcomes[k]; !ok {
			t.Errorf("%s: hand table allows %s, oracle never produced it", name, k)
		}
	}
}

// TestOracleSB: all four outcomes allowed — including the r1=r2=0
// store-buffering relaxation SC forbids.
func TestOracleSB(t *testing.T) {
	assertExactly(t, "SB", enumerate(t, "SB"), outcomeSet(
		[]uint64{0, 0}, []uint64{0, 1}, []uint64{1, 0}, []uint64{1, 1},
	))
}

// TestOracleSBFences: the fences kill exactly the relaxed outcome.
func TestOracleSBFences(t *testing.T) {
	assertExactly(t, "SB+fences", enumerate(t, "SB+fences"), outcomeSet(
		[]uint64{0, 1}, []uint64{1, 0}, []uint64{1, 1},
	))
}

// TestOracleMP: r1=1 ^ r2=0 (seeing y without the older x) forbidden.
func TestOracleMP(t *testing.T) {
	assertExactly(t, "MP", enumerate(t, "MP"), outcomeSet(
		[]uint64{0, 0}, []uint64{0, 1}, []uint64{1, 1},
	))
}

// TestOracleLB: loads do not reorder with later stores: r1=1 ^ r2=1
// forbidden.
func TestOracleLB(t *testing.T) {
	assertExactly(t, "LB", enumerate(t, "LB"), outcomeSet(
		[]uint64{0, 0}, []uint64{0, 1}, []uint64{1, 0},
	))
}

// TestOracleIRIW: store atomicity — of the 16 combinations only the
// one where the readers disagree on the write order is forbidden.
func TestOracleIRIW(t *testing.T) {
	var want [][]uint64
	for a := uint64(0); a < 2; a++ {
		for b := uint64(0); b < 2; b++ {
			for c := uint64(0); c < 2; c++ {
				for d := uint64(0); d < 2; d++ {
					if a == 1 && b == 0 && c == 1 && d == 0 {
						continue
					}
					want = append(want, []uint64{a, b, c, d})
				}
			}
		}
	}
	assertExactly(t, "IRIW", enumerate(t, "IRIW"), outcomeSet(want...))
}

// TestOracleN6: the store-forwarding test. (r1, r2, final x):
//   - r1 >= 1 always (a thread must forward its own buffered store);
//   - r1=2 forces the thread's own x=1 to have drained and been
//     overwritten, which forces final x=2 and r2=1;
//   - the paper-relevant witness (1,0,1) IS allowed — an oracle without
//     forwarding would miss it.
func TestOracleN6(t *testing.T) {
	res := enumerate(t, "n6")
	assertExactly(t, "n6", res, outcomeSet(
		[]uint64{1, 0, 1}, []uint64{1, 0, 2}, []uint64{1, 1, 1},
		[]uint64{1, 1, 2}, []uint64{2, 1, 2},
	))
	if !res.Allowed([]uint64{1, 0, 1}) {
		t.Error("n6: forwarding witness (1,0,1) missing — store forwarding broken in the oracle")
	}
}

// TestOracleAgreesWithAnnotations: for every suite program, nothing the
// oracle allows may be annotated Forbidden, and every WantRelaxed
// outcome must be TSO-reachable. This pins the hand annotations and the
// operational machine to each other across the whole suite.
func TestOracleAgreesWithAnnotations(t *testing.T) {
	for _, lt := range litmus.Tests() {
		res := enumerate(t, lt.Name)
		relaxedSeen := false
		for _, o := range res.Outcomes {
			if lt.Forbidden != nil && lt.Forbidden(o) {
				t.Errorf("%s: oracle-allowed outcome %v is annotated TSO-forbidden", lt.Name, o)
			}
			if lt.WantRelaxed != nil && lt.WantRelaxed(o) {
				relaxedSeen = true
			}
		}
		if lt.WantRelaxed != nil && !relaxedSeen {
			t.Errorf("%s: WantRelaxed outcome is not TSO-reachable per the oracle", lt.Name)
		}
	}
}

// TestOracleDeterministicTranscript: two identical invocations must
// visit identical states in identical order — the property that makes
// every reported violation reproducible (and the reason state encoding
// never iterates a Go map).
func TestOracleDeterministicTranscript(t *testing.T) {
	for _, name := range []string{"SB", "MP", "IRIW", "n6", "CoWW"} {
		a := enumerate(t, name)
		b := enumerate(t, name)
		if a.States != b.States {
			t.Fatalf("%s: state counts differ: %d vs %d", name, a.States, b.States)
		}
		if !reflect.DeepEqual(a.Transcript, b.Transcript) {
			for i := range a.Transcript {
				if a.Transcript[i] != b.Transcript[i] {
					t.Fatalf("%s: transcripts diverge at state %d:\n  a: %s\n  b: %s",
						name, i, a.Transcript[i], b.Transcript[i])
				}
			}
			t.Fatalf("%s: transcript lengths differ: %d vs %d", name, len(a.Transcript), len(b.Transcript))
		}
		if !reflect.DeepEqual(a.SortedKeys(), b.SortedKeys()) {
			t.Fatalf("%s: outcome sets differ between identical invocations", name)
		}
	}
}

// TestOracleBounded: an absurdly small state budget must stop the
// enumeration and say so, not pretend completeness.
func TestOracleBounded(t *testing.T) {
	res := Enumerate(prog(t, "IRIW"), Limits{MaxStates: 3})
	if res.Complete {
		t.Fatal("3-state budget reported a complete enumeration of IRIW")
	}
	if res.States > 3 {
		t.Fatalf("budget 3 but visited %d states", res.States)
	}
}

// TestTracesMatchOutcomes: path enumeration and state enumeration are
// two views of the same machine — the set of outcomes reached by
// complete traces must equal the memoized DFS's outcome set.
func TestTracesMatchOutcomes(t *testing.T) {
	for _, name := range []string{"SB", "MP", "LB", "n6"} {
		p := prog(t, name)
		res := enumerate(t, name)
		traces, complete := Traces(p, 1<<20)
		if !complete {
			t.Fatalf("%s: trace enumeration truncated", name)
		}
		got := map[string]bool{}
		for _, tr := range traces {
			got[Key(traceOutcome(p, tr))] = true
		}
		for k := range res.Outcomes {
			if !got[k] {
				t.Errorf("%s: outcome %s reachable per states but no trace produced it", name, k)
			}
		}
		for k := range got {
			if _, ok := res.Outcomes[k]; !ok {
				t.Errorf("%s: trace produced outcome %s the state enumeration lacks", name, k)
			}
		}
	}
}

// traceOutcome replays a trace's architectural effects to its outcome.
func traceOutcome(p litmus.Program, tr Trace) Outcome {
	mem := map[uint64]uint64{}
	obs := make(Outcome, p.NumObs)
	for _, s := range tr {
		switch s.Kind {
		case StepDrain:
			mem[s.Addr] = s.Val
		case StepLoad:
			if s.Obs >= 0 {
				obs[s.Obs] = s.Val
			}
		}
	}
	for _, a := range p.FinalReads {
		obs = append(obs, mem[a])
	}
	return obs
}
