package modelcheck

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tusim/internal/config"
	"tusim/internal/faults"
	"tusim/internal/harness"
	"tusim/internal/litmus"
	"tusim/internal/system"
)

func testByName(t *testing.T, name string) litmus.Test {
	t.Helper()
	for _, lt := range litmus.Tests() {
		if lt.Name == name {
			return lt
		}
	}
	t.Fatalf("no litmus test %q", name)
	return litmus.Test{}
}

// quickOpts keeps unit-test explorations fast while still walking a
// few dozen schedules per cell.
func quickOpts() ExploreOpts {
	return ExploreOpts{Skews: 3, MaxDecisions: 4, MaxRuns: 48}
}

// TestCheckSuiteBoundedExhaustive is the model checker's main `go
// test` entry point: every litmus program in the suite, explored under
// the mechanism matrix, must stay inside the oracle's TSO-allowed
// outcome set. This is the acceptance property — zero outcomes outside
// TSO under bounded-exhaustive schedule exploration.
func TestCheckSuiteBoundedExhaustive(t *testing.T) {
	mechs := []config.Mechanism{config.Baseline, config.CSB, config.TUS}
	if testing.Short() {
		mechs = []config.Mechanism{config.TUS}
	}
	for _, lt := range litmus.Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			for _, m := range mechs {
				r, err := Check(lt, m, quickOpts(), Limits{})
				if err != nil {
					t.Fatalf("[%v] %v", m, err)
				}
				if !r.Sound() {
					var sb strings.Builder
					r.Write(&sb)
					t.Errorf("[%v] UNSOUND:\n%s", m, sb.String())
				}
				if r.Exploration.Runs == 0 {
					t.Errorf("[%v] explorer ran nothing", m)
				}
			}
		})
	}
}

// TestExploreObservesRelaxation: the explorer must reach the SB
// relaxation (r1=r2=0) — if the schedule walk cannot even see the
// store buffer, its coverage numbers are meaningless.
func TestExploreObservesRelaxation(t *testing.T) {
	ex := Explore(testByName(t, "SB"), config.TUS, quickOpts())
	if ex.Violation != nil {
		t.Fatalf("unexpected violation: %+v", ex.Violation)
	}
	if _, ok := ex.Outcomes[Key([]uint64{0, 0})]; !ok {
		t.Fatalf("relaxed outcome never observed; census: %v", ex.Outcomes)
	}
}

// TestExploreDeterministicTranscript: identical invocations must
// execute identical run sequences — the exploration analogue of the
// oracle's transcript determinism.
func TestExploreDeterministicTranscript(t *testing.T) {
	a := Explore(testByName(t, "MP"), config.TUS, quickOpts())
	b := Explore(testByName(t, "MP"), config.TUS, quickOpts())
	if !reflect.DeepEqual(a.Transcript, b.Transcript) {
		t.Fatalf("transcripts differ between identical invocations:\n  a: %d lines\n  b: %d lines",
			len(a.Transcript), len(b.Transcript))
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Fatalf("outcome censuses differ: %v vs %v", a.Outcomes, b.Outcomes)
	}
}

// TestExploreSchedulesDiverge: scripted decisions must actually steer
// the machine — across the explored schedules at least two distinct
// consumed decision traces (i.e. real branching) must appear, and
// pruning must collapse at least some commuting flips on a busy
// program.
func TestExploreSchedulesDiverge(t *testing.T) {
	ex := Explore(testByName(t, "MP"), config.TUS, ExploreOpts{Skews: 1, MaxDecisions: 6, MaxRuns: 64})
	if ex.Violation != nil {
		t.Fatalf("unexpected violation: %+v", ex.Violation)
	}
	if ex.Runs < 8 {
		t.Fatalf("explorer stopped after %d runs; decision tree never branched", ex.Runs)
	}
}

// TestCheckViolationPipeline: corrupting protocol state via sabotage
// must surface as a violation with a *replayable* minimal schedule —
// the full capture → minimize → bundle → replay loop.
func TestCheckViolationPipeline(t *testing.T) {
	plan := ExplorePlan()
	plan.SabotageSpec = faults.Sabotage{Cycle: 1, Core: 0, Kind: faults.SabotageHideLine}
	opts := quickOpts()
	opts.Plan = &plan
	opts.AuditEvery = 1

	r, err := Check(testByName(t, "MP"), config.TUS, opts, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sound() {
		t.Fatal("sabotaged run reported sound")
	}
	if r.Violation == nil || r.Violation.Err == nil {
		t.Fatalf("violation carries no error: %+v", r.Violation)
	}
	if r.Bundle == nil {
		t.Fatal("violation produced no repro bundle")
	}

	// The bundle must survive disk and reproduce the failure.
	path := filepath.Join(t.TempDir(), "mc-crash.json")
	if err := r.Bundle.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := harness.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	rerr := loaded.Replay()
	if rerr == nil {
		t.Fatal("replay of the minimized schedule came out clean")
	}
	var cr *system.CrashReport
	if !errors.As(rerr, &cr) {
		t.Fatalf("replay error is not a CrashReport: %v", rerr)
	}
}

// TestCheckFlagsForbiddenOutcome: a (deliberately wrong) annotation
// that forbids a reachable outcome must produce a minimized violation
// — proving the explorer checks outcomes, not just crashes, and that
// minimization converges.
func TestCheckFlagsForbiddenOutcome(t *testing.T) {
	doctored := testByName(t, "SB")
	doctored.Forbidden = func(obs []uint64) bool { return obs[0] == 0 && obs[1] == 0 }
	ex := Explore(doctored, config.TUS, quickOpts())
	if ex.Violation == nil {
		t.Fatalf("reachable 'forbidden' outcome never flagged; census: %v", ex.Outcomes)
	}
	if ex.Violation.Outcome == nil || !doctored.Forbidden(ex.Violation.Outcome) {
		t.Fatalf("violation outcome %v does not satisfy the predicate", ex.Violation.Outcome)
	}
}

// TestUncoveredIsCoverageNotFailure: ATOM's atomic-group guarantee is
// stricter than plain TSO, so the oracle allows outcomes the machine
// never produces; those must land in Uncovered without making the cell
// unsound.
func TestUncoveredIsCoverageNotFailure(t *testing.T) {
	r, err := Check(testByName(t, "ATOM"), config.TUS, quickOpts(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sound() {
		t.Fatalf("ATOM under TUS unsound: %v", r.Unsound)
	}
	got, total := r.Coverage()
	if got > total {
		t.Fatalf("coverage %d/%d out of range", got, total)
	}
}
