package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	s := NewSet("core0")
	c := s.Counter("loads")
	c.Inc()
	c.Add(4)
	if got := s.Get("loads"); got != 5 {
		t.Fatalf("loads = %d, want 5", got)
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if c.Name() != "loads" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCounterHandleStable(t *testing.T) {
	s := NewSet("x")
	a := s.Counter("n")
	b := s.Counter("n")
	if a != b {
		t.Fatal("Counter must intern handles by name")
	}
}

func TestMerge(t *testing.T) {
	a := NewSet("sys")
	b := NewSet("core1")
	a.Counter("stores").Add(10)
	b.Counter("stores").Add(7)
	b.Counter("fences").Add(2)
	a.Merge(b)
	if a.Get("stores") != 17 || a.Get("fences") != 2 {
		t.Fatalf("merge wrong: stores=%d fences=%d", a.Get("stores"), a.Get("fences"))
	}
}

func TestReset(t *testing.T) {
	s := NewSet("x")
	c := s.Counter("n")
	c.Add(9)
	s.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
	c.Inc()
	if s.Get("n") != 1 {
		t.Fatal("handle invalid after Reset")
	}
}

func TestStringFormat(t *testing.T) {
	s := NewSet("c")
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	out := s.String()
	ia, ib := strings.Index(out, "c.a = 1"), strings.Index(out, "c.b = 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("String output wrong:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
}

func TestMergeCommutesOnValues(t *testing.T) {
	// Property: merging two sets yields the same totals regardless of order.
	f := func(xs, ys []uint8) bool {
		a, b := NewSet("a"), NewSet("b")
		for i, x := range xs {
			a.Counter(string(rune('a' + i%5))).Add(uint64(x))
		}
		for i, y := range ys {
			b.Counter(string(rune('a' + i%5))).Add(uint64(y))
		}
		m1, m2 := NewSet("m"), NewSet("m")
		m1.Merge(a)
		m1.Merge(b)
		m2.Merge(b)
		m2.Merge(a)
		for _, n := range m1.Names() {
			if m1.Get(n) != m2.Get(n) {
				return false
			}
		}
		return len(m1.Names()) == len(m2.Names())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
