package stats

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	s := NewSet("core0")
	c := s.Counter("loads")
	c.Inc()
	c.Add(4)
	if got := s.Get("loads"); got != 5 {
		t.Fatalf("loads = %d, want 5", got)
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	if c.Name() != "loads" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCounterHandleStable(t *testing.T) {
	s := NewSet("x")
	a := s.Counter("n")
	b := s.Counter("n")
	if a != b {
		t.Fatal("Counter must intern handles by name")
	}
}

func TestMerge(t *testing.T) {
	a := NewSet("sys")
	b := NewSet("core1")
	a.Counter("stores").Add(10)
	b.Counter("stores").Add(7)
	b.Counter("fences").Add(2)
	a.Merge(b)
	if a.Get("stores") != 17 || a.Get("fences") != 2 {
		t.Fatalf("merge wrong: stores=%d fences=%d", a.Get("stores"), a.Get("fences"))
	}
}

func TestReset(t *testing.T) {
	s := NewSet("x")
	c := s.Counter("n")
	c.Add(9)
	s.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero counter")
	}
	c.Inc()
	if s.Get("n") != 1 {
		t.Fatal("handle invalid after Reset")
	}
}

func TestStringFormat(t *testing.T) {
	s := NewSet("c")
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	out := s.String()
	ia, ib := strings.Index(out, "c.a = 1"), strings.Index(out, "c.b = 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("String output wrong:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
}

func TestMergeCommutesOnValues(t *testing.T) {
	// Property: merging two sets yields the same totals regardless of order.
	f := func(xs, ys []uint8) bool {
		a, b := NewSet("a"), NewSet("b")
		for i, x := range xs {
			a.Counter(string(rune('a' + i%5))).Add(uint64(x))
		}
		for i, y := range ys {
			b.Counter(string(rune('a' + i%5))).Add(uint64(y))
		}
		m1, m2 := NewSet("m"), NewSet("m")
		m1.Merge(a)
		m1.Merge(b)
		m2.Merge(b)
		m2.Merge(a)
		for _, n := range m1.Names() {
			if m1.Get(n) != m2.Get(n) {
				return false
			}
		}
		return len(m1.Names()) == len(m2.Names())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducers hammers a shared Set from many goroutines:
// concurrent Counter interning, atomic bumps through shared handles,
// and Merge/Snapshot sampling while producers are still running. Run
// under -race this is the harness's concurrency contract for Set.
func TestConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perWorker = 10_000
	)
	s := NewSet("shared")
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Half the goroutines share one hot counter, half intern
			// their own lazily — both paths must be race-free.
			hot := s.Counter("hot")
			own := s.Counter(fmt.Sprintf("own%d", p))
			for i := 0; i < perWorker; i++ {
				hot.Inc()
				own.Add(2)
			}
		}(p)
	}
	// Sample snapshots concurrently with the producers; values may be
	// partial but must never race or exceed the final totals.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := s.Snapshot()
			if snap["hot"] > producers*perWorker {
				t.Errorf("snapshot overshot: hot=%d", snap["hot"])
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := s.Get("hot"); got != producers*perWorker {
		t.Fatalf("hot = %d, want %d", got, producers*perWorker)
	}
	for p := 0; p < producers; p++ {
		if got := s.Get(fmt.Sprintf("own%d", p)); got != 2*perWorker {
			t.Fatalf("own%d = %d, want %d", p, got, 2*perWorker)
		}
	}
}

// TestConcurrentMerge merges many per-worker Sets into one aggregate
// from separate goroutines (the parallel harness's reduction step) and
// checks the totals are exact.
func TestConcurrentMerge(t *testing.T) {
	const workers = 16
	total := NewSet("total")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := NewSet(fmt.Sprintf("w%d", w))
			local.Counter("cycles").Add(uint64(1000 + w))
			local.Counter("stores").Add(uint64(w))
			total.Merge(local)
		}(w)
	}
	wg.Wait()
	wantCycles := uint64(0)
	wantStores := uint64(0)
	for w := 0; w < workers; w++ {
		wantCycles += uint64(1000 + w)
		wantStores += uint64(w)
	}
	if got := total.Get("cycles"); got != wantCycles {
		t.Fatalf("cycles = %d, want %d", got, wantCycles)
	}
	if got := total.Get("stores"); got != wantStores {
		t.Fatalf("stores = %d, want %d", got, wantStores)
	}
}

// TestConcurrentCrossMerge merges two Sets into each other from two
// goroutines repeatedly; the sequential snapshot-then-add locking in
// Merge must not deadlock.
func TestConcurrentCrossMerge(t *testing.T) {
	a, b := NewSet("a"), NewSet("b")
	a.Counter("n").Add(1)
	b.Counter("n").Add(1)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if i == 0 {
					a.Merge(b)
				} else {
					b.Merge(a)
				}
			}
		}(i)
	}
	wg.Wait() // reaching here is the assertion: no deadlock, no race
}

// TestSubtractClamps checks warm-up subtraction semantics: exact
// removal, clamping at zero, and indifference to post-snapshot counters.
func TestSubtractClamps(t *testing.T) {
	s := NewSet("x")
	s.Counter("a").Add(10)
	s.Counter("b").Add(3)
	snap := s.Snapshot()
	s.Counter("a").Add(5)
	s.Counter("late").Add(7) // created after the snapshot
	s.Subtract(snap)
	if got := s.Get("a"); got != 5 {
		t.Fatalf("a = %d, want 5", got)
	}
	if got := s.Get("b"); got != 0 {
		t.Fatalf("b = %d, want 0", got)
	}
	if got := s.Get("late"); got != 7 {
		t.Fatalf("late = %d, want 7", got)
	}
	// Clamp: subtracting a snapshot larger than the counter floors at 0.
	s.Subtract(map[string]uint64{"a": 100})
	if got := s.Get("a"); got != 0 {
		t.Fatalf("a after clamp = %d, want 0", got)
	}
}

// TestSnapshotDuringMerge exercises Snapshot racing Merge on the same
// destination (the harness snapshots aggregates while cells merge in).
func TestSnapshotDuringMerge(t *testing.T) {
	dst := NewSet("dst")
	src := NewSet("src")
	for i := 0; i < 32; i++ {
		src.Counter(fmt.Sprintf("c%02d", i)).Add(1)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			dst.Merge(src)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = dst.Snapshot()
			_ = dst.String()
		}
	}()
	wg.Wait()
	if got := dst.Get("c00"); got != 100 {
		t.Fatalf("c00 = %d, want 100", got)
	}
}
