package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// HistBuckets is the number of power-of-two buckets every Histogram
// carries. Bucket i counts samples v with 2^(i-1) <= v < 2^i (bucket 0
// counts v == 0), and the last bucket absorbs everything larger. 32
// buckets cover values up to 2^31, far beyond any occupancy or latency
// the simulator produces.
const HistBuckets = 32

// Histogram is a fixed-bucket power-of-two histogram. Like Counter it
// is an interned handle: components obtain one from Set.Histogram and
// call Observe on the hot path. Updates are atomic adds, so producers
// on different goroutines may share a handle, and Observe never
// allocates — the instrumented drain path stays zero-allocation.
//
// Bucket bounds are fixed at construction (power-of-two), so two
// histograms with the same name always merge bucket-for-bucket and the
// formatted output is deterministic across runs and worker counts.
type Histogram struct {
	name    string
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a sample to its power-of-two bucket index.
func bucketOf(v uint64) int {
	// bits.Len64(0) == 0 -> bucket 0; bits.Len64(1) == 1 -> bucket 1.
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one sample. It is a handful of atomic adds and never
// allocates; safe for concurrent producers.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 { return Ratio(h.sum.Load(), h.count.Load()) }

// HistSnapshot is a consistent-enough copy of a histogram's state for
// serialization and reporting. (Producers may race a snapshot; the
// harness only snapshots between run phases, when histograms are
// quiescent, so the copy is exact in practice.)
type HistSnapshot struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// add folds a snapshot into the histogram (Merge support).
func (h *Histogram) add(s HistSnapshot) {
	for i, v := range s.Buckets {
		if v != 0 {
			h.buckets[i].Add(v)
		}
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}

// reset zeroes the histogram, keeping the handle valid.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of
// the recorded samples: the exclusive upper bound of the bucket that
// contains the q-th sample. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return s.Max
}

// QuantSummary is the standard latency/occupancy export: sample count,
// mean, exact max, and the p50/p95/p99 *upper bounds* (each quantile is
// the exclusive upper bound of its power-of-two bucket, so the true
// quantile is strictly below the reported value — a conservative SLO
// reading). tusload's latency report and its perf-regression gate are
// built on this shape.
type QuantSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
}

// Summary exports the snapshot's quantile summary. All-zero on an empty
// histogram.
func (s HistSnapshot) Summary() QuantSummary {
	return QuantSummary{
		Count: s.Count,
		Mean:  Ratio(s.Sum, s.Count),
		Max:   s.Max,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// BucketUpper returns the exclusive upper bound of bucket i: samples in
// bucket i satisfy BucketLower(i) <= v < BucketUpper(i).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return ^uint64(0)
	}
	return uint64(1) << uint(i)
}

// BucketLower returns the inclusive lower bound of bucket i.
func BucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return uint64(1) << uint(i-1)
}

// String formats the histogram for human consumption: count, mean,
// max, p50/p90/p99 upper bounds, and the non-empty buckets.
func (s HistSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.2f max=%d p50<=%d p90<=%d p99<=%d",
		s.Count, Ratio(s.Sum, s.Count), s.Max,
		s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99))
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if i >= HistBuckets-1 {
			fmt.Fprintf(&b, " [%d,inf):%d", BucketLower(i), c)
		} else {
			fmt.Fprintf(&b, " [%d,%d):%d", BucketLower(i), BucketUpper(i), c)
		}
	}
	return b.String()
}

// ---------- Set integration ----------

// histogram is Histogram without the lock; callers must hold s.mu.
func (s *Set) histogram(name string) *Histogram {
	if h, ok := s.hists[name]; ok {
		return h
	}
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	h := &Histogram{name: name}
	s.hists[name] = h
	s.histOrder = append(s.histOrder, name)
	return h
}

// Histogram returns the histogram with the given name, creating it
// empty on first use. The returned handle stays valid for the Set's
// lifetime.
func (s *Set) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histogram(name)
}

// HistNames returns all registered histogram names in creation order.
func (s *Set) HistNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.histOrder))
	copy(out, s.histOrder)
	return out
}

// snapshotHists captures names (creation order) and snapshots together.
func (s *Set) snapshotHists() ([]string, []HistSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.histOrder))
	copy(names, s.histOrder)
	snaps := make([]HistSnapshot, len(names))
	for i, n := range names {
		snaps[i] = s.hists[n].Snapshot()
	}
	return names, snaps
}

// HistSnapshots returns every histogram's snapshot keyed by name.
func (s *Set) HistSnapshots() map[string]HistSnapshot {
	names, snaps := s.snapshotHists()
	out := make(map[string]HistSnapshot, len(names))
	for i, n := range names {
		out[n] = snaps[i]
	}
	return out
}

// MergeHistSnapshot folds a serialized histogram snapshot into the
// named histogram (disk-cache rehydration).
func (s *Set) MergeHistSnapshot(name string, snap HistSnapshot) {
	s.mu.Lock()
	h := s.histogram(name)
	s.mu.Unlock()
	h.add(snap)
}
