package stats

import (
	"strings"
	"sync"
	"testing"
)

// TestBucketBounds pins the power-of-two bucketing contract: bucket 0
// holds only zero, bucket i holds [2^(i-1), 2^i), and the last bucket
// absorbs everything larger. The table walks every boundary.
func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 30, 31},
		{^uint64(0), HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		lo, hi := BucketLower(tc.bucket), BucketUpper(tc.bucket)
		if tc.v < lo || (tc.bucket < HistBuckets-1 && tc.v >= hi) {
			t.Errorf("value %d not in its own bucket's range [%d,%d)", tc.v, lo, hi)
		}
	}
	if BucketUpper(-1) != 1 || BucketLower(-1) != 0 {
		t.Error("negative bucket index must clamp to bucket 0 bounds")
	}
	if BucketUpper(HistBuckets-1) != ^uint64(0) {
		t.Error("last bucket must be unbounded above")
	}
}

func TestHistogramObserve(t *testing.T) {
	h := &Histogram{name: "lat"}
	if h.Name() != "lat" {
		t.Fatalf("Name = %q", h.Name())
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 7} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 113 {
		t.Errorf("Sum = %d, want 113", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d, want 100", h.Max())
	}
	if want := 113.0 / 6.0; h.Mean() != want {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	s := h.Snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 2 || s.Buckets[3] != 1 || s.Buckets[7] != 1 {
		t.Errorf("bucket placement wrong: %v", s.Buckets[:8])
	}
	if s.Count != 6 || s.Sum != 113 || s.Max != 100 {
		t.Errorf("snapshot disagrees with handle: %+v", s)
	}
}

// TestHistogramObserveConcurrent verifies Observe is safe to share
// between producers: totals must be exact, the max must survive the
// CAS race.
func TestHistogramObserveConcurrent(t *testing.T) {
	h := &Histogram{name: "c"}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	if want := uint64(workers*per) * (workers*per - 1) / 2; h.Sum() != want {
		t.Errorf("Sum = %d, want %d", h.Sum(), want)
	}
	if h.Max() != workers*per-1 {
		t.Errorf("Max = %d, want %d", h.Max(), workers*per-1)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	h := NewSet("t").Histogram("hot")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42) }); n != 0 {
		t.Errorf("Observe allocates %v per call, want 0 (drain-path contract)", n)
	}
}

func TestQuantile(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h := &Histogram{name: "q"}
	// 90 samples in [1,2) and 10 in [8,16): p50 lands in the first
	// bucket, p99 in the second.
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(9)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 2 {
		t.Errorf("p50 upper = %d, want 2", got)
	}
	if got := s.Quantile(0.99); got != 16 {
		t.Errorf("p99 upper = %d, want 16", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-1); got != 2 {
		t.Errorf("Quantile(-1) = %d, want clamp to q=0 (first bucket upper 2)", got)
	}
	if got := s.Quantile(2); got != 16 {
		t.Errorf("Quantile(2) = %d, want clamp to q=1 (last bucket upper 16)", got)
	}
}

func TestHistSnapshotString(t *testing.T) {
	h := &Histogram{name: "s"}
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	got := h.Snapshot().String()
	for _, want := range []string{"count=3", "mean=2.00", "max=3", "[0,1):1", "[2,4):2"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// The overflow bucket renders with an open upper bound.
	h2 := &Histogram{name: "inf"}
	h2.Observe(^uint64(0))
	if got := h2.Snapshot().String(); !strings.Contains(got, ",inf):1") {
		t.Errorf("overflow bucket not rendered open-ended: %q", got)
	}
}

// TestSetHistogramInterning pins the handle contract: the same name
// always returns the same histogram, and names come back in creation
// order (the report and cache layers rely on the ordering).
func TestSetHistogramInterning(t *testing.T) {
	s := NewSet("core0")
	if s.Prefix() != "core0" {
		t.Fatalf("Prefix = %q", s.Prefix())
	}
	a := s.Histogram("b_second")
	b := s.Histogram("a_first")
	if s.Histogram("b_second") != a {
		t.Error("same name returned a different handle")
	}
	a.Observe(5)
	b.Observe(1)
	if got := s.HistNames(); len(got) != 2 || got[0] != "b_second" || got[1] != "a_first" {
		t.Errorf("HistNames = %v, want creation order [b_second a_first]", got)
	}
	snaps := s.HistSnapshots()
	if snaps["b_second"].Count != 1 || snaps["a_first"].Count != 1 {
		t.Errorf("HistSnapshots = %v", snaps)
	}
}

// TestMergeAndResetHistograms covers the worker-pool path (Merge folds
// shard sets into the aggregate) and the warm-up path (Reset zeroes
// histograms but keeps handles valid).
func TestMergeAndResetHistograms(t *testing.T) {
	agg := NewSet("agg")
	agg.Histogram("lat").Observe(4)

	shard := NewSet("shard")
	shard.Histogram("lat").Observe(16)
	shard.Histogram("occ").Observe(2)
	agg.Merge(shard)

	snaps := agg.HistSnapshots()
	if s := snaps["lat"]; s.Count != 2 || s.Sum != 20 || s.Max != 16 {
		t.Errorf("merged lat = %+v, want count 2 sum 20 max 16", s)
	}
	if s := snaps["occ"]; s.Count != 1 {
		t.Errorf("merge must create missing histograms: occ = %+v", s)
	}

	h := agg.Histogram("lat")
	agg.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Errorf("Reset left lat at count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if s := h.Snapshot(); s.Buckets[3] != 0 || s.Buckets[5] != 0 {
		t.Error("Reset left bucket counts behind")
	}
	h.Observe(7) // handle stays live after Reset
	if h.Count() != 1 {
		t.Error("handle dead after Reset")
	}
}

// TestMergeHistSnapshot covers disk-cache rehydration: a serialized
// snapshot folds into a fresh set exactly.
func TestMergeHistSnapshot(t *testing.T) {
	src := NewSet("src")
	for _, v := range []uint64{1, 2, 300} {
		src.Histogram("lat").Observe(v)
	}
	snap := src.HistSnapshots()["lat"]

	dst := NewSet("dst")
	dst.MergeHistSnapshot("lat", snap)
	dst.MergeHistSnapshot("lat", snap)
	got := dst.HistSnapshots()["lat"]
	if got.Count != 6 || got.Sum != 606 || got.Max != 300 {
		t.Errorf("double rehydration = %+v, want count 6 sum 606 max 300", got)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != 2*snap.Buckets[i] {
			t.Errorf("bucket %d = %d, want %d", i, got.Buckets[i], 2*snap.Buckets[i])
		}
	}
}

// TestQuantileUpperBoundSemantics pins the p50/p95/p99 upper-bound
// contract on known distributions; tusload's SLO gate reads these
// values, so their semantics must not drift. Every quantile is the
// exclusive upper bound of the power-of-two bucket holding the q-th
// sample.
func TestQuantileUpperBoundSemantics(t *testing.T) {
	cases := []struct {
		name          string
		observe       func(h *Histogram)
		p50, p95, p99 uint64
	}{
		{
			// Uniform 1..1000: the 500th sample is 500, in bucket
			// [256,512); the 950th and 990th are in [512,1024).
			name: "uniform-1-1000",
			observe: func(h *Histogram) {
				for v := uint64(1); v <= 1000; v++ {
					h.Observe(v)
				}
			},
			p50: 512, p95: 1024, p99: 1024,
		},
		{
			// Point mass: every quantile lands in the single occupied
			// bucket [4,8).
			name: "point-mass-7",
			observe: func(h *Histogram) {
				for i := 0; i < 1000; i++ {
					h.Observe(7)
				}
			},
			p50: 8, p95: 8, p99: 8,
		},
		{
			// Two modes, 90%/10%: the median sits in the low mode's
			// bucket [1,2); the tail quantiles in the high mode's
			// [512,1024).
			name: "two-mode-1-1000",
			observe: func(h *Histogram) {
				for i := 0; i < 900; i++ {
					h.Observe(1)
				}
				for i := 0; i < 100; i++ {
					h.Observe(1000)
				}
			},
			p50: 2, p95: 1024, p99: 1024,
		},
		{
			// Zero samples occupy bucket 0, whose upper bound is 1.
			name: "all-zero",
			observe: func(h *Histogram) {
				for i := 0; i < 10; i++ {
					h.Observe(0)
				}
			},
			p50: 1, p95: 1, p99: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &Histogram{name: tc.name}
			tc.observe(h)
			s := h.Snapshot()
			if got := s.Quantile(0.50); got != tc.p50 {
				t.Errorf("p50 = %d, want %d", got, tc.p50)
			}
			if got := s.Quantile(0.95); got != tc.p95 {
				t.Errorf("p95 = %d, want %d", got, tc.p95)
			}
			if got := s.Quantile(0.99); got != tc.p99 {
				t.Errorf("p99 = %d, want %d", got, tc.p99)
			}
			// The summary export must agree with the raw quantile calls.
			sum := s.Summary()
			if sum.P50 != tc.p50 || sum.P95 != tc.p95 || sum.P99 != tc.p99 {
				t.Errorf("Summary quantiles = %d/%d/%d, want %d/%d/%d",
					sum.P50, sum.P95, sum.P99, tc.p50, tc.p95, tc.p99)
			}
			if sum.Count != s.Count || sum.Max != s.Max {
				t.Errorf("Summary count/max = %d/%d, want %d/%d", sum.Count, sum.Max, s.Count, s.Max)
			}
		})
	}
}

// TestQuantSummaryEmpty: an empty histogram exports an all-zero summary
// (no NaNs leak into the JSON report).
func TestQuantSummaryEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Summary(); got != (QuantSummary{}) {
		t.Errorf("empty summary = %+v, want zero value", got)
	}
}
