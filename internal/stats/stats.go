// Package stats collects named counters and distributions from every
// simulated component. A Set is cheap to update on the hot path (an
// atomic add through interned Counter handles) and can be merged and
// formatted by the experiment harness.
//
// Concurrency: the parallel harness runs one simulated system per
// goroutine, each with its own Sets, but merges them into shared
// aggregates and snapshots them while producers may still be running.
// Counter updates are atomic and every Set registry operation (Counter,
// Get, Merge, Snapshot, Subtract, Reset, Names, String) is guarded by a
// mutex, so a Set is safe for concurrent use. Merge acquires the two
// Sets' locks strictly in sequence (snapshot the source, then add into
// the destination), so concurrent cross-merges cannot deadlock.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. Components hold a
// *Counter obtained from Set.Counter and bump it directly; updates are
// atomic, so producers on different goroutines may share a handle.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set is a registry of counters belonging to one component or system.
type Set struct {
	prefix string

	mu       sync.Mutex
	counters map[string]*Counter
	order    []string

	hists     map[string]*Histogram
	histOrder []string
}

// NewSet creates a stats registry. The prefix (e.g. "core0") is
// prepended to every counter name in formatted output.
func NewSet(prefix string) *Set {
	return &Set{prefix: prefix, counters: make(map[string]*Counter)}
}

// Prefix returns the formatting prefix the Set was created with.
func (s *Set) Prefix() string { return s.prefix }

// counter is Counter without the lock; callers must hold s.mu.
func (s *Set) counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Counter returns the counter with the given name, creating it at zero
// on first use. The returned handle stays valid for the Set's lifetime.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counter(name)
}

// Get returns the value of a counter, or zero if it was never created.
func (s *Set) Get(name string) uint64 {
	s.mu.Lock()
	c, ok := s.counters[name]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// Names returns all registered counter names in creation order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// snapshotOrdered captures names (creation order) and values together.
func (s *Set) snapshotOrdered() ([]string, []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.order))
	copy(names, s.order)
	vals := make([]uint64, len(names))
	for i, n := range names {
		vals[i] = s.counters[n].Value()
	}
	return names, vals
}

// Merge adds every counter from other into s (matching by name). It is
// safe to call while producers are still bumping either Set; each
// source counter contributes the value it held when Merge sampled it.
func (s *Set) Merge(other *Set) {
	names, vals := other.snapshotOrdered()
	hnames, hsnaps := other.snapshotHists()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, name := range names {
		s.counter(name).Add(vals[i])
	}
	for i, name := range hnames {
		s.histogram(name).add(hsnaps[i])
	}
}

// Snapshot captures the current counter values.
func (s *Set) Snapshot() map[string]uint64 {
	names, vals := s.snapshotOrdered()
	out := make(map[string]uint64, len(names))
	for i, n := range names {
		out[n] = vals[i]
	}
	return out
}

// Subtract removes a snapshot's values from the counters (used to
// discard warm-up statistics). Counters created after the snapshot are
// left unchanged.
func (s *Set) Subtract(snap map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, v := range snap {
		c, ok := s.counters[name]
		if !ok {
			continue
		}
		// Producers may race this clamp; the harness only subtracts
		// between run phases, when the counter is quiescent.
		if cur := c.Value(); cur >= v {
			c.v.Store(cur - v)
		} else {
			c.v.Store(0)
		}
	}
}

// Reset zeroes all counters and histograms, keeping handles valid.
// (Warm-up discard resets; Subtract is counter-only and leaves
// histograms alone, which the harness never relies on.)
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.v.Store(0)
	}
	for _, h := range s.hists {
		h.reset()
	}
}

// String formats all counters, one per line, sorted by name.
func (s *Set) String() string {
	names, vals := s.snapshotOrdered()
	byName := make(map[string]uint64, len(names))
	for i, n := range names {
		byName[n] = vals[i]
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s.%s = %d\n", s.prefix, n, byName[n])
	}
	hnames, hsnaps := s.snapshotHists()
	byHist := make(map[string]HistSnapshot, len(hnames))
	for i, n := range hnames {
		byHist[n] = hsnaps[i]
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		fmt.Fprintf(&b, "%s.%s: %s\n", s.prefix, n, byHist[n])
	}
	return b.String()
}

// Ratio returns a/b as float64, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
