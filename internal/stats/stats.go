// Package stats collects named counters and distributions from every
// simulated component. A Set is cheap to update on the hot path (a map
// lookup amortized away by interned Counter handles) and can be merged
// and formatted by the experiment harness.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count. Components hold a
// *Counter obtained from Set.Counter and bump it directly.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Set is a registry of counters belonging to one component or system.
type Set struct {
	prefix   string
	counters map[string]*Counter
	order    []string
}

// NewSet creates a stats registry. The prefix (e.g. "core0") is
// prepended to every counter name in formatted output.
func NewSet(prefix string) *Set {
	return &Set{prefix: prefix, counters: make(map[string]*Counter)}
}

// Counter returns the counter with the given name, creating it at zero
// on first use. The returned handle stays valid for the Set's lifetime.
func (s *Set) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Get returns the value of a counter, or zero if it was never created.
func (s *Set) Get(name string) uint64 {
	if c, ok := s.counters[name]; ok {
		return c.v
	}
	return 0
}

// Names returns all registered counter names in creation order.
func (s *Set) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Merge adds every counter from other into s (matching by name).
func (s *Set) Merge(other *Set) {
	for _, name := range other.order {
		s.Counter(name).Add(other.counters[name].v)
	}
}

// Snapshot captures the current counter values.
func (s *Set) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.counters))
	for name, c := range s.counters {
		out[name] = c.v
	}
	return out
}

// Subtract removes a snapshot's values from the counters (used to
// discard warm-up statistics). Counters created after the snapshot are
// left unchanged.
func (s *Set) Subtract(snap map[string]uint64) {
	for name, v := range snap {
		if c, ok := s.counters[name]; ok {
			if c.v >= v {
				c.v -= v
			} else {
				c.v = 0
			}
		}
	}
}

// Reset zeroes all counters, keeping handles valid.
func (s *Set) Reset() {
	for _, c := range s.counters {
		c.v = 0
	}
}

// String formats all counters, one per line, sorted by name.
func (s *Set) String() string {
	names := make([]string, len(s.order))
	copy(names, s.order)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s.%s = %d\n", s.prefix, n, s.counters[n].v)
	}
	return b.String()
}

// Ratio returns a/b as float64, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
