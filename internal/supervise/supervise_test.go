package supervise

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// testPolicy is a fast policy for unit tests: no real sleeping, tiny
// deadlines allowed, a marker-based transient classifier.
func testPolicy(sleeps *[]time.Duration) Policy {
	return Policy{
		MaxRetries:  2,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Fallback:    time.Second,
		MinDeadline: time.Millisecond,
		Transient: func(err error) bool {
			return err != nil && errors.Is(err, errTransient)
		},
		Sleep: func(d time.Duration) {
			if sleeps != nil {
				*sleeps = append(*sleeps, d)
			}
		},
	}
}

var (
	errTransient     = errors.New("watchdog tripped under chaos")
	errDeterministic = errors.New("invariant violated")
)

// TestTransientRetriesThenSucceeds: a chaos-style transient failure
// retries with backoff and the cell ultimately succeeds — no
// quarantine, no error.
func TestTransientRetriesThenSucceeds(t *testing.T) {
	var sleeps []time.Duration
	s := New(testPolicy(&sleeps))
	calls := 0
	err := s.Do("cell/a", "st", func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("attempt %d: %w", calls, errTransient)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("expected eventual success, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("expected 3 attempts, got %d", calls)
	}
	if len(sleeps) != 2 {
		t.Fatalf("expected 2 backoff sleeps, got %v", sleeps)
	}
	for i, d := range sleeps {
		if d < 10*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("backoff %d = %v outside [base, cap]", i, d)
		}
	}
	if s.Retries() != 2 {
		t.Fatalf("retry accounting: got %d, want 2", s.Retries())
	}
	if len(s.QuarantinedCells()) != 0 {
		t.Fatal("successful cell must not be quarantined")
	}
}

// TestDeterministicQuarantinesImmediately: a deterministic failure goes
// straight to quarantine with zero retries, and subsequent attempts on
// the same key short-circuit without running.
func TestDeterministicQuarantinesImmediately(t *testing.T) {
	var sleeps []time.Duration
	s := New(testPolicy(&sleeps))
	calls := 0
	err := s.Do("cell/b", "st", func() error {
		calls++
		return errDeterministic
	})
	var q *Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("expected *Quarantined, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("deterministic failure must not retry: %d calls", calls)
	}
	if len(sleeps) != 0 {
		t.Fatalf("deterministic failure must not back off: %v", sleeps)
	}
	if !errors.Is(err, errDeterministic) {
		t.Fatal("quarantine must unwrap to the underlying failure")
	}
	// Second attempt: short-circuit.
	err2 := s.Do("cell/b", "st", func() error {
		calls++
		return nil
	})
	if !errors.As(err2, &q) {
		t.Fatalf("expected cached quarantine, got %v", err2)
	}
	if calls != 1 {
		t.Fatal("quarantined cell must not re-execute")
	}
}

// TestTransientExhaustedQuarantines: a persistent transient failure
// exhausts its retry budget and lands in quarantine with a reason
// recording the exhaustion.
func TestTransientExhaustedQuarantines(t *testing.T) {
	var sleeps []time.Duration
	s := New(testPolicy(&sleeps))
	calls := 0
	err := s.Do("cell/c", "st", func() error {
		calls++
		return errTransient
	})
	var q *Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("expected *Quarantined, got %v", err)
	}
	if calls != 3 { // initial + MaxRetries
		t.Fatalf("expected 3 attempts, got %d", calls)
	}
	if q.Reason == "" || !errors.Is(err, errTransient) {
		t.Fatalf("quarantine must carry reason + cause: %+v", q)
	}
}

// TestPanicCaptured: a panicking cell is recovered, wrapped, classified
// deterministic, and quarantined — the process survives.
func TestPanicCaptured(t *testing.T) {
	s := New(testPolicy(nil))
	err := s.Do("cell/p", "st", func() error {
		panic("index out of range [114]")
	})
	var q *Quarantined
	if !errors.As(err, &q) {
		t.Fatalf("expected *Quarantined, got %v", err)
	}
	var p *PanicError
	if !errors.As(err, &p) {
		t.Fatalf("expected wrapped *PanicError, got %v", err)
	}
	if p.Value != "index out of range [114]" || p.Stack == "" {
		t.Fatalf("panic payload/stack missing: %+v", p)
	}
}

// TestPanicWrapHook: a WrapPanic hook converts the panic into the
// caller's error type (the harness turns it into a CrashReport).
func TestPanicWrapHook(t *testing.T) {
	p := testPolicy(nil)
	type wrapped struct{ error }
	p.WrapPanic = func(key string, v any, stack []byte) error {
		return wrapped{fmt.Errorf("crash report for %s: %v (%d stack bytes)", key, v, len(stack))}
	}
	s := New(p)
	err := s.Do("cell/w", "st", func() error { panic("boom") })
	var w wrapped
	if !errors.As(err, &w) {
		t.Fatalf("expected hook-wrapped error, got %v", err)
	}
}

// TestDeadlineIsTransient: an attempt that exceeds its deadline is
// abandoned and retried; a fast second attempt succeeds.
func TestDeadlineIsTransient(t *testing.T) {
	p := testPolicy(nil)
	p.Fallback = 25 * time.Millisecond
	s := New(p)
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int32
	err := s.Do("cell/d", "st", func() error {
		if calls.Add(1) == 1 {
			<-release // hang past the deadline
		}
		return nil
	})
	if err != nil {
		t.Fatalf("expected success after deadline retry, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("expected 2 attempts, got %d", got)
	}
	if s.Retries() != 1 {
		t.Fatalf("deadline retry accounting: %d", s.Retries())
	}
}

// TestDeadlineFromCalibration: once a class has completions, its
// deadline derives from the slowest observed cell, not the fallback.
func TestDeadlineFromCalibration(t *testing.T) {
	c := NewCalibrator()
	fallback := time.Hour
	if d := c.Deadline("st", 8, time.Millisecond, fallback); d != fallback {
		t.Fatalf("uncalibrated class must use fallback, got %v", d)
	}
	c.Observe("st", 10*time.Millisecond)
	c.Observe("st", 4*time.Millisecond)
	if d := c.Deadline("st", 8, time.Millisecond, fallback); d != 80*time.Millisecond {
		t.Fatalf("calibrated deadline = %v, want 80ms (8 x slowest)", d)
	}
	// The floor guards tiny classes.
	c.Observe("mt", 10*time.Microsecond)
	if d := c.Deadline("mt", 8, 2*time.Second, fallback); d != 2*time.Second {
		t.Fatalf("floored deadline = %v, want 2s", d)
	}
	if c.Samples("st") != 2 || c.Samples("mt") != 1 {
		t.Fatal("sample accounting wrong")
	}
	// The supervisor feeds the calibrator through Do.
	p := testPolicy(nil)
	s := New(p)
	if err := s.Do("cell/x", "st", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if s.calib.Samples("st") != 1 {
		t.Fatal("Do must calibrate on success")
	}
}

// TestQuarantinePreload: resume-style preloading poisons cells without
// running them.
func TestQuarantinePreload(t *testing.T) {
	s := New(testPolicy(nil))
	s.Quarantine("cell/q", "poisoned in a prior run")
	err := s.Do("cell/q", "st", func() error {
		t.Fatal("preloaded quarantine must not execute")
		return nil
	})
	var q *Quarantined
	if !errors.As(err, &q) || q.Reason != "poisoned in a prior run" {
		t.Fatalf("expected preloaded quarantine, got %v", err)
	}
}

// TestBackoffDeterministic: equal seeds produce equal backoff
// schedules (the jitter is pseudo-random, not nondeterministic).
func TestBackoffDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := testPolicy(&sleeps)
		p.Seed = 42
		s := New(p)
		s.Do("cell/j", "st", func() error { return errTransient })
		return sleeps
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("jitter not deterministic for equal seeds: %v vs %v", a, b)
	}
}

// TestErrorStrings pins the error types' rendered messages and unwrap
// behaviour — they surface in logs and quarantine reports.
func TestErrorStrings(t *testing.T) {
	inner := errors.New("boom")
	q := &Quarantined{Key: "a/TUS/114", Reason: "deterministic failure", Err: inner}
	if got := q.Error(); got != "supervise: cell a/TUS/114 quarantined: deterministic failure" {
		t.Fatalf("Quarantined.Error() = %q", got)
	}
	if !errors.Is(q, inner) {
		t.Fatal("Quarantined does not unwrap to its cause")
	}
	d := &DeadlineError{Key: "b/base/32", Limit: 2 * time.Second}
	if got := d.Error(); got != "supervise: cell b/base/32 exceeded its 2s deadline" {
		t.Fatalf("DeadlineError.Error() = %q", got)
	}
}

// TestNewDefaultsAndWarnf: New fills zero policy fields with defaults,
// honors explicit ones, and routes warnings through the hook.
func TestNewDefaultsAndWarnf(t *testing.T) {
	s := New(Policy{})
	if s == nil {
		t.Fatal("New returned nil")
	}
	var warned []string
	s2 := New(Policy{
		Fallback:       time.Second,
		DeadlineFactor: 3,
		MinDeadline:    time.Millisecond,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     time.Millisecond,
		Warnf:          func(format string, args ...any) { warned = append(warned, fmt.Sprintf(format, args...)) },
	})
	s2.warnf("cell %s retried", "a/base/114")
	if len(warned) != 1 || warned[0] != "cell a/base/114 retried" {
		t.Fatalf("warnf hook: %v", warned)
	}
	// No hook installed: warnf is a safe no-op.
	s.warnf("dropped %d", 1)
}
