package supervise

import (
	"sync"
	"time"
)

// Calibrator derives per-class cell deadlines from observed runtimes:
// the deadline for a class is a multiple of the slowest completion seen
// so far, floored so sub-millisecond classes cannot produce flaky
// deadlines, and falling back to the policy timeout until the first
// completion lands. Classes partition cells by expected runtime (the
// harness uses the single-thread/multi-thread split, whose trace
// lengths differ by an order of magnitude).
type Calibrator struct {
	mu  sync.Mutex
	max map[string]time.Duration
	n   map[string]int
}

// NewCalibrator returns an empty calibrator.
func NewCalibrator() *Calibrator {
	return &Calibrator{max: map[string]time.Duration{}, n: map[string]int{}}
}

// Observe records one successful cell completion.
func (c *Calibrator) Observe(class string, d time.Duration) {
	c.mu.Lock()
	if d > c.max[class] {
		c.max[class] = d
	}
	c.n[class]++
	c.mu.Unlock()
}

// Samples returns how many completions the class has contributed.
func (c *Calibrator) Samples(class string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n[class]
}

// Deadline returns the calibrated deadline for the class: factor times
// the slowest observed completion, no less than floor, or fallback when
// the class has no data yet.
func (c *Calibrator) Deadline(class string, factor float64, floor, fallback time.Duration) time.Duration {
	c.mu.Lock()
	m, seen := c.max[class], c.n[class] > 0
	c.mu.Unlock()
	if !seen {
		return fallback
	}
	d := time.Duration(factor * float64(m))
	if d < floor {
		d = floor
	}
	return d
}
