// Package supervise is the harness's cell supervision layer: every
// experiment cell runs inside a goroutine sandbox with a calibrated
// deadline, panic capture, bounded retries with decorrelated-jitter
// backoff for transient failures, and a quarantine list so one poisoned
// cell degrades its figure instead of killing the whole run. It pairs
// with a crash-consistent run journal (journal.go) that lets a killed
// run resume and skip completed work.
//
// The design mirrors the paper's own premise: let speculative work
// proceed optimistically, detect the rare failure precisely, and repair
// from a durable log instead of failing wholesale.
package supervise

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Quarantined is the error a supervised cell returns once it has been
// poisoned: the cell will not be attempted again this run (or, via the
// journal, on resume). Figures treat it as "skip this cell and record a
// degraded entry", not as a fatal error.
type Quarantined struct {
	Key    string
	Reason string
	Err    error
}

// Error implements error.
func (q *Quarantined) Error() string {
	return fmt.Sprintf("supervise: cell %s quarantined: %s", q.Key, q.Reason)
}

// Unwrap exposes the underlying failure for errors.As chains.
func (q *Quarantined) Unwrap() error { return q.Err }

// DeadlineError reports a cell attempt that exceeded its deadline. The
// attempt goroutine is abandoned (goroutines cannot be killed), so the
// supervised function must tolerate a zombie attempt racing a retry;
// the harness serializes result publication behind a mutex for this.
type DeadlineError struct {
	Key   string
	Limit time.Duration
}

// Error implements error.
func (d *DeadlineError) Error() string {
	return fmt.Sprintf("supervise: cell %s exceeded its %v deadline", d.Key, d.Limit)
}

// PanicError wraps a recovered panic from a supervised cell when no
// Policy.WrapPanic hook is installed.
type PanicError struct {
	Key   string
	Value any
	Stack string
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("supervise: cell %s panicked: %v", p.Key, p.Value)
}

// Policy configures a Supervisor. The zero value is usable: no retries,
// deterministic-only classification, a DefaultFallback deadline.
type Policy struct {
	// MaxRetries bounds re-attempts after a transient failure; a
	// deterministic failure never retries. Default 0 (no retries).
	MaxRetries int
	// BaseBackoff seeds the decorrelated-jitter backoff between
	// transient retries; MaxBackoff caps it.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Fallback is the per-cell deadline used before calibration has any
	// data for the cell's class. Zero selects DefaultFallback.
	Fallback time.Duration
	// DeadlineFactor scales the calibrated per-class estimate into a
	// deadline (deadline = factor x max observed duration). Zero selects
	// DefaultDeadlineFactor.
	DeadlineFactor float64
	// MinDeadline floors calibrated deadlines so a class of sub-ms cells
	// cannot produce a flaky microsecond deadline. Zero selects
	// DefaultMinDeadline.
	MinDeadline time.Duration
	// Transient classifies an attempt failure: true means retry (with
	// backoff, up to MaxRetries), false means quarantine immediately.
	// A nil classifier treats every failure as deterministic. Deadline
	// misses (*DeadlineError) are always considered transient: host
	// scheduling noise, not simulator state.
	Transient func(error) bool
	// WrapPanic converts a recovered panic into the caller's error type
	// (the harness builds a system.CrashReport). Nil wraps into
	// *PanicError.
	WrapPanic func(key string, value any, stack []byte) error
	// Seed drives the jitter PRNG; runs with equal seeds back off
	// identically. Zero selects 1.
	Seed uint64
	// Sleep is the backoff clock, injectable for tests (nil = time.Sleep).
	Sleep func(time.Duration)
	// Warnf receives one-line operational warnings (retries, quarantines).
	// Nil discards them. Never write these to stdout: figure output must
	// stay byte-identical.
	Warnf func(format string, args ...any)
}

// Defaults for the zero Policy fields.
const (
	DefaultFallback       = 10 * time.Minute
	DefaultDeadlineFactor = 8.0
	DefaultMinDeadline    = 2 * time.Second
	DefaultBaseBackoff    = 100 * time.Millisecond
	DefaultMaxBackoff     = 2 * time.Second
)

// Supervisor runs cells under one Policy, sharing a calibrator, a
// quarantine list, and (optionally) a run journal. All methods are safe
// for concurrent use.
type Supervisor struct {
	p     Policy
	calib *Calibrator

	mu          sync.Mutex
	quarantined map[string]string // key -> reason
	rng         uint64
	journal     *Journal

	// Attempt accounting (observability, not control flow).
	retries     int
	quarantines int
}

// New builds a supervisor, filling zero Policy fields with defaults.
func New(p Policy) *Supervisor {
	if p.Fallback <= 0 {
		p.Fallback = DefaultFallback
	}
	if p.DeadlineFactor <= 0 {
		p.DeadlineFactor = DefaultDeadlineFactor
	}
	if p.MinDeadline <= 0 {
		p.MinDeadline = DefaultMinDeadline
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return &Supervisor{
		p:           p,
		calib:       NewCalibrator(),
		quarantined: map[string]string{},
		rng:         p.Seed,
	}
}

// SetJournal attaches a run journal: every supervised cell start/finish
// is appended to it. Nil detaches.
func (s *Supervisor) SetJournal(j *Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// Quarantine marks a cell poisoned without running it (resume preloads
// the prior run's quarantine list through this).
func (s *Supervisor) Quarantine(key, reason string) {
	s.mu.Lock()
	if _, dup := s.quarantined[key]; !dup {
		s.quarantined[key] = reason
		s.quarantines++
	}
	s.mu.Unlock()
}

// QuarantinedCells returns a copy of the quarantine list.
func (s *Supervisor) QuarantinedCells() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.quarantined))
	for k, v := range s.quarantined {
		out[k] = v
	}
	return out
}

// Retries returns how many transient re-attempts the supervisor issued.
func (s *Supervisor) Retries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries
}

// warnf routes an operational warning through the policy hook.
func (s *Supervisor) warnf(format string, args ...any) {
	if s.p.Warnf != nil {
		s.p.Warnf(format, args...)
	}
}

// splitmix64 is the jitter PRNG step (public-domain constants; same
// generator the fault injector uses).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// nextBackoff computes the decorrelated-jitter delay: uniform in
// [base, 3*prev], capped at MaxBackoff.
func (s *Supervisor) nextBackoff(prev time.Duration) time.Duration {
	s.mu.Lock()
	s.rng = splitmix64(s.rng)
	r := s.rng
	s.mu.Unlock()
	lo, hi := s.p.BaseBackoff, 3*prev
	if hi <= lo {
		hi = lo + 1
	}
	d := lo + time.Duration(r%uint64(hi-lo))
	if d > s.p.MaxBackoff {
		d = s.p.MaxBackoff
	}
	return d
}

// transient classifies an attempt failure for retry purposes.
func (s *Supervisor) transient(err error) bool {
	if _, ok := err.(*DeadlineError); ok {
		return true
	}
	if s.p.Transient != nil {
		return s.p.Transient(err)
	}
	return false
}

// attempt runs fn once in a sandbox goroutine with panic capture and the
// given deadline. On deadline the goroutine is abandoned, never joined.
func (s *Supervisor) attempt(key string, deadline time.Duration, fn func() error) error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				stack := debug.Stack()
				if s.p.WrapPanic != nil {
					done <- s.p.WrapPanic(key, v, stack)
					return
				}
				done <- &PanicError{Key: key, Value: v, Stack: string(stack)}
			}
		}()
		done <- fn()
	}()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return &DeadlineError{Key: key, Limit: deadline}
	}
}

// Do runs one cell under supervision. class groups cells with similar
// expected runtimes for deadline calibration (e.g. "st" vs "mt").
//
// The returned error is nil on success, a *Quarantined once the cell is
// poisoned (deterministic failure, or transient retries exhausted), or
// fn's own error only when it cannot be represented as a quarantine
// (never, today). Calling Do again for a quarantined key returns
// immediately without running fn.
func (s *Supervisor) Do(key, class string, fn func() error) error {
	s.mu.Lock()
	if reason, bad := s.quarantined[key]; bad {
		s.mu.Unlock()
		return &Quarantined{Key: key, Reason: reason}
	}
	j := s.journal
	s.mu.Unlock()

	if j != nil {
		j.CellStart(key)
	}
	backoff := s.p.BaseBackoff
	var err error
	for try := 0; ; try++ {
		deadline := s.calib.Deadline(class, s.p.DeadlineFactor, s.p.MinDeadline, s.p.Fallback)
		start := time.Now()
		err = s.attempt(key, deadline, fn)
		if err == nil {
			s.calib.Observe(class, time.Since(start))
			if j != nil {
				j.CellFinish(key, StatusDone, "")
			}
			return nil
		}
		if !s.transient(err) || try >= s.p.MaxRetries {
			break
		}
		backoff = s.nextBackoff(backoff)
		s.mu.Lock()
		s.retries++
		s.mu.Unlock()
		s.warnf("supervise: cell %s attempt %d failed transiently (%v); retrying in %v",
			key, try+1, err, backoff)
		if j != nil {
			j.CellRetry(key, err.Error())
		}
		s.p.Sleep(backoff)
	}
	reason := classifyReason(err, s.transient(err))
	s.Quarantine(key, reason)
	s.warnf("supervise: cell %s quarantined: %s", key, reason)
	if j != nil {
		j.CellFinish(key, StatusQuarantined, reason)
	}
	return &Quarantined{Key: key, Reason: reason, Err: err}
}

// classifyReason renders the quarantine reason, tagging whether the
// failure was deterministic or a transient that exhausted its retries.
func classifyReason(err error, transient bool) string {
	if transient {
		return fmt.Sprintf("transient failure persisted past retry budget: %v", err)
	}
	return fmt.Sprintf("deterministic failure: %v", err)
}
