package supervise

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// The run journal is an append-only JSONL file under the journal
// directory (.tusjournal/ by convention), one self-checksummed record
// per line. Crash consistency comes from three properties:
//
//  1. Birth by temp+rename: the header record is written to a temp file
//     and renamed into place, so a journal either exists with a valid
//     header or not at all — never torn.
//  2. Append-only records, each carrying the SHA-256 of its own
//     canonical JSON, synced per write: a SIGKILL can truncate at most
//     the tail record, and any torn/corrupted/duplicated record is
//     detected and skipped on load, never fatal.
//  3. Replay semantics: a cell with a start but no finish was in flight
//     at the kill and is simply re-armed; finished cells are skipped via
//     the journal plus the content-addressed disk cache; quarantined
//     cells stay quarantined.

// Record types.
const (
	TypeRunStart   = "run_start"
	TypeCellStart  = "cell_start"
	TypeCellRetry  = "cell_retry"
	TypeCellFinish = "cell_finish"
	TypeRunFinish  = "run_finish"
)

// Cell finish statuses.
const (
	StatusDone        = "done"
	StatusQuarantined = "quarantined"
)

// Record is one journal line. SHA256 is the hex SHA-256 of the record's
// canonical JSON with the sha256 field empty.
type Record struct {
	Seq    int    `json:"seq"`
	Type   string `json:"type"`
	UnixMS int64  `json:"t,omitempty"`
	Cell   string `json:"cell,omitempty"`
	Status string `json:"status,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Header carries the run's reconstruction data (tool flags, scale,
	// cache dir) on the run_start record; the journal treats it as
	// opaque bytes.
	Header json.RawMessage `json:"header,omitempty"`
	SHA256 string          `json:"sha256"`
}

// seal computes and installs the record's self-checksum.
func (r *Record) seal() error {
	r.SHA256 = ""
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	r.SHA256 = hex.EncodeToString(sum[:])
	return nil
}

// verify recomputes the checksum and reports whether it matches.
func (r Record) verify() bool {
	want := r.SHA256
	r.SHA256 = ""
	data, err := json.Marshal(r)
	if err != nil {
		return false
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]) == want
}

// NewRunID returns a sortable, collision-resistant run identifier
// (wall-clock prefix + random suffix).
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock alone; the timestamp still
		// disambiguates runs more than a second apart.
		return time.Now().UTC().Format("20060102-150405")
	}
	return time.Now().UTC().Format("20060102-150405") + "-" + hex.EncodeToString(b[:])
}

// Journal is an open, appendable run journal. Safe for concurrent use.
type Journal struct {
	RunID string
	path  string

	mu   sync.Mutex
	f    *os.File
	seq  int
	werr error // first write error; later appends are dropped, not fatal
}

// journalPath is the canonical file location for a run.
func journalPath(dir, runID string) string {
	return filepath.Join(dir, runID+".jsonl")
}

// Create starts a new journal for runID under dir, committing the
// header record via temp+rename so a crash during creation can never
// leave a torn journal behind.
func Create(dir, runID string, header any) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervise: journal dir: %w", err)
	}
	hdr, err := json.Marshal(header)
	if err != nil {
		return nil, fmt.Errorf("supervise: journal header: %w", err)
	}
	rec := Record{Seq: 0, Type: TypeRunStart, UnixMS: time.Now().UnixMilli(), Header: hdr}
	if err := rec.seal(); err != nil {
		return nil, err
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(dir, runID+".tmp*")
	if err != nil {
		return nil, err
	}
	if _, err := tmp.Write(append(line, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	path := journalPath(dir, runID)
	if err := os.Rename(tmp.Name(), path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	// The renamed fd still points at the journal inode; keep appending
	// through it.
	return &Journal{RunID: runID, path: path, f: tmp, seq: 1}, nil
}

// OpenAppend reopens an existing journal for appending (the resume
// path). nextSeq should be one past the last valid record's Seq.
func OpenAppend(dir, runID string, nextSeq int) (*Journal, error) {
	path := journalPath(dir, runID)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	// If the kill truncated a torn tail record mid-line, appending would
	// otherwise glue the next record onto it and corrupt BOTH; start
	// resumed output on a fresh line. Loaders skip blank lines.
	if st, serr := f.Stat(); serr == nil && st.Size() > 0 {
		buf := make([]byte, 1)
		if _, rerr := f.ReadAt(buf, st.Size()-1); rerr == nil && buf[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	return &Journal{RunID: runID, path: path, f: f, seq: nextSeq}, nil
}

// append seals and writes one record, syncing so the record survives a
// SIGKILL immediately after the call returns. Write errors are sticky
// and silent: journaling is best-effort and must never fail the run.
func (j *Journal) append(rec Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.werr != nil {
		return
	}
	rec.Seq = j.seq
	rec.UnixMS = time.Now().UnixMilli()
	if err := rec.seal(); err != nil {
		j.werr = err
		return
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		j.werr = err
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.werr = err
		return
	}
	j.f.Sync()
	j.seq++
}

// CellStart journals a cell entering execution.
func (j *Journal) CellStart(key string) {
	j.append(Record{Type: TypeCellStart, Cell: key})
}

// CellRetry journals a transient failure that will be re-attempted.
func (j *Journal) CellRetry(key, reason string) {
	j.append(Record{Type: TypeCellRetry, Cell: key, Reason: reason})
}

// CellFinish journals a cell's terminal state (done or quarantined).
func (j *Journal) CellFinish(key, status, reason string) {
	j.append(Record{Type: TypeCellFinish, Cell: key, Status: status, Reason: reason})
}

// Finish journals clean run completion.
func (j *Journal) Finish() {
	j.append(Record{Type: TypeRunFinish})
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// RunState is a journal replayed into resumable form. Corrupt records
// degrade to Warnings entries, never load failures.
type RunState struct {
	RunID  string
	Header json.RawMessage
	// Done lists cells with a finish record of status "done".
	Done map[string]bool
	// Quarantined maps poisoned cells to their recorded reason.
	Quarantined map[string]string
	// InFlight lists cells with a start but no finish: in flight when
	// the run died, to be re-armed on resume.
	InFlight map[string]bool
	// Finished reports whether a run_finish record was seen (the run
	// completed; resuming it is a no-op replay).
	Finished bool
	// NextSeq is one past the last valid record, for OpenAppend.
	NextSeq int
	// Warnings lists tolerated corruption (truncated tail, checksum
	// mismatches, duplicate finishes).
	Warnings []string
}

// Load replays the journal for runID under dir. It never fails on
// record-level corruption: a truncated tail, a bad checksum, or a
// duplicate finish is skipped with a warning. Only a missing/unreadable
// file or a corrupt header record is an error (there is nothing to
// resume without the header).
func Load(dir, runID string) (*RunState, error) {
	data, err := os.ReadFile(journalPath(dir, runID))
	if err != nil {
		return nil, fmt.Errorf("supervise: journal: %w", err)
	}
	st := &RunState{
		RunID:       runID,
		Done:        map[string]bool{},
		Quarantined: map[string]string{},
		InFlight:    map[string]bool{},
	}
	started := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			st.warnf("line %d: unparseable record skipped (torn tail?): %v", lineNo, err)
			continue
		}
		if !rec.verify() {
			st.warnf("line %d: checksum mismatch, %s record skipped", lineNo, rec.Type)
			continue
		}
		switch rec.Type {
		case TypeRunStart:
			if st.Header != nil {
				st.warnf("line %d: duplicate run_start skipped", lineNo)
				continue
			}
			st.Header = rec.Header
		case TypeCellStart:
			started[rec.Cell] = true
		case TypeCellRetry:
			// informational only
		case TypeCellFinish:
			if st.Done[rec.Cell] {
				st.warnf("line %d: duplicate finish for %s skipped", lineNo, rec.Cell)
				continue
			}
			if _, dup := st.Quarantined[rec.Cell]; dup {
				st.warnf("line %d: duplicate finish for %s skipped", lineNo, rec.Cell)
				continue
			}
			switch rec.Status {
			case StatusQuarantined:
				st.Quarantined[rec.Cell] = rec.Reason
			case StatusDone:
				st.Done[rec.Cell] = true
			default:
				st.warnf("line %d: unknown finish status %q skipped", lineNo, rec.Status)
				continue
			}
		case TypeRunFinish:
			st.Finished = true
		default:
			st.warnf("line %d: unknown record type %q skipped", lineNo, rec.Type)
			continue
		}
		if rec.Seq >= st.NextSeq {
			st.NextSeq = rec.Seq + 1
		}
	}
	if err := sc.Err(); err != nil {
		st.warnf("scan stopped early: %v", err)
	}
	// A file whose final bytes were cut mid-line leaves the tail without
	// a newline; the scanner still yields it and the JSON parse above
	// flags it. Nothing more to do here.
	if st.Header == nil {
		return nil, fmt.Errorf("supervise: journal %s has no valid run_start header", runID)
	}
	for c := range started {
		if !st.Done[c] {
			if _, q := st.Quarantined[c]; !q {
				st.InFlight[c] = true
			}
		}
	}
	return st, nil
}

func (st *RunState) warnf(format string, args ...any) {
	st.Warnings = append(st.Warnings, fmt.Sprintf(format, args...))
}

// List returns the run IDs with journals under dir, newest-named last
// (IDs sort lexically by creation time).
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".jsonl") {
			ids = append(ids, strings.TrimSuffix(name, ".jsonl"))
		}
	}
	return ids, nil
}
