package supervise

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

type testHeader struct {
	Tool string `json:"tool"`
	Ops  int    `json:"ops"`
}

func writeJournal(t *testing.T, dir string, finishRun bool) string {
	t.Helper()
	j, err := Create(dir, "run-1", testHeader{Tool: "tusbench", Ops: 2000})
	if err != nil {
		t.Fatal(err)
	}
	j.CellStart("a/base/114")
	j.CellFinish("a/base/114", StatusDone, "")
	j.CellStart("a/TUS/114")
	j.CellRetry("a/TUS/114", "watchdog under chaos")
	j.CellFinish("a/TUS/114", StatusQuarantined, "deterministic failure: boom")
	j.CellStart("b/base/114") // in flight: no finish
	if finishRun {
		j.Finish()
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return j.path
}

// TestJournalRoundTrip: records written through the journal replay into
// the expected resume state.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, false)
	st, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	var hdr testHeader
	if err := json.Unmarshal(st.Header, &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Tool != "tusbench" || hdr.Ops != 2000 {
		t.Fatalf("header round trip: %+v", hdr)
	}
	if !st.Done["a/base/114"] || len(st.Done) != 1 {
		t.Fatalf("done set wrong: %v", st.Done)
	}
	if st.Quarantined["a/TUS/114"] != "deterministic failure: boom" {
		t.Fatalf("quarantine set wrong: %v", st.Quarantined)
	}
	if !st.InFlight["b/base/114"] || len(st.InFlight) != 1 {
		t.Fatalf("in-flight set wrong: %v", st.InFlight)
	}
	if st.Finished {
		t.Fatal("run without run_finish must not report finished")
	}
	if len(st.Warnings) != 0 {
		t.Fatalf("clean journal produced warnings: %v", st.Warnings)
	}

	ids, err := List(dir)
	if err != nil || len(ids) != 1 || ids[0] != "run-1" {
		t.Fatalf("List = %v, %v", ids, err)
	}
}

// TestJournalTruncatedTail: a SIGKILL mid-append leaves a torn final
// record; Load skips it with a warning and keeps the valid prefix.
func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the final record's line.
	cut := len(data) - 25
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Warnings) == 0 {
		t.Fatal("truncated tail must warn")
	}
	if !st.Done["a/base/114"] {
		t.Fatal("valid prefix lost after tail truncation")
	}
	// The torn record was b's cell_start; b must simply be absent, and
	// resume re-arms it implicitly by running everything not done.
	if st.InFlight["b/base/114"] {
		t.Fatal("torn start record must not resurrect as in-flight")
	}
}

// TestJournalBadChecksum: a flipped byte inside a record is detected by
// the per-record sha256 and the record is skipped, not trusted and not
// fatal.
func TestJournalBadChecksum(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the "done" finish record by renaming its cell in place.
	corrupted := strings.Replace(string(data), `"cell":"a/base/114","status":"done"`,
		`"cell":"z/base/114","status":"done"`, 1)
	if corrupted == string(data) {
		t.Fatal("test setup: finish record not found")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Warnings) == 0 {
		t.Fatal("checksum mismatch must warn")
	}
	if st.Done["z/base/114"] || st.Done["a/base/114"] {
		t.Fatalf("corrupted record must not be trusted: %v", st.Done)
	}
	// With its finish record rejected, the cell falls back to in-flight
	// (start is still valid) — the safe direction: it will re-run.
	if !st.InFlight["a/base/114"] {
		t.Fatal("cell with rejected finish must be re-armed")
	}
}

// TestJournalDuplicateFinish: duplicate finish records (possible when a
// kill lands between the cache write and the journal append, then the
// resumed run finishes the cell again) are tolerated: first wins, rest
// warn.
func TestJournalDuplicateFinish(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, "run-2", testHeader{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	j.CellStart("c/TUS/32")
	j.CellFinish("c/TUS/32", StatusDone, "")
	j.CellFinish("c/TUS/32", StatusQuarantined, "late duplicate")
	j.Close()
	st, err := Load(dir, "run-2")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done["c/TUS/32"] {
		t.Fatal("first finish must win")
	}
	if len(st.Quarantined) != 0 {
		t.Fatalf("duplicate finish must be skipped: %v", st.Quarantined)
	}
	if len(st.Warnings) == 0 {
		t.Fatal("duplicate finish must warn")
	}
}

// TestJournalResumeAppend: OpenAppend continues a journal across
// processes — including after a torn tail, where it must start on a
// fresh line instead of gluing onto the partial record.
func TestJournalResumeAppend(t *testing.T) {
	dir := t.TempDir()
	path := writeJournal(t, dir, false)
	// Tear the tail as a kill would.
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-10], 0o644)

	st, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenAppend(dir, "run-1", st.NextSeq)
	if err != nil {
		t.Fatal(err)
	}
	j.CellStart("b/base/114")
	j.CellFinish("b/base/114", StatusDone, "")
	j.Finish()
	j.Close()

	st2, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Done["b/base/114"] || !st2.Done["a/base/114"] {
		t.Fatalf("resumed records lost: %v", st2.Done)
	}
	if !st2.Finished {
		t.Fatal("run_finish lost on resumed journal")
	}
	if len(st2.Warnings) == 0 {
		t.Fatal("the torn record should still warn on reload")
	}
}

// TestJournalErrors: a missing journal and a journal without a valid
// header are load errors (nothing to resume), not panics.
func TestJournalErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir, "no-such-run"); err == nil {
		t.Fatal("missing journal must error")
	}
	if err := os.WriteFile(journalPath(dir, "headless"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "headless"); err == nil {
		t.Fatal("journal without header must error")
	}
}

// TestJournalFinished: a completed run's journal reports Finished so
// resume can no-op politely.
func TestJournalFinished(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, true)
	st, err := Load(dir, "run-1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished {
		t.Fatal("run_finish not reflected")
	}
}

// TestSupervisorJournals: Do() writes start/finish records for done,
// quarantined, and retried cells.
func TestSupervisorJournals(t *testing.T) {
	dir := t.TempDir()
	j, err := Create(dir, "run-3", testHeader{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testPolicy(nil))
	s.SetJournal(j)
	calls := 0
	if err := s.Do("ok", "st", func() error {
		calls++
		if calls == 1 {
			return errTransient
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Do("bad", "st", func() error { return errDeterministic })
	j.Close()
	st, err := Load(dir, "run-3")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done["ok"] {
		t.Fatalf("done cell not journaled: %v", st.Done)
	}
	if _, q := st.Quarantined["bad"]; !q {
		t.Fatalf("quarantined cell not journaled: %v", st.Quarantined)
	}
}

// TestNewRunID: IDs are sortable (timestamp prefix) and
// collision-resistant (random suffix makes same-second IDs distinct).
func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("two NewRunID calls collided: %s", a)
	}
	for _, id := range []string{a, b} {
		if len(id) < len("20060102-150405") {
			t.Fatalf("run ID %q shorter than its timestamp prefix", id)
		}
		if strings.ContainsAny(id, "/\\ ") {
			t.Fatalf("run ID %q is not filesystem-safe", id)
		}
	}
}

// TestList enumerates journals and tolerates absent directories.
func TestList(t *testing.T) {
	dir := t.TempDir()
	ids, err := List(dir + "/does-not-exist")
	if err != nil || ids != nil {
		t.Fatalf("List on missing dir = %v, %v; want nil, nil", ids, err)
	}
	writeJournal(t, dir, true)
	if _, err := Create(dir, "run-2", testHeader{Tool: "tusd"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir+"/notes.txt", []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "run-1" || ids[1] != "run-2" {
		t.Fatalf("List = %v, want [run-1 run-2]", ids)
	}
}

// TestCreateErrors: an unmarshalable header and an unusable directory
// both fail up front instead of leaving a torn journal.
func TestCreateErrors(t *testing.T) {
	if _, err := Create(t.TempDir(), "run-x", map[string]any{"ch": make(chan int)}); err == nil {
		t.Fatal("Create accepted an unmarshalable header")
	}
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(file+"/sub", "run-x", testHeader{}); err == nil {
		t.Fatal("Create accepted a journal dir under a regular file")
	}
}
