// Package prof wires the standard CPU/heap profilers behind the
// -cpuprofile/-memprofile flags of the CLI tools. It exists so tusbench
// and tusim share one flag contract and one shutdown ordering (stop the
// CPU profile first, then snapshot the heap after a final GC), and so
// main functions stay a two-line call.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the two (possibly empty) file paths and
// returns a stop function that finalizes whatever was started. Stop is
// idempotent and safe to call on every exit path; with both paths empty
// it does nothing.
//
// The heap profile is written at stop time — after a forced GC, so it
// reflects live steady-state memory rather than transient garbage. For
// allocation-site hunting, run the microbenchmarks with `go test
// -memprofile` instead, which records alloc_objects across the run.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
			f.Close()
		}
	}
	return stop, nil
}
