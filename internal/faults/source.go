package faults

// DecisionSource supplies the injector's nondeterministic choices. The
// injector only consults the source at *real* choice points (a rate of
// zero, an amount domain of one, a permutation of fewer than two
// elements never reach it), so two sources are interchangeable exactly
// when they answer the same sequence of choice points the same way.
//
// Production runs use the seeded PRNG source (NewInjector), which is
// bit-identical to the historical splitmix64 stream; the model checker
// substitutes a ScriptSource to *enumerate* decision streams instead of
// sampling them.
type DecisionSource interface {
	// Hit decides one percentage roll with 0 < pct <= 100.
	Hit(pct int) bool
	// Amount picks a value in [1, max] with max >= 2.
	Amount(max uint64) uint64
	// Index picks a value in [0, n) with n >= 2.
	Index(n int) int
}

// PRNGSource is the production DecisionSource: a private splitmix64
// stream advanced once per choice point, reproducing the injector's
// historical decision stream bit for bit for a given seed.
type PRNGSource struct {
	state uint64
}

// NewPRNGSource seeds the stream exactly as the injector always has.
func NewPRNGSource(seed uint64) *PRNGSource {
	return &PRNGSource{state: splitmix64(seed ^ 0xC0FFEE)}
}

func (s *PRNGSource) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

// Hit implements DecisionSource.
func (s *PRNGSource) Hit(pct int) bool { return s.next()%100 < uint64(pct) }

// Amount implements DecisionSource.
func (s *PRNGSource) Amount(max uint64) uint64 { return 1 + s.next()%max }

// Index implements DecisionSource.
func (s *PRNGSource) Index(n int) int { return int(s.next() % uint64(n)) }

// Decision kinds, as recorded by ScriptSource.
const (
	// DecisionHit is a percentage roll; Val is 0 (miss) or 1 (hit).
	DecisionHit = byte('H')
	// DecisionAmount is a latency/stall magnitude; Val is in [1, Arg].
	DecisionAmount = byte('A')
	// DecisionIndex is a permutation pick; Val is in [0, Arg).
	DecisionIndex = byte('I')
)

// Decision is one consumed choice point: what was asked (Kind, with the
// domain parameter Arg) and what was answered (Val). A slice of
// Decisions is a complete schedule through the injector's
// nondeterminism, serializable into repro bundles.
type Decision struct {
	Kind byte   `json:"k"`
	Arg  uint64 `json:"arg"`
	Val  uint64 `json:"v"`
}

// Default returns the quiet answer for a choice point of this kind: no
// perturbation, minimum magnitude, identity order (a Fisher-Yates step
// leaves element i in place only when it draws i itself, the top of the
// Index domain).
func (d Decision) Default() uint64 {
	switch d.Kind {
	case DecisionAmount:
		return 1
	case DecisionIndex:
		if d.Arg > 0 {
			return d.Arg - 1
		}
	}
	return 0
}

// Alternatives returns the enumerable domain of the decision. Hit and
// Index domains are exact; Amount collapses to its two
// schedule-distinct extremes {1, Arg} — intermediate magnitudes shift
// timing by degrees the extremes already bracket, and enumerating them
// would explode the tree without adding orderings.
func (d Decision) Alternatives() []uint64 {
	switch d.Kind {
	case DecisionHit:
		return []uint64{0, 1}
	case DecisionAmount:
		if d.Arg <= 1 {
			return []uint64{1}
		}
		return []uint64{1, d.Arg}
	case DecisionIndex:
		alts := make([]uint64, d.Arg)
		for i := range alts {
			alts[i] = uint64(i)
		}
		return alts
	}
	return nil
}

// ScriptSource answers choice points from a scripted prefix and with
// the quiet default past its end, recording every choice point it is
// asked. The recorded trace is the run's complete decision schedule:
// replaying it as the next script reproduces the run exactly, and
// extending/flipping entries enumerates neighbouring schedules.
//
// If the run's choice points diverge from the script (a flipped earlier
// decision changed which points are reached), the rest of the script is
// meaningless; the source switches to defaults and reports Diverged.
type ScriptSource struct {
	script   []Decision
	trace    []Decision
	diverged bool
}

// NewScriptSource builds a source replaying the given schedule prefix.
func NewScriptSource(script []Decision) *ScriptSource {
	return &ScriptSource{script: script}
}

// take resolves one choice point of the given kind/domain.
func (s *ScriptSource) take(kind byte, arg uint64) uint64 {
	d := Decision{Kind: kind, Arg: arg}
	val := d.Default()
	if i := len(s.trace); !s.diverged && i < len(s.script) {
		if sc := s.script[i]; sc.Kind == kind && sc.Arg == arg {
			val = sc.Val
		} else {
			s.diverged = true
		}
	}
	// Clamp into the domain so hand-edited scripts cannot push the
	// injector outside its documented ranges.
	switch kind {
	case DecisionHit:
		if val > 1 {
			val = 1
		}
	case DecisionAmount:
		if val < 1 {
			val = 1
		} else if val > arg {
			val = arg
		}
	case DecisionIndex:
		if val >= arg {
			val = d.Default()
		}
	}
	d.Val = val
	s.trace = append(s.trace, d)
	return val
}

// Hit implements DecisionSource.
func (s *ScriptSource) Hit(pct int) bool { return s.take(DecisionHit, uint64(pct)) == 1 }

// Amount implements DecisionSource.
func (s *ScriptSource) Amount(max uint64) uint64 { return s.take(DecisionAmount, max) }

// Index implements DecisionSource.
func (s *ScriptSource) Index(n int) int { return int(s.take(DecisionIndex, uint64(n))) }

// Trace returns every choice point consumed so far, scripted or
// defaulted, in consumption order.
func (s *ScriptSource) Trace() []Decision { return s.trace }

// Consumed reports how many choice points the run consumed.
func (s *ScriptSource) Consumed() int { return len(s.trace) }

// Diverged reports whether the run's choice points stopped matching the
// script (the remaining scripted decisions were ignored).
func (s *ScriptSource) Diverged() bool { return s.diverged }
