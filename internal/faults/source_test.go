package faults

import "testing"

// refStream is an independent re-implementation of the historical
// injector PRNG (seed mixing + splitmix64 step), written out with its
// own constants so a refactor of the production code cannot silently
// change both sides at once.
type refStream struct{ s uint64 }

func newRefStream(seed uint64) *refStream {
	r := &refStream{s: seed ^ 0xC0FFEE}
	r.s = r.step(r.s)
	return r
}

func (r *refStream) step(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *refStream) next() uint64 {
	r.s = r.step(r.s)
	return r.s
}

// TestSeededPathBitIdentical proves the DecisionSource refactor did not
// move the production decision stream: an injector built by NewInjector
// must make exactly the decisions the historical splitmix64 code made,
// draw for draw — the property that keeps old repro bundles and the
// figure benchmarks cycle-identical.
func TestSeededPathBitIdentical(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF, 1 << 63} {
		plan := Schedule(seed)
		in := NewInjector(plan)
		ref := newRefStream(plan.Seed)

		refHit := func(pct int) bool {
			if pct <= 0 {
				return false
			}
			return ref.next()%100 < uint64(pct)
		}
		refAmount := func(max uint64) uint64 {
			if max <= 1 {
				return 1
			}
			return 1 + ref.next()%max
		}

		for i := 0; i < 5_000; i++ {
			wantReq := uint64(0)
			if refHit(plan.ReqExtraPct) {
				wantReq = refAmount(plan.ReqExtraMax)
			}
			if got := in.ReqExtra(); got != wantReq {
				t.Fatalf("seed %d step %d: ReqExtra = %d, historical stream says %d", seed, i, got, wantReq)
			}
			if got, want := in.SpuriousNack(), refHit(plan.NackPct); got != want {
				t.Fatalf("seed %d step %d: SpuriousNack = %v, historical stream says %v", seed, i, got, want)
			}
			wantBusy := uint64(0)
			if refHit(plan.BusyStallPct) {
				wantBusy = refAmount(plan.BusyStallMax)
			}
			if got := in.BusyStall(); got != wantBusy {
				t.Fatalf("seed %d step %d: BusyStall = %d, historical stream says %d", seed, i, got, wantBusy)
			}
			wantProbe := uint64(0)
			if refHit(plan.ProbeExtraPct) {
				wantProbe = refAmount(plan.ProbeExtraMax)
			}
			if got := in.ProbeExtra(); got != wantProbe {
				t.Fatalf("seed %d step %d: ProbeExtra = %d, historical stream says %d", seed, i, got, wantProbe)
			}
			if got, want := in.MSHRPressure(), refHit(plan.MSHRPressurePct); got != want {
				t.Fatalf("seed %d step %d: MSHRPressure = %v, historical stream says %v", seed, i, got, want)
			}
			if got, want := in.WCBFlush(), refHit(plan.WCBFlushPct); got != want {
				t.Fatalf("seed %d step %d: WCBFlush = %v, historical stream says %v", seed, i, got, want)
			}
			if plan.ShuffleProbes {
				perm := []int{0, 1, 2, 3}
				in.ShuffleTargets(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
				want := []int{0, 1, 2, 3}
				for k := len(want) - 1; k > 0; k-- {
					j := int(ref.next() % uint64(k+1))
					if j != k {
						want[k], want[j] = want[j], want[k]
					}
				}
				for k := range perm {
					if perm[k] != want[k] {
						t.Fatalf("seed %d step %d: shuffle %v, historical stream says %v", seed, i, perm, want)
					}
				}
			}
		}
	}
}

// TestScriptReplayReproducesPRNGRun: recording a PRNG-driven injector's
// decisions and replaying them through a ScriptSource must reproduce
// the exact same injector behaviour — the foundation of schedule
// capture + replay.
func TestScriptReplayReproducesPRNGRun(t *testing.T) {
	plan := Schedule(7)
	plan.ShuffleProbes = true

	// Record: wrap the PRNG source so every consumed choice is kept.
	rec := &recordingSource{inner: NewPRNGSource(plan.Seed)}
	a := NewInjectorWithSource(plan, rec)
	type step struct {
		req, busy, probe uint64
		nack, mshr, wcb  bool
		perm             [5]int
	}
	var want []step
	for i := 0; i < 500; i++ {
		var s step
		s.req = a.ReqExtra()
		s.nack = a.SpuriousNack()
		s.busy = a.BusyStall()
		s.probe = a.ProbeExtra()
		s.mshr = a.MSHRPressure()
		s.wcb = a.WCBFlush()
		s.perm = [5]int{0, 1, 2, 3, 4}
		a.ShuffleTargets(5, func(x, y int) { s.perm[x], s.perm[y] = s.perm[y], s.perm[x] })
		want = append(want, s)
	}

	src := NewScriptSource(rec.trace)
	b := NewInjectorWithSource(plan, src)
	for i, w := range want {
		var g step
		g.req = b.ReqExtra()
		g.nack = b.SpuriousNack()
		g.busy = b.BusyStall()
		g.probe = b.ProbeExtra()
		g.mshr = b.MSHRPressure()
		g.wcb = b.WCBFlush()
		g.perm = [5]int{0, 1, 2, 3, 4}
		b.ShuffleTargets(5, func(x, y int) { g.perm[x], g.perm[y] = g.perm[y], g.perm[x] })
		if g != w {
			t.Fatalf("step %d: replay %+v != recorded %+v", i, g, w)
		}
	}
	if src.Diverged() {
		t.Fatal("replay of its own recording diverged")
	}
	if a.Injected != b.Injected {
		t.Fatalf("injection counts diverged: recorded %d, replayed %d", a.Injected, b.Injected)
	}
	if src.Consumed() != len(rec.trace) {
		t.Fatalf("replay consumed %d decisions, recording had %d", src.Consumed(), len(rec.trace))
	}
}

// recordingSource captures the decisions an inner source makes, in the
// Decision encoding ScriptSource replays.
type recordingSource struct {
	inner DecisionSource
	trace []Decision
}

func (r *recordingSource) Hit(pct int) bool {
	v := r.inner.Hit(pct)
	val := uint64(0)
	if v {
		val = 1
	}
	r.trace = append(r.trace, Decision{Kind: DecisionHit, Arg: uint64(pct), Val: val})
	return v
}

func (r *recordingSource) Amount(max uint64) uint64 {
	v := r.inner.Amount(max)
	r.trace = append(r.trace, Decision{Kind: DecisionAmount, Arg: max, Val: v})
	return v
}

func (r *recordingSource) Index(n int) int {
	v := r.inner.Index(n)
	r.trace = append(r.trace, Decision{Kind: DecisionIndex, Arg: uint64(n), Val: uint64(v)})
	return v
}

// TestScriptSourceDefaultsQuiet: past the script's end every choice
// point answers the zero-perturbation default, so an empty script is
// exactly the fault-free schedule.
func TestScriptSourceDefaultsQuiet(t *testing.T) {
	plan := Schedule(3)
	plan.ShuffleProbes = true
	in := NewInjectorWithSource(plan, NewScriptSource(nil))
	for i := 0; i < 100; i++ {
		if in.ReqExtra() != 0 || in.SpuriousNack() || in.BusyStall() != 0 ||
			in.ProbeExtra() != 0 || in.MSHRPressure() || in.WCBFlush() {
			t.Fatalf("step %d: empty script perturbed the run", i)
		}
		perm := []int{0, 1, 2}
		in.ShuffleTargets(3, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		if perm[0] != 0 || perm[1] != 1 || perm[2] != 2 {
			t.Fatalf("step %d: empty script permuted probe order: %v", i, perm)
		}
	}
	if in.Injected != 0 {
		t.Fatalf("empty script counted %d injections", in.Injected)
	}
}

// TestScriptSourceDivergence: a script whose choice points no longer
// match the run falls back to defaults and reports divergence rather
// than misapplying decisions.
func TestScriptSourceDivergence(t *testing.T) {
	src := NewScriptSource([]Decision{
		{Kind: DecisionHit, Arg: 50, Val: 1},
		{Kind: DecisionAmount, Arg: 8, Val: 8},
	})
	if !src.Hit(50) {
		t.Fatal("scripted hit not replayed")
	}
	// The run asks a different kind than scripted: divergence.
	if src.Hit(50) {
		t.Fatal("diverged script should answer the quiet default")
	}
	if !src.Diverged() {
		t.Fatal("divergence not reported")
	}
	if got := src.Amount(8); got != 1 {
		t.Fatalf("post-divergence Amount = %d, want default 1", got)
	}
}

// TestDecisionAlternatives: the enumeration domains the explorer relies
// on — exact for Hit/Index, bracketed extremes for Amount.
func TestDecisionAlternatives(t *testing.T) {
	if got := (Decision{Kind: DecisionHit, Arg: 50}).Alternatives(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Hit alternatives = %v", got)
	}
	if got := (Decision{Kind: DecisionAmount, Arg: 9}).Alternatives(); len(got) != 2 || got[0] != 1 || got[1] != 9 {
		t.Fatalf("Amount alternatives = %v", got)
	}
	if got := (Decision{Kind: DecisionIndex, Arg: 3}).Alternatives(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("Index alternatives = %v", got)
	}
}
