package faults

import (
	"encoding/json"
	"testing"
)

// TestInjectorDeterminism: two injectors built from the same plan must
// produce identical decision streams — the property crash-to-repro
// bundles rely on.
func TestInjectorDeterminism(t *testing.T) {
	plan := Schedule(42)
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 10_000; i++ {
		if a.ReqExtra() != b.ReqExtra() || a.SpuriousNack() != b.SpuriousNack() ||
			a.BusyStall() != b.BusyStall() || a.ProbeExtra() != b.ProbeExtra() ||
			a.MSHRPressure() != b.MSHRPressure() || a.WCBFlush() != b.WCBFlush() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	if a.Injected != b.Injected {
		t.Fatalf("injection counts diverged: %d vs %d", a.Injected, b.Injected)
	}
	if a.Injected == 0 {
		t.Fatal("schedule injected nothing in 10k decisions")
	}
}

// TestNilInjectorSafe: every injection point must be a zero-cost no-op
// on a nil injector (fault-free runs share the code path).
func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.ReqExtra() != 0 || in.SpuriousNack() || in.BusyStall() != 0 ||
		in.ProbeExtra() != 0 || in.MSHRPressure() || in.WCBFlush() {
		t.Fatal("nil injector perturbed something")
	}
	in.ShuffleTargets(5, func(i, j int) { t.Fatal("nil injector shuffled") })
	if in.Plan().Enabled() {
		t.Fatal("nil injector reports an enabled plan")
	}
}

// TestScheduleBounds: derived plans must stay inside the documented
// rate bounds so the machine always makes eventual progress.
func TestScheduleBounds(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		p := Schedule(seed)
		if p.ReqExtraPct < 5 || p.ReqExtraPct > 30 || p.NackPct > 15 ||
			p.BusyStallPct > 10 || p.ProbeExtraPct > 20 ||
			p.MSHRPressurePct > 20 || p.WCBFlushPct > 10 {
			t.Fatalf("seed %d: plan out of bounds: %+v", seed, p)
		}
		if !p.Enabled() {
			t.Fatalf("seed %d: schedule produced a disabled plan", seed)
		}
	}
}

// TestMixSeedSpread: nearby matrix coordinates must not produce
// correlated seeds (adjacent cells would otherwise share schedules).
func TestMixSeedSpread(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			s := MixSeed(7, a, b)
			if seen[s] {
				t.Fatalf("MixSeed collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
}

// TestPlanRoundTrip: plans must survive JSON (the repro bundle format).
func TestPlanRoundTrip(t *testing.T) {
	p := Schedule(99)
	p.SabotageSpec = Sabotage{Cycle: 123, Core: 2, Kind: SabotageHideLine}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("round trip changed the plan:\n  in:  %+v\n  out: %+v", p, q)
	}
}

// TestProtocolErrorMessage: the structured error must carry its context
// into the message.
func TestProtocolErrorMessage(t *testing.T) {
	e := Violationf("memsys", 3, 0x1240, "notvisible-in-l1", "state=%s", "M")
	for _, want := range []string{"memsys", "notvisible-in-l1", "core 3", "0x1240", "state=M"} {
		if !contains(e.Error(), want) {
			t.Fatalf("error %q missing %q", e.Error(), want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
