// Package faults provides deterministic, seeded fault injection for
// the memory system and the TUS machinery, plus the typed protocol
// error every layer uses to report invariant violations.
//
// The paper's central risk is protocol-level: TUS keeps committed
// stores invisible to coherence, so a bug in the WOQ / lex-order /
// relinquish machinery silently corrupts TSO or deadlocks the machine.
// The injector perturbs the system only in ways the protocol must
// legally tolerate — extra request/probe latency, spurious NACKs,
// directory busy-bit stalls, MSHR/WCB pressure, and probe-order
// shuffles — so any TSO-checker or auditor violation under injection
// is a real protocol bug, never an artifact of the harness.
//
// Determinism: the injector draws every choice from a DecisionSource.
// The production source is a private splitmix64 stream advanced only at
// injection points, which themselves fire in the deterministic event
// order of the simulation; a given (workload seed, fault seed) pair
// therefore reproduces a run bit-for-bit, which is what makes
// crash-to-repro bundles possible. The model checker swaps in a
// ScriptSource to enumerate decision streams exhaustively instead of
// sampling them. A nil *Injector disables every injection point at zero
// cost and zero perturbation.
package faults

import "fmt"

// Sabotage kinds understood by system.InstallFaults. Sabotage
// deliberately corrupts protocol state (it is NOT a legal
// perturbation); it exists so tests can prove the auditor, the TSO
// checker, and the crash-to-repro pipeline actually catch corruption.
const (
	// SabotageHideLine flips a not-yet-ready unauthorized L1 line to
	// visible without publishing it, breaking WOQ<->L1 agreement.
	SabotageHideLine = "hide-line"
	// SabotageDropOwner erases the directory's owner pointer for a line
	// a private hierarchy holds in E/M, breaking the single-writer
	// agreement between directory and private caches.
	SabotageDropOwner = "drop-owner"
)

// Sabotage schedules one deliberate state corruption. The corruption
// is attempted from Cycle onward, once per cycle, until a candidate
// line exists on the victim core (deterministic for a given run).
type Sabotage struct {
	Cycle uint64 `json:"cycle,omitempty"`
	Core  int    `json:"core,omitempty"`
	Kind  string `json:"kind,omitempty"`
}

// Plan is a serializable fault schedule. All rates are percentages of
// the corresponding injection-point invocations; a zero Plan injects
// nothing.
type Plan struct {
	// Seed drives the injector's private random stream.
	Seed uint64 `json:"seed"`

	// ReqExtraPct of directory requests suffer up to ReqExtraMax extra
	// cycles of latency (slow fills / congested network).
	ReqExtraPct int    `json:"req_extra_pct,omitempty"`
	ReqExtraMax uint64 `json:"req_extra_max,omitempty"`

	// NackPct of directory requests (and writebacks) are spuriously
	// NACKed, exercising every retry and lex-gating path.
	NackPct int `json:"nack_pct,omitempty"`

	// BusyStallPct of directory transactions hold the line's busy bit
	// for up to BusyStallMax extra cycles before being serviced,
	// forcing concurrent requesters into the waiting queue / NACK path.
	BusyStallPct int    `json:"busy_stall_pct,omitempty"`
	BusyStallMax uint64 `json:"busy_stall_max,omitempty"`

	// ProbeExtraPct of outbound probes suffer up to ProbeExtraMax extra
	// cycles of network latency.
	ProbeExtraPct int    `json:"probe_extra_pct,omitempty"`
	ProbeExtraMax uint64 `json:"probe_extra_max,omitempty"`

	// MSHRPressurePct of MSHR-availability queries report "full",
	// forcing the drain/load paths through their retry logic.
	MSHRPressurePct int `json:"mshr_pressure_pct,omitempty"`

	// WCBFlushPct of TUS drain ticks force an early flush of the oldest
	// coalescing group (WCB pressure).
	WCBFlushPct int `json:"wcb_flush_pct,omitempty"`

	// ShuffleProbes randomizes the order probe targets are visited
	// (legal: probe order between cores is unordered).
	ShuffleProbes bool `json:"shuffle_probes,omitempty"`

	// SabotageSpec, when Kind is non-empty, deliberately corrupts state
	// (used by tests to validate the detection pipeline).
	SabotageSpec Sabotage `json:"sabotage,omitempty"`
}

// Enabled reports whether the plan perturbs the run at all.
func (p Plan) Enabled() bool {
	return p.ReqExtraPct > 0 || p.NackPct > 0 || p.BusyStallPct > 0 ||
		p.ProbeExtraPct > 0 || p.MSHRPressurePct > 0 || p.WCBFlushPct > 0 ||
		p.ShuffleProbes || p.SabotageSpec.Kind != ""
}

// splitmix64 is the PRNG step (public-domain constants).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// MixSeed folds parts into one seed (used to derive per-cell seeds in
// the chaos matrix without correlation between cells).
func MixSeed(parts ...uint64) uint64 {
	s := uint64(0x1234_5678_9ABC_DEF0)
	for _, p := range parts {
		s = splitmix64(s ^ p)
	}
	return s
}

// Schedule derives a moderate fault plan from a seed. Every rate is
// bounded so the machine always makes eventual progress; the schedule
// varies which subsystems are stressed so a sweep of seeds covers
// NACK storms, latency spikes, busy stalls, and queue pressure.
func Schedule(seed uint64) Plan {
	s := splitmix64(seed)
	roll := func(lo, hi int) int {
		s = splitmix64(s)
		return lo + int(s%uint64(hi-lo+1))
	}
	p := Plan{
		Seed:          seed,
		ReqExtraPct:   roll(5, 30),
		ReqExtraMax:   uint64(roll(10, 200)),
		NackPct:       roll(0, 15),
		BusyStallPct:  roll(0, 10),
		BusyStallMax:  uint64(roll(5, 80)),
		ProbeExtraPct: roll(0, 20),
		ProbeExtraMax: uint64(roll(5, 60)),
	}
	p.MSHRPressurePct = roll(0, 20)
	p.WCBFlushPct = roll(0, 10)
	p.ShuffleProbes = roll(0, 1) == 1
	return p
}

// Injector is the runtime form of a Plan. All methods are safe on a
// nil receiver (returning the zero perturbation), so call sites need
// no nil checks of their own.
type Injector struct {
	plan Plan
	src  DecisionSource
	// Injected counts fault decisions that actually perturbed the run.
	Injected uint64
}

// NewInjector builds an injector for the plan, drawing decisions from
// the seeded PRNG source (the production configuration).
func NewInjector(p Plan) *Injector {
	return NewInjectorWithSource(p, NewPRNGSource(p.Seed))
}

// NewInjectorWithSource builds an injector whose decisions come from an
// explicit source — the model checker's hook for enumerating, rather
// than sampling, the injector's choice points.
func NewInjectorWithSource(p Plan, src DecisionSource) *Injector {
	return &Injector{plan: p, src: src}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// hit rolls a percentage; it consults the source only when pct > 0 so
// plans that disable a mechanism stay stream-compatible with plans
// that never mention it.
func (in *Injector) hit(pct int) bool {
	if in == nil || in.src == nil || pct <= 0 {
		return false
	}
	if in.src.Hit(pct) {
		in.Injected++
		return true
	}
	return false
}

// amount returns a value in [1, max] (1 when max is 0); the source is
// consulted only when the domain has more than one element.
func (in *Injector) amount(max uint64) uint64 {
	if max <= 1 {
		return 1
	}
	return in.src.Amount(max)
}

// ReqExtra returns extra latency for one directory request, usually 0.
func (in *Injector) ReqExtra() uint64 {
	if in == nil || !in.hit(in.plan.ReqExtraPct) {
		return 0
	}
	return in.amount(in.plan.ReqExtraMax)
}

// SpuriousNack reports whether to NACK this request outright.
func (in *Injector) SpuriousNack() bool { return in != nil && in.hit(in.plan.NackPct) }

// BusyStall returns extra cycles to hold a line busy before servicing.
func (in *Injector) BusyStall() uint64 {
	if in == nil || !in.hit(in.plan.BusyStallPct) {
		return 0
	}
	return in.amount(in.plan.BusyStallMax)
}

// ProbeExtra returns extra latency for one outbound probe, usually 0.
func (in *Injector) ProbeExtra() uint64 {
	if in == nil || !in.hit(in.plan.ProbeExtraPct) {
		return 0
	}
	return in.amount(in.plan.ProbeExtraMax)
}

// MSHRPressure reports whether to pretend the MSHR pool is full.
func (in *Injector) MSHRPressure() bool { return in != nil && in.hit(in.plan.MSHRPressurePct) }

// WCBFlush reports whether to force an early WCB group flush.
func (in *Injector) WCBFlush() bool { return in != nil && in.hit(in.plan.WCBFlushPct) }

// ShuffleTargets applies a random permutation to n probe targets via
// swap (Fisher-Yates); a no-op unless the plan enables shuffling.
func (in *Injector) ShuffleTargets(n int, swap func(i, j int)) {
	if in == nil || in.src == nil || !in.plan.ShuffleProbes || n < 2 {
		return
	}
	for i := n - 1; i > 0; i-- {
		j := in.src.Index(i + 1)
		if j != i {
			swap(i, j)
		}
	}
}

// ProtocolError is the structured payload carried by every invariant
// violation: protocol code panics with one (recovered by system.Run
// into a CrashReport) and the auditor returns them as errors. It keeps
// enough context — component, core, line, invariant name, and a state
// dump — to debug a violation without rerunning under a debugger.
type ProtocolError struct {
	Component string `json:"component"` // "memsys", "tus", "cpu", "audit"
	Core      int    `json:"core"`      // -1 when not core-specific
	Line      uint64 `json:"line"`      // 0 when not line-specific
	Invariant string `json:"invariant"` // short invariant identifier
	Detail    string `json:"detail"`    // human-readable context + state dump
}

// Error implements error.
func (e *ProtocolError) Error() string {
	s := fmt.Sprintf("%s: invariant %q violated", e.Component, e.Invariant)
	if e.Core >= 0 {
		s += fmt.Sprintf(" (core %d)", e.Core)
	}
	if e.Line != 0 {
		s += fmt.Sprintf(" (line %#x)", e.Line)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Violationf builds a ProtocolError with a formatted detail message.
func Violationf(component string, core int, line uint64, invariant, format string, args ...any) *ProtocolError {
	return &ProtocolError{
		Component: component,
		Core:      core,
		Line:      line,
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
	}
}
