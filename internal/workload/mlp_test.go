package workload

import (
	"testing"

	"tusim/internal/isa"
)

func TestMLPFingerprint(t *testing.T) {
	gen := genMLP(1<<20, 1<<20, 2, 3, 10)
	tr := gen(1, 3000, 1)[0]
	loads, stores := 0, 0
	depLoads := 0
	for _, op := range tr {
		switch op.Kind {
		case isa.Load:
			loads++
			if op.Dep1 != 0 {
				depLoads++
			}
		case isa.Store:
			stores++
		}
	}
	if depLoads != 0 {
		t.Errorf("MLP loads must be independent; %d carry deps", depLoads)
	}
	// Ratio 2:3 between loads and stores per iteration.
	if loads == 0 || stores == 0 {
		t.Fatal("empty mix")
	}
	ratio := float64(stores) / float64(loads)
	if ratio < 1.2 || ratio > 1.8 {
		t.Errorf("store/load ratio = %.2f, want ~1.5", ratio)
	}
}

func TestMLPConsecutiveRuns(t *testing.T) {
	gen := genMLPRuns(1<<20, 1<<20, 1, 4, 8, true)
	tr := gen(1, 2000, 1)[0]
	// Every store run of 4 must cover 4 consecutive lines.
	runs := 0
	var lines []uint64
	flush := func() {
		if len(lines) == 4 {
			ok := true
			for i := 1; i < 4; i++ {
				if lines[i] != lines[0]+uint64(i)*64 {
					ok = false
				}
			}
			if ok {
				runs++
			}
		}
		lines = lines[:0]
	}
	for _, op := range tr {
		if op.Kind == isa.Store {
			lines = append(lines, op.LineAddr())
			if len(lines) == 4 {
				flush()
			}
		} else if len(lines) > 0 {
			flush()
		}
	}
	if runs < 20 {
		t.Errorf("only %d consecutive 4-line store runs found", runs)
	}
}

func TestMLPSharedRegionTargeted(t *testing.T) {
	gen := genMLPShared(1<<20, 1<<20, 2, 2, 8, false, 20, 256)
	traces := gen(1, 3000, 2)
	shared := 0
	for _, tr := range traces {
		for _, op := range tr {
			if op.Kind.IsMem() && op.Addr >= sharedBase && op.Addr < sharedBase+256*64 {
				shared++
			}
		}
	}
	if shared < 100 {
		t.Errorf("shared accesses = %d, want a meaningful fraction at 20%%", shared)
	}
}

func TestWarmPrologueTouchesFootprint(t *testing.T) {
	p := burstParams{burstLines: 8, storesPerLn: 2, computeGap: 50, loadsPerGap: 4, regionReuse: 1, warm: true}
	gen := genBurst(p, 64*256) // 256-line footprint
	tr := gen(1, 3000, 1)[0]
	touched := map[uint64]bool{}
	for i := 0; i < 256 && i < len(tr); i++ {
		op := tr[i]
		if op.Kind == isa.Store {
			touched[op.LineAddr()] = true
		} else {
			break
		}
	}
	if len(touched) < 256 {
		t.Errorf("prologue touched %d/256 footprint lines", len(touched))
	}
}

func TestTiledKernelShape(t *testing.T) {
	gen := genTiledKernel(8, 96, 4, 1<<20)
	tr := gen(1, 3000, 1)[0]
	if err := isa.Validate(tr); err != nil {
		t.Fatal(err)
	}
	fp, stores := 0, 0
	for _, op := range tr {
		if op.Kind == isa.FPMul || op.Kind == isa.FPAdd {
			fp++
		}
		if op.Kind == isa.Store {
			stores++
		}
	}
	if fp < stores {
		t.Errorf("TF kernel should be FP-heavy: fp=%d stores=%d", fp, stores)
	}
}
