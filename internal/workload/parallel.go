package workload

import (
	"math/rand"

	"tusim/internal/isa"
)

// parallelParams shapes the PARSEC proxies: per-thread work plus a
// shared region that exercises the coherence protocol and, under TUS,
// the authorization unit (external requests to unauthorized lines).
type parallelParams struct {
	burst       burstParams
	sharedPct   int    // % of stores targeting the shared region
	sharedLines uint64 // size of the shared region in lines
	chasePct    int    // % of iterations doing a cold pointer-chase store
	interleaved bool   // alternate A,B,A,B store targets (WCB cycles)
	reusePct    int    // % of loads re-reading recently stored lines
	fenceEvery  int    // ops between fences (0 = none)
	footprint   uint64
}

func genParallel(p parallelParams) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*15485863))
			b := &builder{rng: rng}
			base := threadBase(t)
			region := uint64(0)
			lastFence := 0
			for len(b.ops) < ops {
				// Compute gap with reuse loads.
				b.computeRun(p.burst.computeGap, false)
				for i := 0; i < p.burst.loadsPerGap; i++ {
					var addr uint64
					if rng.Intn(100) < p.reusePct {
						// Re-read the first word of a recently stored
						// line (consumers read what producers wrote).
						addr = base + region + uint64(rng.Intn(p.burst.burstLines+1))*64
					} else if rng.Intn(100) < p.sharedPct {
						addr = sharedBase + (uint64(rng.Uint32())%p.sharedLines)*64 + align8(rng)
					} else {
						addr = base + (uint64(rng.Uint32())*64)%p.footprint + align8(rng)
					}
					b.load(addr, 8, 0)
				}
				// Store phase.
				if p.chasePct > 0 && rng.Intn(100) < p.chasePct {
					// Long-latency store (dedup fingerprint).
					addr := base + (uint64(rng.Uint32())*64)%p.footprint
					b.store(addr+align8(rng), 8, 0)
				}
				lineBase := base + region
				for l := 0; l < p.burst.burstLines; l++ {
					lineAddr := lineBase + uint64(l)*64
					if p.interleaved && l%2 == 1 {
						// Alternate between two line neighbourhoods so
						// consecutive stores hit non-consecutive lines
						// (ferret's interleaved bursts -> WCB cycles).
						lineAddr = lineBase + uint64(p.burst.burstLines+l)*64
					}
					if rng.Intn(100) < p.sharedPct {
						lineAddr = sharedBase + (uint64(rng.Uint32())%p.sharedLines)*64
					}
					for s := 0; s < p.burst.storesPerLn; s++ {
						off := align8(rng)
						if s == 0 {
							off = 0 // the word reuse loads will read
						}
						b.store(lineAddr+off, 8, 0)
					}
					if p.burst.computePerLine > 0 {
						b.computeRun(p.burst.computePerLine, false)
					}
				}
				region = (region + uint64(p.burst.burstLines)*128) % p.footprint
				if p.fenceEvery > 0 && len(b.ops)-lastFence >= p.fenceEvery {
					b.fence()
					lastFence = len(b.ops)
				}
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// benchmarks is the full registry. SB-bound flags mirror the paper's
// detailed-result selections (Figs. 9-11 name gcc inputs, mcf, bw2,
// cactuBSSN, xalancbmk; Fig. 12 names dedup, ferret, streamcluster).
var benchmarks = []Benchmark{
	// SPEC CPU2017 proxies (store-burst family: five gcc input sets of
	// increasing burst pressure and irregularity).
	{Name: "502.gcc1", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 48, storesPerLn: 2, computeGap: 350, loadsPerGap: 12, regionReuse: 1, irregularPct: 3, computePerLine: 11}, 3<<20)},
	{Name: "502.gcc2", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 80, storesPerLn: 2, computeGap: 900, loadsPerGap: 14, regionReuse: 1, irregularPct: 5, computePerLine: 10}, 3<<20)},
	{Name: "502.gcc3", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 128, storesPerLn: 3, computeGap: 1500, loadsPerGap: 20, regionReuse: 1, irregularPct: 6, computePerLine: 13}, 3<<20)},
	{Name: "502.gcc4", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 192, storesPerLn: 3, computeGap: 1800, loadsPerGap: 24, regionReuse: 1, irregularPct: 8, computePerLine: 12}, 3<<20)},
	{Name: "502.gcc5", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 256, storesPerLn: 4, computeGap: 2000, loadsPerGap: 30, regionReuse: 1, irregularPct: 5, computePerLine: 15}, 4<<20)},
	// Long-latency store misses dominate (LLC-exceeding footprint).
	{Name: "505.mcf", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genMLP(48<<20, 48<<20, 2, 3, 10)},
	{Name: "520.omnetpp", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 12, storesPerLn: 1, computeGap: 70, loadsPerGap: 6, regionReuse: 1, irregularPct: 30, computePerLine: 2}, 4<<20)},
	{Name: "557.xz", Suite: SPEC, SBBound: true, Threads: 1,
		gen: genBurst(burstParams{burstLines: 32, storesPerLn: 2, computeGap: 360, loadsPerGap: 10, regionReuse: 1, irregularPct: 8, computePerLine: 6}, 2<<20)},
	// Load-bound / compute-bound (not SB-bound; the "no harm" set).
	{Name: "503.bw2", Suite: SPEC, SBBound: false, Threads: 1,
		gen: genCompute(1, 8)},
	{Name: "507.cactuBSSN", Suite: SPEC, SBBound: false, Threads: 1,
		gen: genLoadHeavy(32<<20, 40, 4)},
	{Name: "523.xalancbmk", Suite: SPEC, SBBound: false, Threads: 1,
		gen: genLoadHeavy(16<<20, 65, 6)},
	// TensorFlow (BigDataBench) kernel proxies.
	{Name: "tf.matmul", Suite: TF, SBBound: true, Threads: 1,
		gen: genMLPRuns(8<<20, 8<<20, 2, 4, 14, true)},
	{Name: "tf.conv", Suite: TF, SBBound: true, Threads: 1,
		gen: genMLPRuns(6<<20, 6<<20, 2, 4, 12, true)},
	{Name: "tf.embed", Suite: TF, SBBound: true, Threads: 1,
		gen: genMLP(24<<20, 24<<20, 2, 3, 8)},

	// PARSEC-3.0 proxies (16 threads).
	{Name: "dedup", Suite: Parsec, SBBound: true, Threads: 16,
		gen: genMLPShared(1<<20, 24<<20, 1, 2, 14, false, 4, 4096)},
	{Name: "ferret", Suite: Parsec, SBBound: true, Threads: 16,
		gen: genMLPShared(1<<20, 8<<20, 1, 3, 16, true, 3, 2048)},
	{Name: "streamcluster", Suite: Parsec, SBBound: true, Threads: 16,
		gen: genParallel(parallelParams{burst: burstParams{burstLines: 48, storesPerLn: 2, computeGap: 300, loadsPerGap: 8, computePerLine: 8}, sharedPct: 3, sharedLines: 2048, reusePct: 60, footprint: 3 << 20})},
	{Name: "canneal", Suite: Parsec, SBBound: true, Threads: 16,
		gen: genParallel(parallelParams{burst: burstParams{burstLines: 3, storesPerLn: 1, computeGap: 40, loadsPerGap: 8}, sharedPct: 20, sharedLines: 8192, chasePct: 30, reusePct: 10, footprint: 8 << 20})},
	{Name: "fluidanimate", Suite: Parsec, SBBound: true, Threads: 16,
		gen: genParallel(parallelParams{burst: burstParams{burstLines: 24, storesPerLn: 2, computeGap: 200, loadsPerGap: 7, computePerLine: 8}, sharedPct: 6, sharedLines: 4096, reusePct: 30, fenceEvery: 4000, footprint: 3 << 20})},
	{Name: "blackscholes", Suite: Parsec, SBBound: false, Threads: 16,
		gen: genParallel(parallelParams{burst: burstParams{burstLines: 2, storesPerLn: 1, computeGap: 48, loadsPerGap: 4}, sharedPct: 1, sharedLines: 512, reusePct: 40, footprint: 4 << 20})},
	{Name: "swaptions", Suite: Parsec, SBBound: false, Threads: 16,
		gen: genParallel(parallelParams{burst: burstParams{burstLines: 4, storesPerLn: 1, computeGap: 40, loadsPerGap: 5}, sharedPct: 2, sharedLines: 1024, reusePct: 35, footprint: 4 << 20})},
}

// All returns every benchmark proxy.
func All() []Benchmark { return benchmarks }

// BySuite filters the registry.
func BySuite(s Suite) []Benchmark {
	var out []Benchmark
	for _, b := range benchmarks {
		if b.Suite == s {
			out = append(out, b)
		}
	}
	return out
}

// SingleThreaded returns the SPEC + TF proxies.
func SingleThreaded() []Benchmark {
	var out []Benchmark
	for _, b := range benchmarks {
		if b.Threads == 1 {
			out = append(out, b)
		}
	}
	return out
}

// SBBound returns the single-threaded SB-bound set (the paper's
// detailed-evaluation selection).
func SBBound() []Benchmark {
	var out []Benchmark
	for _, b := range benchmarks {
		if b.Threads == 1 && b.SBBound {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up; ok=false when unknown.
func ByName(name string) (Benchmark, bool) {
	for _, b := range benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
