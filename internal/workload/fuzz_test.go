package workload

import (
	"reflect"
	"testing"

	"tusim/internal/isa"
)

// FuzzWorkloadTrace fuzzes the workload generators across (benchmark,
// seed, length) and pins the invariants every consumer relies on:
//
//   - shape: one trace per hardware thread, exactly `ops` micro-ops each
//   - validity: isa.Validate accepts every trace (sizes, line crossing,
//     dependency bounds)
//   - alignment: every memory op is an 8-byte access on an 8-byte
//     boundary (the litmus IR, the TSO checker's mask math, and the
//     WCB coalescing model all assume this)
//   - determinism: the same (benchmark, seed, ops) triple generates a
//     byte-identical trace every time — the content-addressed result
//     cache and every golden test depend on it
func FuzzWorkloadTrace(f *testing.F) {
	f.Add(int64(1), uint16(2000), byte(0))
	f.Add(int64(42), uint16(500), byte(7))
	f.Add(int64(-3), uint16(1), byte(255))
	f.Add(int64(123456789), uint16(4095), byte(19))

	benchs := All()
	f.Fuzz(func(t *testing.T, seed int64, opsRaw uint16, sel byte) {
		b := benchs[int(sel)%len(benchs)]
		ops := int(opsRaw)%4096 + 1

		traces := b.Generate(seed, ops)
		if len(traces) != b.Threads {
			t.Fatalf("%s: %d traces, want %d threads", b.Name, len(traces), b.Threads)
		}
		for ti, tr := range traces {
			if len(tr) != ops {
				t.Fatalf("%s[%d] seed=%d: %d ops, want %d", b.Name, ti, seed, len(tr), ops)
			}
			if err := isa.Validate(tr); err != nil {
				t.Fatalf("%s[%d] seed=%d: %v", b.Name, ti, seed, err)
			}
			for i, op := range tr {
				if op.Kind.IsMem() && (op.Addr%8 != 0 || op.Size != 8) {
					t.Fatalf("%s[%d] seed=%d op %d: unaligned access %v", b.Name, ti, seed, i, op)
				}
			}
		}

		again := b.Generate(seed, ops)
		if !reflect.DeepEqual(traces, again) {
			t.Fatalf("%s seed=%d ops=%d: generator is not deterministic", b.Name, seed, ops)
		}
	})
}
