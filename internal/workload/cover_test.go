package workload

import (
	"testing"

	"tusim/internal/isa"
)

func TestSuiteString(t *testing.T) {
	cases := map[Suite]string{SPEC: "SPEC", TF: "TF", Parsec: "Parsec", Suite(9): "Suite(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("Suite(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestValid(t *testing.T) {
	var zero Benchmark
	if zero.Valid() {
		t.Fatal("zero-value Benchmark reports Valid")
	}
	for _, b := range All() {
		if !b.Valid() {
			t.Fatalf("%s: registry benchmark reports invalid", b.Name)
		}
	}
	if b, ok := ByName("no-such-bench"); ok || b.Valid() {
		t.Fatalf("ByName miss returned ok=%v valid=%v", ok, b.Valid())
	}
}

// TestStreamsMatchGenerate pins the Streams wrapper: one stream per
// thread, each draining exactly the generated trace in order.
func TestStreamsMatchGenerate(t *testing.T) {
	b, _ := ByName("dedup")
	traces := b.Generate(3, 120)
	streams := b.Streams(3, 120)
	if len(streams) != b.Threads || len(traces) != b.Threads {
		t.Fatalf("got %d streams / %d traces for %d threads", len(streams), len(traces), b.Threads)
	}
	for ti, s := range streams {
		for i := 0; ; i++ {
			op, ok := s.Next()
			if !ok {
				if i != len(traces[ti]) {
					t.Fatalf("thread %d: stream ended at %d ops, trace has %d", ti, i, len(traces[ti]))
				}
				break
			}
			if op != traces[ti][i] {
				t.Fatalf("thread %d op %d: stream %+v, trace %+v", ti, i, op, traces[ti][i])
			}
		}
	}
}

// TestChaseFingerprint exercises the pointer-chase generator: serial
// load dependence through the hot region and periodic cold store
// bursts far outside it.
func TestChaseFingerprint(t *testing.T) {
	gen := genChase(1<<20, 8<<20, 4, 8, 6)
	traces := gen(1, 4000, 2)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	again := gen(1, 4000, 2)
	for ti := range traces {
		if len(traces[ti]) != 4000 {
			t.Fatalf("thread %d: %d ops, want 4000", ti, len(traces[ti]))
		}
		for i := range traces[ti] {
			if traces[ti][i] != again[ti][i] {
				t.Fatalf("thread %d op %d: not deterministic", ti, i)
			}
		}
	}
	var depLoads, coldStores, stores int
	base := threadBase(0)
	for _, op := range traces[0] {
		switch op.Kind {
		case isa.Load:
			if op.Dep1 != 0 {
				depLoads++
			}
		case isa.Store:
			stores++
			if op.Addr >= base+(1<<27) {
				coldStores++
			}
		}
	}
	if depLoads == 0 {
		t.Fatal("chase emitted no dependent loads; the serial chain is the fingerprint")
	}
	if coldStores == 0 || coldStores >= stores {
		t.Fatalf("cold stores %d of %d: want some but not all stores in the cold region", coldStores, stores)
	}
}

// TestBurstTrains covers the train-length parameter: explicit lengths
// pass through, unset clamps to one, and a multi-train burst still
// yields exactly the requested op count.
func TestBurstTrains(t *testing.T) {
	if n := (burstParams{}).trains(); n != 1 {
		t.Fatalf("zero trainLen -> %d trains, want 1", n)
	}
	if n := (burstParams{trainLen: 3}).trains(); n != 3 {
		t.Fatalf("trainLen 3 -> %d trains", n)
	}
	gen := genBurst(burstParams{
		burstLines: 16, storesPerLn: 2, computeGap: 40, loadsPerGap: 4,
		regionReuse: 2, trainLen: 3, computePerLine: 2,
	}, 1<<20)
	tr := gen(7, 3000, 1)
	if len(tr) != 1 || len(tr[0]) != 3000 {
		t.Fatalf("trained burst: %d traces, %d ops", len(tr), len(tr[0]))
	}
	var stores int
	for _, op := range tr[0] {
		if op.Kind == isa.Store {
			stores++
		}
	}
	if stores == 0 {
		t.Fatal("trained burst emitted no stores")
	}
}
