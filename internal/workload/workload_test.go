package workload

import (
	"testing"

	"tusim/internal/isa"
)

func TestAllTracesValidate(t *testing.T) {
	for _, b := range All() {
		traces := b.Generate(1, 2000)
		if len(traces) != b.Threads {
			t.Fatalf("%s: %d traces, want %d", b.Name, len(traces), b.Threads)
		}
		for ti, tr := range traces {
			if len(tr) != 2000 {
				t.Errorf("%s[%d]: %d ops, want 2000", b.Name, ti, len(tr))
			}
			if err := isa.Validate(tr); err != nil {
				t.Errorf("%s[%d]: %v", b.Name, ti, err)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, b := range All() {
		a := b.Generate(42, 500)
		c := b.Generate(42, 500)
		for ti := range a {
			for i := range a[ti] {
				if a[ti][i] != c[ti][i] {
					t.Fatalf("%s: trace not deterministic at thread %d op %d", b.Name, ti, i)
				}
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	b, ok := ByName("502.gcc1")
	if !ok {
		t.Fatal("502.gcc1 missing")
	}
	// Compare past the (seed-independent) warm-up prologue.
	a := b.Generate(1, 60000)[0][40000:]
	c := b.Generate(2, 60000)[0][40000:]
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestThreadsDiffer(t *testing.T) {
	b, ok := ByName("dedup")
	if !ok {
		t.Fatal("dedup missing")
	}
	traces := b.Generate(1, 500)
	same := true
	for i := range traces[0] {
		if traces[0][i] != traces[1][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("threads produced identical traces")
	}
}

func TestStoreBurstFingerprint(t *testing.T) {
	// gcc5's fingerprint: store phases that sweep long runs of
	// consecutive cache lines (coalescible, page-contiguous), separated
	// by compute gaps. Skip the warm-up prologue.
	b, _ := ByName("502.gcc5")
	tr := b.Generate(1, 120000)[0]
	tr = tr[len(tr)/2:]
	stores := 0
	lineRun := 0
	maxLineRun := 0
	var lastLine uint64 = ^uint64(0)
	for _, op := range tr {
		if op.Kind != isa.Store {
			continue
		}
		stores++
		switch op.LineAddr() {
		case lastLine:
		case lastLine + 64:
			lineRun++
			if lineRun > maxLineRun {
				maxLineRun = lineRun
			}
		default:
			lineRun = 0
		}
		lastLine = op.LineAddr()
	}
	if stores < len(tr)/10 {
		t.Errorf("gcc5 store density too low: %d/%d", stores, len(tr))
	}
	if maxLineRun < 64 {
		t.Errorf("gcc5 longest consecutive-line sweep = %d, want >= 64", maxLineRun)
	}
}

func TestMemoryBoundFingerprint(t *testing.T) {
	// mcf's store-handling-relevant fingerprint: independent long-latency
	// loads (MLP) mixed with cold stores over an LLC-exceeding footprint.
	b, _ := ByName("505.mcf")
	tr := b.Generate(1, 5000)[0]
	loads, stores := 0, 0
	lines := map[uint64]bool{}
	for _, op := range tr {
		switch op.Kind {
		case isa.Load:
			loads++
		case isa.Store:
			stores++
		}
		if op.Kind.IsMem() {
			lines[op.LineAddr()] = true
		}
	}
	if loads < 300 || stores < 300 {
		t.Errorf("mcf mix loads=%d stores=%d; want a memory-bound mix", loads, stores)
	}
	// Cold footprint: most lines unique.
	if len(lines) < 500 {
		t.Errorf("mcf touched only %d unique lines", len(lines))
	}
}

func TestComputeBoundFingerprint(t *testing.T) {
	b, _ := ByName("503.bw2")
	tr := b.Generate(1, 5000)[0]
	stores, alus := 0, 0
	for _, op := range tr {
		switch {
		case op.Kind == isa.Store:
			stores++
		case op.Kind.IsALU():
			alus++
		}
	}
	if stores > 5000/20 {
		t.Errorf("bw2 has %d stores in 5000 ops; should be store-light", stores)
	}
	if alus < 5000/2 {
		t.Errorf("bw2 has only %d ALU ops; should be compute-bound", alus)
	}
}

func TestSharedRegionUsedByParsec(t *testing.T) {
	b, _ := ByName("canneal")
	traces := b.Generate(1, 3000)
	shared := 0
	for _, tr := range traces {
		for _, op := range tr {
			if op.Kind.IsMem() && op.Addr >= sharedBase && op.Addr < sharedBase+(1<<28) {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("canneal never touches the shared region")
	}
}

func TestFencesPresent(t *testing.T) {
	b, _ := ByName("fluidanimate")
	tr := b.Generate(1, 20000)[0]
	fences := 0
	for _, op := range tr {
		if op.Kind == isa.Fence {
			fences++
		}
	}
	if fences == 0 {
		t.Fatal("fluidanimate should contain fences")
	}
}

func TestRegistryFilters(t *testing.T) {
	if len(All()) < 20 {
		t.Fatalf("registry has %d benchmarks, want >= 20", len(All()))
	}
	for _, b := range BySuite(Parsec) {
		if b.Threads != 16 {
			t.Errorf("%s: Parsec proxy with %d threads", b.Name, b.Threads)
		}
	}
	for _, b := range SingleThreaded() {
		if b.Threads != 1 {
			t.Errorf("%s in SingleThreaded with %d threads", b.Name, b.Threads)
		}
	}
	for _, b := range SBBound() {
		if !b.SBBound || b.Threads != 1 {
			t.Errorf("%s misfiled in SBBound()", b.Name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent benchmark")
	}
	if len(SBBound()) < 8 {
		t.Errorf("only %d SB-bound single-threaded proxies", len(SBBound()))
	}
}
