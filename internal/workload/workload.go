// Package workload generates the synthetic benchmark proxies standing
// in for SPEC CPU2017, TensorFlow (BigDataBench), and PARSEC-3.0 (see
// DESIGN.md: the real binaries cannot run here, so each proxy
// reproduces the store-behaviour fingerprint the paper attributes to
// its benchmark — burstiness, store-miss latency class, locality, and
// sharing — with a seeded deterministic generator).
package workload

import (
	"fmt"
	"math/rand"

	"tusim/internal/isa"
)

// Suite identifies the benchmark family.
type Suite int

// Suites.
const (
	SPEC Suite = iota
	TF
	Parsec
)

// String names the suite as the paper does.
func (s Suite) String() string {
	switch s {
	case SPEC:
		return "SPEC"
	case TF:
		return "TF"
	case Parsec:
		return "Parsec"
	}
	return fmt.Sprintf("Suite(%d)", int(s))
}

// Benchmark is one workload proxy.
type Benchmark struct {
	Name  string
	Suite Suite
	// SBBound mirrors the paper's classification (>1% SB-induced
	// stalls on the baseline) and selects the detailed-result set.
	SBBound bool
	// Threads is 1 for SPEC/TF and 16 for Parsec.
	Threads int
	gen     func(seed int64, ops, threads int) [][]isa.MicroOp
}

// Valid reports whether the benchmark carries a generator. A
// zero-value Benchmark (e.g. from an ignored ByName miss) is invalid
// and would panic in Generate; callers can gate on this instead.
func (b Benchmark) Valid() bool { return b.gen != nil }

// Generate produces one trace per thread, ops micro-ops per thread.
func (b Benchmark) Generate(seed int64, ops int) [][]isa.MicroOp {
	return b.gen(seed, ops, b.Threads)
}

// Streams wraps Generate output as isa.Streams.
func (b Benchmark) Streams(seed int64, ops int) []isa.Stream {
	traces := b.Generate(seed, ops)
	out := make([]isa.Stream, len(traces))
	for i, tr := range traces {
		out[i] = isa.NewSliceStream(tr)
	}
	return out
}

// Address-space layout: per-thread private heaps plus one shared
// region for the parallel workloads.
const (
	privBase   = uint64(1) << 32
	privStride = uint64(1) << 28
	sharedBase = uint64(1) << 33
)

func threadBase(t int) uint64 { return privBase + uint64(t)*privStride }

// builder accumulates a trace.
type builder struct {
	ops []isa.MicroOp
	rng *rand.Rand
}

func (b *builder) alu(k isa.Kind, dep int) {
	var d uint16
	if dep > 0 && dep <= len(b.ops) && dep < 65536 {
		d = uint16(dep)
	}
	b.ops = append(b.ops, isa.MicroOp{Kind: k, Dep1: d})
}

func (b *builder) load(addr uint64, size uint8, dep int) int {
	var d uint16
	if dep > 0 && dep <= len(b.ops) && dep < 65536 {
		d = uint16(dep)
	}
	b.ops = append(b.ops, isa.MicroOp{Kind: isa.Load, Addr: addr, Size: size, Dep1: d})
	return len(b.ops) - 1
}

func (b *builder) store(addr uint64, size uint8, dep int) int {
	var d uint16
	if dep > 0 && dep <= len(b.ops) && dep < 65536 {
		d = uint16(dep)
	}
	b.ops = append(b.ops, isa.MicroOp{Kind: isa.Store, Addr: addr, Size: size, Dep1: d})
	return len(b.ops) - 1
}

func (b *builder) fence() { b.ops = append(b.ops, isa.MicroOp{Kind: isa.Fence}) }

// computeRun appends n dependent ALU ops (an ILP-limited chain).
func (b *builder) computeRun(n int, fp bool) {
	for i := 0; i < n; i++ {
		k := isa.IntAdd
		if fp {
			k = isa.FPMul
		}
		dep := 0
		if i > 0 {
			dep = 1
		}
		b.alu(k, dep)
	}
}

// align8 returns an 8-byte aligned offset within a line.
func align8(rng *rand.Rand) uint64 { return uint64(rng.Intn(8)) * 8 }

// burstParams shapes a store-burst workload (the gcc fingerprint).
type burstParams struct {
	burstLines   int // consecutive lines per burst
	storesPerLn  int // stores coalescible per line
	computeGap   int // ALU ops between burst trains
	loadsPerGap  int // loads interleaved in the gap
	regionReuse  int // bursts before moving to a cold region
	irregularPct int // % of burst lines replaced by far-random lines
	// trainLen chains several bursts back to back (separated by a few
	// ops) before the long gap; long trains overflow even a 1K-entry
	// TSOB while a coalescing drain keeps up.
	trainLen int
	// computePerLine interleaves ALU work inside the burst, turning a
	// dense burst into a sustained store phase.
	computePerLine int
	// warm emits a prologue touching every footprint line once, so the
	// measured region (after the harness warm-up cut) runs against an
	// LLC-resident working set instead of first-touch DRAM misses.
	warm bool
}

func (p burstParams) trains() int {
	if p.trainLen < 1 {
		return 1
	}
	return p.trainLen
}

func genBurst(p burstParams, footprint uint64) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*7919))
			b := &builder{rng: rng}
			base := threadBase(t)
			region := uint64(0)
			burstsInRegion := 0
			if p.warm {
				for ln := uint64(0); ln < footprint/64 && len(b.ops) < ops*2/5; ln++ {
					b.store(base+ln*64, 8, 0)
				}
			}
			for len(b.ops) < ops {
				// Gap: compute + some loads over recently stored data.
				b.computeRun(p.computeGap, false)
				for i := 0; i < p.loadsPerGap; i++ {
					addr := base + region + uint64(rng.Intn(p.burstLines+1))*64 + align8(rng)
					b.load(addr, 8, 0)
				}
				// A store phase: a long run of fresh lines, each written
				// with a few coalescible stores between short compute
				// snippets (a sustained ~15-25% store mix, as in gcc's
				// RTL construction phases).
				for tr := 0; tr < p.trains(); tr++ {
					lineBase := base + region
					for l := 0; l < p.burstLines; l++ {
						lineAddr := lineBase + uint64(l)*64
						if p.irregularPct > 0 && rng.Intn(100) < p.irregularPct {
							lineAddr = base + (uint64(rng.Uint32())*64)%footprint
						}
						for s := 0; s < p.storesPerLn; s++ {
							b.store(lineAddr+align8(rng), 8, 0)
						}
						if p.computePerLine > 0 {
							b.computeRun(p.computePerLine, false)
						}
					}
					burstsInRegion++
					if burstsInRegion >= p.regionReuse {
						region = (region + uint64(p.burstLines)*64) % footprint
						burstsInRegion = 0
					}
					if tr < p.trains()-1 {
						b.computeRun(30, false)
					}
				}
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// genChase is the mcf/tf.embed fingerprint: a serial pointer chase
// over a warm region (L2/LLC hits keep the chase moving) punctuated by
// bursts of stores to cold lines in a footprint far beyond the LLC.
// The cold stores block the baseline's SB head for DRAM latencies
// faster than prefetch-at-commit can cover, so committed stores pile
// up — the long-latency-store pathology that store-wait-free designs
// (TUS, SSB) hide and coalescing/prefetching (CSB, SPB) cannot.
func genChase(hotFoot, coldFoot uint64, computeGap, burstEvery, burstLines int) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*104729))
			b := &builder{rng: rng}
			base := threadBase(t)
			lastLoad := -1
			iter := 0
			for len(b.ops) < ops {
				addr := base + (uint64(rng.Uint32())*64)%hotFoot
				dep := 0
				if lastLoad >= 0 {
					dep = len(b.ops) - lastLoad
				}
				lastLoad = b.load(addr+align8(rng), 8, dep)
				b.computeRun(computeGap, false)
				// Update the visited node in place (hits the loaded line).
				b.store(addr&^uint64(63)|align8(rng), 8, len(b.ops)-lastLoad)
				iter++
				if burstEvery > 0 && iter%burstEvery == 0 {
					for l := 0; l < burstLines; l++ {
						st := base + (1 << 27) + (uint64(rng.Uint32())*64)%coldFoot
						b.store(st+align8(rng), 8, 0)
						b.computeRun(3, false)
					}
				}
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// genMLP is the mcf fingerprint that matters for store handling: a
// memory-level-parallelism-bound mix of independent long-latency loads
// and cold stores. When committed stores back up in the SB, dispatch
// stops early and the effective instruction window — and with it the
// load MLP that hides DRAM latency — shrinks; store-wait-free designs
// restore the full window.
func genMLP(loadFoot, storeFoot uint64, loadsPer, storesPer, aluPer int) func(int64, int, int) [][]isa.MicroOp {
	return genMLPRuns(loadFoot, storeFoot, loadsPer, storesPer, aluPer, false)
}

// genMLPRuns is genMLP with optionally consecutive store lines per
// iteration (short runs trip SPB's burst detector into prefetching
// whole pages of useless lines — the paper's TensorFlow observation).
func genMLPRuns(loadFoot, storeFoot uint64, loadsPer, storesPer, aluPer int, consecutive bool) func(int64, int, int) [][]isa.MicroOp {
	return genMLPShared(loadFoot, storeFoot, loadsPer, storesPer, aluPer, consecutive, 0, 0)
}

// genMLPShared adds cross-thread sharing to the MLP mix: sharedPct
// percent of memory operations target a region all threads write,
// exercising the coherence protocol — and, under TUS, the
// authorization unit's lex-order decisions.
func genMLPShared(loadFoot, storeFoot uint64, loadsPer, storesPer, aluPer int, consecutive bool, sharedPct int, sharedLines uint64) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*104729))
			b := &builder{rng: rng}
			base := threadBase(t)
			for len(b.ops) < ops {
				for l := 0; l < loadsPer; l++ {
					addr := base + (uint64(rng.Uint32())*64)%loadFoot
					if sharedPct > 0 && rng.Intn(100) < sharedPct {
						addr = sharedBase + (uint64(rng.Uint32())%sharedLines)*64
					}
					b.load(addr+align8(rng), 8, 0)
				}
				b.computeRun(aluPer, false)
				runBase := base + (1 << 27) + (uint64(rng.Uint32())*64)%storeFoot
				for st := 0; st < storesPer; st++ {
					addr := runBase
					if consecutive {
						addr += uint64(st) * 64
					} else if st > 0 {
						addr = base + (1 << 27) + (uint64(rng.Uint32())*64)%storeFoot
					}
					if sharedPct > 0 && rng.Intn(100) < sharedPct {
						addr = sharedBase + (uint64(rng.Uint32())%sharedLines)*64
					}
					b.store(addr+align8(rng), 8, 0)
				}
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// genCompute is the bwaves fingerprint: FP chains with regular strided
// memory, low store density, no SB pressure.
func genCompute(strideLines int, storeEvery int) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*31337))
			b := &builder{rng: rng}
			base := threadBase(t)
			idx := uint64(0)
			n := 0
			for len(b.ops) < ops {
				addr := base + idx*uint64(strideLines)*64
				ld := b.load(addr, 8, 0)
				b.computeRun(6, true)
				b.alu(isa.FPAdd, len(b.ops)-ld)
				n++
				if storeEvery > 0 && n%storeEvery == 0 {
					b.store(addr+8, 8, 1)
				}
				idx = (idx + 1) % (1 << 14)
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// genLoadHeavy is the xalancbmk/cactuBSSN fingerprint: mostly loads
// with mixed locality and sparse stores.
func genLoadHeavy(footprint uint64, hotPct int, storePct int) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*7))
			b := &builder{rng: rng}
			base := threadBase(t)
			hot := uint64(32 << 10) // 32KB hot set
			for len(b.ops) < ops {
				var addr uint64
				if rng.Intn(100) < hotPct {
					addr = base + (uint64(rng.Uint32())*8)%hot
				} else {
					addr = base + (uint64(rng.Uint32())*64)%footprint
				}
				if rng.Intn(100) < storePct {
					b.store(addr&^7, 8, 0)
				} else {
					b.load(addr&^7, 8, 0)
				}
				b.computeRun(2, false)
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}

// genTiledKernel is the TensorFlow fingerprint: cold streaming input
// tiles feeding FMA chains with output store bursts to cold lines —
// a latency-bound mix where SB backlog shrinks the load window, and
// page-irregular output placement that defeats SPB.
func genTiledKernel(tileLines, tileStrideLines, computeDepth int, footprint uint64) func(int64, int, int) [][]isa.MicroOp {
	return func(seed int64, ops, threads int) [][]isa.MicroOp {
		out := make([][]isa.MicroOp, threads)
		for t := 0; t < threads; t++ {
			rng := rand.New(rand.NewSource(seed + int64(t)*6151))
			b := &builder{rng: rng}
			base := threadBase(t)
			tile := uint64(0)
			for len(b.ops) < ops {
				inBase := base + (tile*uint64(tileStrideLines)*64)%footprint
				outBase := base + (1 << 27) + (tile*uint64(tileStrideLines)*64)%footprint
				// Stream the input tile through FMA chains.
				var acc int
				for l := 0; l < tileLines; l++ {
					ld := b.load(inBase+uint64(l)*64, 8, 0)
					b.alu(isa.FPMul, len(b.ops)-ld)
					for d := 1; d < computeDepth; d++ {
						b.alu(isa.FPAdd, 1)
					}
					acc = len(b.ops) - 1
				}
				// Write the (reduced) output tile: a coalescible burst of
				// cold lines.
				for l := 0; l < tileLines/2; l++ {
					for s := 0; s < 2; s++ {
						b.store(outBase+uint64(l)*64+uint64(s)*8, 8, len(b.ops)-acc)
					}
				}
				tile++
			}
			out[t] = b.ops[:ops]
		}
		return out
	}
}
