// Package tusim's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (Sec. VI) at test scale, reporting
// the headline series as benchmark metrics. Run the full-scale
// regeneration with `go run ./cmd/tusbench`.
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkFigN_* maps to the paper's Figure N (see DESIGN.md's
// experiment index); BenchmarkAblation* covers the design choices the
// DSE in Sec. VI calls out.
package tusim_test

import (
	"testing"

	"tusim/internal/config"
	"tusim/internal/harness"
	"tusim/internal/system"
	"tusim/internal/workload"
)

// benchRunner returns a harness runner sized for benchmarking: small
// enough to iterate, large enough to leave the warm-up region.
func benchRunner() *harness.Runner {
	r := harness.NewQuickRunner()
	r.Ops = 60_000
	r.ParallelOps = 3_000
	return r
}

func reportSpeedups(b *testing.B, sp map[config.Mechanism]float64) {
	b.Helper()
	for _, m := range config.Mechanisms {
		if m == config.Baseline {
			continue
		}
		b.ReportMetric(100*(sp[m]-1), m.String()+"_speedup_%")
	}
}

// BenchmarkFig8_Scalability regenerates the SB-size scalability study.
func BenchmarkFig8_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rows, err := harness.Fig8(r)
		if err != nil {
			b.Fatal(err)
		}
		// Report the SPEC row at SB=32 (the headline "small SB" case).
		for _, row := range rows {
			if row.SB == 32 && row.Suite == "SPEC-ST(SB-bound)" {
				reportSpeedups(b, row.Speedup)
			}
		}
	}
}

// BenchmarkFig9_SBStalls regenerates the SB-induced stall breakdown.
func BenchmarkFig9_SBStalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rows, err := harness.Fig9(r)
		if err != nil {
			b.Fatal(err)
		}
		var base, tus float64
		for _, row := range rows {
			base += row.Stalls[config.Baseline]
			tus += row.Stalls[config.TUS]
		}
		n := float64(len(rows))
		b.ReportMetric(base/n, "base_stall_%")
		b.ReportMetric(tus/n, "TUS_stall_%")
	}
}

// BenchmarkFig10_Speedups regenerates the 114-entry-SB speedup study.
func BenchmarkFig10_Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.Speedups(r, 114, 114)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedups(b, s.Geomean)
	}
}

// BenchmarkFig11_EDP regenerates the ST SB-bound EDP comparison.
func BenchmarkFig11_EDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.EDP(r, workload.SBBound(), 114, 114)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range config.Mechanisms {
			if m == config.Baseline {
				continue
			}
			b.ReportMetric(s.Geomean[m], m.String()+"_edp")
		}
	}
}

// BenchmarkFig12_Parsec regenerates the 16-core speedup + EDP panels.
func BenchmarkFig12_Parsec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.Parsec(r, 114, 114)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(s.Speedup.Geomean[config.TUS]-1), "TUS_speedup_%")
		b.ReportMetric(s.EDP.Geomean[config.TUS], "TUS_edp")
	}
}

// BenchmarkFig13_SmallSB regenerates the 32-entry-SB speedup study.
func BenchmarkFig13_SmallSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.Speedups(r, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedups(b, s.Geomean)
	}
}

// BenchmarkFig14_ParsecSmallSB regenerates Fig. 14 (Parsec @ 32 SB).
func BenchmarkFig14_ParsecSmallSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.Parsec(r, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(s.Speedup.Geomean[config.TUS]-1), "TUS_speedup_%")
		b.ReportMetric(s.EDP.Geomean[config.TUS], "TUS_edp")
	}
}

// BenchmarkFig15_EDPSmallSB regenerates Fig. 15 (ST SB-bound EDP @ 32).
func BenchmarkFig15_EDPSmallSB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.EDP(r, workload.SBBound(), 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Geomean[config.TUS], "TUS_edp")
	}
}

// BenchmarkHeadline_TUS32vsBase114 is the abstract's claim: a 32-entry
// SB under TUS vs the 114-entry baseline.
func BenchmarkHeadline_TUS32vsBase114(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		s, err := harness.Speedups(r, 114, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(s.Geomean[config.TUS]-1), "TUS32_vs_base114_%")
	}
}

// ---------- Ablations (design choices from the Sec. VI DSE) ----------

func ablationRun(b *testing.B, mut func(*config.Config)) uint64 {
	b.Helper()
	bench, _ := workload.ByName("502.gcc5")
	const ops = 60_000
	cfg := config.Default().WithMechanism(config.TUS)
	mut(cfg)
	sys, err := system.New(cfg, bench.Streams(1, ops))
	if err != nil {
		b.Fatal(err)
	}
	sys.WarmupOps = ops / 3
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	return sys.Cycles
}

// BenchmarkAblationWOQSize sweeps the write ordering queue size
// (the DSE chose 64).
func BenchmarkAblationWOQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, func(c *config.Config) {})
		for _, n := range []int{16, 32, 64, 128} {
			n := n
			cyc := ablationRun(b, func(c *config.Config) { c.WOQEntries = n })
			b.ReportMetric(100*(float64(base)/float64(cyc)-1),
				"woq"+itoa(n)+"_vs_64_%")
		}
	}
}

// BenchmarkAblationWCBCount sweeps the number of write-combining
// buffers (the DSE chose 2).
func BenchmarkAblationWCBCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, func(c *config.Config) {})
		for _, n := range []int{1, 2, 4} {
			n := n
			cyc := ablationRun(b, func(c *config.Config) { c.WCBCount = n })
			b.ReportMetric(100*(float64(base)/float64(cyc)-1),
				"wcb"+itoa(n)+"_vs_2_%")
		}
	}
}

// BenchmarkAblationGroupLen sweeps the maximum atomic group length
// (the DSE chose 16; after 8 the paper saw no ST difference).
func BenchmarkAblationGroupLen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, func(c *config.Config) {})
		for _, n := range []int{4, 8, 16, 32} {
			n := n
			cyc := ablationRun(b, func(c *config.Config) { c.MaxAtomicGroup = n })
			b.ReportMetric(100*(float64(base)/float64(cyc)-1),
				"group"+itoa(n)+"_vs_16_%")
		}
	}
}

// BenchmarkAblationNoCoalesce disables WCB coalescing inside TUS.
func BenchmarkAblationNoCoalesce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, func(c *config.Config) {})
		cyc := ablationRun(b, func(c *config.Config) { c.TUSCoalesce = false })
		b.ReportMetric(100*(float64(base)/float64(cyc)-1), "no_coalesce_vs_tus_%")
	}
}

// BenchmarkAblationPrefetchAtCommit removes the commit-time RFO
// (the paper credits it with +15% over default gem5).
func BenchmarkAblationPrefetchAtCommit(b *testing.B) {
	bench, _ := workload.ByName("502.gcc5")
	const ops = 60_000
	run := func(pac bool) uint64 {
		cfg := config.Default() // baseline mechanism
		cfg.PrefetchAtCommit = pac
		sys, err := system.New(cfg, bench.Streams(1, ops))
		if err != nil {
			b.Fatal(err)
		}
		sys.WarmupOps = ops / 3
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return sys.Cycles
	}
	for i := 0; i < b.N; i++ {
		with := run(true)
		without := run(false)
		b.ReportMetric(100*(float64(without)/float64(with)-1), "pac_gain_%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated micro-ops per wall second on the TUS configuration).
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, _ := workload.ByName("502.gcc2")
	streams := bench.Streams(1, 50_000)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		cfg := config.Default().WithMechanism(config.TUS)
		sys, err := system.New(cfg, bench.Streams(int64(i+1), 50_000))
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		total += 50_000
	}
	_ = streams
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkWholeCellCyclesPerSec measures a whole experiment cell
// (system build + full run) in simulated cycles per wall second — the
// same unit the harness records as sim_cycles_per_sec and the perf
// ratchet gates on.
func BenchmarkWholeCellCyclesPerSec(b *testing.B) {
	bench, _ := workload.ByName("502.gcc2")
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := config.Default().WithMechanism(config.TUS)
		sys, err := system.New(cfg, bench.Streams(int64(i+1), 50_000))
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		cycles += sys.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
