// Command benchdiff renders a benchstat-style comparison of two
// `go test -bench` output files (see internal/benchcmp). It is the
// engine behind `make bench-diff`: compare a fresh `make bench` run
// against the committed BENCH_micro.txt baseline.
//
// Usage:
//
//	benchdiff -old BENCH_micro.txt -new bench.txt
//
// The comparison is informational and always exits 0 on valid input —
// microbenchmark numbers are machine-dependent, so the failing perf
// ratchet is `make bench-gate` over BENCH_harness.json, not this tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"tusim/internal/benchcmp"
)

func main() {
	oldPath := flag.String("old", "BENCH_micro.txt", "baseline `go test -bench` output file")
	newPath := flag.String("new", "", "fresh `go test -bench` output file")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldRs, err := parseFile(*oldPath)
	if err != nil {
		fail(err)
	}
	newRs, err := parseFile(*newPath)
	if err != nil {
		fail(err)
	}
	fmt.Print(benchcmp.FormatTable(benchcmp.Compare(oldRs, newRs)))
}

func parseFile(path string) (map[string]benchcmp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchcmp.Parse(f)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
