// Command tusbench regenerates the paper's evaluation: every figure of
// Sec. VI plus the CAM-model table, printed as text tables.
//
// Usage:
//
//	tusbench                 # everything (Figs. 8-15 + CAM table)
//	tusbench -fig 10         # one figure
//	tusbench -list           # servable inventory (figures/benches) as JSON
//	tusbench -table cam      # CAM model vs paper claims
//	tusbench -table config   # Table I configuration dump
//	tusbench -summary        # headline averages
//	tusbench -hist           # occupancy/latency histogram report
//	tusbench -dse 502.gcc5   # TUS design-space exploration
//	tusbench -quick          # small traces (CI-sized)
//	tusbench -ops N          # trace length per thread
//	tusbench -check          # run the TSO checker on every simulation
//	tusbench -j 8            # run up to 8 simulation cells in parallel
//	tusbench -j 0            # parallel across all CPUs (default)
//	tusbench -cache DIR      # persistent content-addressed result cache
//	tusbench -bench-out F    # write per-figure wall-clock to F (JSON)
//	tusbench -journal        # record a crash-consistent run journal
//	tusbench -resume ID      # resume a killed journaled run
//
// Parallel runs are byte-identical to -j 1: every figure fans its
// independent (benchmark, mechanism, SB) cells out to a worker pool
// and assembles output in deterministic cell order.
//
// Every cell runs under the supervision layer: panics are captured into
// crash reports, transient chaos failures retry with backoff, and a
// deterministically failing cell is quarantined so its figure degrades
// to an explicit partial result instead of killing the run.
//
// With -journal, the run appends a crash-consistent record of every
// cell start/finish to .tusjournal/<run-id>.jsonl; after a crash or
// SIGKILL, `tusbench -resume <run-id> -cache DIR` replays the run,
// serving completed cells from the result cache and keeping quarantined
// cells quarantined. Resumed output is byte-identical to an
// uninterrupted run (all resume chatter goes to stderr).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tusim/internal/config"
	"tusim/internal/event"
	"tusim/internal/harness"
	"tusim/internal/prof"
	"tusim/internal/supervise"
	"tusim/internal/workload"
)

// runHeader is the journal's run_start payload: everything needed to
// reconstruct the run's result-determining settings on resume.
type runHeader struct {
	// Version pins the harness identity the run was recorded under;
	// resuming with a skewed binary is detected and warned (completed
	// cells then miss the content-addressed cache and resimulate).
	Version     string `json:"harness_version,omitempty"`
	Mode        string `json:"mode"` // "figs" or "json"
	Fig         int    `json:"fig,omitempty"`
	Quick       bool   `json:"quick,omitempty"`
	Ops         int    `json:"ops"`
	ParallelOps int    `json:"parallel_ops"`
	Seed        int64  `json:"seed"`
	Check       bool   `json:"check,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	Cache       string `json:"cache,omitempty"`
}

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (8-15); 0 = all")
	list := flag.Bool("list", false, "print the servable inventory (figures, benches, cell counts) as JSON")
	table := flag.String("table", "", "print a table: cam | config")
	summary := flag.Bool("summary", false, "print headline averages only")
	hist := flag.Bool("hist", false, "print the occupancy/latency histogram report (SB-bound matrix @114SB)")
	dse := flag.String("dse", "", "run the TUS design-space exploration on a benchmark (e.g. 502.gcc5)")
	jsonOut := flag.Bool("json", false, "emit the full evaluation as JSON")
	quick := flag.Bool("quick", false, "use small traces")
	ops := flag.Int("ops", 0, "override trace length per thread")
	pops := flag.Int("parallel-ops", 0, "override per-thread trace length for 16-thread runs")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "attach the TSO checker to every run")
	verbose := flag.Bool("v", false, "print each run")
	workers := flag.Int("j", 0, "max concurrent simulation cells (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "persistent result cache directory (empty = off)")
	benchOut := flag.String("bench-out", "", "write per-figure timing report to this file (e.g. BENCH_harness.json)")
	journalOn := flag.Bool("journal", false, "record a crash-consistent run journal under -journal-dir")
	journalDir := flag.String("journal-dir", ".tusjournal", "run journal directory")
	resume := flag.String("resume", "", "resume a killed journaled run by its run ID")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of this invocation to the file")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to the file on exit")
	sched := flag.String("sched", "", "event scheduler engine: wheel | heap (empty = build default)")
	flag.Parse()

	if err := event.SetDefaultEngine(*sched); err != nil {
		fail(err)
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}
	profStop = stopProf
	defer stopProf()

	if *list {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(harness.List()); err != nil {
			fail(err)
		}
		return
	}

	if *table != "" {
		switch *table {
		case "cam":
			harness.PrintCAMTable(os.Stdout)
		case "config":
			printConfig()
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		return
	}

	mode := "figs"
	if *jsonOut {
		mode = "json"
	}
	hdr := runHeader{
		Version:     harness.Version,
		Mode:        mode,
		Fig:         *fig,
		Quick:       *quick,
		Ops:         *ops,
		ParallelOps: *pops,
		Seed:        *seed,
		Check:       *check,
		Workers:     *workers,
		Cache:       *cacheDir,
	}

	// A resumed run reconstructs its result-determining settings from
	// the journal header; only -j (wall-clock-only) may be overridden on
	// the resume command line.
	var resumeState *supervise.RunState
	if *resume != "" {
		st, err := supervise.Load(*journalDir, *resume)
		if err != nil {
			fail(err)
		}
		for _, w := range st.Warnings {
			fmt.Fprintf(os.Stderr, "tusbench: journal %s: %s\n", *resume, w)
		}
		var h runHeader
		if err := json.Unmarshal(st.Header, &h); err != nil {
			fail(fmt.Errorf("journal %s: bad run header: %w", *resume, err))
		}
		if h.Version != "" && h.Version != harness.Version {
			fmt.Fprintf(os.Stderr, "tusbench: warning: run %s was journaled under %s, this binary is %s; completed cells will miss the result cache and resimulate\n",
				*resume, h.Version, harness.Version)
		}
		h.Version = harness.Version
		jExplicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "j" {
				jExplicit = true
			}
		})
		if !jExplicit {
			*workers = h.Workers
		}
		h.Workers = *workers
		hdr = h
		*quick = h.Quick
		*ops = h.Ops
		*pops = h.ParallelOps
		*seed = h.Seed
		*check = h.Check
		*cacheDir = h.Cache
		*fig = h.Fig
		resumeState = st
		if st.Finished {
			fmt.Fprintf(os.Stderr, "tusbench: run %s already finished; replaying from cache\n", *resume)
		}
		if h.Cache == "" {
			fmt.Fprintf(os.Stderr, "tusbench: warning: run %s had no result cache; completed cells will resimulate\n", *resume)
		}
	}

	r := harness.NewRunner()
	if *quick {
		r = harness.NewQuickRunner()
	}
	if *ops > 0 {
		r.Ops = *ops
	}
	if *pops > 0 {
		r.ParallelOps = *pops
	}
	r.Seed = *seed
	r.Check = *check
	r.Verbose = *verbose
	r.Workers = *workers
	if *cacheDir != "" {
		cache, err := harness.NewDiskCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		r.Cache = cache
	}
	r.Supervisor = harness.NewSupervisor(config.Default().CellTimeout)

	var journal *supervise.Journal
	switch {
	case resumeState != nil:
		for k, reason := range resumeState.Quarantined {
			r.Supervisor.Quarantine(k, reason)
		}
		j, err := supervise.OpenAppend(*journalDir, *resume, resumeState.NextSeq)
		if err != nil {
			fail(err)
		}
		journal = j
		fmt.Fprintf(os.Stderr, "tusbench: resuming run %s: %d cells done, %d quarantined, %d were in flight\n",
			*resume, len(resumeState.Done), len(resumeState.Quarantined), len(resumeState.InFlight))
	case *journalOn:
		id := supervise.NewRunID()
		j, err := supervise.Create(*journalDir, id, hdr)
		if err != nil {
			fail(err)
		}
		journal = j
		fmt.Fprintf(os.Stderr, "tusbench: journaling run %s (resume with: tusbench -resume %s -journal-dir %s)\n",
			id, id, *journalDir)
	}
	if journal != nil {
		r.Supervisor.SetJournal(journal)
	}
	// finish commits clean completion to the journal and surfaces any
	// figure degradations on stderr (stdout carries only figure output).
	finish := func() {
		if journal != nil {
			journal.Finish()
			journal.Close()
		}
		if deg := r.DegradedCells(); len(deg) > 0 {
			fmt.Fprintf(os.Stderr, "tusbench: warning: %d figure cells degraded by quarantine:\n", len(deg))
			for _, d := range deg {
				fmt.Fprintf(os.Stderr, "  %s: %s: %s\n", d.Figure, d.Cell, d.Reason)
			}
		}
	}

	rec := harness.NewBenchRecorder(r)
	emitBench := func() {
		if *benchOut == "" {
			return
		}
		if err := rec.Report().WriteFile(*benchOut); err != nil {
			fail(err)
		}
	}

	if hdr.Mode == "json" {
		rep, err := harness.BuildJSON(r, rec)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		finish()
		emitBench()
		return
	}

	if *dse != "" {
		points, err := harness.DSE(r, *dse)
		if err != nil {
			fail(err)
		}
		harness.PrintDSE(os.Stdout, points)
		finish()
		return
	}

	if *hist {
		rows, err := harness.Histograms(r, 114)
		if err != nil {
			fail(err)
		}
		harness.PrintHistograms(os.Stdout, rows)
		finish()
		return
	}

	if *summary {
		if err := printSummary(r); err != nil {
			fail(err)
		}
		finish()
		return
	}

	figs := []int{8, 9, 10, 11, 12, 13, 14, 15}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		f := f
		if err := rec.Time(fmt.Sprintf("fig%d", f), func() error {
			return harness.RenderFigure(r, f, os.Stdout)
		}); err != nil {
			fail(err)
		}
	}
	if *fig == 0 {
		harness.PrintCAMTable(os.Stdout)
	}
	finish()
	emitBench()
}

// profStop finalizes any active profiles; fail must flush them because
// os.Exit skips deferred calls.
var profStop func()

func fail(err error) {
	if profStop != nil {
		profStop()
	}
	fmt.Fprintln(os.Stderr, "tusbench:", err)
	os.Exit(1)
}

// printSummary reproduces the abstract's headline numbers.
func printSummary(r *harness.Runner) error {
	st, err := harness.Speedups(r, 114, 114)
	if err != nil {
		return err
	}
	edpST, err := harness.EDP(r, workload.SBBound(), 114, 114)
	if err != nil {
		return err
	}
	par, err := harness.Parsec(r, 114, 114)
	if err != nil {
		return err
	}
	small, err := harness.Speedups(r, 114, 32)
	if err != nil {
		return err
	}
	fmt.Println("Headline results (paper values in parentheses):")
	fmt.Printf("  TUS speedup, ST SB-bound geomean @114SB:   %+.1f%%  (paper: +3.2%%)\n",
		100*(st.Geomean[config.TUS]-1))
	fmt.Printf("  TUS EDP reduction, ST SB-bound @114SB:     %+.1f%%  (paper: -6.4%%)\n",
		100*(edpST.Geomean[config.TUS]-1))
	fmt.Printf("  TUS speedup, Parsec geomean @114SB:        %+.1f%%  (paper: +3.5%%)\n",
		100*(par.Speedup.Geomean[config.TUS]-1))
	fmt.Printf("  TUS EDP reduction, Parsec @114SB:          %+.1f%%  (paper: -5.1%%)\n",
		100*(par.EDP.Geomean[config.TUS]-1))
	fmt.Printf("  TUS@32SB vs baseline@114SB, ST SB-bound:   %+.1f%%  (paper: +2%%)\n",
		100*(small.Geomean[config.TUS]-1))
	return nil
}

func printConfig() {
	c := config.Default()
	fmt.Println("Table I configuration:")
	fmt.Printf("  front-end width        %d fetch / %d decode / %d rename\n", c.FetchWidth, c.DecodeWidth, c.RenameWidth)
	fmt.Printf("  back-end width         %d dispatch / %d issue / %d commit\n", c.DispatchWidth, c.IssueWidth, c.CommitWidth)
	fmt.Printf("  load/store queue       %d / %d entries\n", c.LQEntries, c.SBEntries)
	fmt.Printf("  re-order buffer        %d entries\n", c.ROBEntries)
	fmt.Printf("  functional units       %d simple ALU + %d complex ALUs\n", c.SimpleALUs, c.ComplexALUs)
	fmt.Printf("  int latencies          add %dc, mul %dc, div %dc\n", c.IntAddLat, c.IntMulLat, c.IntDivLat)
	fmt.Printf("  fp latencies           add %dc, mul %dc, div %dc\n", c.FPAddLat, c.FPMulLat, c.FPDivLat)
	fmt.Printf("  L1D                    %dKB, %d-way, %d-cycle, %d MSHRs, stream prefetcher\n",
		c.L1D.SizeBytes>>10, c.L1D.Ways, c.L1D.Latency, c.L1D.MSHRs)
	fmt.Printf("  L2                     %dMB, %d-way, %d-cycle round trip\n", c.L2.SizeBytes>>20, c.L2.Ways, c.L2.Latency)
	fmt.Printf("  L3                     %dMB, %d-way, %d-cycle round trip\n", c.L3.SizeBytes>>20, c.L3.Ways, c.L3.Latency)
	fmt.Printf("  DRAM                   %d-cycle latency\n", c.DRAMLatency)
	fmt.Printf("  TUS                    %d-entry WOQ, %d WCBs, max atomic group %d, %d lex bits\n",
		c.WOQEntries, c.WCBCount, c.MaxAtomicGroup, c.LexBits)
}
