// Command tusbench regenerates the paper's evaluation: every figure of
// Sec. VI plus the CAM-model table, printed as text tables.
//
// Usage:
//
//	tusbench                 # everything (Figs. 8-15 + CAM table)
//	tusbench -fig 10         # one figure
//	tusbench -table cam      # CAM model vs paper claims
//	tusbench -table config   # Table I configuration dump
//	tusbench -summary        # headline averages
//	tusbench -hist           # occupancy/latency histogram report
//	tusbench -dse 502.gcc5   # TUS design-space exploration
//	tusbench -quick          # small traces (CI-sized)
//	tusbench -ops N          # trace length per thread
//	tusbench -check          # run the TSO checker on every simulation
//	tusbench -j 8            # run up to 8 simulation cells in parallel
//	tusbench -j 0            # parallel across all CPUs (default)
//	tusbench -cache DIR      # persistent content-addressed result cache
//	tusbench -bench-out F    # write per-figure wall-clock to F (JSON)
//
// Parallel runs are byte-identical to -j 1: every figure fans its
// independent (benchmark, mechanism, SB) cells out to a worker pool
// and assembles output in deterministic cell order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tusim/internal/config"
	"tusim/internal/harness"
	"tusim/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (8-15); 0 = all")
	table := flag.String("table", "", "print a table: cam | config")
	summary := flag.Bool("summary", false, "print headline averages only")
	hist := flag.Bool("hist", false, "print the occupancy/latency histogram report (SB-bound matrix @114SB)")
	dse := flag.String("dse", "", "run the TUS design-space exploration on a benchmark (e.g. 502.gcc5)")
	jsonOut := flag.Bool("json", false, "emit the full evaluation as JSON")
	quick := flag.Bool("quick", false, "use small traces")
	ops := flag.Int("ops", 0, "override trace length per thread")
	pops := flag.Int("parallel-ops", 0, "override per-thread trace length for 16-thread runs")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "attach the TSO checker to every run")
	verbose := flag.Bool("v", false, "print each run")
	workers := flag.Int("j", 0, "max concurrent simulation cells (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "persistent result cache directory (empty = off)")
	benchOut := flag.String("bench-out", "", "write per-figure timing report to this file (e.g. BENCH_harness.json)")
	flag.Parse()

	if *table != "" {
		switch *table {
		case "cam":
			harness.PrintCAMTable(os.Stdout)
		case "config":
			printConfig()
		default:
			fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
			os.Exit(2)
		}
		return
	}

	r := harness.NewRunner()
	if *quick {
		r = harness.NewQuickRunner()
	}
	if *ops > 0 {
		r.Ops = *ops
	}
	if *pops > 0 {
		r.ParallelOps = *pops
	}
	r.Seed = *seed
	r.Check = *check
	r.Verbose = *verbose
	r.Workers = *workers
	if *cacheDir != "" {
		cache, err := harness.NewDiskCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		r.Cache = cache
	}
	rec := harness.NewBenchRecorder(r)
	emitBench := func() {
		if *benchOut == "" {
			return
		}
		if err := rec.Report().WriteFile(*benchOut); err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		rep, err := harness.BuildJSON(r, rec)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		emitBench()
		return
	}

	if *dse != "" {
		points, err := harness.DSE(r, *dse)
		if err != nil {
			fail(err)
		}
		harness.PrintDSE(os.Stdout, points)
		return
	}

	if *hist {
		rows, err := harness.Histograms(r, 114)
		if err != nil {
			fail(err)
		}
		harness.PrintHistograms(os.Stdout, rows)
		return
	}

	if *summary {
		if err := printSummary(r); err != nil {
			fail(err)
		}
		return
	}

	figs := []int{8, 9, 10, 11, 12, 13, 14, 15}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		f := f
		if err := rec.Time(fmt.Sprintf("fig%d", f), func() error { return runFigure(r, f) }); err != nil {
			fail(err)
		}
		fmt.Println()
	}
	if *fig == 0 {
		harness.PrintCAMTable(os.Stdout)
	}
	emitBench()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tusbench:", err)
	os.Exit(1)
}

func runFigure(r *harness.Runner, f int) error {
	switch f {
	case 8:
		rows, err := harness.Fig8(r)
		if err != nil {
			return err
		}
		harness.PrintFig8(os.Stdout, rows)
	case 9:
		rows, err := harness.Fig9(r)
		if err != nil {
			return err
		}
		harness.PrintFig9(os.Stdout, rows)
	case 10:
		s, err := harness.Speedups(r, 114, 114)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 10")
	case 11:
		s, err := harness.EDP(r, workload.SBBound(), 114, 114)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 11")
	case 12:
		s, err := harness.Parsec(r, 114, 114)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 12")
	case 13:
		s, err := harness.Speedups(r, 32, 32)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 13")
	case 14:
		s, err := harness.Parsec(r, 32, 32)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 14")
	case 15:
		s, err := harness.EDP(r, workload.SBBound(), 32, 32)
		if err != nil {
			return err
		}
		s.Print(os.Stdout, "Figure 15")
	default:
		return fmt.Errorf("unknown figure %d", f)
	}
	return nil
}

// printSummary reproduces the abstract's headline numbers.
func printSummary(r *harness.Runner) error {
	st, err := harness.Speedups(r, 114, 114)
	if err != nil {
		return err
	}
	edpST, err := harness.EDP(r, workload.SBBound(), 114, 114)
	if err != nil {
		return err
	}
	par, err := harness.Parsec(r, 114, 114)
	if err != nil {
		return err
	}
	small, err := harness.Speedups(r, 114, 32)
	if err != nil {
		return err
	}
	fmt.Println("Headline results (paper values in parentheses):")
	fmt.Printf("  TUS speedup, ST SB-bound geomean @114SB:   %+.1f%%  (paper: +3.2%%)\n",
		100*(st.Geomean[config.TUS]-1))
	fmt.Printf("  TUS EDP reduction, ST SB-bound @114SB:     %+.1f%%  (paper: -6.4%%)\n",
		100*(edpST.Geomean[config.TUS]-1))
	fmt.Printf("  TUS speedup, Parsec geomean @114SB:        %+.1f%%  (paper: +3.5%%)\n",
		100*(par.Speedup.Geomean[config.TUS]-1))
	fmt.Printf("  TUS EDP reduction, Parsec @114SB:          %+.1f%%  (paper: -5.1%%)\n",
		100*(par.EDP.Geomean[config.TUS]-1))
	fmt.Printf("  TUS@32SB vs baseline@114SB, ST SB-bound:   %+.1f%%  (paper: +2%%)\n",
		100*(small.Geomean[config.TUS]-1))
	return nil
}

func printConfig() {
	c := config.Default()
	fmt.Println("Table I configuration:")
	fmt.Printf("  front-end width        %d fetch / %d decode / %d rename\n", c.FetchWidth, c.DecodeWidth, c.RenameWidth)
	fmt.Printf("  back-end width         %d dispatch / %d issue / %d commit\n", c.DispatchWidth, c.IssueWidth, c.CommitWidth)
	fmt.Printf("  load/store queue       %d / %d entries\n", c.LQEntries, c.SBEntries)
	fmt.Printf("  re-order buffer        %d entries\n", c.ROBEntries)
	fmt.Printf("  functional units       %d simple ALU + %d complex ALUs\n", c.SimpleALUs, c.ComplexALUs)
	fmt.Printf("  int latencies          add %dc, mul %dc, div %dc\n", c.IntAddLat, c.IntMulLat, c.IntDivLat)
	fmt.Printf("  fp latencies           add %dc, mul %dc, div %dc\n", c.FPAddLat, c.FPMulLat, c.FPDivLat)
	fmt.Printf("  L1D                    %dKB, %d-way, %d-cycle, %d MSHRs, stream prefetcher\n",
		c.L1D.SizeBytes>>10, c.L1D.Ways, c.L1D.Latency, c.L1D.MSHRs)
	fmt.Printf("  L2                     %dMB, %d-way, %d-cycle round trip\n", c.L2.SizeBytes>>20, c.L2.Ways, c.L2.Latency)
	fmt.Printf("  L3                     %dMB, %d-way, %d-cycle round trip\n", c.L3.SizeBytes>>20, c.L3.Ways, c.L3.Latency)
	fmt.Printf("  DRAM                   %d-cycle latency\n", c.DRAMLatency)
	fmt.Printf("  TUS                    %d-entry WOQ, %d WCBs, max atomic group %d, %d lex bits\n",
		c.WOQEntries, c.WCBCount, c.MaxAtomicGroup, c.LexBits)
}
