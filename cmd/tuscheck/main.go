// Command tuscheck model-checks the simulator against the operational
// x86-TSO oracle: for each litmus program × mechanism cell it
// enumerates the complete TSO-allowed outcome set, drives the real
// simulator through its nondeterminism choice points (start skews +
// scripted injector decisions), and diffs the two. Any simulator
// outcome outside the allowed set — or any checker/auditor crash — is
// reported with a minimal replayable schedule.
//
// Usage:
//
//	tuscheck                          # full suite × base,CSB,TUS
//	tuscheck -prog SB,MP -mech TUS    # selected cells
//	tuscheck -mech all                # all five mechanisms
//	tuscheck -smoke                   # small CI budgets
//	tuscheck -oracle                  # print oracle outcome sets only
//	tuscheck -skews 8 -depth 8 -runs 512   # exploration budgets
//	tuscheck -j 8                     # check up to 8 cells in parallel
//
// Cells are independent (each explores its own simulator instances), so
// -j fans them out to a worker pool; reports are buffered and printed
// in deterministic cell order, identical to the serial run.
//
// Exit status is nonzero if any cell is unsound; the violating
// schedule is written to -crash-out and replays with
// `tusim -repro <bundle>`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"tusim/internal/config"
	"tusim/internal/litmus"
	"tusim/internal/modelcheck"
)

func main() {
	progs := flag.String("prog", "", "comma-separated litmus programs (default: whole suite)")
	mech := flag.String("mech", "base,CSB,TUS", "comma-separated mechanisms, or 'all'")
	skews := flag.Int("skews", 8, "start-skew indices to sweep per cell")
	depth := flag.Int("depth", 8, "injector decision-prefix depth to enumerate")
	runs := flag.Int("runs", 512, "max simulator runs per cell")
	states := flag.Int("states", modelcheck.DefaultMaxStates, "oracle state budget")
	auditEvery := flag.Uint64("audit", 0, "attach the invariant auditor every N cycles (0 = off)")
	smoke := flag.Bool("smoke", false, "small bounded budgets for CI (overrides -skews/-depth/-runs)")
	oracleOnly := flag.Bool("oracle", false, "print oracle-allowed outcome sets and exit")
	verbose := flag.Bool("v", false, "print uncovered outcomes and exploration detail")
	crashOut := flag.String("crash-out", "mc-crash.json", "where to write the repro bundle on violation")
	workers := flag.Int("j", 0, "max concurrent cells (0 = all CPUs, 1 = serial; output identical)")
	flag.Parse()

	tests, err := selectTests(*progs)
	if err != nil {
		fail(err)
	}

	if *oracleOnly {
		for _, lt := range tests {
			p, err := lt.Program()
			if err != nil {
				fail(err)
			}
			res := modelcheck.Enumerate(p, modelcheck.Limits{MaxStates: *states})
			status := ""
			if !res.Complete {
				status = "  (TRUNCATED at state budget)"
			}
			fmt.Printf("%-10s %d states, %d allowed outcomes%s\n", lt.Name, res.States, len(res.Outcomes), status)
			for _, k := range res.SortedKeys() {
				fmt.Printf("    %s\n", k)
			}
		}
		return
	}

	mechs, err := selectMechs(*mech)
	if err != nil {
		fail(err)
	}

	eo := modelcheck.ExploreOpts{
		Skews:        *skews,
		MaxDecisions: *depth,
		MaxRuns:      *runs,
		AuditEvery:   *auditEvery,
	}
	if *smoke {
		eo.Skews, eo.MaxDecisions, eo.MaxRuns = 3, 4, 64
	}

	// The (program, mechanism) cells are independent; fan them out to a
	// worker pool and report in deterministic cell order.
	type mcCell struct {
		lt litmus.Test
		m  config.Mechanism
	}
	var cells []mcCell
	for _, lt := range tests {
		for _, m := range mechs {
			cells = append(cells, mcCell{lt, m})
		}
	}
	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > len(cells) {
		w = len(cells)
	}
	results := make([]*modelcheck.Report, len(cells))
	errs := make([]error, len(cells))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				results[i], errs[i] = modelcheck.Check(cells[i].lt, cells[i].m, eo,
					modelcheck.Limits{MaxStates: *states})
			}
		}()
	}
	wg.Wait()

	exit := 0
	for i, r := range results {
		if errs[i] != nil {
			fail(errs[i])
		}
		r.Write(os.Stdout)
		if *verbose && len(r.Uncovered) > 0 {
			fmt.Printf("    deepened=%v budget_exhausted=%v\n",
				r.Exploration.Deepened, r.Exploration.BudgetExhausted)
		}
		if !r.Sound() {
			exit = 1
			if r.Bundle != nil {
				if err := r.Bundle.Save(*crashOut); err != nil {
					fail(err)
				}
				fmt.Printf("    repro bundle written to %s (replay: tusim -repro %s)\n",
					*crashOut, *crashOut)
			}
		}
	}
	if exit != 0 {
		fmt.Fprintln(os.Stderr, "tuscheck: UNSOUND — simulator produced TSO-forbidden behaviour")
	}
	os.Exit(exit)
}

func selectTests(spec string) ([]litmus.Test, error) {
	all := litmus.Tests()
	if spec == "" {
		return all, nil
	}
	byName := map[string]litmus.Test{}
	for _, lt := range all {
		byName[lt.Name] = lt
	}
	var out []litmus.Test
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		lt, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown litmus program %q (suite: %s)", name, suiteNames(all))
		}
		out = append(out, lt)
	}
	return out, nil
}

func suiteNames(tests []litmus.Test) string {
	names := make([]string, len(tests))
	for i, lt := range tests {
		names[i] = lt.Name
	}
	return strings.Join(names, ",")
}

func selectMechs(spec string) ([]config.Mechanism, error) {
	if spec == "all" {
		return append([]config.Mechanism(nil), config.Mechanisms...), nil
	}
	var out []config.Mechanism
	for _, name := range strings.Split(spec, ",") {
		m, err := config.ParseMechanism(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tuscheck:", err)
	os.Exit(1)
}
