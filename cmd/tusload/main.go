// Command tusload drives deterministic load against a tusd daemon and
// enforces the serving-layer invariants while doing it: figure
// byte-identity against the canonical CLI output, warm-phase cells_run
// frozen at zero, the Runner's exactly-once cell accounting, and
// /metrics counter monotonicity. It is also the perf-regression
// ratchet's comparator (-gate) and a crash-recovery soak harness
// (-soak).
//
// Usage:
//
//	tusload -base http://127.0.0.1:8344     # load an already-running tusd
//	tusload -tusd bin/tusd -smoke           # spawn a daemon, tiny CI preset
//	tusload -tusd bin/tusd -soak            # SIGKILL mid-load, restart, verify
//	tusload -gate -bench-baseline BENCH_harness.json -bench-fresh fresh.json
//
// The scale flags (-quick/-ops/-parallel-ops/-seed) must match the
// daemon exactly: they configure both the spawned daemon and the
// in-process reference runner that renders the byte-identity oracle.
// Exit status is nonzero when any invariant was violated or any gate
// comparison regressed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tusim/internal/harness"
	"tusim/internal/loadgen"
)

func main() {
	base := flag.String("base", "", "base URL of a running tusd (alternative to -tusd)")
	tusdBin := flag.String("tusd", "", "path to a tusd binary to spawn on 127.0.0.1:0")
	cacheDir := flag.String("cache", "", "cache dir for the spawned daemon (default: fresh temp dir; -soak reuses it across the restart)")

	quick := flag.Bool("quick", false, "use small traces (must match the daemon)")
	ops := flag.Int("ops", 0, "override trace length per thread (must match the daemon)")
	pops := flag.Int("parallel-ops", 0, "override per-thread trace length for 16-thread runs (must match the daemon)")
	seed := flag.Int64("seed", 1, "workload seed (must match the daemon)")

	figsFlag := flag.String("figs", "9", "comma-separated figures to drive")
	conc := flag.Int("c", 8, "closed-loop worker count")
	rate := flag.Float64("rate", 0, "open-loop launch rate per second (0 = closed loop)")
	requests := flag.Int("requests", 64, "mixed-phase operation budget")
	duration := flag.Duration("duration", 0, "additional wall-clock bound on the mixed phase (0 = none)")
	loadSeed := flag.Uint64("load-seed", 1, "seed for the load generator's decision streams")
	metricsEvery := flag.Duration("metrics-every", 250*time.Millisecond, "cadence of the /metrics monotonicity scrapes")
	reportPath := flag.String("report", "", "write the latency/violation report JSON here")

	smoke := flag.Bool("smoke", false, "CI preset: tiny scale (ops 2500/300), figure 9, 48 ops at concurrency 8")
	soak := flag.Bool("soak", false, "kill/restart soak: SIGKILL the daemon mid-load, restart on the same cache, verify byte-identical warm responses (requires -tusd)")

	gate := flag.Bool("gate", false, "compare fresh perf records against baselines and fail on regression (no daemon needed)")
	benchBaseline := flag.String("bench-baseline", "", "gate: committed BENCH_harness.json baseline")
	benchFresh := flag.String("bench-fresh", "", "gate: freshly generated BENCH_harness.json")
	latBaseline := flag.String("lat-baseline", "", "gate: committed tusload latency report baseline")
	latFresh := flag.String("lat-fresh", "", "gate: freshly generated tusload latency report")
	maxRatio := flag.Float64("max-ratio", 0, "gate: allowed fresh/baseline multiple (default 2.0)")
	flag.Parse()

	if *gate {
		os.Exit(runGate(*benchBaseline, *benchFresh, *latBaseline, *latFresh, *maxRatio))
	}

	if *smoke {
		if *ops == 0 {
			*ops = 2500
		}
		if *pops == 0 {
			*pops = 300
		}
		*figsFlag, *requests, *conc = "9", 48, 8
		*metricsEvery = 20 * time.Millisecond
	}

	figs, err := parseFigs(*figsFlag)
	if err != nil {
		fail(err)
	}

	if (*base == "") == (*tusdBin == "") {
		fail(fmt.Errorf("exactly one of -base or -tusd is required"))
	}
	if *soak && *tusdBin == "" {
		fail(fmt.Errorf("-soak needs to own the daemon lifecycle: use -tusd, not -base"))
	}

	// The reference runner renders the byte-identity oracle at the
	// daemon's exact scale, cache-less so the daemon's own writes cannot
	// contaminate it.
	ref := harness.NewRunner()
	if *quick {
		ref = harness.NewQuickRunner()
	}
	if *ops > 0 {
		ref.Ops = *ops
	}
	if *pops > 0 {
		ref.ParallelOps = *pops
	}
	ref.Seed = *seed
	fmt.Fprintf(os.Stderr, "tusload: rendering reference figures %v (ops=%d parallel-ops=%d seed=%d)\n",
		figs, ref.Ops, ref.ParallelOps, ref.Seed)
	refs, err := loadgen.RenderReferences(ref, figs)
	if err != nil {
		fail(err)
	}

	var d *daemon
	baseURL := *base
	if *tusdBin != "" {
		cache := *cacheDir
		if cache == "" {
			dir, err := os.MkdirTemp("", "tusload-cache-")
			if err != nil {
				fail(err)
			}
			defer os.RemoveAll(dir)
			cache = dir
		}
		d, err = startDaemon(*tusdBin, cache, scaleArgs(*quick, *ops, *pops, *seed))
		if err != nil {
			fail(err)
		}
		defer d.stop()
		baseURL = "http://" + d.addr
	}

	l, err := loadgen.New(loadgen.Options{
		BaseURL:      baseURL,
		Seed:         *loadSeed,
		Concurrency:  *conc,
		Rate:         *rate,
		Requests:     *requests,
		Duration:     *duration,
		Figs:         figs,
		References:   refs,
		MetricsEvery: *metricsEvery,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fail(err)
	}

	ctx := context.Background()
	if *soak {
		err = runSoak(ctx, l, d)
	} else {
		err = l.Run(ctx)
	}

	rep := l.Report()
	rep.WriteSummary(os.Stderr)
	if *reportPath != "" {
		if werr := rep.WriteFile(*reportPath); werr != nil {
			fail(werr)
		}
		fmt.Fprintf(os.Stderr, "tusload: report written to %s\n", *reportPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tusload:", err)
		if d != nil {
			d.stop()
		}
		os.Exit(1)
	}
	if len(rep.Violations) > 0 {
		if d != nil {
			d.stop()
		}
		os.Exit(1)
	}
}

// runSoak is the crash-recovery scenario: prove that a SIGKILL mid-load
// produces client errors (never hangs), and that a restart on the same
// cache directory serves every figure byte-identically without
// simulating a single cell.
func runSoak(ctx context.Context, l *loadgen.Loader, d *daemon) error {
	fmt.Fprintln(os.Stderr, "tusload: soak: cold sweep")
	if err := l.ColdSweep(ctx); err != nil {
		return err
	}

	fmt.Fprintln(os.Stderr, "tusload: soak: mixed load, SIGKILL incoming")
	done := make(chan error, 1)
	go func() { done <- l.RunMixed(ctx) }()

	// Let the mixed phase get airborne, then yank the daemon. Transport
	// errors are expected from here until the restart — tolerated, but
	// every in-flight request must ERROR within the client timeout;
	// RunMixed not returning is the hang we are hunting.
	time.Sleep(500 * time.Millisecond)
	l.SetTolerant(true)
	fmt.Fprintln(os.Stderr, "tusload: soak: SIGKILL", d.cmd.Process.Pid)
	d.kill()

	select {
	case <-done:
		// Violations during the kill window were suppressed by tolerant
		// mode; transport errors are the expected outcome.
	case <-time.After(3 * time.Minute):
		return fmt.Errorf("soak: mixed phase still running 3m after SIGKILL — in-flight requests hung instead of erroring")
	}

	fmt.Fprintln(os.Stderr, "tusload: soak: restarting daemon on the same cache")
	nd, err := startDaemon(d.bin, d.cache, d.extra)
	if err != nil {
		return fmt.Errorf("soak: restart: %w", err)
	}
	*d = *nd // adopt: the deferred stop in main now manages the new process
	l.SetBase("http://" + d.addr)
	l.ResetMetricsBaseline() // fresh process: counters legitimately reset
	l.SetTolerant(false)

	fmt.Fprintln(os.Stderr, "tusload: soak: warm sweep off the disk cache")
	if err := l.WarmSweep(ctx); err != nil {
		return err
	}
	// The restarted daemon must have simulated nothing: every response
	// came off the shared disk cache.
	return l.CheckAllCached(ctx, "after restart")
}

func runGate(benchBase, benchFresh, latBase, latFresh string, maxRatio float64) int {
	o := loadgen.GateOpts{MaxRatio: maxRatio}
	ran := false
	var violations []string
	if benchBase != "" || benchFresh != "" {
		if benchBase == "" || benchFresh == "" {
			fail(fmt.Errorf("gate: -bench-baseline and -bench-fresh go together"))
		}
		b, err := loadgen.ReadBench(benchBase)
		if err != nil {
			fail(err)
		}
		f, err := loadgen.ReadBench(benchFresh)
		if err != nil {
			fail(err)
		}
		ran = true
		for _, v := range loadgen.GateBench(b, f, o) {
			violations = append(violations, "bench: "+v)
		}
	}
	if latBase != "" || latFresh != "" {
		if latBase == "" || latFresh == "" {
			fail(fmt.Errorf("gate: -lat-baseline and -lat-fresh go together"))
		}
		b, err := loadgen.ReadReport(latBase)
		if err != nil {
			fail(err)
		}
		f, err := loadgen.ReadReport(latFresh)
		if err != nil {
			fail(err)
		}
		ran = true
		for _, v := range loadgen.GateLatency(b, f, o) {
			violations = append(violations, "latency: "+v)
		}
	}
	if !ran {
		fail(fmt.Errorf("gate: nothing to compare (pass -bench-baseline/-bench-fresh and/or -lat-baseline/-lat-fresh)"))
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "tusload: GATE FAILED: %d regression(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		return 1
	}
	fmt.Fprintln(os.Stderr, "tusload: gate passed: no regressions beyond the allowed ratio")
	return 0
}

// daemon is a spawned tusd process plus everything needed to respawn it
// identically (the soak restart).
type daemon struct {
	bin   string
	cache string
	extra []string
	addr  string
	cmd   *exec.Cmd
}

func scaleArgs(quick bool, ops, pops int, seed int64) []string {
	args := []string{"-seed", strconv.FormatInt(seed, 10), "-max-jobs", "4"}
	if quick {
		args = append(args, "-quick")
	}
	if ops > 0 {
		args = append(args, "-ops", strconv.Itoa(ops))
	}
	if pops > 0 {
		args = append(args, "-parallel-ops", strconv.Itoa(pops))
	}
	return args
}

// startDaemon launches tusd on 127.0.0.1:0 and resolves the real port
// through -addr-file, then waits for /healthz.
func startDaemon(bin, cache string, extra []string) (*daemon, error) {
	dir, err := os.MkdirTemp("", "tusload-addr-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	addrFile := filepath.Join(dir, "addr")

	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-cache", cache}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	d := &daemon{bin: bin, cache: cache, extra: extra, cmd: cmd}

	var addr string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			d.kill()
			return nil, fmt.Errorf("daemon never wrote %s", addrFile)
		}
		time.Sleep(20 * time.Millisecond)
	}
	d.addr = addr

	cl := &http.Client{Timeout: time.Second}
	for deadline := time.Now().Add(15 * time.Second); ; {
		resp, err := cl.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			d.kill()
			return nil, fmt.Errorf("daemon at %s never became healthy", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "tusload: daemon up at %s (cache=%s)\n", addr, cache)
	return d, nil
}

// kill SIGKILLs the daemon — the crash the soak injects.
func (d *daemon) kill() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	d.cmd = nil
}

// stop drains the daemon gracefully, falling back to SIGKILL.
func (d *daemon) stop() {
	if d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
	d.cmd = nil
}

func parseFigs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad figure %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no figures in %q", s)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tusload:", err)
	os.Exit(1)
}
