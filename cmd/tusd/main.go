// Command tusd serves the paper's evaluation over HTTP: figure,
// histogram, cell-matrix, and litmus-check jobs run on a bounded pool
// that reuses the harness (worker pool, supervision, quarantine) and a
// process-wide content-addressed result cache. Identical in-flight
// requests coalesce onto one job; per-cell progress streams over SSE.
//
// Usage:
//
//	tusd                         # listen on :8344, cache in .tuscache
//	tusd -addr 127.0.0.1:9000    # explicit listen address
//	tusd -addr-file F            # write the resolved host:port to F
//	tusd -quick                  # CI-sized traces
//	tusd -max-jobs 4             # up to 4 jobs building at once
//	tusd -job-timeout 10m        # per-job deadline
//	tusd -cache ""               # disable the shared disk cache
//	tusd -bench-out F            # write the perf trajectory on exit
//	tusd -journal                # crash-consistent supervision journal
//
// API:
//
//	GET  /healthz                # "ok" (503 "draining" during shutdown)
//	GET  /metrics                # Prometheus text format
//	GET  /v1/figures             # servable inventory (same as tusbench -list)
//	GET  /v1/figures/{n}         # figure n, byte-identical to `tusbench -fig n`
//	POST /v1/jobs                # submit {"kind":"figure|cells|hist|litmus",...}
//	GET  /v1/jobs                # job registry
//	GET  /v1/jobs/{id}           # one job
//	GET  /v1/jobs/{id}/output    # finished job's output bytes
//	GET  /v1/jobs/{id}/events    # SSE progress stream
//	POST /v1/jobs/{id}/cancel    # request cancellation (DELETE works too)
//	GET  /v1/bench               # BENCH_harness.json-shaped perf report
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes
// first (so load balancers stop routing), in-flight jobs run to
// completion bounded by -drain-timeout, then the bench report and
// journal are finalized.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tusim/internal/config"
	"tusim/internal/harness"
	"tusim/internal/server"
	"tusim/internal/supervise"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	addrFile := flag.String("addr-file", "", "write the resolved listen address (host:port) here once the listener is up — lets harnesses bind :0 and still find the port deterministically")
	quick := flag.Bool("quick", false, "use small traces (CI-sized)")
	ops := flag.Int("ops", 0, "override trace length per thread")
	pops := flag.Int("parallel-ops", 0, "override per-thread trace length for 16-thread runs")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "attach the TSO checker to every run")
	verbose := flag.Bool("v", false, "print each run")
	workers := flag.Int("j", 0, "max concurrent simulation cells per job (0 = all CPUs)")
	cacheDir := flag.String("cache", ".tuscache", "persistent result cache directory shared by all jobs (empty = off)")
	maxJobs := flag.Int("max-jobs", 2, "max concurrently building jobs (queued past this)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	benchOut := flag.String("bench-out", "", "write the perf trajectory report here on clean shutdown")
	journalOn := flag.Bool("journal", false, "record a crash-consistent supervision journal under -journal-dir")
	journalDir := flag.String("journal-dir", ".tusjournal", "run journal directory")
	flag.Parse()

	r := harness.NewRunner()
	if *quick {
		r = harness.NewQuickRunner()
	}
	if *ops > 0 {
		r.Ops = *ops
	}
	if *pops > 0 {
		r.ParallelOps = *pops
	}
	r.Seed = *seed
	r.Check = *check
	r.Verbose = *verbose
	r.Workers = *workers
	if *cacheDir != "" {
		cache, err := harness.NewDiskCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		r.Cache = cache
	}
	r.Supervisor = harness.NewSupervisor(config.Default().CellTimeout)

	var journal *supervise.Journal
	if *journalOn {
		id := supervise.NewRunID()
		j, err := supervise.Create(*journalDir, id, map[string]any{
			"harness_version": harness.Version,
			"mode":            "tusd",
			"quick":           *quick,
			"ops":             r.Ops,
			"parallel_ops":    r.ParallelOps,
			"seed":            r.Seed,
			"check":           r.Check,
			"cache":           *cacheDir,
		})
		if err != nil {
			fail(err)
		}
		journal = j
		r.Supervisor.SetJournal(j)
		fmt.Fprintf(os.Stderr, "tusd: journaling run %s under %s\n", id, *journalDir)
	}

	srv := server.New(server.Options{
		Runner:     r,
		MaxJobs:    *maxJobs,
		JobTimeout: *jobTimeout,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	if *addrFile != "" {
		// Temp+rename so a poller never reads a torn address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fail(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "tusd: %s serving on http://%s (cache=%s max-jobs=%d)\n",
		harness.Version, ln.Addr(), cacheOrOff(*cacheDir), *maxJobs)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tusd: %v: draining (listener closing, in-flight jobs finishing)\n", s)
	case err := <-errCh:
		fail(err)
	}

	// Drain: refuse new work, close the listener first so health checks
	// and routing fail fast, then wait for in-flight jobs.
	srv.StartDrain()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tusd: listener shutdown: %v\n", err)
	}
	if err := srv.WaitIdle(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "tusd: %v (abandoning remaining builds)\n", err)
	}

	if *benchOut != "" {
		if err := srv.BenchReport().WriteFile(*benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "tusd: bench-out: %v\n", err)
		}
	}
	if journal != nil {
		journal.Finish()
		journal.Close()
	}
	if deg := r.DegradedCells(); len(deg) > 0 {
		fmt.Fprintf(os.Stderr, "tusd: %d cells were degraded by quarantine this run:\n", len(deg))
		for _, d := range deg {
			fmt.Fprintf(os.Stderr, "  %s: %s: %s\n", d.Figure, d.Cell, d.Reason)
		}
	}
	fmt.Fprintln(os.Stderr, "tusd: drained, bye")
}

func cacheOrOff(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tusd:", err)
	os.Exit(1)
}
